package dip

// The benchmark harness regenerating the paper's evaluation (§4.2):
//
//	BenchmarkFig2            — E1: per-packet processing time for IPv4 and
//	                           IPv6 baselines, DIP-32, DIP-128, NDN, OPT and
//	                           NDN+OPT at 128/768/1500-byte packet sizes.
//	BenchmarkAblation_MAC    — E3: 2EM vs AES-CMAC per OPT hop (§4.1).
//	BenchmarkAblation_Parallel — E4: the packet-parameter parallel flag.
//	BenchmarkAblation_FNCount — E5: cost per additional FN.
//	BenchmarkAblation_FIBScale — E6: LPM at 10²..10⁶ routes.
//	BenchmarkAblation_PISA   — E7: software engine vs PISA-compiled datapath.
//
// Header sizes (Table 2 / E2) are asserted in TestTable2; absolute numbers
// go to EXPERIMENTS.md. Run: go test -bench=. -benchmem .

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"dip/internal/core"
	"dip/internal/fib"
	"dip/internal/ip"
	"dip/internal/opt"
	"dip/internal/pisa"
	"dip/internal/profiles"
	"dip/internal/workload"
)

// packetSizes are the paper's three test sizes (total packet bytes).
var packetSizes = []int{128, 768, 1500}

// padTo grows pkt with payload bytes to exactly size (no-op if larger).
func padTo(pkt []byte, size int) []byte {
	for len(pkt) < size {
		pkt = append(pkt, 0xA5)
	}
	return pkt
}

func benchSecret(b *testing.B) *SecretValue {
	b.Helper()
	sv, err := NewSecret("bench", bytes.Repeat([]byte{0x42}, 16))
	if err != nil {
		b.Fatal(err)
	}
	return sv
}

func benchSession(b *testing.B, sv *SecretValue, kind MACKind) *Session {
	b.Helper()
	dst, _ := NewSecret("dst", bytes.Repeat([]byte{0xD0}, 16))
	sess, err := NewSession(kind, []HopConfig{{Secret: sv}}, dst)
	if err != nil {
		b.Fatal(err)
	}
	return sess
}

// benchEngine builds a fully loaded engine + context runner used by the
// DIP-side Figure 2 rows: it measures exactly the per-hop processing
// (parse, hop limit, Algorithm 1), not port I/O.
type benchNode struct {
	engine *Engine
	state  *NodeState
}

func newBenchNode(b *testing.B, kind MACKind) *benchNode {
	b.Helper()
	state := NewNodeState()
	state.EnableOPT(benchSecret(b), kind, [16]byte{}, 0)
	state.FIB32.AddUint32(0x0A000000, 8, NextHop{Port: 1})
	pfx := make([]byte, 16)
	pfx[0] = 0x20
	state.FIB128.Add(pfx, 8, NextHop{Port: 1})
	state.NameFIB.AddUint32(0xAA000000, 8, NextHop{Port: 1})
	reg := NewRouterRegistry(state.OpsConfig())
	return &benchNode{engine: core.NewEngine(reg, Limits{}), state: state}
}

// run processes one pre-built packet: hop-limit restore, parse, engine.
func (n *benchNode) run(b *testing.B, pkt []byte, restoreHop bool) {
	b.Helper()
	var ctx ExecContext
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if restoreHop {
			pkt[3] = 64
		}
		v, err := ParsePacket(pkt)
		if err != nil {
			b.Fatal(err)
		}
		v.DecHopLimit()
		ctx.Reset(v, 0)
		n.engine.Process(&ctx)
		if ctx.Verdict == VerdictDrop {
			b.Fatalf("dropped: %v", ctx.Reason)
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	for _, size := range packetSizes {
		size := size

		// Baselines: native IPv4 and IPv6 forwarders.
		b.Run(fmt.Sprintf("IPv4-baseline/%d", size), func(b *testing.B) {
			table := fib.New()
			table.Add([]byte{10, 0, 0, 0}, 8, fib.NextHop{Port: 1})
			fwd := &ip.Forwarder4{FIB: table}
			pkt := make([]byte, size)
			if err := ip.Build4(pkt, [4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 9}, ip.ProtoUDP, 64, size-ip.HeaderLen4); err != nil {
				b.Fatal(err)
			}
			ttlOff := 8
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pkt[ttlOff] = 64
				pkt[10], pkt[11] = 0, 0
				binary.BigEndian.PutUint16(pkt[10:12], 0)
				// Rebuild checksum cheaply: recompute via Build4 is too
				// heavy; instead parse tolerates only valid checksums, so
				// fix it up by rebuilding the header once per iteration.
				ip.Build4(pkt, [4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 9}, ip.ProtoUDP, 64, size-ip.HeaderLen4)
				if v, _ := fwd.Process(pkt); v != ip.Forward {
					b.Fatal("not forwarded")
				}
			}
		})
		b.Run(fmt.Sprintf("IPv6-baseline/%d", size), func(b *testing.B) {
			table := fib.New()
			pfx := make([]byte, 16)
			pfx[0] = 0x20
			table.Add(pfx, 8, fib.NextHop{Port: 1})
			fwd := &ip.Forwarder6{FIB: table}
			var src, dst [16]byte
			dst[0] = 0x20
			pkt := make([]byte, size)
			if err := ip.Build6(pkt, src, dst, ip.ProtoUDP, 64, size-ip.HeaderLen6); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pkt[7] = 64
				if v, _ := fwd.Process(pkt); v != ip.Forward {
					b.Fatal("not forwarded")
				}
			}
		})

		// DIP-32 / DIP-128.
		b.Run(fmt.Sprintf("DIP-32/%d", size), func(b *testing.B) {
			n := newBenchNode(b, MAC2EM)
			pkt, _ := BuildPacket(IPv4Profile([4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 9}), nil)
			n.run(b, padTo(pkt, size), true)
		})
		b.Run(fmt.Sprintf("DIP-128/%d", size), func(b *testing.B) {
			n := newBenchNode(b, MAC2EM)
			var src, dst [16]byte
			dst[0] = 0x20
			pkt, _ := BuildPacket(IPv6Profile(src, dst), nil)
			n.run(b, padTo(pkt, size), true)
		})

		// NDN: one interest + one data per iteration (the PIT entry created
		// by the interest is consumed by the data, keeping state steady).
		// Reported ns/op is therefore per interest/data *pair*.
		b.Run(fmt.Sprintf("NDN-pair/%d", size), func(b *testing.B) {
			n := newBenchNode(b, MAC2EM)
			interest, _ := BuildPacket(NDNInterestProfile(0xAA000001), nil)
			interest = padTo(interest, size)
			data, _ := BuildPacket(NDNDataProfile(0xAA000001), nil)
			data = padTo(data, size)
			var ctx ExecContext
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				interest[3] = 64
				v, _ := ParsePacket(interest)
				ctx.Reset(v, 5)
				n.engine.Process(&ctx)
				data[3] = 64
				v, _ = ParsePacket(data)
				ctx.Reset(v, 1)
				n.engine.Process(&ctx)
				if ctx.Verdict != VerdictForward {
					b.Fatalf("data verdict %v/%v", ctx.Verdict, ctx.Reason)
				}
			}
		})

		// OPT and NDN+OPT (2EM, one hop — the paper's configuration).
		b.Run(fmt.Sprintf("OPT/%d", size), func(b *testing.B) {
			n := newBenchNode(b, MAC2EM)
			sess := benchSession(b, n.state.Secret, MAC2EM)
			h, err := OPTProfile(sess, nil, 1)
			if err != nil {
				b.Fatal(err)
			}
			pkt, _ := BuildPacket(h, nil)
			n.run(b, padTo(pkt, size), true)
		})
		b.Run(fmt.Sprintf("NDN+OPT/%d", size), func(b *testing.B) {
			n := newBenchNode(b, MAC2EM)
			sess := benchSession(b, n.state.Secret, MAC2EM)
			// Bench the data-path packet; PIT state is pre-installed per
			// iteration by an interest, like the NDN pair.
			interest, _ := BuildPacket(NDNInterestProfile(0xAA000002), nil)
			h, err := NDNOPTDataProfile(sess, 0xAA000002, nil, 1)
			if err != nil {
				b.Fatal(err)
			}
			data, _ := BuildPacket(h, nil)
			data = padTo(data, size)
			var ctx ExecContext
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				interest[3] = 64
				v, _ := ParsePacket(interest)
				ctx.Reset(v, 5)
				n.engine.Process(&ctx)
				data[3] = 64
				v, _ = ParsePacket(data)
				ctx.Reset(v, 1)
				n.engine.Process(&ctx)
				if ctx.Verdict != VerdictForward {
					b.Fatalf("verdict %v/%v", ctx.Verdict, ctx.Reason)
				}
			}
		})
	}
}

// E3: the MAC algorithm choice of §4.1 — 2EM vs AES-CMAC — measured on the
// full OPT hop (parm + MAC + mark).
func BenchmarkAblation_MAC(b *testing.B) {
	for _, kind := range []MACKind{MAC2EM, MACAESCMAC} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			n := newBenchNode(b, kind)
			sess := benchSession(b, n.state.Secret, kind)
			h, err := OPTProfile(sess, nil, 1)
			if err != nil {
				b.Fatal(err)
			}
			pkt, _ := BuildPacket(h, nil)
			n.run(b, pkt, true)
		})
	}
}

// E4: the packet-parameter parallel flag on the OPT authentication chain.
// In software, goroutine fan-out costs more than the ops it parallelizes —
// an honest negative result recorded in EXPERIMENTS.md (the paper's target
// is hardware module parallelism, NFP-style).
func BenchmarkAblation_Parallel(b *testing.B) {
	for _, parallel := range []bool{false, true} {
		parallel := parallel
		name := "sequential"
		if parallel {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			n := newBenchNode(b, MAC2EM)
			sess := benchSession(b, n.state.Secret, MAC2EM)
			h, err := OPTProfile(sess, nil, 1)
			if err != nil {
				b.Fatal(err)
			}
			h.Parallel = parallel
			pkt, _ := BuildPacket(h, nil)
			n.run(b, pkt, true)
		})
	}
}

// E5: marginal cost per FN — packets carrying 1..8 F_source operations
// (the cheapest module, so the measured slope is dispatch overhead).
func BenchmarkAblation_FNCount(b *testing.B) {
	for _, count := range []int{1, 2, 4, 8} {
		count := count
		b.Run(fmt.Sprintf("FNs-%d", count), func(b *testing.B) {
			n := newBenchNode(b, MAC2EM)
			h := &Header{HopLimit: 64, Locations: make([]byte, 8)}
			for i := 0; i < count; i++ {
				h.FNs = append(h.FNs, FN{Loc: 0, Len: 32, Key: KeySource})
			}
			pkt, err := BuildPacket(h, nil)
			if err != nil {
				b.Fatal(err)
			}
			n.run(b, pkt, true)
		})
	}
}

// E6: DIP-32 forwarding as the FIB grows from 10² to 10⁶ routes.
func BenchmarkAblation_FIBScale(b *testing.B) {
	for _, routes := range []int{100, 10_000, 1_000_000} {
		routes := routes
		b.Run(fmt.Sprintf("routes-%d", routes), func(b *testing.B) {
			state := NewNodeState()
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < routes; i++ {
				plen := 8 + rng.Intn(25)
				key := rng.Uint32() &^ (1<<(32-plen) - 1)
				state.FIB32.AddUint32(key, plen, NextHop{Port: 1})
			}
			state.FIB32.AddUint32(0x0A000000, 8, NextHop{Port: 1})
			reg := NewRouterRegistry(state.OpsConfig())
			n := &benchNode{engine: core.NewEngine(reg, Limits{}), state: state}
			pkt, _ := BuildPacket(IPv4Profile([4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 9}), nil)
			n.run(b, pkt, true)
		})
	}
}

// E7: the same DIP-32 and NDN+OPT packets on the software engine versus the
// PISA-compiled datapath (the Tofino-model ablation).
func BenchmarkAblation_PISA(b *testing.B) {
	b.Run("DIP-32/software", func(b *testing.B) {
		n := newBenchNode(b, MAC2EM)
		pkt, _ := BuildPacket(IPv4Profile([4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 9}), nil)
		n.run(b, pkt, true)
	})
	b.Run("DIP-32/pisa", func(b *testing.B) {
		state := NewNodeState()
		state.FIB32.AddUint32(0x0A000000, 8, NextHop{Port: 1})
		pl, err := CompilePISA(state.OpsConfig())
		if err != nil {
			b.Fatal(err)
		}
		pkt, _ := BuildPacket(IPv4Profile([4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 9}), nil)
		var phv pisa.PHV
		var md pisa.Metadata
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pkt[3] = 64
			if _, err := pl.Process(pkt, 0, &phv, &md); err != nil || md.Drop {
				b.Fatalf("md=%+v err=%v", md, err)
			}
		}
	})
	b.Run("OPT/software", func(b *testing.B) {
		n := newBenchNode(b, MAC2EM)
		sess := benchSession(b, n.state.Secret, MAC2EM)
		h, _ := OPTProfile(sess, nil, 1)
		pkt, _ := BuildPacket(h, nil)
		n.run(b, pkt, true)
	})
	b.Run("OPT/pisa", func(b *testing.B) {
		state := NewNodeState()
		state.EnableOPT(benchSecret(b), MAC2EM, [16]byte{}, 0)
		pl, err := CompilePISA(state.OpsConfig())
		if err != nil {
			b.Fatal(err)
		}
		sess := benchSession(b, state.Secret, MAC2EM)
		h, _ := OPTProfile(sess, nil, 1)
		pkt, _ := BuildPacket(h, nil)
		var phv pisa.PHV
		var md pisa.Metadata
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pkt[3] = 64
			if _, err := pl.Process(pkt, 0, &phv, &md); err != nil || md.Drop {
				b.Fatalf("md=%+v err=%v", md, err)
			}
		}
	})
}

// Sanity guard: the DIP hot paths stay allocation-free under the bench
// workloads (backing the E8 claim; failures here catch regressions that
// -benchmem alone would only report numerically).
func BenchmarkZeroAllocGuard(b *testing.B) {
	n := newBenchNode(b, MAC2EM)
	pkt, _ := BuildPacket(IPv4Profile([4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 9}), nil)
	var ctx ExecContext
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pkt[3] = 64
		v, _ := ParsePacket(pkt)
		ctx.Reset(v, 0)
		n.engine.Process(&ctx)
	}
	_ = profiles.DefaultHopLimit
	_ = opt.BaseSize
}

// Mixed-traffic throughput: a realistic blend of all five protocols drawn
// from the workload generator, replayed through one fully loaded engine.
// This is the aggregate-forwarding companion to Figure 2's per-protocol
// rows.
func BenchmarkMixedTraffic(b *testing.B) {
	n := newBenchNode(b, MAC2EM)
	sess := benchSession(b, n.state.Secret, MAC2EM)
	tr, err := workload.Generate(workload.Spec{
		Weights: map[workload.Protocol]float64{
			workload.ProtoIPv4:   4,
			workload.ProtoIPv6:   2,
			workload.ProtoNDN:    2,
			workload.ProtoOPT:    1,
			workload.ProtoNDNOPT: 1,
		},
		Names:   4096,
		ZipfS:   1.2,
		Session: sess,
		Seed:    1,
	}, 4096)
	if err != nil {
		b.Fatal(err)
	}
	var ctx ExecContext
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := &tr.Packets[i%len(tr.Packets)]
		p.Rearm()
		v, err := ParsePacket(p.Buf)
		if err != nil {
			b.Fatal(err)
		}
		ctx.Reset(v, p.InPort)
		n.engine.Process(&ctx)
	}
}

// E9: OPT path-length scaling. Per-hop router work should be ~constant
// (the MAC input region is fixed; only the OPV slot index moves), while
// host verification grows linearly in the number of hops it replays.
func BenchmarkAblation_OPTPathLength(b *testing.B) {
	for _, hops := range []int{1, 2, 4, 8} {
		hops := hops
		mkSession := func(b *testing.B) (*Session, []HopConfig) {
			cfgs := make([]HopConfig, hops)
			for i := range cfgs {
				sv, err := NewSecret(fmt.Sprintf("r%d", i), bytes.Repeat([]byte{byte(i + 1)}, 16))
				if err != nil {
					b.Fatal(err)
				}
				cfgs[i] = HopConfig{Secret: sv, HopIndex: uint8(i)}
			}
			dst, _ := NewSecret("dst", bytes.Repeat([]byte{0xD0}, 16))
			sess, err := NewSession(MAC2EM, cfgs, dst)
			if err != nil {
				b.Fatal(err)
			}
			return sess, cfgs
		}
		b.Run(fmt.Sprintf("router-hop/%d", hops), func(b *testing.B) {
			sess, cfgs := mkSession(b)
			state := NewNodeState()
			state.EnableOPT(cfgs[0].Secret, MAC2EM, cfgs[0].PrevLabel, 0)
			reg := NewRouterRegistry(state.OpsConfig())
			n := &benchNode{engine: core.NewEngine(reg, Limits{}), state: state}
			h, err := OPTProfile(sess, nil, 1)
			if err != nil {
				b.Fatal(err)
			}
			pkt, _ := BuildPacket(h, nil)
			n.run(b, pkt, true)
		})
		b.Run(fmt.Sprintf("host-verify/%d", hops), func(b *testing.B) {
			sess, cfgs := mkSession(b)
			payload := []byte("multi-hop payload")
			region := make([]byte, opt.RegionSize(hops))
			if err := sess.InitRegion(region, payload, 1); err != nil {
				b.Fatal(err)
			}
			for _, cfg := range cfgs {
				if err := opt.ProcessHop(cfg, MAC2EM, region); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sess.Verify(region, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E11: multicore scaling of one router's forwarding path — shared engine,
// per-goroutine packets (run with -cpu 1,2,4,8 for the full curve).
func BenchmarkMulticoreForwarding(b *testing.B) {
	state := NewNodeState()
	state.FIB32.AddUint32(0x0A000000, 8, NextHop{Port: 1})
	reg := NewRouterRegistry(state.OpsConfig())
	engine := core.NewEngine(reg, Limits{})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		pkt, _ := BuildPacket(IPv4Profile([4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 9}), nil)
		var ctx ExecContext
		for pb.Next() {
			pkt[3] = 64
			v, err := ParsePacket(pkt)
			if err != nil {
				b.Fatal(err)
			}
			ctx.Reset(v, 0)
			engine.Process(&ctx)
		}
	})
}

// Design-choice ablation (DESIGN.md §5 item 1): dense-array operation
// dispatch versus the map a naive implementation would use. The array is
// what lets Algorithm 1's inner loop stay branch-cheap and allocation-free.
func BenchmarkAblation_Dispatch(b *testing.B) {
	state := NewNodeState()
	reg := NewRouterRegistry(state.OpsConfig())
	keys := reg.Keys()
	b.Run("dense-array", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = reg.Get(keys[i%len(keys)])
		}
	})
	b.Run("map", func(b *testing.B) {
		m := make(map[Key]Operation)
		for _, k := range keys {
			m[k] = reg.Get(k)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = m[keys[i%len(keys)]]
		}
	})
}
