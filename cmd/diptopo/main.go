// Command diptopo runs a DIP network described by a topology/scenario file
// on the virtual-time simulator and reports deliveries plus per-router
// telemetry. See internal/topo for the file syntax.
//
//	diptopo scenario.topo
//	diptopo -q scenario.topo      # deliveries only, no event log
//	diptopo -sample 10ms x.topo   # also print per-interval counter deltas
//	diptopo -journeys x.topo      # stitched per-packet journey waterfalls
//	diptopo -journeys -journey-every 8 x.topo  # sample 1-in-8 per router
//	diptopo -int 1 x.topo         # in-band telemetry + per-link heatmap
//
// Example file:
//
//	router R1 cache=16
//	router R2
//	host   C
//	host   P
//	link C R1:0
//	link R1:1 R2:0 2ms
//	link R2:1 P
//	name R1 aa000000/8 1
//	name R2 aa000000/8 1
//	produce P aa000001 "the bits"
//	interest C aa000001
//	interest C aa000001 at 100ms
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"dip/internal/inband"
	"dip/internal/journey"
	"dip/internal/telemetry"
	"dip/internal/topo"
)

func main() {
	quiet := flag.Bool("q", false, "suppress the event log")
	sample := flag.Duration("sample", 0, "snapshot router counters every interval of virtual time (0 = off)")
	journeys := flag.Bool("journeys", false, "stitch and print per-packet journey waterfalls")
	journeyEvery := flag.Int("journey-every", 1, "journey-sample every Nth packet per router (with -journeys)")
	intEvery := flag.Int("int", 0, "stamp in-band telemetry on every Nth injected packet (0 = only if the file says int=)")
	intSlots := flag.Int("int-slots", 0, "F_tel hop-record slots per stamped packet (with -int; 0 = file/default)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: diptopo [-q] <file.topo>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	t, err := topo.Parse(f)
	if err != nil {
		log.Fatalf("%s: %v", flag.Arg(0), err)
	}
	if !*quiet {
		t.Log = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}
	if *journeys {
		t.EnableJourneys(*journeyEvery)
	}
	if *intEvery > 0 {
		t.EnableINT(*intEvery, *intSlots)
	}
	deliveries, series := t.RunSampled(*sample)
	fmt.Printf("\n%d deliveries:\n", len(deliveries))
	for _, d := range deliveries {
		fmt.Printf("  [%8v] %-8s %-8s %q\n", d.At, d.Host, d.Profile, d.Payload)
	}
	fmt.Println()
	t.Report(os.Stdout)
	if len(series) > 1 {
		printSeries(series)
	}
	if c := t.Journeys(); c != nil {
		printJourneys(c)
	}
	if c := t.INT(); c != nil {
		printINT(c)
	}
}

// intShade maps a bucket count to a heatmap cell: ramp position is the
// count's share of the row maximum, so each link's latency mode reads as
// the darkest cell and spread shows as lighter neighbours.
const intShade = " .:-=+*#%@"

func shadeCell(count, rowMax int64) byte {
	if count == 0 || rowMax == 0 {
		return intShade[0]
	}
	i := 1 + int((count*int64(len(intShade)-2))/rowMax)
	if i >= len(intShade) {
		i = len(intShade) - 1
	}
	return intShade[i]
}

// printINT renders the in-band telemetry summary: collector counters, the
// per-link latency heatmap (log2 buckets, darkest = modal latency), per-hop
// aggregates, and the retained path-change ring.
func printINT(c *inband.Collector) {
	st := c.Stats()
	fmt.Printf("\nin-band telemetry: postcards=%d overflows=%d flows=%d changes=%d loops=%d microbursts=%d mismatches=%d decode_errors=%d\n",
		st.Postcards, st.Overflows, st.Flows, st.PathChanges, st.Loops,
		st.Microbursts, st.ExpectedMismatch, st.DecodeErrors)
	if len(st.Links) > 0 {
		// Trim the heatmap to the occupied bucket range across all links.
		lo, hi := telemetry.HistBuckets, -1
		for _, l := range st.Links {
			for b, n := range l.Hist {
				if n == 0 {
					continue
				}
				if b < lo {
					lo = b
				}
				if b > hi {
					hi = b
				}
			}
		}
		if hi < 0 {
			lo, hi = 0, 0
		}
		fmt.Printf("link latency heatmap (log2 buckets %v..%v):\n",
			telemetry.BucketUpper(lo), telemetry.BucketUpper(hi))
		for _, l := range st.Links {
			var rowMax int64
			for _, n := range l.Hist {
				if n > rowMax {
					rowMax = n
				}
			}
			row := make([]byte, hi-lo+1)
			for b := lo; b <= hi; b++ {
				row[b-lo] = shadeCell(l.Hist[b], rowMax)
			}
			mean := time.Duration(0)
			if l.Count > 0 {
				mean = time.Duration(l.SumNs / l.Count)
			}
			fmt.Printf("  %-8s > %-8s |%s| n=%-6d mean=%v\n",
				intLabel(l.FromName, l.From), intLabel(l.ToName, l.To), row, l.Count, mean)
		}
	}
	for _, h := range st.Hops {
		meanLat, meanQ := int64(0), int64(0)
		if h.Count > 0 {
			meanLat, meanQ = h.LatSumNs/h.Count, h.QueueSum/h.Count
		}
		fmt.Printf("  hop %-8s records=%-6d lat_mean=%-10v queue_mean=%d queue_max=%d congested=%d microbursts=%d\n",
			intLabel(h.Name, h.HopID), h.Count, time.Duration(meanLat),
			meanQ, h.QueueMax, h.Congested, h.Microbursts)
	}
	for _, ch := range st.Changes {
		fmt.Printf("  path change [%8v] flow=%016x %v -> %v\n",
			time.Duration(ch.At), ch.Flow, ch.OldHops, ch.NewHops)
	}
}

func intLabel(name string, id uint32) string {
	if name != "" {
		return name
	}
	return fmt.Sprintf("#%d", id)
}

// printJourneys renders each stitched journey's summary line and waterfall
// (internal/journey's own text form, so dipdump re-renders the output),
// then the anomaly flight recorder and the per-path aggregates.
func printJourneys(c *journey.Collector) {
	all := c.Journeys()
	fmt.Printf("journeys (%d stitched):\n", len(all))
	for _, j := range all {
		fmt.Print(j.String())
	}
	if frozen := c.Flight().Entries(); len(frozen) > 0 {
		fmt.Printf("\nflight recorder (%d anomalies retained):\n", len(frozen))
		for _, e := range frozen {
			fmt.Print(e.String())
		}
	}
	st := c.Stats()
	fmt.Printf("\njourney stats: spans=%d complete=%d incomplete=%d frozen=%d duplicates=%d\n",
		st.Spans, st.Complete, st.Incomplete, st.Frozen, st.Duplicates)
	for _, ps := range st.Paths {
		mean := int64(0)
		if ps.Count > 0 {
			mean = (ps.FNNs + ps.QueueNs + ps.WireNs + ps.PITWaitNs) / ps.Count
		}
		fmt.Printf("  path %-30s proto=%-12s n=%-5d mean=%dns (fn=%dns queue=%dns wire=%dns pitwait=%dns)\n",
			ps.Path, ps.Proto, ps.Count, mean, ps.FNNs, ps.QueueNs, ps.WireNs, ps.PITWaitNs)
	}
}

// printSeries renders each sampling interval's counter deltas, one line per
// router that saw traffic in that interval.
func printSeries(series []topo.Sample) {
	names := make([]string, 0, len(series[0].Routers))
	for n := range series[0].Routers {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("time series (per-interval deltas):")
	for i := 1; i < len(series); i++ {
		for _, n := range names {
			d := series[i].Routers[n].Delta(series[i-1].Routers[n])
			if d.Received == 0 && len(d.Events) == 0 {
				continue
			}
			fmt.Printf("  [%8v] %-8s +recv=%d +fwd=%d +deliver=%d +absorb=%d +drop=%d",
				series[i].At, n, d.Received, d.Forwarded, d.Delivered, d.Absorbed, d.Dropped)
			events := make([]string, 0, len(d.Events))
			for e, c := range d.Events {
				events = append(events, fmt.Sprintf(" +%s=%d", e, c))
			}
			sort.Strings(events)
			for _, e := range events {
				fmt.Print(e)
			}
			fmt.Println()
		}
	}
}
