// Command diptopo runs a DIP network described by a topology/scenario file
// on the virtual-time simulator and reports deliveries plus per-router
// telemetry. See internal/topo for the file syntax.
//
//	diptopo scenario.topo
//	diptopo -q scenario.topo      # deliveries only, no event log
//
// Example file:
//
//	router R1 cache=16
//	router R2
//	host   C
//	host   P
//	link C R1:0
//	link R1:1 R2:0 2ms
//	link R2:1 P
//	name R1 aa000000/8 1
//	name R2 aa000000/8 1
//	produce P aa000001 "the bits"
//	interest C aa000001
//	interest C aa000001 at 100ms
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dip/internal/topo"
)

func main() {
	quiet := flag.Bool("q", false, "suppress the event log")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: diptopo [-q] <file.topo>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	t, err := topo.Parse(f)
	if err != nil {
		log.Fatalf("%s: %v", flag.Arg(0), err)
	}
	if !*quiet {
		t.Log = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}
	deliveries := t.Run()
	fmt.Printf("\n%d deliveries:\n", len(deliveries))
	for _, d := range deliveries {
		fmt.Printf("  [%8v] %-8s %-8s %q\n", d.At, d.Host, d.Profile, d.Payload)
	}
	fmt.Println()
	t.Report(os.Stdout)
}
