// Command diptopo runs a DIP network described by a topology/scenario file
// on the virtual-time simulator and reports deliveries plus per-router
// telemetry. See internal/topo for the file syntax.
//
//	diptopo scenario.topo
//	diptopo -q scenario.topo      # deliveries only, no event log
//	diptopo -sample 10ms x.topo   # also print per-interval counter deltas
//
// Example file:
//
//	router R1 cache=16
//	router R2
//	host   C
//	host   P
//	link C R1:0
//	link R1:1 R2:0 2ms
//	link R2:1 P
//	name R1 aa000000/8 1
//	name R2 aa000000/8 1
//	produce P aa000001 "the bits"
//	interest C aa000001
//	interest C aa000001 at 100ms
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"dip/internal/topo"
)

func main() {
	quiet := flag.Bool("q", false, "suppress the event log")
	sample := flag.Duration("sample", 0, "snapshot router counters every interval of virtual time (0 = off)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: diptopo [-q] <file.topo>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	t, err := topo.Parse(f)
	if err != nil {
		log.Fatalf("%s: %v", flag.Arg(0), err)
	}
	if !*quiet {
		t.Log = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}
	deliveries, series := t.RunSampled(*sample)
	fmt.Printf("\n%d deliveries:\n", len(deliveries))
	for _, d := range deliveries {
		fmt.Printf("  [%8v] %-8s %-8s %q\n", d.At, d.Host, d.Profile, d.Payload)
	}
	fmt.Println()
	t.Report(os.Stdout)
	if len(series) > 1 {
		printSeries(series)
	}
}

// printSeries renders each sampling interval's counter deltas, one line per
// router that saw traffic in that interval.
func printSeries(series []topo.Sample) {
	names := make([]string, 0, len(series[0].Routers))
	for n := range series[0].Routers {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("time series (per-interval deltas):")
	for i := 1; i < len(series); i++ {
		for _, n := range names {
			d := series[i].Routers[n].Delta(series[i-1].Routers[n])
			if d.Received == 0 && len(d.Events) == 0 {
				continue
			}
			fmt.Printf("  [%8v] %-8s +recv=%d +fwd=%d +deliver=%d +absorb=%d +drop=%d",
				series[i].At, n, d.Received, d.Forwarded, d.Delivered, d.Absorbed, d.Dropped)
			events := make([]string, 0, len(d.Events))
			for e, c := range d.Events {
				events = append(events, fmt.Sprintf(" +%s=%d", e, c))
			}
			sort.Strings(events)
			for _, e := range events {
				fmt.Print(e)
			}
			fmt.Println()
		}
	}
}
