// Command diphost is the host-side companion of diprouter: it constructs
// DIP packets from the §3 protocol profiles, sends them over UDP, and
// receives/verifies packets with the host stack.
//
// Modes:
//
//	diphost -mode send -proto ipv4 -src 10.0.0.1 -dst 10.0.0.2 \
//	        -to 127.0.0.1:7000 -payload "hello"
//	diphost -mode send -proto interest -name 0xAA000001 -to 127.0.0.1:7000
//	diphost -mode send -proto data -name 0xAA000001 -payload "bits" -to ...
//	diphost -mode recv -listen 127.0.0.1:7001 [-count 1]
//	diphost -mode fetch -name 0xAA000001 -segs 8 -to 127.0.0.1:7000 \
//	        -listen 127.0.0.1:7002 [-maxretx 4] [-algo aimd] [-linger 5s]
//
// recv prints each received packet's disposition (delivered, rejected,
// FN-unsupported) and payload. With -metrics-addr it also serves the
// host-side telemetry (receive verdicts, host-FN latency histograms) as
// Prometheus text on /metrics plus Go profiling under /debug/pprof/.
//
// fetch runs the congestion-controlled segmented fetcher against a live
// router: it pipelines interests for -segs segments of -name under an
// adaptive window (AIMD by default, -algo cubic|blind to switch),
// retransmits on its RTT-derived RTO, and reassembles the object from
// whatever data comes back on -listen. With -metrics-addr the fetcher's
// live state (dip_fetch_* counters, cwnd, sRTT, RTO) is scrapable while
// it runs; -linger keeps the process serving metrics after the fetch
// resolves so a scraper can observe the final counters.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"dip"
)

func main() {
	var (
		mode    = flag.String("mode", "send", "send | recv | fetch")
		proto   = flag.String("proto", "ipv4", "ipv4 | ipv6 | interest | data")
		src     = flag.String("src", "10.0.0.1", "source address")
		dst     = flag.String("dst", "10.0.0.2", "destination address")
		name    = flag.String("name", "0xAA000001", "32-bit content name (hex)")
		payload = flag.String("payload", "", "payload string")
		tel     = flag.Int("tel", 0, "append an F_tel telemetry region with this many hop slots (send mode, 0 = off)")
		to      = flag.String("to", "", "router UDP address (send/fetch mode)")
		listen  = flag.String("listen", "", "UDP address to bind (recv/fetch mode)")
		count   = flag.Int("count", 0, "packets to receive before exiting (0 = forever)")
		metrics = flag.String("metrics-addr", "", "HTTP address for /metrics and /debug/pprof (recv/fetch mode, empty = off)")
		segs    = flag.Int("segs", 8, "segments to fetch (fetch mode)")
		maxRetx = flag.Int("maxretx", 0, "retransmission cap per segment (fetch mode, 0 = default)")
		algo    = flag.String("algo", "aimd", "congestion algorithm: aimd | cubic | blind (fetch mode)")
		initRTO = flag.Duration("init-rto", 0, "initial retransmission timeout (fetch mode, 0 = default)")
		linger  = flag.Duration("linger", 0, "keep serving metrics this long after the fetch resolves")
	)
	flag.Parse()

	switch *mode {
	case "send":
		if err := send(*proto, *src, *dst, *name, *payload, *to, *tel); err != nil {
			log.Fatal(err)
		}
	case "recv":
		if err := recv(*listen, *count, *metrics); err != nil {
			log.Fatal(err)
		}
	case "fetch":
		if err := fetch(*name, *segs, *maxRetx, *algo, *initRTO, *to, *listen, *metrics, *linger); err != nil {
			log.Fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func send(proto, src, dst, name, payload, to string, tel int) error {
	if to == "" {
		return fmt.Errorf("send mode needs -to")
	}
	var h *dip.Header
	switch proto {
	case "ipv4":
		s, err := parse4(src)
		if err != nil {
			return fmt.Errorf("-src: %w", err)
		}
		d, err := parse4(dst)
		if err != nil {
			return fmt.Errorf("-dst: %w", err)
		}
		h = dip.IPv4Profile(s, d)
	case "ipv6":
		s, err := parse16(src)
		if err != nil {
			return fmt.Errorf("-src: %w", err)
		}
		d, err := parse16(dst)
		if err != nil {
			return fmt.Errorf("-dst: %w", err)
		}
		h = dip.IPv6Profile(s, d)
	case "interest":
		id, err := parseName(name)
		if err != nil {
			return err
		}
		h = dip.NDNInterestProfile(id)
	case "data":
		id, err := parseName(name)
		if err != nil {
			return err
		}
		h = dip.NDNDataProfile(id)
	default:
		return fmt.Errorf("unknown -proto %q", proto)
	}
	if tel > 0 {
		h = dip.WithTelemetry(h, tel)
	}
	pkt, err := dip.BuildPacket(h, []byte(payload))
	if err != nil {
		return err
	}
	conn, err := net.Dial("udp", to)
	if err != nil {
		return err
	}
	defer conn.Close()
	if _, err := conn.Write(pkt); err != nil {
		return err
	}
	fmt.Printf("sent %d-byte %s packet to %s\n", len(pkt), proto, to)
	return nil
}

func recv(listen string, count int, metricsAddr string) error {
	if listen == "" {
		return fmt.Errorf("recv mode needs -listen")
	}
	laddr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return err
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	stack := dip.NewHost()
	var m *dip.Metrics
	if metricsAddr != "" {
		m = &dip.Metrics{}
		stack.SetRecorder(m)
		bound, closeFn, err := dip.ServeMetrics(metricsAddr, dip.MetricsSource{Node: listen, Metrics: m})
		if err != nil {
			return fmt.Errorf("-metrics-addr: %w", err)
		}
		defer closeFn()
		log.Printf("metrics on http://%v/metrics", bound)
	}
	log.Printf("diphost listening on %v", laddr)
	buf := make([]byte, 65535)
	for received := 0; count == 0 || received < count; {
		n, raddr, err := conn.ReadFromUDP(buf)
		if err != nil {
			return err
		}
		received++
		rx := stack.HandlePacket(buf[:n])
		if m != nil {
			m.CountVerdict(rxVerdict(rx.Kind))
		}
		fmt.Printf("from %v: %s", raddr, rx.Kind)
		switch {
		case rx.Kind.String() == "delivered":
			fmt.Printf(" payload=%q", rx.Payload)
		case rx.Kind.String() == "rejected":
			fmt.Printf(" reason=%s", rx.Reason)
		case rx.Kind.String() == "fn-unsupported":
			fmt.Printf(" key=%s", rx.Key)
		}
		fmt.Println()
	}
	return nil
}

// fetch runs the congestion-controlled segmented fetcher over live UDP:
// interests go to the router at to, data comes back on listen, timers run
// on the wall clock.
func fetch(name string, segs, maxRetx int, algo string, initRTO time.Duration,
	to, listen, metricsAddr string, linger time.Duration) error {
	if to == "" || listen == "" {
		return fmt.Errorf("fetch mode needs -to and -listen")
	}
	base, err := parseName(name)
	if err != nil {
		return err
	}
	var ccAlgo dip.CCAlgo
	switch algo {
	case "aimd":
		ccAlgo = dip.CCAlgoAIMD
	case "cubic":
		ccAlgo = dip.CCAlgoCUBIC
	case "blind":
		ccAlgo = dip.CCAlgoBlind
	default:
		return fmt.Errorf("unknown -algo %q", algo)
	}

	laddr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return err
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	out, err := net.Dial("udp", to)
	if err != nil {
		return err
	}
	defer out.Close()

	met := &dip.Metrics{}
	f := dip.NewSegFetcher(dip.NewWallClock(), func(pkt []byte) {
		if _, err := out.Write(pkt); err != nil {
			log.Printf("send: %v", err)
		}
	}, dip.SegConfig{
		CC:      dip.CCConfig{Algo: ccAlgo, RTT: dip.RTTConfig{InitRTO: initRTO}},
		MaxRetx: maxRetx,
		Metrics: met,
	})
	if metricsAddr != "" {
		bound, closeFn, err := dip.ServeMetrics(metricsAddr, dip.MetricsSource{
			Node:    listen,
			Metrics: met,
			Fetch:   func() dip.FetchStats { return f.Stats().FetchStats() },
			FetchCC: f.CC,
		})
		if err != nil {
			return fmt.Errorf("-metrics-addr: %w", err)
		}
		defer closeFn()
		log.Printf("metrics on http://%v/metrics", bound)
	}

	done := make(chan error, 1)
	f.OnObject = func(b uint32, data []byte) {
		snap := f.CC()
		log.Printf("object %#x complete: %d segments, %d bytes (cwnd=%d srtt=%v rto=%v retx=%d)",
			b, segs, len(data), snap.Cwnd, snap.SRTT, snap.RTO, f.Stats().Retransmits)
		done <- nil
	}
	f.OnObjectFail = func(b uint32) {
		done <- fmt.Errorf("object %#x dead-lettered after %d retransmissions", b, f.Stats().Retransmits)
	}

	go func() {
		buf := make([]byte, 65535)
		for {
			n, _, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			f.HandleData(buf[:n])
		}
	}()

	if err := f.FetchObject(base, segs); err != nil {
		return err
	}
	ferr := <-done
	if linger > 0 {
		log.Printf("lingering %v for scrapes", linger)
		time.Sleep(linger)
	}
	return ferr
}

// rxVerdict maps a host receive outcome onto the verdict counters so the
// metrics listener reconciles (delivered / dropped) like a router's.
func rxVerdict(k dip.RxKind) dip.Verdict {
	if k == dip.RxDelivered {
		return dip.VerdictDeliver
	}
	return dip.VerdictDrop
}

func parse4(s string) ([4]byte, error) {
	var out [4]byte
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return out, fmt.Errorf("want a.b.c.d, got %q", s)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return out, fmt.Errorf("bad octet %q", p)
		}
		out[i] = byte(v)
	}
	return out, nil
}

func parse16(s string) ([16]byte, error) {
	var out [16]byte
	ip := net.ParseIP(s)
	if ip == nil || ip.To16() == nil {
		return out, fmt.Errorf("bad IPv6 address %q", s)
	}
	copy(out[:], ip.To16())
	return out, nil
}

func parseName(s string) (uint32, error) {
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 32)
	if err != nil {
		return 0, fmt.Errorf("-name: %w", err)
	}
	return uint32(v), nil
}
