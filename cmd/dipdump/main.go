// Command dipdump dissects DIP packets: it reads hex-encoded packets (one
// per line, from arguments or stdin) and prints the basic header, every FN
// triple in the paper's notation, and a hex dump of the FN-locations region
// and payload.
//
// Lines starting with '#' are annotations and are echoed verbatim, so a
// router's quarantine dump (guard.Quarantine.Dump: '#' metadata and stack
// lines around each hex-encoded poison packet) pipes straight in and comes
// out dissected alongside its capture context.
//
// Usage:
//
//	dipdump 01001140...            # hex packet as argument
//	some-producer | dipdump        # hex packets on stdin
//	quarantine-dump | dipdump      # poison packets with capture context
package main

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"os"
	"strings"

	"dip/internal/dissect"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 {
		for _, a := range args {
			dump(a)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fmt.Println(line)
			continue
		}
		dump(line)
	}
}

func dump(hexStr string) {
	hexStr = strings.NewReplacer(" ", "", "\t", "", ":", "").Replace(hexStr)
	b, err := hex.DecodeString(hexStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dipdump: bad hex: %v\n", err)
		return
	}
	dissect.Packet(os.Stdout, b)
}
