// Command dipdump dissects DIP packets: it reads hex-encoded packets (one
// per line, from arguments or stdin) and prints the basic header, every FN
// triple in the paper's notation, and a hex dump of the FN-locations region
// and payload.
//
// Lines starting with '#' are annotations and are echoed verbatim, so a
// router's quarantine dump (guard.Quarantine.Dump: '#' metadata and stack
// lines around each hex-encoded poison packet) pipes straight in and comes
// out dissected alongside its capture context.
//
// '# trace' annotations — the per-packet journey records a trace-enabled
// router serves on its /trace endpoint — are recognized and pretty-printed
// instead: the sampled packet's verdict, engine time, and ordered FN steps
// with per-step latency render above the dissection of its captured bytes.
//
// '# journey' and '# span' annotations — the stitched cross-hop journey
// summaries diptopo -journeys prints (and flight-recorder dumps embed) and
// the raw span lines a live process serves on /journeys — are likewise
// pretty-printed, so journey files render offline.
//
// Usage:
//
//	dipdump 01001140...            # hex packet as argument
//	some-producer | dipdump        # hex packets on stdin
//	quarantine-dump | dipdump      # poison packets with capture context
//	curl -s $ROUTER/trace | dipdump  # sampled FN journeys, dissected
//	curl -s $ROUTER/journeys | dipdump  # raw spans, rendered
//	diptopo -journeys x.topo | dipdump  # stitched waterfalls, rendered
package main

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"os"
	"strings"

	"dip/internal/dissect"
	"dip/internal/journey"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 {
		for _, a := range args {
			dump(a)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !printTrace(line) && !printJourney(line) && !printSpan(line) {
				fmt.Println(line)
			}
			continue
		}
		if strings.HasPrefix(line, "+") {
			// Journey waterfall rows (indented "+<offset> <kind> <node>"
			// lines under a '# journey' header) pass through verbatim.
			fmt.Println("    " + line)
			continue
		}
		dump(line)
	}
}

// printTrace pretty-prints a '# trace' metadata line (the form emitted by
// trace.Record.String and served on a router's /trace endpoint). Any other
// annotation returns false and is echoed verbatim by the caller.
func printTrace(line string) bool {
	rest, ok := strings.CutPrefix(line, "# trace ")
	if !ok {
		return false
	}
	kv := map[string]string{}
	for _, tok := range strings.Fields(rest) {
		if k, v, found := strings.Cut(tok, "="); found {
			kv[k] = v
		}
	}
	fate := kv["verdict"]
	if fate == "drop" && kv["reason"] != "" && kv["reason"] != "none" {
		fate += " (" + kv["reason"] + ")"
	}
	if e := kv["egress"]; e != "" {
		fate += " via port " + e
	}
	fmt.Printf("=== trace sample %s: in-port %s, %s, engine time %s, %s wire bytes\n",
		kv["seq"], kv["in"], fate, kv["total"], kv["pktlen"])
	if s := kv["steps"]; s != "" {
		fmt.Printf("    journey: %s\n", strings.ReplaceAll(s, ",", " -> "))
	}
	if tr := kv["truncated"]; tr != "" {
		fmt.Printf("    (+%s further steps not retained)\n", tr)
	}
	return true
}

// printJourney pretty-prints a '# journey' summary line (journey.Journey's
// text form: diptopo -journeys output, frozen flight-recorder dumps).
func printJourney(line string) bool {
	rest, ok := strings.CutPrefix(line, "# journey ")
	if !ok {
		return false
	}
	kv := map[string]string{}
	for _, tok := range strings.Fields(rest) {
		if k, v, found := strings.Cut(tok, "="); found {
			kv[k] = v
		}
	}
	state := "complete"
	if kv["complete"] != "true" {
		state = "in flight"
	}
	if kv["incomplete"] == "1" {
		state = "INCOMPLETE (evicted before a terminal span)"
	}
	fmt.Printf("=== journey %s: %s hops over %s, %s, total %s\n",
		kv["trace"], kv["routers"], kv["path"], state, kv["total"])
	if at := kv["dropped-at"]; at != "" {
		cause := kv["cause"]
		if cause == "" {
			cause = "drop verdict"
		}
		fmt.Printf("    DROPPED at %s (%s)\n", at, cause)
	}
	fmt.Printf("    time split: fn=%s queue=%s wire=%s pitwait=%s (router cpu %s)\n",
		kv["fn"], kv["queue"], kv["wire"], kv["pitwait"], kv["cpu"])
	return true
}

// printSpan pretty-prints a '# span' line (journey.Span's text form, the
// /journeys endpoint body).
func printSpan(line string) bool {
	sp, err := journey.ParseSpan(line)
	if err != nil {
		return false
	}
	desc := ""
	switch sp.Kind {
	case journey.SpanLink:
		desc = fmt.Sprintf("queue %dns + wire %dns", sp.QueueNs, sp.WireNs)
	case journey.SpanRouter:
		desc = fmt.Sprintf("verdict %s, cpu %dns", sp.Verdict, sp.CPUNs)
	}
	if sp.Dropped {
		if desc != "" {
			desc += ", "
		}
		desc += "DROPPED"
		if sp.Cause != "" {
			desc += " (" + sp.Cause + ")"
		}
	}
	if desc != "" {
		desc = ": " + desc
	}
	fmt.Printf("--- span %016x %-10s %-14s at +%dns%s\n",
		uint64(sp.Trace), sp.Kind, sp.Node, sp.Start, desc)
	return true
}

func dump(hexStr string) {
	hexStr = strings.NewReplacer(" ", "", "\t", "", ":", "").Replace(hexStr)
	b, err := hex.DecodeString(hexStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dipdump: bad hex: %v\n", err)
		return
	}
	dissect.Packet(os.Stdout, b)
}
