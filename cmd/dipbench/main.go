// Command dipbench regenerates the paper's evaluation artifacts as printed
// tables: Figure 2 (per-packet processing time for IP, NDN, OPT and
// NDN+OPT against the IPv4/IPv6 baselines, at 128/768/1500-byte packets)
// and Table 2 (header size overhead), plus the ablations indexed in
// DESIGN.md (MAC algorithm, parallel flag, FN count, FIB scale, PISA vs
// software engine).
//
// Absolute times are CPU nanoseconds, not Tofino pipeline nanoseconds; the
// claim being reproduced is the *shape*: DIP ≈ IP baseline, OPT and
// NDN+OPT slower because MACs dominate, size-independence of processing
// time, and Table 2 byte-exactness.
//
// Usage:
//
//	dipbench                    # everything
//	dipbench -experiment fig2   # one experiment: fig2, table2, mac,
//	                            # parallel, fncount, fibscale, pisa,
//	                            # fiblookup, mixed, journey, burst,
//	                            # fetchcc, cstier, churn, int
//	dipbench -trials 1000       # per-measurement packet count (paper: 1000)
//	dipbench -json out.json     # also write machine-readable records
//	                            # (name, ns/op, B/op, allocs/op, GOMAXPROCS)
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"dip"
	"dip/internal/cc"
	"dip/internal/churn"
	"dip/internal/core"
	"dip/internal/cs"
	"dip/internal/extops"
	"dip/internal/fib"
	"dip/internal/inband"
	"dip/internal/ip"
	"dip/internal/journey"
	"dip/internal/lpm"
	"dip/internal/ndn"
	"dip/internal/pisa"
	"dip/internal/profiles"
	"dip/internal/telemetry"
	"dip/internal/workload"
)

var (
	trials     = flag.Int("trials", 1000, "forwarding tests per measurement (paper: 1000)")
	rounds     = flag.Int("rounds", 31, "measurement rounds; the median is reported")
	jsonOut    = flag.String("json", "", "write benchmark records as JSON to this file")
	churnScale = flag.Float64("churn-scale", 1.0, "scale the churn experiment's route counts and storm ops (1.0 = 1.05M routes)")
	packets    = []int{128, 768, 1500}
)

// benchRecord is one line of the -json output; the field set mirrors what
// `go test -bench` reports so downstream tooling can treat both alike.
type benchRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Gomaxprocs  int     `json:"gomaxprocs"`
}

var jsonRecords []benchRecord

func writeJSON() {
	if *jsonOut == "" {
		return
	}
	buf, err := json.MarshalIndent(jsonRecords, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d benchmark records to %s\n", len(jsonRecords), *jsonOut)
}

func main() {
	exp := flag.String("experiment", "all", "fig2 | table2 | mac | parallel | fncount | fibscale | pisa | fiblookup | mixed | journey | burst | fetchcc | cstier | churn | int | all")
	flag.Parse()
	switch *exp {
	case "fig2":
		fig2()
	case "table2":
		table2()
	case "mac":
		ablationMAC()
	case "parallel":
		ablationParallel()
	case "fncount":
		ablationFNCount()
	case "fibscale":
		ablationFIBScale()
	case "pisa":
		ablationPISA()
	case "fiblookup":
		ablationFIBLookup()
	case "mixed":
		mixedTraffic()
	case "journey":
		journeyOverhead()
	case "burst":
		burstScaling()
	case "fetchcc":
		fetchCC()
	case "cstier":
		csTier()
	case "churn":
		churnExperiment()
	case "int":
		intOverhead()
	case "all":
		table2()
		fig2()
		ablationMAC()
		ablationParallel()
		ablationFNCount()
		ablationFIBScale()
		ablationPISA()
		ablationFIBLookup()
		mixedTraffic()
		journeyOverhead()
		burstScaling()
		fetchCC()
		csTier()
		churnExperiment()
		intOverhead()
	default:
		flag.Usage()
		os.Exit(2)
	}
	writeJSON()
}

// measure runs fn over *trials packets per round and returns the median
// per-packet time across rounds. name tags the -json record.
func measure(name string, fn func(n int)) time.Duration {
	return measureWithSetup(name, nil, fn)
}

// measureWithSetup runs setup (untimed) before each round, then times fn.
func measureWithSetup(name string, setup, fn func(n int)) time.Duration {
	times := make([]time.Duration, 0, *rounds)
	warm := *trials / 10
	if setup != nil {
		setup(warm)
	}
	fn(warm) // warm up
	for r := 0; r < *rounds; r++ {
		if setup != nil {
			setup(*trials)
		}
		start := time.Now()
		fn(*trials)
		times = append(times, time.Since(start)/time.Duration(*trials))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	med := times[len(times)/2]
	if *jsonOut != "" {
		// One extra untimed round under ReadMemStats gives B/op and
		// allocs/op without perturbing the timed rounds above.
		if setup != nil {
			setup(*trials)
		}
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		fn(*trials)
		runtime.ReadMemStats(&m1)
		n := float64(*trials)
		jsonRecords = append(jsonRecords, benchRecord{
			Name:        name,
			NsPerOp:     float64(med.Nanoseconds()),
			BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / n,
			AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / n,
			Gomaxprocs:  runtime.GOMAXPROCS(0),
		})
	}
	return med
}

type node struct {
	engine *dip.Engine
	state  *dip.NodeState
}

func newNode(kind dip.MACKind) *node {
	state := dip.NewNodeState()
	sv, err := dip.NewSecret("bench", bytes.Repeat([]byte{0x42}, 16))
	if err != nil {
		log.Fatal(err)
	}
	state.EnableOPT(sv, kind, [16]byte{}, 0)
	state.FIB32.AddUint32(0x0A000000, 8, dip.NextHop{Port: 1})
	pfx := make([]byte, 16)
	pfx[0] = 0x20
	state.FIB128.Add(pfx, 8, dip.NextHop{Port: 1})
	state.NameFIB.AddUint32(0xAA000000, 8, dip.NextHop{Port: 1})
	reg := dip.NewRouterRegistry(state.OpsConfig())
	return &node{engine: core.NewEngine(reg, dip.Limits{}), state: state}
}

func (nd *node) session(kind dip.MACKind) *dip.Session {
	dst, _ := dip.NewSecret("dst", bytes.Repeat([]byte{0xD0}, 16))
	sess, err := dip.NewSession(kind, []dip.HopConfig{{Secret: nd.state.Secret}}, dst)
	if err != nil {
		log.Fatal(err)
	}
	return sess
}

// runDIP processes one DIP packet n times through the engine.
func (nd *node) runDIP(pkt []byte) func(int) {
	var ctx dip.ExecContext
	return func(n int) {
		for i := 0; i < n; i++ {
			pkt[3] = 64
			v, err := dip.ParsePacket(pkt)
			if err != nil {
				log.Fatal(err)
			}
			v.DecHopLimit()
			ctx.Reset(v, 0)
			nd.engine.Process(&ctx)
			if ctx.Verdict == dip.VerdictDrop {
				log.Fatalf("dropped: %v", ctx.Reason)
			}
		}
	}
}

// nameOffset returns the byte offset of the 32-bit content name (the first
// FN's operand) inside an NDN-style packet.
func nameOffset(pkt []byte) int {
	v, err := dip.ParsePacket(pkt)
	if err != nil {
		log.Fatal(err)
	}
	return v.HeaderLen() - len(v.Locations())
}

func pad(pkt []byte, size int) []byte {
	for len(pkt) < size {
		pkt = append(pkt, 0xA5)
	}
	return pkt
}

func fig2() {
	fmt.Println("== Figure 2: packet processing time (median ns/packet) ==")
	fmt.Printf("%-14s", "protocol")
	for _, s := range packets {
		fmt.Printf("%12s", fmt.Sprintf("%dB", s))
	}
	fmt.Println()

	row := func(name string, mk func(size int) func(int)) {
		fmt.Printf("%-14s", name)
		for _, size := range packets {
			fmt.Printf("%12v", measure(fmt.Sprintf("fig2/%s/%dB", name, size), mk(size)))
		}
		fmt.Println()
	}
	rowSetup := func(name string, mk func(size int) (setup, fn func(int))) {
		fmt.Printf("%-14s", name)
		for _, size := range packets {
			setup, fn := mk(size)
			fmt.Printf("%12v", measureWithSetup(fmt.Sprintf("fig2/%s/%dB", name, size), setup, fn))
		}
		fmt.Println()
	}

	row("IPv4-baseline", func(size int) func(int) {
		table := fib.New()
		table.Add([]byte{10, 0, 0, 0}, 8, fib.NextHop{Port: 1})
		fwd := &ip.Forwarder4{FIB: table}
		pkt := make([]byte, size)
		return func(n int) {
			for i := 0; i < n; i++ {
				ip.Build4(pkt, [4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 9}, ip.ProtoUDP, 64, size-ip.HeaderLen4)
				if v, _ := fwd.Process(pkt); v != ip.Forward {
					log.Fatal("ipv4 baseline: not forwarded")
				}
			}
		}
	})
	row("IPv6-baseline", func(size int) func(int) {
		table := fib.New()
		pfx := make([]byte, 16)
		pfx[0] = 0x20
		table.Add(pfx, 8, fib.NextHop{Port: 1})
		fwd := &ip.Forwarder6{FIB: table}
		var src, dst [16]byte
		dst[0] = 0x20
		pkt := make([]byte, size)
		ip.Build6(pkt, src, dst, ip.ProtoUDP, 64, size-ip.HeaderLen6)
		return func(n int) {
			for i := 0; i < n; i++ {
				pkt[7] = 64
				if v, _ := fwd.Process(pkt); v != ip.Forward {
					log.Fatal("ipv6 baseline: not forwarded")
				}
			}
		}
	})
	row("DIP-32", func(size int) func(int) {
		nd := newNode(dip.MAC2EM)
		pkt, _ := dip.BuildPacket(dip.IPv4Profile([4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 9}), nil)
		return nd.runDIP(pad(pkt, size))
	})
	row("DIP-128", func(size int) func(int) {
		nd := newNode(dip.MAC2EM)
		var src, dst [16]byte
		dst[0] = 0x20
		pkt, _ := dip.BuildPacket(dip.IPv6Profile(src, dst), nil)
		return nd.runDIP(pad(pkt, size))
	})
	// NDN interest processing: FIB match + PIT record, a distinct name per
	// packet so every interest does the full insert-and-forward work. The
	// companion data packets are processed untimed to keep the PIT steady.
	rowSetup("NDN-interest", func(size int) (func(int), func(int)) {
		nd := newNode(dip.MAC2EM)
		interest, _ := dip.BuildPacket(dip.NDNInterestProfile(0xAA000000), nil)
		interest = pad(interest, size)
		data, _ := dip.BuildPacket(dip.NDNDataProfile(0xAA000000), nil)
		nameOff := nameOffset(interest)
		dataNameOff := nameOffset(data)
		var ctx dip.ExecContext
		seq := uint32(0)
		fn := func(n int) {
			for i := 0; i < n; i++ {
				seq++
				interest[3] = 64
				binary.BigEndian.PutUint32(interest[nameOff:], 0xAA000000|seq&0xFFFF)
				v, _ := dip.ParsePacket(interest)
				ctx.Reset(v, 5)
				nd.engine.Process(&ctx)
			}
		}
		drain := func(n int) {
			// Consume whatever the previous round inserted.
			for i := 0; i < 0x10000; i++ {
				data[3] = 64
				binary.BigEndian.PutUint32(data[dataNameOff:], 0xAA000000|uint32(i))
				v, _ := dip.ParsePacket(data)
				ctx.Reset(v, 1)
				nd.engine.Process(&ctx)
			}
		}
		return drain, fn
	})
	// NDN data processing: PIT consume + fan-out; matching interests are
	// installed untimed before each round.
	rowSetup("NDN-data", func(size int) (func(int), func(int)) {
		nd := newNode(dip.MAC2EM)
		data, _ := dip.BuildPacket(dip.NDNDataProfile(0xAA000000), nil)
		data = pad(data, size)
		nameOff := nameOffset(data)
		var ctx dip.ExecContext
		seq := uint32(0)
		setup := func(n int) {
			for i := 0; i < n; i++ {
				nd.state.PIT.AddInterest(0xAA000000|(seq+uint32(i))&0xFFFFFF, 5)
			}
		}
		fn := func(n int) {
			for i := 0; i < n; i++ {
				data[3] = 64
				binary.BigEndian.PutUint32(data[nameOff:], 0xAA000000|seq&0xFFFFFF)
				seq++
				v, _ := dip.ParsePacket(data)
				ctx.Reset(v, 1)
				nd.engine.Process(&ctx)
				if ctx.Verdict != dip.VerdictForward {
					log.Fatalf("NDN data: %v/%v", ctx.Verdict, ctx.Reason)
				}
			}
		}
		return setup, fn
	})
	row("OPT", func(size int) func(int) {
		nd := newNode(dip.MAC2EM)
		sess := nd.session(dip.MAC2EM)
		h, err := dip.OPTProfile(sess, nil, 1)
		if err != nil {
			log.Fatal(err)
		}
		pkt, _ := dip.BuildPacket(h, nil)
		return nd.runDIP(pad(pkt, size))
	})
	// NDN+OPT data processing: the derived protocol's expensive direction
	// (PIT consume + the full authentication chain).
	rowSetup("NDN+OPT", func(size int) (func(int), func(int)) {
		nd := newNode(dip.MAC2EM)
		sess := nd.session(dip.MAC2EM)
		h, err := dip.NDNOPTDataProfile(sess, 0xAA000002, nil, 1)
		if err != nil {
			log.Fatal(err)
		}
		data, _ := dip.BuildPacket(h, nil)
		data = pad(data, size)
		nameOff := nameOffset(data)
		var ctx dip.ExecContext
		seq := uint32(0)
		setup := func(n int) {
			for i := 0; i < n; i++ {
				nd.state.PIT.AddInterest(0xAA000000|(seq+uint32(i))&0xFFFFFF, 5)
			}
		}
		fn := func(n int) {
			for i := 0; i < n; i++ {
				data[3] = 64
				binary.BigEndian.PutUint32(data[nameOff:], 0xAA000000|seq&0xFFFFFF)
				seq++
				v, _ := dip.ParsePacket(data)
				ctx.Reset(v, 1)
				nd.engine.Process(&ctx)
				if ctx.Verdict != dip.VerdictForward {
					log.Fatalf("NDN+OPT data: %v/%v", ctx.Verdict, ctx.Reason)
				}
			}
		}
		return setup, fn
	})
	fmt.Println(`shape check (paper §4.2): DIP rows ≈ IP baselines; OPT and NDN+OPT
slower ("the MAC operations are expensive"); times ~independent of size.`)
	fmt.Println()
}

func table2() {
	fmt.Println("== Table 2: packet header size overhead (bytes) ==")
	nd := newNode(dip.MAC2EM)
	sess := nd.session(dip.MAC2EM)
	optHdr, err := dip.OPTProfile(sess, []byte("x"), 0)
	if err != nil {
		log.Fatal(err)
	}
	ndnOptHdr, err := dip.NDNOPTDataProfile(sess, 1, []byte("x"), 0)
	if err != nil {
		log.Fatal(err)
	}
	rows := []struct {
		name     string
		measured int
		paper    int
	}{
		{"IPv6 forwarding", ip.HeaderLen6, 40},
		{"IPv4 forwarding", ip.HeaderLen4, 20},
		{"DIP-128 forwarding", dip.IPv6Profile([16]byte{}, [16]byte{}).WireSize(), 50},
		{"DIP-32 forwarding", dip.IPv4Profile([4]byte{}, [4]byte{}).WireSize(), 26},
		{"NDN forwarding", dip.NDNInterestProfile(1).WireSize(), 16},
		{"OPT forwarding", optHdr.WireSize(), 98},
		{"NDN+OPT forwarding", ndnOptHdr.WireSize(), 108},
	}
	fmt.Printf("%-22s %9s %7s\n", "network function", "measured", "paper")
	exact := true
	for _, r := range rows {
		mark := ""
		if r.measured != r.paper {
			mark = "  MISMATCH"
			exact = false
		}
		fmt.Printf("%-22s %9d %7d%s\n", r.name, r.measured, r.paper, mark)
	}
	if exact {
		fmt.Println("all rows match the paper exactly")
	}
	_ = ndn.HeaderSize
	fmt.Println()
}

func ablationMAC() {
	fmt.Println("== E3: MAC algorithm (full OPT hop: parm+MAC+mark) ==")
	for _, kind := range []dip.MACKind{dip.MAC2EM, dip.MACAESCMAC} {
		nd := newNode(kind)
		sess := nd.session(kind)
		h, err := dip.OPTProfile(sess, nil, 1)
		if err != nil {
			log.Fatal(err)
		}
		pkt, _ := dip.BuildPacket(h, nil)
		fmt.Printf("  %-10s %v/packet\n", kind, measure(fmt.Sprintf("mac/%v", kind), nd.runDIP(pkt)))
	}
	fmt.Println("  (the paper chose 2EM over AES for Tofino; in software the gap is\n   the AES per-packet key schedule + allocations)")
	fmt.Println()
}

func ablationParallel() {
	fmt.Println("== E4: packet-parameter parallel flag (OPT auth chain) ==")
	for _, parallel := range []bool{false, true} {
		nd := newNode(dip.MAC2EM)
		sess := nd.session(dip.MAC2EM)
		h, err := dip.OPTProfile(sess, nil, 1)
		if err != nil {
			log.Fatal(err)
		}
		h.Parallel = parallel
		pkt, _ := dip.BuildPacket(h, nil)
		name := "sequential"
		if parallel {
			name = "parallel"
		}
		fmt.Printf("  %-10s %v/packet\n", name, measure("parallel/"+name, nd.runDIP(pkt)))
	}
	fmt.Println("  (software goroutine fan-out costs more than it saves at these op\n   sizes — the flag targets hardware module parallelism)")
	fmt.Println()
}

func ablationFNCount() {
	fmt.Println("== E5: cost per additional FN (F_source no-ops) ==")
	var prev time.Duration
	for _, count := range []int{1, 2, 4, 8} {
		nd := newNode(dip.MAC2EM)
		h := &dip.Header{HopLimit: 64, Locations: make([]byte, 8)}
		for i := 0; i < count; i++ {
			h.FNs = append(h.FNs, dip.FN{Loc: 0, Len: 32, Key: dip.KeySource})
		}
		pkt, err := dip.BuildPacket(h, nil)
		if err != nil {
			log.Fatal(err)
		}
		d := measure(fmt.Sprintf("fncount/%d", count), nd.runDIP(pkt))
		delta := ""
		if prev > 0 {
			delta = fmt.Sprintf("  (+%v vs previous)", d-prev)
		}
		fmt.Printf("  %d FNs: %v/packet%s\n", count, d, delta)
		prev = d
	}
	fmt.Println()
}

func ablationFIBScale() {
	fmt.Println("== E6: DIP-32 forwarding vs FIB size ==")
	for _, routes := range []int{100, 10_000, 1_000_000} {
		state := dip.NewNodeState()
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < routes; i++ {
			plen := 8 + rng.Intn(25)
			key := rng.Uint32() &^ (1<<(32-plen) - 1)
			state.FIB32.AddUint32(key, plen, dip.NextHop{Port: 1})
		}
		state.FIB32.AddUint32(0x0A000000, 8, dip.NextHop{Port: 1})
		reg := dip.NewRouterRegistry(state.OpsConfig())
		nd := &node{engine: core.NewEngine(reg, dip.Limits{}), state: state}
		pkt, _ := dip.BuildPacket(dip.IPv4Profile([4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 9}), nil)
		fmt.Printf("  %8d routes: %v/packet\n", routes, measure(fmt.Sprintf("fibscale/%d", routes), nd.runDIP(pkt)))
	}
	fmt.Println()
}

func ablationPISA() {
	fmt.Println("== E7: software engine vs PISA-compiled datapath ==")
	// DIP-32 on both.
	nd := newNode(dip.MAC2EM)
	pkt, _ := dip.BuildPacket(dip.IPv4Profile([4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 9}), nil)
	fmt.Printf("  DIP-32 software: %v/packet\n", measure("pisa/software", nd.runDIP(pkt)))

	state := dip.NewNodeState()
	state.FIB32.AddUint32(0x0A000000, 8, dip.NextHop{Port: 1})
	pl, err := dip.CompilePISA(state.OpsConfig())
	if err != nil {
		log.Fatal(err)
	}
	pkt2, _ := dip.BuildPacket(dip.IPv4Profile([4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 9}), nil)
	var phv pisa.PHV
	var md pisa.Metadata
	fmt.Printf("  DIP-32 pisa:     %v/packet\n", measure("pisa/pisa", func(n int) {
		for i := 0; i < n; i++ {
			pkt2[3] = 64
			if _, err := pl.Process(pkt2, 0, &phv, &md); err != nil || md.Drop {
				log.Fatalf("pisa: md=%+v err=%v", md, err)
			}
		}
	}))
	fmt.Println("  (the PISA model pays for parser-FSM generality; the hardware it\n   models pays in pipeline stages instead)")
	fmt.Println()
	_ = binary.BigEndian // keep imports symmetrical with fig2 helpers
}

// mixedTraffic replays a realistic five-protocol blend from the workload
// generator through one fully loaded engine and reports aggregate
// throughput — the "one dataplane, every protocol" summary number.
func mixedTraffic() {
	fmt.Println("== mixed traffic: five protocols through one engine ==")
	nd := newNode(dip.MAC2EM)
	sess := nd.session(dip.MAC2EM)
	tr, err := workload.Generate(workload.Spec{
		Weights: map[workload.Protocol]float64{
			workload.ProtoIPv4:   4,
			workload.ProtoIPv6:   2,
			workload.ProtoNDN:    2,
			workload.ProtoOPT:    1,
			workload.ProtoNDNOPT: 1,
		},
		Names:   4096,
		ZipfS:   1.2,
		Session: sess,
		Seed:    1,
	}, 4096)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range []workload.Protocol{workload.ProtoIPv4, workload.ProtoIPv6,
		workload.ProtoNDN, workload.ProtoOPT, workload.ProtoNDNOPT} {
		fmt.Printf("  %-8v %5d packets\n", p, tr.Counts[p])
	}
	var ctx dip.ExecContext
	per := measure("mixed/blend", func(n int) {
		for i := 0; i < n; i++ {
			p := &tr.Packets[i%len(tr.Packets)]
			p.Rearm()
			v, err := dip.ParsePacket(p.Buf)
			if err != nil {
				log.Fatal(err)
			}
			ctx.Reset(v, p.InPort)
			nd.engine.Process(&ctx)
		}
	})
	fmt.Printf("  blended cost: %v/packet (≈ %.2f Mpps single-core)\n\n",
		per, 1e3/float64(per.Nanoseconds()))
}

// rwmuFIB is the pre-RCU FIB design (one RWMutex around a shared trie),
// kept here as the baseline the fiblookup experiment compares against.
type rwmuFIB struct {
	mu   sync.RWMutex
	trie *lpm.BitTrie[fib.NextHop]
}

func (t *rwmuFIB) lookup(key uint32) {
	var k [4]byte
	k[0], k[1], k[2], k[3] = byte(key>>24), byte(key>>16), byte(key>>8), byte(key)
	t.mu.RLock()
	t.trie.Lookup(k[:], 32)
	t.mu.RUnlock()
}

// ablationFIBLookup compares concurrent FIB lookup throughput of the RCU
// snapshot table against the RWMutex baseline it replaced (E15). Workers
// share nothing but the table, the forwarding access pattern.
// journeyOverhead measures what journey tracing costs the forwarding hot
// path: the same DIP-32 forwarding loop with journeys off (the plain
// telemetry recorder every router runs), sampled 1-in-1024 (the production
// setting), and always-on (every packet spanned). The off/sampled gap is
// the per-packet tax of the tap's stripe counter; off must stay 0 allocs/op
// (pinned by TestZeroAllocJourneyTapUnsampled).
func journeyOverhead() {
	fmt.Println("== E17: journey tracing overhead on the forwarding path ==")
	pktFor := func() ([]byte, *node) {
		nd := newNode(dip.MAC2EM)
		pkt, _ := dip.BuildPacket(dip.IPv4Profile([4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 9}), nil)
		return pkt, nd
	}

	pkt, nd := pktFor()
	nd.engine.SetRecorder(&telemetry.Metrics{})
	dOff := measure("journey/off", nd.runDIP(pkt))

	pkt, nd = pktFor()
	sink := journey.NewEmitter(4096)
	nd.engine.SetRecorder(journey.NewRouterTap("bench", sink, &telemetry.Metrics{}, 1024, nil))
	dSampled := measure("journey/1in1024", nd.runDIP(pkt))

	pkt, nd = pktFor()
	sink = journey.NewEmitter(4096)
	nd.engine.SetRecorder(journey.NewRouterTap("bench", sink, &telemetry.Metrics{}, 1, nil))
	dAlways := measure("journey/always", nd.runDIP(pkt))

	fmt.Printf("  journeys off:     %v/packet\n", dOff)
	fmt.Printf("  sampled 1-in-1024: %v/packet (+%v)\n", dSampled, dSampled-dOff)
	fmt.Printf("  always-on:        %v/packet (+%v)\n", dAlways, dAlways-dOff)
	fmt.Println()
}

// intOverhead measures the in-band telemetry tax on the forwarding hot path
// (E22): the same DIP-32 loop with no F_tel FN, with an 8-slot telemetry
// region stamped every pass, and with 1-in-1024 edge postcard collection
// (decode + digest + aggregate) on top. The stamped loop resets the
// region's count byte each iteration — without that, the region would hit
// steady-state overflow after eight packets and the number measured would
// be the cheap overflow-bit path, not the 24-byte record write every
// fabric hop actually pays.
func intOverhead() {
	fmt.Println("== E22: in-band telemetry stamping + postcard collection ==")
	telNode := func() *node {
		nd := newNode(dip.MAC2EM)
		reg := dip.NewRouterRegistry(nd.state.OpsConfig())
		reg.MustRegister(extops.NewTelWith(extops.TelConfig{
			HopID: 7,
			Epoch: nd.state.FIB32.Epoch,
		}))
		nd.engine = core.NewEngine(reg, dip.Limits{})
		nd.engine.SetRecorder(&telemetry.Metrics{})
		return nd
	}
	profile := func(slots int) *core.Header {
		h := dip.IPv4Profile([4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 9})
		if slots > 0 {
			h = profiles.WithTelemetry(h, slots)
		}
		return h
	}
	stampedPkt := func() ([]byte, []byte) {
		pkt, err := dip.BuildPacket(profile(8), nil)
		if err != nil {
			log.Fatal(err)
		}
		v, err := dip.ParsePacket(pkt)
		if err != nil {
			log.Fatal(err)
		}
		region, _, ok := profiles.TelemetryRegion(v)
		if !ok {
			log.Fatal("stamped packet has no telemetry region")
		}
		return pkt, region
	}
	runStamped := func(nd *node, pkt, region []byte, post func(core.View)) func(int) {
		var ctx dip.ExecContext
		return func(n int) {
			for i := 0; i < n; i++ {
				pkt[3] = 64
				region[0] = 0 // fresh region: stamp slot 0, not the overflow bit
				v, err := dip.ParsePacket(pkt)
				if err != nil {
					log.Fatal(err)
				}
				v.DecHopLimit()
				ctx.Reset(v, 0)
				nd.engine.Process(&ctx)
				if ctx.Verdict == dip.VerdictDrop {
					log.Fatalf("dropped: %v", ctx.Reason)
				}
				if post != nil {
					post(v)
				}
			}
		}
	}

	nd := telNode()
	plain, err := dip.BuildPacket(profile(0), nil)
	if err != nil {
		log.Fatal(err)
	}
	dPlain := measure("int/unstamped", nd.runDIP(plain))

	nd = telNode()
	pkt, region := stampedPkt()
	dStamped := measure("int/stamped8", runStamped(nd, pkt, region, nil))

	nd = telNode()
	pkt, region = stampedPkt()
	collector := inband.NewCollector(inband.Config{})
	var seen int64
	collect := func(v core.View) {
		seen++
		if (seen-1)%1024 != 0 {
			return
		}
		reg, off, ok := profiles.TelemetryRegion(v)
		if !ok {
			return
		}
		hops, overflow, err := extops.DecodeTel(reg)
		if err != nil {
			collector.CountDecodeError()
			return
		}
		collector.Add(inband.Postcard{
			Flow:  inband.FlowOf(v.Locations(), off),
			Node:  "edge",
			Proto: "ipv4",
			Hops:  hops, Overflow: overflow,
		})
	}
	dPostcard := measure("int/postcard1in1024", runStamped(nd, pkt, region, collect))

	ratio := 0.0
	if dPlain > 0 {
		ratio = float64(dStamped) / float64(dPlain)
	}
	st := collector.Stats()
	fmt.Printf("  unstamped:          %v/packet\n", dPlain)
	fmt.Printf("  stamped, 8 slots:   %v/packet (+%v, %.2fx)\n", dStamped, dStamped-dPlain, ratio)
	fmt.Printf("  + postcards 1/1024: %v/packet (+%v)\n", dPostcard, dPostcard-dStamped)
	fmt.Printf("  collector: postcards=%d overflows=%d decode_errors=%d\n",
		st.Postcards, st.Overflows, st.DecodeErrors)
	fmt.Println()
}

func ablationFIBLookup() {
	fmt.Println("== E15: concurrent FIB lookup, RCU snapshots vs RWMutex ==")
	const routes = 10_000
	// Each measurement spawns the worker set, so the default -trials=1000
	// (250 lookups per worker) would be dominated by goroutine spawn and
	// futex wake costs and report noise. Amortize them over a floor of
	// 20000 lookups per round for this experiment only.
	saved := *trials
	if *trials < 20_000 {
		*trials = 20_000
	}
	defer func() { *trials = saved }()
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	rng := rand.New(rand.NewSource(7))
	keys := make([]uint32, routes)
	for i := range keys {
		keys[i] = rng.Uint32()
	}

	fanout := func(look func(uint32)) func(int) {
		return func(n int) {
			per := n / workers
			if per == 0 {
				per = 1
			}
			var wg sync.WaitGroup
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						look(keys[(w*per+i)%routes])
					}
				}(w)
			}
			wg.Wait()
		}
	}

	rcu := fib.New()
	base := &rwmuFIB{trie: lpm.NewBitTrie[fib.NextHop]()}
	for i, k := range keys {
		rcu.AddUint32(k, 32, fib.NextHop{Port: i & 7})
		var kb [4]byte
		kb[0], kb[1], kb[2], kb[3] = byte(k>>24), byte(k>>16), byte(k>>8), byte(k)
		base.trie.Insert(kb[:], 32, fib.NextHop{Port: i & 7})
	}

	dRCU := measure("fiblookup/rcu", fanout(func(k uint32) { rcu.LookupUint32(k) }))
	dRW := measure("fiblookup/rwmutex", fanout(base.lookup))
	fmt.Printf("  %d workers, %d routes\n", workers, routes)
	fmt.Printf("  rcu:     %v/lookup\n", dRCU)
	fmt.Printf("  rwmutex: %v/lookup\n", dRW)
	if dRCU > 0 {
		fmt.Printf("  speedup: %.2fx\n", float64(dRW)/float64(dRCU))
	}
	fmt.Println()
}

// burstScaling measures the batched run-to-completion dataplane end to end:
// GOMAXPROCS concurrent producers (one per simulated RX queue) feed packets
// through Ingress.Submit/SubmitBurst, the flow-dispatch table pins each flow
// to one forwarding goroutine, and forwarders run bursts to completion. The
// grid is GOMAXPROCS x batch {1, 64}; the claim pinned by benchguard is
// that batching amortizes the per-packet costs (queue lock + futex wake per
// Submit, one pooled context and one sampling-counter update per packet)
// into per-burst costs, so batch=64 sustains >=1.5x the packet rate of
// batch=1 on the same producer and forwarder count.
func burstScaling() {
	fmt.Println("== E18: multicore burst scaling, batch=1 vs batch=64 ==")
	// Each round spawns only GOMAXPROCS producer goroutines, but each
	// packet at batch=1 is a full submit/wake/forward cycle; amortize
	// spawn and scheduler noise over a floor of 20000 packets per round
	// for this experiment only.
	saved := *trials
	if *trials < 20_000 {
		*trials = 20_000
	}
	defer func() { *trials = saved }()

	// Distinct source addresses give every packet a distinct FN-locations
	// region, so the dispatch hash spreads flows across all forwarders.
	// Reusing a buffer before it drains is safe here: flow pinning routes
	// both submissions to the same forwarder queue, which processes them
	// sequentially (the hop limit just decrements once per pass).
	const pool = 16384
	pkts := make([][]byte, pool)
	for i := range pkts {
		p, err := dip.BuildPacket(dip.IPv4Profile(
			[4]byte{10, byte(i >> 8), byte(i), 1}, [4]byte{2, 2, 2, 2}), nil)
		if err != nil {
			log.Fatal(err)
		}
		pkts[i] = p
	}

	run := func(procs, batch int) time.Duration {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)

		state := dip.NewNodeState()
		state.FIB32.AddUint32(0, 0, dip.Local)
		r := dip.NewRouter(state.OpsConfig(), dip.RouterOptions{
			LocalDelivery: func([]byte, int) {},
		})
		// Queues deep enough to hold an entire round: producers never hit
		// backpressure, so a round measures pure pipeline work (submit +
		// dispatch + forward) instead of producer/forwarder timing races
		// on a time-shared CPU.
		in := r.ServeGuarded(dip.ServeConfig{
			Workers:   procs,
			Batch:     batch,
			HighDepth: 64,
			LowDepth:  8192,
		})
		defer in.Close()

		// Each producer owns a disjoint slice of the pool (its RX queue's
		// packets), so rearming and resubmission never share buffers
		// across producers. At batch=1 every packet is an individual
		// Submit — per-packet queue lock and wake; at batch=64 producers
		// hand the ingress NIC-style rx windows via SubmitBurst.
		per := pool / procs
		fn := func(n int) {
			// The previous round drained fully, so nothing is in flight
			// and the hop limits can be rearmed in place.
			for _, p := range pkts {
				p[3] = 64
			}
			start := in.Processed()
			each := n / procs
			var wg sync.WaitGroup
			wg.Add(procs)
			for w := 0; w < procs; w++ {
				go func(w int) {
					defer wg.Done()
					own := pkts[w*per : (w+1)*per]
					if batch == 1 {
						for i := 0; i < each; i++ {
							for !in.Submit(own[i%per], w) {
								runtime.Gosched() // safety valve; queues are sized to never fill
							}
						}
						return
					}
					for off := 0; off < each; {
						end := off + batch
						if end > each {
							end = each
						}
						lo, hi := off%per, off%per+(end-off)
						if hi > per {
							hi = per // clip the window at the slice boundary
						}
						chunk := own[lo:hi]
						for len(chunk) > 0 {
							chunk = chunk[in.SubmitBurst(chunk, w):]
							if len(chunk) > 0 {
								runtime.Gosched() // safety valve; queues are sized to never fill
							}
						}
						off += hi - lo
					}
				}(w)
			}
			wg.Wait()
			for in.Processed()-start < int64(procs*each) {
				time.Sleep(20 * time.Microsecond)
			}
		}
		return measure(fmt.Sprintf("burst/batch%d/gmp%d", batch, procs), fn)
	}

	fmt.Printf("%-10s%14s%14s%10s\n", "gomaxprocs", "batch=1", "batch=64", "speedup")
	for _, procs := range []int{1, 2, 4} {
		d1 := run(procs, 1)
		d64 := run(procs, 64)
		speedup := 0.0
		if d64 > 0 {
			speedup = float64(d1) / float64(d64)
		}
		fmt.Printf("%-10d%14v%14v%9.2fx\n", procs, d1, d64, speedup)
	}
	fmt.Println("  speedup = batch1 ns / batch64 ns at equal GOMAXPROCS")
	fmt.Println()
}

// fetchCC runs the E19 fleet comparison: the same congested consumer fleet
// (a shared 4 Mbit/s bottleneck, no cache, every byte contended) fetched
// under the adaptive controllers (AIMD, CUBIC) and the blind fixed-window
// baseline. The table reports goodput, recovery effort, fairness, and
// completion latency; the -json records carry the latency percentiles so
// benchguard can gate future regressions once a baseline exists. The fleet
// runs under netsim virtual time from a fixed seed, so the rows are exactly
// reproducible — wall-clock noise never enters them.
func fetchCC() {
	fmt.Println("== E19: congestion-controlled fetch, adaptive vs blind (fleet) ==")
	base := workload.FleetConfig{
		Consumers:          24,
		ObjectsPerConsumer: 3,
		Objects:            64,
		SegsPerObject:      8,
		SegSize:            1000,
		BottleneckBPS:      4_000_000,
		BottleneckQueue:    10 * time.Millisecond,
		CacheEntries:       -1,
		Horizon:            40 * time.Second,
		Seed:               21,
		MaxRetx:            8,
	}
	fmt.Printf("  %-8s %12s %9s %6s %6s %8s %10s %10s\n",
		"algo", "goodput", "objects", "retx", "cuts", "jain", "p50", "p99")
	for _, row := range []struct {
		label    string
		algo     cc.Algo
		initCwnd int
	}{
		{"aimd", cc.AlgoAIMD, 2},
		{"cubic", cc.AlgoCUBIC, 2},
		{"blind", cc.AlgoBlind, 16},
	} {
		cfg := base
		cfg.CC = cc.Config{Algo: row.algo, InitCwnd: row.initCwnd, MaxCwnd: 64,
			RTT: cc.RTTConfig{InitRTO: 100 * time.Millisecond, MinRTO: 20 * time.Millisecond}}
		fl, err := workload.NewFleet(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res := fl.Run()
		fmt.Printf("  %-8s %9.0fbps %6d/%-2d %6d %6d %8.3f %10v %10v\n",
			row.label, res.GoodputBps, res.ObjectsCompleted,
			res.ObjectsCompleted+res.ObjectsFailed,
			res.Retransmits, res.CwndCuts, res.JainIndex, res.P50, res.P99)
		if *jsonOut != "" {
			for _, rec := range []struct {
				name string
				ns   float64
			}{
				{fmt.Sprintf("fetchcc/%s/p50", row.label), float64(res.P50.Nanoseconds())},
				{fmt.Sprintf("fetchcc/%s/p99", row.label), float64(res.P99.Nanoseconds())},
			} {
				jsonRecords = append(jsonRecords, benchRecord{
					Name: rec.name, NsPerOp: rec.ns, Gomaxprocs: runtime.GOMAXPROCS(0)})
			}
		}
	}
	// Goodput vs offered load: sweep the closed-loop population at fixed
	// AIMD config. The degrade-proportionally claim: delivered bytes track
	// offered bytes (no congestion collapse — retries never eat the link)
	// while completion latency grows with the overload factor and fairness
	// holds.
	fmt.Println("  goodput vs offered load (aimd):")
	fmt.Printf("  %-10s %11s %11s %6s %8s %10s %12s\n",
		"consumers", "offered", "delivered", "retx", "jain", "p50", "p99")
	for _, consumers := range []int{6, 12, 24, 48, 96} {
		cfg := base
		cfg.Consumers = consumers
		cfg.CC = cc.Config{Algo: cc.AlgoAIMD, InitCwnd: 2, MaxCwnd: 64,
			RTT: cc.RTTConfig{InitRTO: 100 * time.Millisecond, MinRTO: 20 * time.Millisecond}}
		fl, err := workload.NewFleet(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res := fl.Run()
		offered := int64(consumers * cfg.ObjectsPerConsumer * cfg.SegsPerObject * cfg.SegSize)
		fmt.Printf("  %-10d %10dkB %10dkB %6d %8.3f %10v %12v\n",
			consumers, offered/1000, res.GoodputBytes/1000,
			res.Retransmits, res.JainIndex, res.P50, res.P99)
	}
	fmt.Println("  (adaptive rows should carry more goodput with fewer retransmits\n   than blind; virtual-time rows are seed-exact, not wall-clock noisy)")
	fmt.Println()
}

// csTier is E20: the tiered content store swept past RAM capacity. The hot
// LRU holds hotCap objects; catalogs of hotCap/2 up to 16x hotCap are
// preloaded (touched so eviction admits them to the cold arena), then a
// fixed-seed uniform request stream measures how the per-tier hit split
// shifts as the catalog outgrows RAM. Two latencies are reported per
// catalog: the hot hit (the forwarder fast path — must stay flat no matter
// how much cold state exists below it) and the full cold cycle
// (pread + checksum verify + hot-tier promotion + displaced eviction),
// which is the off-path cost a parked interest pays.
func csTier() {
	fmt.Println("== E20: tiered content store, catalog sweep past RAM capacity ==")
	const (
		hotCap   = 4096
		shards   = 4
		slotSize = 512
	)
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	fmt.Printf("  %-9s %9s %9s %8s %8s %12s %12s\n",
		"catalog", "hot-hit%", "cold%", "spilled", "errors", "hot ns/op", "cold ns/op")
	for _, catalog := range []int{hotCap / 2, hotCap, 4 * hotCap, 16 * hotCap} {
		hot := cs.NewSharded[uint32](hotCap, shards)
		ts, err := cs.NewTiered(hot, cs.ColdConfig{
			Slots:    catalog + hotCap, // headroom so spills never drop
			SlotSize: slotSize,
			// Readers 0: synchronous mode. RequestCold runs the pread and
			// promotion inline, so every measurement below is deterministic
			// per-op work, not a handoff to a goroutine pool.
		})
		if err != nil {
			log.Fatal(err)
		}
		// Preload with a touch per object: insert-on-second-hit admission
		// only spills entries that were hit after insert.
		for i := 0; i < catalog; i++ {
			name := uint32(0xE2000000 + i)
			ts.Put(name, payload)
			ts.GetHot(name)
		}
		// Fixed-seed uniform stream over the whole catalog: the per-tier
		// split is the capacity story (catalog <= hotCap serves from RAM;
		// beyond it the overflow serves from the arena, never a miss).
		r := rand.New(rand.NewSource(20))
		base := ts.Stats()
		const streamLen = 4096
		for i := 0; i < streamLen; i++ {
			name := uint32(0xE2000000 + r.Intn(catalog))
			if _, ok := ts.GetHot(name); ok {
				continue
			}
			if ts.ColdContains(name) {
				ts.RequestCold(name)
			}
		}
		st := ts.Stats()
		hotHits := st.HotHits - base.HotHits
		coldHits := st.ColdHits - base.ColdHits
		served := float64(hotHits + coldHits)
		hotPct := 100 * float64(hotHits) / served
		coldPct := 100 * float64(coldHits) / served

		// Hot-hit latency: one resident name hammered through GetHot. This
		// is the row benchguard holds flat across catalog sizes — the cold
		// tier must not tax the RAM fast path.
		hotName := uint32(0xE2000000)
		ts.Put(hotName, payload)
		ts.GetHot(hotName)
		hotNs := measure(fmt.Sprintf("cstier/cat%d/hotget", catalog), func(n int) {
			for i := 0; i < n; i++ {
				ts.GetHot(hotName)
			}
		})

		// Cold cycle latency: only meaningful once the catalog has actually
		// spilled. Each op replays a full recovery for a cold-resident name;
		// the promoted copy stays byte-identical to its slot, so steady
		// state is pread + verify + promote with no re-spill write.
		coldCol := "-"
		if catalog > hotCap {
			spilled := catalog - hotCap
			idx := 0
			coldNs := measure(fmt.Sprintf("cstier/cat%d/coldcycle", catalog), func(n int) {
				for i := 0; i < n; i++ {
					ts.RequestCold(uint32(0xE2000000 + idx%spilled))
					idx++
				}
			})
			coldCol = fmt.Sprintf("%d", coldNs.Nanoseconds())
		}
		if *jsonOut != "" {
			// Hit fractions ride the record stream too (NsPerOp holds the
			// dimensionless fraction, as fetchcc does for percentiles).
			jsonRecords = append(jsonRecords, benchRecord{
				Name: fmt.Sprintf("cstier/cat%d/hotratio", catalog), NsPerOp: float64(hotHits) / served,
				Gomaxprocs: runtime.GOMAXPROCS(0)})
		}
		fmt.Printf("  %-9d %8.1f%% %8.1f%% %8d %8d %12d %12s\n",
			catalog, hotPct, coldPct, st.Spilled, st.ReadErrors,
			hotNs.Nanoseconds(), coldCol)
		if err := ts.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("  (hot ns/op must stay flat as the catalog grows 16x past RAM;\n   cold ns/op is the off-path recovery cost parked interests pay)")
	fmt.Println()
}

// churnExperiment is E21: the control-plane scale run. At -churn-scale 1
// it installs 1.05M routes (550k/32-bit, 300k/128-bit, 200k names)
// through batched transactions, then replays eight 20k-operation churn
// storms while concurrent samplers and a burst dataplane read the same
// tables. The claim under test is the RCU FIB's core promise: route churn
// at full control-plane rate must not disturb the read path — the storm
// p99 lookup latency stays within a small factor of the quiescent p99
// (benchguard holds the ratio), commits stay cheap (one pointer store,
// COW path copies amortized per batch), and heap high-water stays bounded.
// The harness's built-in oracle (tables walked against its own bookkeeping
// after the storms) makes a desynchronized run a hard failure, not a
// silently wrong measurement.
func churnExperiment() {
	fmt.Println("== E21: million-route churn under live lookups ==")
	s := *churnScale
	scale := func(n int) int {
		v := int(float64(n) * s)
		if v < 100 {
			v = 100
		}
		return v
	}
	cfg := churn.Config{
		Routes32:   scale(550_000),
		Routes128:  scale(300_000),
		RoutesName: scale(200_000),
		StormOps:   scale(20_000),
		Seed:       21,
		Forward:    true,
		Log: func(format string, args ...any) {
			fmt.Printf("  "+format+"\n", args...)
		},
	}
	res := churn.Run(cfg)
	if !res.OracleOK {
		log.Fatalf("churn oracle failed: %s", res.OracleDiag)
	}
	installPer := float64(res.InstallNs) / float64(res.Installed)
	fmt.Printf("  install: %d routes in %v (%.0fns/route, %d commits, %.0fns/commit)\n",
		res.Installed, time.Duration(res.InstallNs), installPer, res.Commits, res.NsPerCommit)
	fmt.Printf("  storms:  %d ops in %v, heap high-water %dMB, dataplane forwarded %d\n",
		res.StormOpsApplied, time.Duration(res.StormNs), res.HeapHighWater>>20, res.Forwarded)
	fmt.Printf("  lookup latency   %10s %10s\n", "p50", "p99")
	fmt.Printf("    quiescent      %9dns %9dns\n", res.QuiesceP50, res.QuiesceP99)
	fmt.Printf("    under churn    %9dns %9dns   (max %v, %d samples)\n",
		res.StormP50, res.StormP99, time.Duration(res.StormMax), res.Samples)
	fmt.Printf("  jitter ratio (storm p99 / quiesce p99): %.2fx\n", res.JitterRatio)
	if *jsonOut != "" {
		gmp := runtime.GOMAXPROCS(0)
		jsonRecords = append(jsonRecords,
			benchRecord{Name: "churn/install", NsPerOp: installPer,
				BytesPerOp: float64(res.HeapHighWater), Gomaxprocs: gmp},
			benchRecord{Name: "churn/commit", NsPerOp: res.NsPerCommit, Gomaxprocs: gmp},
			benchRecord{Name: "churn/lookup/quiesce-p50", NsPerOp: float64(res.QuiesceP50), Gomaxprocs: gmp},
			benchRecord{Name: "churn/lookup/quiesce-p99", NsPerOp: float64(res.QuiesceP99), Gomaxprocs: gmp},
			benchRecord{Name: "churn/lookup/storm-p50", NsPerOp: float64(res.StormP50), Gomaxprocs: gmp},
			benchRecord{Name: "churn/lookup/storm-p99", NsPerOp: float64(res.StormP99), Gomaxprocs: gmp},
			benchRecord{Name: "churn/jitter", NsPerOp: res.JitterRatio, Gomaxprocs: gmp},
		)
	}
	fmt.Println("  (the gate: churn must not disturb readers — storm p99 stays within a\n   small multiple of quiescent p99; oracle desync is a hard failure)")
	fmt.Println()
}
