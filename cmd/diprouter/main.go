// Command diprouter runs a DIP router over a UDP overlay: each router port
// is a UDP peer, DIP packets travel as datagrams, and the forwarding tables
// are configured from flags. Together with diphost this demonstrates the
// library on real sockets rather than the simulator.
//
// Example (a one-router NDN setup):
//
//	diprouter -listen 127.0.0.1:7000 \
//	    -peer 127.0.0.1:7001 -peer 127.0.0.1:7002 \
//	    -name 0xAA000000/8=1
//
// gives the router two ports (0 → :7001, 1 → :7002) and routes content
// names under 0xAA/8 to port 1. Incoming datagrams are attributed to a port
// by their source address; datagrams from unknown sources arrive on port 0.
//
// Flags:
//
//	-listen addr      UDP address to bind (required)
//	-peer addr        add a port sending to addr (repeatable, in port order)
//	-route32 P/L=N    route 32-bit prefix P (hex or dotted) length L to port N
//	-route128 HEX/L=N route 128-bit prefix to port N
//	-name P/L=N       route content-name prefix to port N ("local" delivers)
//	-cache N          enable an N-entry content store
//	-secret HEX       16-byte DRKey secret enabling the OPT operations
//	-maxfns N         per-packet FN budget (security limit, §2.4)
//	-v                log every packet decision
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strconv"
	"strings"

	"dip"
	"dip/internal/telemetry"
)

type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var (
		listen    = flag.String("listen", "", "UDP address to bind")
		cacheSize = flag.Int("cache", 0, "content store capacity (0 = off)")
		secretHex = flag.String("secret", "", "16-byte hex DRKey secret (enables OPT ops)")
		maxFNs    = flag.Int("maxfns", 0, "per-packet FN budget (0 = wire max)")
		verbose   = flag.Bool("v", false, "log packets")
		peers     stringList
		routes32  stringList
		routes128 stringList
		names     stringList
	)
	flag.Var(&peers, "peer", "peer UDP address (one per port, in order)")
	flag.Var(&routes32, "route32", "32-bit route prefix/len=port")
	flag.Var(&routes128, "route128", "128-bit route hexprefix/len=port")
	flag.Var(&names, "name", "content-name route hexprefix/len=port|local")
	flag.Parse()

	if *listen == "" {
		flag.Usage()
		os.Exit(2)
	}
	laddr, err := net.ResolveUDPAddr("udp", *listen)
	if err != nil {
		log.Fatalf("listen address: %v", err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		log.Fatalf("bind: %v", err)
	}
	defer conn.Close()

	state := dip.NewNodeState()
	if *cacheSize > 0 {
		state.EnableCache(*cacheSize)
	}
	if *secretHex != "" {
		secret, err := hex.DecodeString(*secretHex)
		if err != nil {
			log.Fatalf("secret: %v", err)
		}
		sv, err := dip.NewSecret(*listen, secret)
		if err != nil {
			log.Fatalf("secret: %v", err)
		}
		state.EnableOPT(sv, dip.MAC2EM, [16]byte{}, 0)
	}
	for _, r := range routes32 {
		if err := addRoute32(state, r); err != nil {
			log.Fatalf("-route32 %q: %v", r, err)
		}
	}
	for _, r := range routes128 {
		if err := addRoute128(state, r); err != nil {
			log.Fatalf("-route128 %q: %v", r, err)
		}
	}
	for _, r := range names {
		if err := addNameRoute(state, r); err != nil {
			log.Fatalf("-name %q: %v", r, err)
		}
	}

	metrics := &telemetry.Metrics{}
	r := dip.NewRouter(state.OpsConfig(), dip.RouterOptions{
		Name:    *listen,
		Limits:  dip.Limits{MaxFNs: *maxFNs},
		Metrics: metrics,
		LocalDelivery: func(pkt []byte, inPort int) {
			if *verbose {
				log.Printf("delivered locally: %d bytes from port %d", len(pkt), inPort)
			}
		},
	})

	portOf := map[string]int{}
	for i, p := range peers {
		raddr, err := net.ResolveUDPAddr("udp", p)
		if err != nil {
			log.Fatalf("-peer %q: %v", p, err)
		}
		idx := r.AttachPort(dip.PortFunc(func(pkt []byte) {
			if _, err := conn.WriteToUDP(pkt, raddr); err != nil && *verbose {
				log.Printf("send to %v: %v", raddr, err)
			}
		}))
		portOf[raddr.String()] = idx
		if *verbose {
			log.Printf("port %d -> %v", i, raddr)
		}
	}

	log.Printf("diprouter listening on %v with %d ports", laddr, r.NumPorts())
	buf := make([]byte, 65535)
	for {
		n, raddr, err := conn.ReadFromUDP(buf)
		if err != nil {
			log.Printf("read: %v", err)
			continue
		}
		inPort := portOf[raddr.String()] // unknown senders map to port 0
		if *verbose {
			log.Printf("rx %d bytes from %v (port %d)", n, raddr, inPort)
		}
		r.HandlePacket(buf[:n], inPort)
	}
}

// parseTarget splits "prefix/len=port" and resolves "local".
func parseTarget(spec string) (prefix string, plen int, port int, local bool, err error) {
	eq := strings.LastIndex(spec, "=")
	sl := strings.LastIndex(spec, "/")
	if eq < 0 || sl < 0 || sl > eq {
		return "", 0, 0, false, fmt.Errorf("want prefix/len=port")
	}
	prefix = spec[:sl]
	plen, err = strconv.Atoi(spec[sl+1 : eq])
	if err != nil {
		return "", 0, 0, false, fmt.Errorf("prefix length: %v", err)
	}
	target := spec[eq+1:]
	if target == "local" {
		return prefix, plen, 0, true, nil
	}
	port, err = strconv.Atoi(target)
	return prefix, plen, port, false, err
}

func parse32(s string) (uint32, error) {
	if strings.Contains(s, ".") {
		var a, b, c, d int
		if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
			return 0, err
		}
		return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d), nil
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 32)
	return uint32(v), err
}

func addRoute32(state *dip.NodeState, spec string) error {
	prefix, plen, port, local, err := parseTarget(spec)
	if err != nil {
		return err
	}
	key, err := parse32(prefix)
	if err != nil {
		return err
	}
	nh := dip.NextHop{Port: port}
	if local {
		nh = dip.Local
	}
	return state.FIB32.AddUint32(key, plen, nh)
}

func addRoute128(state *dip.NodeState, spec string) error {
	prefix, plen, port, local, err := parseTarget(spec)
	if err != nil {
		return err
	}
	key, err := hex.DecodeString(strings.TrimPrefix(prefix, "0x"))
	if err != nil {
		return err
	}
	key = append(key, make([]byte, 16-len(key))...)
	nh := dip.NextHop{Port: port}
	if local {
		nh = dip.Local
	}
	return state.FIB128.Add(key, plen, nh)
}

func addNameRoute(state *dip.NodeState, spec string) error {
	prefix, plen, port, local, err := parseTarget(spec)
	if err != nil {
		return err
	}
	key, err := parse32(prefix)
	if err != nil {
		return err
	}
	nh := dip.NextHop{Port: port}
	if local {
		nh = dip.Local
	}
	return state.NameFIB.AddUint32(key, plen, nh)
}
