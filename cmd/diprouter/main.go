// Command diprouter runs a DIP router over a UDP overlay: each router port
// is a UDP peer, DIP packets travel as datagrams, and the forwarding tables
// are configured from flags. Together with diphost this demonstrates the
// library on real sockets rather than the simulator.
//
// Example (a one-router NDN setup):
//
//	diprouter -listen 127.0.0.1:7000 \
//	    -peer 127.0.0.1:7001 -peer 127.0.0.1:7002 \
//	    -name 0xAA000000/8=1
//
// gives the router two ports (0 → :7001, 1 → :7002) and routes content
// names under 0xAA/8 to port 1. Incoming datagrams are attributed to a port
// by their source address; datagrams from unknown sources arrive on port 0.
//
// Flags:
//
//	-listen addr      UDP address to bind (required)
//	-peer addr        add a port sending to addr (repeatable, in port order)
//	-route32 P/L=N    route 32-bit prefix P (hex or dotted) length L to port N
//	-route128 HEX/L=N route 128-bit prefix to port N
//	-name P/L=N       route content-name prefix to port N ("local" delivers)
//	-cache N          enable an N-entry content store
//	-cscold N         add a cold tier: an N-slot file-backed arena under the
//	                  hot store (requires -cache); hot evictions spill to it
//	                  under insert-on-second-hit admission, and cold hits
//	                  are re-injected asynchronously — forwarders never
//	                  block on disk
//	-csslot BYTES     cold-tier slot payload capacity (default 2048)
//	-csreaders N      cold-tier async reader goroutines (default 2)
//	-cscold-file PATH cold arena backing file (default: unlinked temp file)
//	-secret HEX       16-byte DRKey secret enabling the OPT operations
//	-maxfns N         per-packet FN budget (security limit, §2.4)
//	-v                log every packet decision
//
// Overload hardening (the ingress guard layer):
//
//	-workers N        drain packets through N guarded forwarders instead of
//	                  inline (enables the priority queues, admission
//	                  control, and panic quarantine); each flow is pinned
//	                  to one forwarder by a hash of its FN locations
//	-queue N          per-class queue depth per forwarder (default 256)
//	-batch N          run-to-completion burst size: each forwarder takes up
//	                  to N packets per queue visit and runs them all before
//	                  returning (default 64; 1 = packet at a time)
//	-dispatch-shards N  flow-dispatch table size, rounded to a power of two
//	                  (default 256)
//	-admit-port R:B   per-inport token bucket: R pkts/s, burst B
//	-admit-bulk R:B   bulk-class token bucket (control class is never
//	                  limited by this flag)
//	-pitperport N     per-inport pending-interest cap (flood defense)
//	-pitshards N      PIT lock shards (power of two; scales concurrent workers)
//	-csshards N       content store lock shards (trades exact LRU for scaling)
//	-health D         log a guard health line every D (e.g. 10s) and dump
//	                  new quarantine captures in dipdump-ready form
//
// Control plane (in-fabric route exchange):
//
//	-speaker          run the route-exchange speaker: originate this
//	                  router's configured routes, advertise them to every
//	                  peer inside DIP control packets (F_ctl FN, control
//	                  class), and install what peers advertise through
//	                  batched FIB transactions; withdrawn or silent
//	                  neighbors' routes age out via soft state
//	-speaker-refresh D  advertisement refresh period (default 5s)
//	-speaker-hold D   soft-state hold time before a silent neighbor's
//	                  routes expire (default 3x refresh)
//
// Observability (the metrics/trace/pprof listener):
//
//	-metrics-addr A   serve Prometheus text on A/metrics, sampled packet
//	                  traces on A/trace (dipdump-ready), and Go profiling
//	                  under A/debug/pprof/
//	-trace-every N    sample every Nth packet's FN journey into the trace
//	                  ring (0 = tracing off; sampling keeps the unsampled
//	                  forwarding path allocation-free)
//	-trace-ring N     trace ring capacity in records (default 1024)
//	-journey-every N  emit a cross-hop journey span for every Nth packet
//	                  onto A/journeys (0 = off); a central collector (or
//	                  dipdump) stitches spans from every process
//	-journey-ring N   journey span ring capacity (default 4096)
//	-int-every N      in-band telemetry: register the F_tel stamping op (so
//	                  transit packets carrying a telemetry region get this
//	                  hop's record) and, at the delivering edge, strip every
//	                  Nth telemetry-carrying packet into a postcard collector
//	                  exported as dip_int_* (0 = off)
//	-int-slots N      telemetry slot capacity for packets this router
//	                  originates (cold-tier re-injects; default 8)
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"dip"
	"dip/internal/bootstrap"
	"dip/internal/core"
	"dip/internal/extops"
	"dip/internal/inband"
	"dip/internal/journey"
	"dip/internal/nhash"
	"dip/internal/pit"
	"dip/internal/profiles"
	"dip/internal/telemetry"
)

type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var (
		listen    = flag.String("listen", "", "UDP address to bind")
		cacheSize = flag.Int("cache", 0, "content store capacity (0 = off)")
		csCold    = flag.Int("cscold", 0, "cold-tier arena slots (0 = no cold tier; requires -cache)")
		csSlot    = flag.Int("csslot", 0, "cold-tier slot payload bytes (0 = default 2048)")
		csReaders = flag.Int("csreaders", 2, "cold-tier async reader goroutines")
		csFile    = flag.String("cscold-file", "", "cold arena backing file (empty = unlinked temp)")
		secretHex = flag.String("secret", "", "16-byte hex DRKey secret (enables OPT ops)")
		maxFNs    = flag.Int("maxfns", 0, "per-packet FN budget (0 = wire max)")
		verbose   = flag.Bool("v", false, "log packets")
		workers   = flag.Int("workers", 0, "guarded forwarding workers (0 = handle inline)")
		queueLen  = flag.Int("queue", 256, "per-class ingress queue depth")
		batchSize = flag.Int("batch", 0, "run-to-completion burst size per forwarder (0 = default 64)")
		dispatch  = flag.Int("dispatch-shards", 0, "flow-dispatch table size, power of two (0 = default 256)")
		admitPort = flag.String("admit-port", "", "per-inport admission rate:burst (pkts/s)")
		admitBulk = flag.String("admit-bulk", "", "bulk-class admission rate:burst (pkts/s)")
		pitCap    = flag.Int("pitperport", 0, "per-inport pending-interest cap (0 = off)")
		pitShards = flag.Int("pitshards", 0, "PIT lock shards, rounded to a power of two (0 = default)")
		csShards  = flag.Int("csshards", 0, "content store lock shards (0 = 1 shard, exact LRU)")
		healthDur = flag.Duration("health", 0, "guard health log period (0 = off)")
		speaker   = flag.Bool("speaker", false, "run the in-fabric route-exchange speaker over the peer ports")
		speakRef  = flag.Duration("speaker-refresh", 5*time.Second, "route advertisement refresh period")
		speakHold = flag.Duration("speaker-hold", 0, "soft-state hold time (0 = 3x refresh)")
		metricsAt = flag.String("metrics-addr", "", "HTTP address for /metrics, /trace and /debug/pprof (empty = off)")
		traceN    = flag.Int("trace-every", 0, "trace every Nth packet's FN journey (0 = off)")
		traceRing = flag.Int("trace-ring", 0, "trace ring capacity in records (0 = default)")
		journeyN  = flag.Int("journey-every", 0, "emit a journey span for every Nth packet (0 = off)")
		journeyRg = flag.Int("journey-ring", 0, "journey span ring capacity (0 = default)")
		intEvery  = flag.Int("int-every", 0, "stamp F_tel and collect every Nth delivered telemetry postcard (0 = off)")
		intSlots  = flag.Int("int-slots", 8, "telemetry slot capacity for locally originated packets")
		peers     stringList
		routes32  stringList
		routes128 stringList
		names     stringList
	)
	flag.Var(&peers, "peer", "peer UDP address (one per port, in order)")
	flag.Var(&routes32, "route32", "32-bit route prefix/len=port")
	flag.Var(&routes128, "route128", "128-bit route hexprefix/len=port")
	flag.Var(&names, "name", "content-name route hexprefix/len=port|local")
	flag.Parse()

	if *listen == "" {
		flag.Usage()
		os.Exit(2)
	}
	laddr, err := net.ResolveUDPAddr("udp", *listen)
	if err != nil {
		log.Fatalf("listen address: %v", err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		log.Fatalf("bind: %v", err)
	}
	defer conn.Close()

	state := dip.NewNodeState()
	var tiered *dip.TieredStore
	switch {
	case *csCold > 0:
		if *cacheSize <= 0 {
			log.Fatalf("-cscold needs a hot tier; add -cache N")
		}
		shards := *csShards
		if shards < 1 {
			shards = 1
		}
		readers := *csReaders
		if readers < 1 {
			readers = 1
		}
		var err error
		tiered, err = state.EnableTieredCache(*cacheSize, shards, dip.TieredConfig{
			Path:     *csFile,
			Slots:    *csCold,
			SlotSize: *csSlot,
			Readers:  readers,
		})
		if err != nil {
			log.Fatalf("-cscold: %v", err)
		}
		defer tiered.Close()
	case *cacheSize > 0:
		if *csShards > 1 {
			state.EnableCacheSharded(*cacheSize, *csShards)
		} else {
			state.EnableCache(*cacheSize)
		}
	}
	if *pitCap > 0 || *pitShards > 0 {
		var popts []pit.Option[uint32]
		if *pitCap > 0 {
			popts = append(popts, pit.WithPerPortCap[uint32](*pitCap))
		}
		if *pitShards > 0 {
			popts = append(popts, pit.WithShards[uint32](*pitShards))
		}
		state.PIT = pit.New[uint32](popts...)
	}
	if *secretHex != "" {
		secret, err := hex.DecodeString(*secretHex)
		if err != nil {
			log.Fatalf("secret: %v", err)
		}
		sv, err := dip.NewSecret(*listen, secret)
		if err != nil {
			log.Fatalf("secret: %v", err)
		}
		state.EnableOPT(sv, dip.MAC2EM, [16]byte{}, 0)
	}
	for _, r := range routes32 {
		if err := addRoute32(state, r); err != nil {
			log.Fatalf("-route32 %q: %v", r, err)
		}
	}
	for _, r := range routes128 {
		if err := addRoute128(state, r); err != nil {
			log.Fatalf("-route128 %q: %v", r, err)
		}
	}
	for _, r := range names {
		if err := addNameRoute(state, r); err != nil {
			log.Fatalf("-name %q: %v", r, err)
		}
	}

	metrics := &telemetry.Metrics{}
	var tracer *dip.TraceRecorder
	if *traceN > 0 {
		tracer = dip.NewTraceRecorder(metrics, *traceN, *traceRing)
	}
	// speakerAgent and intCollector are assigned (if their flags are set)
	// before the socket read loop starts, so the delivery path below never
	// races the assignments.
	var speakerAgent *bootstrap.Speaker
	var intCollector *inband.Collector
	var intSeen atomic.Int64
	// dataClock is shared between the serve layer (which stamps admission
	// time into the exec context) and the F_tel module (which reads it back
	// out), so stamped per-hop latencies are admission→execution.
	routerStart := time.Now()
	dataClock := func() time.Duration { return time.Since(routerStart) }
	r := dip.NewRouter(state.OpsConfig(), dip.RouterOptions{
		Name:    *listen,
		Limits:  dip.Limits{MaxFNs: *maxFNs},
		Metrics: metrics,
		Trace:   tracer,
		LocalDelivery: func(pkt []byte, inPort int) {
			if speakerAgent != nil {
				if v, err := dip.ParsePacket(pkt); err == nil && v.NextHeader() == profiles.NHRouteExchange {
					if err := speakerAgent.Handle(v.Payload(), inPort); err != nil && *verbose {
						log.Printf("route exchange from port %d: %v", inPort, err)
					}
					return
				}
			}
			if intCollector != nil {
				if v, err := dip.ParsePacket(pkt); err == nil {
					collectPostcard(intCollector, &intSeen, *intEvery, *listen, v, pkt)
				}
			}
			if *verbose {
				log.Printf("delivered locally: %d bytes from port %d", len(pkt), inPort)
			}
		},
	})

	if *intEvery > 0 {
		intCollector = inband.NewCollector(inband.Config{})
		hopID := uint32(nhash.Bytes([]byte(*listen)))
		r.Registry().MustRegister(extops.NewTelWith(extops.TelConfig{
			HopID:   hopID,
			ClockNs: func() int64 { return int64(dataClock()) },
			Epoch: func() uint32 {
				return state.FIB32.Epoch() + state.FIB128.Epoch() + state.NameFIB.Epoch()
			},
		}))
		log.Printf("in-band telemetry: stamping as hop %#08x, collecting 1-in-%d postcards", hopID, *intEvery)
	}

	if *speaker {
		if *speakRef <= 0 {
			log.Fatalf("-speaker-refresh must be positive")
		}
		start := time.Now()
		hold := *speakHold
		if hold <= 0 {
			hold = 3 * *speakRef
		}
		var splog func(string, ...any)
		if *verbose {
			splog = log.Printf
		}
		speakerAgent = bootstrap.NewSpeaker(bootstrap.SpeakerConfig{
			Name:    *listen,
			FIB32:   state.FIB32,
			FIB128:  state.FIB128,
			NameFIB: state.NameFIB,
			Catalog: bootstrap.CatalogOf(r.Registry()),
			Now:     func() time.Duration { return time.Since(start) },
			HoldFor: hold,
			Log:     splog,
		})
		log.Printf("speaker: originating %d configured routes, refresh %v",
			speakerAgent.OriginateFromFIBs(), *speakRef)
	}

	// Journey spans wrap whatever recorder the router got (trace sampler or
	// bare metrics) — the tap forwards everything to it, so /metrics and
	// /trace are unchanged while /journeys fills with spans.
	var journeys *dip.JourneyEmitter
	if *journeyN > 0 {
		journeys = dip.NewJourneyEmitter(*journeyRg)
		var inner dip.Recorder = metrics
		if tracer != nil {
			inner = tracer
		}
		r.SetRecorder(dip.NewRouterJourneyTap(*listen, journeys, inner, *journeyN, nil))
	}

	if *metricsAt != "" {
		src := dip.MetricsSource{
			Node:     *listen,
			Metrics:  metrics,
			Health:   r.Health,
			Trace:    tracer,
			Journeys: journeys,
		}
		// Interface fields must stay nil-free: a typed nil *pit.Table or
		// *cs.Store inside the interface would be dereferenced on scrape.
		if state.PIT != nil {
			src.PIT = state.PIT
		}
		if state.ContentStore != nil {
			src.CS = state.ContentStore
		}
		if tiered != nil {
			src.CSTier = tiered.Stats
		}
		if speakerAgent != nil {
			src.Routes = speakerAgent.Stats
		}
		if intCollector != nil {
			src.INT = intCollector.Stats
		}
		bound, _, err := dip.ServeMetrics(*metricsAt, src)
		if err != nil {
			log.Fatalf("-metrics-addr: %v", err)
		}
		log.Printf("metrics on http://%v/metrics (trace: /trace, journeys: /journeys, pprof: /debug/pprof/)", bound)
	}

	portOf := map[string]int{}
	for i, p := range peers {
		raddr, err := net.ResolveUDPAddr("udp", p)
		if err != nil {
			log.Fatalf("-peer %q: %v", p, err)
		}
		idx := r.AttachPort(dip.PortFunc(func(pkt []byte) {
			if _, err := conn.WriteToUDP(pkt, raddr); err != nil && *verbose {
				log.Printf("send to %v: %v", raddr, err)
			}
		}))
		portOf[raddr.String()] = idx
		// Every peer port is a route-exchange adjacency: the speaker's
		// messages ride DIP control packets straight over the socket (not
		// through the forwarding pipeline — they are this hop's own
		// control traffic, not transit).
		if speakerAgent != nil {
			speakerAgent.AddNeighbor(idx, func(msg []byte) {
				pkt, err := dip.BuildPacket(profiles.RouteExchange(), msg)
				if err != nil {
					return
				}
				if _, err := conn.WriteToUDP(pkt, raddr); err != nil && *verbose {
					log.Printf("route exchange to %v: %v", raddr, err)
				}
			})
		}
		if *verbose {
			log.Printf("port %d -> %v", i, raddr)
		}
	}
	if speakerAgent != nil {
		go func() {
			for range time.Tick(*speakRef) {
				speakerAgent.Refresh()
			}
		}()
	}

	// With -workers the ingress guard layer owns the packets: classification,
	// admission control, priority queues, and the panic quarantine all sit
	// between the socket and HandlePacket.
	handle := func(pkt []byte, inPort int) { r.HandlePacket(pkt, inPort) }
	if *workers > 0 {
		var policy dip.AdmissionPolicy
		limited := false
		if *admitPort != "" {
			rate, err := parseRate(*admitPort)
			if err != nil {
				log.Fatalf("-admit-port: %v", err)
			}
			policy.PerPort, limited = rate, true
		}
		if *admitBulk != "" {
			rate, err := parseRate(*admitBulk)
			if err != nil {
				log.Fatalf("-admit-bulk: %v", err)
			}
			policy.PerClass[dip.ClassBulk], limited = rate, true
		}
		var admission *dip.Admission
		if limited {
			admission = dip.NewAdmission(policy, nil)
		}
		in := r.ServeGuarded(dip.ServeConfig{
			Workers:        *workers,
			HighDepth:      *queueLen,
			LowDepth:       *queueLen,
			Batch:          *batchSize,
			DispatchShards: *dispatch,
			Admission:      admission,
			Clock:          dataClock,
		})
		defer in.Close()
		handle = func(pkt []byte, inPort int) {
			// Submit transfers buffer ownership to the workers; the read
			// loop reuses its buffer, so hand over a copy.
			cp := make([]byte, len(pkt))
			copy(cp, pkt)
			in.Submit(cp, inPort)
		}
		if *healthDur > 0 {
			go watchHealth(r, in, *healthDur)
		}
	}

	// Cold-tier completions re-enter through the same handle path datagrams
	// take: the synthesized data packet consumes the parked PIT entry and
	// replicates to the requesting ports, and the cache insert promotes the
	// payload back to the hot tier.
	if tiered != nil {
		tiered.SetReinject(func(cname uint32, data []byte, start, end int64) {
			profile := dip.NDNDataProfile(cname)
			if *intEvery > 0 && *intSlots > 0 {
				// Locally originated packets get a fresh telemetry region:
				// this hop and everything downstream stamp into it.
				profile = profiles.WithTelemetry(profile, *intSlots)
			}
			pkt, err := dip.BuildPacket(profile, data)
			if err != nil {
				return
			}
			if journeys != nil {
				journeys.AddSpan(journey.Span{
					Trace:   journey.TraceOf(pkt),
					Kind:    journey.SpanCSCold,
					Node:    *listen,
					Start:   start,
					End:     end,
					Name:    cname,
					HasName: true,
					Proto:   "ndn-data",
				})
			}
			if *verbose {
				log.Printf("cold read %#08x re-injected (%d bytes, %v)", cname, len(data), time.Duration(end-start))
			}
			handle(pkt, 0)
		})
	}

	log.Printf("diprouter listening on %v with %d ports", laddr, r.NumPorts())
	buf := make([]byte, 65535)
	for {
		n, raddr, err := conn.ReadFromUDP(buf)
		if err != nil {
			log.Printf("read: %v", err)
			continue
		}
		inPort := portOf[raddr.String()] // unknown senders map to port 0
		if *verbose {
			log.Printf("rx %d bytes from %v (port %d)", n, raddr, inPort)
		}
		handle(buf[:n], inPort)
	}
}

// collectPostcard is the delivering-edge telemetry termination: sample every
// Nth telemetry-carrying delivered packet, decode its hop records into a
// postcard, and zero the region so local consumers never see fabric state.
func collectPostcard(c *inband.Collector, seen *atomic.Int64, every int, node string, v core.View, pkt []byte) {
	region, off, ok := profiles.TelemetryRegion(v)
	if !ok {
		return
	}
	if every > 1 && (seen.Add(1)-1)%int64(every) != 0 {
		return
	}
	hops, overflow, err := extops.DecodeTel(region)
	if err != nil {
		c.CountDecodeError()
		return
	}
	// Fold the leading FN key into the flow identity so an interest and its
	// data reply (same name bytes, opposite paths) stay distinct flows.
	flow := inband.FlowOf(v.Locations(), off) ^ (uint64(v.FN(0).Key)+1)*0x9E3779B97F4A7C15
	c.Add(inband.Postcard{
		Flow:     flow,
		Trace:    uint64(journey.TraceOf(pkt)),
		Node:     node,
		At:       time.Now().UnixNano(),
		Proto:    journey.ProtoOf(v),
		Hops:     hops,
		Overflow: overflow,
	})
	for i := range region {
		region[i] = 0
	}
}

// parseRate reads "rate:burst" (packets per second, burst allowance).
func parseRate(spec string) (dip.AdmissionRate, error) {
	rateStr, burstStr, ok := strings.Cut(spec, ":")
	if !ok {
		return dip.AdmissionRate{}, fmt.Errorf("want rate:burst, got %q", spec)
	}
	rate, err := strconv.ParseFloat(rateStr, 64)
	if err != nil {
		return dip.AdmissionRate{}, fmt.Errorf("rate: %v", err)
	}
	burst, err := strconv.ParseFloat(burstStr, 64)
	if err != nil {
		return dip.AdmissionRate{}, fmt.Errorf("burst: %v", err)
	}
	return dip.AdmissionRate{PerSec: rate, Burst: burst}, nil
}

// watchHealth periodically logs the guard snapshot and streams any new
// quarantine captures to stderr in dipdump-ready form (pipe them into
// `dipdump` to dissect the poison packets).
func watchHealth(r *dip.Router, in *dip.Ingress, every time.Duration) {
	var dumped int64
	for range time.Tick(every) {
		if h, ok := r.Health(); ok {
			log.Printf("guard: %s", h)
		}
		for _, c := range in.Quarantine().Snapshot() {
			if c.Seq >= dumped {
				fmt.Fprint(os.Stderr, c.String())
				dumped = c.Seq + 1
			}
		}
	}
}

// parseTarget splits "prefix/len=port" and resolves "local".
func parseTarget(spec string) (prefix string, plen int, port int, local bool, err error) {
	eq := strings.LastIndex(spec, "=")
	sl := strings.LastIndex(spec, "/")
	if eq < 0 || sl < 0 || sl > eq {
		return "", 0, 0, false, fmt.Errorf("want prefix/len=port")
	}
	prefix = spec[:sl]
	plen, err = strconv.Atoi(spec[sl+1 : eq])
	if err != nil {
		return "", 0, 0, false, fmt.Errorf("prefix length: %v", err)
	}
	target := spec[eq+1:]
	if target == "local" {
		return prefix, plen, 0, true, nil
	}
	port, err = strconv.Atoi(target)
	return prefix, plen, port, false, err
}

func parse32(s string) (uint32, error) {
	if strings.Contains(s, ".") {
		var a, b, c, d int
		if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
			return 0, err
		}
		return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d), nil
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 32)
	return uint32(v), err
}

func addRoute32(state *dip.NodeState, spec string) error {
	prefix, plen, port, local, err := parseTarget(spec)
	if err != nil {
		return err
	}
	key, err := parse32(prefix)
	if err != nil {
		return err
	}
	nh := dip.NextHop{Port: port}
	if local {
		nh = dip.Local
	}
	return state.FIB32.AddUint32(key, plen, nh)
}

func addRoute128(state *dip.NodeState, spec string) error {
	prefix, plen, port, local, err := parseTarget(spec)
	if err != nil {
		return err
	}
	key, err := hex.DecodeString(strings.TrimPrefix(prefix, "0x"))
	if err != nil {
		return err
	}
	if len(key) > 16 {
		return fmt.Errorf("prefix %d bytes, max 16", len(key))
	}
	key = append(key, make([]byte, 16-len(key))...)
	nh := dip.NextHop{Port: port}
	if local {
		nh = dip.Local
	}
	return state.FIB128.Add(key, plen, nh)
}

func addNameRoute(state *dip.NodeState, spec string) error {
	prefix, plen, port, local, err := parseTarget(spec)
	if err != nil {
		return err
	}
	key, err := parse32(prefix)
	if err != nil {
		return err
	}
	nh := dip.NextHop{Port: port}
	if local {
		nh = dip.Local
	}
	return state.NameFIB.AddUint32(key, plen, nh)
}
