package dip

import (
	"bytes"
	"fmt"
	"testing"

	"dip/internal/ip"
	"dip/internal/ndn"
)

// TestTable2 is experiment E2 at the public-API level: the header size
// overhead of the paper's Table 2, byte for byte.
func TestTable2(t *testing.T) {
	destSecret, err := NewSecret("dst", bytes.Repeat([]byte{1}, 16))
	if err != nil {
		t.Fatal(err)
	}
	hopSecret, _ := NewSecret("r1", bytes.Repeat([]byte{2}, 16))
	sess, err := NewSession(MAC2EM, []HopConfig{{Secret: hopSecret}}, destSecret)
	if err != nil {
		t.Fatal(err)
	}
	optHdr, err := OPTProfile(sess, []byte("x"), 0)
	if err != nil {
		t.Fatal(err)
	}
	ndnOptHdr, err := NDNOPTDataProfile(sess, 1, []byte("x"), 0)
	if err != nil {
		t.Fatal(err)
	}

	rows := []struct {
		fn    string
		bytes int
		paper int
	}{
		{"IPv6 forwarding", ip.HeaderLen6, 40},
		{"IPv4 forwarding", ip.HeaderLen4, 20},
		{"DIP-128 forwarding", IPv6Profile([16]byte{}, [16]byte{}).WireSize(), 50},
		{"DIP-32 forwarding", IPv4Profile([4]byte{}, [4]byte{}).WireSize(), 26},
		{"NDN forwarding", NDNInterestProfile(1).WireSize(), 16},
		{"OPT forwarding", optHdr.WireSize(), 98},
		{"NDN+OPT forwarding", ndnOptHdr.WireSize(), 108},
	}
	t.Log("Table 2: packet header size overhead (bytes)")
	for _, r := range rows {
		t.Logf("  %-22s measured=%-4d paper=%d", r.fn, r.bytes, r.paper)
		if r.bytes != r.paper {
			t.Errorf("%s: %d bytes, paper says %d", r.fn, r.bytes, r.paper)
		}
	}
}

// The five §3 protocol realizations all run through one and the same
// router — the unification claim, exercised end to end via the public API.
func TestFiveProtocolsOneRouter(t *testing.T) {
	state := NewNodeState()
	hopSecret, _ := NewSecret("r1", bytes.Repeat([]byte{7}, 16))
	state.EnableOPT(hopSecret, MAC2EM, [16]byte{}, 0)

	// Routes for every protocol family.
	state.FIB32.AddUint32(0x0A000000, 8, NextHop{Port: 1})
	pfx := make([]byte, 16)
	pfx[0] = 0x20
	state.FIB128.Add(pfx, 8, NextHop{Port: 2})
	state.NameFIB.AddUint32(0xAA000000, 8, NextHop{Port: 3})
	cid := XID{Type: 0x13}
	cid.ID[0] = 0xC
	state.XIARoutes.AddRoute(cid, 4)

	r := NewRouter(state.OpsConfig(), RouterOptions{Name: "unified"})
	got := make(map[int][][]byte)
	for p := 0; p < 6; p++ {
		p := p
		r.AttachPort(PortFunc(func(pkt []byte) {
			got[p] = append(got[p], append([]byte(nil), pkt...))
		}))
	}

	// 1. Canonical IP (DIP-32).
	pkt, err := BuildPacket(IPv4Profile([4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 7}), nil)
	if err != nil {
		t.Fatal(err)
	}
	r.HandlePacket(pkt, 0)
	if len(got[1]) != 1 {
		t.Error("IPv4 profile not forwarded")
	}

	// 1b. DIP-128.
	var dst16 [16]byte
	dst16[0] = 0x20
	pkt, _ = BuildPacket(IPv6Profile([16]byte{}, dst16), nil)
	r.HandlePacket(pkt, 0)
	if len(got[2]) != 1 {
		t.Error("IPv6 profile not forwarded")
	}

	// 2. NDN: interest then data.
	pkt, _ = BuildPacket(NDNInterestProfile(0xAA000001), nil)
	r.HandlePacket(pkt, 5)
	if len(got[3]) != 1 {
		t.Fatal("NDN interest not forwarded")
	}
	pkt, _ = BuildPacket(NDNDataProfile(0xAA000001), []byte("content"))
	r.HandlePacket(pkt, 3)
	if len(got[5]) != 1 {
		t.Error("NDN data not returned to requester")
	}

	// 3. OPT: the packet traverses and its tags change.
	destSecret, _ := NewSecret("dst", bytes.Repeat([]byte{9}, 16))
	sess, _ := NewSession(MAC2EM, []HopConfig{{Secret: hopSecret}}, destSecret)
	h, _ := OPTProfile(sess, []byte("pay"), 42)
	// Route the OPT packet by prepending DIP-32 forwarding to the same
	// header (composition!): actually keep it minimal — OPT alone carries
	// no match FN, so the router applies only the auth ops and the packet
	// ends with VerdictContinue (no egress). Verify the tags changed.
	before := append([]byte(nil), h.Locations...)
	pkt, _ = BuildPacket(h, []byte("pay"))
	r.HandlePacket(pkt, 0)
	v, _ := ParsePacket(pkt)
	if bytes.Equal(v.Locations(), before) {
		t.Error("OPT tags not updated by the router")
	}
	if err := sess.Verify(v.Locations(), []byte("pay")); err != nil {
		t.Errorf("OPT verification after one hop: %v", err)
	}

	// 4. NDN+OPT: derived protocol, full loop.
	pkt, _ = BuildPacket(NDNInterestProfile(0xAA000002), nil)
	r.HandlePacket(pkt, 5)
	dh, err := NDNOPTDataProfile(sess, 0xAA000002, []byte("secure"), 43)
	if err != nil {
		t.Fatal(err)
	}
	pkt, _ = BuildPacket(dh, []byte("secure"))
	r.HandlePacket(pkt, 3)
	if len(got[5]) != 2 {
		t.Fatal("NDN+OPT data not delivered to requester")
	}
	hostStack := NewHost()
	hostStack.Sessions.Add(sess)
	rx := hostStack.HandlePacket(got[5][1])
	if rx.Kind.String() != "delivered" {
		t.Errorf("NDN+OPT rejected at host: %v", rx.Reason)
	}

	// 5. XIA: a CID intent directly routable.
	dag := &DAG{
		SrcEdges: []int{0},
		Nodes:    []DAGNode{{XID: cid}},
	}
	xh, err := XIAProfile(dag)
	if err != nil {
		t.Fatal(err)
	}
	pkt, _ = BuildPacket(xh, nil)
	r.HandlePacket(pkt, 0)
	if len(got[4]) != 1 {
		t.Error("XIA packet not forwarded toward the CID")
	}
}

// E8: the forwarding fast paths must not allocate (the GC-pressure
// mitigation DESIGN.md promises).
func TestZeroAllocForwarding(t *testing.T) {
	state := NewNodeState()
	state.FIB32.AddUint32(0x0A000000, 8, NextHop{Port: 0})
	r := NewRouter(state.OpsConfig(), RouterOptions{})
	r.AttachPort(PortFunc(func([]byte) {}))
	pkt, err := BuildPacket(IPv4Profile([4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 7}), make([]byte, 100))
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		pkt[3] = 64
		r.HandlePacket(pkt, 1)
	})
	if allocs != 0 {
		t.Errorf("DIP-32 forwarding allocates %.1f/packet", allocs)
	}
}

// The DIP realization of NDN must agree with the purpose-built native NDN
// forwarder across an interest/data/aggregation scenario.
func TestDIPNDNAgreesWithNative(t *testing.T) {
	// DIP side.
	state := NewNodeState()
	state.NameFIB.AddUint32(0xAA000000, 8, NextHop{Port: 2})
	r := NewRouter(state.OpsConfig(), RouterOptions{})
	var dipOut []int
	for p := 0; p < 4; p++ {
		p := p
		r.AttachPort(PortFunc(func([]byte) { dipOut = append(dipOut, p) }))
	}
	// Native side.
	nf := NativeNDNForwarder(0)
	nf.FIB.AddUint32(0xAA000000, 8, NextHop{Port: 2})

	type step struct {
		interest bool
		name     uint32
		inPort   int
	}
	script := []step{
		{true, 0xAA000001, 0}, {true, 0xAA000001, 1}, // aggregate
		{false, 0xAA000001, 2}, // fan out to 0,1
		{false, 0xAA000001, 2}, // pit miss
		{true, 0xBB000001, 0},  // no route
	}
	for i, s := range script {
		dipOut = nil
		var pkt []byte
		if s.interest {
			pkt, _ = BuildPacket(NDNInterestProfile(s.name), nil)
		} else {
			pkt, _ = BuildPacket(NDNDataProfile(s.name), nil)
		}
		r.HandlePacket(pkt, s.inPort)

		var native []int
		var res ndn.Result
		if s.interest {
			res = nf.Process(ndn.BuildInterest(s.name, uint32(i), 64), s.inPort, nil)
		} else {
			res = nf.Process(ndn.BuildData(s.name, 64, nil), s.inPort, nil)
		}
		if res.Action == ndn.ActForward {
			native = res.Ports
		}
		if len(dipOut) != len(native) {
			t.Fatalf("step %d: DIP sent to %v, native to %v", i, dipOut, native)
		}
		seen := map[int]bool{}
		for _, p := range dipOut {
			seen[p] = true
		}
		for _, p := range native {
			if !seen[p] {
				t.Errorf("step %d: port sets differ: %v vs %v", i, dipOut, native)
			}
		}
	}
}

// Fuzz-ish robustness: random mutations of a valid packet never panic the
// router and are either processed or cleanly dropped.
func TestRouterRobustToCorruption(t *testing.T) {
	state := NewNodeState()
	state.FIB32.AddUint32(0, 0, NextHop{Port: 0})
	r := NewRouter(state.OpsConfig(), RouterOptions{})
	r.AttachPort(PortFunc(func([]byte) {}))
	base, _ := BuildPacket(IPv4Profile([4]byte{1, 2, 3, 4}, [4]byte{5, 6, 7, 8}), []byte("zz"))
	for trial := 0; trial < 2000; trial++ {
		pkt := append([]byte(nil), base...)
		// Deterministic pseudo-random corruption.
		i := (trial * 7919) % len(pkt)
		pkt[i] ^= byte(trial*31 + 1)
		if trial%3 == 0 && len(pkt) > 2 {
			pkt = pkt[:len(pkt)-1-(trial%10)%len(pkt)]
		}
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("panic on corrupted packet (trial %d): %v\npkt: %x", trial, rec, pkt)
				}
			}()
			r.HandlePacket(pkt, 0)
		}()
	}
}

func ExampleBuildPacket() {
	h := IPv4Profile([4]byte{192, 0, 2, 1}, [4]byte{198, 51, 100, 7})
	pkt, _ := BuildPacket(h, []byte("hello"))
	v, _ := ParsePacket(pkt)
	fmt.Println(v.FNNum(), len(pkt)-v.HeaderLen())
	// Output: 2 5
}
