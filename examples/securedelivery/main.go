// Secure content delivery with the derived NDN+OPT protocol (paper §3):
// the consumer retrieves named content while every on-path router updates
// cryptographic tags (F_parm → F_MAC → F_mark) that let the consumer verify
// both the content's source and the exact path it travelled (F_ver).
//
//	consumer ── R1 ── R2 ── producer
//
// Three deliveries are attempted: an authentic one (accepted), one with the
// payload tampered mid-path (rejected: data hash mismatch), and one where a
// router is bypassed (rejected: path verification mismatch).
//
//	go run ./examples/securedelivery
package main

import (
	"bytes"
	"fmt"
	"log"

	"dip"
	"dip/internal/netsim"
)

const nameID = 0xBB000001

type path struct {
	sim      *netsim.Simulator
	r1, r2   *dip.Router
	consumer *dip.Host
	result   *dip.Rx
}

// build wires consumer ── R1 ── R2 ── producer, with optional link mangling
// between R2 and R1 and an optional R2 bypass.
func build(sess *dip.Session, sv1, sv2 *dip.SecretValue, payload []byte,
	tamper bool, skipR2 bool) *path {

	p := &path{sim: netsim.New(), consumer: dip.NewHost()}
	p.consumer.Sessions.Add(sess)

	mk := func(sv *dip.SecretValue, hopIndex uint8, upstream int) *dip.Router {
		st := dip.NewNodeState()
		st.EnableOPT(sv, dip.MAC2EM, [16]byte{}, hopIndex)
		st.NameFIB.AddUint32(0xBB000000, 8, dip.NextHop{Port: upstream})
		return dip.NewRouter(st.OpsConfig(), dip.RouterOptions{})
	}
	// Data path order producer→R2→R1→consumer, so R2 is hop 0, R1 hop 1.
	p.r1 = mk(sv1, 1, 1)
	p.r2 = mk(sv2, 0, 1)

	consumerRx := netsim.ReceiverFunc(func(pkt []byte, _ int) {
		rx := p.consumer.HandlePacket(pkt)
		p.result = &rx
	})
	producer := netsim.ReceiverFunc(func(pkt []byte, _ int) {
		h, err := dip.NDNOPTDataProfile(sess, nameID, payload, 1234)
		if err != nil {
			log.Fatal(err)
		}
		reply, err := dip.BuildPacket(h, payload)
		if err != nil {
			log.Fatal(err)
		}
		target := p.r2
		inPort := 1
		if skipR2 {
			target = p.r1 // an off-path shortcut that skips R2's validation
		}
		p.sim.Schedule(0, func() { target.HandlePacket(reply, inPort) })
	})

	r2ToR1 := netsim.ReceiverFunc(p.r1.HandlePacket)
	if tamper {
		r2ToR1 = netsim.ReceiverFunc(func(pkt []byte, port int) {
			cp := append([]byte(nil), pkt...)
			cp[len(cp)-1] ^= 0x01 // flip one payload bit in flight
			p.r1.HandlePacket(cp, port)
		})
	}
	p.r1.AttachPort(p.sim.Pipe(consumerRx, 0, 1e6, 0))
	p.r1.AttachPort(p.sim.Pipe(netsim.ReceiverFunc(p.r2.HandlePacket), 0, 1e6, 0))
	p.r2.AttachPort(p.sim.Pipe(r2ToR1, 1, 1e6, 0))
	p.r2.AttachPort(p.sim.Pipe(producer, 0, 1e6, 0))
	return p
}

func run(label string, sess *dip.Session, sv1, sv2 *dip.SecretValue,
	payload []byte, tamper, skipR2 bool) {

	p := build(sess, sv1, sv2, payload, tamper, skipR2)
	interest, err := dip.BuildPacket(dip.NDNInterestProfile(nameID), nil)
	if err != nil {
		log.Fatal(err)
	}
	p.sim.Schedule(0, func() { p.r1.HandlePacket(interest, 0) })
	p.sim.Run()

	fmt.Printf("%-28s -> ", label)
	switch {
	case p.result == nil:
		fmt.Println("nothing received (dropped in transit)")
	case p.result.Kind.String() == "delivered":
		ok := bytes.Equal(p.result.Payload, payload)
		fmt.Printf("DELIVERED, payload intact: %v\n", ok)
	default:
		fmt.Printf("REJECTED (%s)\n", p.result.Reason)
	}
}

func main() {
	sv1, err := dip.NewSecret("R1", bytes.Repeat([]byte{0x11}, 16))
	if err != nil {
		log.Fatal(err)
	}
	sv2, _ := dip.NewSecret("R2", bytes.Repeat([]byte{0x22}, 16))
	consumerSecret, _ := dip.NewSecret("consumer", bytes.Repeat([]byte{0xCC}, 16))

	// Key negotiation (simulated handshake): the consumer ends up knowing
	// each hop's session key, in data-path order R2 then R1.
	sess, err := dip.NewSession(dip.MAC2EM, []dip.HopConfig{
		{Secret: sv2, HopIndex: 0},
		{Secret: sv1, HopIndex: 1},
	}, consumerSecret)
	if err != nil {
		log.Fatal(err)
	}
	payload := []byte("signed-and-sealed content")

	fmt.Println("NDN+OPT: named content with source authentication and path validation")
	fmt.Printf("session %x..., 2 validating hops, 2EM MACs\n\n", sess.ID[:4])
	run("authentic delivery", sess, sv1, sv2, payload, false, false)
	run("payload tampered mid-path", sess, sv1, sv2, payload, true, false)
	run("router R2 bypassed", sess, sv1, sv2, payload, false, true)
	fmt.Println("\nonly the authentic delivery passes F_ver — the consumer can tell")
	fmt.Println("both *what* was modified and *that the path deviated*.")
}
