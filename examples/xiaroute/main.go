// XIA addressing through DIP (paper §3): an address is a DAG of typed
// identifiers parsed by F_DAG and finished by F_intent. The intent is a
// content identifier (CID); the fallback path goes through the content's
// autonomous domain (AD) and host (HID). Three routers demonstrate the
// fallback behaviour the DAG encodes:
//
//	client ── R-core ── R-adborder ── R-host(serves CID)
//
// R-core cannot route the CID directly and falls back to the AD; the AD
// border advances through its local AD node toward the HID; the final
// router holds the content and handles the intent.
//
//	go run ./examples/xiaroute
package main

import (
	"fmt"
	"log"

	"dip"
	"dip/internal/netsim"
	"dip/internal/xia"
)

func main() {
	ad := xia.NewXID(xia.TypeAD, []byte("ad-hotnets"))
	hid := xia.NewXID(xia.TypeHID, []byte("server-17"))
	cid := xia.NewXID(xia.TypeCID, []byte("dip-paper-pdf"))

	// The address DAG: intent CID, fallback source→AD→HID→CID.
	dag := &dip.DAG{
		SrcEdges: []int{2, 0},
		Nodes: []dip.DAGNode{
			{XID: ad, Edges: []int{2, 1}},
			{XID: hid, Edges: []int{2}},
			{XID: cid},
		},
	}
	fmt.Println("XIA address DAG:")
	fmt.Printf("  source -> %v (intent), fallback -> %v -> %v -> %v\n\n", cid, ad, hid, cid)

	sim := netsim.New()

	mkRouter := func(name string, configure func(*xia.RouteTable)) *dip.Router {
		state := dip.NewNodeState()
		configure(state.XIARoutes)
		return dip.NewRouter(state.OpsConfig(), dip.RouterOptions{
			Name: name,
			LocalDelivery: func(pkt []byte, _ int) {
				fmt.Printf("[%s] intent reached: serving %v\n", name, cid)
			},
		})
	}

	// R-core knows only how to reach the AD (no CID route — forces fallback).
	core := mkRouter("R-core", func(rt *xia.RouteTable) {
		rt.AddRoute(ad, 1)
	})
	// R-adborder is inside the AD; it can reach the HID.
	adBorder := mkRouter("R-adborder", func(rt *xia.RouteTable) {
		rt.AddLocal(ad)
		rt.AddRoute(hid, 1)
	})
	// R-host hosts both the HID and the content.
	hostRouter := mkRouter("R-host", func(rt *xia.RouteTable) {
		rt.AddLocal(hid)
		rt.AddLocal(cid)
	})

	trace := func(from, to string, r *dip.Router, port int) dip.Port {
		return sim.Pipe(netsim.ReceiverFunc(func(pkt []byte, p int) {
			v, _ := dip.ParsePacket(pkt)
			_, last, _, _ := xia.Decode(v.Locations())
			fmt.Printf("[%s -> %s] lastVisited node = %d\n", from, to, last)
			r.HandlePacket(pkt, p)
		}), port, 1e6, 0)
	}
	core.AttachPort(dip.PortFunc(func([]byte) {})) // back toward client
	core.AttachPort(trace("R-core", "R-adborder", adBorder, 0))
	adBorder.AttachPort(dip.PortFunc(func([]byte) {}))
	adBorder.AttachPort(trace("R-adborder", "R-host", hostRouter, 0))

	h, err := dip.XIAProfile(dag)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("XIA-in-DIP header: %d bytes, FNs %v %v\n\n", h.WireSize(), h.FNs[0], h.FNs[1])
	pkt, err := dip.BuildPacket(h, nil)
	if err != nil {
		log.Fatal(err)
	}
	sim.Schedule(0, func() { core.HandlePacket(pkt, 0) })
	sim.Run()

	fmt.Println("\nthe CID was unreachable directly, so traversal fell back through")
	fmt.Println("AD and HID — all decided per hop by F_DAG over the same packet.")
}
