// Deploying new network-layer functions by composing field operations —
// the paper's §5 claim ("network providers can now support new services by
// only upgrading FNs") made concrete with the two extension operations
// this repository ships:
//
//   - F_cc: NetFence-style in-network congestion policing with
//     MAC-protected AIMD feedback (the paper's own §1 motivation).
//   - F_tel: INT-style in-band telemetry (§5 "efficient network telemetry").
//
// One packet composition carries ordinary IPv4-style forwarding PLUS
// congestion policing PLUS hop-by-hop telemetry through two routers. No new
// protocol was defined — three FNs were composed.
//
//	go run ./examples/customfn
package main

import (
	"fmt"
	"log"
	"time"

	"dip"
	"dip/internal/extops"
)

func main() {
	var ccKey [16]byte
	copy(ccKey[:], "netfence-demo-k!")

	// Two routers: R1 lightly loaded, R2 a 64 kB/s bottleneck.
	clock := time.Unix(0, 0)
	now := func() time.Time { return clock }
	mkRouter := func(name string, hopID uint32, capacityBps float64, egress dip.Port) *dip.Router {
		state := dip.NewNodeState()
		state.FIB32.AddUint32(0x0A000000, 8, dip.NextHop{Port: 0})
		reg := dip.NewRouterRegistry(state.OpsConfig())
		// Upgrading the network = registering new operation modules.
		if err := reg.Register(extops.NewCC(extops.CCConfig{
			CapacityBps: capacityBps,
			Key:         ccKey,
			Now:         now,
		})); err != nil {
			log.Fatal(err)
		}
		if err := reg.Register(extops.NewTel(hopID, now)); err != nil {
			log.Fatal(err)
		}
		r := dip.NewRouterWithRegistry(reg, dip.RouterOptions{Name: name})
		r.AttachPort(egress)
		return r
	}

	var delivered []byte
	sink := dip.PortFunc(func(pkt []byte) { delivered = append(delivered[:0], pkt...) })
	r2 := mkRouter("R2-bottleneck", 202, 64_000, sink)
	r1 := mkRouter("R1", 101, 1e9, dip.PortFunc(func(pkt []byte) {
		clock = clock.Add(2 * time.Millisecond) // link latency
		r2.HandlePacket(pkt, 0)
	}))

	// The composition: DIP-32 forwarding + F_cc tag + F_tel region, all in
	// one FN-locations layout.
	const flowID = 0xF00D
	base := dip.IPv4Profile([4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2})
	ccOff := uint16(len(base.Locations) * 8)
	base.Locations = append(base.Locations, extops.NewCCTag(flowID)...)
	telOff := uint16(len(base.Locations) * 8)
	telBits := extops.TelOperandBits(4)
	base.Locations = append(base.Locations, extops.NewTelRegion(4)...)
	base.FNs = append(base.FNs,
		dip.FN{Loc: ccOff, Len: extops.CCOperandBits, Key: extops.KeyCC},
		dip.FN{Loc: telOff, Len: telBits, Key: extops.KeyTel},
	)
	fmt.Println("composed packet:")
	for i, fn := range base.FNs {
		fmt.Printf("  FN[%d] = %v\n", i, fn)
	}
	fmt.Printf("header: %d bytes\n\n", base.WireSize())

	// The sender pushes 1 kB packets every millisecond (≈1 MB/s, 15× the
	// bottleneck) and applies AIMD to the verified feedback.
	sender := &extops.AIMD{RateBps: 1_000_000, Step: 50_000, Floor: 8_000}
	fmt.Printf("%-8s %-12s %-10s %s\n", "packet", "rate (B/s)", "feedback", "telemetry path (hop@µs)")
	for i := 0; i < 12; i++ {
		clock = clock.Add(time.Millisecond)
		pkt, err := dip.BuildPacket(base, make([]byte, 1000))
		if err != nil {
			log.Fatal(err)
		}
		r1.HandlePacket(pkt, 1)
		if delivered == nil {
			log.Fatal("packet lost")
		}
		v, _ := dip.ParsePacket(delivered)
		locs := v.Locations()
		_, action, _, ok := extops.VerifyCC(&ccKey, locs[ccOff/8:])
		if !ok {
			log.Fatal("congestion tag forged or corrupted")
		}
		records, _, err := extops.DecodeTel(locs[telOff/8:])
		if err != nil {
			log.Fatal(err)
		}
		feedback := "increase"
		if action == extops.ActionDecrease {
			feedback = "DECREASE"
		}
		sender.Apply(action)
		trace := ""
		for _, rec := range records {
			trace += fmt.Sprintf("%d@%d ", rec.HopID, rec.TimestampUs)
		}
		fmt.Printf("%-8d %-12.0f %-10s %s\n", i, sender.RateBps, feedback, trace)
	}
	fmt.Println("\nthe bottleneck router policed the flow down toward its capacity and")
	fmt.Println("every packet carried its own hop-by-hop latency record — both added")
	fmt.Println("to the network by registering two operation modules.")
}
