// NDN content retrieval over a simulated four-node topology, all realized
// with DIP field operations:
//
//	consumer-A ──┐
//	             ├── edge router ── core router ── producer
//	consumer-B ──┘        (with content store)
//
// Demonstrates interest forwarding by F_FIB, interest aggregation in the
// PIT, data fan-out by F_PIT, and the content-store extension (paper
// footnote 2) serving a repeat request without touching the producer.
//
//	go run ./examples/ndncontent
package main

import (
	"fmt"
	"log"

	"dip"
	"dip/internal/names"
	"dip/internal/netsim"
	"dip/internal/telemetry"
)

func main() {
	sim := netsim.New()

	// Human-readable names map to prefix-preserving 32-bit IDs (§4.1 uses
	// 32-bit content names on the wire).
	registry := names.NewRegistry()
	video := names.MustParse("/hotnets/talks/dip")
	nameID, err := registry.Register(video)
	if err != nil {
		log.Fatal(err)
	}
	prefix := video.Prefix(1) // route on /hotnets
	fmt.Printf("content %q -> wire name %#08x (routing on %q/%d bits)\n\n",
		video, nameID, prefix, prefix.PrefixBits())

	// Edge router: ports 0=consumer-A 1=consumer-B 2=core. Has a cache.
	edgeState := dip.NewNodeState().EnableCache(64)
	edgeState.NameFIB.AddUint32(prefix.ID(), prefix.PrefixBits(), dip.NextHop{Port: 2})
	edgeMetrics := &telemetry.Metrics{}
	edge := dip.NewRouter(edgeState.OpsConfig(), dip.RouterOptions{Name: "edge", Metrics: edgeMetrics})

	// Core router: ports 0=edge 1=producer.
	coreState := dip.NewNodeState()
	coreState.NameFIB.AddUint32(prefix.ID(), prefix.PrefixBits(), dip.NextHop{Port: 1})
	coreR := dip.NewRouter(coreState.OpsConfig(), dip.RouterOptions{Name: "core"})

	// Consumers record what they receive.
	received := map[string][]string{}
	consumer := func(name string) netsim.Receiver {
		return netsim.ReceiverFunc(func(pkt []byte, _ int) {
			v, err := dip.ParsePacket(pkt)
			if err != nil {
				return
			}
			received[name] = append(received[name], string(v.Payload()))
			fmt.Printf("[%4dµs] %s received %q\n", sim.Now().Microseconds(), name, v.Payload())
		})
	}

	// Producer answers interests with data.
	producerServed := 0
	producer := netsim.ReceiverFunc(func(pkt []byte, _ int) {
		producerServed++
		fmt.Printf("[%4dµs] producer serving request #%d\n", sim.Now().Microseconds(), producerServed)
		data, err := dip.BuildPacket(dip.NDNDataProfile(nameID), []byte("dip-talk-video-bits"))
		if err != nil {
			log.Fatal(err)
		}
		sim.Schedule(0, func() { coreR.HandlePacket(data, 1) })
	})

	// Wire the topology (1 ms links).
	edge.AttachPort(sim.Pipe(consumer("consumer-A"), 0, 1e6, 0))
	edge.AttachPort(sim.Pipe(consumer("consumer-B"), 0, 1e6, 0))
	edge.AttachPort(sim.Pipe(netsim.ReceiverFunc(coreR.HandlePacket), 0, 1e6, 0))
	coreR.AttachPort(sim.Pipe(netsim.ReceiverFunc(edge.HandlePacket), 2, 1e6, 0))
	coreR.AttachPort(sim.Pipe(producer, 0, 1e6, 0))

	interest := func() []byte {
		b, err := dip.BuildPacket(dip.NDNInterestProfile(nameID), nil)
		if err != nil {
			log.Fatal(err)
		}
		return b
	}

	// Both consumers ask for the same content almost simultaneously: the
	// edge PIT aggregates, so the producer sees ONE request.
	sim.Schedule(0, func() { edge.HandlePacket(interest(), 0) })
	sim.Schedule(100_000, func() { edge.HandlePacket(interest(), 1) })
	// Later, consumer A asks again: the edge cache answers without the
	// producer or even the core router being involved.
	sim.Schedule(10e9, func() { edge.HandlePacket(interest(), 0) })
	sim.Run()

	fmt.Println()
	fmt.Printf("producer handled %d request(s) for 3 interests — aggregation + caching at work\n", producerServed)
	snap := edgeMetrics.Snapshot()
	fmt.Printf("edge router: %d absorbed (1 aggregated interest, 1 cache hit)\n", snap.Absorbed)
	if len(received["consumer-A"]) != 2 || len(received["consumer-B"]) != 1 {
		log.Fatalf("unexpected deliveries: %v", received)
	}
}
