// Incremental deployment (paper §2.4): two DIP domains separated by a
// legacy IPv4 domain, bridged by a DIP-in-IPv4 tunnel; plus the
// FN-unsupported signalling path when a packet demands an operation an AS
// cannot run; plus backward compatibility by viewing a whole IPv6 header
// as an FN location.
//
//	host ── [DIP domain A: borderA] ═══ legacy IPv4 ═══ [borderB: DIP domain B] ── server
//
//	go run ./examples/heterogeneous
package main

import (
	"bytes"
	"fmt"
	"log"

	"dip"
	"dip/internal/bootstrap"
	"dip/internal/compat"
	"dip/internal/ip"
	"dip/internal/netsim"
	"dip/internal/tunnel"
)

func main() {
	part1Tunnel()
	part2Signalling()
	part3Compat()
}

// part1Tunnel: a DIP packet crosses a legacy IPv4 domain inside a tunnel.
func part1Tunnel() {
	fmt.Println("== 1. tunneling across a DIP-agnostic domain ==")
	sim := netsim.New()

	// Border A: port 0 faces the local host, port 1 is the tunnel.
	stateA := dip.NewNodeState()
	stateA.FIB32.AddUint32(0x0B000000, 8, dip.NextHop{Port: 1}) // far domain via tunnel
	borderA := dip.NewRouter(stateA.OpsConfig(), dip.RouterOptions{Name: "borderA"})

	// Border B: port 0 is the tunnel, port 1 faces the server.
	stateB := dip.NewNodeState()
	stateB.FIB32.AddUint32(0x0B000001, 32, dip.Local) // the server itself
	var serverGot []byte
	borderB := dip.NewRouter(stateB.OpsConfig(), dip.RouterOptions{
		Name: "borderB",
		LocalDelivery: func(pkt []byte, _ int) {
			v, _ := dip.ParsePacket(pkt)
			serverGot = append([]byte(nil), v.Payload()...)
		},
	})

	// The legacy domain: a plain IPv4 router that only understands IPv4.
	// The tunnel endpoints hand it ordinary IPv4 packets.
	legacyHops := 0
	epA := &tunnel.Endpoint{Local: [4]byte{192, 0, 2, 1}, Remote: [4]byte{192, 0, 2, 2}}
	epB := &tunnel.Endpoint{Local: [4]byte{192, 0, 2, 2}, Remote: [4]byte{192, 0, 2, 1}}
	legacy := netsim.ReceiverFunc(func(outer []byte, _ int) {
		h4, err := ip.Parse4(outer)
		if err != nil {
			log.Fatalf("legacy domain got a non-IPv4 packet: %v", err)
		}
		legacyHops++
		h4.DecTTL()
		// Route on the outer IPv4 destination only — the legacy router
		// never sees DIP.
		if h4.Dst()[3] == 2 {
			sim.Schedule(1e6, func() {
				if err := epB.Receive(outer); err != nil {
					log.Fatal(err)
				}
			})
		}
	})
	epA.Carrier = sim.Pipe(legacy, 0, 1e6, 0)
	epB.Deliver = func(inner []byte) { borderB.HandlePacket(inner, 0) }

	borderA.AttachPort(dip.PortFunc(func([]byte) {})) // host-facing
	borderA.AttachPort(epA)                           // tunnel port
	borderB.AttachPort(epB)
	borderB.AttachPort(dip.PortFunc(func([]byte) {}))

	pkt, err := dip.BuildPacket(dip.IPv4Profile([4]byte{10, 0, 0, 1}, [4]byte{11, 0, 0, 1}), []byte("through the tunnel"))
	if err != nil {
		log.Fatal(err)
	}
	borderA.HandlePacket(pkt, 0)
	sim.Run()

	fmt.Printf("legacy router forwarded %d outer IPv4 packet(s) without understanding DIP\n", legacyHops)
	fmt.Printf("server received payload: %q\n\n", serverGot)
	if !bytes.Equal(serverGot, []byte("through the tunnel")) {
		log.Fatal("tunnel delivery failed")
	}
}

// part2Signalling: an AS without the OPT operations receives an OPT packet
// whose F_parm requires on-path participation — it must notify the source
// (§2.4) rather than silently break the authentication chain.
func part2Signalling() {
	fmt.Println("== 2. heterogeneous FN configurations: FN-unsupported signalling ==")

	// The limited AS supports only plain forwarding.
	limitedState := dip.NewNodeState()
	reg := dip.NewRouterRegistry(limitedState.OpsConfig())
	// Operator policy: path-authentication FNs demand every AS, so signal.
	reg.SetPolicy(dip.KeyParm, dip.PolicySignal)

	// Peek at what the AS advertises via bootstrap.
	catalog := bootstrap.CatalogOf(reg)
	fmt.Printf("limited AS advertises %d operations; supports F_MAC: %v\n",
		len(catalog.Keys()), catalog.Supports(dip.KeyMAC))

	var notification []byte
	limited := dip.NewRouterWithRegistry(reg, dip.RouterOptions{Name: "limited-AS"})
	limited.AttachPort(dip.PortFunc(func(pkt []byte) {
		notification = append([]byte(nil), pkt...)
	}))

	// An OPT-protected packet with an F_source field (so the reply can be
	// addressed) arrives.
	sv, _ := dip.NewSecret("r", bytes.Repeat([]byte{1}, 16))
	dst, _ := dip.NewSecret("d", bytes.Repeat([]byte{2}, 16))
	sess, _ := dip.NewSession(dip.MAC2EM, []dip.HopConfig{{Secret: sv}}, dst)
	h, err := dip.OPTProfile(sess, []byte("x"), 1)
	if err != nil {
		log.Fatal(err)
	}
	// Prepend F_source pointing at 4 extra source bytes.
	off := uint16(len(h.Locations) * 8)
	h.Locations = append(h.Locations, 10, 0, 0, 1)
	h.FNs = append(h.FNs, dip.FN{Loc: off, Len: 32, Key: dip.KeySource})
	pkt, err := dip.BuildPacket(h, []byte("x"))
	if err != nil {
		log.Fatal(err)
	}
	limited.HandlePacket(pkt, 0)

	if notification == nil {
		log.Fatal("no FN-unsupported notification")
	}
	hostStack := dip.NewHost()
	rx := hostStack.HandlePacket(notification)
	fmt.Printf("source was notified: %s, offending operation: %s\n\n", rx.Kind, rx.Key)
}

// part3Compat: a whole IPv6 header as an FN location — border routers strip
// and re-add the DIP framing around a legacy IPv6 domain.
func part3Compat() {
	fmt.Println("== 3. backward compatibility: IPv6-in-FN-locations ==")
	var src, dst [16]byte
	src[15], dst[15] = 1, 2
	dst[0] = 0x20
	native := make([]byte, ip.HeaderLen6+5)
	if err := ip.Build6(native, src, dst, ip.ProtoUDP, 40, 5); err != nil {
		log.Fatal(err)
	}
	copy(native[ip.HeaderLen6:], "hello")

	wrapped, err := compat.WrapIPv6(native)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native IPv6 packet: %d bytes; DIP-wrapped: %d bytes\n", len(native), len(wrapped))

	// A DIP router forwards the wrapped form with its ordinary F_128_match
	// module aimed inside the embedded IPv6 header.
	state := dip.NewNodeState()
	pfx := make([]byte, 16)
	pfx[0] = 0x20
	state.FIB128.Add(pfx, 8, dip.NextHop{Port: 0})
	r := dip.NewRouter(state.OpsConfig(), dip.RouterOptions{Name: "dip-core"})
	var forwarded []byte
	r.AttachPort(dip.PortFunc(func(pkt []byte) { forwarded = append([]byte(nil), pkt...) }))
	r.HandlePacket(wrapped, 1)
	if forwarded == nil {
		log.Fatal("wrapped packet not forwarded")
	}

	// At the egress border the DIP framing is stripped for the legacy domain.
	unwrapped, err := compat.UnwrapIPv6(forwarded)
	if err != nil {
		log.Fatal(err)
	}
	h6, err := ip.Parse6(unwrapped)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("egress border emitted native IPv6 again: hop limit %d, payload %q\n",
		h6.HopLimit(), h6.Payload())
}
