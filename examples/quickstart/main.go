// Quickstart: build a DIP packet, run it through a DIP router, watch the
// field operations decide its fate.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dip"
)

func main() {
	// A DIP router is an operation registry over forwarding state. Give it
	// one IPv4-style route: 10.0.0.0/8 leaves through port 1.
	state := dip.NewNodeState()
	if err := state.FIB32.AddUint32(0x0A000000, 8, dip.NextHop{Port: 1}); err != nil {
		log.Fatal(err)
	}

	r := dip.NewRouter(state.OpsConfig(), dip.RouterOptions{Name: "quickstart"})
	for p := 0; p < 2; p++ {
		p := p
		r.AttachPort(dip.PortFunc(func(pkt []byte) {
			v, _ := dip.ParsePacket(pkt)
			fmt.Printf("port %d: sent %d bytes, hop limit %d, payload %q\n",
				p, len(pkt), v.HopLimit(), v.Payload())
		}))
	}

	// The host side: the canonical IP protocol is just a composition of two
	// field operations — F_32_match over the destination and F_source over
	// the source (paper §3).
	h := dip.IPv4Profile([4]byte{192, 0, 2, 1}, [4]byte{10, 7, 7, 7})
	fmt.Println("DIP-32 header composition:")
	for i, fn := range h.FNs {
		fmt.Printf("  FN[%d] = %v\n", i, fn)
	}
	fmt.Printf("header size: %d bytes (Table 2's DIP-32 row)\n\n", h.WireSize())

	pkt, err := dip.BuildPacket(h, []byte("hello, narrow waist"))
	if err != nil {
		log.Fatal(err)
	}
	r.HandlePacket(pkt, 0)

	// The same router speaks NDN with zero reconfiguration: route a content
	// prefix, send an interest, return the data.
	fmt.Println("\nnow NDN on the very same router:")
	state.NameFIB.AddUint32(0xAA000000, 8, dip.NextHop{Port: 1})
	interest, _ := dip.BuildPacket(dip.NDNInterestProfile(0xAA001234), nil)
	r.HandlePacket(interest, 0) // forwarded out port 1, PIT records port 0
	data, _ := dip.BuildPacket(dip.NDNDataProfile(0xAA001234), []byte("the content"))
	r.HandlePacket(data, 1) // consumes the PIT entry, data returns via port 0
	fmt.Println("done — one router, two radically different L3 protocols,")
	fmt.Println("distinguished only by the FN compositions the packets carried.")
}
