package dip

// Facade-level tests covering the public API surface not already exercised
// by the integration tests: PISA compilation, bootstrap interplay, node
// state builders, and the extension-operation composition path.

import (
	"bytes"
	"testing"

	"dip/internal/bootstrap"
	"dip/internal/extops"
	"dip/internal/pisa"
)

func TestCompilePISAThroughFacade(t *testing.T) {
	state := NewNodeState()
	state.FIB32.AddUint32(0x0A000000, 8, NextHop{Port: 2})
	pl, err := CompilePISA(state.OpsConfig())
	if err != nil {
		t.Fatal(err)
	}
	pkt, _ := BuildPacket(IPv4Profile([4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 9}), nil)
	var phv pisa.PHV
	var md pisa.Metadata
	if _, err := pl.Process(pkt, 0, &phv, &md); err != nil || md.Drop {
		t.Fatalf("md=%+v err=%v", md, err)
	}
	if md.NEgress != 1 || md.Egress[0] != 2 {
		t.Errorf("egress %v", md.Egress[:md.NEgress])
	}
}

func TestNodeStateBuilders(t *testing.T) {
	state := NewNodeState().EnableCache(32)
	if state.ContentStore == nil {
		t.Fatal("EnableCache did not attach a store")
	}
	sv, err := NewSecret("n", bytes.Repeat([]byte{1}, 16))
	if err != nil {
		t.Fatal(err)
	}
	var label [16]byte
	label[0] = 9
	state.EnableOPT(sv, MACAESCMAC, label, 3)
	cfg := state.OpsConfig()
	if cfg.Secret != sv || cfg.MACKind != MACAESCMAC || cfg.PrevLabel != label || cfg.HopIndex != 3 {
		t.Errorf("OpsConfig lost OPT settings: %+v", cfg)
	}
	if cfg.ContentStore != state.ContentStore || cfg.PIT != state.PIT {
		t.Error("OpsConfig lost table bindings")
	}
}

func TestBootstrapAgainstFacadeRegistry(t *testing.T) {
	state := NewNodeState()
	sv, _ := NewSecret("r", bytes.Repeat([]byte{1}, 16))
	state.EnableOPT(sv, MAC2EM, [16]byte{}, 0)
	reg := NewRouterRegistry(state.OpsConfig())
	responder := bootstrap.NewResponder(reg)
	reply := responder.Handle(bootstrap.EncodeDiscover())
	_, catalog, err := bootstrap.Decode(reply)
	if err != nil {
		t.Fatal(err)
	}
	// A fully configured node advertises the whole Table 1 (sans F_ver,
	// which is host-side) plus F_pass.
	for _, k := range []Key{KeyMatch32, KeyMatch128, KeySource, KeyFIB, KeyPIT,
		KeyParm, KeyMAC, KeyMark, KeyDAG, KeyIntent, KeyPass} {
		if !catalog.Supports(k) {
			t.Errorf("catalog missing %v", k)
		}
	}
	if catalog.Supports(KeyVer) {
		t.Error("router advertises the host-side F_ver")
	}
	// Path-authentication keys carry the signalling policy.
	for _, e := range catalog {
		if e.Key == KeyParm && e.Policy != PolicySignal {
			t.Error("F_parm not advertised with PolicySignal")
		}
	}
}

// Extension operations compose with standard profiles through the facade —
// the §5 "upgrade FNs, not hardware" path.
func TestExtensionOpsThroughFacade(t *testing.T) {
	var ccKey [16]byte
	ccKey[0] = 0x42
	state := NewNodeState()
	state.FIB32.AddUint32(0x0A000000, 8, NextHop{Port: 0})
	reg := NewRouterRegistry(state.OpsConfig())
	if err := reg.Register(extops.NewCC(extops.CCConfig{CapacityBps: 1e9, Key: ccKey})); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(extops.NewTel(7, nil)); err != nil {
		t.Fatal(err)
	}
	r := NewRouterWithRegistry(reg, RouterOptions{})
	var out []byte
	r.AttachPort(PortFunc(func(pkt []byte) { out = append([]byte(nil), pkt...) }))

	h := IPv4Profile([4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2})
	ccOff := uint16(len(h.Locations) * 8)
	h.Locations = append(h.Locations, extops.NewCCTag(0xF00D)...)
	telOff := uint16(len(h.Locations) * 8)
	h.Locations = append(h.Locations, extops.NewTelRegion(2)...)
	h.FNs = append(h.FNs,
		FN{Loc: ccOff, Len: extops.CCOperandBits, Key: extops.KeyCC},
		FN{Loc: telOff, Len: extops.TelOperandBits(2), Key: extops.KeyTel},
	)
	pkt, err := BuildPacket(h, []byte("composable"))
	if err != nil {
		t.Fatal(err)
	}
	r.HandlePacket(pkt, 1)
	if out == nil {
		t.Fatal("not forwarded")
	}
	v, _ := ParsePacket(out)
	locs := v.Locations()
	flow, _, _, ok := extops.VerifyCC(&ccKey, locs[ccOff/8:])
	if !ok || flow != 0xF00D {
		t.Errorf("cc tag: flow=%#x ok=%v", flow, ok)
	}
	records, _, err := extops.DecodeTel(locs[telOff/8:])
	if err != nil || len(records) != 1 || records[0].HopID != 7 {
		t.Errorf("telemetry: %v %v", records, err)
	}
}

// An unconfigured node must still build, forward nothing, and drop cleanly.
func TestMinimalNode(t *testing.T) {
	r := NewRouter(OpsConfig{}, RouterOptions{})
	r.AttachPort(PortFunc(func([]byte) { t.Error("minimal node forwarded") }))
	pkt, _ := BuildPacket(IPv4Profile([4]byte{1, 1, 1, 1}, [4]byte{2, 2, 2, 2}), nil)
	r.HandlePacket(pkt, 0) // F_32_match unregistered → ignored → no egress
}
