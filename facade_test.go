package dip

// Facade-level tests covering the public API surface not already exercised
// by the integration tests: PISA compilation, bootstrap interplay, node
// state builders, and the extension-operation composition path.

import (
	"bytes"
	"testing"
	"time"

	"dip/internal/bootstrap"
	"dip/internal/extops"
	"dip/internal/pisa"
)

func TestCompilePISAThroughFacade(t *testing.T) {
	state := NewNodeState()
	state.FIB32.AddUint32(0x0A000000, 8, NextHop{Port: 2})
	pl, err := CompilePISA(state.OpsConfig())
	if err != nil {
		t.Fatal(err)
	}
	pkt, _ := BuildPacket(IPv4Profile([4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 9}), nil)
	var phv pisa.PHV
	var md pisa.Metadata
	if _, err := pl.Process(pkt, 0, &phv, &md); err != nil || md.Drop {
		t.Fatalf("md=%+v err=%v", md, err)
	}
	if md.NEgress != 1 || md.Egress[0] != 2 {
		t.Errorf("egress %v", md.Egress[:md.NEgress])
	}
}

func TestNodeStateBuilders(t *testing.T) {
	state := NewNodeState().EnableCache(32)
	if state.ContentStore == nil {
		t.Fatal("EnableCache did not attach a store")
	}
	sv, err := NewSecret("n", bytes.Repeat([]byte{1}, 16))
	if err != nil {
		t.Fatal(err)
	}
	var label [16]byte
	label[0] = 9
	state.EnableOPT(sv, MACAESCMAC, label, 3)
	cfg := state.OpsConfig()
	if cfg.Secret != sv || cfg.MACKind != MACAESCMAC || cfg.PrevLabel != label || cfg.HopIndex != 3 {
		t.Errorf("OpsConfig lost OPT settings: %+v", cfg)
	}
	if cfg.ContentStore != state.ContentStore || cfg.PIT != state.PIT {
		t.Error("OpsConfig lost table bindings")
	}
}

func TestBootstrapAgainstFacadeRegistry(t *testing.T) {
	state := NewNodeState()
	sv, _ := NewSecret("r", bytes.Repeat([]byte{1}, 16))
	state.EnableOPT(sv, MAC2EM, [16]byte{}, 0)
	reg := NewRouterRegistry(state.OpsConfig())
	responder := bootstrap.NewResponder(reg)
	reply := responder.Handle(bootstrap.EncodeDiscover())
	_, catalog, err := bootstrap.Decode(reply)
	if err != nil {
		t.Fatal(err)
	}
	// A fully configured node advertises the whole Table 1 (sans F_ver,
	// which is host-side) plus F_pass.
	for _, k := range []Key{KeyMatch32, KeyMatch128, KeySource, KeyFIB, KeyPIT,
		KeyParm, KeyMAC, KeyMark, KeyDAG, KeyIntent, KeyPass} {
		if !catalog.Supports(k) {
			t.Errorf("catalog missing %v", k)
		}
	}
	if catalog.Supports(KeyVer) {
		t.Error("router advertises the host-side F_ver")
	}
	// Path-authentication keys carry the signalling policy.
	for _, e := range catalog {
		if e.Key == KeyParm && e.Policy != PolicySignal {
			t.Error("F_parm not advertised with PolicySignal")
		}
	}
}

// Extension operations compose with standard profiles through the facade —
// the §5 "upgrade FNs, not hardware" path.
func TestExtensionOpsThroughFacade(t *testing.T) {
	var ccKey [16]byte
	ccKey[0] = 0x42
	state := NewNodeState()
	state.FIB32.AddUint32(0x0A000000, 8, NextHop{Port: 0})
	reg := NewRouterRegistry(state.OpsConfig())
	if err := reg.Register(extops.NewCC(extops.CCConfig{CapacityBps: 1e9, Key: ccKey})); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(extops.NewTel(7, nil)); err != nil {
		t.Fatal(err)
	}
	r := NewRouterWithRegistry(reg, RouterOptions{})
	var out []byte
	r.AttachPort(PortFunc(func(pkt []byte) { out = append([]byte(nil), pkt...) }))

	h := IPv4Profile([4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2})
	ccOff := uint16(len(h.Locations) * 8)
	h.Locations = append(h.Locations, extops.NewCCTag(0xF00D)...)
	telOff := uint16(len(h.Locations) * 8)
	h.Locations = append(h.Locations, extops.NewTelRegion(2)...)
	h.FNs = append(h.FNs,
		FN{Loc: ccOff, Len: extops.CCOperandBits, Key: extops.KeyCC},
		FN{Loc: telOff, Len: extops.TelOperandBits(2), Key: extops.KeyTel},
	)
	pkt, err := BuildPacket(h, []byte("composable"))
	if err != nil {
		t.Fatal(err)
	}
	r.HandlePacket(pkt, 1)
	if out == nil {
		t.Fatal("not forwarded")
	}
	v, _ := ParsePacket(out)
	locs := v.Locations()
	flow, _, _, ok := extops.VerifyCC(&ccKey, locs[ccOff/8:])
	if !ok || flow != 0xF00D {
		t.Errorf("cc tag: flow=%#x ok=%v", flow, ok)
	}
	records, _, err := extops.DecodeTel(locs[telOff/8:])
	if err != nil || len(records) != 1 || records[0].HopID != 7 {
		t.Errorf("telemetry: %v %v", records, err)
	}
}

// The route-exchange control plane is drivable purely through facade
// symbols: a Speaker's advertisement rides a RouteExchange packet through a
// real Router, whose F_ctl verdict hands it to the local-delivery sink, and
// the learning side commits the route into its FIB.
func TestRouteExchangeThroughFacade(t *testing.T) {
	now := func() time.Duration { return 0 }

	// Learner: a router whose local-delivery sink feeds its Speaker.
	state := NewNodeState()
	learner := NewRouter(state.OpsConfig(), RouterOptions{})
	sp := NewSpeaker(SpeakerConfig{Name: "learner", FIB32: state.FIB32, Now: now})
	sp.AddNeighbor(0, func([]byte) {}) // return path, unused here
	learner.SetLocalDelivery(func(pkt []byte, inPort int) {
		v, err := ParsePacket(pkt)
		if err != nil || v.NextHeader() != NHRouteExchange {
			t.Errorf("unexpected local delivery: %v", err)
			return
		}
		if err := sp.Handle(v.Payload(), inPort); err != nil {
			t.Errorf("speaker: %v", err)
		}
	})

	// Origin: its Speaker wraps messages in the control profile and injects
	// them into the learner's pipeline as port-0 arrivals.
	origin := NewSpeaker(SpeakerConfig{Name: "origin", Now: now})
	origin.AddNeighbor(0, func(msg []byte) {
		pkt, err := BuildPacket(RouteExchange(), msg)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		learner.HandlePacket(pkt, 0)
	})
	origin.Originate(bootstrap.Entry32(0x0A000000, 8, 0), NextHop{Port: 3})
	origin.Refresh()

	if st := sp.Stats(); st.RIB != 1 || st.RoutesInstalled != 1 {
		t.Fatalf("stats after exchange: %+v", st)
	}
	if nh, ok := state.FIB32.LookupUint32(0x0A010203); !ok || nh.Port != 0 {
		t.Errorf("learned route not committed to the FIB (nh=%+v ok=%v)", nh, ok)
	}
}

// An unconfigured node must still build, forward nothing, and drop cleanly.
func TestMinimalNode(t *testing.T) {
	r := NewRouter(OpsConfig{}, RouterOptions{})
	r.AttachPort(PortFunc(func([]byte) { t.Error("minimal node forwarded") }))
	pkt, _ := BuildPacket(IPv4Profile([4]byte{1, 1, 1, 1}, [4]byte{2, 2, 2, 2}), nil)
	r.HandlePacket(pkt, 0) // F_32_match unregistered → ignored → no egress
}
