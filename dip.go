// Package dip is the public API of this DIP implementation — a from-scratch
// Go realization of "DIP: Unifying Network Layer Innovations using Shared
// L3 Core Functions" (Wang, Liu, Wang, Fu, Xu; HotNets 2022).
//
// DIP replaces fixed per-protocol packet processing with one primitive, the
// Field Operation (FN): a triple (field location, field length, operation
// key) carried in the packet header. Routers execute the operations the
// packet names against the operands it carries, so the packet itself —
// not the router's protocol stack — decides how it is processed. Radically
// different network layers then become mere header compositions:
//
//	h := dip.IPv4Profile(src, dst)          // canonical IP forwarding
//	h  = dip.NDNInterestProfile(nameID)     // named-data interest
//	h, _ = dip.OPTProfile(sess, payload, t) // source auth + path validation
//	h, _ = dip.NDNOPTDataProfile(...)       // the derived NDN+OPT protocol
//	pkt, _ := dip.BuildPacket(h, payload)
//
// A Router executes Algorithm 1 of the paper over a Registry of operation
// modules; a Host constructs packets and runs the host-tagged operations
// (destination verification) on receipt. See DESIGN.md for the system map
// and EXPERIMENTS.md for the reproduction of the paper's evaluation.
//
// # Quick start
//
//	cfg := dip.NewNodeState()
//	cfg.FIB32.AddUint32(0x0A000000, 8, dip.NextHop{Port: 1})
//	r := dip.NewRouter(cfg.OpsConfig(), dip.RouterOptions{Name: "r1"})
//	r.AttachPort(...)
//	r.HandlePacket(pkt, 0)
//
// The examples/ directory contains six runnable scenarios; cmd/ contains
// the benchmark harness (dipbench), a UDP-overlay router and host
// (diprouter, diphost), a packet dissector (dipdump), and a topology
// scenario runner (diptopo).
package dip

import (
	"net"
	"time"

	"dip/internal/bootstrap"
	"dip/internal/cc"
	"dip/internal/core"
	"dip/internal/cs"
	"dip/internal/drkey"
	"dip/internal/export"
	"dip/internal/fib"
	"dip/internal/guard"
	"dip/internal/host"
	"dip/internal/journey"
	"dip/internal/ndn"
	"dip/internal/ops"
	"dip/internal/opt"
	"dip/internal/pisa"
	"dip/internal/pit"
	"dip/internal/profiles"
	"dip/internal/router"
	"dip/internal/telemetry"
	"dip/internal/trace"
	"dip/internal/workload"
	"dip/internal/xia"
)

// Core protocol types.
type (
	// Header is the builder-side DIP header (hosts construct these).
	Header = core.Header
	// FN is one field-operation triple.
	FN = core.FN
	// View is a zero-copy parse of a DIP packet.
	View = core.View
	// Key identifies an operation module.
	Key = core.Key
	// Verdict is a packet's fate after Algorithm 1.
	Verdict = core.Verdict
	// DropReason explains a dropped packet.
	DropReason = core.DropReason
	// Registry is the operation dispatch table.
	Registry = core.Registry
	// Operation is one FN operation module.
	Operation = core.Operation
	// ExecContext carries one packet through the engine.
	ExecContext = core.ExecContext
	// Engine executes Algorithm 1.
	Engine = core.Engine
	// Limits are the per-packet security limits of §2.4.
	Limits = core.Limits
)

// Operation keys (the paper's Table 1, plus F_pass from §2.4).
const (
	KeyMatch32  = core.KeyMatch32
	KeyMatch128 = core.KeyMatch128
	KeySource   = core.KeySource
	KeyFIB      = core.KeyFIB
	KeyPIT      = core.KeyPIT
	KeyParm     = core.KeyParm
	KeyMAC      = core.KeyMAC
	KeyMark     = core.KeyMark
	KeyVer      = core.KeyVer
	KeyDAG      = core.KeyDAG
	KeyIntent   = core.KeyIntent
	KeyPass     = core.KeyPass
)

// Verdicts.
const (
	VerdictContinue = core.VerdictContinue
	VerdictAbsorb   = core.VerdictAbsorb
	VerdictForward  = core.VerdictForward
	VerdictDeliver  = core.VerdictDeliver
	VerdictDrop     = core.VerdictDrop
)

// Node-state and infrastructure types.
type (
	// FIB is a longest-prefix-match forwarding table.
	FIB = fib.Table
	// NextHop is a FIB entry's target.
	NextHop = fib.NextHop
	// PIT is a pending interest table keyed by 32-bit content names.
	PIT = pit.Table[uint32]
	// ContentStore is the LRU content cache.
	ContentStore = cs.Store[uint32]
	// TieredStore is the two-tier content cache: ContentStore as hot RAM
	// tier over a file-backed cold slot arena, with non-blocking cold
	// reads satisfied by async re-injection.
	TieredStore = cs.Tiered[uint32]
	// TieredConfig sizes the cold tier (slots, slot size, reader pool).
	TieredConfig = cs.ColdConfig
	// TierStats is a two-tier content-store snapshot (per-tier hit ratios,
	// cold-read latency histogram, arena occupancy).
	TierStats = cs.TierStats
	// SecretValue is a router's DRKey secret.
	SecretValue = drkey.SecretValue
	// Session is a negotiated OPT session (held by hosts).
	Session = opt.Session
	// HopConfig is one hop's OPT contribution.
	HopConfig = opt.HopConfig
	// MACKind selects the OPT MAC algorithm.
	MACKind = opt.Kind
	// OpsConfig binds node state to operation modules.
	OpsConfig = ops.Config
	// Router is a DIP-capable node.
	Router = router.Router
	// RouterOptions tunes a router.
	RouterOptions = router.Config
	// Port is a router attachment point.
	Port = router.Port
	// PortFunc adapts a function to Port.
	PortFunc = router.PortFunc
	// Host is a DIP host stack.
	Host = host.Stack
	// Rx is a host receive outcome.
	Rx = host.Rx
	// RxKind classifies a host receive outcome.
	RxKind = host.RxKind
	// Metrics collects forwarding telemetry.
	Metrics = telemetry.Metrics
	// MetricsSnapshot is a point-in-time copy of a node's counters.
	MetricsSnapshot = telemetry.Snapshot
	// Recorder is the engine telemetry sink interface (Metrics and
	// TraceRecorder both satisfy it; journey taps wrap one).
	Recorder = core.Recorder
	// TraceRecorder samples per-packet FN journeys into a lock-free ring.
	TraceRecorder = trace.Recorder
	// TraceRecord is one sampled packet's journey.
	TraceRecord = trace.Record
	// JourneyCollector stitches cross-element spans into per-packet
	// journeys with latency decomposition and an anomaly flight recorder.
	JourneyCollector = journey.Collector
	// JourneySpan is one element's observation of one packet.
	JourneySpan = journey.Span
	// Journey is one packet instance's stitched span sequence.
	Journey = journey.Journey
	// JourneyEmitter buffers spans for /journeys export from live processes.
	JourneyEmitter = journey.Emitter
	// JourneyStats is a collector aggregate snapshot.
	JourneyStats = journey.Stats
	// FlightRecorder is the bounded ring of frozen anomalous journeys.
	FlightRecorder = journey.FlightRecorder
	// FrozenJourney is one flight-recorder entry.
	FrozenJourney = journey.FrozenJourney
	// JourneyTraceID correlates spans from different elements into one
	// journey (explicit TraceCtx FN, or the packet content fingerprint).
	JourneyTraceID = journey.TraceID
	// JourneySpanSink receives spans (JourneyCollector and JourneyEmitter
	// both satisfy it).
	JourneySpanSink = journey.SpanSink
	// MetricsSource bundles what one node exposes over its metrics listener.
	MetricsSource = export.Source
	// Fetcher retransmits NDN interests with backoff until data arrives
	// (end-to-end recovery over lossy paths).
	Fetcher = host.Fetcher
	// FetchConfig tunes a Fetcher's timeout, backoff, and retx cap.
	FetchConfig = host.FetchConfig
	// FetchStats snapshots a Fetcher's recovery counters.
	FetchStats = host.FetchStats
	// SegFetcher pipelines congestion-controlled multi-segment object
	// fetches: up to cwnd interests in flight, in-order reassembly,
	// adaptive RTO, dead-lettering at the retransmission cap.
	SegFetcher = host.SegFetcher
	// SegConfig tunes a SegFetcher (congestion control + retx cap).
	SegConfig = host.SegConfig
	// SegStats snapshots a SegFetcher's counters.
	SegStats = host.SegStats
	// Reassembly is the first-write-wins in-order segment buffer behind
	// SegFetcher.
	Reassembly = host.Reassembly
	// CCConfig configures a fetch flow's congestion controller.
	CCConfig = cc.Config
	// CCAlgo selects the window algorithm (AIMD, CUBIC, or the blind
	// fixed-window baseline).
	CCAlgo = cc.Algo
	// CCFlow is one flow's congestion state: Jacobson/Karn RTT estimation
	// plus an AIMD/CUBIC window.
	CCFlow = cc.Flow
	// CCSnapshot is a flow controller state snapshot (cwnd, sRTT, RTO…).
	CCSnapshot = cc.Snapshot
	// RTTConfig bounds the adaptive RTO estimator (RFC 6298 shape).
	RTTConfig = cc.RTTConfig
	// FleetConfig shapes a consumer-fleet run (population, catalog,
	// bottleneck, phases, seed).
	FleetConfig = workload.FleetConfig
	// Fleet is one constructed consumer-fleet scenario.
	Fleet = workload.Fleet
	// FleetResult aggregates a fleet run (Jain index, goodput,
	// completion percentiles, recovery counters).
	FleetResult = workload.FleetResult
	// ConsumerStats is one fleet consumer's outcome.
	ConsumerStats = workload.ConsumerStats
	// Ingress is a router's guarded queue-and-workers front end.
	Ingress = router.Ingress
	// ServeConfig tunes the ingress guard layer (admission control,
	// priority queues, quarantine, watchdog).
	ServeConfig = router.ServeConfig
	// Health is a point-in-time ingress guard snapshot.
	Health = router.Health
	// AdmissionPolicy configures the ingress token-bucket limiters.
	AdmissionPolicy = guard.Policy
	// AdmissionRate is one token-bucket configuration (zero = unlimited).
	AdmissionRate = guard.Rate
	// Admission is a router ingress's admission-control state.
	Admission = guard.Admission
	// GuardClass is an ingress admission priority class.
	GuardClass = guard.Class
	// Quarantine is the bounded poison-packet capture ring.
	Quarantine = guard.Quarantine
	// QuarantineCapture is one quarantined poison packet.
	QuarantineCapture = guard.Capture
	// Catalog is an advertised FN availability set.
	Catalog = bootstrap.Catalog
	// Speaker is a per-router route-exchange agent: it advertises local
	// prefixes and FN catalogs to neighbors over the DIP fabric itself and
	// commits learned routes to the FIBs in batched transactions.
	Speaker = bootstrap.Speaker
	// SpeakerConfig wires a Speaker to a node's FIBs, catalog, and clock.
	SpeakerConfig = bootstrap.SpeakerConfig
	// SpeakerStats is a point-in-time route-exchange counter snapshot.
	SpeakerStats = bootstrap.SpeakerStats
	// DAG is an XIA address.
	DAG = xia.DAG
	// DAGNode is one XIA address node.
	DAGNode = xia.Node
	// XID is an XIA typed identifier.
	XID = xia.XID
	// Pipeline is a PISA switch model running the compiled DIP program.
	Pipeline = pisa.Pipeline
)

// MAC kinds for OPT sessions.
const (
	MAC2EM     = opt.Kind2EM
	MACAESCMAC = opt.KindAESCMAC
)

// Host receive outcomes.
const (
	RxDelivered     = host.RxDelivered
	RxRejected      = host.RxRejected
	RxFNUnsupported = host.RxFNUnsupported
	RxMalformed     = host.RxMalformed
)

// Local is the next hop meaning "deliver to this node".
var Local = fib.Local

// Ingress admission classes: bulk data sheds first under pressure; control
// and probe traffic is protected.
const (
	ClassBulk    = guard.ClassBulk
	ClassControl = guard.ClassControl
)

// NewAdmission builds ingress admission-control state over a policy. clock
// supplies elapsed time (a netsim Simulator's Now for deterministic
// simulations, nil for wall time).
func NewAdmission(policy AdmissionPolicy, clock func() time.Duration) *Admission {
	return guard.NewAdmission(policy, clock)
}

// NewQuarantine builds a poison-packet capture ring holding the last n
// captures (n < 1 uses the default size).
func NewQuarantine(n int) *Quarantine { return guard.NewQuarantine(n) }

// ClassifyPacket reports the default admission class of raw packet bytes.
func ClassifyPacket(pkt []byte) GuardClass { return guard.Classify(pkt) }

// NewSpeaker builds a route-exchange agent for one router. Peer it with
// AddNeighbor (the send func typically wraps BuildPacket(RouteExchange(), msg)
// toward that neighbor), feed received control payloads to Handle, and call
// Refresh periodically to re-advertise and expire stale routes.
func NewSpeaker(cfg SpeakerConfig) *Speaker { return bootstrap.NewSpeaker(cfg) }

// CatalogOf derives the advertised FN catalog from a router registry.
func CatalogOf(reg *Registry) Catalog { return bootstrap.CatalogOf(reg) }

// RouteExchange is the header profile of an in-fabric route-exchange packet:
// a single F_ctl FN delivering the payload to the receiving router's control
// stack (its Speaker) instead of forwarding it.
func RouteExchange() *Header { return profiles.RouteExchange() }

// NHRouteExchange is the next-header value of an in-fabric route-exchange
// packet; a local-delivery sink demultiplexes on it to feed the Speaker.
const NHRouteExchange = profiles.NHRouteExchange

// NodeState bundles the forwarding state a fully-featured DIP node keeps.
// Zero-valued fields are valid: a node built from a fresh NodeState
// supports every operation in Table 1 except those needing extra
// configuration (XIA routes, OPT secret).
type NodeState struct {
	FIB32        *fib.Table
	FIB128       *fib.Table
	NameFIB      *fib.Table
	PIT          *pit.Table[uint32]
	ContentStore *cs.Store[uint32]
	TieredStore  *cs.Tiered[uint32]
	Secret       *drkey.SecretValue
	MACKind      opt.Kind
	PrevLabel    [16]byte
	HopIndex     uint8
	XIARoutes    *xia.RouteTable
	GuardKey     [16]byte
	// RequirePass puts the node in content-poisoning defense posture
	// (F_PIT refuses to cache unlabelled payloads, §2.4).
	RequirePass bool
}

// NewNodeState allocates fresh tables (no content store; pass csCapacity
// via EnableCache).
func NewNodeState() *NodeState {
	return &NodeState{
		FIB32:     fib.New(),
		FIB128:    fib.New(),
		NameFIB:   fib.New(),
		PIT:       pit.New[uint32](),
		XIARoutes: xia.NewRouteTable(),
	}
}

// EnableCache attaches a content store of the given capacity (one shard,
// exact LRU).
func (s *NodeState) EnableCache(capacity int) *NodeState {
	s.ContentStore = cs.New[uint32](capacity)
	return s
}

// EnableCacheSharded attaches a content store split into shards lock
// domains for concurrent forwarding workers (approximate global LRU; see
// cs.NewSharded).
func (s *NodeState) EnableCacheSharded(capacity, shards int) *NodeState {
	s.ContentStore = cs.NewSharded[uint32](capacity, shards)
	return s
}

// EnableTieredCache layers a file-backed cold arena under a fresh sharded
// hot tier: hot evictions spill to disk under insert-on-second-hit
// admission, and cold hits are served by async re-injection so forwarders
// never block on a read. The returned store must be Closed by the caller
// (it owns the arena file and reader pool); wire its completion callback
// with TieredStore.SetReinject before serving traffic.
func (s *NodeState) EnableTieredCache(capacity, shards int, cold TieredConfig) (*cs.Tiered[uint32], error) {
	hot := cs.NewSharded[uint32](capacity, shards)
	t, err := cs.NewTiered(hot, cold)
	if err != nil {
		return nil, err
	}
	s.ContentStore = hot
	s.TieredStore = t
	return t, nil
}

// EnableOPT attaches the DRKey secret and MAC configuration the
// authentication operations need.
func (s *NodeState) EnableOPT(secret *drkey.SecretValue, kind opt.Kind, prevLabel [16]byte, hopIndex uint8) *NodeState {
	s.Secret = secret
	s.MACKind = kind
	s.PrevLabel = prevLabel
	s.HopIndex = hopIndex
	return s
}

// OpsConfig converts the node state into the operation-module binding.
func (s *NodeState) OpsConfig() ops.Config {
	return ops.Config{
		FIB32:        s.FIB32,
		FIB128:       s.FIB128,
		NameFIB:      s.NameFIB,
		PIT:          s.PIT,
		ContentStore: s.ContentStore,
		TieredStore:  s.TieredStore,
		Secret:       s.Secret,
		MACKind:      s.MACKind,
		PrevLabel:    s.PrevLabel,
		HopIndex:     s.HopIndex,
		XIARoutes:    s.XIARoutes,
		GuardKey:     s.GuardKey,
		RequirePass:  s.RequirePass,
	}
}

// Maintain sweeps expired soft state (PIT entries). Long-running nodes
// call it periodically; correctness never depends on it because every
// read path re-checks expiry.
func (s *NodeState) Maintain() (expired int) {
	if s.PIT != nil {
		expired = s.PIT.Expire()
	}
	return expired
}

// NewRouter builds a DIP router: an operation registry over cfg plus the
// per-hop pipeline (hop limit, Algorithm 1, verdict handling).
func NewRouter(cfg OpsConfig, rc RouterOptions) *Router {
	return router.New(ops.NewRouterRegistry(cfg), rc)
}

// NewRouterRegistry exposes the registry builder for callers who want to
// customize policies or add their own operation modules before building a
// router with NewRouterWithRegistry.
func NewRouterRegistry(cfg OpsConfig) *Registry {
	return ops.NewRouterRegistry(cfg)
}

// NewRouterWithRegistry builds a router over an explicitly prepared
// registry (custom operation modules, adjusted unknown-key policies).
func NewRouterWithRegistry(reg *Registry, rc RouterOptions) *Router {
	return router.New(reg, rc)
}

// Unknown-key policies (§2.4): what a router does with a router-tagged FN
// it has no module for.
const (
	PolicyIgnore = core.PolicyIgnore
	PolicySignal = core.PolicySignal
)

// NewHost builds a DIP host stack (session store + host-side engine).
func NewHost() *Host { return host.NewStack() }

// NewTraceRecorder builds a 1-in-every packet trace sampler over a ring of
// the given record capacity, forwarding aggregate telemetry to inner
// (typically the node's *Metrics). Install it via RouterOptions.Trace.
func NewTraceRecorder(inner *Metrics, every, ring int) *TraceRecorder {
	if inner == nil {
		return trace.NewRecorder(nil, every, ring)
	}
	return trace.NewRecorder(inner, every, ring)
}

// NewJourneyCollector builds a span-stitching collector with default
// bounds (4096 live journeys, 64-entry flight recorder).
func NewJourneyCollector() *JourneyCollector {
	return journey.NewCollector(journey.Config{})
}

// NewJourneyEmitter builds a span ring for live-process /journeys export
// (size < 1 selects the default 4096).
func NewJourneyEmitter(size int) *JourneyEmitter { return journey.NewEmitter(size) }

// NewRouterJourneyTap wraps a router's recorder so every every-th packet
// emits a journey span to sink; install via Router.SetRecorder. inner
// keeps receiving all telemetry (pass the node's *Metrics or a
// *TraceRecorder); now is the span clock (nil = wall time).
func NewRouterJourneyTap(node string, sink journey.SpanSink, inner core.Recorder, every int, now func() int64) *journey.RouterTap {
	return journey.NewRouterTap(node, sink, inner, every, now)
}

// JourneyTraceOf derives a packet's journey trace ID (explicit TraceCtx FN
// when carried, content fingerprint otherwise; 0 for non-DIP bytes).
func JourneyTraceOf(pkt []byte) JourneyTraceID { return journey.TraceOf(pkt) }

// WithJourneyTrace appends a host-tagged TraceCtx FN carrying an explicit
// trace ID, so the journey survives payload rewrites that would change the
// content fingerprint. Routers skip it (host tag); taps read it.
func WithJourneyTrace(h *Header, id JourneyTraceID) *Header {
	return journey.WithTraceCtx(h, id)
}

// NewFetcherJourneyTap builds a host.FetchObserver emitting send/retx/
// satisfy/dead-letter spans; set as FetchConfig.Observer. (Link and
// tunnel taps live with their substrates — journey.NewLinkTap and
// journey.NewTunnelTap — which diptopo wires up; the facade exposes no
// netsim/tunnel surface to install them on.)
func NewFetcherJourneyTap(node string, sink JourneySpanSink, now func() int64) host.FetchObserver {
	return journey.NewFetcherTap(node, sink, now)
}

// ServeMetrics binds addr and serves src's observability surface (/metrics
// in Prometheus text format, /trace in dipdump-ready form, /debug/pprof)
// on a background goroutine, returning the bound address and a closer.
func ServeMetrics(addr string, src MetricsSource) (net.Addr, func() error, error) {
	return export.Serve(addr, src)
}

// NewFetcher builds an interest retransmitter sending through send, with
// timeouts armed on clock (the netsim Simulator, or any real-time shim).
func NewFetcher(clock host.Clock, send func(pkt []byte), cfg FetchConfig) *Fetcher {
	return host.NewFetcher(clock, send, cfg)
}

// Congestion-window algorithms for CCConfig.Algo.
const (
	// CCAlgoAIMD is Reno-style slow start + additive increase,
	// multiplicative decrease.
	CCAlgoAIMD = cc.AlgoAIMD
	// CCAlgoCUBIC grows along the RFC 8312 cubic curve.
	CCAlgoCUBIC = cc.AlgoCUBIC
	// CCAlgoBlind is the fixed-window, fixed-RTO baseline (no adaptation).
	CCAlgoBlind = cc.AlgoBlind
)

// NewSegFetcher builds a congestion-controlled multi-segment fetcher
// sending interests through send, with timers on clock (netsim Simulator
// for simulations, a wall-clock shim for live hosts — see NewWallClock).
func NewSegFetcher(clock host.Clock, send func(pkt []byte), cfg SegConfig) *SegFetcher {
	return host.NewSegFetcher(clock, send, cfg)
}

// SegName is the content name of object base's segment seg (segments are
// consecutive names: base, base+1, …).
func SegName(base uint32, seg int) uint32 { return host.SegName(base, seg) }

// NewWallClock adapts real time onto the host.Clock interface fetchers
// arm timers on: Now is time since construction, Schedule is
// time.AfterFunc. Use it to run a SegFetcher against live sockets.
func NewWallClock() host.Clock { return host.NewWallClock() }

// NewFleet wires a consumer-fleet scenario (router, producer behind a
// shared bottleneck, consumer population) under netsim virtual time.
func NewFleet(cfg FleetConfig) (*Fleet, error) { return workload.NewFleet(cfg) }

// JainIndex is Jain's fairness index over per-consumer shares: 1 when all
// are equal, →1/n under starvation.
func JainIndex(xs []float64) float64 { return workload.JainIndex(xs) }

// InterestName extracts the 32-bit content name from a wire-format NDN
// interest (F_FIB), reporting ok=false for any other or malformed packet.
// Producers use it to decide what data a received interest is asking for.
func InterestName(pkt []byte) (uint32, bool) {
	v, err := core.ParseView(pkt)
	if err != nil {
		return 0, false
	}
	return host.InterestName(v)
}

// DataName is InterestName's counterpart for NDN data packets (F_PIT).
func DataName(pkt []byte) (uint32, bool) {
	v, err := core.ParseView(pkt)
	if err != nil {
		return 0, false
	}
	return host.DataName(v)
}

// NewSecret wraps a 16-byte DRKey secret for a named node.
func NewSecret(nodeID string, secret []byte) (*SecretValue, error) {
	return drkey.NewSecretValue(nodeID, secret)
}

// NewSession simulates OPT key negotiation across hops toward a
// destination, giving the source every hop key (see internal/opt).
func NewSession(kind MACKind, hops []HopConfig, destSecret *SecretValue) (*Session, error) {
	return opt.NewSession(kind, hops, destSecret)
}

// CompilePISA compiles the DIP dataplane onto the PISA switch model — the
// software stand-in for the paper's Tofino prototype (§4.1 constraints
// included).
func CompilePISA(cfg OpsConfig) (*Pipeline, error) { return pisa.Compile(cfg) }

// Profile builders (the §3 host constructions).
var (
	// IPv4Profile builds the DIP-32 forwarding header (Table 2: 26 B).
	IPv4Profile = profiles.IPv4
	// IPv6Profile builds the DIP-128 forwarding header (Table 2: 50 B).
	IPv6Profile = profiles.IPv6
	// NDNInterestProfile builds the one-FN NDN interest (Table 2: 16 B).
	NDNInterestProfile = profiles.NDNInterest
	// NDNDataProfile builds the one-FN NDN data header.
	NDNDataProfile = profiles.NDNData
	// OPTProfile builds the standalone OPT header (Table 2: 98 B).
	OPTProfile = profiles.OPT
	// NDNOPTDataProfile builds the derived NDN+OPT data header (108 B).
	NDNOPTDataProfile = profiles.NDNOPTData
	// NDNOPTInterestProfile is its interest-side twin.
	NDNOPTInterestProfile = profiles.NDNOPTInterest
	// XIAProfile builds the F_DAG + F_intent header over an XIA address.
	XIAProfile = profiles.XIA
	// XIAOPTProfile builds the XIA+OPT derived protocol (secure DAG
	// routing) — a composition beyond the paper's own NDN+OPT.
	XIAOPTProfile = profiles.XIAOPT
	// WithTelemetry appends an F_tel hop-record region (N slots) to any
	// profile, making the packet's fabric path observable in band.
	WithTelemetry = profiles.WithTelemetry
	// BuildPacket serializes a header plus payload into a wire packet.
	BuildPacket = host.BuildPacket
	// ParsePacket parses a wire packet into a zero-copy view.
	ParsePacket = core.ParseView
)

// NativeNDNForwarder builds the non-DIP NDN baseline forwarder.
func NativeNDNForwarder(csCapacity int) *ndn.Forwarder { return ndn.NewForwarder(csCapacity) }
