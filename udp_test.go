package dip

// In-process UDP overlay test: the same library that runs on the simulator
// drives real sockets (the cmd/diprouter + cmd/diphost deployment shape),
// exercising the full NDN interest/data exchange across localhost.

import (
	"bytes"
	"net"
	"testing"
	"time"
)

func udpConn(t *testing.T) *net.UDPConn {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Skipf("no UDP loopback available: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestUDPOverlayNDNExchange(t *testing.T) {
	routerConn := udpConn(t)
	consumerConn := udpConn(t)
	producerConn := udpConn(t)

	// Router: port 0 → consumer, port 1 → producer, content under
	// 0xAA/8 routed to the producer.
	state := NewNodeState()
	state.NameFIB.AddUint32(0xAA000000, 8, NextHop{Port: 1})
	r := NewRouter(state.OpsConfig(), RouterOptions{Name: "udp-router"})
	sendTo := func(addr net.Addr) Port {
		return PortFunc(func(pkt []byte) {
			routerConn.WriteTo(pkt, addr)
		})
	}
	r.AttachPort(sendTo(consumerConn.LocalAddr()))
	r.AttachPort(sendTo(producerConn.LocalAddr()))

	// Router loop: attribute ingress port by source address.
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 65535)
		for {
			routerConn.SetReadDeadline(time.Now().Add(2 * time.Second))
			n, raddr, err := routerConn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			inPort := 0
			if raddr.String() == producerConn.LocalAddr().String() {
				inPort = 1
			}
			r.HandlePacket(buf[:n], inPort)
		}
	}()

	// Producer loop: answer any interest with data.
	go func() {
		buf := make([]byte, 65535)
		producerConn.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, _, err := producerConn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		v, err := ParsePacket(buf[:n])
		if err != nil || v.FNNum() == 0 || v.FN(0).Key != KeyFIB {
			t.Errorf("producer got unexpected packet: %v", err)
			return
		}
		reply, err := BuildPacket(NDNDataProfile(0xAA000042), []byte("udp bits"))
		if err != nil {
			t.Error(err)
			return
		}
		producerConn.WriteTo(reply, routerConn.LocalAddr())
	}()

	// Consumer: send the interest, await the data.
	interest, err := BuildPacket(NDNInterestProfile(0xAA000042), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := consumerConn.WriteTo(interest, routerConn.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 65535)
	consumerConn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _, err := consumerConn.ReadFromUDP(buf)
	if err != nil {
		t.Fatalf("consumer receive: %v", err)
	}
	stack := NewHost()
	rx := stack.HandlePacket(buf[:n])
	if rx.Kind.String() != "delivered" || !bytes.Equal(rx.Payload, []byte("udp bits")) {
		t.Fatalf("rx %v payload %q", rx.Kind, rx.Payload)
	}

	routerConn.Close()
	<-done
}

func TestUDPOverlayOPTVerification(t *testing.T) {
	routerConn := udpConn(t)
	consumerConn := udpConn(t)

	sv, err := NewSecret("udp-r", bytes.Repeat([]byte{0x66}, 16))
	if err != nil {
		t.Fatal(err)
	}
	dst, _ := NewSecret("udp-c", bytes.Repeat([]byte{0x77}, 16))
	sess, err := NewSession(MAC2EM, []HopConfig{{Secret: sv}}, dst)
	if err != nil {
		t.Fatal(err)
	}

	// A router whose only job is the OPT authentication chain, forwarding
	// everything to the consumer via a default DIP-32 route.
	state := NewNodeState()
	state.EnableOPT(sv, MAC2EM, [16]byte{}, 0)
	state.FIB32.AddUint32(0, 0, NextHop{Port: 0})
	r := NewRouter(state.OpsConfig(), RouterOptions{})
	r.AttachPort(PortFunc(func(pkt []byte) {
		routerConn.WriteTo(pkt, consumerConn.LocalAddr())
	}))
	go func() {
		buf := make([]byte, 65535)
		routerConn.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, _, err := routerConn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		r.HandlePacket(buf[:n], 0)
	}()

	// Source: OPT profile composed with DIP-32 forwarding in one header —
	// protocol composition over real sockets.
	payload := []byte("socket-verified")
	h, err := OPTProfile(sess, payload, 99)
	if err != nil {
		t.Fatal(err)
	}
	// Prepend forwarding: destination+source addresses after the OPT region.
	off := uint16(len(h.Locations) * 8)
	h.Locations = append(h.Locations, 10, 0, 0, 2, 10, 0, 0, 1)
	h.FNs = append([]FN{
		{Loc: off, Len: 32, Key: KeyMatch32},
		{Loc: off + 32, Len: 32, Key: KeySource},
	}, h.FNs...)
	pkt, err := BuildPacket(h, payload)
	if err != nil {
		t.Fatal(err)
	}
	sender := udpConn(t)
	if _, err := sender.WriteTo(pkt, routerConn.LocalAddr()); err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, 65535)
	consumerConn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _, err := consumerConn.ReadFromUDP(buf)
	if err != nil {
		t.Fatalf("consumer receive: %v", err)
	}
	stack := NewHost()
	stack.Sessions.Add(sess)
	rx := stack.HandlePacket(buf[:n])
	if rx.Kind.String() != "delivered" {
		t.Fatalf("verification over UDP failed: %v/%v", rx.Kind, rx.Reason)
	}
}
