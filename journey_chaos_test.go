package dip

import (
	"testing"
	"time"

	"dip/internal/core"
	"dip/internal/host"
	"dip/internal/journey"
	"dip/internal/netsim"
	"dip/internal/profiles"
	"dip/internal/router"
	"dip/internal/telemetry"
	"dip/internal/tunnel"
)

// chaosNet is the acceptance topology for journey tracing: a consumer
// fetches named content across three routers, with the R2-R3 hop carried
// by a DIP-in-IPv4 tunnel over a legacy link, and the access link taken
// down for a window so one interest dies on a known hop and must be
// retransmitted.
//
//	C --1ms(down window)--> R1 --1ms--> R2 ~~tunnel 2ms~~ R3 --1ms--> P
type chaosNet struct {
	sim     *netsim.Simulator
	col     *journey.Collector
	fetcher *host.Fetcher
	fetchAt map[uint32]time.Duration
}

func buildChaosNet(t *testing.T) *chaosNet {
	t.Helper()
	sim := netsim.New()
	col := journey.NewCollector(journey.Config{})
	vnow := func() int64 { return int64(sim.Now()) }

	newRouter := func(name string) *router.Router {
		state := NewNodeState()
		state.NameFIB.AddUint32(0xAA000000, 8, NextHop{Port: 1})
		r := router.New(NewRouterRegistry(state.OpsConfig()), router.Config{
			Name: name, Metrics: &telemetry.Metrics{},
		})
		r.SetRecorder(journey.NewRouterTap(name, col, &telemetry.Metrics{}, 1, vnow))
		return r
	}
	r1, r2, r3 := newRouter("R1"), newRouter("R2"), newRouter("R3")

	// pipe builds one observed link direction delivering into *rx (a
	// pointer so host receivers can be wired up after their pipes exist).
	pipe := func(label string, delay time.Duration, bps int64, rx *func([]byte), opts ...netsim.LinkOption) *netsim.Endpoint {
		e := sim.Pipe(netsim.ReceiverFunc(func(pkt []byte, _ int) { (*rx)(pkt) }), 0, delay, bps, opts...)
		e.SetObserver(journey.NewLinkTap(label, col))
		return e
	}
	rxOf := func(fn func([]byte)) *func([]byte) { return &fn }

	// C->R1 is down during [6.5ms, 7.5ms): the interest sent at 7ms dies
	// there and nowhere else, and the retransmission recovers (an interior
	// drop would leave a PIT entry upstream that absorbs the retx until
	// the entry's TTL — correct behavior, but not this test's story).
	im := netsim.NewImpairment(3)
	im.DownBetween(6500*time.Microsecond, 7500*time.Microsecond)

	// Access link C->R1 has finite bandwidth (≈1ms to serialize one
	// interest) so simultaneous interests expose queueing time.
	var pktLen = func() int64 {
		pkt, err := BuildPacket(NDNInterestProfile(0xAA000001), nil)
		if err != nil {
			t.Fatal(err)
		}
		return int64(len(pkt))
	}()
	cToR1 := pipe("C->R1", time.Millisecond, pktLen*8*1000, rxOf(func(pkt []byte) { r1.HandlePacket(pkt, 0) }), netsim.WithImpairment(im))
	r1ToR2 := pipe("R1->R2", time.Millisecond, 0, rxOf(func(pkt []byte) { r2.HandlePacket(pkt, 0) }))
	r2ToR1 := pipe("R2->R1", time.Millisecond, 0, rxOf(func(pkt []byte) { r1.HandlePacket(pkt, 1) }))

	// The tunnel between R2 and R3: endpoints encap into IPv4 and hand to
	// carrier pipes modeling the legacy domain.
	epA := &tunnel.Endpoint{Local: [4]byte{10, 0, 0, 2}, Remote: [4]byte{10, 0, 0, 3}}
	epB := &tunnel.Endpoint{Local: [4]byte{10, 0, 0, 3}, Remote: [4]byte{10, 0, 0, 2}}
	epA.Observer = journey.NewTunnelTap("R2", col, vnow)
	epB.Observer = journey.NewTunnelTap("R3", col, vnow)
	carrierAB := pipe("R2->R3", 2*time.Millisecond, 0, rxOf(func(pkt []byte) {
		if err := epB.Receive(pkt); err != nil {
			t.Errorf("tunnel B receive: %v", err)
		}
	}))
	carrierBA := pipe("R3->R2", 2*time.Millisecond, 0, rxOf(func(pkt []byte) {
		if err := epA.Receive(pkt); err != nil {
			t.Errorf("tunnel A receive: %v", err)
		}
	}))
	epA.Carrier = carrierAB
	epB.Carrier = carrierBA
	epA.Deliver = func(inner []byte) { r2.HandlePacket(inner, 1) }
	epB.Deliver = func(inner []byte) { r3.HandlePacket(inner, 0) }

	var produceRx, consumeRx func([]byte)
	r3ToP := pipe("R3->P", time.Millisecond, 0, &produceRx)
	pToR3 := pipe("P->R3", time.Millisecond, 0, rxOf(func(pkt []byte) { r3.HandlePacket(pkt, 1) }))
	r1ToC := pipe("R1->C", time.Millisecond, 0, &consumeRx)

	// Port maps (port 0 toward the consumer, port 1 toward the producer).
	r1.AttachPort(router.PortFunc(r1ToC.Send))
	r1.AttachPort(router.PortFunc(r1ToR2.Send))
	r2.AttachPort(router.PortFunc(r2ToR1.Send))
	r2.AttachPort(router.PortFunc(epA.Send))
	r3.AttachPort(router.PortFunc(epB.Send))
	r3.AttachPort(router.PortFunc(r3ToP.Send))

	// Producer P: answer every interest with same-name data. Its host-side
	// spans terminate interest journeys and originate data journeys.
	hostSpan := func(kind journey.SpanKind, node string, pkt []byte) {
		tr := journey.TraceOf(pkt)
		if tr == 0 {
			return
		}
		now := vnow()
		sp := journey.Span{Trace: tr, Kind: kind, Node: node, Start: now, End: now}
		if v, err := core.ParseView(pkt); err == nil {
			sp.Proto = journey.ProtoOf(v)
		}
		col.AddSpan(sp)
	}
	produceRx = func(pkt []byte) {
		hostSpan(journey.SpanHostRecv, "P", pkt)
		v, err := core.ParseView(pkt)
		if err != nil {
			t.Errorf("producer got unparseable packet: %v", err)
			return
		}
		name, ok := host.InterestName(v)
		if !ok {
			return
		}
		data, err := BuildPacket(profiles.NDNData(name), []byte("the bits"))
		if err != nil {
			t.Errorf("producer build: %v", err)
			return
		}
		hostSpan(journey.SpanHostSend, "P", data)
		pToR3.Send(data)
	}

	// Consumer C: a retransmitting fetcher whose lifecycle events become
	// host spans via the fetcher tap.
	n := &chaosNet{sim: sim, col: col, fetchAt: map[uint32]time.Duration{}}
	n.fetcher = host.NewFetcher(sim, cToR1.Send, host.FetchConfig{
		Timeout:  20 * time.Millisecond,
		Observer: host.FetchObserver(journey.NewFetcherTap("C", col, vnow)),
	})
	// No manual recv span at C: the fetcher tap's satisfy span is the
	// consumer-side terminal (a recv would finalize the journey first and
	// orphan the satisfy into a new instance).
	consumeRx = func(pkt []byte) { n.fetcher.HandleData(pkt) }
	return n
}

func (n *chaosNet) run(t *testing.T, names ...struct {
	name uint32
	at   time.Duration
}) {
	t.Helper()
	for _, f := range names {
		f := f
		n.sim.Schedule(f.at, func() {
			if err := n.fetcher.Fetch(f.name); err != nil {
				t.Errorf("fetch %08x: %v", f.name, err)
			}
		})
	}
	n.sim.Run()
}

type fetch = struct {
	name uint32
	at   time.Duration
}

func runJourneyChaos(t *testing.T) *journey.Collector {
	t.Helper()
	n := buildChaosNet(t)
	n.run(t,
		fetch{0xAA000001, 0},
		fetch{0xAA000002, 0},                    // queues behind 0xAA000001 on C->R1
		fetch{0xAA000003, 7 * time.Millisecond}, // dies in the C->R1 down window
	)
	return n.col
}

func TestJourneyChaosStitchesAcrossTunnel(t *testing.T) {
	col := runJourneyChaos(t)
	var complete []*journey.Journey
	for _, j := range col.Journeys() {
		if j.Complete() && j.DroppedAt() == nil {
			complete = append(complete, j)
		}
	}
	// Three interests (one retransmitted) and three data replies all
	// eventually round-trip.
	if len(complete) < 6 {
		for _, j := range col.Journeys() {
			t.Logf("journey: %s", j.String())
		}
		t.Fatalf("%d complete journeys, want >= 6", len(complete))
	}

	sawQueue, sawEncap := false, false
	for _, j := range complete {
		if j.Hops() != 3 {
			t.Fatalf("journey %s crossed %d routers, want 3:\n%s", j.Path(), j.Hops(), j.String())
		}
		var encap, decap bool
		for _, sp := range j.Spans {
			switch sp.Kind {
			case journey.SpanTunnelEncap:
				encap = true
			case journey.SpanTunnelDecap:
				decap = true
			}
		}
		if !encap || !decap {
			t.Fatalf("journey %s missing tunnel spans (encap=%v decap=%v):\n%s",
				j.Path(), encap, decap, j.String())
		}
		sawEncap = true
		d := j.Decompose()
		if sum := d.FNNs + d.QueueNs + d.WireNs + d.PITWaitNs; sum != d.TotalNs {
			t.Fatalf("journey %s decomposition does not sum to total: %+v", j.Path(), d)
		}
		if d.TotalNs <= 0 || d.WireNs <= 0 {
			t.Fatalf("journey %s has degenerate timing: %+v", j.Path(), d)
		}
		if d.CPUNs <= 0 {
			t.Fatalf("journey %s measured no router CPU: %+v", j.Path(), d)
		}
		if d.QueueNs > 0 {
			sawQueue = true
		}
	}
	if !sawEncap {
		t.Fatal("no journey carried tunnel spans")
	}
	if !sawQueue {
		t.Fatal("no journey decomposed queueing time despite the saturated access link")
	}
}

func TestJourneyChaosDropAttributionAndRetx(t *testing.T) {
	col := runJourneyChaos(t)
	entries := col.Flight().Entries()
	var drop, retx *journey.FrozenJourney
	for i := range entries {
		switch entries[i].Reason {
		case journey.FreezeDrop:
			drop = &entries[i]
		case journey.FreezeRetx:
			retx = &entries[i]
		}
	}
	if drop == nil {
		t.Fatalf("no drop-frozen journey among %d flight entries", len(entries))
	}
	sp := drop.Journey.DroppedAt()
	if sp == nil {
		t.Fatal("drop-frozen journey has no dropped span")
	}
	if sp.Node != "C->R1" || sp.Cause != "down" {
		t.Fatalf("drop attributed to %q cause %q, want the impaired link C->R1/down", sp.Node, sp.Cause)
	}
	// The flight recorder also froze the stalled timeline when the fetcher
	// retransmitted, and the stalled instance is the dropped one.
	if retx == nil {
		t.Fatal("no retx-frozen journey: the fetcher's retransmission was not recorded")
	}
	if retx.Journey.Trace != drop.Journey.Trace {
		t.Fatalf("retx froze trace %016x, drop froze %016x — should be the same packet",
			uint64(retx.Journey.Trace), uint64(drop.Journey.Trace))
	}
}

func TestJourneyChaosDeterministic(t *testing.T) {
	c1, c2 := runJourneyChaos(t), runJourneyChaos(t)
	j1, j2 := c1.Journeys(), c2.Journeys()
	if len(j1) != len(j2) {
		t.Fatalf("journey counts differ: %d vs %d", len(j1), len(j2))
	}
	for i := range j1 {
		d1, d2 := j1[i].Decompose(), j2[i].Decompose()
		if j1[i].Trace != j2[i].Trace || j1[i].Path() != j2[i].Path() ||
			d1.TotalNs != d2.TotalNs || d1.QueueNs != d2.QueueNs ||
			d1.WireNs != d2.WireNs || d1.PITWaitNs != d2.PITWaitNs {
			t.Fatalf("journey %d differs across runs:\n %s %+v\n %s %+v",
				i, j1[i].Path(), d1, j2[i].Path(), d2)
		}
	}
}
