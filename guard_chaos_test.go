package dip

// Overload chaos test: a flooding attacker and a well-behaved NDN consumer
// share one bottleneck router running the full ingress guard layer —
// admission control, two-class priority queues, PIT per-port flood caps,
// and the panic quarantine. The attacker's interest flood is contained by
// its own port's token bucket and PIT cap; the consumer's fetches all
// complete. A poison packet that panics the pipeline mid-run lands in the
// quarantine ring and service continues. The router runs in pump mode
// (Workers: 0) with the admission clock wired to virtual time, so the
// whole run is deterministic and asserted as such.

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"dip/internal/host"
	"dip/internal/netsim"
	"dip/internal/pit"
)

type guardChaosOutcome struct {
	Stats            FetchStats
	CompletedAt      map[uint32]time.Duration
	Health           Health
	AttackerRejected int64
	ConsumerRejected int64
	ProducerRejected int64
	PortCapHits      int64
	ConsumerPending  int
	Quarantined      int64
	QuarantineSeqs   []int64
}

const (
	gcConsumerPort = 0
	gcProducerPort = 1
	gcAttackerPort = 2
)

func runGuardChaos(t *testing.T, nFetch, batch int) guardChaosOutcome {
	t.Helper()
	sim := netsim.New()

	st := NewNodeState()
	st.PIT = pit.New[uint32](
		pit.WithTTL[uint32](50*time.Millisecond),
		pit.WithClock[uint32](func() time.Time { return time.Unix(0, 0).Add(sim.Now()) }),
		pit.WithPerPortCap[uint32](8),
	)
	st.NameFIB.AddUint32(0xAA000000, 8, NextHop{Port: gcProducerPort})
	st.NameFIB.AddUint32(0xAB000000, 8, NextHop{Port: gcProducerPort})
	st.FIB32.AddUint32(0, 0, Local) // poison packet delivers locally
	r := NewRouter(st.OpsConfig(), RouterOptions{
		Name: "bottleneck",
		LocalDelivery: func(pkt []byte, _ int) {
			if len(pkt) > 0 && pkt[len(pkt)-1] == 0xEE {
				panic("chaos poison")
			}
		},
	})

	adm := NewAdmission(AdmissionPolicy{
		PerPort: AdmissionRate{PerSec: 500, Burst: 8},
	}, sim.Now)
	in := r.ServeGuarded(ServeConfig{
		Workers:   0, // pump mode: deterministic inline drain under virtual time
		Batch:     batch,
		HighDepth: 16,
		LowDepth:  4,
		Admission: adm,
		Clock:     sim.Now,
	})
	defer in.Close()

	// Every link feeds the guarded ingress instead of HandlePacket directly;
	// an accepted packet is drained by a pump event a service-latency later.
	const serviceDelay = 200 * time.Microsecond
	rx := netsim.ReceiverFunc(func(pkt []byte, port int) {
		if in.Submit(pkt, port) {
			sim.Schedule(serviceDelay, func() { in.Pump() })
		}
	})
	const hop = time.Millisecond

	var fetcher *Fetcher
	consumerRx := netsim.ReceiverFunc(func(pkt []byte, _ int) { fetcher.HandleData(pkt) })

	// Producer answers only the consumer's 0xAA names; the attacker's 0xAB
	// interests pin PIT state until their TTL, as a real flood would.
	var toProducerSide *netsim.Endpoint
	producerRx := netsim.ReceiverFunc(func(pkt []byte, _ int) {
		v, err := ParsePacket(pkt)
		if err != nil {
			return
		}
		name, ok := host.InterestName(v)
		if !ok || name>>24 != 0xAA {
			return
		}
		reply, err := BuildPacket(NDNDataProfile(name), []byte(fmt.Sprintf("content-%08x", name)))
		if err != nil {
			return
		}
		toProducerSide.Send(reply)
	})

	toConsumerSide := sim.Pipe(rx, gcConsumerPort, hop, 0)
	toAttackerSide := sim.Pipe(rx, gcAttackerPort, hop, 0)
	r.AttachPort(sim.Pipe(consumerRx, 0, hop, 0))  // port 0 → consumer
	r.AttachPort(sim.Pipe(producerRx, 0, hop, 0))  // port 1 → producer
	r.AttachPort(sim.Pipe(netsim.ReceiverFunc(func([]byte, int) {}), 0, hop, 0)) // port 2 → attacker (sink)
	toProducerSide = sim.Pipe(rx, gcProducerPort, hop, 0)

	fetcher = NewFetcher(sim, func(pkt []byte) { toConsumerSide.Send(pkt) }, FetchConfig{
		Timeout: 60 * time.Millisecond,
		Backoff: 2,
		MaxRetx: 8,
	})
	outcome := guardChaosOutcome{CompletedAt: map[uint32]time.Duration{}}
	fetcher.OnComplete = func(name uint32, _ []byte) { outcome.CompletedAt[name] = sim.Now() }

	sweep := st.PIT.SweepEvery(sim, 25*time.Millisecond, nil)
	defer sweep()

	// Consumer: one fetch every 10ms.
	for i := 0; i < nFetch; i++ {
		name := uint32(0xAA000000 + i)
		sim.Schedule(time.Duration(1+10*i)*time.Millisecond, func() { fetcher.Fetch(name) })
	}

	// Attacker: bursts of 30 distinct-name interests every 5ms for the whole
	// run — far over the port's 8-token burst (admission rejects) and the
	// 4-deep bulk queue (sheds), and over the PIT per-port cap of 8.
	horizon := time.Duration(1+10*nFetch)*time.Millisecond + 200*time.Millisecond
	seq := uint32(0)
	for at := time.Duration(0); at < horizon; at += 5 * time.Millisecond {
		at := at
		sim.Schedule(at, func() {
			for j := 0; j < 30; j++ {
				seq++
				p, err := BuildPacket(NDNInterestProfile(0xAB000000+seq), nil)
				if err != nil {
					t.Errorf("attacker build: %v", err)
					return
				}
				toAttackerSide.Send(p)
			}
		})
	}

	// Mid-run, the attacker lobs a poison packet that panics local delivery.
	sim.Schedule(37*time.Millisecond, func() {
		p, err := BuildPacket(IPv4Profile([4]byte{9, 9, 9, 9}, [4]byte{2, 2, 2, 2}), []byte{0xEE})
		if err != nil {
			t.Errorf("poison build: %v", err)
			return
		}
		toAttackerSide.Send(p)
	})

	sim.RunUntil(horizon + time.Second)

	outcome.Stats = fetcher.Stats()
	outcome.Health = in.Health()
	outcome.AttackerRejected = adm.RejectedOnPort(gcAttackerPort)
	outcome.ConsumerRejected = adm.RejectedOnPort(gcConsumerPort)
	outcome.ProducerRejected = adm.RejectedOnPort(gcProducerPort)
	outcome.PortCapHits = st.PIT.PortCapRejections()
	outcome.ConsumerPending = st.PIT.PortPending(gcConsumerPort)
	outcome.Quarantined = in.Quarantine().Total()
	for _, c := range in.Quarantine().Snapshot() {
		outcome.QuarantineSeqs = append(outcome.QuarantineSeqs, c.Seq)
	}
	return outcome
}

func TestGuardChaosFloodSharesRouterWithConsumer(t *testing.T) {
	const n = 10
	// Batch 1 is the packet-at-a-time discipline E14 was originally run
	// under; TestGuardChaosFloodBatch64 repeats the scenario at the batched
	// default.
	out := runGuardChaos(t, n, 1)

	// The well-behaved consumer is unharmed: every fetch completes and the
	// guards never touched its port.
	if out.Stats.Completed != n || len(out.CompletedAt) != n {
		t.Fatalf("consumer completed %d/%d fetches (dead-lettered %d, pending %d)",
			out.Stats.Completed, n, out.Stats.DeadLettered, out.Stats.Pending)
	}
	if out.ConsumerRejected != 0 {
		t.Errorf("admission rejected %d consumer packets", out.ConsumerRejected)
	}
	if out.ProducerRejected != 0 {
		t.Errorf("admission rejected %d producer packets", out.ProducerRejected)
	}

	// The attacker hit every guard: token bucket, queue shed, PIT port cap.
	if out.AttackerRejected == 0 {
		t.Error("admission control never rejected the flooding port")
	}
	if out.Health.AdmitRejected != out.AttackerRejected {
		t.Errorf("ingress counted %d rejections, admission %d",
			out.Health.AdmitRejected, out.AttackerRejected)
	}
	if out.Health.ShedLow == 0 {
		t.Error("bulk queue never shed under the flood")
	}
	if out.Health.ShedHigh != 0 {
		t.Errorf("control queue shed %d — flood leaked into the high class", out.Health.ShedHigh)
	}
	if out.PortCapHits == 0 {
		t.Error("PIT per-port cap never engaged")
	}
	if out.ConsumerPending != 0 {
		t.Errorf("%d consumer PIT entries leaked", out.ConsumerPending)
	}

	// The poison packet is quarantined, not fatal: captures carry the
	// attacker's port and the panic, and service continued afterwards (the
	// late fetches completed above).
	if out.Quarantined != 1 || len(out.QuarantineSeqs) != 1 {
		t.Fatalf("quarantined %d packets (%d captures), want 1", out.Quarantined, len(out.QuarantineSeqs))
	}
	if out.Health.Quarantined != 1 {
		t.Errorf("Health.Quarantined = %d, want 1", out.Health.Quarantined)
	}

	// Deterministic: an identical run reproduces every counter and time.
	again := runGuardChaos(t, n, 1)
	if !reflect.DeepEqual(out, again) {
		t.Fatalf("guard chaos run not deterministic:\n run1: %+v\n run2: %+v", out, again)
	}

	t.Logf("guard chaos: %d fetches ok; attacker: %d admit-rejected, %d shed, %d PIT-capped; %s",
		n, out.AttackerRejected, out.Health.ShedLow, out.PortCapHits, out.Health)
}

// TestGuardChaosFloodBatch64 re-runs the E14 flood-vs-consumer scenario
// with the batched run-to-completion dataplane at its default burst size:
// the fairness outcome must survive batching. Control-class traffic still
// preempts queued bulk (ShedHigh stays zero while the bulk queue sheds),
// the attacker is contained by the same three guards, every consumer
// fetch completes, and the run is still deterministic.
func TestGuardChaosFloodBatch64(t *testing.T) {
	const n = 10
	out := runGuardChaos(t, n, 64)

	if out.Stats.Completed != n || len(out.CompletedAt) != n {
		t.Fatalf("consumer completed %d/%d fetches under batch=64 (dead-lettered %d, pending %d)",
			out.Stats.Completed, n, out.Stats.DeadLettered, out.Stats.Pending)
	}
	if out.ConsumerRejected != 0 {
		t.Errorf("admission rejected %d consumer packets", out.ConsumerRejected)
	}
	if out.AttackerRejected == 0 {
		t.Error("admission control never rejected the flooding port")
	}
	if out.Health.ShedLow == 0 {
		t.Error("bulk queue never shed under the flood")
	}
	if out.Health.ShedHigh != 0 {
		t.Errorf("control queue shed %d at batch=64 — bulk bursts starved the control class",
			out.Health.ShedHigh)
	}
	if out.PortCapHits == 0 {
		t.Error("PIT per-port cap never engaged")
	}
	if out.ConsumerPending != 0 {
		t.Errorf("%d consumer PIT entries leaked", out.ConsumerPending)
	}
	if out.Quarantined != 1 {
		t.Fatalf("quarantined %d packets, want 1", out.Quarantined)
	}

	again := runGuardChaos(t, n, 64)
	if !reflect.DeepEqual(out, again) {
		t.Fatalf("batched guard chaos run not deterministic:\n run1: %+v\n run2: %+v", out, again)
	}

	t.Logf("guard chaos batch=64: %d fetches ok; attacker: %d admit-rejected, %d shed, %d PIT-capped; %s",
		n, out.AttackerRejected, out.Health.ShedLow, out.PortCapHits, out.Health)
}

// The quarantine capture from a run like the above dumps in a form dipdump
// accepts: '#' annotations around one hex packet line.
func TestGuardChaosQuarantineDumpShape(t *testing.T) {
	sim := netsim.New()
	st := NewNodeState()
	st.FIB32.AddUint32(0, 0, Local)
	r := NewRouter(st.OpsConfig(), RouterOptions{
		LocalDelivery: func([]byte, int) { panic("boom") },
	})
	in := r.ServeGuarded(ServeConfig{Workers: 0, Clock: sim.Now})
	defer in.Close()
	p, err := BuildPacket(IPv4Profile([4]byte{1, 1, 1, 1}, [4]byte{2, 2, 2, 2}), []byte{0xEE})
	if err != nil {
		t.Fatal(err)
	}
	if !in.Submit(p, 5) {
		t.Fatal("submit refused")
	}
	if in.Pump() != 1 {
		t.Fatal("pump did not process the packet")
	}
	dump := in.Quarantine().Dump()
	if !strings.Contains(dump, "inport=5") || !strings.Contains(dump, `panic="boom"`) {
		t.Errorf("dump missing capture metadata:\n%s", dump)
	}
	hexLines := 0
	for _, line := range strings.Split(dump, "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			hexLines++
		}
	}
	if hexLines != 1 {
		t.Errorf("dump has %d packet lines, want 1:\n%s", hexLines, dump)
	}
}
