package dip

// The §2.4 adversarial scenario, end to end: "an attacker can use both
// F_FIB and F_PIT in one packet and carry maliciously constructed data to
// pollute the node's content cache. Nodes can enable source label
// verification designs (implemented as a new FN F_pass) to defend against
// this attack … F_pass can be enabled on the fly upon detecting content
// poisoning attacks."

import (
	"bytes"
	"testing"

	"dip/internal/ops"
)

// poisonPacket is the §2.4 attack: one packet whose F_FIB creates a PIT
// entry for the victim name and whose F_PIT immediately consumes it,
// smuggling attacker-chosen bytes into the content store without any
// legitimate interest ever existing.
func poisonPacket(t *testing.T, name uint32, payload []byte) []byte {
	t.Helper()
	h := NDNInterestProfile(name) // F_FIB over the name...
	h.FNs = append(h.FNs, FN{Loc: 0, Len: 32, Key: KeyPIT})
	pkt, err := BuildPacket(h, payload)
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

func TestContentPoisoningAttackAndDefense(t *testing.T) {
	const victimName = 0xAA00BEEF
	var guardKey [16]byte
	copy(guardKey[:], "domain-guard-key")

	state := NewNodeState().EnableCache(64)
	state.GuardKey = guardKey
	state.NameFIB.AddUint32(0xAA000000, 8, NextHop{Port: 1})
	r := NewRouter(state.OpsConfig(), RouterOptions{Name: "victim"})
	var consumerGot []byte
	r.AttachPort(PortFunc(func(pkt []byte) { // port 0: consumer side
		v, err := ParsePacket(pkt)
		if err == nil {
			consumerGot = append(consumerGot[:0], v.Payload()...)
		}
	}))
	r.AttachPort(PortFunc(func([]byte) {})) // port 1: upstream

	// Phase 1 — the attack works against the default posture.
	r.HandlePacket(poisonPacket(t, victimName, []byte("EVIL BITS")), 2)
	if _, ok := state.ContentStore.Get(victimName); !ok {
		t.Fatal("attack did not poison the cache (scenario broken)")
	}
	// A real consumer now gets the poisoned object straight from the cache.
	interest, _ := BuildPacket(NDNInterestProfile(victimName), nil)
	r.HandlePacket(interest, 0)
	if !bytes.Equal(consumerGot, []byte("EVIL BITS")) {
		t.Fatalf("consumer got %q, expected the poisoned object (attack demo)", consumerGot)
	}

	// Phase 2 — the operator detects the attack and flips the defense on
	// the fly: a new registry with require-pass caching, swapped in while
	// the router keeps forwarding.
	state.ContentStore.Remove(victimName) // purge the poisoned object
	defCfg := state.OpsConfig()
	defCfg.RequirePass = true
	old := r.ReplaceRegistry(NewRouterRegistry(defCfg))
	if old == nil {
		t.Fatal("ReplaceRegistry returned nil previous registry")
	}

	// The same attack bounces off: the combined packet still consumes its
	// own PIT entry, but nothing is cached without a valid F_pass label.
	r.HandlePacket(poisonPacket(t, victimName, []byte("EVIL AGAIN")), 2)
	if _, ok := state.ContentStore.Get(victimName); ok {
		t.Fatal("defense failed: cache poisoned despite require-pass")
	}

	// Attack with a forged label also fails.
	forged := NDNInterestProfile(victimName)
	forged.FNs = append(forged.FNs, FN{Loc: 0, Len: 32, Key: KeyPIT})
	off := uint16(len(forged.Locations) * 8)
	guard := make([]byte, 20)
	copy(guard[:4], forged.Locations[:4])
	guard[4] = 0xBB // wrong label bytes
	forged.Locations = append(forged.Locations, guard...)
	forged.FNs = append([]FN{{Loc: off, Len: 160, Key: KeyPass}}, forged.FNs...)
	pkt, err := BuildPacket(forged, []byte("FORGED"))
	if err != nil {
		t.Fatal(err)
	}
	r.HandlePacket(pkt, 2)
	if _, ok := state.ContentStore.Get(victimName); ok {
		t.Fatal("forged F_pass label accepted")
	}

	// Phase 3 — legitimate traffic still flows and still populates the
	// cache when it carries a valid label. First a real interest from the
	// consumer, then the producer's labelled data.
	consumerGot = nil
	interest2, _ := BuildPacket(NDNInterestProfile(victimName), nil)
	r.HandlePacket(interest2, 0)

	data := NDNDataProfile(victimName)
	gOff := uint16(len(data.Locations) * 8)
	labelRegion := make([]byte, 20)
	copy(labelRegion[:4], data.Locations[:4])
	var label [16]byte
	ops.StampLabel(&guardKey, label[:], labelRegion[:4])
	copy(labelRegion[4:], label[:])
	data.Locations = append(data.Locations, labelRegion...)
	data.FNs = append([]FN{{Loc: gOff, Len: 160, Key: KeyPass}}, data.FNs...)
	pkt, err = BuildPacket(data, []byte("genuine content"))
	if err != nil {
		t.Fatal(err)
	}
	r.HandlePacket(pkt, 1)
	if !bytes.Equal(consumerGot, []byte("genuine content")) {
		t.Fatalf("legitimate delivery broken under defense: %q", consumerGot)
	}
	cached, ok := state.ContentStore.Get(victimName)
	if !ok || !bytes.Equal(cached, []byte("genuine content")) {
		t.Fatalf("labelled content not cached: %q ok=%v", cached, ok)
	}
}

// Registry swap under concurrent forwarding must be race-free (run with
// -race): packets keep flowing while the policy flips back and forth.
func TestRegistrySwapUnderTraffic(t *testing.T) {
	state := NewNodeState().EnableCache(16)
	state.NameFIB.AddUint32(0xAA000000, 8, NextHop{Port: 0})
	open := NewRouterRegistry(state.OpsConfig())
	guarded := func() *Registry {
		cfg := state.OpsConfig()
		cfg.RequirePass = true
		return NewRouterRegistry(cfg)
	}()
	r := NewRouter(state.OpsConfig(), RouterOptions{})
	r.AttachPort(PortFunc(func([]byte) {}))

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			r.ReplaceRegistry(guarded)
			r.ReplaceRegistry(open)
		}
	}()
	pkt, _ := BuildPacket(NDNInterestProfile(0xAA000005), nil)
	for i := 0; i < 500; i++ {
		pkt[3] = 64
		r.HandlePacket(pkt, 1)
	}
	<-done
}
