package dip

// Congestion chaos test (the ISSUE 7 acceptance scenario): three
// congestion-controlled consumers share one tight bottleneck to a producer,
// and a seeded loss window knocks the data direction out mid-run. The
// RTT-adaptive controller (AIMD window, Jacobson/Karn RTO) must beat a
// blind fixed-window/fixed-backoff fetcher on both goodput and
// retransmissions while splitting the link fairly (Jain ≥ 0.9); journey
// tracing must attribute where the latency went (link queueing, PIT wait);
// the flight recorder must capture the cwnd-cut anomalies with the stalled
// transmissions' spans attached; and the whole run — fleet counters and
// journey stitching alike — must be deterministic under its seed.

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"dip/internal/cc"
	"dip/internal/host"
	"dip/internal/journey"
	"dip/internal/workload"
)

// ccChaosOutcome is everything one run produces that determinism can be
// judged on. Journey CPU nanoseconds are wall-clock and excluded.
type ccChaosOutcome struct {
	Fleet workload.FleetResult
	// Journeys stitched end to end across consumer, router, and link spans.
	Complete int64
	// Latency decomposition sums over complete journeys: time queued behind
	// other packets at the bottleneck serializer, and time parked in network
	// state (PIT wait + uninstrumented propagation) between spans.
	QueueNs   int64
	PITWaitNs int64
	// Flight-recorder captures: total, and those attributed to cwnd cuts.
	FrozenAll  int64
	FrozenCwnd int64
	// FrozenCwndSpans counts spans retained inside cwnd-cut captures —
	// the congestion evidence (queued link transits) must survive freezing.
	FrozenCwndSpans int
}

// runCCChaos builds the 3-consumer shared-bottleneck fleet with full
// journey instrumentation (fetcher taps, a link tap on the bottleneck's
// data direction, a router tap sampling every packet) and runs it to the
// horizon under the given controller.
func runCCChaos(t *testing.T, seed int64, algo cc.Algo, initCwnd int) ccChaosOutcome {
	t.Helper()
	col := journey.NewCollector(journey.Config{FlightSize: 256})

	// The taps' clock is the simulator's virtual time; the fleet (and so
	// the simulator) doesn't exist until NewFleet returns, hence the
	// late-bound closure. Taps only fire during Run.
	var fl *workload.Fleet
	simNow := func() int64 { return int64(fl.Sim.Now()) }

	cfg := workload.FleetConfig{
		Consumers:          3,
		ObjectsPerConsumer: 6,
		Objects:            24,
		SegsPerObject:      8,
		SegSize:            1000,
		BottleneckBPS:      4_000_000, // tight: three pipelined fetchers exceed it
		BottleneckQueue:    10 * time.Millisecond,
		CacheEntries:       -1, // no cache: every byte crosses the bottleneck
		MaxRetx:            8,
		// Seeded loss window: the data direction goes dark for 150ms while
		// all three consumers are mid-object. Every flow hits genuine RTO,
		// cuts its window, and must re-probe for capacity afterwards.
		DownFrom: 600 * time.Millisecond,
		DownTo:   750 * time.Millisecond,
		Horizon:  30 * time.Second,
		Seed:     seed,
		CC: cc.Config{Algo: algo, InitCwnd: initCwnd, MaxCwnd: 64,
			RTT: cc.RTTConfig{InitRTO: 100 * time.Millisecond, MinRTO: 20 * time.Millisecond}},
		FetcherObserver: func(id int) host.FetchObserver {
			return journey.NewFetcherTap(fmt.Sprintf("C%d", id), col, simNow)
		},
		BottleneckObserver: journey.NewLinkTap("P->R", col),
	}
	fleet, err := workload.NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fl = fleet
	// Sample every packet through the router so each journey carries its
	// Algorithm 1 bracket; the tap forwards to the fleet's metrics recorder.
	fl.Router.SetRecorder(journey.NewRouterTap("R", col, fl.Metrics, 1, simNow))

	res := fl.Run()
	out := ccChaosOutcome{Fleet: *res}

	st := col.Stats()
	out.Complete = st.Complete
	for _, p := range st.Paths {
		out.QueueNs += p.QueueNs
		out.PITWaitNs += p.PITWaitNs
	}
	flight := col.Flight()
	out.FrozenAll = flight.Frozen()
	out.FrozenCwnd = flight.FrozenBy(journey.FreezeCwndCut)
	for _, fz := range flight.Entries() {
		if fz.Reason == journey.FreezeCwndCut {
			out.FrozenCwndSpans += len(fz.Journey.Spans)
		}
	}
	return out
}

func TestCCChaosAdaptiveBeatsBlindThroughLossWindow(t *testing.T) {
	const seed = 2026

	adaptive := runCCChaos(t, seed, cc.AlgoAIMD, 2)
	blind := runCCChaos(t, seed, cc.AlgoBlind, 16) // fixed window, fixed RTO + blind backoff

	// Work completes under both controllers; the adaptive one does at
	// least as much of it.
	af, bf := adaptive.Fleet, blind.Fleet
	if af.ObjectsCompleted == 0 {
		t.Fatal("adaptive run completed nothing")
	}
	if af.ObjectsCompleted < bf.ObjectsCompleted {
		t.Fatalf("adaptive completed %d objects < blind %d", af.ObjectsCompleted, bf.ObjectsCompleted)
	}
	// Goodput: the adaptive controller pulls at least as many bytes and
	// pulls them faster (GoodputBps normalizes by the active span).
	if af.GoodputBytes < bf.GoodputBytes {
		t.Fatalf("adaptive goodput %d bytes < blind %d", af.GoodputBytes, bf.GoodputBytes)
	}
	if af.GoodputBps <= bf.GoodputBps {
		t.Fatalf("adaptive goodput %.0f bps ≤ blind %.0f bps", af.GoodputBps, bf.GoodputBps)
	}
	// Recovery efficiency: RTT-derived RTOs retransmit only what the loss
	// window and queue actually took; blind fixed timeouts fire early and
	// spuriously re-inject.
	if af.Retransmits >= bf.Retransmits {
		t.Fatalf("adaptive retransmits %d ≥ blind %d", af.Retransmits, bf.Retransmits)
	}
	// The loss window produced genuine timeouts: windows were cut, drops
	// happened, and nothing was abandoned.
	if af.CwndCuts == 0 {
		t.Fatal("loss window never cut the adaptive controller's cwnd")
	}
	if af.BottleneckDrops == 0 {
		t.Fatal("bottleneck dropped nothing — the chaos never engaged")
	}
	if af.DeadLetters != 0 {
		t.Fatalf("adaptive dead-lettered %d segments", af.DeadLetters)
	}
	// Fairness across the three consumers sharing the link.
	if af.JainIndex < 0.9 {
		t.Fatalf("adaptive Jain index %.3f < 0.9", af.JainIndex)
	}

	t.Logf("adaptive: %d objects, %.0f bps, %d retx, %d cuts, Jain %.3f | blind: %d objects, %.0f bps, %d retx",
		af.ObjectsCompleted, af.GoodputBps, af.Retransmits, af.CwndCuts, af.JainIndex,
		bf.ObjectsCompleted, bf.GoodputBps, bf.Retransmits)
}

func TestCCChaosJourneysAttributeLatencyAndFreezeCwndCuts(t *testing.T) {
	out := runCCChaos(t, 2026, cc.AlgoAIMD, 2)

	// Journeys stitched: consumer, router, and bottleneck spans joined into
	// complete end-to-end timelines.
	if out.Complete == 0 {
		t.Fatal("no complete journeys stitched")
	}
	// Attribution: the decomposition charges time to queueing at the
	// contended bottleneck and to PIT/propagation wait between spans —
	// congestion shows up as *where the time went*, not just counters.
	if out.QueueNs == 0 {
		t.Error("latency decomposition attributed no queueing on a saturated bottleneck")
	}
	if out.PITWaitNs == 0 {
		t.Error("latency decomposition attributed no PIT/state wait")
	}
	// The flight recorder captured cwnd-cut anomalies, and the captures
	// kept the stalled transmissions' spans (the congestion evidence).
	if out.FrozenCwnd == 0 {
		t.Fatalf("flight recorder froze nothing for cwnd cuts (total frozen %d)", out.FrozenAll)
	}
	if out.FrozenCwndSpans == 0 {
		t.Error("cwnd-cut captures retained no spans — anomaly context was lost")
	}
}

func TestCCChaosDeterministicBySeed(t *testing.T) {
	const seed = 77
	a := runCCChaos(t, seed, cc.AlgoAIMD, 2)
	b := runCCChaos(t, seed, cc.AlgoAIMD, 2)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("seeded chaos run not deterministic:\n run1: %+v\n run2: %+v", a, b)
	}
	if a.Fleet.Retransmits == 0 {
		t.Error("loss window caused no retransmissions — determinism check exercised nothing")
	}
	// A different seed shifts arrivals, think times, and the loss RNG.
	c := runCCChaos(t, seed+1, cc.AlgoAIMD, 2)
	if reflect.DeepEqual(a.Fleet, c.Fleet) {
		t.Error("different seeds produced identical fleet outcomes")
	}
}
