package dip

// Observability tests: the per-interval snapshot deltas must localize a
// fault in *time* — final totals can prove recovery happened, only a rate
// series can prove it stopped being needed. A link-down window forces the
// consumer's Fetcher to retransmit; the retransmit rate must be nonzero
// while the link is down and decay to zero once it heals.

import (
	"testing"
	"time"

	"dip/internal/host"
	"dip/internal/netsim"
	"dip/internal/pit"
	"dip/internal/telemetry"
)

func TestRetransmitRateDecaysAfterLinkHeals(t *testing.T) {
	sim := netsim.New()
	m := &Metrics{}

	st := NewNodeState().EnableCache(64)
	st.PIT = pit.New[uint32](
		pit.WithTTL[uint32](40*time.Millisecond),
		pit.WithClock[uint32](func() time.Time { return time.Unix(0, 0).Add(sim.Now()) }),
	)
	st.NameFIB.AddUint32(0xAA000000, 8, NextHop{Port: 1})
	r := NewRouter(st.OpsConfig(), RouterOptions{Name: "R", Metrics: m})

	// The consumer→router link is down for a 100ms window; everything else
	// is clean, so every retransmission is attributable to that outage.
	im := netsim.NewImpairment(9)
	im.DownBetween(20*time.Millisecond, 120*time.Millisecond)

	var fetcher *Fetcher
	consumerRx := netsim.ReceiverFunc(func(pkt []byte, _ int) { fetcher.HandleData(pkt) })
	var toR *netsim.Endpoint
	producerRx := netsim.ReceiverFunc(func(pkt []byte, _ int) {
		v, err := ParsePacket(pkt)
		if err != nil {
			return
		}
		if name, ok := host.InterestName(v); ok {
			if reply, err := BuildPacket(NDNDataProfile(name), []byte("bits")); err == nil {
				toR.Send(reply)
			}
		}
	})
	rRecv := netsim.ReceiverFunc(func(pkt []byte, port int) { r.HandlePacket(pkt, port) })
	toRDown := sim.Pipe(rRecv, 0, time.Millisecond, 0, netsim.WithImpairment(im))
	r.AttachPort(sim.Pipe(consumerRx, 0, time.Millisecond, 0))
	r.AttachPort(sim.Pipe(producerRx, 0, time.Millisecond, 0))
	toR = sim.Pipe(rRecv, 1, time.Millisecond, 0)

	fetcher = NewFetcher(sim, func(pkt []byte) { toRDown.Send(pkt) }, FetchConfig{
		Timeout: 30 * time.Millisecond,
		Backoff: 2,
		MaxRetx: 8,
		Metrics: m,
	})
	const n = 5
	for i := 0; i < n; i++ {
		name := uint32(0xAA000000 + i)
		// All fetches start inside the down window, guaranteeing loss.
		sim.Schedule(time.Duration(21+i)*time.Millisecond, func() { fetcher.Fetch(name) })
	}

	// Drive the run on a fixed sampling grid, snapshotting each tick — the
	// same shape topo.RunSampled produces for scenario files.
	const tick = 50 * time.Millisecond
	samples := []MetricsSnapshot{m.Snapshot()}
	ticks := []time.Duration{0}
	for at := tick; at <= 600*time.Millisecond; at += tick {
		sim.RunUntil(at)
		samples = append(samples, m.Snapshot())
		ticks = append(ticks, at)
	}

	if st := fetcher.Stats(); st.Completed != n || st.Retransmits == 0 {
		t.Fatalf("completed %d/%d with %d retransmits — outage recovery never ran",
			st.Completed, n, st.Retransmits)
	}

	var during, after int64
	for i := 1; i < len(samples); i++ {
		d := samples[i].Delta(samples[i-1]).Events[telemetry.EventRetransmit]
		if d < 0 {
			t.Fatalf("retransmit counter went backwards in interval ending %v", ticks[i])
		}
		if ticks[i] <= 150*time.Millisecond {
			during += d
		}
		if ticks[i] > 300*time.Millisecond {
			after += d
		}
	}
	if during == 0 {
		t.Error("no retransmissions observed in the intervals covering the down window")
	}
	// The heal happened at 120ms; with a 30ms base timeout every pending
	// name recovers well before 300ms, so the rate must decay to zero.
	if after != 0 {
		t.Errorf("retransmit rate did not decay: %d retransmits after 300ms", after)
	}
}
