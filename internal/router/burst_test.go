package router

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dip/internal/fib"
	"dip/internal/guard"
	"dip/internal/host"
	"dip/internal/ops"
	"dip/internal/profiles"
)

// flowPkt builds a locally-delivered packet belonging to flow f with
// per-flow sequence number seq encoded in the payload. Distinct flows get
// distinct IPv4 sources, hence distinct FN-locations regions, hence
// distinct flow-dispatch keys.
func flowPkt(t testing.TB, f, seq int) []byte {
	t.Helper()
	var payload [8]byte
	binary.BigEndian.PutUint32(payload[:4], uint32(f))
	binary.BigEndian.PutUint32(payload[4:], uint32(seq))
	src := [4]byte{10, byte(f >> 8), byte(f), 7}
	b, err := host.BuildPacket(profiles.IPv4(src, [4]byte{2, 2, 2, 2}), payload[:])
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// flowSeqOf decodes flowPkt's payload from a delivered packet.
func flowSeqOf(pkt []byte) (f, seq int) {
	p := pkt[len(pkt)-8:]
	return int(binary.BigEndian.Uint32(p[:4])), int(binary.BigEndian.Uint32(p[4:]))
}

// goid extracts the current goroutine's id from the stack header — good
// enough to assert "same goroutine" in tests (never use this in real code).
func goid() int64 {
	var buf [64]byte
	b := buf[:runtime.Stack(buf[:], false)]
	b = bytes.TrimPrefix(b, []byte("goroutine "))
	if i := bytes.IndexByte(b, ' '); i > 0 {
		n, _ := strconv.ParseInt(string(b[:i]), 10, 64)
		return n
	}
	return -1
}

// TestFlowPinningOrderProperty is the flow-pinning invariant pinned as a
// property test: for any interleaving of submitted flows, packets of the
// same flow are processed in submission order and all by the same
// forwarder goroutine. The processed order per flow is compared against a
// sequential oracle (the same packets through a plain HandlePacket
// router), across batch sizes 1, 3, 64 and 256.
func TestFlowPinningOrderProperty(t *testing.T) {
	const (
		flows      = 32
		perFlow    = 40
		submitters = 4
	)
	for _, batch := range []int{1, 3, 64, 256} {
		t.Run("batch="+strconv.Itoa(batch), func(t *testing.T) {
			// Oracle: the same per-flow packet sequence through a sequential
			// router records the order batching must preserve per flow.
			oracle := make(map[int][]int, flows)
			{
				cfg := baseCfg(t)
				cfg.FIB32.AddUint32(0, 0, fib.Local)
				r := New(ops.NewRouterRegistry(cfg), Config{
					LocalDelivery: func(pkt []byte, _ int) {
						f, seq := flowSeqOf(pkt)
						oracle[f] = append(oracle[f], seq)
					},
				})
				for f := 0; f < flows; f++ {
					for seq := 0; seq < perFlow; seq++ {
						r.HandlePacket(flowPkt(t, f, seq), 0)
					}
				}
			}

			cfg := baseCfg(t)
			cfg.FIB32.AddUint32(0, 0, fib.Local)
			var (
				mu    sync.Mutex
				got   = make(map[int][]int, flows)
				byGor = make(map[int]map[int64]bool, flows)
			)
			r := New(ops.NewRouterRegistry(cfg), Config{
				LocalDelivery: func(pkt []byte, _ int) {
					f, seq := flowSeqOf(pkt)
					g := goid()
					mu.Lock()
					got[f] = append(got[f], seq)
					if byGor[f] == nil {
						byGor[f] = map[int64]bool{}
					}
					byGor[f][g] = true
					mu.Unlock()
				},
			})
			in := r.ServeGuarded(ServeConfig{
				Workers:   4,
				Batch:     batch,
				HighDepth: 256,
				LowDepth:  256,
			})

			// Each submitter owns a disjoint set of flows and submits each
			// flow's packets in sequence order, interleaving its flows in a
			// seeded-random order — any cross-flow interleaving is legal, only
			// per-flow order is promised.
			var wg sync.WaitGroup
			for s := 0; s < submitters; s++ {
				s := s
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(1000*batch + s)))
					next := make([]int, flows/submitters) // next seq per owned flow
					remaining := len(next) * perFlow
					for remaining > 0 {
						i := rng.Intn(len(next))
						if next[i] == perFlow {
							continue
						}
						f := s*(flows/submitters) + i
						p := flowPkt(t, f, next[i])
						for !in.Submit(p, 0) {
							runtime.Gosched() // backpressure: retry, never reorder
						}
						next[i]++
						remaining--
					}
				}()
			}
			wg.Wait()
			in.Close() // drains all queues before returning

			for f := 0; f < flows; f++ {
				if len(got[f]) != perFlow {
					t.Fatalf("flow %d: delivered %d/%d packets", f, len(got[f]), perFlow)
				}
				for i := range got[f] {
					if got[f][i] != oracle[f][i] {
						t.Fatalf("flow %d diverges from sequential oracle at %d: got %v",
							f, i, got[f][:i+1])
					}
				}
				if len(byGor[f]) != 1 {
					t.Fatalf("flow %d processed by %d goroutines, want exactly 1", f, len(byGor[f]))
				}
			}
		})
	}
}

// TestBurstSubmitCloseStress drives concurrent Submit and SubmitBurst
// against concurrent double-Close, exercising the closed-bit/in-flight
// lifecycle around the burst queues. Run under -race (make check does).
// The accounting invariant checked at the end: every packet a submitter
// was told was accepted is processed before Close returns — none lost,
// none processed twice.
func TestBurstSubmitCloseStress(t *testing.T) {
	for iter := 0; iter < 10; iter++ {
		cfg := baseCfg(t)
		cfg.FIB32.AddUint32(0, 0, fib.Local)
		r := New(ops.NewRouterRegistry(cfg), Config{LocalDelivery: func([]byte, int) {}})
		in := r.ServeGuarded(ServeConfig{
			Workers:        4,
			Batch:          16,
			HighDepth:      32,
			LowDepth:       32,
			DispatchShards: 64,
		})
		var accepted atomic.Int64
		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				burst := make([][]byte, 8)
				for i := 0; i < 60; i++ {
					if i%2 == 0 {
						for j := range burst {
							burst[j] = flowPkt(t, g*4096+i*8+j, i)
						}
						accepted.Add(int64(in.SubmitBurst(burst, g)))
					} else if in.Submit(flowPkt(t, g*4096+i, i), g) {
						accepted.Add(1)
					}
				}
			}()
		}
		wg.Add(2)
		for c := 0; c < 2; c++ {
			go func() { // concurrent double Close mid-traffic
				defer wg.Done()
				<-start
				in.Close()
			}()
		}
		close(start)
		wg.Wait()
		in.Close() // idempotent after the concurrent pair
		if in.Submit(flowPkt(t, 1, 1), 0) {
			t.Fatal("submit after close accepted")
		}
		if in.SubmitBurst([][]byte{flowPkt(t, 1, 2)}, 0) != 0 {
			t.Fatal("burst submit after close accepted")
		}
		if got, want := in.Processed(), accepted.Load(); got != want {
			t.Fatalf("iter %d: processed %d packets, accepted %d", iter, got, want)
		}
	}
}

// TestBurstControlPreemption pins the preemption granularity of
// run-to-completion batching: a control packet arriving while a bulk
// burst is executing does not interrupt the burst (run-to-completion is
// the contract) but is the very next packet processed when the burst
// ends, ahead of all queued bulk. Deterministic pump mode makes the
// expected total order exact.
func TestBurstControlPreemption(t *testing.T) {
	cfg := baseCfg(t)
	cfg.FIB32.AddUint32(0, 0, fib.Local)
	var order []byte
	var in *Ingress
	r := New(ops.NewRouterRegistry(cfg), Config{
		LocalDelivery: func(p []byte, _ int) {
			tag := p[len(p)-1]
			order = append(order, tag)
			if tag == 3 { // control traffic arrives mid-burst
				if !in.Submit(localPkt(t, 0xC7), 1) {
					t.Fatal("control submit refused")
				}
			}
		},
	})
	in = r.ServeGuarded(ServeConfig{
		Workers:   0,
		Batch:     8,
		HighDepth: 8,
		LowDepth:  64,
		Classify:  tagClass,
	})
	defer in.Close()
	for i := 0; i < 24; i++ {
		if !in.Submit(localPkt(t, byte(i)), 0) {
			t.Fatalf("bulk submit %d refused", i)
		}
	}
	if n := in.Pump(); n != 25 {
		t.Fatalf("pumped %d packets, want 25", n)
	}
	// Burst 1 runs bulk 0–7 to completion (the control packet arrives
	// during tag 3); the control packet then preempts all remaining bulk.
	want := make([]byte, 0, 25)
	for i := 0; i < 8; i++ {
		want = append(want, byte(i))
	}
	want = append(want, 0xC7)
	for i := 8; i < 24; i++ {
		want = append(want, byte(i))
	}
	if !bytes.Equal(order, want) {
		t.Fatalf("delivery order\n got %v\nwant %v", order, want)
	}
}

// TestFlowDispatchPinning checks the dispatch table directly: stable
// assignment for one flow (including across hop-limit rewrites, which
// live outside the FN locations), full spread across forwarders for many
// flows, and graceful handling of non-DIP bytes.
func TestFlowDispatchPinning(t *testing.T) {
	cfg := baseCfg(t)
	cfg.FIB32.AddUint32(0, 0, fib.Local)
	r := New(ops.NewRouterRegistry(cfg), Config{LocalDelivery: func([]byte, int) {}})
	in := r.ServeGuarded(ServeConfig{Workers: 4, Batch: 64})
	defer in.Close()

	p := flowPkt(t, 7, 0)
	fw := in.forwarderOf(p)
	p[3] = 1 // hop-limit rewrite must not migrate the flow
	if got := in.forwarderOf(p); got != fw {
		t.Fatalf("hop-limit rewrite moved flow: %d -> %d", fw, got)
	}
	if got := in.forwarderOf(flowPkt(t, 7, 99)); got != fw {
		t.Fatalf("same flow, different payload dispatched to %d, want %d", got, fw)
	}

	seen := map[int]bool{}
	for f := 0; f < 1024; f++ {
		fw := in.forwarderOf(flowPkt(t, f, 0))
		if fw < 0 || fw >= 4 {
			t.Fatalf("flow %d dispatched to out-of-range forwarder %d", f, fw)
		}
		seen[fw] = true
	}
	if len(seen) != 4 {
		t.Fatalf("1024 flows landed on %d/4 forwarders", len(seen))
	}

	// Non-DIP bytes must dispatch somewhere stable without panicking.
	for _, garbage := range [][]byte{nil, {0x45}, bytes.Repeat([]byte{0xAB}, 64)} {
		a, b := in.forwarderOf(garbage), in.forwarderOf(garbage)
		if a != b || a < 0 || a >= 4 {
			t.Fatalf("garbage dispatch unstable: %d vs %d", a, b)
		}
	}
}

// TestSubmitBurstAdmissionControlNotStarved pins the burst-admission
// contract: a mixed burst is charged per same-class run, so exhausting
// the bulk budget rejects bulk packets but every control packet
// interleaved with them is still admitted and delivered.
func TestSubmitBurstAdmissionControlNotStarved(t *testing.T) {
	cfg := baseCfg(t)
	cfg.FIB32.AddUint32(0, 0, fib.Local)
	var control, bulk int
	r := New(ops.NewRouterRegistry(cfg), Config{
		LocalDelivery: func(p []byte, _ int) {
			if tagClass(p) == guard.ClassControl {
				control++
			} else {
				bulk++
			}
		},
	})
	var now time.Duration
	policy := guard.Policy{}
	policy.PerClass[guard.ClassBulk] = guard.Rate{PerSec: 1, Burst: 4}
	adm := guard.NewAdmission(policy, func() time.Duration { return now })
	in := r.ServeGuarded(ServeConfig{
		Workers:   0,
		Batch:     64,
		HighDepth: 64,
		LowDepth:  64,
		Classify:  tagClass,
		Admission: adm,
	})
	defer in.Close()

	// 16 bulk with 4 control interleaved; the bulk bucket only holds 4.
	burst := make([][]byte, 0, 20)
	for i := 0; i < 20; i++ {
		tag := byte(i)
		if i%5 == 2 {
			tag = 0xC0 + byte(i)
		}
		burst = append(burst, localPkt(t, tag))
	}
	if got := in.SubmitBurst(burst, 0); got != 8 {
		t.Fatalf("accepted %d packets, want 8 (4 bulk budget + 4 control)", got)
	}
	if n := in.Pump(); n != 8 {
		t.Fatalf("pumped %d, want 8", n)
	}
	if control != 4 || bulk != 4 {
		t.Fatalf("delivered control=%d bulk=%d, want 4 and 4", control, bulk)
	}
	if h := in.Health(); h.AdmitRejected != 12 {
		t.Fatalf("AdmitRejected=%d, want 12", h.AdmitRejected)
	}
}
