// Package router assembles the DIP per-hop pipeline: parse the header
// (in place), enforce the hop limit, run Algorithm 1 through the engine,
// and act on the verdict — forward (with replication), deliver locally,
// answer interests from the content store, or drop, including the
// FN-unsupported signalling of §2.4 for heterogeneous deployments.
package router

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"dip/internal/core"
	"dip/internal/profiles"
	"dip/internal/telemetry"
	"dip/internal/trace"
)

// Port is an attachment point packets leave through. Send must not retain
// pkt after returning (links and sockets copy as they serialize).
type Port interface {
	Send(pkt []byte)
}

// PortFunc adapts a function to the Port interface.
type PortFunc func(pkt []byte)

// Send implements Port.
func (f PortFunc) Send(pkt []byte) { f(pkt) }

// Config tunes a router beyond its operation registry.
type Config struct {
	// Name labels the router in diagnostics.
	Name string
	// Limits are the per-packet security limits (§2.4).
	Limits core.Limits
	// Metrics, when set, receives per-op and per-verdict telemetry.
	Metrics *telemetry.Metrics
	// Trace, when set, is installed as the engine's recorder instead of
	// Metrics directly: it samples per-packet FN journeys into its ring and
	// forwards aggregate telemetry to its inner recorder. Construct it with
	// trace.NewRecorder(cfg.Metrics, every, ring) so the counters keep
	// flowing; Metrics stays the verdict-counting sink either way.
	Trace *trace.Recorder
	// LocalDelivery receives packets whose verdict is Deliver (this node
	// is the destination or the local producer). The buffer is only valid
	// during the call.
	LocalDelivery func(pkt []byte, inPort int)
	// DisableSignalling suppresses FN-unsupported notifications even when
	// an operation's policy requests them.
	DisableSignalling bool
}

// Router is one DIP-capable node.
type Router struct {
	engine *core.Engine
	cfg    Config
	ports  []Port
	// ingress is the currently serving guard layer, when any (set by
	// Serve/ServeGuarded, cleared by Close); Health reads through it.
	ingress atomic.Pointer[Ingress]
}

// New builds a router over the operation registry.
func New(reg *core.Registry, cfg Config) *Router {
	e := core.NewEngine(reg, cfg.Limits)
	if cfg.Trace != nil {
		e.SetRecorder(cfg.Trace)
	} else if cfg.Metrics != nil {
		e.SetRecorder(cfg.Metrics)
	}
	return &Router{engine: e, cfg: cfg}
}

// SetRecorder replaces the engine's telemetry recorder. Call before
// packets flow — it is how journey taps wrap the recorder Config
// installed (the tap forwards to the wrapped recorder, so metrics and
// traces keep working underneath).
func (r *Router) SetRecorder(rec core.Recorder) { r.engine.SetRecorder(rec) }

// Registry exposes the router's current operation catalog (bootstrap
// advertises it).
func (r *Router) Registry() *core.Registry { return r.engine.Registry() }

// ReplaceRegistry atomically installs a new operation catalog while the
// data plane keeps running — the §2.4 dynamic-security-policy mechanism
// ("F_pass can be enabled on the fly upon detecting content poisoning
// attacks"). It returns the previous catalog.
func (r *Router) ReplaceRegistry(reg *core.Registry) *core.Registry {
	return r.engine.SwapRegistry(reg)
}

// Name returns the router's diagnostic label.
func (r *Router) Name() string { return r.cfg.Name }

// SetLocalDelivery installs (or replaces) the local-delivery sink after
// construction. Call before packets flow: topology wiring installs control
// stacks (e.g. the route-exchange speaker) between router creation and
// scenario start.
func (r *Router) SetLocalDelivery(fn func(pkt []byte, inPort int)) {
	r.cfg.LocalDelivery = fn
}

// Health snapshots the serving ingress guard layer. ok is false when the
// router is not currently serving (no queues to report on).
func (r *Router) Health() (h Health, ok bool) {
	in := r.ingress.Load()
	if in == nil {
		return Health{}, false
	}
	return in.Health(), true
}

// AttachPort registers an egress port and returns its index.
func (r *Router) AttachPort(p Port) int {
	r.ports = append(r.ports, p)
	return len(r.ports) - 1
}

// NumPorts returns the number of attached ports.
func (r *Router) NumPorts() int { return len(r.ports) }

// HandlePacket runs one received packet through the pipeline. The buffer is
// mutated in place (hop limit, FN operand updates) and handed to egress
// ports; it must not be reused by the caller until HandlePacket returns.
func (r *Router) HandlePacket(pkt []byte, inPort int) {
	ctx := ctxPool.Get().(*core.ExecContext)
	defer releaseCtx(ctx)
	// Burst-scoped admission fields survive Reset by design; a pooled
	// context may carry another burst's stamp, so the packet-at-a-time
	// entry point clears them to "unknown".
	ctx.AdmittedAt, ctx.QueueDepth = 0, 0
	r.handlePacket(ctx, pkt, inPort, core.SampleAuto)
}

// handlePacket is the context-reusing core of HandlePacket. Burst
// dataplanes (Ingress.runBurst) call it once per packet with a context
// they hold for the whole burst — amortizing the pool round-trip — and
// with the burst plan's pre-made sampling hint; everyone else goes
// through HandlePacket and pays one pool Get/Put per packet.
func (r *Router) handlePacket(ctx *core.ExecContext, pkt []byte, inPort int, hint core.SampleHint) {
	v, err := core.ParseView(pkt)
	if err != nil {
		r.countDrop(core.DropMalformed)
		return
	}
	if !v.DecHopLimit() {
		r.countDrop(core.DropHopLimit)
		return
	}
	ctx.Reset(v, inPort)
	ctx.Sample = hint
	r.engine.Process(ctx)
	if r.cfg.Metrics != nil {
		r.cfg.Metrics.CountVerdict(ctx.Verdict)
	}
	switch ctx.Verdict {
	case core.VerdictForward:
		for _, p := range ctx.EgressPorts() {
			r.sendOn(p, pkt)
		}
	case core.VerdictDeliver:
		if r.cfg.LocalDelivery != nil {
			r.cfg.LocalDelivery(pkt, inPort)
		}
	case core.VerdictAbsorb:
		if ctx.Cached != nil {
			r.replyFromCache(v, ctx, inPort)
		}
	case core.VerdictDrop:
		if ctx.SignalUnsupported && !r.cfg.DisableSignalling {
			r.signalUnsupported(v, ctx, inPort)
		}
	}
}

// ctxPool recycles execution contexts so HandlePacket stays allocation-free
// even though contexts escape into the engine through interface calls.
var ctxPool = sync.Pool{New: func() any { return new(core.ExecContext) }}

func releaseCtx(ctx *core.ExecContext) {
	ctx.Cached = nil       // drop the content-store reference
	ctx.View = core.View{} // drop the packet buffer reference
	ctx.Trace = nil        // drop any trace-ring slot reference
	ctxPool.Put(ctx)
}

func (r *Router) sendOn(port int, pkt []byte) {
	if port >= 0 && port < len(r.ports) && r.ports[port] != nil {
		r.ports[port].Send(pkt)
		return
	}
	// A route pointing at a detached port is a configuration fault; count it
	// so the packet does not vanish without trace.
	if r.cfg.Metrics != nil {
		r.cfg.Metrics.RecordEvent(telemetry.EventBadEgress)
	}
}

func (r *Router) countDrop(reason core.DropReason) {
	if r.cfg.Metrics != nil {
		r.cfg.Metrics.RecordDrop(reason)
		r.cfg.Metrics.CountVerdict(core.VerdictDrop)
	}
}

// replyFromCache synthesizes the NDN data packet answering an interest the
// content store satisfied (footnote 2), sending it back on the ingress port.
func (r *Router) replyFromCache(v core.View, ctx *core.ExecContext, inPort int) {
	name, ok := interestName(v)
	if !ok {
		return
	}
	h := profiles.NDNData(name)
	h.HopLimit = v.HopLimit()
	buf, err := h.AppendTo(make([]byte, 0, h.WireSize()+len(ctx.Cached)))
	if err != nil {
		return
	}
	buf = append(buf, ctx.Cached...)
	r.sendOn(inPort, buf)
}

// interestName extracts the 32-bit content name an F_FIB FN addresses.
func interestName(v core.View) (uint32, bool) {
	for i := 0; i < v.FNNum(); i++ {
		fn := v.FN(i)
		if fn.Key == core.KeyFIB && fn.Len == 32 && fn.Loc%8 == 0 {
			locs := v.Locations()
			off := int(fn.Loc) / 8
			if off+4 <= len(locs) {
				return binary.BigEndian.Uint32(locs[off:]), true
			}
		}
	}
	return 0, false
}

// signalUnsupported builds and sends the FN-unsupported notification back
// toward the packet's source. Without an F_source FN the source is
// unaddressable and the packet is silently dropped.
func (r *Router) signalUnsupported(v core.View, ctx *core.ExecContext, inPort int) {
	src := profiles.SourceOf(v)
	msg, err := profiles.BuildFNUnsupported(src, ctx.UnsupportedKey)
	if err != nil {
		return
	}
	r.sendOn(inPort, msg)
}
