package router

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"dip/internal/guard"
	"dip/internal/telemetry"
)

// ServeConfig tunes the guarded ingress. The zero value (normalized by
// ServeGuarded) gives one worker, 64-deep queues, no admission control, a
// default quarantine ring, and byte-level classification.
type ServeConfig struct {
	// Workers is the forwarding pool size. 0 selects pump mode: no
	// goroutines are started and the caller drains the queues with Pump —
	// the deterministic single-goroutine mode virtual-time simulations use.
	Workers int
	// HighDepth and LowDepth bound the control and bulk queues (default 64
	// each). The low queue sheds first by construction: workers always
	// prefer the high queue, so under sustained overload bulk waits and
	// overflows while control keeps flowing.
	HighDepth, LowDepth int
	// Admission, when set, polices packets before they enter a queue
	// (per-inport and per-class token buckets). Nil admits everything.
	Admission *guard.Admission
	// Classify maps raw packet bytes to an admission class. Nil uses
	// guard.Classify (DIP control next-headers → ClassControl).
	Classify func(pkt []byte) guard.Class
	// Quarantine receives poison-packet captures from recovered worker
	// panics. Nil allocates a default-sized ring.
	Quarantine *guard.Quarantine
	// OnQuarantine, when set, is called with the poison packet's bytes
	// after a recovered panic is captured — the hook journey tracing uses
	// to freeze the packet's journey. Runs on the worker goroutine; must
	// not block and must not retain the slice.
	OnQuarantine func(pkt []byte)
	// StallAfter is how long a worker may chew on one packet before Health
	// counts it stalled (default 1s).
	StallAfter time.Duration
	// Clock supplies elapsed time for heartbeats and stall detection (the
	// netsim Simulator's Now, or nil for wall time).
	Clock func() time.Duration
}

// Ingress is a running queue-and-workers front end for a router: packets
// are submitted from any goroutine (socket readers, simulator callbacks)
// into two bounded priority queues and drained by a pool of forwarding
// workers, each running HandlePacket behind a panic quarantine. Everything
// HandlePacket touches — the engine's atomic registry, the RW-locked
// tables, the pooled contexts — is safe for this concurrency.
type Ingress struct {
	r    *Router
	cfg  ServeConfig
	high chan queuedPacket // control/probe class: served first
	low  chan queuedPacket // bulk class: sheds first
	wg   sync.WaitGroup

	// state packs a closed bit above an in-flight Submit count, making the
	// hot path one atomic add with no lock. Close sets the bit (no new
	// submitters pass), waits for in-flight submitters to drain, and only
	// then closes the channels — so Submit never races a channel close.
	state     atomic.Int64
	closeOnce sync.Once

	dropped   atomic.Int64                   // total sheds (queue full), both classes
	shed      [guard.NumClasses]atomic.Int64 // sheds by class
	rejected  atomic.Int64                   // admission-control refusals
	processed atomic.Int64                   // packets handed to HandlePacket
	panics    atomic.Int64                   // recovered HandlePacket panics

	workers []workerState
}

const ingressClosedBit = int64(1) << 62

type queuedPacket struct {
	pkt    []byte
	inPort int
}

// workerState is one worker's heartbeat, read by the Health watchdog.
type workerState struct {
	busy atomic.Bool
	beat atomic.Int64 // clock reading (ns) when the current packet started
}

// Serve starts workers goroutines draining a queue of depth queueDepth,
// with no admission control — the permissive legacy configuration. Stop it
// with Close.
func (r *Router) Serve(workers, queueDepth int) *Ingress {
	if workers < 1 {
		workers = 1
	}
	return r.ServeGuarded(ServeConfig{
		Workers:   workers,
		HighDepth: queueDepth,
		LowDepth:  queueDepth,
	})
}

// ServeGuarded starts the ingress guard layer: classification, admission
// control, two-class priority queues, panic quarantine, and worker
// heartbeats. Stop it with Close.
func (r *Router) ServeGuarded(cfg ServeConfig) *Ingress {
	if cfg.HighDepth < 1 {
		cfg.HighDepth = 64
	}
	if cfg.LowDepth < 1 {
		cfg.LowDepth = 64
	}
	if cfg.Classify == nil {
		cfg.Classify = guard.Classify
	}
	if cfg.Quarantine == nil {
		cfg.Quarantine = guard.NewQuarantine(0)
	}
	if cfg.StallAfter <= 0 {
		cfg.StallAfter = time.Second
	}
	if cfg.Clock == nil {
		start := time.Now()
		cfg.Clock = func() time.Duration { return time.Since(start) }
	}
	in := &Ingress{
		r:       r,
		cfg:     cfg,
		high:    make(chan queuedPacket, cfg.HighDepth),
		low:     make(chan queuedPacket, cfg.LowDepth),
		workers: make([]workerState, cfg.Workers),
	}
	in.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go in.worker(&in.workers[i])
	}
	r.ingress.Store(in)
	return in
}

// worker drains both queues, always preferring the high-priority one, and
// exits when both are closed and empty.
func (in *Ingress) worker(w *workerState) {
	defer in.wg.Done()
	high, low := in.high, in.low
	for high != nil || low != nil {
		// Serve everything waiting in the control queue first.
		select {
		case q, ok := <-high:
			if !ok {
				high = nil
				continue
			}
			in.process(q, w)
			continue
		default:
		}
		select {
		case q, ok := <-high:
			if !ok {
				high = nil
				continue
			}
			in.process(q, w)
		case q, ok := <-low:
			if !ok {
				low = nil
				continue
			}
			in.process(q, w)
		}
	}
}

// process runs one packet through HandlePacket behind the quarantine,
// stamping the worker's heartbeat around it.
func (in *Ingress) process(q queuedPacket, w *workerState) {
	if w != nil {
		w.beat.Store(int64(in.cfg.Clock()))
		w.busy.Store(true)
	}
	in.safeHandle(q)
	if w != nil {
		w.busy.Store(false)
	}
	in.processed.Add(1)
}

// safeHandle is the panic isolation boundary: a packet that crashes the
// pipeline costs exactly that packet. The offending bytes, ingress port,
// panic value, and stack are captured into the quarantine ring for offline
// dissection (guard.Capture renders dipdump-ready dumps).
func (in *Ingress) safeHandle(q queuedPacket) {
	defer func() {
		if p := recover(); p != nil {
			in.panics.Add(1)
			cp := make([]byte, len(q.pkt))
			copy(cp, q.pkt)
			in.cfg.Quarantine.Add(guard.Capture{
				InPort: q.inPort,
				Packet: cp,
				Panic:  fmt.Sprint(p),
				Stack:  string(debug.Stack()),
			})
			in.event(telemetry.EventQuarantine)
			if in.cfg.OnQuarantine != nil {
				in.cfg.OnQuarantine(cp)
			}
		}
	}()
	in.r.HandlePacket(q.pkt, q.inPort)
}

func (in *Ingress) event(e telemetry.Event) {
	if in.r.cfg.Metrics != nil {
		in.r.cfg.Metrics.RecordEvent(e)
	}
}

// Submit hands a packet to the workers. Ownership of pkt transfers to the
// router (it is mutated in place and must not be reused by the caller).
// It returns false when the ingress is closed, admission control refuses
// the packet, or its class's queue is full (a shed). The hot path is one
// atomic add plus the channel send — no locks.
func (in *Ingress) Submit(pkt []byte, inPort int) bool {
	if in.state.Add(1)&ingressClosedBit != 0 {
		in.state.Add(-1)
		return false
	}
	defer in.state.Add(-1)
	class := in.cfg.Classify(pkt)
	if in.cfg.Admission != nil && !in.cfg.Admission.Admit(inPort, class) {
		in.rejected.Add(1)
		in.event(telemetry.EventAdmitReject)
		return false
	}
	ch := in.low
	shedEvent := telemetry.EventShedLow
	if class == guard.ClassControl {
		ch = in.high
		shedEvent = telemetry.EventShedHigh
	}
	select {
	case ch <- queuedPacket{pkt: pkt, inPort: inPort}:
		return true
	default:
		in.dropped.Add(1)
		in.shed[class].Add(1)
		in.event(shedEvent)
		return false
	}
}

// Pump synchronously drains every packet currently queued (control first)
// on the caller's goroutine, returning how many it processed. It is the
// workerless (Workers: 0) drain loop: virtual-time simulations schedule
// Pump from simulator events so queue service happens in deterministic
// order inside virtual time. Pump must not run concurrently with itself or
// with goroutine workers.
func (in *Ingress) Pump() int {
	n := 0
	for {
		select {
		case q, ok := <-in.high:
			if !ok {
				return n
			}
			in.process(q, nil)
			n++
			continue
		default:
		}
		select {
		case q, ok := <-in.low:
			if !ok {
				return n
			}
			in.process(q, nil)
			n++
		default:
			return n
		}
	}
}

// Dropped returns the tail-drop (queue shed) count across both classes.
func (in *Ingress) Dropped() int64 { return in.dropped.Load() }

// Quarantine returns the poison-packet ring for inspection.
func (in *Ingress) Quarantine() *guard.Quarantine { return in.cfg.Quarantine }

// Close stops accepting packets, drains the queues, and waits for the
// workers to finish in-flight work. Safe to call multiple times and
// concurrently with Submit.
func (in *Ingress) Close() {
	in.closeOnce.Do(func() {
		in.state.Add(ingressClosedBit)
		// Wait out submitters that passed the closed check before the bit
		// was set; none can touch the channels after this loop exits.
		for in.state.Load() != ingressClosedBit {
			runtime.Gosched()
		}
		close(in.high)
		close(in.low)
		if len(in.workers) == 0 {
			in.Pump() // workerless mode: drain what remains inline
		}
		in.wg.Wait()
		in.r.ingress.CompareAndSwap(in, nil)
	})
}

// Health is a point-in-time snapshot of the guard layer: queue pressure
// per class, everything the guards turned away, quarantine volume, and
// worker liveness.
type Health struct {
	// Workers is the forwarding pool size (0 in pump mode).
	Workers int
	// Stalled counts workers that have been busy on a single packet for
	// longer than the stall threshold.
	Stalled int
	// HighDepth/LowDepth are current queue occupancies; HighCap/LowCap the
	// bounds.
	HighDepth, HighCap int
	LowDepth, LowCap   int
	// ShedHigh/ShedLow count queue-full drops per class.
	ShedHigh, ShedLow int64
	// AdmitRejected counts admission-control refusals.
	AdmitRejected int64
	// Quarantined counts packets captured after panicking a worker.
	Quarantined int64
	// Processed counts packets handed to the pipeline.
	Processed int64
}

// String renders the snapshot as one diagnostic line.
func (h Health) String() string {
	return fmt.Sprintf(
		"workers=%d stalled=%d high=%d/%d low=%d/%d shed-high=%d shed-low=%d admit-rejected=%d quarantined=%d processed=%d",
		h.Workers, h.Stalled, h.HighDepth, h.HighCap, h.LowDepth, h.LowCap,
		h.ShedHigh, h.ShedLow, h.AdmitRejected, h.Quarantined, h.Processed)
}

// Health captures the current guard-layer state. Each call acts as the
// watchdog tick: newly observed worker stalls are recorded to telemetry.
func (in *Ingress) Health() Health {
	h := Health{
		Workers:       len(in.workers),
		HighDepth:     len(in.high),
		HighCap:       cap(in.high),
		LowDepth:      len(in.low),
		LowCap:        cap(in.low),
		ShedHigh:      in.shed[guard.ClassControl].Load(),
		ShedLow:       in.shed[guard.ClassBulk].Load(),
		AdmitRejected: in.rejected.Load(),
		Quarantined:   in.panics.Load(),
		Processed:     in.processed.Load(),
	}
	now := in.cfg.Clock()
	for i := range in.workers {
		w := &in.workers[i]
		if w.busy.Load() && now-time.Duration(w.beat.Load()) > in.cfg.StallAfter {
			h.Stalled++
		}
	}
	if h.Stalled > 0 {
		in.event(telemetry.EventWorkerStall)
	}
	return h
}
