package router

import "sync"

// Ingress is a running queue-and-workers front end for a router: packets
// are submitted from any goroutine (socket readers, simulator callbacks)
// into a bounded queue and drained by a pool of forwarding workers, each
// running HandlePacket. Everything HandlePacket touches — the engine's
// atomic registry, the RW-locked tables, the pooled contexts — is safe for
// this concurrency.
type Ingress struct {
	r     *Router
	queue chan queuedPacket
	wg    sync.WaitGroup
	// Dropped counts tail drops (queue full), the router's overload shed.
	mu      sync.Mutex
	dropped int64
	closed  bool
}

type queuedPacket struct {
	pkt    []byte
	inPort int
}

// Serve starts workers goroutines draining a queue of depth queueDepth.
// Stop it with Close.
func (r *Router) Serve(workers, queueDepth int) *Ingress {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 64
	}
	in := &Ingress{r: r, queue: make(chan queuedPacket, queueDepth)}
	in.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer in.wg.Done()
			for q := range in.queue {
				r.HandlePacket(q.pkt, q.inPort)
			}
		}()
	}
	return in
}

// Submit hands a packet to the workers. Ownership of pkt transfers to the
// router (it is mutated in place and must not be reused by the caller).
// It returns false — a tail drop — when the queue is full or the ingress
// is closed.
func (in *Ingress) Submit(pkt []byte, inPort int) bool {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return false
	}
	select {
	case in.queue <- queuedPacket{pkt: pkt, inPort: inPort}:
		in.mu.Unlock()
		return true
	default:
		in.dropped++
		in.mu.Unlock()
		return false
	}
}

// Dropped returns the tail-drop count.
func (in *Ingress) Dropped() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.dropped
}

// Close stops accepting packets, drains the queue, and waits for the
// workers to finish in-flight work.
func (in *Ingress) Close() {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return
	}
	in.closed = true
	in.mu.Unlock()
	close(in.queue)
	in.wg.Wait()
}
