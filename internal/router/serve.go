package router

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"dip/internal/core"
	"dip/internal/guard"
	"dip/internal/nhash"
	"dip/internal/telemetry"
)

// Batching defaults. DefaultBatch is the run-to-completion burst bound —
// the same order of magnitude DPDK-style dataplanes use (32–64), large
// enough to amortize queue locking and sampling, small enough to keep
// control-class preemption latency at one burst.
const (
	DefaultBatch          = 64
	DefaultDispatchShards = 256
	maxBatch              = 1024
	// maxSubmitBurst bounds one SubmitBurst chunk so its per-packet
	// scratch (class, destination, outcome) fits in fixed stack arrays;
	// larger bursts are split transparently.
	maxSubmitBurst = 256
)

// ServeConfig tunes the guarded ingress. The zero value (normalized by
// ServeGuarded) gives one worker, 64-deep queues, 64-packet bursts, no
// admission control, a default quarantine ring, and byte-level
// classification.
type ServeConfig struct {
	// Workers is the forwarding pool size. 0 selects pump mode: no
	// goroutines are started and the caller drains the queues with Pump —
	// the deterministic single-goroutine mode virtual-time simulations use.
	Workers int
	// HighDepth and LowDepth bound the control and bulk queues of each
	// forwarder (default 64 each). The low queue sheds first by
	// construction: bursts always drain the high queue before the low one,
	// so under sustained overload bulk waits and overflows while control
	// keeps flowing.
	HighDepth, LowDepth int
	// Batch bounds the run-to-completion burst: a forwarder (or Pump)
	// takes up to Batch packets from its queue in one lock round and runs
	// them all through the pipeline before touching the queue again,
	// amortizing queue operations, engine context setup, heartbeats, and
	// trace-sampling decisions. 0 selects DefaultBatch; 1 degenerates to
	// the packet-at-a-time pipeline.
	Batch int
	// DispatchShards sizes the flow-dispatch table (rounded to a power of
	// two, default 256). Flows hash — NDT-style, over the FN locations
	// region — into shards, and each shard is pinned to exactly one
	// forwarder, so all packets of one flow are processed by one goroutine
	// in submission order with no cross-core locks on the way.
	DispatchShards int
	// Admission, when set, polices packets before they enter a queue
	// (per-inport and per-class token buckets). Nil admits everything.
	Admission *guard.Admission
	// Classify maps raw packet bytes to an admission class. Nil uses
	// guard.Classify (DIP control next-headers → ClassControl).
	Classify func(pkt []byte) guard.Class
	// Quarantine receives poison-packet captures from recovered worker
	// panics. Nil allocates a default-sized ring.
	Quarantine *guard.Quarantine
	// OnQuarantine, when set, is called with the poison packet's bytes
	// after a recovered panic is captured — the hook journey tracing uses
	// to freeze the packet's journey. Runs on the worker goroutine; must
	// not block and must not retain the slice.
	OnQuarantine func(pkt []byte)
	// StallAfter is how long a worker may chew on one packet before Health
	// counts it stalled (default 1s).
	StallAfter time.Duration
	// Clock supplies elapsed time for heartbeats and stall detection (the
	// netsim Simulator's Now, or nil for wall time).
	Clock func() time.Duration
}

// Ingress is a running queue-and-forwarders front end for a router: a
// batched run-to-completion dataplane. Submitted packets hash by flow
// (flowHash over the FN locations) through a dispatch table onto exactly
// one forwarder's two-class queue; each forwarder drains its queue in
// bursts of up to Batch packets and runs every burst to completion behind
// the panic quarantine. Because a queue has exactly one consumer and
// dispatch is deterministic, per-flow FIFO order is a structural property
// of the design, not a locking discipline — and the burst loop pays its
// queue lock, context-pool round-trip, heartbeat stamp, and sampling
// arithmetic once per burst instead of once per packet.
type Ingress struct {
	r   *Router
	cfg ServeConfig

	// queues holds one burst queue per forwarder (exactly one in pump
	// mode). Each queue is consumed only by its pinned forwarder.
	queues []*burstQueue
	// dispatch maps flow-hash shards to forwarder indexes.
	dispatch  []int32
	shardMask uint64

	wg sync.WaitGroup

	// state packs a closed bit above an in-flight Submit count, making the
	// hot path one atomic add with no lock. Close sets the bit (no new
	// submitters pass), waits for in-flight submitters to drain, and only
	// then marks the queues closed — so Submit never races queue teardown.
	state     atomic.Int64
	closeOnce sync.Once

	dropped   atomic.Int64                   // total sheds (queue full), both classes
	shed      [guard.NumClasses]atomic.Int64 // sheds by class
	rejected  atomic.Int64                   // admission-control refusals
	processed atomic.Int64                   // packets handed to HandlePacket
	panics    atomic.Int64                   // recovered HandlePacket panics

	workers []workerState

	// pumpPlan and pumpBurst are the workerless drain loop's burst state.
	// Pump must not run concurrently with itself, so plain fields suffice.
	pumpPlan  core.BurstPlan
	pumpBurst []queuedPacket
}

const ingressClosedBit = int64(1) << 62

type queuedPacket struct {
	pkt    []byte
	inPort int
}

// workerState is one worker's heartbeat, read by the Health watchdog.
type workerState struct {
	busy atomic.Bool
	beat atomic.Int64 // clock reading (ns) when the current burst started
}

// pktRing is a bounded FIFO over a preallocated buffer. Combined with the
// owning queue's mutex it replaces a channel: both ends amortize — a
// submit burst pushes its packets under one lock round, and a forwarder
// pops a whole burst per acquisition — which a channel's per-element
// send/receive protocol cannot do.
type pktRing struct {
	buf  []queuedPacket
	head int
	n    int
}

func (r *pktRing) push(q queuedPacket) bool {
	if r.n == len(r.buf) {
		return false
	}
	r.buf[(r.head+r.n)%len(r.buf)] = q
	r.n++
	return true
}

func (r *pktRing) pop() queuedPacket {
	q := r.buf[r.head]
	r.buf[r.head] = queuedPacket{} // drop the buffer reference
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return q
}

// burstQueue is one forwarder's two-class ingress queue: bounded rings
// under one mutex with a condition variable for the (single) consumer.
type burstQueue struct {
	mu     sync.Mutex
	ready  sync.Cond
	high   pktRing
	low    pktRing
	closed bool
}

// collect moves up to max queued packets into burst, control class first.
// When block is set it waits for work; an empty return then means the
// queue is closed and drained. One lock round per burst — instead of one
// channel operation per packet — is where batching's queue-cost
// amortization comes from.
func (q *burstQueue) collect(burst []queuedPacket, max int, block bool) []queuedPacket {
	q.mu.Lock()
	for block && !q.closed && q.high.n == 0 && q.low.n == 0 {
		q.ready.Wait()
	}
	for q.high.n > 0 && len(burst) < max {
		burst = append(burst, q.high.pop())
	}
	for q.low.n > 0 && len(burst) < max {
		burst = append(burst, q.low.pop())
	}
	q.mu.Unlock()
	return burst
}

// Serve starts workers goroutines draining queues of depth queueDepth,
// with no admission control — the permissive legacy configuration. Stop it
// with Close.
func (r *Router) Serve(workers, queueDepth int) *Ingress {
	if workers < 1 {
		workers = 1
	}
	return r.ServeGuarded(ServeConfig{
		Workers:   workers,
		HighDepth: queueDepth,
		LowDepth:  queueDepth,
	})
}

// ServeGuarded starts the ingress guard layer: classification, admission
// control, flow-pinned two-class burst queues, panic quarantine, and
// worker heartbeats. Stop it with Close.
func (r *Router) ServeGuarded(cfg ServeConfig) *Ingress {
	if cfg.HighDepth < 1 {
		cfg.HighDepth = 64
	}
	if cfg.LowDepth < 1 {
		cfg.LowDepth = 64
	}
	if cfg.Batch < 1 {
		cfg.Batch = DefaultBatch
	}
	if cfg.Batch > maxBatch {
		cfg.Batch = maxBatch
	}
	if cfg.Classify == nil {
		cfg.Classify = guard.Classify
	}
	if cfg.Quarantine == nil {
		cfg.Quarantine = guard.NewQuarantine(0)
	}
	if cfg.StallAfter <= 0 {
		cfg.StallAfter = time.Second
	}
	if cfg.Clock == nil {
		start := time.Now()
		cfg.Clock = func() time.Duration { return time.Since(start) }
	}
	nq := cfg.Workers
	if nq < 1 {
		nq = 1 // pump mode: one queue, drained by the caller
	}
	shards := cfg.DispatchShards
	if shards < 1 {
		shards = DefaultDispatchShards
	}
	shards = nhash.Pow2(shards)
	for shards < nq {
		shards *= 2 // at least one shard per forwarder
	}
	in := &Ingress{r: r, cfg: cfg}
	in.queues = make([]*burstQueue, nq)
	for i := range in.queues {
		q := &burstQueue{
			high: pktRing{buf: make([]queuedPacket, cfg.HighDepth)},
			low:  pktRing{buf: make([]queuedPacket, cfg.LowDepth)},
		}
		q.ready.L = &q.mu
		in.queues[i] = q
	}
	in.dispatch = make([]int32, shards)
	for i := range in.dispatch {
		in.dispatch[i] = int32(i % nq)
	}
	in.shardMask = uint64(shards - 1)
	in.workers = make([]workerState, cfg.Workers)
	// Only the engine's outermost recorder may plan burst sampling (a
	// wrapping recorder would mis-account an inner one's rate); recorders
	// that cannot fall back to per-packet decisions in BeginPacket.
	sampler, _ := r.engine.Recorder().(core.BurstSampler)
	in.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		var plan core.BurstPlan
		if sampler != nil {
			plan = sampler.NewBurstPlan()
		}
		go in.forwarder(in.queues[i], &in.workers[i], plan)
	}
	if cfg.Workers == 0 {
		if sampler != nil {
			in.pumpPlan = sampler.NewBurstPlan()
		}
		in.pumpBurst = make([]queuedPacket, 0, cfg.Batch)
	}
	r.ingress.Store(in)
	return in
}

// flowHash is the NDT-style dispatch key: a hash of the packet's FN
// locations — the region every address, name, and tag lives in — so all
// packets of one conversation land on the same forwarder regardless of
// which protocol their FN list composes. Packets that are not DIP-shaped
// (tunnel outers, garbage headed for quarantine) hash their leading bytes
// instead: they still get a stable forwarder, just not a semantic one.
func flowHash(pkt []byte) uint64 {
	if region := core.FlowRegion(pkt); region != nil {
		return nhash.Bytes(region)
	}
	n := len(pkt)
	if n > 32 {
		n = 32
	}
	return nhash.Bytes(pkt[:n])
}

// forwarderOf returns the index of the forwarder (and queue) pinned to
// pkt's flow.
func (in *Ingress) forwarderOf(pkt []byte) int {
	return int(in.dispatch[flowHash(pkt)&in.shardMask])
}

// forwarder is one pinned forwarding goroutine: it owns exactly one queue
// and runs each collected burst to completion before touching the queue
// again. It exits when the queue is closed and drained.
func (in *Ingress) forwarder(q *burstQueue, w *workerState, plan core.BurstPlan) {
	defer in.wg.Done()
	burst := make([]queuedPacket, 0, in.cfg.Batch)
	for {
		burst = q.collect(burst[:0], in.cfg.Batch, true)
		if len(burst) == 0 {
			return
		}
		in.runBurst(burst, w, plan)
	}
}

// runBurst processes one burst run-to-completion: a single heartbeat
// stamp, one pooled execution context, and one amortized sampling plan
// cover the whole burst. Each packet still executes behind the panic
// quarantine, so a poison packet costs exactly itself — the rest of its
// burst completes.
func (in *Ingress) runBurst(burst []queuedPacket, w *workerState, plan core.BurstPlan) {
	at := int64(in.cfg.Clock())
	if w != nil {
		w.beat.Store(at)
		w.busy.Store(true)
	}
	if plan != nil {
		plan.BeginBurst(len(burst))
	}
	ctx := ctxPool.Get().(*core.ExecContext)
	// Admission snapshot for in-band telemetry: one clock read and one
	// depth reading amortized over the burst. F_tel (when the packet
	// carries it) turns these into per-hop latency and queue depth.
	ctx.AdmittedAt = at
	ctx.QueueDepth = int32(len(burst))
	for i := range burst {
		hint := core.SampleAuto
		if plan != nil {
			hint = plan.Hint()
		}
		in.safeHandle(ctx, burst[i], hint)
		burst[i] = queuedPacket{} // drop the buffer reference promptly
	}
	releaseCtx(ctx)
	if w != nil {
		w.busy.Store(false)
	}
	in.processed.Add(int64(len(burst)))
}

// safeHandle is the panic isolation boundary: a packet that crashes the
// pipeline costs exactly that packet. The offending bytes, ingress port,
// panic value, and stack are captured into the quarantine ring for offline
// dissection (guard.Capture renders dipdump-ready dumps).
func (in *Ingress) safeHandle(ctx *core.ExecContext, q queuedPacket, hint core.SampleHint) {
	defer func() {
		if p := recover(); p != nil {
			in.panics.Add(1)
			cp := make([]byte, len(q.pkt))
			copy(cp, q.pkt)
			in.cfg.Quarantine.Add(guard.Capture{
				InPort: q.inPort,
				Packet: cp,
				Panic:  fmt.Sprint(p),
				Stack:  string(debug.Stack()),
			})
			in.event(telemetry.EventQuarantine)
			if in.cfg.OnQuarantine != nil {
				in.cfg.OnQuarantine(cp)
			}
		}
	}()
	in.r.handlePacket(ctx, q.pkt, q.inPort, hint)
}

func (in *Ingress) event(e telemetry.Event) {
	if in.r.cfg.Metrics != nil {
		in.r.cfg.Metrics.RecordEvent(e)
	}
}

// Submit hands one packet to its flow's forwarder. Ownership of pkt
// transfers to the router (it is mutated in place and must not be reused
// by the caller). It returns false when the ingress is closed, admission
// control refuses the packet, or its class's ring on the pinned
// forwarder's queue is full (a shed).
func (in *Ingress) Submit(pkt []byte, inPort int) bool {
	if in.state.Add(1)&ingressClosedBit != 0 {
		in.state.Add(-1)
		return false
	}
	defer in.state.Add(-1)
	class := in.cfg.Classify(pkt)
	if in.cfg.Admission != nil && !in.cfg.Admission.Admit(inPort, class) {
		in.rejected.Add(1)
		in.event(telemetry.EventAdmitReject)
		return false
	}
	q := in.queues[in.forwarderOf(pkt)]
	q.mu.Lock()
	ring := &q.low
	if class == guard.ClassControl {
		ring = &q.high
	}
	ok := ring.push(queuedPacket{pkt: pkt, inPort: inPort})
	if ok {
		q.ready.Signal()
	}
	q.mu.Unlock()
	if !ok {
		in.dropped.Add(1)
		in.shed[class].Add(1)
		if class == guard.ClassControl {
			in.event(telemetry.EventShedHigh)
		} else {
			in.event(telemetry.EventShedLow)
		}
	}
	return ok
}

// SubmitBurst hands a whole received burst to the forwarders, returning
// how many packets were enqueued. It is the amortized ingress edge: one
// in-flight accounting round, per-class admission charged in runs (one
// clock read and one bucket update per run, so bulk exhaustion never
// starves the control packets interleaved with it), and one queue lock
// round per destination forwarder instead of one per packet. Ownership of
// every packet transfers to the router; rejected and shed packets are
// simply never referenced again, but the caller cannot tell which they
// were, so it must treat the whole burst as handed off. Relative
// submission order is preserved per flow.
func (in *Ingress) SubmitBurst(pkts [][]byte, inPort int) int {
	accepted := 0
	for len(pkts) > 0 {
		chunk := pkts
		if len(chunk) > maxSubmitBurst {
			chunk = chunk[:maxSubmitBurst]
		}
		accepted += in.submitChunk(chunk, inPort)
		pkts = pkts[len(chunk):]
	}
	return accepted
}

// submitChunk is SubmitBurst's bounded worker: len(pkts) ≤ maxSubmitBurst
// so per-packet scratch lives in fixed stack arrays (no allocation).
func (in *Ingress) submitChunk(pkts [][]byte, inPort int) int {
	if in.state.Add(1)&ingressClosedBit != 0 {
		in.state.Add(-1)
		return 0
	}
	defer in.state.Add(-1)
	n := len(pkts)
	var (
		cls  [maxSubmitBurst]guard.Class
		dst  [maxSubmitBurst]int32
		take [maxSubmitBurst]bool
		done [maxSubmitBurst]bool
	)
	for i, p := range pkts {
		cls[i] = in.cfg.Classify(p)
		dst[i] = in.dispatch[flowHash(p)&in.shardMask]
	}
	if in.cfg.Admission == nil {
		for i := 0; i < n; i++ {
			take[i] = true
		}
	} else {
		// Charge admission in same-class runs: each run costs one
		// AdmitBurst (one clock read, one update per bucket), and each
		// class is admitted on its own budget — a rejected bulk run never
		// blocks the control packets behind it.
		for i := 0; i < n; {
			j := i + 1
			for j < n && cls[j] == cls[i] {
				j++
			}
			granted := in.cfg.Admission.AdmitBurst(inPort, cls[i], j-i)
			for k := i; k < j; k++ {
				take[k] = k-i < granted
			}
			if rej := (j - i) - granted; rej > 0 {
				in.rejected.Add(int64(rej))
				for k := 0; k < rej; k++ {
					in.event(telemetry.EventAdmitReject)
				}
			}
			i = j
		}
	}
	accepted := 0
	for i := 0; i < n; i++ {
		if !take[i] || done[i] {
			continue
		}
		// Enqueue every not-yet-placed packet bound for this forwarder
		// under one lock round, in submission order.
		q := in.queues[dst[i]]
		q.mu.Lock()
		for k := i; k < n; k++ {
			if !take[k] || done[k] || dst[k] != dst[i] {
				continue
			}
			done[k] = true
			ring := &q.low
			if cls[k] == guard.ClassControl {
				ring = &q.high
			}
			if ring.push(queuedPacket{pkt: pkts[k], inPort: inPort}) {
				accepted++
			} else {
				in.dropped.Add(1)
				in.shed[cls[k]].Add(1)
				if cls[k] == guard.ClassControl {
					in.event(telemetry.EventShedHigh)
				} else {
					in.event(telemetry.EventShedLow)
				}
			}
		}
		q.ready.Signal()
		q.mu.Unlock()
	}
	return accepted
}

// Pump synchronously drains every packet currently queued (control first,
// in bursts of up to Batch) on the caller's goroutine, returning how many
// it processed. It is the workerless (Workers: 0) drain loop: virtual-time
// simulations schedule Pump from simulator events so queue service happens
// in deterministic order inside virtual time — burst-shaped, but with no
// goroutine interleaving to perturb it. Pump must not run concurrently
// with itself or with goroutine workers.
func (in *Ingress) Pump() int {
	n := 0
	for {
		in.pumpBurst = in.queues[0].collect(in.pumpBurst[:0], in.cfg.Batch, false)
		if len(in.pumpBurst) == 0 {
			return n
		}
		in.runBurst(in.pumpBurst, nil, in.pumpPlan)
		n += len(in.pumpBurst)
	}
}

// Dropped returns the tail-drop (queue shed) count across both classes.
func (in *Ingress) Dropped() int64 { return in.dropped.Load() }

// Processed returns how many packets have been handed to the pipeline.
func (in *Ingress) Processed() int64 { return in.processed.Load() }

// Quarantine returns the poison-packet ring for inspection.
func (in *Ingress) Quarantine() *guard.Quarantine { return in.cfg.Quarantine }

// Close stops accepting packets, drains the queues, and waits for the
// forwarders to finish in-flight bursts. Safe to call multiple times and
// concurrently with Submit.
func (in *Ingress) Close() {
	in.closeOnce.Do(func() {
		in.state.Add(ingressClosedBit)
		// Wait out submitters that passed the closed check before the bit
		// was set; none can touch the queues after this loop exits.
		for in.state.Load() != ingressClosedBit {
			runtime.Gosched()
		}
		for _, q := range in.queues {
			q.mu.Lock()
			q.closed = true
			q.ready.Broadcast()
			q.mu.Unlock()
		}
		if len(in.workers) == 0 {
			in.Pump() // workerless mode: drain what remains inline
		}
		in.wg.Wait()
		in.r.ingress.CompareAndSwap(in, nil)
	})
}

// Health is a point-in-time snapshot of the guard layer: queue pressure
// per class, everything the guards turned away, quarantine volume, and
// worker liveness.
type Health struct {
	// Workers is the forwarding pool size (0 in pump mode).
	Workers int
	// Stalled counts workers that have been busy on a single burst for
	// longer than the stall threshold.
	Stalled int
	// HighDepth/LowDepth are current queue occupancies summed across
	// forwarders; HighCap/LowCap the summed bounds.
	HighDepth, HighCap int
	LowDepth, LowCap   int
	// ShedHigh/ShedLow count queue-full drops per class.
	ShedHigh, ShedLow int64
	// AdmitRejected counts admission-control refusals.
	AdmitRejected int64
	// Quarantined counts packets captured after panicking a worker.
	Quarantined int64
	// Processed counts packets handed to the pipeline.
	Processed int64
}

// String renders the snapshot as one diagnostic line.
func (h Health) String() string {
	return fmt.Sprintf(
		"workers=%d stalled=%d high=%d/%d low=%d/%d shed-high=%d shed-low=%d admit-rejected=%d quarantined=%d processed=%d",
		h.Workers, h.Stalled, h.HighDepth, h.HighCap, h.LowDepth, h.LowCap,
		h.ShedHigh, h.ShedLow, h.AdmitRejected, h.Quarantined, h.Processed)
}

// Health captures the current guard-layer state. Each call acts as the
// watchdog tick: newly observed worker stalls are recorded to telemetry.
func (in *Ingress) Health() Health {
	h := Health{
		Workers:       len(in.workers),
		HighCap:       in.cfg.HighDepth * len(in.queues),
		LowCap:        in.cfg.LowDepth * len(in.queues),
		ShedHigh:      in.shed[guard.ClassControl].Load(),
		ShedLow:       in.shed[guard.ClassBulk].Load(),
		AdmitRejected: in.rejected.Load(),
		Quarantined:   in.panics.Load(),
		Processed:     in.processed.Load(),
	}
	for _, q := range in.queues {
		q.mu.Lock()
		h.HighDepth += q.high.n
		h.LowDepth += q.low.n
		q.mu.Unlock()
	}
	now := in.cfg.Clock()
	for i := range in.workers {
		w := &in.workers[i]
		if w.busy.Load() && now-time.Duration(w.beat.Load()) > in.cfg.StallAfter {
			h.Stalled++
		}
	}
	if h.Stalled > 0 {
		in.event(telemetry.EventWorkerStall)
	}
	return h
}
