package router

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dip/internal/fib"
	"dip/internal/guard"
	"dip/internal/ops"
	"dip/internal/profiles"
	"dip/internal/telemetry"
)

// localPkt builds a packet that routes to local delivery, with a trailing
// tag byte the tests use to identify and classify it.
func localPkt(t *testing.T, tag byte) []byte {
	t.Helper()
	return pkt(t, profiles.IPv4([4]byte{1, 1, 1, 1}, [4]byte{2, 2, 2, 2}), []byte{tag})
}

func tagClass(p []byte) guard.Class {
	if len(p) > 0 && p[len(p)-1] >= 0xC0 {
		return guard.ClassControl
	}
	return guard.ClassBulk
}

func TestIngressSubmitCloseRace(t *testing.T) {
	// Submit from many goroutines while Close runs concurrently; the packed
	// state counter must prevent any send on a closed channel. Double Close
	// and submit-after-close ride along. Run under -race.
	for iter := 0; iter < 20; iter++ {
		cfg := baseCfg(t)
		cfg.FIB32.AddUint32(0, 0, fib.Local)
		r := New(ops.NewRouterRegistry(cfg), Config{LocalDelivery: func([]byte, int) {}})
		in := r.Serve(2, 4)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 200; i++ {
					in.Submit(localPkt(t, byte(i)), 0)
				}
			}()
		}
		wg.Add(2)
		for c := 0; c < 2; c++ {
			go func() { // concurrent double Close
				defer wg.Done()
				<-start
				in.Close()
			}()
		}
		close(start)
		wg.Wait()
		if in.Submit(localPkt(t, 0), 0) {
			t.Fatal("submit after close accepted")
		}
		in.Close() // idempotent after the concurrent pair
	}
}

func TestWorkerSurvivesPanic(t *testing.T) {
	// A poison packet must cost exactly itself: the worker recovers, the
	// bytes land in quarantine, and later packets still flow.
	cfg := baseCfg(t)
	cfg.FIB32.AddUint32(0, 0, fib.Local)
	var delivered atomic.Int64
	r := New(ops.NewRouterRegistry(cfg), Config{
		Metrics: &telemetry.Metrics{},
		LocalDelivery: func(pkt []byte, _ int) {
			if len(pkt) > 0 && pkt[len(pkt)-1] == 0xEE {
				panic("poison payload")
			}
			delivered.Add(1)
		},
	})
	in := r.ServeGuarded(ServeConfig{Workers: 1, HighDepth: 8, LowDepth: 8})
	poison := localPkt(t, 0xEE)
	if !in.Submit(append([]byte(nil), poison...), 3) {
		t.Fatal("poison submit refused")
	}
	for i := 0; i < 10; i++ {
		for !in.Submit(localPkt(t, 1), 0) {
		}
	}
	in.Close()
	if got := delivered.Load(); got != 10 {
		t.Errorf("delivered %d packets after the panic, want 10", got)
	}
	q := in.Quarantine().Snapshot()
	if len(q) != 1 {
		t.Fatalf("quarantine holds %d captures, want 1", len(q))
	}
	c := q[0]
	if c.InPort != 3 || c.Panic != "poison payload" {
		t.Errorf("capture = inport %d panic %q", c.InPort, c.Panic)
	}
	// The pipeline mutates headers in place before the panic, so compare
	// length and the untouched payload tag rather than the full bytes.
	if len(c.Packet) != len(poison) || c.Packet[len(c.Packet)-1] != 0xEE {
		t.Errorf("captured bytes are not the poison packet: % x", c.Packet)
	}
	if c.Stack == "" {
		t.Error("capture has no stack")
	}
	h := in.Health()
	if h.Quarantined != 1 {
		t.Errorf("Health.Quarantined = %d, want 1", h.Quarantined)
	}
}

func TestPumpServesControlFirst(t *testing.T) {
	cfg := baseCfg(t)
	cfg.FIB32.AddUint32(0, 0, fib.Local)
	var order []byte
	r := New(ops.NewRouterRegistry(cfg), Config{
		LocalDelivery: func(pkt []byte, _ int) { order = append(order, pkt[len(pkt)-1]) },
	})
	in := r.ServeGuarded(ServeConfig{Workers: 0, HighDepth: 8, LowDepth: 8, Classify: tagClass})
	defer in.Close()
	// Interleave bulk (tags < 0xC0) and control (tags >= 0xC0) submissions.
	for _, tag := range []byte{0x01, 0xC1, 0x02, 0xC2, 0x03} {
		if !in.Submit(localPkt(t, tag), 0) {
			t.Fatalf("submit %#x refused", tag)
		}
	}
	if n := in.Pump(); n != 5 {
		t.Fatalf("Pump processed %d, want 5", n)
	}
	want := []byte{0xC1, 0xC2, 0x01, 0x02, 0x03}
	if !bytes.Equal(order, want) {
		t.Errorf("service order % x, want control first: % x", order, want)
	}
}

func TestIngressAdmissionAndHealth(t *testing.T) {
	cfg := baseCfg(t)
	cfg.FIB32.AddUint32(0, 0, fib.Local)
	m := &telemetry.Metrics{}
	r := New(ops.NewRouterRegistry(cfg), Config{Metrics: m, LocalDelivery: func([]byte, int) {}})
	now := time.Duration(0)
	clock := func() time.Duration { return now }
	adm := guard.NewAdmission(guard.Policy{PerPort: guard.Rate{PerSec: 1, Burst: 2}}, clock)
	in := r.ServeGuarded(ServeConfig{
		Workers: 0, HighDepth: 2, LowDepth: 2,
		Admission: adm, Classify: tagClass, Clock: clock,
	})
	defer in.Close()

	if h, ok := r.Health(); !ok || h.LowCap != 2 {
		t.Fatalf("router Health = %+v ok=%v", h, ok)
	}
	// Two admitted (burst), then admission rejects.
	for i := 0; i < 5; i++ {
		in.Submit(localPkt(t, byte(i)), 7)
	}
	h := in.Health()
	if h.AdmitRejected != 3 || h.LowDepth != 2 {
		t.Errorf("after flood: %+v", h)
	}
	if adm.RejectedOnPort(7) != 3 {
		t.Errorf("RejectedOnPort(7) = %d, want 3", adm.RejectedOnPort(7))
	}
	// A different port still gets its own burst, but the queue is full now:
	// those submissions shed, not reject.
	for i := 0; i < 2; i++ {
		in.Submit(localPkt(t, byte(i)), 8)
	}
	h = in.Health()
	if h.ShedLow != 2 || h.ShedHigh != 0 {
		t.Errorf("shed counters: %+v", h)
	}
	if in.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", in.Dropped())
	}
	in.Pump()
	h = in.Health()
	if h.Processed != 2 || h.LowDepth != 0 {
		t.Errorf("after pump: %+v", h)
	}
	snap := m.Snapshot()
	if snap.Events[telemetry.EventAdmitReject] != 3 || snap.Events[telemetry.EventShedLow] != 2 {
		t.Errorf("telemetry events: admit-reject=%d shed-low=%d",
			snap.Events[telemetry.EventAdmitReject], snap.Events[telemetry.EventShedLow])
	}
}

func TestHealthDetectsStalledWorker(t *testing.T) {
	cfg := baseCfg(t)
	cfg.FIB32.AddUint32(0, 0, fib.Local)
	var clk atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	r := New(ops.NewRouterRegistry(cfg), Config{
		LocalDelivery: func(pkt []byte, _ int) {
			if pkt[len(pkt)-1] == 0x55 {
				close(started)
				<-release
			}
		},
	})
	in := r.ServeGuarded(ServeConfig{
		Workers: 1, StallAfter: 10 * time.Millisecond,
		Clock: func() time.Duration { return time.Duration(clk.Load()) },
	})
	if !in.Submit(localPkt(t, 0x55), 0) {
		t.Fatal("submit refused")
	}
	<-started
	if h := in.Health(); h.Stalled != 0 {
		t.Errorf("stalled before threshold: %+v", h)
	}
	clk.Store(int64(time.Second))
	if h := in.Health(); h.Stalled != 1 {
		t.Errorf("stall not detected: %+v", h)
	}
	close(release)
	in.Close()
	if h := in.Health(); h.Stalled != 0 {
		t.Errorf("stall persists after worker finished: %+v", h)
	}
	if _, ok := r.Health(); ok {
		t.Error("router still reports an ingress after Close")
	}
}
