package router

import (
	"bytes"
	"encoding/binary"
	"testing"

	"dip/internal/core"
	"dip/internal/cs"
	"dip/internal/drkey"
	"dip/internal/fib"
	"dip/internal/host"
	"dip/internal/ops"
	"dip/internal/pit"
	"dip/internal/profiles"
	"dip/internal/telemetry"
)

type capturePort struct{ pkts [][]byte }

func (c *capturePort) Send(pkt []byte) {
	c.pkts = append(c.pkts, append([]byte(nil), pkt...))
}

func newTestRouter(t *testing.T, cfg ops.Config, rcfg Config) (*Router, []*capturePort) {
	t.Helper()
	r := New(ops.NewRouterRegistry(cfg), rcfg)
	ports := make([]*capturePort, 4)
	for i := range ports {
		ports[i] = &capturePort{}
		r.AttachPort(ports[i])
	}
	return r, ports
}

func baseCfg(t *testing.T) ops.Config {
	t.Helper()
	sv, err := drkey.NewSecretValue("r", bytes.Repeat([]byte{3}, 16))
	if err != nil {
		t.Fatal(err)
	}
	return ops.Config{
		FIB32:   fib.New(),
		FIB128:  fib.New(),
		NameFIB: fib.New(),
		PIT:     pit.New[uint32](),
		Secret:  sv,
	}
}

func pkt(t *testing.T, h *core.Header, payload []byte) []byte {
	t.Helper()
	b, err := host.BuildPacket(h, payload)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestForwardIPv4Profile(t *testing.T) {
	cfg := baseCfg(t)
	cfg.FIB32.AddUint32(0x0A000000, 8, fib.NextHop{Port: 2})
	m := &telemetry.Metrics{}
	r, ports := newTestRouter(t, cfg, Config{Metrics: m})

	p := pkt(t, profiles.IPv4([4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 9}), []byte("hi"))
	r.HandlePacket(p, 0)
	if len(ports[2].pkts) != 1 {
		t.Fatalf("port 2 got %d packets", len(ports[2].pkts))
	}
	out, _ := core.ParseView(ports[2].pkts[0])
	if out.HopLimit() != profiles.DefaultHopLimit-1 {
		t.Errorf("hop limit %d", out.HopLimit())
	}
	if !bytes.Equal(out.Payload(), []byte("hi")) {
		t.Errorf("payload %q", out.Payload())
	}
	snap := m.Snapshot()
	if snap.Forwarded != 1 || snap.Received != 1 {
		t.Errorf("metrics %+v", snap)
	}
}

func TestHopLimitExhaustion(t *testing.T) {
	cfg := baseCfg(t)
	cfg.FIB32.AddUint32(0, 0, fib.NextHop{Port: 1})
	m := &telemetry.Metrics{}
	r, ports := newTestRouter(t, cfg, Config{Metrics: m})
	h := profiles.IPv4([4]byte{1, 1, 1, 1}, [4]byte{2, 2, 2, 2})
	h.HopLimit = 0
	r.HandlePacket(pkt(t, h, nil), 0)
	for _, p := range ports {
		if len(p.pkts) != 0 {
			t.Fatal("expired packet forwarded")
		}
	}
	if m.Snapshot().Drops[core.DropHopLimit] != 1 {
		t.Error("hop-limit drop not counted")
	}
}

func TestMalformedCounted(t *testing.T) {
	m := &telemetry.Metrics{}
	r, _ := newTestRouter(t, baseCfg(t), Config{Metrics: m})
	r.HandlePacket([]byte{1, 2, 3}, 0)
	if m.Snapshot().Drops[core.DropMalformed] != 1 {
		t.Error("malformed drop not counted")
	}
}

func TestLocalDelivery(t *testing.T) {
	cfg := baseCfg(t)
	cfg.FIB32.AddUint32(0x7F000001, 32, fib.Local)
	var delivered []byte
	r, _ := newTestRouter(t, cfg, Config{
		LocalDelivery: func(p []byte, _ int) { delivered = append([]byte(nil), p...) },
	})
	r.HandlePacket(pkt(t, profiles.IPv4([4]byte{1, 1, 1, 1}, [4]byte{127, 0, 0, 1}), []byte("local")), 3)
	if delivered == nil {
		t.Fatal("not delivered")
	}
	v, _ := core.ParseView(delivered)
	if !bytes.Equal(v.Payload(), []byte("local")) {
		t.Errorf("payload %q", v.Payload())
	}
}

func TestPITFanOut(t *testing.T) {
	cfg := baseCfg(t)
	cfg.NameFIB.AddUint32(0xAA000000, 8, fib.NextHop{Port: 3})
	r, ports := newTestRouter(t, cfg, Config{})

	// Interests from ports 0 and 1 (second aggregates).
	r.HandlePacket(pkt(t, profiles.NDNInterest(0xAA000001), nil), 0)
	r.HandlePacket(pkt(t, profiles.NDNInterest(0xAA000001), nil), 1)
	if len(ports[3].pkts) != 1 {
		t.Fatalf("upstream got %d interests, want 1 (aggregation)", len(ports[3].pkts))
	}
	// Data from upstream fans out to both.
	r.HandlePacket(pkt(t, profiles.NDNData(0xAA000001), []byte("content")), 3)
	if len(ports[0].pkts) != 1 || len(ports[1].pkts) != 1 {
		t.Fatalf("fan-out: %d/%d", len(ports[0].pkts), len(ports[1].pkts))
	}
}

func TestCacheReplySynthesis(t *testing.T) {
	cfg := baseCfg(t)
	cfg.NameFIB.AddUint32(0xAA000000, 8, fib.NextHop{Port: 3})
	cfg.ContentStore = cs.New[uint32](8)
	r, ports := newTestRouter(t, cfg, Config{})

	// Prime the cache via a full interest/data exchange.
	r.HandlePacket(pkt(t, profiles.NDNInterest(0xAA000001), nil), 0)
	r.HandlePacket(pkt(t, profiles.NDNData(0xAA000001), []byte("the bits")), 3)
	ports[0].pkts = nil

	// A new interest from port 1 must be answered from the cache on port 1.
	r.HandlePacket(pkt(t, profiles.NDNInterest(0xAA000001), nil), 1)
	if len(ports[3].pkts) != 1 {
		t.Fatalf("upstream interests = %d, want 1 (cache absorbed the second)", len(ports[3].pkts))
	}
	if len(ports[1].pkts) != 1 {
		t.Fatal("no cache reply")
	}
	v, err := core.ParseView(ports[1].pkts[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v.Payload(), []byte("the bits")) {
		t.Errorf("cached payload %q", v.Payload())
	}
	// The reply is a data packet: one F_PIT FN over the same name.
	fn := v.FN(0)
	if fn.Key != core.KeyPIT {
		t.Errorf("reply FN %v", fn)
	}
	if binary.BigEndian.Uint32(v.Locations()) != 0xAA000001 {
		t.Errorf("reply name %#x", binary.BigEndian.Uint32(v.Locations()))
	}
}

func TestFNUnsupportedSignalling(t *testing.T) {
	// A router without OPT state receives an OPT packet whose F_parm demands
	// signalling.
	cfg := ops.Config{FIB32: fib.New()}
	reg := ops.NewRouterRegistry(cfg)
	reg.SetPolicy(core.KeyParm, core.PolicySignal)
	m := &telemetry.Metrics{}
	r := New(reg, Config{Metrics: m})
	in := &capturePort{}
	r.AttachPort(in)

	// An OPT-ish packet that carries F_source so the reply is addressable.
	h := &core.Header{
		HopLimit: 9,
		FNs: []core.FN{
			core.RouterFN(0, 32, core.KeySource),
			core.RouterFN(32, 128, core.KeyParm),
		},
		Locations: append([]byte{9, 9, 9, 9}, make([]byte, 16)...),
	}
	r.HandlePacket(pkt(t, h, nil), 0)
	if len(in.pkts) != 1 {
		t.Fatal("no FN-unsupported reply")
	}
	v, err := core.ParseView(in.pkts[0])
	if err != nil {
		t.Fatal(err)
	}
	key, ok := profiles.ParseFNUnsupported(v)
	if !ok || key != core.KeyParm {
		t.Errorf("parsed %v %v", key, ok)
	}
	// The reply routes to the original source via DIP-32.
	locs := v.Locations()
	if !bytes.Equal(locs[0:4], []byte{9, 9, 9, 9}) {
		t.Errorf("reply dst %v", locs[0:4])
	}
	if m.Snapshot().Drops[core.DropUnsupportedFN] != 1 {
		t.Error("drop not counted")
	}
}

func TestFNUnsupportedWithoutSourceSilent(t *testing.T) {
	reg := ops.NewRouterRegistry(ops.Config{})
	reg.SetPolicy(core.KeyParm, core.PolicySignal)
	r := New(reg, Config{})
	in := &capturePort{}
	r.AttachPort(in)
	h := &core.Header{
		HopLimit:  9,
		FNs:       []core.FN{core.RouterFN(0, 128, core.KeyParm)},
		Locations: make([]byte, 16),
	}
	r.HandlePacket(pkt(t, h, nil), 0)
	if len(in.pkts) != 0 {
		t.Error("unaddressable reply sent anyway")
	}
}

func TestSignallingDisabled(t *testing.T) {
	reg := ops.NewRouterRegistry(ops.Config{})
	reg.SetPolicy(core.KeyParm, core.PolicySignal)
	r := New(reg, Config{DisableSignalling: true})
	in := &capturePort{}
	r.AttachPort(in)
	h := &core.Header{
		HopLimit: 9,
		FNs: []core.FN{
			core.RouterFN(0, 32, core.KeySource),
			core.RouterFN(32, 128, core.KeyParm),
		},
		Locations: make([]byte, 20),
	}
	r.HandlePacket(pkt(t, h, nil), 0)
	if len(in.pkts) != 0 {
		t.Error("signalling not disabled")
	}
}

func TestBuildFNUnsupportedIPv6(t *testing.T) {
	src := bytes.Repeat([]byte{0xAB}, 16)
	msg, err := profiles.BuildFNUnsupported(src, core.KeyMAC)
	if err != nil {
		t.Fatal(err)
	}
	v, err := core.ParseView(msg)
	if err != nil {
		t.Fatal(err)
	}
	key, ok := profiles.ParseFNUnsupported(v)
	if !ok || key != core.KeyMAC {
		t.Errorf("%v %v", key, ok)
	}
	if !bytes.Equal(v.Locations()[0:16], src) {
		t.Error("dst address")
	}
	if _, err := profiles.BuildFNUnsupported(make([]byte, 3), core.KeyMAC); err == nil {
		t.Error("odd source length accepted")
	}
}

func TestParseFNUnsupportedNegative(t *testing.T) {
	b := pkt(t, profiles.NDNInterest(1), nil)
	v, _ := core.ParseView(b)
	if _, ok := profiles.ParseFNUnsupported(v); ok {
		t.Error("data packet parsed as notification")
	}
	// Notification with truncated payload.
	h := profiles.IPv4([4]byte{}, [4]byte{})
	h.NextHeader = profiles.NHFNUnsupported
	v2, _ := core.ParseView(pkt(t, h, []byte{0x01}))
	if _, ok := profiles.ParseFNUnsupported(v2); ok {
		t.Error("truncated notification parsed")
	}
}

func TestOpBudgetLimitEnforced(t *testing.T) {
	cfg := baseCfg(t)
	cfg.FIB32.AddUint32(0, 0, fib.NextHop{Port: 1})
	m := &telemetry.Metrics{}
	r, ports := newTestRouter(t, cfg, Config{Metrics: m, Limits: core.Limits{MaxFNs: 1}})
	// The IPv4 profile carries two router FNs — over the limit of one.
	r.HandlePacket(pkt(t, profiles.IPv4([4]byte{1, 1, 1, 1}, [4]byte{2, 2, 2, 2}), nil), 0)
	if len(ports[1].pkts) != 0 {
		t.Fatal("over-budget packet forwarded")
	}
	if m.Snapshot().Drops[core.DropOpBudget] != 1 {
		t.Error("budget drop not counted")
	}
}

func TestRouterAccessors(t *testing.T) {
	reg := ops.NewRouterRegistry(ops.Config{})
	r := New(reg, Config{Name: "r9"})
	if r.Name() != "r9" || r.Registry() != reg || r.NumPorts() != 0 {
		t.Error("accessors")
	}
	r.AttachPort(PortFunc(func([]byte) {}))
	if r.NumPorts() != 1 {
		t.Error("AttachPort")
	}
	// Forwarding to an unattached port index must not panic.
	r.sendOn(99, []byte{1})
	r.sendOn(-1, []byte{1})
}
