package router

import (
	"sync"
	"sync/atomic"
	"testing"

	"dip/internal/fib"
	"dip/internal/ops"
	"dip/internal/profiles"
)

func TestIngressProcessesAll(t *testing.T) {
	cfg := baseCfg(t)
	cfg.FIB32.AddUint32(0x0A000000, 8, fib.NextHop{Port: 0})
	r := New(ops.NewRouterRegistry(cfg), Config{})
	var forwarded atomic.Int64
	r.AttachPort(PortFunc(func([]byte) { forwarded.Add(1) }))

	in := r.Serve(4, 256)
	const total = 2000
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/4; i++ {
				p := pkt(t, profiles.IPv4([4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 9}), nil)
				for !in.Submit(p, 1) {
					// Queue full: retry (backpressure in a test).
				}
			}
		}()
	}
	wg.Wait()
	in.Close()
	// Every packet was retried until accepted, so every one must have been
	// forwarded (rejected submissions counted as drops but were resubmitted).
	if got := forwarded.Load(); got != total {
		t.Fatalf("forwarded = %d, want %d", got, total)
	}
}

func TestIngressTailDropAndClose(t *testing.T) {
	cfg := baseCfg(t)
	r := New(ops.NewRouterRegistry(cfg), Config{})
	in := r.Serve(1, 1)
	in.Close()
	if in.Submit([]byte{1}, 0) {
		t.Error("submit after close accepted")
	}
	in.Close() // idempotent

	// A fresh ingress with a tiny queue and a blocked worker sheds load.
	block := make(chan struct{})
	cfg2 := baseCfg(t)
	r2 := New(ops.NewRouterRegistry(cfg2), Config{
		LocalDelivery: func([]byte, int) { <-block },
	})
	cfg2.FIB32.AddUint32(0, 0, fib.Local)
	in2 := r2.Serve(1, 1)
	defer in2.Close()
	p := func() []byte {
		return pkt(t, profiles.IPv4([4]byte{1, 1, 1, 1}, [4]byte{2, 2, 2, 2}), nil)
	}
	in2.Submit(p(), 0) // occupies the worker
	in2.Submit(p(), 0) // fills the queue
	dropped := false
	for i := 0; i < 100; i++ {
		if !in2.Submit(p(), 0) {
			dropped = true
			break
		}
	}
	close(block)
	if !dropped {
		t.Error("overload never shed")
	}
	if in2.Dropped() == 0 {
		t.Error("drop counter not advanced")
	}
}
