// Package opt implements the OPT (Kim et al., SIGCOMM 2014) source-
// authentication and path-validation machinery DIP decomposes into
// F_parm, F_MAC, F_mark and F_ver (paper §3).
//
// The OPT state travels in the packet's FN-locations region with this
// layout (bit offsets match the paper's standalone-OPT FN triples):
//
//	bytes  0..16   DataHash   — hash of the payload
//	bytes 16..32   SessionID  — flow tag from key negotiation
//	bytes 32..36   Timestamp
//	bytes 36..52   PVF        — path verification field, updated per hop
//	bytes 52..52+16h  OPV[i]  — one per-hop validation tag
//
// Per-hop processing, in the order the FNs appear in the packet:
//
//	F_parm: K_i ← DRKey(SV_i, SessionID); load prev-validator label, hop index
//	F_MAC : OPV_i ← MAC_{K_i}(DataHash‖SessionID‖Timestamp‖PVF_{i-1} ‖ prevLabel)
//	F_mark: PVF_i ← MAC_{K_i}(PVF_{i-1})
//
// and the destination, which learned every K_i during session setup,
// re-derives the whole chain in F_ver. The MAC is pluggable: 2EM (the
// paper's Tofino-friendly choice) or AES-CMAC (the alternative it rejected
// for hardware reasons), selected per session.
package opt

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"dip/internal/cmac"
	"dip/internal/crypto2em"
)

// Field sizes and offsets within the OPT region, in bytes.
const (
	DataHashOff  = 0
	DataHashSize = 16
	SessionIDOff = 16
	SessionIDLen = 16
	TimestampOff = 32
	TimestampLen = 4
	PVFOff       = 36
	PVFSize      = 16
	OPVOff       = 52
	OPVSize      = 16

	// BaseSize is the region without OPV slots; MACInputSize is what F_MAC
	// and F_mark treat as the pre-OPV state (the paper's 416-bit operand).
	BaseSize     = OPVOff
	MACInputSize = OPVOff
)

// RegionSize returns the OPT region size for a path of h validating hops.
// The paper's evaluation uses h = 1, giving the 68-byte (544-bit) region
// behind Table 2's OPT row.
func RegionSize(hops int) int { return BaseSize + OPVSize*hops }

// RegionBits is RegionSize in bits, the length of the F_ver operand.
func RegionBits(hops int) int { return RegionSize(hops) * 8 }

// Errors from verification, distinguishable so tests and telemetry can tell
// which protection tripped.
var (
	ErrRegionSize  = errors.New("opt: region size mismatch")
	ErrDataHash    = errors.New("opt: payload hash mismatch")
	ErrPVF         = errors.New("opt: path verification field mismatch")
	ErrOPV         = errors.New("opt: per-hop validation tag mismatch")
	ErrUnknownKind = errors.New("opt: unknown MAC kind")
)

// Region is a view over an OPT region inside a packet buffer.
type Region struct{ b []byte }

// AsRegion wraps b (which must be at least BaseSize bytes) as a region.
func AsRegion(b []byte) (Region, error) {
	if len(b) < BaseSize {
		return Region{}, fmt.Errorf("%w: %d bytes < %d", ErrRegionSize, len(b), BaseSize)
	}
	return Region{b: b}, nil
}

// Hops returns how many OPV slots the region carries.
func (r Region) Hops() int { return (len(r.b) - BaseSize) / OPVSize }

// DataHash returns the payload-hash field view.
func (r Region) DataHash() []byte { return r.b[DataHashOff : DataHashOff+DataHashSize] }

// SessionID returns the session-ID field view.
func (r Region) SessionID() []byte { return r.b[SessionIDOff : SessionIDOff+SessionIDLen] }

// Timestamp returns the timestamp field view.
func (r Region) Timestamp() []byte { return r.b[TimestampOff : TimestampOff+TimestampLen] }

// PVF returns the path-verification-field view.
func (r Region) PVF() []byte { return r.b[PVFOff : PVFOff+PVFSize] }

// OPV returns hop i's validation-tag view; i must be < Hops().
func (r Region) OPV(i int) []byte { return r.b[OPVOff+i*OPVSize : OPVOff+(i+1)*OPVSize] }

// MACInput returns the region prefix MACed into OPVs (DataHash through PVF).
func (r Region) MACInput() []byte { return r.b[:MACInputSize] }

// Bytes returns the full region.
func (r Region) Bytes() []byte { return r.b }

// ComputeDataHash writes the 16-byte payload hash (truncated SHA-256) into
// out, which must be DataHashSize long.
func ComputeDataHash(out, payload []byte) {
	if len(out) != DataHashSize {
		panic("opt: ComputeDataHash needs a 16-byte out")
	}
	sum := sha256.Sum256(payload)
	copy(out, sum[:DataHashSize])
}

// MAC is the tag primitive shared by 2EM and AES-CMAC instances.
type MAC interface {
	// SumInto writes the 16-byte tag of msg into out (exactly 16 bytes).
	SumInto(out, msg []byte)
	// Verify reports whether tag is the MAC of msg, in constant time.
	Verify(msg, tag []byte) bool
}

// Kind selects the MAC algorithm for a session.
type Kind uint8

// MAC kinds: the paper's Tofino choice and the alternative it measured
// against.
const (
	Kind2EM Kind = iota
	KindAESCMAC
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Kind2EM:
		return "2EM"
	case KindAESCMAC:
		return "AES-CMAC"
	}
	return "kind(?)"
}

// NewMAC builds a MAC of the given kind from a 16-byte key.
func NewMAC(kind Kind, key []byte) (MAC, error) {
	switch kind {
	case Kind2EM:
		expanded, err := crypto2em.Expand(key)
		if err != nil {
			return nil, err
		}
		return crypto2em.New(expanded)
	case KindAESCMAC:
		return cmac.New(key)
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, kind)
	}
}

// InitPVF seeds the chain at the source: PVF ← MAC_{K_D}(DataHash), binding
// the payload hash under the destination's session key.
func InitPVF(destMAC MAC, r Region) {
	destMAC.SumInto(r.PVF(), r.DataHash())
}

// UpdatePVF applies one hop's mark: PVF ← MAC_{K_i}(PVF), in place. This is
// the work of F_mark.
func UpdatePVF(hopMAC MAC, pvf []byte) {
	if len(pvf) != PVFSize {
		panic("opt: UpdatePVF needs the 16-byte PVF field")
	}
	var tmp [PVFSize]byte
	hopMAC.SumInto(tmp[:], pvf)
	copy(pvf, tmp[:])
}

// ComputeOPV writes hop i's validation tag: MAC_{K_i}(pre-OPV region state ‖
// prevLabel) into out. This is the work of F_MAC; it must run before the
// hop's F_mark so the tag covers PVF_{i-1}.
func ComputeOPV(hopMAC MAC, out, macInput, prevLabel []byte) {
	var msg [MACInputSize + 16]byte
	copy(msg[:], macInput)
	n := MACInputSize + copy(msg[MACInputSize:], prevLabel)
	hopMAC.SumInto(out, msg[:n])
}
