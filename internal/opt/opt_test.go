package opt

import (
	"bytes"
	"errors"
	"testing"

	"dip/internal/drkey"
)

func secrets(t *testing.T, ids ...string) []*drkey.SecretValue {
	t.Helper()
	out := make([]*drkey.SecretValue, len(ids))
	for i, id := range ids {
		sv, err := drkey.NewSecretValue(id, bytes.Repeat([]byte{byte(i + 1)}, 16))
		if err != nil {
			t.Fatal(err)
		}
		out[i] = sv
	}
	return out
}

func pathConfigs(svs []*drkey.SecretValue) []HopConfig {
	hops := make([]HopConfig, len(svs))
	for i, sv := range svs {
		hops[i] = HopConfig{Secret: sv, HopIndex: uint8(i)}
		hops[i].PrevLabel[0] = byte(i + 0x10)
	}
	return hops
}

func TestRegionLayout(t *testing.T) {
	if RegionSize(1) != 68 {
		t.Errorf("RegionSize(1) = %d, want 68 (Table 2's OPT locations)", RegionSize(1))
	}
	if RegionBits(1) != 544 {
		t.Errorf("RegionBits(1) = %d, want 544 (F_ver operand)", RegionBits(1))
	}
	if RegionSize(3) != 100 {
		t.Errorf("RegionSize(3) = %d", RegionSize(3))
	}
	b := make([]byte, RegionSize(2))
	r, err := AsRegion(b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Hops() != 2 {
		t.Errorf("Hops = %d", r.Hops())
	}
	// Field views must tile the region without overlap.
	r.DataHash()[0] = 1
	r.SessionID()[0] = 2
	r.Timestamp()[0] = 3
	r.PVF()[0] = 4
	r.OPV(0)[0] = 5
	r.OPV(1)[0] = 6
	want := []int{0, 16, 32, 36, 52, 68}
	vals := []byte{1, 2, 3, 4, 5, 6}
	for i, off := range want {
		if b[off] != vals[i] {
			t.Errorf("field %d at offset %d: %d", i, off, b[off])
		}
	}
	if _, err := AsRegion(make([]byte, 10)); !errors.Is(err, ErrRegionSize) {
		t.Errorf("short region: %v", err)
	}
}

func TestEndToEndSingleHop(t *testing.T) {
	for _, kind := range []Kind{Kind2EM, KindAESCMAC} {
		t.Run(kind.String(), func(t *testing.T) {
			svs := secrets(t, "r1", "dst")
			hops := pathConfigs(svs[:1])
			sess, err := NewSession(kind, hops, svs[1])
			if err != nil {
				t.Fatal(err)
			}
			payload := []byte("the content of hotnets.org")
			region := make([]byte, RegionSize(1))
			if err := sess.InitRegion(region, payload, 1234); err != nil {
				t.Fatal(err)
			}
			if err := ProcessHop(hops[0], kind, region); err != nil {
				t.Fatal(err)
			}
			if err := sess.Verify(region, payload); err != nil {
				t.Errorf("Verify: %v", err)
			}
		})
	}
}

func TestEndToEndMultiHop(t *testing.T) {
	svs := secrets(t, "r1", "r2", "r3", "dst")
	hops := pathConfigs(svs[:3])
	sess, err := NewSession(Kind2EM, hops, svs[3])
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("multi-hop content")
	region := make([]byte, RegionSize(3))
	if err := sess.InitRegion(region, payload, 99); err != nil {
		t.Fatal(err)
	}
	for _, h := range hops {
		if err := ProcessHop(h, Kind2EM, region); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Verify(region, payload); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestVerifyDetectsPayloadTamper(t *testing.T) {
	svs := secrets(t, "r1", "dst")
	hops := pathConfigs(svs[:1])
	sess, _ := NewSession(Kind2EM, hops, svs[1])
	payload := []byte("original")
	region := make([]byte, RegionSize(1))
	sess.InitRegion(region, payload, 1)
	ProcessHop(hops[0], Kind2EM, region)
	if err := sess.Verify(region, []byte("tampered")); !errors.Is(err, ErrDataHash) {
		t.Errorf("got %v, want ErrDataHash", err)
	}
}

func TestVerifyDetectsSkippedHop(t *testing.T) {
	svs := secrets(t, "r1", "r2", "dst")
	hops := pathConfigs(svs[:2])
	sess, _ := NewSession(Kind2EM, hops, svs[2])
	payload := []byte("content")
	region := make([]byte, RegionSize(2))
	sess.InitRegion(region, payload, 1)
	// Only hop 0 processes — hop 1 was bypassed (path deviation).
	ProcessHop(hops[0], Kind2EM, region)
	if err := sess.Verify(region, payload); err == nil {
		t.Error("skipped hop not detected")
	}
}

func TestVerifyDetectsWrongRouter(t *testing.T) {
	svs := secrets(t, "r1", "impostor", "dst")
	hops := pathConfigs(svs[:1])
	sess, _ := NewSession(Kind2EM, hops, svs[2])
	payload := []byte("content")
	region := make([]byte, RegionSize(1))
	sess.InitRegion(region, payload, 1)
	// An off-path router with a different secret processes instead.
	impostor := HopConfig{Secret: svs[1], HopIndex: 0}
	ProcessHop(impostor, Kind2EM, region)
	err := sess.Verify(region, payload)
	if err == nil {
		t.Fatal("impostor hop not detected")
	}
}

func TestVerifyDetectsTagTamper(t *testing.T) {
	svs := secrets(t, "r1", "dst")
	hops := pathConfigs(svs[:1])
	sess, _ := NewSession(Kind2EM, hops, svs[1])
	payload := []byte("content")

	region := make([]byte, RegionSize(1))
	sess.InitRegion(region, payload, 1)
	ProcessHop(hops[0], Kind2EM, region)
	region[PVFOff] ^= 1
	if err := sess.Verify(region, payload); !errors.Is(err, ErrPVF) {
		t.Errorf("PVF tamper: %v", err)
	}

	region2 := make([]byte, RegionSize(1))
	sess.InitRegion(region2, payload, 1)
	ProcessHop(hops[0], Kind2EM, region2)
	region2[OPVOff] ^= 1
	if err := sess.Verify(region2, payload); !errors.Is(err, ErrOPV) {
		t.Errorf("OPV tamper: %v", err)
	}
}

func TestVerifyDetectsPrevLabelMismatch(t *testing.T) {
	svs := secrets(t, "r1", "dst")
	hops := pathConfigs(svs[:1])
	sess, _ := NewSession(Kind2EM, hops, svs[1])
	payload := []byte("content")
	region := make([]byte, RegionSize(1))
	sess.InitRegion(region, payload, 1)
	wrong := hops[0]
	wrong.PrevLabel[0] ^= 0xFF
	ProcessHop(wrong, Kind2EM, region)
	if err := sess.Verify(region, payload); !errors.Is(err, ErrOPV) {
		t.Errorf("prev-label mismatch: %v", err)
	}
}

func TestSessionIDsUnique(t *testing.T) {
	svs := secrets(t, "r1", "dst")
	hops := pathConfigs(svs[:1])
	s1, _ := NewSession(Kind2EM, hops, svs[1])
	s2, _ := NewSession(Kind2EM, hops, svs[1])
	if s1.ID == s2.ID {
		t.Error("two sessions share an ID")
	}
	if s1.HopKey(0) == s2.HopKey(0) {
		t.Error("hop keys identical across sessions")
	}
}

func TestInitRegionSizeChecked(t *testing.T) {
	svs := secrets(t, "r1", "dst")
	sess, _ := NewSession(Kind2EM, pathConfigs(svs[:1]), svs[1])
	if err := sess.InitRegion(make([]byte, 10), nil, 0); !errors.Is(err, ErrRegionSize) {
		t.Errorf("got %v", err)
	}
	if err := sess.Verify(make([]byte, 10), nil); !errors.Is(err, ErrRegionSize) {
		t.Errorf("got %v", err)
	}
}

func TestProcessHopBadIndex(t *testing.T) {
	svs := secrets(t, "r1", "dst")
	cfg := HopConfig{Secret: svs[0], HopIndex: 5}
	if err := ProcessHop(cfg, Kind2EM, make([]byte, RegionSize(1))); err == nil {
		t.Error("out-of-range hop index accepted")
	}
}

func TestNewMACKinds(t *testing.T) {
	key := make([]byte, 16)
	for _, k := range []Kind{Kind2EM, KindAESCMAC} {
		m, err := NewMAC(k, key)
		if err != nil || m == nil {
			t.Errorf("%v: %v", k, err)
		}
	}
	if _, err := NewMAC(Kind(9), key); !errors.Is(err, ErrUnknownKind) {
		t.Errorf("unknown kind: %v", err)
	}
	if Kind(9).String() != "kind(?)" || Kind2EM.String() != "2EM" {
		t.Error("Kind.String")
	}
}

func TestComputeDataHashPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for bad out size")
		}
	}()
	ComputeDataHash(make([]byte, 8), nil)
}

func BenchmarkProcessHop2EM(b *testing.B)  { benchHop(b, Kind2EM) }
func BenchmarkProcessHopCMAC(b *testing.B) { benchHop(b, KindAESCMAC) }

func benchHop(b *testing.B, kind Kind) {
	sv, _ := drkey.NewSecretValue("r", make([]byte, 16))
	cfg := HopConfig{Secret: sv}
	region := make([]byte, RegionSize(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ProcessHop(cfg, kind, region); err != nil {
			b.Fatal(err)
		}
	}
}

func TestVerifyFresh(t *testing.T) {
	svs := secrets(t, "r1", "dst")
	hops := pathConfigs(svs[:1])
	sess, _ := NewSession(Kind2EM, hops, svs[1])
	payload := []byte("fresh content")
	guard := NewReplayGuard(16)

	mk := func(ts uint32) []byte {
		region := make([]byte, RegionSize(1))
		sess.InitRegion(region, payload, ts)
		ProcessHop(hops[0], Kind2EM, region)
		return region
	}

	// In-window packet accepted once...
	region := mk(1000)
	if err := sess.VerifyFresh(region, payload, 1005, 30, 5, guard); err != nil {
		t.Fatalf("fresh packet rejected: %v", err)
	}
	// ...and rejected as a replay the second time.
	if err := sess.VerifyFresh(region, payload, 1006, 30, 5, guard); !errors.Is(err, ErrReplay) {
		t.Errorf("replay: %v", err)
	}
	// Same timestamp but different payload is a different hash: accepted.
	region2 := make([]byte, RegionSize(1))
	sess.InitRegion(region2, []byte("other content"), 1000)
	ProcessHop(hops[0], Kind2EM, region2)
	if err := sess.VerifyFresh(region2, []byte("other content"), 1005, 30, 5, guard); err != nil {
		t.Errorf("distinct payload rejected: %v", err)
	}

	// Stale packet.
	if err := sess.VerifyFresh(mk(900), payload, 1000, 30, 5, guard); !errors.Is(err, ErrStale) {
		t.Errorf("stale: %v", err)
	}
	// Future-dated beyond skew.
	if err := sess.VerifyFresh(mk(1100), payload, 1000, 30, 5, guard); !errors.Is(err, ErrStale) {
		t.Errorf("future: %v", err)
	}
	// Bad tags still fail first.
	bad := mk(1000)
	bad[PVFOff] ^= 1
	if err := sess.VerifyFresh(bad, payload, 1000, 30, 5, guard); !errors.Is(err, ErrPVF) {
		t.Errorf("tamper: %v", err)
	}
	// Nil guard skips replay protection only.
	r3 := mk(1000)
	if err := sess.VerifyFresh(r3, payload, 1000, 30, 5, nil); err != nil {
		t.Errorf("nil guard: %v", err)
	}
}

func TestReplayGuardBounded(t *testing.T) {
	g := NewReplayGuard(2)
	h := func(b byte) []byte { out := make([]byte, 16); out[0] = b; return out }
	if !g.accept(h(1)) || !g.accept(h(2)) {
		t.Fatal("fresh hashes rejected")
	}
	if g.accept(h(1)) {
		t.Fatal("replay accepted")
	}
	g.accept(h(3)) // evicts h(1)
	if !g.accept(h(1)) {
		t.Error("evicted hash still remembered (not bounded)")
	}
	if NewReplayGuard(0) == nil {
		t.Error("zero capacity")
	}
}
