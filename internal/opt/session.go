package opt

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"dip/internal/drkey"
)

// HopConfig is what one on-path router contributes to a session: its DRKey
// secret and the previous-validator label F_parm hands to F_MAC.
type HopConfig struct {
	Secret    *drkey.SecretValue
	PrevLabel [16]byte
	HopIndex  uint8
}

// Session is the outcome of OPT's key-negotiation handshake, held by the
// source and destination hosts: the session ID plus every hop key. Routers
// never hold a Session — they re-derive their key per packet from the
// session ID in the header (see HopConfig / internal/ops.Parm), which is
// the stateless property OPT is designed around.
type Session struct {
	ID         [drkey.SessionIDSize]byte
	Kind       Kind
	hopKeys    [][16]byte
	hopMACs    []MAC
	prevLabels [][16]byte
	destMAC    MAC
}

// NewSession simulates the OPT key-negotiation handshake for a path through
// the given hops to a destination holding destSecret: it picks a random
// session ID and derives each hop's key the same way the hop itself will
// (DRKey over the session ID), so the source ends up knowing every K_i —
// the contract the real handshake provides.
func NewSession(kind Kind, hops []HopConfig, destSecret *drkey.SecretValue) (*Session, error) {
	s := &Session{Kind: kind}
	if _, err := rand.Read(s.ID[:]); err != nil {
		return nil, err
	}
	for _, h := range hops {
		var k [16]byte
		if err := h.Secret.SessionKey(k[:], s.ID[:]); err != nil {
			return nil, err
		}
		m, err := NewMAC(kind, k[:])
		if err != nil {
			return nil, err
		}
		s.hopKeys = append(s.hopKeys, k)
		s.hopMACs = append(s.hopMACs, m)
		s.prevLabels = append(s.prevLabels, h.PrevLabel)
	}
	var kd [16]byte
	if err := destSecret.SessionKey(kd[:], s.ID[:]); err != nil {
		return nil, err
	}
	dm, err := NewMAC(kind, kd[:])
	if err != nil {
		return nil, err
	}
	s.destMAC = dm
	return s, nil
}

// Hops returns the number of validating hops on the session path.
func (s *Session) Hops() int { return len(s.hopMACs) }

// HopKey returns hop i's derived key (the source-side copy).
func (s *Session) HopKey(i int) [16]byte { return s.hopKeys[i] }

// InitRegion fills a fresh OPT region for a packet with the given payload:
// data hash, session ID, timestamp, and the source-seeded PVF. The region
// must be RegionSize(s.Hops()) bytes.
func (s *Session) InitRegion(region, payload []byte, timestamp uint32) error {
	if len(region) != RegionSize(s.Hops()) {
		return fmt.Errorf("%w: %d bytes, want %d", ErrRegionSize, len(region), RegionSize(s.Hops()))
	}
	r, err := AsRegion(region)
	if err != nil {
		return err
	}
	ComputeDataHash(r.DataHash(), payload)
	copy(r.SessionID(), s.ID[:])
	binary.BigEndian.PutUint32(r.Timestamp(), timestamp)
	InitPVF(s.destMAC, r)
	for i := 0; i < r.Hops(); i++ {
		clear(r.OPV(i))
	}
	return nil
}

// Verify is the destination's F_ver: it re-derives the full tag chain from
// the payload and the session keys and checks every field the on-path
// routers were supposed to produce. The error identifies the first failing
// protection (payload integrity, path chain, or a specific hop's tag).
func (s *Session) Verify(region, payload []byte) error {
	if len(region) != RegionSize(s.Hops()) {
		return fmt.Errorf("%w: %d bytes, want %d", ErrRegionSize, len(region), RegionSize(s.Hops()))
	}
	r, err := AsRegion(region)
	if err != nil {
		return err
	}
	var wantHash [DataHashSize]byte
	ComputeDataHash(wantHash[:], payload)
	if !constEq(wantHash[:], r.DataHash()) {
		return ErrDataHash
	}
	// Replay the chain: state holds the pre-OPV region as hop i saw it.
	var state [MACInputSize]byte
	copy(state[:], r.MACInput())
	pvf := state[PVFOff : PVFOff+PVFSize]
	s.destMAC.SumInto(pvf, wantHash[:])
	for i := 0; i < s.Hops(); i++ {
		var wantOPV [OPVSize]byte
		ComputeOPV(s.hopMACs[i], wantOPV[:], state[:], s.prevLabels[i][:])
		if !constEq(wantOPV[:], r.OPV(i)) {
			return fmt.Errorf("%w: hop %d", ErrOPV, i)
		}
		UpdatePVF(s.hopMACs[i], pvf)
	}
	if !constEq(pvf, r.PVF()) {
		return ErrPVF
	}
	return nil
}

// ProcessHop applies one router's full OPT processing (parm+MAC+mark) to a
// region in place — the native, non-DIP OPT forwarder used to cross-check
// the DIP-decomposed operations and as a baseline.
func ProcessHop(cfg HopConfig, kind Kind, region []byte) error {
	r, err := AsRegion(region)
	if err != nil {
		return err
	}
	if int(cfg.HopIndex) >= r.Hops() {
		return fmt.Errorf("%w: hop index %d, region has %d slots", ErrRegionSize, cfg.HopIndex, r.Hops())
	}
	var k [16]byte
	if err := cfg.Secret.SessionKey(k[:], r.SessionID()); err != nil {
		return err
	}
	m, err := NewMAC(kind, k[:])
	if err != nil {
		return err
	}
	ComputeOPV(m, r.OPV(int(cfg.HopIndex)), r.MACInput(), cfg.PrevLabel[:])
	UpdatePVF(m, r.PVF())
	return nil
}

func constEq(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var v byte
	for i := range a {
		v |= a[i] ^ b[i]
	}
	return v == 0
}

// Freshness and replay protection, the destination-side checks real OPT
// deployments add on top of tag verification: a packet must carry a recent
// timestamp and a data hash the destination has not accepted before.

// ErrStale reports a packet older than the acceptance window.
var ErrStale = errors.New("opt: timestamp outside freshness window")

// ErrReplay reports a packet whose data hash was already accepted.
var ErrReplay = errors.New("opt: replayed packet")

// ReplayGuard remembers recently accepted data hashes in a bounded ring.
// It is safe for concurrent use.
type ReplayGuard struct {
	mu   sync.Mutex
	set  map[[16]byte]struct{}
	ring [][16]byte
	next int
}

// NewReplayGuard remembers up to capacity hashes.
func NewReplayGuard(capacity int) *ReplayGuard {
	if capacity < 1 {
		capacity = 1
	}
	return &ReplayGuard{
		set:  make(map[[16]byte]struct{}, capacity),
		ring: make([][16]byte, capacity),
	}
}

// accept records h, reporting whether it was fresh (false = replay).
func (g *ReplayGuard) accept(h []byte) bool {
	var k [16]byte
	copy(k[:], h)
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.set[k]; dup {
		return false
	}
	delete(g.set, g.ring[g.next])
	g.ring[g.next] = k
	g.next = (g.next + 1) % len(g.ring)
	g.set[k] = struct{}{}
	return true
}

// VerifyFresh is Verify plus freshness and replay checks: the region's
// timestamp must lie within [now-maxAge, now+maxSkew] (both in the unit the
// source stamped, typically seconds) and the data hash must not have been
// accepted before. On success the hash is recorded in the guard.
func (s *Session) VerifyFresh(region, payload []byte, now uint32, maxAge, maxSkew uint32, guard *ReplayGuard) error {
	if err := s.Verify(region, payload); err != nil {
		return err
	}
	r, err := AsRegion(region)
	if err != nil {
		return err
	}
	ts := binary.BigEndian.Uint32(r.Timestamp())
	if ts+maxAge < now || ts > now+maxSkew {
		return fmt.Errorf("%w: stamped %d, now %d", ErrStale, ts, now)
	}
	if guard != nil && !guard.accept(r.DataHash()) {
		return ErrReplay
	}
	return nil
}
