package core

import "testing"

func TestRegistryRegisterGet(t *testing.T) {
	r := NewRegistry()
	op := &testOp{key: KeyFIB}
	if err := r.Register(op); err != nil {
		t.Fatal(err)
	}
	if got := r.Get(KeyFIB); got != op {
		t.Error("Get returned wrong op")
	}
	if r.Get(KeyPIT) != nil {
		t.Error("unregistered key returned op")
	}
	if r.Get(MaxKey+1) != nil {
		t.Error("key above MaxKey returned op")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestRegistryRejects(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(&testOp{key: KeyInvalid}); err == nil {
		t.Error("key 0 accepted")
	}
	if err := r.Register(&testOp{key: MaxKey + 1}); err == nil {
		t.Error("key above MaxKey accepted")
	}
	r.MustRegister(&testOp{key: KeyFIB})
	if err := r.Register(&testOp{key: KeyFIB}); err == nil {
		t.Error("duplicate key accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustRegister did not panic on duplicate")
		}
	}()
	r.MustRegister(&testOp{key: KeyFIB})
}

func TestRegistryDeregister(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(&testOp{key: KeyFIB})
	r.Deregister(KeyFIB)
	if r.Get(KeyFIB) != nil || r.Len() != 0 {
		t.Error("Deregister did not remove")
	}
	r.Deregister(KeyFIB)     // idempotent
	r.Deregister(MaxKey + 5) // out of range is a no-op
}

func TestRegistryPolicy(t *testing.T) {
	r := NewRegistry()
	if r.Policy(42) != PolicyIgnore {
		t.Error("default policy must be ignore")
	}
	r.SetPolicy(42, PolicySignal)
	if r.Policy(42) != PolicySignal {
		t.Error("SetPolicy lost")
	}
	r.SetPolicy(MaxKey+1, PolicySignal) // silently out of range
	if r.Policy(MaxKey+1) != PolicyIgnore {
		t.Error("out-of-range key policy must be ignore")
	}
}

func TestRegistryKeysAndClone(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(&testOp{key: KeyPIT}, &testOp{key: KeyFIB})
	keys := r.Keys()
	if len(keys) != 2 || keys[0] != KeyFIB || keys[1] != KeyPIT {
		t.Errorf("Keys = %v", keys)
	}
	c := r.Clone()
	c.Deregister(KeyFIB)
	if r.Get(KeyFIB) == nil {
		t.Error("Clone shares mutation with original")
	}
	if c.Get(KeyPIT) == nil {
		t.Error("Clone lost registration")
	}
}
