package core

import "fmt"

// Operation is one FN operation module. Implementations are constructed
// with whatever router state they need (a FIB, a PIT, a key store) and
// registered under their key; Execute is then called once per matching FN
// with the packet context and the FN's operand coordinates.
//
// Execute must be safe for concurrent use when the module is registered in
// a router that honours the parallel-execution flag or runs multiple
// forwarding goroutines. Operand bounds are pre-validated by ParseView, so
// implementations may index Locations()[loc/8 : (loc+bits)/8] directly for
// byte-aligned operands.
type Operation interface {
	// Key returns the operation key the module serves.
	Key() Key
	// Name returns the paper-style notation (e.g. "F_FIB") for diagnostics.
	Name() string
	// Execute applies the operation to the operand at bit offset loc, length
	// bits, within ctx.View.Locations(). A non-nil error drops the packet
	// with DropOpError.
	Execute(ctx *ExecContext, loc, bits uint) error
}

// Stager is optionally implemented by Operations to declare their wave for
// parallel execution (packet-parameter parallel flag). Operations in lower
// stages complete before higher stages start; operations sharing a stage
// may run concurrently. The default stage is 1; F_parm implements Stage 0
// because the authentication operations consume its output.
type Stager interface {
	Stage() int
}

// UnknownPolicy says what a router does with a router-tagged FN whose key it
// has no module for (heterogeneous configuration, paper §2.4).
type UnknownPolicy uint8

const (
	// PolicyIgnore skips the FN — correct for operations that do not
	// require every on-path AS to participate.
	PolicyIgnore UnknownPolicy = iota
	// PolicySignal drops the packet and asks the router to return an
	// FN-unsupported message to the source — required for operations like
	// path authentication where partial execution is meaningless.
	PolicySignal
)

// Registry is the dense dispatch table from operation keys to modules,
// mirroring the prototype's "pre-write the operation modules and match them
// by operation key" realization (paper §4.1). Lookup is a bounds check and
// an array index: no hashing, no allocation.
//
// A Registry is built at configuration time and must not be mutated while
// packets are in flight; routers that reconfigure swap whole registries.
type Registry struct {
	ops    [MaxKey + 1]Operation
	policy [MaxKey + 1]UnknownPolicy
	n      int
}

// NewRegistry returns an empty registry where every unknown key is ignored.
func NewRegistry() *Registry { return &Registry{} }

// Register installs op under its key. Registering key 0, a key above
// MaxKey, or a key already taken is a configuration error.
func (r *Registry) Register(op Operation) error {
	k := op.Key()
	if k == KeyInvalid || k > MaxKey {
		return fmt.Errorf("core: cannot register %s under key %d", op.Name(), k)
	}
	if r.ops[k] != nil {
		return fmt.Errorf("core: key %d already registered to %s", k, r.ops[k].Name())
	}
	r.ops[k] = op
	r.n++
	return nil
}

// MustRegister is Register that panics on error, for static configuration.
func (r *Registry) MustRegister(ops ...Operation) {
	for _, op := range ops {
		if err := r.Register(op); err != nil {
			panic(err)
		}
	}
}

// Deregister removes the module under k, if any.
func (r *Registry) Deregister(k Key) {
	if k <= MaxKey && r.ops[k] != nil {
		r.ops[k] = nil
		r.n--
	}
}

// Get returns the module registered under k, or nil.
func (r *Registry) Get(k Key) Operation {
	if k > MaxKey {
		return nil
	}
	return r.ops[k]
}

// Len returns the number of registered modules.
func (r *Registry) Len() int { return r.n }

// SetPolicy declares how packets carrying an unsupported k are handled.
// Keys above MaxKey share the PolicyIgnore default and cannot be changed.
func (r *Registry) SetPolicy(k Key, p UnknownPolicy) {
	if k <= MaxKey {
		r.policy[k] = p
	}
}

// Policy returns the unknown-key policy for k.
func (r *Registry) Policy(k Key) UnknownPolicy {
	if k > MaxKey {
		return PolicyIgnore
	}
	return r.policy[k]
}

// Keys lists the registered keys in ascending order (diagnostics and FN
// catalog advertisement).
func (r *Registry) Keys() []Key {
	out := make([]Key, 0, r.n)
	for k := Key(1); k <= MaxKey; k++ {
		if r.ops[k] != nil {
			out = append(out, k)
		}
	}
	return out
}

// Clone returns a copy of the registry sharing the same operation modules;
// useful for building per-router variations of a base catalog.
func (r *Registry) Clone() *Registry {
	c := *r
	return &c
}
