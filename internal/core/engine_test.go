package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testOp is a configurable operation module for engine tests.
type testOp struct {
	key   Key
	stage int
	fn    func(ctx *ExecContext, loc, bits uint) error
	calls atomic.Int64
}

func (o *testOp) Key() Key     { return o.key }
func (o *testOp) Name() string { return o.key.String() }
func (o *testOp) Stage() int   { return o.stage }
func (o *testOp) Execute(ctx *ExecContext, loc, bits uint) error {
	o.calls.Add(1)
	if o.fn != nil {
		return o.fn(ctx, loc, bits)
	}
	return nil
}

func buildPacket(t *testing.T, h *Header) View {
	t.Helper()
	b, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	v, err := ParseView(b)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestEngineSequentialDispatch(t *testing.T) {
	reg := NewRegistry()
	var order []Key
	var mu sync.Mutex
	mk := func(k Key) *testOp {
		return &testOp{key: k, stage: 1, fn: func(*ExecContext, uint, uint) error {
			mu.Lock()
			order = append(order, k)
			mu.Unlock()
			return nil
		}}
	}
	reg.MustRegister(mk(KeyFIB), mk(KeyParm), mk(KeyMAC))
	e := NewEngine(reg, Limits{})
	v := buildPacket(t, &Header{
		FNs: []FN{
			RouterFN(0, 8, KeyFIB),
			HostFN(0, 8, KeyVer), // must be skipped
			RouterFN(0, 8, KeyParm),
			RouterFN(0, 8, KeyMAC),
		},
		Locations: make([]byte, 1),
	})
	var ctx ExecContext
	ctx.Reset(v, 0)
	e.Process(&ctx)
	if ctx.Verdict != VerdictContinue {
		t.Errorf("verdict %v", ctx.Verdict)
	}
	want := []Key{KeyFIB, KeyParm, KeyMAC}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Errorf("execution order %v, want %v", order, want)
	}
}

func TestEngineHostTagSkipped(t *testing.T) {
	reg := NewRegistry()
	op := &testOp{key: KeyVer}
	reg.MustRegister(op)
	e := NewEngine(reg, Limits{})
	v := buildPacket(t, &Header{
		FNs:       []FN{HostFN(0, 8, KeyVer)},
		Locations: make([]byte, 1),
	})
	var ctx ExecContext
	ctx.Reset(v, 0)
	e.Process(&ctx)
	if op.calls.Load() != 0 {
		t.Error("host-tagged FN executed by router engine")
	}
}

func TestEngineDropAborts(t *testing.T) {
	reg := NewRegistry()
	dropper := &testOp{key: KeyFIB, fn: func(ctx *ExecContext, _, _ uint) error {
		ctx.Drop(DropNoRoute)
		return nil
	}}
	after := &testOp{key: KeyMAC}
	reg.MustRegister(dropper, after)
	e := NewEngine(reg, Limits{})
	v := buildPacket(t, &Header{
		FNs:       []FN{RouterFN(0, 8, KeyFIB), RouterFN(0, 8, KeyMAC)},
		Locations: make([]byte, 1),
	})
	var ctx ExecContext
	ctx.Reset(v, 0)
	e.Process(&ctx)
	if ctx.Verdict != VerdictDrop || ctx.Reason != DropNoRoute {
		t.Errorf("verdict %v/%v", ctx.Verdict, ctx.Reason)
	}
	if after.calls.Load() != 0 {
		t.Error("operation after drop executed")
	}
}

func TestEngineOpErrorDrops(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(&testOp{key: KeyFIB, fn: func(*ExecContext, uint, uint) error {
		return errors.New("boom")
	}})
	e := NewEngine(reg, Limits{})
	v := buildPacket(t, &Header{FNs: []FN{RouterFN(0, 8, KeyFIB)}, Locations: make([]byte, 1)})
	var ctx ExecContext
	ctx.Reset(v, 0)
	e.Process(&ctx)
	if ctx.Verdict != VerdictDrop || ctx.Reason != DropOpError {
		t.Errorf("verdict %v/%v", ctx.Verdict, ctx.Reason)
	}
}

func TestEngineUnknownKeyPolicies(t *testing.T) {
	reg := NewRegistry()
	after := &testOp{key: KeyMAC}
	reg.MustRegister(after)
	e := NewEngine(reg, Limits{})
	v := buildPacket(t, &Header{
		FNs:       []FN{RouterFN(0, 8, 99), RouterFN(0, 8, KeyMAC)},
		Locations: make([]byte, 1),
	})

	// Default: ignore and continue (§2.4).
	var ctx ExecContext
	ctx.Reset(v, 0)
	e.Process(&ctx)
	if ctx.Verdict != VerdictContinue || after.calls.Load() != 1 {
		t.Errorf("ignore policy: verdict %v calls %d", ctx.Verdict, after.calls.Load())
	}

	// Signal: drop and flag for FN-unsupported messaging.
	reg.SetPolicy(99, PolicySignal)
	ctx.Reset(v, 0)
	e.Process(&ctx)
	if ctx.Verdict != VerdictDrop || ctx.Reason != DropUnsupportedFN {
		t.Errorf("signal policy: verdict %v/%v", ctx.Verdict, ctx.Reason)
	}
	if !ctx.SignalUnsupported || ctx.UnsupportedKey != 99 {
		t.Errorf("signal fields: %v key %v", ctx.SignalUnsupported, ctx.UnsupportedKey)
	}
	if after.calls.Load() != 1 {
		t.Error("operation after signalled unsupported FN executed")
	}
}

func TestEngineKeyAboveMaxKeyIgnored(t *testing.T) {
	reg := NewRegistry()
	e := NewEngine(reg, Limits{})
	v := buildPacket(t, &Header{FNs: []FN{RouterFN(0, 8, 0x7FFF)}, Locations: make([]byte, 1)})
	var ctx ExecContext
	ctx.Reset(v, 0)
	e.Process(&ctx)
	if ctx.Verdict != VerdictContinue {
		t.Errorf("verdict %v", ctx.Verdict)
	}
}

func TestEngineOpBudget(t *testing.T) {
	reg := NewRegistry()
	op := &testOp{key: KeyFIB}
	reg.MustRegister(op)
	e := NewEngine(reg, Limits{MaxFNs: 2})
	v := buildPacket(t, &Header{
		FNs: []FN{
			RouterFN(0, 8, KeyFIB), RouterFN(0, 8, KeyFIB), RouterFN(0, 8, KeyFIB),
			HostFN(0, 8, KeyVer), // host FNs do not count against the budget
		},
		Locations: make([]byte, 1),
	})
	var ctx ExecContext
	ctx.Reset(v, 0)
	e.Process(&ctx)
	if ctx.Verdict != VerdictDrop || ctx.Reason != DropOpBudget {
		t.Errorf("verdict %v/%v", ctx.Verdict, ctx.Reason)
	}
	if op.calls.Load() != 0 {
		t.Error("ops executed despite budget violation")
	}
	// Exactly at the limit passes.
	v2 := buildPacket(t, &Header{
		FNs:       []FN{RouterFN(0, 8, KeyFIB), RouterFN(0, 8, KeyFIB), HostFN(0, 8, KeyVer)},
		Locations: make([]byte, 1),
	})
	ctx.Reset(v2, 0)
	e.Process(&ctx)
	if ctx.Verdict != VerdictContinue {
		t.Errorf("at-limit verdict %v/%v", ctx.Verdict, ctx.Reason)
	}
}

func TestEngineDeadline(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(&testOp{key: KeyFIB, fn: func(*ExecContext, uint, uint) error {
		time.Sleep(2 * time.Millisecond)
		return nil
	}})
	e := NewEngine(reg, Limits{Deadline: time.Millisecond})
	v := buildPacket(t, &Header{
		FNs:       []FN{RouterFN(0, 8, KeyFIB), RouterFN(0, 8, KeyFIB)},
		Locations: make([]byte, 1),
	})
	var ctx ExecContext
	ctx.Reset(v, 0)
	e.Process(&ctx)
	if ctx.Verdict != VerdictDrop || ctx.Reason != DropDeadline {
		t.Errorf("verdict %v/%v", ctx.Verdict, ctx.Reason)
	}
}

func TestEngineStateBudget(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(&testOp{key: KeyPIT, fn: func(ctx *ExecContext, _, _ uint) error {
		ctx.ChargeState(64)
		return nil
	}})
	e := NewEngine(reg, Limits{MaxStateBytes: 100})
	v := buildPacket(t, &Header{
		FNs:       []FN{RouterFN(0, 8, KeyPIT), RouterFN(0, 8, KeyPIT)},
		Locations: make([]byte, 1),
	})
	var ctx ExecContext
	ctx.Reset(v, 0)
	e.Process(&ctx)
	if ctx.Verdict != VerdictDrop || ctx.Reason != DropStateBudget {
		t.Errorf("verdict %v/%v", ctx.Verdict, ctx.Reason)
	}
	// Without a limit, unlimited state is fine.
	e2 := NewEngine(reg, Limits{})
	ctx.Reset(v, 0)
	e2.Process(&ctx)
	if ctx.Verdict != VerdictContinue {
		t.Errorf("unlimited verdict %v", ctx.Verdict)
	}
}

func TestEngineParallelStages(t *testing.T) {
	reg := NewRegistry()
	var stage0Done atomic.Bool
	parm := &testOp{key: KeyParm, stage: 0, fn: func(ctx *ExecContext, _, _ uint) error {
		time.Sleep(time.Millisecond) // make ordering violations likely to show
		ctx.Crypto.HaveKey = true
		stage0Done.Store(true)
		return nil
	}}
	sawKey := atomic.Bool{}
	mac := &testOp{key: KeyMAC, stage: 1, fn: func(ctx *ExecContext, _, _ uint) error {
		if !stage0Done.Load() {
			t.Error("stage-1 op ran before stage-0 completed")
		}
		sawKey.Store(ctx.Crypto.HaveKey)
		return nil
	}}
	mark := &testOp{key: KeyMark, stage: 1}
	reg.MustRegister(parm, mac, mark)
	e := NewEngine(reg, Limits{})
	v := buildPacket(t, &Header{
		Parallel: true,
		FNs: []FN{
			RouterFN(0, 8, KeyMAC),
			RouterFN(0, 8, KeyParm),
			RouterFN(0, 8, KeyMark),
		},
		Locations: make([]byte, 1),
	})
	var ctx ExecContext
	ctx.Reset(v, 0)
	e.Process(&ctx)
	if ctx.Verdict != VerdictContinue {
		t.Errorf("verdict %v", ctx.Verdict)
	}
	if !sawKey.Load() {
		t.Error("crypto state from stage 0 not visible in stage 1")
	}
	if mac.calls.Load() != 1 || mark.calls.Load() != 1 || parm.calls.Load() != 1 {
		t.Error("not all ops executed exactly once")
	}
	if !ctx.Crypto.HaveKey {
		t.Error("crypto state not merged back into the parent context")
	}
}

func TestEngineParallelMergesVerdicts(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(
		&testOp{key: KeyFIB, stage: 1, fn: func(ctx *ExecContext, _, _ uint) error {
			ctx.AddEgress(3)
			return nil
		}},
		&testOp{key: KeyPIT, stage: 1, fn: func(ctx *ExecContext, _, _ uint) error {
			ctx.AddEgress(5)
			return nil
		}},
	)
	e := NewEngine(reg, Limits{})
	v := buildPacket(t, &Header{
		Parallel:  true,
		FNs:       []FN{RouterFN(0, 8, KeyFIB), RouterFN(0, 8, KeyPIT)},
		Locations: make([]byte, 1),
	})
	var ctx ExecContext
	ctx.Reset(v, 0)
	e.Process(&ctx)
	if ctx.Verdict != VerdictForward {
		t.Fatalf("verdict %v", ctx.Verdict)
	}
	ports := ctx.EgressPorts()
	if len(ports) != 2 {
		t.Fatalf("egress %v", ports)
	}
	seen := map[int]bool{ports[0]: true, ports[1]: true}
	if !seen[3] || !seen[5] {
		t.Errorf("egress %v", ports)
	}
}

func TestEngineParallelDropWins(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(
		&testOp{key: KeyFIB, stage: 1, fn: func(ctx *ExecContext, _, _ uint) error {
			ctx.AddEgress(1)
			return nil
		}},
		&testOp{key: KeyPass, stage: 1, fn: func(ctx *ExecContext, _, _ uint) error {
			ctx.Drop(DropGuard)
			return nil
		}},
	)
	e := NewEngine(reg, Limits{})
	v := buildPacket(t, &Header{
		Parallel:  true,
		FNs:       []FN{RouterFN(0, 8, KeyFIB), RouterFN(0, 8, KeyPass)},
		Locations: make([]byte, 1),
	})
	var ctx ExecContext
	ctx.Reset(v, 0)
	e.Process(&ctx)
	if ctx.Verdict != VerdictDrop || ctx.Reason != DropGuard {
		t.Errorf("verdict %v/%v", ctx.Verdict, ctx.Reason)
	}
}

func TestEngineParallelStateBudgetMerged(t *testing.T) {
	reg := NewRegistry()
	mkCharge := func(k Key) *testOp {
		return &testOp{key: k, stage: 1, fn: func(ctx *ExecContext, _, _ uint) error {
			ctx.ChargeState(60)
			return nil
		}}
	}
	reg.MustRegister(mkCharge(KeyFIB), mkCharge(KeyPIT))
	e := NewEngine(reg, Limits{MaxStateBytes: 100})
	v := buildPacket(t, &Header{
		Parallel:  true,
		FNs:       []FN{RouterFN(0, 8, KeyFIB), RouterFN(0, 8, KeyPIT)},
		Locations: make([]byte, 1),
	})
	var ctx ExecContext
	ctx.Reset(v, 0)
	e.Process(&ctx)
	// Each copy individually passes (60 ≤ 100) but the merged total (120)
	// must violate the budget.
	if ctx.Verdict != VerdictDrop || ctx.Reason != DropStateBudget {
		t.Errorf("verdict %v/%v", ctx.Verdict, ctx.Reason)
	}
}

type countingRecorder struct {
	mu    sync.Mutex
	ops   map[Key]int
	drops map[DropReason]int
}

func (r *countingRecorder) RecordOp(k Key, _ time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops[k]++
}
func (r *countingRecorder) RecordDrop(d DropReason) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.drops[d]++
}

func TestEngineRecorder(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(
		&testOp{key: KeyFIB},
		&testOp{key: KeyMAC, fn: func(ctx *ExecContext, _, _ uint) error {
			ctx.Drop(DropVerifyFailed)
			return nil
		}},
	)
	e := NewEngine(reg, Limits{})
	rec := &countingRecorder{ops: map[Key]int{}, drops: map[DropReason]int{}}
	e.SetRecorder(rec)
	v := buildPacket(t, &Header{
		FNs:       []FN{RouterFN(0, 8, KeyFIB), RouterFN(0, 8, KeyMAC)},
		Locations: make([]byte, 1),
	})
	var ctx ExecContext
	ctx.Reset(v, 0)
	e.Process(&ctx)
	if rec.ops[KeyFIB] != 1 || rec.ops[KeyMAC] != 1 {
		t.Errorf("op counts %v", rec.ops)
	}
	if rec.drops[DropVerifyFailed] != 1 {
		t.Errorf("drop counts %v", rec.drops)
	}
}

func TestContextEgressDedupAndCap(t *testing.T) {
	var ctx ExecContext
	ctx.Reset(View{b: make([]byte, BasicHeaderSize)}, 0)
	ctx.AddEgress(1)
	ctx.AddEgress(1)
	if ctx.NEgr != 1 {
		t.Errorf("dup egress not collapsed: %d", ctx.NEgr)
	}
	for p := 0; p < 20; p++ {
		ctx.AddEgress(p)
	}
	if ctx.NEgr != maxEgress {
		t.Errorf("egress overflow not capped: %d", ctx.NEgr)
	}
}

func TestVerdictPrecedence(t *testing.T) {
	var ctx ExecContext
	ctx.Reset(View{b: make([]byte, BasicHeaderSize)}, 0)
	ctx.AddEgress(1)
	if ctx.Verdict != VerdictForward {
		t.Fatal("forward not set")
	}
	ctx.Deliver()
	if ctx.Verdict != VerdictDeliver {
		t.Error("deliver must beat forward")
	}
	ctx.Drop(DropGuard)
	ctx.Drop(DropNoRoute)
	if ctx.Verdict != VerdictDrop || ctx.Reason != DropGuard {
		t.Error("first drop reason must win")
	}
	if DropGuard.String() != "guard" || VerdictDrop.String() != "drop" {
		t.Error("string methods")
	}
}

// The zero-allocation guarantee the GC-mitigation story rests on.
func TestProcessSequentialZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(&testOp{key: KeyMatch32, fn: func(ctx *ExecContext, _, _ uint) error {
		ctx.AddEgress(2)
		return nil
	}})
	e := NewEngine(reg, Limits{})
	b, _ := (&Header{
		FNs:       []FN{RouterFN(0, 32, KeyMatch32), RouterFN(32, 32, KeySource)},
		Locations: make([]byte, 8),
	}).MarshalBinary()
	var ctx ExecContext
	allocs := testing.AllocsPerRun(1000, func() {
		v, err := ParseView(b)
		if err != nil {
			t.Fatal(err)
		}
		ctx.Reset(v, 0)
		e.Process(&ctx)
	})
	if allocs != 0 {
		t.Errorf("sequential forwarding allocates %.1f per packet", allocs)
	}
}

// The engine must be safe under concurrent Process calls from multiple
// forwarding goroutines sharing one registry (run with -race).
func TestEngineConcurrentForwarding(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(&testOp{key: KeyMatch32, fn: func(ctx *ExecContext, _, _ uint) error {
		ctx.AddEgress(1)
		return nil
	}})
	e := NewEngine(reg, Limits{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, _ := (&Header{
				FNs:       []FN{RouterFN(0, 32, KeyMatch32)},
				Locations: make([]byte, 4),
			}).MarshalBinary()
			var ctx ExecContext
			for i := 0; i < 2000; i++ {
				v, err := ParseView(b)
				if err != nil {
					t.Error(err)
					return
				}
				ctx.Reset(v, 0)
				e.Process(&ctx)
				if ctx.Verdict != VerdictForward {
					t.Errorf("verdict %v", ctx.Verdict)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// SwapRegistry under live traffic must never expose a torn table.
func TestEngineSwapRegistryConcurrent(t *testing.T) {
	mk := func(port int) *Registry {
		r := NewRegistry()
		r.MustRegister(&testOp{key: KeyMatch32, fn: func(ctx *ExecContext, _, _ uint) error {
			ctx.AddEgress(port)
			return nil
		}})
		return r
	}
	a, bReg := mk(1), mk(2)
	e := NewEngine(a, Limits{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			e.SwapRegistry(bReg)
			e.SwapRegistry(a)
		}
	}()
	buf, _ := (&Header{
		FNs:       []FN{RouterFN(0, 32, KeyMatch32)},
		Locations: make([]byte, 4),
	}).MarshalBinary()
	var ctx ExecContext
	for i := 0; i < 2000; i++ {
		v, _ := ParseView(buf)
		ctx.Reset(v, 0)
		e.Process(&ctx)
		if ctx.Verdict != VerdictForward {
			t.Fatalf("verdict %v", ctx.Verdict)
		}
		if p := ctx.EgressPorts()[0]; p != 1 && p != 2 {
			t.Fatalf("torn registry: port %d", p)
		}
	}
	<-done
}
