// Package core implements the DIP protocol core: the Field Operation (FN)
// primitive, the DIP packet header wire format, and the per-hop execution
// engine of Algorithm 1 in the paper.
//
// An FN is a triple (field location, field length, operation key). The
// location and length, measured in bits, name an operand inside the packet's
// shared FN-locations region; the key names the operation module a router
// applies to that operand. A single packet carries an ordered list of FNs,
// and that list — not a fixed protocol definition — determines how every
// hop processes the packet. Protocols such as IP, NDN, OPT and XIA are
// realized purely as FN compositions (see internal/profiles).
//
// Everything on the forwarding path is allocation-free: headers are parsed
// as in-place views over the received buffer, operation dispatch goes
// through a dense array, and execution contexts are caller-owned and
// reusable.
package core

import "fmt"

// Key identifies an operation module. Keys are 15 bits on the wire; the
// 16th (most significant) bit of the operation-key field is the host/router
// tag and is not part of the Key.
type Key uint16

// Operation keys from Table 1 of the paper, plus F_pass from §2.4.
const (
	// KeyInvalid is the zero Key; no operation may register under it.
	KeyInvalid Key = 0
	// KeyMatch32 — F_32_match: 32-bit address longest-prefix match.
	KeyMatch32 Key = 1
	// KeyMatch128 — F_128_match: 128-bit address longest-prefix match.
	KeyMatch128 Key = 2
	// KeySource — F_source: marks the operand as the packet's source address.
	KeySource Key = 3
	// KeyFIB — F_FIB: forwarding-information-base match on a content name.
	KeyFIB Key = 4
	// KeyPIT — F_PIT: pending-interest-table match on a content name.
	KeyPIT Key = 5
	// KeyParm — F_parm: derive the hop key and load authentication parameters.
	KeyParm Key = 6
	// KeyMAC — F_MAC: compute the hop's MAC over the operand region.
	KeyMAC Key = 7
	// KeyMark — F_mark: update the path-verification mark (OPT's PVF).
	KeyMark Key = 8
	// KeyVer — F_ver: destination verification of source and path.
	KeyVer Key = 9
	// KeyDAG — F_DAG: parse and traverse an XIA directed-acyclic-graph address.
	KeyDAG Key = 10
	// KeyIntent — F_intent: handle an XIA intent node.
	KeyIntent Key = 11
	// KeyPass — F_pass: source-label verification (content-poisoning defense,
	// paper §2.4).
	KeyPass Key = 12
	// KeyTraceCtx — F_trace: an extension FN (not in the paper's Table 1)
	// whose operand carries an explicit 64-bit trace identifier for
	// end-to-end journey tracing (internal/journey). It is host-tagged and
	// passive: routers skip it per Algorithm 1, hosts without a module fall
	// through to PolicyIgnore, so carrying it is always safe — exactly the
	// §2.4 extensibility story (new FNs deploy without touching routers).
	KeyTraceCtx Key = 13
	// KeyCtl — F_ctl: an extension FN (not in the paper's Table 1) marking
	// a control-plane message addressed to whichever router receives it.
	// Executing it delivers the packet to the node's local control stack
	// (route exchange, §2.3 bootstrap) instead of forwarding — the in-fabric
	// hop-by-hop transport the distributed control plane rides on. It takes
	// 15, not 14: the extops modules (F_cc=13, F_tel=14) register dynamically,
	// and F_ctl — installed in every router registry by default — must not
	// shadow them. (F_trace sharing 13 is harmless: it is passive and never
	// registered on routers.)
	KeyCtl Key = 15
)

// MaxKey is the largest key the dense dispatch table supports. Wire keys
// above MaxKey are valid to carry but are treated as unsupported operations
// by every router in this implementation (the heterogeneous-configuration
// path of §2.4 then applies).
const MaxKey Key = 255

// keyNames maps well-known keys to the paper's notation.
var keyNames = map[Key]string{
	KeyMatch32:  "F_32_match",
	KeyMatch128: "F_128_match",
	KeySource:   "F_source",
	KeyFIB:      "F_FIB",
	KeyPIT:      "F_PIT",
	KeyParm:     "F_parm",
	KeyMAC:      "F_MAC",
	KeyMark:     "F_mark",
	KeyVer:      "F_ver",
	KeyDAG:      "F_DAG",
	KeyIntent:   "F_intent",
	KeyPass:     "F_pass",
	KeyTraceCtx: "F_trace",
	KeyCtl:      "F_ctl",
}

// String returns the paper's notation for well-known keys and "key(n)"
// otherwise.
func (k Key) String() string {
	if n, ok := keyNames[k]; ok {
		return n
	}
	return fmt.Sprintf("key(%d)", uint16(k))
}
