package core

import (
	"bytes"
	"testing"
)

// FuzzParseView: arbitrary bytes must never panic the parser, and anything
// it accepts must be internally consistent (accessors in bounds,
// re-marshalling reproduces the header).
func FuzzParseView(f *testing.F) {
	seed, _ := (&Header{
		NextHeader: 6,
		HopLimit:   64,
		FNs: []FN{
			RouterFN(0, 32, KeyMatch32),
			HostFN(0, 544, KeyVer),
		},
		Locations: make([]byte, 68),
	}).MarshalBinary()
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{Version, 0, 0, 0, 0, 0})
	f.Add([]byte{Version, 0, 255, 0, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := ParseView(data)
		if err != nil {
			return
		}
		// Everything the view exposes must be safe to touch.
		_ = v.NextHeader()
		_ = v.HopLimit()
		_ = v.Parallel()
		_ = v.Payload()
		_ = v.String()
		locs := v.Locations()
		for i := 0; i < v.FNNum(); i++ {
			fn := v.FN(i)
			// Operand bounds were validated at parse time.
			if int(fn.Loc)+int(fn.Len) > len(locs)*8 {
				t.Fatalf("FN %d operand out of validated bounds: %v over %d bytes", i, fn, len(locs))
			}
		}
		// Round trip: decode to builder form and re-encode.
		var h Header
		if err := h.UnmarshalBinary(data); err != nil {
			t.Fatalf("view parsed but builder decode failed: %v", err)
		}
		re, err := h.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(re, data[:v.HeaderLen()]) {
			t.Fatalf("re-marshal differs:\n%x\n%x", re, data[:v.HeaderLen()])
		}
	})
}

// FuzzEngineProcess: the engine must never panic on any parseable packet,
// whatever the FN contents, with a fully loaded registry of misbehaving
// test operations.
func FuzzEngineProcess(f *testing.F) {
	seed, _ := (&Header{
		FNs:       []FN{RouterFN(0, 16, KeyFIB), RouterFN(8, 8, KeyPIT)},
		Locations: []byte{1, 2, 3},
	}).MarshalBinary()
	f.Add(seed, false)
	f.Add(seed, true)
	f.Fuzz(func(t *testing.T, data []byte, parallel bool) {
		v, err := ParseView(data)
		if err != nil {
			return
		}
		if parallel && len(data) > 4 {
			data[4] |= 0x80 // force the parallel flag
			v, err = ParseView(data)
			if err != nil {
				return
			}
		}
		reg := NewRegistry()
		for k := Key(1); k <= 16; k++ {
			k := k
			reg.MustRegister(&testOp{key: k, stage: int(k) % 3, fn: func(ctx *ExecContext, loc, bits uint) error {
				// Touch the operand region like a real op would.
				locs := ctx.View.Locations()
				if int(loc)+int(bits) > len(locs)*8 {
					t.Fatalf("engine passed out-of-bounds operand [%d,+%d) of %d bytes", loc, bits, len(locs))
				}
				switch k % 4 {
				case 0:
					ctx.AddEgress(int(k))
				case 1:
					ctx.Drop(DropGuard)
				case 2:
					ctx.Deliver()
				}
				return nil
			}})
		}
		e := NewEngine(reg, Limits{MaxFNs: 32, MaxStateBytes: 1024})
		var ctx ExecContext
		ctx.Reset(v, 0)
		e.Process(&ctx)
		if ctx.Verdict > VerdictDrop {
			t.Fatalf("impossible verdict %d", ctx.Verdict)
		}
	})
}
