package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// Limits are the per-packet security limits of paper §2.4: "enforcing a
// hard limit for packet processing time and per-packet state consumption is
// enough to prevent such attacks". Zero values mean "wire maximum" for
// MaxFNs and "unlimited" for the others.
type Limits struct {
	// MaxFNs caps router-executed operations per packet.
	MaxFNs int
	// Deadline caps wall-clock processing time per packet.
	Deadline time.Duration
	// MaxStateBytes caps router state (PIT entries, cache insertions, …)
	// one packet may create.
	MaxStateBytes int
}

// monoBase anchors the engine's per-op latency reads: durations are taken
// as differences of time.Since(monoBase), which touches only the monotonic
// clock instead of time.Now's wall+mono pair.
var monoBase = time.Now()

// MonoBase is the process-wide anchor of ExecContext.MonoNow readings.
// Modules converting MonoNow to wall time subtract their own construction
// instant's offset from it (see extops.Tel).
func MonoBase() time.Time { return monoBase }

// Recorder receives execution telemetry. Implementations must be safe for
// concurrent use. A nil Recorder disables recording with no timing overhead.
type Recorder interface {
	RecordOp(k Key, d time.Duration)
	RecordDrop(r DropReason)
}

// PacketRecorder is an optional extension of Recorder with per-packet
// bracket hooks. When the recorder installed via SetRecorder implements it,
// the engine calls BeginPacket once before any FN of a packet executes and
// EndPacket exactly once after the verdict is final — the seam a sampled
// per-packet tracer hangs off (internal/trace). BeginPacket decides whether
// this packet is traced; if so it attaches a TraceSink to the context, and
// the engine reports each executed FN to that sink. Both hooks must be safe
// for concurrent use and must not allocate on the unsampled path, which is
// held to the zero-alloc forwarding baseline.
type PacketRecorder interface {
	Recorder
	BeginPacket(ctx *ExecContext)
	EndPacket(ctx *ExecContext)
}

// BurstSampler is an optional extension of PacketRecorder for batched
// run-to-completion dataplanes. Instead of paying a striped atomic
// counter update in BeginPacket for every packet, a forwarder goroutine
// asks the recorder for a private BurstPlan once and then consults it
// with plain local arithmetic, charging the shared counters once per
// burst. Only the outermost recorder installed on an engine may be
// consulted for burst plans: a wrapping recorder (journey taps) that
// forwards BeginPacket to an inner recorder must NOT implement
// BurstSampler, or the hints it honours would silently distort the inner
// recorder's sampling rate.
type BurstSampler interface {
	PacketRecorder
	// NewBurstPlan returns a plan private to one forwarding goroutine.
	// Plans are not safe for concurrent use.
	NewBurstPlan() BurstPlan
}

// BurstPlan is one forwarder's amortized sampling state. The forwarder
// brackets each burst with BeginBurst(n) and then calls Hint once per
// packet, stamping the result on the ExecContext before Process.
type BurstPlan interface {
	// BeginBurst accounts a burst of n packets against the recorder's
	// shared observation counters in one step.
	BeginBurst(n int)
	// Hint returns the pre-made decision for the next packet of the
	// burst: SampleForce selects it for tracing, SampleSkip passes it by.
	Hint() SampleHint
}

// TraceSink receives the per-FN execution events of one sampled packet. It
// is attached to an ExecContext by a PacketRecorder's BeginPacket and
// cleared by Reset. Step may be called concurrently for FNs inside one
// parallel wave, so implementations claim slots atomically.
type TraceSink interface {
	Step(k Key, d time.Duration)
}

// Engine executes Algorithm 1 of the paper: iterate the packet's FNs,
// skip host-tagged ones, and dispatch the rest to the operation modules in
// the registry. The engine is stateless across packets and safe for
// concurrent use by multiple forwarding goroutines.
type Engine struct {
	reg    atomic.Pointer[Registry]
	limits Limits
	rec    Recorder
	// prec is rec when it also implements the per-packet hooks, asserted
	// once at SetRecorder so the hot path pays a nil check, not a type
	// assertion, per packet.
	prec PacketRecorder
	host bool
}

// NewEngine builds a router-side engine over reg with the given limits: it
// executes FNs whose host tag is clear and skips host-tagged ones.
func NewEngine(reg *Registry, limits Limits) *Engine {
	if limits.MaxFNs <= 0 || limits.MaxFNs > MaxFNs {
		limits.MaxFNs = MaxFNs
	}
	e := &Engine{limits: limits}
	e.reg.Store(reg)
	return e
}

// NewHostEngine builds the dual of NewEngine for host stacks: it executes
// exactly the FNs tagged as host operations (F_ver and friends) and skips
// router operations.
func NewHostEngine(reg *Registry, limits Limits) *Engine {
	e := NewEngine(reg, limits)
	e.host = true
	return e
}

// SetRecorder installs a telemetry sink. Must be called before packets
// flow. A recorder that also implements PacketRecorder additionally gets
// the per-packet begin/end bracket (sampled tracing).
func (e *Engine) SetRecorder(r Recorder) {
	e.rec = r
	e.prec, _ = r.(PacketRecorder)
}

// Recorder returns the telemetry sink installed via SetRecorder (nil when
// none). Batched ingress paths use it to discover whether the recorder
// supports amortized burst sampling (BurstSampler).
func (e *Engine) Recorder() Recorder { return e.rec }

// Registry returns the engine's current dispatch table.
func (e *Engine) Registry() *Registry { return e.reg.Load() }

// SwapRegistry atomically replaces the dispatch table and returns the
// previous one. This is how operators "dynamically adjust security
// policies based on network conditions" (paper §2.4) — e.g. enabling
// F_pass on the fly upon detecting a content-poisoning attack — without
// pausing the data plane: in-flight packets finish on the registry they
// started with; subsequent packets see the new one.
func (e *Engine) SwapRegistry(reg *Registry) *Registry {
	return e.reg.Swap(reg)
}

// Process runs the packet in ctx through Algorithm 1. On return ctx.Verdict
// and ctx.EgressPorts() describe the packet's fate. Process never allocates
// on the sequential path.
func (e *Engine) Process(ctx *ExecContext) {
	if e.limits.MaxStateBytes > 0 {
		ctx.stateBudget = e.limits.MaxStateBytes
	}
	if e.limits.Deadline > 0 {
		ctx.Deadline = time.Now().Add(e.limits.Deadline)
	}
	if e.prec != nil {
		e.prec.BeginPacket(ctx)
	}
	n := ctx.View.FNNum()
	if e.routerFNCount(ctx.View) > e.limits.MaxFNs {
		ctx.Drop(DropOpBudget)
		e.finish(ctx)
		return
	}
	reg := e.reg.Load()
	if ctx.View.Parallel() && n > 1 {
		e.processParallel(reg, ctx)
		e.finish(ctx)
		return
	}
	for i := 0; i < n; i++ {
		fn := ctx.View.FN(i)
		if fn.Host != e.host {
			continue // Algorithm 1 line 5–7: skip the other side's operations
		}
		if !e.execute(reg, ctx, fn) {
			break
		}
	}
	e.finish(ctx)
}

// execute dispatches one FN and reports whether processing should continue.
func (e *Engine) execute(reg *Registry, ctx *ExecContext, fn FN) bool {
	if !ctx.Deadline.IsZero() && time.Now().After(ctx.Deadline) {
		ctx.Drop(DropDeadline)
		return false
	}
	op := reg.Get(fn.Key)
	if op == nil {
		if reg.Policy(fn.Key) == PolicySignal {
			ctx.Drop(DropUnsupportedFN)
			ctx.SignalUnsupported = true
			ctx.UnsupportedKey = fn.Key
			return false
		}
		return true // PolicyIgnore, §2.4: "the router can simply ignore this FN"
	}
	if e.rec != nil {
		// time.Since against a fixed base reads only the monotonic clock
		// (~half the cost of time.Now's wall+mono read) — this runs twice
		// per op on the hot path.
		start := time.Since(monoBase)
		ctx.MonoNow = start
		err := op.Execute(ctx, uint(fn.Loc), uint(fn.Len))
		d := time.Since(monoBase) - start
		e.rec.RecordOp(fn.Key, d)
		if ctx.Trace != nil {
			ctx.Trace.Step(fn.Key, d)
		}
		if err != nil {
			ctx.Drop(DropOpError)
		}
	} else if err := op.Execute(ctx, uint(fn.Loc), uint(fn.Len)); err != nil {
		ctx.Drop(DropOpError)
	}
	return ctx.Verdict != VerdictDrop
}

// processParallel honours the packet-parameter parallel flag: operations
// are grouped into stages (see Stager), stages run in order, and the
// operations inside one stage run concurrently on private context copies
// that are merged afterwards. The host asserts, by setting the flag, that
// same-stage operations touch disjoint operand bytes.
func (e *Engine) processParallel(reg *Registry, ctx *ExecContext) {
	n := ctx.View.FNNum()
	// Collect router FNs with their stages. MaxFNs ≤ 255 so a fixed array
	// keeps this allocation-free apart from goroutine spawning.
	var fns [MaxFNs]staged
	cnt := 0
	minStage, maxStage := 1<<30, -(1 << 30)
	for i := 0; i < n; i++ {
		fn := ctx.View.FN(i)
		if fn.Host != e.host {
			continue
		}
		st := 1
		if op := reg.Get(fn.Key); op != nil {
			if s, ok := op.(Stager); ok {
				st = s.Stage()
			}
		}
		fns[cnt] = staged{fn, st}
		cnt++
		if st < minStage {
			minStage = st
		}
		if st > maxStage {
			maxStage = st
		}
	}
	// waveBuf is reused across stages; like fns it lives on the stack, so
	// selecting a stage's wave costs no heap traffic.
	var waveBuf [MaxFNs]staged
	for stage := minStage; stage <= maxStage && ctx.Verdict != VerdictDrop; stage++ {
		wn := 0
		for i := 0; i < cnt; i++ {
			if fns[i].stage == stage {
				waveBuf[wn] = fns[i]
				wn++
			}
		}
		switch wn {
		case 0:
			continue
		case 1:
			e.execute(reg, ctx, waveBuf[0].fn)
		default:
			e.runWave(reg, ctx, waveBuf[:wn])
		}
	}
}

// staged pairs an FN with its parallel-execution stage.
type staged struct {
	fn    FN
	stage int
}

// waveCtxs is a pooled scratch buffer of context copies for one parallel
// wave. Pooling it keeps steady-state parallel processing from allocating a
// fresh copy slice per wave; the slice grows to the widest wave seen and is
// scrubbed of packet references before going back to the pool.
type waveCtxs struct {
	copies []ExecContext
}

var wavePool = sync.Pool{New: func() any { return &waveCtxs{} }}

// runWave executes the wave's FNs concurrently on context copies, then
// merges verdicts (by precedence), egress sets, crypto state and state-
// budget consumption back into ctx.
func (e *Engine) runWave(reg *Registry, ctx *ExecContext, wave []staged) {
	wc := wavePool.Get().(*waveCtxs)
	if cap(wc.copies) < len(wave) {
		wc.copies = make([]ExecContext, len(wave))
	}
	copies := wc.copies[:len(wave)]
	var wg sync.WaitGroup
	wg.Add(len(wave))
	for i := range wave {
		copies[i] = *ctx
		// Pass the copy pointer and FN by value so the goroutine closure
		// does not capture wave, whose backing array is the caller's stack.
		go func(c *ExecContext, fn FN) {
			defer wg.Done()
			e.execute(reg, c, fn)
		}(&copies[i], wave[i].fn)
	}
	wg.Wait()
	consumed := 0
	for i := range copies {
		c := &copies[i]
		if c.Verdict == VerdictDrop && ctx.Verdict != VerdictDrop {
			ctx.Verdict = VerdictDrop
			ctx.Reason = c.Reason
			ctx.SignalUnsupported = c.SignalUnsupported
			ctx.UnsupportedKey = c.UnsupportedKey
		}
		if c.Verdict == VerdictDeliver {
			ctx.Deliver()
		}
		if c.Verdict == VerdictAbsorb {
			ctx.Absorb()
		}
		for j := 0; j < c.NEgr; j++ {
			ctx.AddEgress(c.Egress[j])
		}
		if c.Crypto.HaveKey && !ctx.Crypto.HaveKey {
			ctx.Crypto = c.Crypto
		}
		if c.Passed {
			ctx.Passed = true
		}
		if c.Cached != nil && ctx.Cached == nil {
			ctx.Cached = c.Cached
		}
		if c.HasSource && !ctx.HasSource {
			ctx.SourceLoc, ctx.SourceLen, ctx.HasSource = c.SourceLoc, c.SourceLen, true
		}
		if ctx.stateBudget >= 0 {
			consumed += ctx.stateBudget - c.stateBudget
		}
	}
	if ctx.stateBudget >= 0 {
		ctx.stateBudget -= consumed
		if ctx.stateBudget < 0 {
			ctx.Drop(DropStateBudget)
		}
	}
	for i := range copies {
		copies[i] = ExecContext{} // drop packet references before pooling
	}
	wavePool.Put(wc)
}

func (e *Engine) routerFNCount(v View) int {
	n := 0
	for i := 0; i < v.FNNum(); i++ {
		if v.FN(i).Host == e.host {
			n++
		}
	}
	return n
}

// finish records the packet's terminal telemetry: the drop reason when it
// dropped, and the per-packet end bracket when a PacketRecorder is
// installed. Called exactly once per Process invocation.
func (e *Engine) finish(ctx *ExecContext) {
	if e.rec != nil && ctx.Verdict == VerdictDrop {
		e.rec.RecordDrop(ctx.Reason)
	}
	if e.prec != nil {
		e.prec.EndPacket(ctx)
	}
}
