package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dip/internal/bitfield"
)

// Wire-format constants. See DESIGN.md §2 for the layout rationale; the
// sizes are chosen so header overhead reproduces the paper's Table 2
// byte-for-byte.
const (
	// BasicHeaderSize is the fixed DIP basic header: version, next header,
	// FN number, hop limit, and the 16-bit packet parameter.
	BasicHeaderSize = 6
	// FNSize is the size of one FN definition triple on the wire.
	FNSize = 6
	// MaxFNs is the most FNs one packet may carry (FN number is one byte).
	MaxFNs = 255
	// MaxLocBytes is the largest FN-locations region: the packet parameter
	// dedicates ten bits to its length (paper §2.2).
	MaxLocBytes = 1023
	// Version is the only DIP header version this implementation speaks.
	Version = 1

	// tagBit marks an operation as host-executed in the wire key field.
	tagBit = 0x8000

	paramParallelBit = 15 // bit index of the parallel-execution flag
	paramLocShift    = 5  // FN-locations length occupies bits 14..5
	paramLocMask     = 0x3FF
)

// Errors from header encoding and decoding.
var (
	ErrTruncated   = errors.New("core: truncated DIP header")
	ErrVersion     = errors.New("core: unsupported DIP version")
	ErrHeaderShape = errors.New("core: invalid DIP header shape")
)

// FN is one parsed field operation: an operand location (bit offset and bit
// length within the FN-locations region) plus the operation key and the
// host/router tag.
type FN struct {
	Loc  uint16 // operand offset in bits
	Len  uint16 // operand length in bits
	Key  Key    // operation key (15 bits)
	Host bool   // true ⇒ host operation; routers skip it (Algorithm 1 line 5)
}

// String renders the FN triple as the paper writes it.
func (f FN) String() string {
	tag := ""
	if f.Host {
		tag = ", host"
	}
	return fmt.Sprintf("(loc: %d, len: %d, key: %s%s)", f.Loc, f.Len, f.Key, tag)
}

// HostFN is shorthand for an FN with the host tag set.
func HostFN(loc, length uint16, key Key) FN {
	return FN{Loc: loc, Len: length, Key: key, Host: true}
}

// RouterFN is shorthand for an FN with the host tag clear.
func RouterFN(loc, length uint16, key Key) FN {
	return FN{Loc: loc, Len: length, Key: key}
}

// Header is the builder-side representation of a DIP header. Hosts construct
// one, append the payload, and transmit; routers never build Headers on the
// forwarding path — they parse Views in place.
type Header struct {
	NextHeader uint8 // payload protocol, carried opaquely
	HopLimit   uint8
	Parallel   bool // packet-parameter bit: FNs may execute in parallel
	// Reserved carries the packet parameter's five reserved bits (paper
	// §2.2: "the remaining five bits are reserved for other use"); they are
	// preserved end to end so future uses survive today's routers.
	Reserved  uint8
	FNs       []FN
	Locations []byte // the shared operand region
}

// WireSize returns the encoded header length in bytes.
func (h *Header) WireSize() int {
	return BasicHeaderSize + FNSize*len(h.FNs) + len(h.Locations)
}

// Validate checks structural constraints: FN count and locations length fit
// their wire fields, every operand lies inside the locations region, and no
// FN uses the invalid key.
func (h *Header) Validate() error {
	if len(h.FNs) > MaxFNs {
		return fmt.Errorf("%w: %d FNs exceeds %d", ErrHeaderShape, len(h.FNs), MaxFNs)
	}
	if len(h.Locations) > MaxLocBytes {
		return fmt.Errorf("%w: locations %d bytes exceeds %d", ErrHeaderShape, len(h.Locations), MaxLocBytes)
	}
	if h.Reserved > 0x1F {
		return fmt.Errorf("%w: reserved bits %#x exceed 5 bits", ErrHeaderShape, h.Reserved)
	}
	for i, f := range h.FNs {
		if f.Key == KeyInvalid || f.Key > 0x7FFF {
			return fmt.Errorf("%w: FN %d has key %d", ErrHeaderShape, i, f.Key)
		}
		if err := bitfield.Check(len(h.Locations), uint(f.Loc), uint(f.Len)); err != nil {
			return fmt.Errorf("%w: FN %d operand: %v", ErrHeaderShape, i, err)
		}
	}
	return nil
}

// AppendTo encodes the header onto dst and returns the extended slice.
func (h *Header) AppendTo(dst []byte) ([]byte, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	var param uint16
	if h.Parallel {
		param |= 1 << paramParallelBit
	}
	param |= uint16(len(h.Locations)) << paramLocShift
	param |= uint16(h.Reserved)
	dst = append(dst, Version, h.NextHeader, byte(len(h.FNs)), h.HopLimit,
		byte(param>>8), byte(param))
	for _, f := range h.FNs {
		key := uint16(f.Key)
		if f.Host {
			key |= tagBit
		}
		dst = binary.BigEndian.AppendUint16(dst, f.Loc)
		dst = binary.BigEndian.AppendUint16(dst, f.Len)
		dst = binary.BigEndian.AppendUint16(dst, key)
	}
	return append(dst, h.Locations...), nil
}

// MarshalBinary encodes the header into a fresh slice.
func (h *Header) MarshalBinary() ([]byte, error) {
	return h.AppendTo(make([]byte, 0, h.WireSize()))
}

// UnmarshalBinary decodes b into h, copying the locations region (the
// builder form owns its storage; use ParseView for zero-copy access).
func (h *Header) UnmarshalBinary(b []byte) error {
	v, err := ParseView(b)
	if err != nil {
		return err
	}
	h.NextHeader = v.NextHeader()
	h.HopLimit = v.HopLimit()
	h.Parallel = v.Parallel()
	h.Reserved = v.Reserved()
	h.FNs = make([]FN, v.FNNum())
	for i := range h.FNs {
		h.FNs[i] = v.FN(i)
	}
	h.Locations = append([]byte(nil), v.Locations()...)
	return nil
}
