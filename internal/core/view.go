package core

import (
	"encoding/binary"
	"fmt"
)

// View is a zero-copy parse of a DIP packet. It aliases the buffer it was
// parsed from: reads see the packet as received and writes (hop-limit
// updates, operation modules mutating their operands) modify the packet in
// place, which is the entire point of FN locations. A View is cheap to copy
// and contains no pointers beyond the buffer itself.
type View struct {
	b      []byte // whole packet: basic header ‖ FN defs ‖ locations ‖ payload
	fnNum  int
	locLen int
}

// ParseView validates the framing of b as a DIP packet and returns a view
// over it. Only structure is validated (version, lengths, operand bounds);
// semantic checks belong to the operations themselves.
func ParseView(b []byte) (View, error) {
	if len(b) < BasicHeaderSize {
		return View{}, fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	if b[0] != Version {
		return View{}, fmt.Errorf("%w: %d", ErrVersion, b[0])
	}
	fnNum := int(b[2])
	param := binary.BigEndian.Uint16(b[4:6])
	locLen := int(param >> paramLocShift & paramLocMask)
	hdrLen := BasicHeaderSize + FNSize*fnNum + locLen
	if len(b) < hdrLen {
		return View{}, fmt.Errorf("%w: header needs %d bytes, have %d", ErrTruncated, hdrLen, len(b))
	}
	v := View{b: b, fnNum: fnNum, locLen: locLen}
	// Validate every triple once, so operations can trust bounds and the
	// engine can trust keys.
	locBits := uint(locLen) * 8
	for i := 0; i < fnNum; i++ {
		off := BasicHeaderSize + FNSize*i
		loc := uint(binary.BigEndian.Uint16(b[off:]))
		n := uint(binary.BigEndian.Uint16(b[off+2:]))
		if loc > locBits || n > locBits-loc {
			return View{}, fmt.Errorf("%w: FN %d operand [%d,+%d) outside %d location bits",
				ErrHeaderShape, i, loc, n, locBits)
		}
		if binary.BigEndian.Uint16(b[off+4:])&^tagBit == 0 {
			return View{}, fmt.Errorf("%w: FN %d has the invalid key 0", ErrHeaderShape, i)
		}
	}
	return v, nil
}

// Valid reports whether the view was produced by a successful ParseView.
func (v View) Valid() bool { return v.b != nil }

// NextHeader returns the payload protocol number.
func (v View) NextHeader() uint8 { return v.b[1] }

// FNNum returns the number of FN definitions carried.
func (v View) FNNum() int { return v.fnNum }

// HopLimit returns the remaining hop budget.
func (v View) HopLimit() uint8 { return v.b[3] }

// SetHopLimit overwrites the hop limit in place.
func (v View) SetHopLimit(h uint8) { v.b[3] = h }

// DecHopLimit decrements the hop limit in place and reports whether the
// packet may still be forwarded (false when the limit was already zero).
func (v View) DecHopLimit() bool {
	if v.b[3] == 0 {
		return false
	}
	v.b[3]--
	return true
}

// Parallel reports the packet-parameter parallel-execution flag.
func (v View) Parallel() bool {
	return binary.BigEndian.Uint16(v.b[4:6])>>paramParallelBit&1 == 1
}

// Reserved returns the packet parameter's five reserved bits.
func (v View) Reserved() uint8 {
	return uint8(binary.BigEndian.Uint16(v.b[4:6]) & 0x1F)
}

// FN decodes the i-th FN definition. i must be in [0, FNNum()).
func (v View) FN(i int) FN {
	off := BasicHeaderSize + FNSize*i
	key := binary.BigEndian.Uint16(v.b[off+4:])
	return FN{
		Loc:  binary.BigEndian.Uint16(v.b[off:]),
		Len:  binary.BigEndian.Uint16(v.b[off+2:]),
		Key:  Key(key &^ tagBit),
		Host: key&tagBit != 0,
	}
}

// Locations returns the FN-locations region, aliasing the packet buffer so
// operations mutate the packet directly.
func (v View) Locations() []byte {
	off := BasicHeaderSize + FNSize*v.fnNum
	return v.b[off : off+v.locLen : off+v.locLen]
}

// FlowRegion returns the FN-locations bytes of a structurally plausible
// DIP packet without a full parse, or nil when b is not DIP-shaped (wrong
// version, truncated header, empty locations). It is the flow-dispatch key
// region: every address, name, and tag a packet carries lives in its
// locations, so hashing them collapses the packets of one conversation to
// one key regardless of which protocol the FN list composes. Unlike
// ParseView it never allocates (no error values) — it is called on the
// ingress fast path for every submitted packet.
func FlowRegion(b []byte) []byte {
	if len(b) < BasicHeaderSize || b[0] != Version {
		return nil
	}
	fnNum := int(b[2])
	locLen := int(b[4])<<8 | int(b[5])
	locLen = locLen >> paramLocShift & paramLocMask
	off := BasicHeaderSize + FNSize*fnNum
	if locLen == 0 || off+locLen > len(b) {
		return nil
	}
	return b[off : off+locLen]
}

// HeaderLen returns the total encoded header length.
func (v View) HeaderLen() int {
	return BasicHeaderSize + FNSize*v.fnNum + v.locLen
}

// Payload returns the bytes after the DIP header.
func (v View) Payload() []byte { return v.b[v.HeaderLen():] }

// Packet returns the entire underlying buffer.
func (v View) Packet() []byte { return v.b }

// String summarizes the header for diagnostics (not on the hot path).
func (v View) String() string {
	s := fmt.Sprintf("DIP{next: %d, hop: %d, parallel: %v, locLen: %d, FNs:",
		v.NextHeader(), v.HopLimit(), v.Parallel(), v.locLen)
	for i := 0; i < v.fnNum; i++ {
		s += " " + v.FN(i).String()
	}
	return s + "}"
}
