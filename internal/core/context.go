package core

import "time"

// Verdict is the fate an operation (or the engine) assigns a packet.
type Verdict uint8

// Verdicts, in escalating precedence: a Drop always wins, a Deliver beats a
// Forward, Forward beats Absorb, and Absorb beats Continue. Operations that
// only transform header fields leave the verdict at Continue.
const (
	VerdictContinue Verdict = iota
	VerdictAbsorb           // consumed by router state (PIT aggregation, cache hit)
	VerdictForward          // send out Egress port(s)
	VerdictDeliver          // hand to the local host stack
	VerdictDrop
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictContinue:
		return "continue"
	case VerdictAbsorb:
		return "absorb"
	case VerdictForward:
		return "forward"
	case VerdictDeliver:
		return "deliver"
	case VerdictDrop:
		return "drop"
	}
	return "verdict(?)"
}

// DropReason explains a VerdictDrop.
type DropReason uint8

// Drop reasons counted by routers and reported in FN-unsupported signalling.
const (
	DropNone          DropReason = iota
	DropHopLimit                 // hop limit exhausted
	DropMalformed                // framing or operand errors
	DropUnsupportedFN            // router lacks a required operation (§2.4)
	DropOpBudget                 // more FNs than the security limit allows
	DropDeadline                 // per-packet processing deadline exceeded
	DropStateBudget              // per-packet state consumption exceeded
	DropNoRoute                  // match operation found no route
	DropPITMiss                  // data packet without a pending interest
	DropVerifyFailed             // authentication tags invalid
	DropGuard                    // rejected by a security guard (F_pass)
	DropOpError                  // operation failed internally
	DropFlood                    // per-inport pending-interest cap (flood defense)
	numDropReasons
)

// NumDropReasons is the count of distinct drop reasons, for counter arrays.
const NumDropReasons = int(numDropReasons)

var dropNames = [...]string{
	"none", "hop-limit", "malformed", "unsupported-fn", "op-budget",
	"deadline", "state-budget", "no-route", "pit-miss", "verify-failed",
	"guard", "op-error", "flood-cap",
}

// String names the drop reason.
func (r DropReason) String() string {
	if int(r) < len(dropNames) {
		return dropNames[r]
	}
	return "drop(?)"
}

// PortNone marks an unset egress port.
const PortNone = -1

// maxEgress bounds the ports one packet can be replicated to (PIT entries
// aggregate at most this many pending requesters per packet).
const maxEgress = 8

// CryptoState is the parameter block F_parm loads for the authentication
// operations that follow it on the same packet (paper §3: "generate the key
// and load other parameters").
type CryptoState struct {
	Key      [16]byte // hop key derived from the session ID
	HaveKey  bool
	PrevNode [16]byte // previous validator node label (used by F_MAC)
	HopIndex uint8    // this router's position in the validation chain
}

// SampleHint is a pre-made per-packet tracing decision carried on the
// ExecContext. Batched dataplanes take the 1-in-N sampling decision once
// per burst (see BurstSampler) and stamp the outcome here, so the
// PacketRecorder's BeginPacket skips its striped-counter arithmetic for
// every packet of the burst.
type SampleHint int8

// Sampling hints. The zero value means "no pre-made decision": the
// recorder samples per packet as it always has.
const (
	SampleAuto  SampleHint = 0  // recorder decides (packet-at-a-time path)
	SampleForce SampleHint = 1  // burst plan chose this packet; trace it
	SampleSkip  SampleHint = -1 // burst plan passed over this packet
)

// ExecContext carries one packet through the engine. Contexts are owned by
// the caller and reused across packets via Reset, keeping the forwarding
// path allocation-free.
type ExecContext struct {
	View   View
	InPort int

	// Verdict state, merged across operations by precedence.
	Verdict Verdict
	Reason  DropReason
	// Egress holds the output ports chosen by match operations. Multiple
	// entries mean replication (PIT fan-out).
	Egress [maxEgress]int
	NEgr   int

	// Crypto is the F_parm → F_MAC/F_mark/F_ver parameter channel.
	Crypto CryptoState

	// Passed records that an F_pass source-label check succeeded on this
	// packet; cache-writing operations consult it when the node runs in
	// require-pass mode (content-poisoning defense, §2.4).
	Passed bool

	// Cached is set (pointing into the content store) when an interest was
	// satisfied locally; the router synthesizes the data reply from it.
	Cached []byte

	// SourceLoc/SourceLen record the operand of an F_source FN, letting the
	// router address FN-unsupported messages back to the packet's source.
	SourceLoc uint16
	SourceLen uint16
	HasSource bool

	// SignalUnsupported is set when the packet was dropped for an
	// unsupported FN whose catalog policy demands notifying the source.
	SignalUnsupported bool
	// UnsupportedKey is the offending key when SignalUnsupported is set.
	UnsupportedKey Key

	// Deadline, when nonzero, is the absolute per-packet processing
	// deadline (security limit, paper §2.4).
	Deadline time.Time

	// Trace, when non-nil, receives this packet's per-FN execution events:
	// the packet was selected by a sampling PacketRecorder's BeginPacket.
	// Nil (the overwhelmingly common case) costs the engine one pointer
	// check per executed FN and nothing else.
	Trace TraceSink

	// Sample is the burst dataplane's pre-made tracing decision for this
	// packet (see SampleHint). Reset restores SampleAuto; burst callers
	// stamp their hint after Reset, before Process.
	Sample SampleHint

	// AdmittedAt and QueueDepth are the serving layer's admission snapshot
	// for in-band telemetry: the dataplane clock reading (ns) when this
	// packet's burst was picked up, and how many packets were queued behind
	// it at that moment. F_tel folds them into the hop record (per-hop
	// latency, queue depth at admission). They are burst-scoped — stamped
	// once per burst on the pooled context — so Reset deliberately leaves
	// them alone; single-packet entry points zero them instead. Zero means
	// "unknown": F_tel then records no latency and falls back to its own
	// depth provider.
	AdmittedAt int64
	QueueDepth int32

	// MonoNow is the engine's monotonic reading (relative to MonoBase)
	// taken just before dispatching the current operation — the same read
	// that starts the op-latency measurement. Operations needing "now" at
	// coarse granularity (F_tel's wall-µs stamp) reuse it instead of
	// paying their own clock read. Zero when the engine isn't recording.
	MonoNow time.Duration

	stateBudget int // remaining per-packet state bytes; <0 means unlimited
}

// Reset prepares the context for a new packet. The view must already be
// parsed. Limits are re-armed from the engine on each Process call.
func (c *ExecContext) Reset(v View, inPort int) {
	c.View = v
	c.InPort = inPort
	c.Verdict = VerdictContinue
	c.Reason = DropNone
	c.NEgr = 0
	c.Crypto = CryptoState{}
	c.Passed = false
	c.Cached = nil
	c.SourceLoc, c.SourceLen, c.HasSource = 0, 0, false
	c.SignalUnsupported = false
	c.UnsupportedKey = 0
	c.Deadline = time.Time{}
	c.Trace = nil
	c.Sample = SampleAuto
	c.MonoNow = 0
	c.stateBudget = -1
}

// AddEgress records an output port. Duplicate ports collapse; overflow
// beyond the replication bound is silently capped (the packet still
// forwards to the first maxEgress ports).
func (c *ExecContext) AddEgress(port int) {
	for i := 0; i < c.NEgr; i++ {
		if c.Egress[i] == port {
			return
		}
	}
	if c.NEgr < maxEgress {
		c.Egress[c.NEgr] = port
		c.NEgr++
	}
	if c.Verdict < VerdictForward {
		c.Verdict = VerdictForward
	}
}

// EgressPorts returns the chosen output ports (valid until Reset).
func (c *ExecContext) EgressPorts() []int { return c.Egress[:c.NEgr] }

// Drop records a drop verdict with its reason. The first drop reason wins.
func (c *ExecContext) Drop(r DropReason) {
	if c.Verdict != VerdictDrop {
		c.Verdict = VerdictDrop
		c.Reason = r
	}
}

// Deliver marks the packet for local delivery.
func (c *ExecContext) Deliver() {
	if c.Verdict < VerdictDeliver {
		c.Verdict = VerdictDeliver
	}
}

// Absorb marks the packet as consumed by router state: nothing is forwarded
// and nothing is wrong (interest aggregation, content served from cache).
func (c *ExecContext) Absorb() {
	if c.Verdict < VerdictAbsorb {
		c.Verdict = VerdictAbsorb
	}
}

// ChargeState debits n bytes from the per-packet state budget and reports
// whether the packet is still within it. Operations that create router
// state (PIT entries, cache insertions) must charge before committing.
func (c *ExecContext) ChargeState(n int) bool {
	if c.stateBudget < 0 {
		return true
	}
	if n > c.stateBudget {
		c.Drop(DropStateBudget)
		return false
	}
	c.stateBudget -= n
	return true
}
