package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := &Header{
		NextHeader: 17,
		HopLimit:   64,
		Parallel:   true,
		FNs: []FN{
			RouterFN(0, 32, KeyMatch32),
			HostFN(32, 32, KeySource),
		},
		Locations: []byte{10, 0, 0, 1, 192, 168, 0, 1},
	}
	b, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != h.WireSize() {
		t.Errorf("encoded %d bytes, WireSize says %d", len(b), h.WireSize())
	}
	var got Header
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if got.NextHeader != 17 || got.HopLimit != 64 || !got.Parallel {
		t.Errorf("basic fields: %+v", got)
	}
	if len(got.FNs) != 2 || got.FNs[0] != h.FNs[0] || got.FNs[1] != h.FNs[1] {
		t.Errorf("FNs: %v", got.FNs)
	}
	if !bytes.Equal(got.Locations, h.Locations) {
		t.Errorf("locations: % x", got.Locations)
	}
}

// Table 2 at the wire-format level: the sizes that make the paper's header
// overhead reproduce exactly.
func TestWireSizesMatchTable2Building(t *testing.T) {
	dip32 := &Header{
		FNs: []FN{
			RouterFN(0, 32, KeyMatch32),
			RouterFN(32, 32, KeySource),
		},
		Locations: make([]byte, 8),
	}
	if got := dip32.WireSize(); got != 26 {
		t.Errorf("DIP-32 = %d bytes, want 26", got)
	}
	dip128 := &Header{
		FNs: []FN{
			RouterFN(0, 128, KeyMatch128),
			RouterFN(128, 128, KeySource),
		},
		Locations: make([]byte, 32),
	}
	if got := dip128.WireSize(); got != 50 {
		t.Errorf("DIP-128 = %d bytes, want 50", got)
	}
	ndnInterest := &Header{
		FNs:       []FN{RouterFN(0, 32, KeyFIB)},
		Locations: make([]byte, 4),
	}
	if got := ndnInterest.WireSize(); got != 16 {
		t.Errorf("NDN = %d bytes, want 16", got)
	}
	opt := &Header{
		FNs: []FN{
			RouterFN(128, 128, KeyParm),
			RouterFN(0, 416, KeyMAC),
			RouterFN(288, 128, KeyMark),
			HostFN(0, 544, KeyVer),
		},
		Locations: make([]byte, 68),
	}
	if got := opt.WireSize(); got != 98 {
		t.Errorf("OPT = %d bytes, want 98", got)
	}
	ndnOpt := &Header{
		FNs: []FN{
			RouterFN(0, 32, KeyFIB),
			RouterFN(160, 128, KeyParm),
			RouterFN(32, 416, KeyMAC),
			RouterFN(320, 128, KeyMark),
			HostFN(32, 544, KeyVer),
		},
		Locations: make([]byte, 72),
	}
	if got := ndnOpt.WireSize(); got != 108 {
		t.Errorf("NDN+OPT = %d bytes, want 108", got)
	}
}

func TestValidateRejectsBadShapes(t *testing.T) {
	cases := []struct {
		name string
		h    Header
	}{
		{"operand past locations", Header{FNs: []FN{RouterFN(0, 65, KeyMatch32)}, Locations: make([]byte, 8)}},
		{"operand offset past locations", Header{FNs: []FN{RouterFN(65, 0, KeyMatch32)}, Locations: make([]byte, 8)}},
		{"invalid key", Header{FNs: []FN{RouterFN(0, 8, KeyInvalid)}, Locations: make([]byte, 1)}},
		{"key above 15 bits", Header{FNs: []FN{RouterFN(0, 8, 0x8000)}, Locations: make([]byte, 1)}},
		{"locations too long", Header{Locations: make([]byte, MaxLocBytes+1)}},
	}
	for _, c := range cases {
		if err := c.h.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", c.name)
		}
		if _, err := c.h.MarshalBinary(); err == nil {
			t.Errorf("%s: MarshalBinary accepted", c.name)
		}
	}
	tooMany := Header{FNs: make([]FN, MaxFNs+1)}
	for i := range tooMany.FNs {
		tooMany.FNs[i] = RouterFN(0, 0, KeyFIB)
	}
	if err := tooMany.Validate(); err == nil {
		t.Error("256 FNs accepted")
	}
}

func TestParseViewErrors(t *testing.T) {
	if _, err := ParseView(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("nil: %v", err)
	}
	if _, err := ParseView(make([]byte, 5)); !errors.Is(err, ErrTruncated) {
		t.Errorf("5 bytes: %v", err)
	}
	good, _ := (&Header{FNs: []FN{RouterFN(0, 32, KeyMatch32)}, Locations: make([]byte, 4)}).MarshalBinary()
	bad := append([]byte(nil), good...)
	bad[0] = 9
	if _, err := ParseView(bad); !errors.Is(err, ErrVersion) {
		t.Errorf("bad version: %v", err)
	}
	if _, err := ParseView(good[:len(good)-1]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated locations: %v", err)
	}
	// Corrupt the FN operand to point outside locations.
	bad = append([]byte(nil), good...)
	bad[BasicHeaderSize+2] = 0xFF // FieldLen high byte
	if _, err := ParseView(bad); !errors.Is(err, ErrHeaderShape) {
		t.Errorf("operand out of range: %v", err)
	}
}

func TestViewAccessors(t *testing.T) {
	h := &Header{
		NextHeader: 6,
		HopLimit:   3,
		FNs:        []FN{RouterFN(0, 16, KeyFIB), HostFN(16, 16, KeyVer)},
		Locations:  []byte{1, 2, 3, 4},
	}
	b, _ := h.MarshalBinary()
	payload := []byte("data")
	pkt := append(b, payload...)
	v, err := ParseView(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Valid() {
		t.Error("Valid() = false")
	}
	if v.NextHeader() != 6 || v.HopLimit() != 3 || v.Parallel() || v.FNNum() != 2 {
		t.Errorf("basic accessors wrong: %s", v)
	}
	if v.FN(0) != h.FNs[0] || v.FN(1) != h.FNs[1] {
		t.Errorf("FN accessors: %v %v", v.FN(0), v.FN(1))
	}
	if !bytes.Equal(v.Locations(), h.Locations) {
		t.Errorf("locations: % x", v.Locations())
	}
	if !bytes.Equal(v.Payload(), payload) {
		t.Errorf("payload: %q", v.Payload())
	}
	if v.HeaderLen() != h.WireSize() {
		t.Errorf("HeaderLen = %d", v.HeaderLen())
	}
	// Mutation through the view reaches the buffer.
	v.Locations()[0] = 99
	if pkt[BasicHeaderSize+2*FNSize] != 99 {
		t.Error("Locations() does not alias the packet")
	}
	v.SetHopLimit(7)
	if v.HopLimit() != 7 {
		t.Error("SetHopLimit")
	}
	for i := 7; i > 0; i-- {
		if !v.DecHopLimit() {
			t.Fatalf("DecHopLimit failed at %d", i)
		}
	}
	if v.DecHopLimit() {
		t.Error("DecHopLimit at zero should fail")
	}
	if v.HopLimit() != 0 {
		t.Error("hop limit must stay at zero")
	}
}

func TestViewZeroValueInvalid(t *testing.T) {
	var v View
	if v.Valid() {
		t.Error("zero View claims validity")
	}
}

// Property: marshal→parse round-trips arbitrary well-formed headers.
func TestHeaderRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		locLen := rng.Intn(200)
		h := &Header{
			NextHeader: uint8(rng.Intn(256)),
			HopLimit:   uint8(rng.Intn(256)),
			Parallel:   rng.Intn(2) == 0,
			Locations:  make([]byte, locLen),
		}
		rng.Read(h.Locations)
		for i, n := 0, rng.Intn(10); i < n; i++ {
			loc := rng.Intn(locLen*8 + 1)
			flen := rng.Intn(locLen*8 - loc + 1)
			h.FNs = append(h.FNs, FN{
				Loc: uint16(loc), Len: uint16(flen),
				Key:  Key(1 + rng.Intn(int(MaxKey))),
				Host: rng.Intn(2) == 0,
			})
		}
		b, err := h.MarshalBinary()
		if err != nil {
			return false
		}
		v, err := ParseView(b)
		if err != nil {
			return false
		}
		if v.NextHeader() != h.NextHeader || v.HopLimit() != h.HopLimit ||
			v.Parallel() != h.Parallel || v.FNNum() != len(h.FNs) {
			return false
		}
		for i := range h.FNs {
			if v.FN(i) != h.FNs[i] {
				return false
			}
		}
		return bytes.Equal(v.Locations(), h.Locations)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFNString(t *testing.T) {
	f := RouterFN(0, 32, KeyFIB)
	if got := f.String(); got != "(loc: 0, len: 32, key: F_FIB)" {
		t.Errorf("got %q", got)
	}
	hf := HostFN(0, 544, KeyVer)
	if got := hf.String(); got != "(loc: 0, len: 544, key: F_ver, host)" {
		t.Errorf("got %q", got)
	}
	if Key(77).String() != "key(77)" {
		t.Errorf("unknown key name: %s", Key(77))
	}
}
