package extops

import (
	"encoding/binary"
	"fmt"
	"time"

	"dip/internal/bitfield"
	"dip/internal/core"
)

// F_tel operand layout: a one-byte slot counter followed by fixed-size
// slots. The host allocates as many slots as the expected path length; hops
// beyond capacity set the overflow bit instead of corrupting neighbours —
// standard INT behaviour.
//
// Each slot is 24 bytes, big-endian:
//
//	[0:4)   hop ID
//	[4:8)   wall timestamp, µs (truncated to 32 bits)
//	[8:12)  per-hop latency, ns (admission → F_tel execution; saturating)
//	[12:16) FIB snapshot epoch at stamping time
//	[16:18) ingress port
//	[18:20) egress port (TelPortNone when not yet chosen)
//	[20:22) queue depth at admission (saturating)
//	[22)    flags (TelFlagCongested)
//	[23)    reserved, zero
const (
	telCountOff = 0
	telSlotsOff = 4
	// TelSlotSize is one hop record.
	TelSlotSize = 24
	// telOverflowBit marks a path longer than the slot capacity.
	telOverflowBit = 0x80

	// Field offsets inside one slot.
	telHopIDOff = 0
	telTsOff    = 4
	telLatOff   = 8
	telEpochOff = 12
	telInOff    = 16
	telEgrOff   = 18
	telDepthOff = 20
	telFlagsOff = 22
)

// TelFlagCongested is set in a hop record's flags byte when the queue depth
// at admission met the hop's congestion threshold.
const TelFlagCongested = 0x01

// TelPortNone is the on-wire port value meaning "not known at this hop"
// (F_tel ran before any match operation chose an egress, or the ingress
// port was unset).
const TelPortNone = 0xFFFF

// telMaxSlots is the largest slot count the 7-bit counter can carry.
const telMaxSlots = telOverflowBit - 1

// TelOperandBits returns the F_tel operand width for a given slot capacity.
func TelOperandBits(slots int) uint16 {
	return uint16((telSlotsOff + slots*TelSlotSize) * 8)
}

// TelConfig supplies a Tel module's identity and measurement providers.
// Every provider is optional; a missing one leaves its field zero in the
// stamped record. Providers run on the forwarding hot path and must not
// allocate or block.
type TelConfig struct {
	// HopID identifies this hop in the records it stamps.
	HopID uint32
	// Now supplies the wall timestamp (nil → wall time derived from one
	// time.Now at construction plus a monotonic delta, which is cheaper on
	// the hot path than time.Now per stamp). Simulations inject the
	// virtual clock here so timestamp deltas equal simulated transit.
	Now func() time.Time
	// ClockNs reads the dataplane clock — the same clock the serving layer
	// stamps into ExecContext.AdmittedAt — so their difference is this
	// hop's admission→execution latency. Nil disables latency stamping.
	ClockNs func() int64
	// QueueDepth reports local queue occupancy, used when the context
	// carries no burst-admission depth (packet-at-a-time entry points,
	// or fabric depth sources like in-flight link counts).
	QueueDepth func() int
	// Epoch reads the FIB snapshot epoch to pin which forwarding state
	// handled the packet (see fib.Table.Epoch).
	Epoch func() uint32
	// CongestAt is the queue depth at which the congestion flag is set
	// (default 64; negative disables).
	CongestAt int
}

// Tel is the F_tel router module: append this hop's record in place.
type Tel struct {
	cfg TelConfig
	// base/baseUs/monoZeroUs implement the default timestamp source: wall
	// µs derived from one wall read at construction plus a monotonic delta
	// per stamp. When the engine is recording op latency it already read
	// the monotonic clock for this dispatch (ExecContext.MonoNow, anchored
	// at core.MonoBase); monoZeroUs is the wall instant of that anchor so
	// the stamp costs no clock read at all. Otherwise one time.Since —
	// still roughly half the cost of time.Now's wall+mono pair. All unused
	// when cfg.Now is set.
	base       time.Time
	baseUs     int64
	monoZeroUs int64
}

// NewTel builds the module for a hop identifier with default providers —
// the compatibility constructor. now may be nil (time.Now).
func NewTel(hopID uint32, now func() time.Time) *Tel {
	return NewTelWith(TelConfig{HopID: hopID, Now: now})
}

// NewTelWith builds the module from a full provider configuration.
func NewTelWith(cfg TelConfig) *Tel {
	if cfg.CongestAt == 0 {
		cfg.CongestAt = 64
	}
	o := &Tel{cfg: cfg}
	if cfg.Now == nil {
		o.base = time.Now()
		o.baseUs = o.base.UnixMicro()
		o.monoZeroUs = o.baseUs - o.base.Sub(core.MonoBase()).Microseconds()
	}
	return o
}

// nowUs reads the stamp timestamp in wall µs.
func (o *Tel) nowUs(ctx *core.ExecContext) int64 {
	if o.cfg.Now != nil {
		return o.cfg.Now().UnixMicro()
	}
	if ctx.MonoNow != 0 {
		return o.monoZeroUs + int64(ctx.MonoNow)/1000
	}
	return o.baseUs + int64(time.Since(o.base))/1000
}

// Key implements core.Operation.
func (o *Tel) Key() core.Key { return KeyTel }

// Name implements core.Operation.
func (o *Tel) Name() string { return "F_tel" }

// Execute implements core.Operation.
func (o *Tel) Execute(ctx *core.ExecContext, loc, bits uint) error {
	if bits < (telSlotsOff+TelSlotSize)*8 || bits%8 != 0 {
		return fmt.Errorf("extops: F_tel operand %d bits too small", bits)
	}
	region, ok := bitfield.View(ctx.View.Locations(), loc, bits)
	if !ok {
		return fmt.Errorf("extops: F_tel operand not byte-aligned")
	}
	count := int(region[telCountOff] &^ telOverflowBit)
	capacity := (len(region) - telSlotsOff) / TelSlotSize
	if capacity > telMaxSlots {
		capacity = telMaxSlots
	}
	if count >= capacity {
		region[telCountOff] |= telOverflowBit
		return nil
	}
	slot := region[telSlotsOff+count*TelSlotSize : telSlotsOff+(count+1)*TelSlotSize]

	var latNs int64
	if o.cfg.ClockNs != nil && ctx.AdmittedAt != 0 {
		latNs = o.cfg.ClockNs() - ctx.AdmittedAt
		if latNs < 0 {
			latNs = 0
		}
	}
	depth := int(ctx.QueueDepth)
	if o.cfg.QueueDepth != nil {
		if d := o.cfg.QueueDepth(); d > depth {
			depth = d
		}
	}
	var epoch uint32
	if o.cfg.Epoch != nil {
		epoch = o.cfg.Epoch()
	}
	egress := uint16(TelPortNone)
	if ctx.NEgr > 0 && ctx.Egress[0] >= 0 && ctx.Egress[0] < TelPortNone {
		egress = uint16(ctx.Egress[0])
	}
	ingress := uint16(TelPortNone)
	if ctx.InPort >= 0 && ctx.InPort < TelPortNone {
		ingress = uint16(ctx.InPort)
	}
	var flags byte
	if o.cfg.CongestAt >= 0 && depth >= o.cfg.CongestAt {
		flags |= TelFlagCongested
	}

	binary.BigEndian.PutUint32(slot[telHopIDOff:], o.cfg.HopID)
	binary.BigEndian.PutUint32(slot[telTsOff:], uint32(o.nowUs(ctx)))
	binary.BigEndian.PutUint32(slot[telLatOff:], satU32(latNs))
	binary.BigEndian.PutUint32(slot[telEpochOff:], epoch)
	binary.BigEndian.PutUint16(slot[telInOff:], ingress)
	binary.BigEndian.PutUint16(slot[telEgrOff:], egress)
	binary.BigEndian.PutUint16(slot[telDepthOff:], satU16(depth))
	slot[telFlagsOff] = flags
	slot[telFlagsOff+1] = 0
	region[telCountOff] = region[telCountOff]&telOverflowBit | byte(count+1)
	return nil
}

func satU32(v int64) uint32 {
	if v < 0 {
		return 0
	}
	if v > 0xFFFFFFFF {
		return 0xFFFFFFFF
	}
	return uint32(v)
}

func satU16(v int) uint16 {
	if v < 0 {
		return 0
	}
	if v > 0xFFFF {
		return 0xFFFF
	}
	return uint16(v)
}

// HopRecord is one decoded telemetry slot.
type HopRecord struct {
	HopID       uint32
	TimestampUs uint32
	// LatencyNs is the hop's admission→F_tel latency in ns (saturating at
	// ~4.29 s); 0 means the hop had no latency provider.
	LatencyNs uint32
	// Epoch is the hop's FIB snapshot epoch at stamping time.
	Epoch uint32
	// Ingress and Egress are port indexes (TelPortNone = unknown).
	Ingress uint16
	Egress  uint16
	// QueueDepth is the occupancy behind the packet at admission.
	QueueDepth uint16
	Flags      byte
}

// Congested reports whether the hop flagged queue congestion.
func (r HopRecord) Congested() bool { return r.Flags&TelFlagCongested != 0 }

// DecodeTel reads the telemetry region at the receiver. It rejects regions
// too small to hold the counter, counts that overrun the region's slot
// capacity, and regions whose declared slots would be truncated — a
// malformed counter never causes an out-of-range read.
func DecodeTel(region []byte) (records []HopRecord, overflowed bool, err error) {
	if len(region) < telSlotsOff {
		return nil, false, fmt.Errorf("extops: telemetry region %d bytes too small", len(region))
	}
	count := int(region[telCountOff] &^ telOverflowBit)
	overflowed = region[telCountOff]&telOverflowBit != 0
	capacity := (len(region) - telSlotsOff) / TelSlotSize
	if count > capacity {
		return nil, false, fmt.Errorf("extops: telemetry count %d exceeds capacity %d", count, capacity)
	}
	for i := 0; i < count; i++ {
		slot := region[telSlotsOff+i*TelSlotSize:]
		records = append(records, HopRecord{
			HopID:       binary.BigEndian.Uint32(slot[telHopIDOff:]),
			TimestampUs: binary.BigEndian.Uint32(slot[telTsOff:]),
			LatencyNs:   binary.BigEndian.Uint32(slot[telLatOff:]),
			Epoch:       binary.BigEndian.Uint32(slot[telEpochOff:]),
			Ingress:     binary.BigEndian.Uint16(slot[telInOff:]),
			Egress:      binary.BigEndian.Uint16(slot[telEgrOff:]),
			QueueDepth:  binary.BigEndian.Uint16(slot[telDepthOff:]),
			Flags:       slot[telFlagsOff],
		})
	}
	return records, overflowed, nil
}

// NewTelRegion allocates a zeroed telemetry region with the given slot
// capacity, ready to embed in FN locations.
func NewTelRegion(slots int) []byte {
	return make([]byte, telSlotsOff+slots*TelSlotSize)
}
