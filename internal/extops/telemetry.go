package extops

import (
	"encoding/binary"
	"fmt"
	"time"

	"dip/internal/bitfield"
	"dip/internal/core"
)

// F_tel operand layout: a one-byte slot counter followed by fixed-size
// slots, each [hop ID 4B][timestamp-µs 4B]. The host allocates as many
// slots as the expected path length; hops beyond capacity set the overflow
// bit instead of corrupting neighbours — standard INT behaviour.
const (
	telCountOff = 0
	telSlotsOff = 4
	// TelSlotSize is one hop record.
	TelSlotSize = 8
	// telOverflowBit marks a path longer than the slot capacity.
	telOverflowBit = 0x80
)

// TelOperandBits returns the F_tel operand width for a given slot capacity.
func TelOperandBits(slots int) uint16 {
	return uint16((telSlotsOff + slots*TelSlotSize) * 8)
}

// Tel is the F_tel router module: append this hop's record in place.
type Tel struct {
	hopID uint32
	now   func() time.Time
}

// NewTel builds the module for a hop identifier. now may be nil (time.Now).
func NewTel(hopID uint32, now func() time.Time) *Tel {
	if now == nil {
		now = time.Now
	}
	return &Tel{hopID: hopID, now: now}
}

// Key implements core.Operation.
func (o *Tel) Key() core.Key { return KeyTel }

// Name implements core.Operation.
func (o *Tel) Name() string { return "F_tel" }

// Execute implements core.Operation.
func (o *Tel) Execute(ctx *core.ExecContext, loc, bits uint) error {
	if bits < (telSlotsOff+TelSlotSize)*8 || bits%8 != 0 {
		return fmt.Errorf("extops: F_tel operand %d bits too small", bits)
	}
	region, ok := bitfield.View(ctx.View.Locations(), loc, bits)
	if !ok {
		return fmt.Errorf("extops: F_tel operand not byte-aligned")
	}
	count := int(region[telCountOff] &^ telOverflowBit)
	capacity := (len(region) - telSlotsOff) / TelSlotSize
	if count >= capacity {
		region[telCountOff] |= telOverflowBit
		return nil
	}
	slot := region[telSlotsOff+count*TelSlotSize:]
	binary.BigEndian.PutUint32(slot, o.hopID)
	binary.BigEndian.PutUint32(slot[4:], uint32(o.now().UnixMicro()))
	region[telCountOff] = region[telCountOff]&telOverflowBit | byte(count+1)
	return nil
}

// HopRecord is one decoded telemetry slot.
type HopRecord struct {
	HopID       uint32
	TimestampUs uint32
}

// DecodeTel reads the telemetry region at the receiver.
func DecodeTel(region []byte) (records []HopRecord, overflowed bool, err error) {
	if len(region) < telSlotsOff {
		return nil, false, fmt.Errorf("extops: telemetry region %d bytes too small", len(region))
	}
	count := int(region[telCountOff] &^ telOverflowBit)
	overflowed = region[telCountOff]&telOverflowBit != 0
	capacity := (len(region) - telSlotsOff) / TelSlotSize
	if count > capacity {
		return nil, false, fmt.Errorf("extops: telemetry count %d exceeds capacity %d", count, capacity)
	}
	for i := 0; i < count; i++ {
		slot := region[telSlotsOff+i*TelSlotSize:]
		records = append(records, HopRecord{
			HopID:       binary.BigEndian.Uint32(slot),
			TimestampUs: binary.BigEndian.Uint32(slot[4:]),
		})
	}
	return records, overflowed, nil
}

// NewTelRegion allocates a zeroed telemetry region with the given slot
// capacity, ready to embed in FN locations.
func NewTelRegion(slots int) []byte {
	return make([]byte, telSlotsOff+slots*TelSlotSize)
}
