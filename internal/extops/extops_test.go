package extops

import (
	"testing"
	"time"

	"dip/internal/core"
)

// ccPacket builds a DIP packet carrying an F_cc FN over a fresh tag.
func ccPacket(t *testing.T, flow uint32) []byte {
	t.Helper()
	h := &core.Header{
		HopLimit:  4,
		FNs:       []core.FN{core.RouterFN(0, CCOperandBits, KeyCC)},
		Locations: NewCCTag(flow),
	}
	b, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return append(b, make([]byte, 1000)...) // 1 KB payload drives the rate
}

func ccEngine(t *testing.T, cc *CC) *core.Engine {
	t.Helper()
	reg := core.NewRegistry()
	reg.MustRegister(cc)
	return core.NewEngine(reg, core.Limits{})
}

func processCC(t *testing.T, e *core.Engine, pkt []byte) core.View {
	t.Helper()
	v, err := core.ParseView(pkt)
	if err != nil {
		t.Fatal(err)
	}
	var ctx core.ExecContext
	ctx.Reset(v, 0)
	e.Process(&ctx)
	if ctx.Verdict == core.VerdictDrop {
		t.Fatalf("dropped: %v", ctx.Reason)
	}
	return v
}

func TestCCIncreaseWhenUncongested(t *testing.T) {
	clock := time.Unix(0, 0)
	cc := NewCC(CCConfig{
		CapacityBps: 1e9, // far above what one packet per 10ms produces
		Key:         [16]byte{1},
		Now:         func() time.Time { return clock },
	})
	e := ccEngine(t, cc)
	pkt := ccPacket(t, 7)
	for i := 0; i < 5; i++ {
		clock = clock.Add(10 * time.Millisecond)
		pkt[3] = 4
		v := processCC(t, e, pkt)
		flow, action, _, ok := VerifyCC(&[16]byte{1}, v.Locations())
		if !ok {
			t.Fatal("tag MAC invalid")
		}
		if flow != 7 || action != ActionIncrease {
			t.Fatalf("flow=%d action=%d", flow, action)
		}
	}
	if cc.Flows() != 1 {
		t.Errorf("flows = %d", cc.Flows())
	}
}

func TestCCDecreaseWhenCongested(t *testing.T) {
	clock := time.Unix(0, 0)
	cc := NewCC(CCConfig{
		CapacityBps: 1_000, // 1 KB/s: a 1 KB packet per ms is way over
		Key:         [16]byte{2},
		Now:         func() time.Time { return clock },
	})
	e := ccEngine(t, cc)
	pkt := ccPacket(t, 9)
	var lastAction byte
	for i := 0; i < 20; i++ {
		clock = clock.Add(time.Millisecond)
		pkt[3] = 4
		v := processCC(t, e, pkt)
		_, lastAction, _, _ = VerifyCC(&[16]byte{2}, v.Locations())
		// Reset the tag action so each hop decision is observed fresh.
		v.Locations()[ccActionOff] = ActionIncrease
		StampCC(&[16]byte{2}, v.Locations())
	}
	if lastAction != ActionDecrease {
		t.Error("sustained overload did not trigger decrease")
	}
}

func TestCCDecreaseSticksAcrossHops(t *testing.T) {
	// An upstream Decrease must survive a downstream uncongested hop.
	clock := time.Unix(0, 0)
	uncongested := NewCC(CCConfig{
		CapacityBps: 1e12,
		Key:         [16]byte{3},
		Now:         func() time.Time { clock = clock.Add(time.Millisecond); return clock },
	})
	e := ccEngine(t, uncongested)
	pkt := ccPacket(t, 1)
	v, _ := core.ParseView(pkt)
	v.Locations()[ccActionOff] = ActionDecrease // upstream verdict
	v = processCC(t, e, pkt)
	if v.Locations()[ccActionOff] != ActionDecrease {
		t.Error("downstream hop erased upstream congestion feedback")
	}
}

func TestCCTagForgeryDetected(t *testing.T) {
	key := [16]byte{5}
	tag := NewCCTag(3)
	tag[ccActionOff] = ActionDecrease // the router observed congestion
	StampCC(&key, tag)
	if _, action, _, ok := VerifyCC(&key, tag); !ok || action != ActionDecrease {
		t.Fatal("valid tag rejected")
	}
	tag[ccActionOff] = ActionIncrease // a cheater clears congestion feedback
	if _, _, _, ok := VerifyCC(&key, tag); ok {
		t.Error("forged tag accepted")
	}
	if _, _, _, ok := VerifyCC(&key, tag[:8]); ok {
		t.Error("short tag accepted")
	}
}

func TestCCOperandValidation(t *testing.T) {
	cc := NewCC(CCConfig{CapacityBps: 1})
	reg := core.NewRegistry()
	reg.MustRegister(cc)
	e := core.NewEngine(reg, core.Limits{})
	h := &core.Header{
		HopLimit:  4,
		FNs:       []core.FN{core.RouterFN(0, 64, KeyCC)},
		Locations: make([]byte, 8),
	}
	b, _ := h.MarshalBinary()
	v, _ := core.ParseView(b)
	var ctx core.ExecContext
	ctx.Reset(v, 0)
	e.Process(&ctx)
	if ctx.Verdict != core.VerdictDrop || ctx.Reason != core.DropOpError {
		t.Errorf("got %v/%v", ctx.Verdict, ctx.Reason)
	}
}

func TestAIMD(t *testing.T) {
	a := &AIMD{RateBps: 1000, Step: 100, Floor: 10}
	a.Apply(ActionIncrease)
	if a.RateBps != 1100 {
		t.Errorf("rate %f", a.RateBps)
	}
	a.Apply(ActionDecrease)
	if a.RateBps != 550 {
		t.Errorf("rate %f", a.RateBps)
	}
	for i := 0; i < 20; i++ {
		a.Apply(ActionDecrease)
	}
	if a.RateBps != 10 {
		t.Errorf("floor not enforced: %f", a.RateBps)
	}
}

func telPacket(t *testing.T, slots int) []byte {
	t.Helper()
	h := &core.Header{
		HopLimit:  8,
		FNs:       []core.FN{core.RouterFN(0, TelOperandBits(slots), KeyTel)},
		Locations: NewTelRegion(slots),
	}
	b, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestTelemetryCollectsHops(t *testing.T) {
	base := time.UnixMicro(1_000_000)
	mkEngine := func(hop uint32, at time.Duration) *core.Engine {
		reg := core.NewRegistry()
		reg.MustRegister(NewTel(hop, func() time.Time { return base.Add(at) }))
		return core.NewEngine(reg, core.Limits{})
	}
	pkt := telPacket(t, 4)
	hops := []struct {
		id uint32
		at time.Duration
	}{{101, 0}, {202, 3 * time.Millisecond}, {303, 9 * time.Millisecond}}
	for _, h := range hops {
		v, _ := core.ParseView(pkt)
		var ctx core.ExecContext
		ctx.Reset(v, 0)
		mkEngine(h.id, h.at).Process(&ctx)
		if ctx.Verdict == core.VerdictDrop {
			t.Fatalf("dropped at hop %d: %v", h.id, ctx.Reason)
		}
	}
	v, _ := core.ParseView(pkt)
	records, overflow, err := DecodeTel(v.Locations())
	if err != nil || overflow {
		t.Fatalf("decode: %v overflow=%v", err, overflow)
	}
	if len(records) != 3 {
		t.Fatalf("records: %v", records)
	}
	for i, h := range hops {
		if records[i].HopID != h.id {
			t.Errorf("record %d hop %d", i, records[i].HopID)
		}
	}
	// Latency between hop 0 and hop 2 is recoverable.
	if d := records[2].TimestampUs - records[0].TimestampUs; d != 9000 {
		t.Errorf("path latency %d µs, want 9000", d)
	}
}

func TestTelemetryOverflow(t *testing.T) {
	pkt := telPacket(t, 2)
	for hop := uint32(1); hop <= 4; hop++ {
		reg := core.NewRegistry()
		reg.MustRegister(NewTel(hop, nil))
		e := core.NewEngine(reg, core.Limits{})
		v, _ := core.ParseView(pkt)
		var ctx core.ExecContext
		ctx.Reset(v, 0)
		e.Process(&ctx)
	}
	v, _ := core.ParseView(pkt)
	records, overflow, err := DecodeTel(v.Locations())
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 || !overflow {
		t.Errorf("records=%d overflow=%v", len(records), overflow)
	}
	// The recorded hops are the first two, untouched by the overflowing ones.
	if records[0].HopID != 1 || records[1].HopID != 2 {
		t.Errorf("records: %v", records)
	}
}

func TestDecodeTelValidation(t *testing.T) {
	if _, _, err := DecodeTel([]byte{1}); err == nil {
		t.Error("tiny region accepted")
	}
	bad := NewTelRegion(1)
	bad[0] = 5 // count beyond capacity
	if _, _, err := DecodeTel(bad); err == nil {
		t.Error("inconsistent count accepted")
	}
}

func TestTelZeroAlloc(t *testing.T) {
	// All providers wired: the rich record (latency, depth, epoch,
	// congestion) must stamp at 0 allocs, same as the toy one did.
	reg := core.NewRegistry()
	reg.MustRegister(NewTelWith(TelConfig{
		HopID:      7,
		Now:        func() time.Time { return time.UnixMicro(1) },
		ClockNs:    func() int64 { return 5_000 },
		QueueDepth: func() int { return 3 },
		Epoch:      func() uint32 { return 1 },
	}))
	e := core.NewEngine(reg, core.Limits{})
	pkt := telPacket(t, 4)
	var ctx core.ExecContext
	allocs := testing.AllocsPerRun(500, func() {
		pkt[core.BasicHeaderSize+core.FNSize] = 0 // reset the slot counter byte
		v, _ := core.ParseView(pkt)
		ctx.Reset(v, 0)
		ctx.AdmittedAt = 2_000
		ctx.QueueDepth = 8
		e.Process(&ctx)
	})
	if allocs != 0 {
		t.Errorf("F_tel allocates %.1f", allocs)
	}
}

func TestTelemetryRichRecord(t *testing.T) {
	reg := core.NewRegistry()
	reg.MustRegister(NewTelWith(TelConfig{
		HopID:      42,
		Now:        func() time.Time { return time.UnixMicro(5000) },
		ClockNs:    func() int64 { return 12_500 },
		QueueDepth: func() int { return 3 },
		Epoch:      func() uint32 { return 9 },
		CongestAt:  10,
	}))
	e := core.NewEngine(reg, core.Limits{})
	pkt := telPacket(t, 2)
	v, _ := core.ParseView(pkt)
	var ctx core.ExecContext
	ctx.Reset(v, 5)
	ctx.AdmittedAt = 10_000 // latency = 12500 - 10000
	ctx.QueueDepth = 12     // beats the provider's 3, trips CongestAt=10
	e.Process(&ctx)
	if ctx.Verdict == core.VerdictDrop {
		t.Fatalf("dropped: %v", ctx.Reason)
	}
	v, _ = core.ParseView(pkt)
	records, overflow, err := DecodeTel(v.Locations())
	if err != nil || overflow || len(records) != 1 {
		t.Fatalf("decode: %v overflow=%v records=%v", err, overflow, records)
	}
	r := records[0]
	if r.HopID != 42 || r.TimestampUs != 5000 {
		t.Errorf("identity fields: %+v", r)
	}
	if r.LatencyNs != 2500 {
		t.Errorf("latency %d ns, want 2500", r.LatencyNs)
	}
	if r.Epoch != 9 {
		t.Errorf("epoch %d, want 9", r.Epoch)
	}
	if r.Ingress != 5 {
		t.Errorf("ingress %d, want 5", r.Ingress)
	}
	if r.Egress != TelPortNone {
		t.Errorf("egress %d, want none (no match FN ran)", r.Egress)
	}
	if r.QueueDepth != 12 {
		t.Errorf("queue depth %d, want 12", r.QueueDepth)
	}
	if !r.Congested() {
		t.Error("congestion flag not set at depth 12 ≥ threshold 10")
	}
}

func TestTelemetryEgressAndFallbackDepth(t *testing.T) {
	// Without a burst-admission snapshot, the hop's own provider supplies
	// the depth; a chosen egress port is stamped.
	tel := NewTelWith(TelConfig{HopID: 7, QueueDepth: func() int { return 4 }})
	pkt := telPacket(t, 1)
	v, _ := core.ParseView(pkt)
	var ctx core.ExecContext
	ctx.Reset(v, 1)
	ctx.AddEgress(3)
	if err := tel.Execute(&ctx, 0, uint(TelOperandBits(1))); err != nil {
		t.Fatal(err)
	}
	records, _, err := DecodeTel(v.Locations())
	if err != nil || len(records) != 1 {
		t.Fatalf("decode: %v records=%v", err, records)
	}
	if records[0].Ingress != 1 || records[0].Egress != 3 {
		t.Errorf("ports in=%d out=%d, want 1/3", records[0].Ingress, records[0].Egress)
	}
	if records[0].QueueDepth != 4 {
		t.Errorf("fallback depth %d, want 4", records[0].QueueDepth)
	}
	if records[0].LatencyNs != 0 {
		t.Errorf("latency %d without a clock provider, want 0", records[0].LatencyNs)
	}
}

func FuzzDecodeTel(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	ok2 := NewTelRegion(2)
	ok2[0] = 2
	f.Add(ok2)
	over := NewTelRegion(1)
	over[0] = 0x81 // one slot, overflow bit set
	f.Add(over)
	bad := NewTelRegion(1)
	bad[0] = 5 // count beyond capacity
	f.Add(bad)
	f.Add(append(NewTelRegion(1), 0xFF)) // ragged tail byte
	f.Fuzz(func(t *testing.T, region []byte) {
		records, _, err := DecodeTel(region)
		if err != nil {
			if records != nil {
				t.Fatalf("records returned alongside error %v", err)
			}
			return
		}
		capacity := (len(region) - telSlotsOff) / TelSlotSize
		if len(records) > capacity {
			t.Fatalf("%d records from capacity-%d region", len(records), capacity)
		}
	})
}
