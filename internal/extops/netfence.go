// Package extops demonstrates DIP's extensibility thesis: new network-layer
// functions deployed by registering an operation module and composing it
// into packets — no new protocol stack, no hardware replacement ("the
// network providers can now support new services by only upgrading FNs",
// paper §5).
//
// Two extension operations are provided, both taken from systems the paper
// itself cites as motivation:
//
//   - F_cc (key 13): NetFence-style in-network congestion policing — "a
//     slim customized header between L3 and L4 to emulate congestion
//     control (AIMD) inside the network" whose feedback is "the
//     MAC-protected congestion control tag" (§1, §2.1). Routers stamp
//     rate feedback into the packet under a MAC; the receiver reflects it
//     to the sender, which applies AIMD. Hosts cannot forge "no
//     congestion" because the tag is keyed.
//
//   - F_tel (key 14): INT-style in-band telemetry (§5 "efficient network
//     telemetry"): each hop appends its ID and a timestamp into
//     pre-allocated slots in the FN-locations region, giving the receiver
//     the packet's hop-by-hop latency record.
package extops

import (
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"dip/internal/bitfield"
	"dip/internal/core"
	"dip/internal/crypto2em"
)

// Extension operation keys (outside the paper's Table 1 range).
const (
	// KeyCC is F_cc, the NetFence-style congestion-policing operation.
	KeyCC core.Key = 13
	// KeyTel is F_tel, the in-band telemetry operation.
	KeyTel core.Key = 14
)

// Congestion feedback actions carried in the F_cc tag.
const (
	// ActionIncrease: no congestion observed; the sender may add to its rate.
	ActionIncrease = 0
	// ActionDecrease: congestion observed; the sender must halve its rate.
	ActionDecrease = 1
)

// CC tag layout within the operand, byte offsets. The operand is
// CCOperandBits long: flow ID, feedback action, the policing router's rate
// estimate (for diagnostics), and the MAC protecting all of it.
const (
	ccFlowOff   = 0  // 4 B
	ccActionOff = 4  // 1 B
	ccRateOff   = 8  // 4 B, bytes/sec estimate
	ccMACOff    = 16 // 16 B
	ccSize      = 32
	// CCOperandBits is the F_cc operand width.
	CCOperandBits = ccSize * 8
)

// CCConfig tunes the policing module.
type CCConfig struct {
	// CapacityBps is the per-flow fair-share threshold: flows estimated
	// above it receive ActionDecrease.
	CapacityBps float64
	// HalfLife is the EWMA half-life for rate estimation.
	HalfLife time.Duration
	// Key authenticates feedback tags (shared with receivers, as
	// NetFence shares keys between routers and trusted hosts).
	Key [16]byte
	// Now is the clock (tests inject a fake one; nil means time.Now).
	Now func() time.Time
}

// CC is the F_cc router module: a per-flow rate estimator plus the
// MAC-stamped AIMD feedback writer. Safe for concurrent use.
type CC struct {
	cfg   CCConfig
	mu    sync.Mutex
	flows map[uint32]*flowState
}

type flowState struct {
	rate float64 // bytes/sec EWMA
	last time.Time
}

// NewCC builds the module.
func NewCC(cfg CCConfig) *CC {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.HalfLife <= 0 {
		cfg.HalfLife = 100 * time.Millisecond
	}
	return &CC{cfg: cfg, flows: make(map[uint32]*flowState)}
}

// Key implements core.Operation.
func (o *CC) Key() core.Key { return KeyCC }

// Name implements core.Operation.
func (o *CC) Name() string { return "F_cc" }

// Execute implements core.Operation: estimate the flow's rate from this
// packet's size, choose the AIMD action, and stamp the MAC-protected tag.
func (o *CC) Execute(ctx *core.ExecContext, loc, bits uint) error {
	if bits != CCOperandBits {
		return fmt.Errorf("extops: F_cc operand is %d bits, want %d", bits, CCOperandBits)
	}
	tag, ok := bitfield.View(ctx.View.Locations(), loc, bits)
	if !ok {
		return fmt.Errorf("extops: F_cc operand not byte-aligned")
	}
	flow := binary.BigEndian.Uint32(tag[ccFlowOff:])
	rate := o.observe(flow, len(ctx.View.Packet()))

	action := byte(ActionIncrease)
	if rate > o.cfg.CapacityBps {
		action = ActionDecrease
	}
	// Never upgrade an existing Decrease from an upstream hop: congestion
	// anywhere on the path must reach the sender.
	if tag[ccActionOff] != ActionDecrease {
		tag[ccActionOff] = action
	}
	binary.BigEndian.PutUint32(tag[ccRateOff:], uint32(rate))
	StampCC(&o.cfg.Key, tag)
	return nil
}

// observe updates the flow's EWMA rate estimate with one packet.
func (o *CC) observe(flow uint32, bytes int) float64 {
	now := o.cfg.Now()
	o.mu.Lock()
	defer o.mu.Unlock()
	st, ok := o.flows[flow]
	if !ok {
		st = &flowState{last: now}
		o.flows[flow] = st
	}
	dt := now.Sub(st.last).Seconds()
	st.last = now
	if dt <= 0 {
		// Same-instant packets accumulate into the estimate directly,
		// scaled by the half-life window.
		st.rate += float64(bytes) / o.cfg.HalfLife.Seconds()
		return st.rate
	}
	decay := 1.0
	hl := o.cfg.HalfLife.Seconds()
	for t := dt; t > 0; t -= hl {
		decay *= 0.5
		if decay < 1e-9 {
			decay = 0
			break
		}
	}
	inst := float64(bytes) / dt
	st.rate = st.rate*decay + inst*(1-decay)
	return st.rate
}

// Flows returns the number of tracked flows (tests, telemetry).
func (o *CC) Flows() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.flows)
}

// StampCC writes the authentication MAC over the tag's first 16 bytes.
func StampCC(key *[16]byte, tag []byte) {
	c := crypto2em.FromMaster(key)
	c.SumInto(tag[ccMACOff:ccMACOff+16], tag[:ccMACOff])
}

// VerifyCC checks the tag's MAC and returns the feedback it carries.
func VerifyCC(key *[16]byte, tag []byte) (flow uint32, action byte, rate uint32, ok bool) {
	if len(tag) < ccSize {
		return 0, 0, 0, false
	}
	var want [16]byte
	c := crypto2em.FromMaster(key)
	c.SumInto(want[:], tag[:ccMACOff])
	if subtle.ConstantTimeCompare(want[:], tag[ccMACOff:ccMACOff+16]) != 1 {
		return 0, 0, 0, false
	}
	return binary.BigEndian.Uint32(tag[ccFlowOff:]), tag[ccActionOff],
		binary.BigEndian.Uint32(tag[ccRateOff:]), true
}

// NewCCTag returns a fresh zeroed tag region for flow, ready to embed in a
// packet's FN locations.
func NewCCTag(flow uint32) []byte {
	tag := make([]byte, ccSize)
	binary.BigEndian.PutUint32(tag[ccFlowOff:], flow)
	return tag
}

// AIMD is the sender-side rate controller reacting to verified feedback.
type AIMD struct {
	// RateBps is the current sending rate.
	RateBps float64
	// Step is the additive increase per feedback (bytes/sec).
	Step float64
	// Floor is the minimum rate after decreases.
	Floor float64
}

// Apply adjusts the rate for one feedback action.
func (a *AIMD) Apply(action byte) {
	if action == ActionDecrease {
		a.RateBps /= 2
		if a.RateBps < a.Floor {
			a.RateBps = a.Floor
		}
		return
	}
	a.RateBps += a.Step
}
