// Package churn is the control-plane scale harness: it installs a
// million-plus routes (IPv4-style 32-bit, IPv6-style 128-bit, and
// component names) through batched FIB transactions, then replays seeded
// add/withdraw storms against the live tables while lookup samplers — and
// optionally a full burst dataplane — hammer the same snapshots at full
// rate. It measures what the RCU design promises to keep flat:
//
//   - lookup latency during churn vs at quiescence (the jitter a reader
//     pays for a writer publishing snapshots under it),
//   - snapshot-publication cost (time inside Txn.Commit, one pointer
//     store per batch),
//   - the memory high-water mark (COW garbage from path copying is the
//     price of lock-free readers; it must be bounded, not cumulative).
//
// Everything is seeded and deterministic in *what* happens (which routes
// install, which ops each storm applies); only the measured durations
// vary run to run. The harness double-checks itself: after the storms it
// walks every table and compares against its own bookkeeping of the live
// set — a run that desynchronizes tables from intent reports OracleOK
// false and must fail whatever gate invoked it.
package churn

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dip/internal/fib"
	"dip/internal/names"
	"dip/internal/ops"
	"dip/internal/profiles"
	"dip/internal/router"
)

// Config sizes a harness run. Zero fields take the defaults noted.
type Config struct {
	// Routes32/Routes128/RoutesName are how many distinct prefixes to
	// install per table (defaults 550_000 / 300_000 / 200_000 — 1.05M).
	Routes32, Routes128, RoutesName int
	// Batch is the number of operations per committed transaction
	// (default 4096): one snapshot publish per Batch routes.
	Batch int
	// Storms is the number of churn rounds (default 8); StormOps the
	// add/withdraw operations per round (default 20_000).
	Storms, StormOps int
	// Seed drives all route generation and storm composition.
	Seed int64
	// Samplers is the number of concurrent lookup-latency goroutines
	// running during storms (default 2); SamplesPerStorm the number of
	// timed lookups each takes per batch of samples (default 2000).
	Samplers, SamplesPerStorm int
	// Forward adds a burst dataplane: a router over the churning FIB32
	// serving submitted bursts at full rate on ForwardWorkers forwarders
	// (default GOMAXPROCS/2, min 1) while the storms run.
	Forward        bool
	ForwardWorkers int
	// Log receives progress lines; nil discards.
	Log func(format string, args ...any)
}

func (c *Config) defaults() {
	if c.Routes32 == 0 {
		c.Routes32 = 550_000
	}
	if c.Routes128 == 0 {
		c.Routes128 = 300_000
	}
	if c.RoutesName == 0 {
		c.RoutesName = 200_000
	}
	if c.Batch == 0 {
		c.Batch = 4096
	}
	if c.Storms == 0 {
		c.Storms = 8
	}
	if c.StormOps == 0 {
		c.StormOps = 20_000
	}
	if c.Samplers == 0 {
		c.Samplers = 2
	}
	if c.SamplesPerStorm == 0 {
		c.SamplesPerStorm = 2000
	}
	if c.ForwardWorkers == 0 {
		c.ForwardWorkers = runtime.GOMAXPROCS(0) / 2
		if c.ForwardWorkers < 1 {
			c.ForwardWorkers = 1
		}
	}
}

// Result is what a run measured. All *Ns fields are wall nanoseconds.
type Result struct {
	// Installed is the number of distinct prefixes resident after
	// installation; InstallNs the wall time of the whole installation.
	Installed int
	InstallNs int64
	// Commits counts snapshot publishes (install + storms); CommitNs is
	// the cumulative time spent inside Commit — the publication cost the
	// batched Txn design amortizes.
	Commits     int64
	CommitNs    int64
	NsPerCommit float64
	// StormOpsApplied counts add/withdraw operations replayed; StormNs is
	// the wall time of the storm phase.
	StormOpsApplied int
	StormNs         int64
	// Lookup latency percentiles, nanoseconds: Quiesce* sampled with no
	// writer running, Storm* sampled while storms committed against the
	// same tables. JitterRatio = StormP99/QuiesceP99 — the number the
	// benchguard gate watches.
	QuiesceP50, QuiesceP99 int64
	StormP50, StormP99     int64
	StormMax               int64
	JitterRatio            float64
	Samples                int
	// HeapHighWater is the max HeapAlloc observed at batch/storm
	// boundaries.
	HeapHighWater uint64
	// Forwarded counts packets the burst dataplane processed during the
	// storm phase (0 unless Config.Forward).
	Forwarded int64
	// OracleOK reports the post-run self-check: every table's contents
	// exactly match the harness's bookkeeping of what should be live.
	OracleOK   bool
	OracleDiag string
}

// route32 is one generated 32-bit (address or content-name) prefix,
// already masked to its length — distinct by construction.
type route32 struct {
	key  uint32
	plen int
}

type route128 struct {
	key  [16]byte
	plen int
}

func mask128(k [16]byte, plen int) [16]byte {
	for i := range k {
		before := i * 8
		switch {
		case before+8 <= plen:
			// whole byte inside the prefix: keep
		case before >= plen:
			k[i] = 0
		default:
			k[i] &= 0xFF << (8 - (plen - before))
		}
	}
	return k
}

// generate builds the three deterministic, collision-free route sets.
// Keys are multiplicative-hashed counters: distinct, hash-shaped, and
// reproducible from the counter alone; masking to the prefix length plus
// a dedupe map makes every entry a distinct (prefix, plen) pair, so the
// storm bookkeeping maps 1:1 onto table contents.
func generate(cfg *Config) ([]route32, []route128, []names.Name) {
	r32 := make([]route32, 0, cfg.Routes32)
	seen32 := make(map[route32]bool, cfg.Routes32)
	for i := uint32(1); len(r32) < cfg.Routes32; i++ {
		k := i * 2654435761
		plen := 16 + int(k>>28)%9 // /16../24
		k &^= 1<<(32-plen) - 1
		r := route32{key: k, plen: plen}
		if !seen32[r] {
			seen32[r] = true
			r32 = append(r32, r)
		}
	}
	r128 := make([]route128, 0, cfg.Routes128)
	seen128 := make(map[route128]bool, cfg.Routes128)
	for i := uint64(1); len(r128) < cfg.Routes128; i++ {
		var k [16]byte
		binary.BigEndian.PutUint64(k[:8], i*0x9E3779B97F4A7C15)
		binary.BigEndian.PutUint64(k[8:], i*0xC2B2AE3D27D4EB4F)
		plen := 32 + int(k[15])%33 // /32../64
		r := route128{key: mask128(k, plen), plen: plen}
		if !seen128[r] {
			seen128[r] = true
			r128 = append(r128, r)
		}
	}
	rn := make([]names.Name, cfg.RoutesName)
	for i := range rn {
		n, err := names.FromComponents("churn", fmt.Sprintf("g%03d", i%512), fmt.Sprintf("p%07d", i))
		if err != nil {
			panic("churn: name generation: " + err.Error())
		}
		rn[i] = n
	}
	return r32, r128, rn
}

// Run executes the harness.
func Run(cfg Config) Result {
	cfg.defaults()
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			cfg.Log(format, args...)
		}
	}
	res := Result{}
	var highWater uint64
	water := func() {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		if m.HeapAlloc > highWater {
			highWater = m.HeapAlloc
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	routes32, routes128, routeNames := generate(&cfg)

	t32, t128 := fib.New(), fib.New()
	tname := fib.NewNameTable()
	var commits, commitNs atomic.Int64
	commit := func(c interface{ Commit() }) {
		start := time.Now()
		c.Commit()
		commitNs.Add(time.Since(start).Nanoseconds())
		commits.Add(1)
	}
	nh := func(i int) fib.NextHop { return fib.NextHop{Port: i & 7} }

	// ---- install phase ----
	logf("installing %d+%d+%d routes in batches of %d",
		len(routes32), len(routes128), len(routeNames), cfg.Batch)
	installStart := time.Now()
	for off := 0; off < len(routes32); off += cfg.Batch {
		x := t32.Txn()
		for i := off; i < off+cfg.Batch && i < len(routes32); i++ {
			x.AddUint32(routes32[i].key, routes32[i].plen, nh(i))
		}
		commit(x)
		if (off/cfg.Batch)%16 == 0 {
			water()
		}
	}
	for off := 0; off < len(routes128); off += cfg.Batch {
		x := t128.Txn()
		for i := off; i < off+cfg.Batch && i < len(routes128); i++ {
			x.Add(routes128[i].key[:], routes128[i].plen, nh(i))
		}
		commit(x)
		if (off/cfg.Batch)%16 == 0 {
			water()
		}
	}
	for off := 0; off < len(routeNames); off += cfg.Batch {
		x := tname.Txn()
		for i := off; i < off+cfg.Batch && i < len(routeNames); i++ {
			x.Add(routeNames[i], nh(i))
		}
		commit(x)
		if (off/cfg.Batch)%16 == 0 {
			water()
		}
	}
	res.InstallNs = time.Since(installStart).Nanoseconds()
	water()
	res.Installed = countTable(t32) + countTable(t128) + tname.Len()
	logf("installed %d resident routes in %v", res.Installed, time.Duration(res.InstallNs))

	// ---- quiescent lookup baseline ----
	quiesce := sampleLookups(rng.Int63(), t32, t128, tname, routes32, routes128, routeNames,
		cfg.Samplers*cfg.SamplesPerStorm)
	res.QuiesceP50, res.QuiesceP99 = percentile(quiesce, 50), percentile(quiesce, 99)

	// ---- storm phase: writer vs samplers (vs dataplane) ----
	// live[i] tracks whether entry i should currently be resident; the
	// storms flip entries through batched transactions.
	live32 := make([]bool, len(routes32))
	live128 := make([]bool, len(routes128))
	liveName := make([]bool, len(routeNames))
	for i := range live32 {
		live32[i] = true
	}
	for i := range live128 {
		live128[i] = true
	}
	for i := range liveName {
		liveName[i] = true
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	latCh := make(chan []int64, cfg.Samplers)
	for s := 0; s < cfg.Samplers; s++ {
		seed := rng.Int63()
		wg.Add(1)
		go func() {
			defer wg.Done()
			var all []int64
			for !stop.Load() {
				all = append(all, sampleLookups(seed, t32, t128, tname,
					routes32, routes128, routeNames, cfg.SamplesPerStorm)...)
				seed++
			}
			latCh <- all
		}()
	}

	var forwarded atomic.Int64
	var fwdWG sync.WaitGroup
	var ingress *router.Ingress
	if cfg.Forward {
		reg := ops.NewRouterRegistry(ops.Config{FIB32: t32})
		r := router.New(reg, router.Config{Name: "churn-dp"})
		for p := 0; p < 8; p++ {
			r.AttachPort(router.PortFunc(func([]byte) {}))
		}
		start := time.Now()
		ingress = r.ServeGuarded(router.ServeConfig{
			Workers: cfg.ForwardWorkers,
			Batch:   64,
			Clock:   func() time.Duration { return time.Since(start) },
		})
		fwdWG.Add(1)
		go func() {
			defer fwdWG.Done()
			frng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
			for !stop.Load() {
				burst := make([][]byte, 0, 64)
				for i := 0; i < 64; i++ {
					rt := routes32[frng.Intn(len(routes32))]
					var dst [4]byte
					binary.BigEndian.PutUint32(dst[:], rt.key)
					h := profiles.IPv4([4]byte{10, 0, 0, 1}, dst)
					pkt, err := h.AppendTo(make([]byte, 0, h.WireSize()))
					if err != nil {
						continue
					}
					burst = append(burst, pkt)
				}
				forwarded.Add(int64(ingress.SubmitBurst(burst, 0)))
			}
		}()
	}

	stormStart := time.Now()
	srng := rand.New(rand.NewSource(cfg.Seed + 1))
	opsApplied := 0
	var k4 [4]byte
	for storm := 0; storm < cfg.Storms; storm++ {
		remaining := cfg.StormOps
		for remaining > 0 {
			x32, x128 := t32.Txn(), t128.Txn()
			xn := tname.Txn()
			n := cfg.Batch
			if n > remaining {
				n = remaining
			}
			for i := 0; i < n; i++ {
				// Pick a table proportional to its size, then a random
				// entry in it, and flip its residency.
				which := srng.Intn(len(routes32) + len(routes128) + len(routeNames))
				switch {
				case which < len(routes32):
					j := srng.Intn(len(routes32))
					binary.BigEndian.PutUint32(k4[:], routes32[j].key)
					if live32[j] {
						x32.Remove(k4[:], routes32[j].plen)
					} else {
						x32.AddUint32(routes32[j].key, routes32[j].plen, nh(j))
					}
					live32[j] = !live32[j]
				case which < len(routes32)+len(routes128):
					j := srng.Intn(len(routes128))
					if live128[j] {
						x128.Remove(routes128[j].key[:], routes128[j].plen)
					} else {
						x128.Add(routes128[j].key[:], routes128[j].plen, nh(j))
					}
					live128[j] = !live128[j]
				default:
					j := srng.Intn(len(routeNames))
					if liveName[j] {
						xn.Remove(routeNames[j])
					} else {
						xn.Add(routeNames[j], nh(j))
					}
					liveName[j] = !liveName[j]
				}
			}
			commit(x32)
			commit(x128)
			commit(xn)
			opsApplied += n
			remaining -= n
		}
		water()
		logf("storm %d/%d done (%d ops total)", storm+1, cfg.Storms, opsApplied)
	}
	res.StormNs = time.Since(stormStart).Nanoseconds()
	res.StormOpsApplied = opsApplied

	stop.Store(true)
	wg.Wait()
	var all []int64
	for s := 0; s < cfg.Samplers; s++ {
		all = append(all, <-latCh...)
	}
	if cfg.Forward {
		fwdWG.Wait()
		ingress.Close()
	}
	res.Forwarded = forwarded.Load()

	res.Samples = len(all)
	res.StormP50, res.StormP99 = percentile(all, 50), percentile(all, 99)
	res.StormMax = percentile(all, 100)
	if res.QuiesceP99 > 0 {
		res.JitterRatio = float64(res.StormP99) / float64(res.QuiesceP99)
	}
	res.Commits = commits.Load()
	res.CommitNs = commitNs.Load()
	if res.Commits > 0 {
		res.NsPerCommit = float64(res.CommitNs) / float64(res.Commits)
	}
	res.HeapHighWater = highWater

	// ---- oracle: tables must equal the bookkeeping exactly ----
	res.OracleOK, res.OracleDiag = verify(t32, t128, tname,
		routes32, routes128, routeNames, live32, live128, liveName)
	return res
}

// sampleLookups times count lookups spread across the three tables and
// returns the per-lookup nanosecond latencies.
func sampleLookups(seed int64, t32, t128 *fib.Table, tname *fib.NameTable,
	r32 []route32, r128 []route128, rn []names.Name, count int) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, 0, count)
	for i := 0; i < count; i++ {
		switch i % 3 {
		case 0:
			k := r32[rng.Intn(len(r32))].key
			start := time.Now()
			t32.LookupUint32(k)
			out = append(out, time.Since(start).Nanoseconds())
		case 1:
			k := r128[rng.Intn(len(r128))].key
			start := time.Now()
			t128.Lookup(k[:], 128)
			out = append(out, time.Since(start).Nanoseconds())
		default:
			n := rn[rng.Intn(len(rn))]
			start := time.Now()
			tname.Lookup(n)
			out = append(out, time.Since(start).Nanoseconds())
		}
	}
	return out
}

// verify walks every table both ways against the live bookkeeping: every
// live entry resident, nothing resident that is not live. Collision-free
// generation makes this exact.
func verify(t32, t128 *fib.Table, tname *fib.NameTable,
	r32 []route32, r128 []route128, rn []names.Name,
	live32, live128, liveName []bool) (bool, string) {
	want32 := make(map[route32]bool, len(r32))
	for i, r := range r32 {
		if live32[i] {
			want32[r] = true
		}
	}
	n32, diag := 0, ""
	t32.Walk(func(prefix []byte, plen int, _ fib.NextHop) bool {
		n32++
		r := route32{key: binary.BigEndian.Uint32(padTo(prefix, 4)), plen: plen}
		if !want32[r] {
			diag = fmt.Sprintf("t32 has dead/unknown prefix %08x/%d", r.key, plen)
			return false
		}
		return true
	})
	if diag != "" {
		return false, diag
	}
	if n32 != len(want32) {
		return false, fmt.Sprintf("t32 resident=%d want=%d", n32, len(want32))
	}
	want128 := make(map[route128]bool, len(r128))
	for i, r := range r128 {
		if live128[i] {
			want128[r] = true
		}
	}
	n128 := 0
	t128.Walk(func(prefix []byte, plen int, _ fib.NextHop) bool {
		n128++
		var r route128
		copy(r.key[:], padTo(prefix, 16))
		r.plen = plen
		if !want128[r] {
			diag = fmt.Sprintf("t128 has dead/unknown prefix %x/%d", r.key, plen)
			return false
		}
		return true
	})
	if diag != "" {
		return false, diag
	}
	if n128 != len(want128) {
		return false, fmt.Sprintf("t128 resident=%d want=%d", n128, len(want128))
	}
	wantN := make(map[string]bool, len(rn))
	for i := range rn {
		if liveName[i] {
			wantN[rn[i].String()] = true
		}
	}
	nName := 0
	tname.Walk(func(prefix names.Name, _ fib.NextHop) bool {
		nName++
		if !wantN[prefix.String()] {
			diag = fmt.Sprintf("name table has dead/unknown %v", prefix)
			return false
		}
		return true
	})
	if diag != "" {
		return false, diag
	}
	if nName != len(wantN) {
		return false, fmt.Sprintf("name table resident=%d want=%d", nName, len(wantN))
	}
	return true, ""
}

func padTo(b []byte, n int) []byte {
	if len(b) >= n {
		return b[:n]
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

func countTable(t *fib.Table) int {
	n := 0
	t.Walk(func([]byte, int, fib.NextHop) bool { n++; return true })
	return n
}

func percentile(lats []int64, p int) int64 {
	if len(lats) == 0 {
		return 0
	}
	s := append([]int64(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if p >= 100 {
		return s[len(s)-1]
	}
	return s[len(s)*p/100]
}
