package churn

import (
	"testing"
)

// smallConfig scales the harness down to test size while keeping every
// phase live: install, storms, concurrent samplers, and the burst
// dataplane all run, so `go test -race ./internal/churn` exercises
// control-plane commits racing dataplane bursts and lookup samplers.
func smallConfig(seed int64) Config {
	return Config{
		Routes32:        2000,
		Routes128:       1000,
		RoutesName:      1000,
		Batch:           256,
		Storms:          2,
		StormOps:        1500,
		Seed:            seed,
		Samplers:        2,
		SamplesPerStorm: 200,
		Forward:         true,
		ForwardWorkers:  2,
	}
}

func TestChurnHarnessSmall(t *testing.T) {
	res := Run(smallConfig(42))
	if !res.OracleOK {
		t.Fatalf("oracle check failed: %s", res.OracleDiag)
	}
	if want := 2000 + 1000 + 1000; res.Installed != want {
		t.Errorf("Installed = %d, want %d", res.Installed, want)
	}
	if res.StormOpsApplied != 2*1500 {
		t.Errorf("StormOpsApplied = %d, want %d", res.StormOpsApplied, 3000)
	}
	if res.Commits == 0 || res.CommitNs <= 0 {
		t.Errorf("no commit accounting: commits=%d ns=%d", res.Commits, res.CommitNs)
	}
	if res.Samples == 0 || res.StormP99 == 0 || res.QuiesceP99 == 0 {
		t.Errorf("latency sampling broken: samples=%d stormP99=%d quiesceP99=%d",
			res.Samples, res.StormP99, res.QuiesceP99)
	}
	if res.JitterRatio <= 0 {
		t.Errorf("JitterRatio = %v, want > 0", res.JitterRatio)
	}
	if res.Forwarded == 0 {
		t.Error("burst dataplane forwarded nothing during the storm phase")
	}
	if res.HeapHighWater == 0 {
		t.Error("heap high-water never sampled")
	}
}

// TestChurnDeterministicContents proves the harness is seeded: the same
// seed lands the same live set (oracle passes both times and installs
// match), so a jitter regression between runs is a code change, not luck.
func TestChurnDeterministicContents(t *testing.T) {
	if testing.Short() {
		t.Skip("second full run not worth it in short mode")
	}
	a := Run(smallConfig(7))
	b := Run(smallConfig(7))
	if !a.OracleOK || !b.OracleOK {
		t.Fatalf("oracle failed: %q / %q", a.OracleDiag, b.OracleDiag)
	}
	if a.Installed != b.Installed || a.StormOpsApplied != b.StormOpsApplied || a.Commits != b.Commits {
		t.Errorf("same seed diverged: installed %d/%d ops %d/%d commits %d/%d",
			a.Installed, b.Installed, a.StormOpsApplied, b.StormOpsApplied, a.Commits, b.Commits)
	}
}

func TestGenerateDistinct(t *testing.T) {
	cfg := Config{Routes32: 5000, Routes128: 3000, RoutesName: 2000}
	cfg.defaults()
	r32, r128, rn := generate(&cfg)
	s32 := make(map[route32]bool)
	for _, r := range r32 {
		if s32[r] {
			t.Fatalf("duplicate 32-bit route %08x/%d", r.key, r.plen)
		}
		s32[r] = true
		if r.key&(1<<(32-r.plen)-1) != 0 {
			t.Fatalf("route %08x/%d has bits past its prefix length", r.key, r.plen)
		}
	}
	s128 := make(map[route128]bool)
	for _, r := range r128 {
		if s128[r] {
			t.Fatalf("duplicate 128-bit route %x/%d", r.key, r.plen)
		}
		s128[r] = true
		if masked := mask128(r.key, r.plen); masked != r.key {
			t.Fatalf("route %x/%d has bits past its prefix length", r.key, r.plen)
		}
	}
	sn := make(map[string]bool)
	for _, n := range rn {
		if sn[n.String()] {
			t.Fatalf("duplicate name %v", n)
		}
		sn[n.String()] = true
	}
}

func TestMask128(t *testing.T) {
	k := [16]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
		0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}
	cases := []struct {
		plen int
		want [16]byte
	}{
		{0, [16]byte{}},
		{1, [16]byte{0x80}},
		{8, [16]byte{0xFF}},
		{12, [16]byte{0xFF, 0xF0}},
		{64, [16]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}},
		{128, k},
	}
	for _, c := range cases {
		if got := mask128(k, c.plen); got != c.want {
			t.Errorf("mask128(all-ones, %d) = %x, want %x", c.plen, got, c.want)
		}
	}
}
