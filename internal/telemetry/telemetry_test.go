package telemetry

import (
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"dip/internal/core"
)

func TestRecordAndSnapshot(t *testing.T) {
	m := &Metrics{}
	m.RecordOp(core.KeyFIB, 100*time.Nanosecond)
	m.RecordOp(core.KeyFIB, 300*time.Nanosecond)
	m.RecordOp(core.KeyMAC, time.Microsecond)
	m.RecordDrop(core.DropNoRoute)
	m.CountVerdict(core.VerdictForward)
	m.CountVerdict(core.VerdictDeliver)
	m.CountVerdict(core.VerdictAbsorb)
	m.CountVerdict(core.VerdictDrop)
	m.CountVerdict(core.VerdictContinue)

	s := m.Snapshot()
	if s.Received != 5 || s.Forwarded != 1 || s.Delivered != 1 || s.Absorbed != 1 || s.NoAction != 1 || s.Dropped != 1 {
		t.Errorf("verdicts: %+v", s)
	}
	// Conservation: every received packet lands in exactly one bucket.
	if s.Forwarded+s.Delivered+s.Absorbed+s.NoAction+s.Dropped != s.Received {
		t.Errorf("buckets do not reconcile: %+v", s)
	}
	if len(s.Ops) != 2 {
		t.Fatalf("ops: %+v", s.Ops)
	}
	if s.Ops[0].Key != core.KeyFIB || s.Ops[0].Count != 2 || s.Ops[0].Mean() != 200*time.Nanosecond {
		t.Errorf("FIB stat: %+v", s.Ops[0])
	}
	if s.Drops[core.DropNoRoute] != 1 {
		t.Errorf("drops: %v", s.Drops)
	}
}

func TestMeanOfZero(t *testing.T) {
	var s OpSnapshot
	if s.Mean() != 0 {
		t.Error("Mean of empty must be 0")
	}
}

func TestOutOfRangeKeysIgnored(t *testing.T) {
	m := &Metrics{}
	m.RecordOp(core.MaxKey+1, time.Second)
	m.RecordDrop(core.DropReason(200))
	s := m.Snapshot()
	if len(s.Ops) != 0 || len(s.Drops) != 0 {
		t.Error("out-of-range records counted")
	}
	if m.Percentile(core.MaxKey+1, 0.5) != 0 {
		t.Error("percentile of out-of-range key")
	}
}

func TestPercentile(t *testing.T) {
	m := &Metrics{}
	if m.Percentile(core.KeyFIB, 0.5) != 0 {
		t.Error("percentile with no samples")
	}
	for i := 0; i < 90; i++ {
		m.RecordOp(core.KeyFIB, 100*time.Nanosecond)
	}
	for i := 0; i < 10; i++ {
		m.RecordOp(core.KeyFIB, 100*time.Microsecond)
	}
	p50 := m.Percentile(core.KeyFIB, 0.5)
	p99 := m.Percentile(core.KeyFIB, 0.99)
	if p50 > time.Microsecond {
		t.Errorf("p50 = %v", p50)
	}
	if p99 < 10*time.Microsecond {
		t.Errorf("p99 = %v", p99)
	}
	if p50 >= p99 {
		t.Errorf("p50 %v ≥ p99 %v", p50, p99)
	}
}

// TestPercentileBucketEdges pins the doc contract exactly: the estimate is
// the inclusive *upper* bound of the log2 bucket the quantile falls in.
// bucketOf puts ns ∈ [2^b, 2^(b+1)−1] in bucket b, so 2ns and 3ns share
// bucket 1 (upper bound 3ns) while 4ns opens bucket 2 (upper bound 7ns).
// The pre-fix implementation returned the lower bound 1<<b and fails here:
// a 3ns sample reported 2ns, biasing every quantile low by up to 2×.
func TestPercentileBucketEdges(t *testing.T) {
	cases := []struct {
		ns   int64
		want time.Duration
	}{
		{1, 1},  // bucket 0: [0,1]
		{2, 3},  // bucket 1: [2,3] — upper bound, not the lower edge 2
		{3, 3},  // same bucket as 2ns, same bound
		{4, 7},  // bucket 2: [4,7] — must differ from 2ns/3ns
		{7, 7},  //
		{8, 15}, // bucket 3
	}
	for _, c := range cases {
		m := &Metrics{}
		m.RecordOp(core.KeyFIB, time.Duration(c.ns))
		if got := m.Percentile(core.KeyFIB, 1); got != c.want {
			t.Errorf("Percentile of a single %dns sample = %v, want %v (bucket upper bound)", c.ns, got, c.want)
		}
	}
	// 2ns and 3ns land in the same bucket and must report the same bound; 4ns must not.
	m2, m3, m4 := &Metrics{}, &Metrics{}, &Metrics{}
	m2.RecordOp(core.KeyFIB, 2)
	m3.RecordOp(core.KeyFIB, 3)
	m4.RecordOp(core.KeyFIB, 4)
	b2, b3, b4 := m2.Percentile(core.KeyFIB, 1), m3.Percentile(core.KeyFIB, 1), m4.Percentile(core.KeyFIB, 1)
	if b2 != b3 {
		t.Errorf("2ns and 3ns report different bounds: %v vs %v", b2, b3)
	}
	if b4 == b2 {
		t.Errorf("4ns reports the same bound as 2ns (%v): bucket edge misplaced", b4)
	}
}

// TestPercentileArgumentContract pins the p-domain contract: NaN and p ≤ 0
// return 0 (previously they silently meant "first non-empty bucket"), and
// p > 1 clamps to 1 rather than falling off the histogram.
func TestPercentileArgumentContract(t *testing.T) {
	m := &Metrics{}
	m.RecordOp(core.KeyFIB, 100*time.Nanosecond)
	m.RecordOp(core.KeyFIB, 100*time.Microsecond)
	for _, p := range []float64{0, -0.5, math.NaN(), math.Inf(-1)} {
		if got := m.Percentile(core.KeyFIB, p); got != 0 {
			t.Errorf("Percentile(p=%v) = %v, want 0", p, got)
		}
	}
	max := m.Percentile(core.KeyFIB, 1)
	if max < 100*time.Microsecond {
		t.Errorf("Percentile(1) = %v, want ≥ the max sample", max)
	}
	for _, p := range []float64{1.5, 100, math.Inf(1)} {
		if got := m.Percentile(core.KeyFIB, p); got != max {
			t.Errorf("Percentile(p=%v) = %v, want clamp to Percentile(1) = %v", p, got, max)
		}
	}
}

// TestSnapshotReconciliation asserts the summary-line identity the report
// prints: received = forwarded + delivered + absorbed + no-action + dropped,
// including when drops occurred.
func TestSnapshotReconciliation(t *testing.T) {
	m := &Metrics{}
	for i := 0; i < 7; i++ {
		m.CountVerdict(core.VerdictForward)
	}
	for i := 0; i < 3; i++ {
		m.CountVerdict(core.VerdictDeliver)
	}
	for i := 0; i < 2; i++ {
		m.CountVerdict(core.VerdictAbsorb)
	}
	m.CountVerdict(core.VerdictContinue)
	for i := 0; i < 5; i++ {
		m.RecordDrop(core.DropNoRoute) // reason breakdown
		m.CountVerdict(core.VerdictDrop)
	}
	s := m.Snapshot()
	if s.Received != 18 {
		t.Fatalf("received = %d, want 18", s.Received)
	}
	if sum := s.Forwarded + s.Delivered + s.Absorbed + s.NoAction + s.Dropped; sum != s.Received {
		t.Errorf("received=%d does not reconcile with verdict sum %d: %+v", s.Received, sum, s)
	}
	if s.Dropped != 5 || s.Drops[core.DropNoRoute] != 5 {
		t.Errorf("dropped=%d drops=%v, want 5 and 5", s.Dropped, s.Drops)
	}
	out := s.String()
	if !strings.Contains(out, "dropped=5") {
		t.Errorf("summary line missing dropped= total:\n%s", out)
	}
}

func TestSnapshotDelta(t *testing.T) {
	m := &Metrics{}
	m.RecordOp(core.KeyFIB, 100*time.Nanosecond)
	m.CountVerdict(core.VerdictForward)
	m.RecordEvent(EventRetransmit)
	prev := m.Snapshot()

	m.RecordOp(core.KeyFIB, 300*time.Nanosecond)
	m.RecordOp(core.KeyMAC, time.Microsecond)
	m.CountVerdict(core.VerdictForward)
	m.RecordDrop(core.DropNoRoute)
	m.CountVerdict(core.VerdictDrop)
	m.RecordEvent(EventRetransmit)
	m.RecordEvent(EventRetransmit)

	d := m.Snapshot().Delta(prev)
	if d.Received != 2 || d.Forwarded != 1 || d.Dropped != 1 {
		t.Errorf("verdict deltas: %+v", d)
	}
	if len(d.Ops) != 2 {
		t.Fatalf("op deltas: %+v", d.Ops)
	}
	for _, op := range d.Ops {
		switch op.Key {
		case core.KeyFIB:
			if op.Count != 1 || op.TotalNs != 300 {
				t.Errorf("FIB delta: %+v", op)
			}
		case core.KeyMAC:
			if op.Count != 1 || op.TotalNs != 1000 {
				t.Errorf("MAC delta: %+v", op)
			}
		default:
			t.Errorf("unexpected op delta: %+v", op)
		}
	}
	if d.Drops[core.DropNoRoute] != 1 {
		t.Errorf("drop delta: %v", d.Drops)
	}
	if d.Events[EventRetransmit] != 2 {
		t.Errorf("event delta: %v", d.Events)
	}
	// A delta against itself is all-zero with empty sparse maps.
	s := m.Snapshot()
	z := s.Delta(s)
	if z.Received != 0 || len(z.Ops) != 0 || len(z.Drops) != 0 || len(z.Events) != 0 {
		t.Errorf("self-delta not zero: %+v", z)
	}
}

func TestSnapshotString(t *testing.T) {
	m := &Metrics{}
	m.RecordOp(core.KeyFIB, time.Microsecond)
	m.RecordDrop(core.DropPITMiss)
	m.CountVerdict(core.VerdictForward)
	out := m.Snapshot().String()
	for _, want := range []string{"F_FIB", "forwarded=1", "pit-miss"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	m := &Metrics{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.RecordOp(core.KeyFIB, time.Nanosecond)
				m.CountVerdict(core.VerdictForward)
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.Ops[0].Count != 8000 || s.Forwarded != 8000 {
		t.Errorf("lost updates: %+v", s)
	}
}

// TestConcurrentSnapshotDeltaStress drives every recording entry point from
// GOMAXPROCS goroutines while Snapshot and Delta run concurrently, asserting
// the counters only ever move forward (run under -race to catch unsynchronized
// access; the atomics make torn or regressing reads a real bug, not noise).
func TestConcurrentSnapshotDeltaStress(t *testing.T) {
	m := &Metrics{}
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m.RecordOp(core.KeyFIB, time.Duration(i%1000)*time.Nanosecond)
				m.RecordEvent(EventRetransmit)
				m.CountVerdict(core.VerdictForward)
				if i%5 == 0 {
					m.RecordDrop(core.DropNoRoute)
					m.CountVerdict(core.VerdictDrop)
				}
			}
		}(w)
	}
	// Reader goroutine: snapshots must be monotone and deltas non-negative.
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		prev := m.Snapshot()
		for {
			s := m.Snapshot()
			d := s.Delta(prev)
			if d.Received < 0 || d.Forwarded < 0 || d.Dropped < 0 {
				t.Errorf("counters regressed between snapshots: %+v", d)
				return
			}
			for _, op := range d.Ops {
				if op.Count < 0 || op.TotalNs < 0 {
					t.Errorf("op counters regressed: %+v", op)
					return
				}
			}
			prev = s
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()

	total := int64(workers * perWorker)
	s := m.Snapshot()
	if s.Ops[0].Count != total || s.Forwarded != total {
		t.Errorf("lost updates: ops=%d forwarded=%d want %d", s.Ops[0].Count, s.Forwarded, total)
	}
	if sum := s.Forwarded + s.Delivered + s.Absorbed + s.NoAction + s.Dropped; sum != s.Received {
		t.Errorf("verdict buckets do not reconcile under concurrency: sum=%d received=%d", sum, s.Received)
	}
}

func TestBucketOf(t *testing.T) {
	if bucketOf(0) != 0 || bucketOf(1) != 0 {
		t.Error("small buckets")
	}
	if bucketOf(1<<40) != histBuckets-1 {
		t.Errorf("huge latency bucket = %d", bucketOf(1<<40))
	}
}
