package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"

	"dip/internal/core"
)

func TestRecordAndSnapshot(t *testing.T) {
	m := &Metrics{}
	m.RecordOp(core.KeyFIB, 100*time.Nanosecond)
	m.RecordOp(core.KeyFIB, 300*time.Nanosecond)
	m.RecordOp(core.KeyMAC, time.Microsecond)
	m.RecordDrop(core.DropNoRoute)
	m.CountVerdict(core.VerdictForward)
	m.CountVerdict(core.VerdictDeliver)
	m.CountVerdict(core.VerdictAbsorb)
	m.CountVerdict(core.VerdictDrop)
	m.CountVerdict(core.VerdictContinue)

	s := m.Snapshot()
	if s.Received != 5 || s.Forwarded != 1 || s.Delivered != 1 || s.Absorbed != 1 || s.NoAction != 1 {
		t.Errorf("verdicts: %+v", s)
	}
	// Conservation: every received packet lands in exactly one bucket.
	if s.Forwarded+s.Delivered+s.Absorbed+s.NoAction+1 /* drop */ != s.Received {
		t.Errorf("buckets do not reconcile: %+v", s)
	}
	if len(s.Ops) != 2 {
		t.Fatalf("ops: %+v", s.Ops)
	}
	if s.Ops[0].Key != core.KeyFIB || s.Ops[0].Count != 2 || s.Ops[0].Mean() != 200*time.Nanosecond {
		t.Errorf("FIB stat: %+v", s.Ops[0])
	}
	if s.Drops[core.DropNoRoute] != 1 {
		t.Errorf("drops: %v", s.Drops)
	}
}

func TestMeanOfZero(t *testing.T) {
	var s OpSnapshot
	if s.Mean() != 0 {
		t.Error("Mean of empty must be 0")
	}
}

func TestOutOfRangeKeysIgnored(t *testing.T) {
	m := &Metrics{}
	m.RecordOp(core.MaxKey+1, time.Second)
	m.RecordDrop(core.DropReason(200))
	s := m.Snapshot()
	if len(s.Ops) != 0 || len(s.Drops) != 0 {
		t.Error("out-of-range records counted")
	}
	if m.Percentile(core.MaxKey+1, 0.5) != 0 {
		t.Error("percentile of out-of-range key")
	}
}

func TestPercentile(t *testing.T) {
	m := &Metrics{}
	if m.Percentile(core.KeyFIB, 0.5) != 0 {
		t.Error("percentile with no samples")
	}
	for i := 0; i < 90; i++ {
		m.RecordOp(core.KeyFIB, 100*time.Nanosecond)
	}
	for i := 0; i < 10; i++ {
		m.RecordOp(core.KeyFIB, 100*time.Microsecond)
	}
	p50 := m.Percentile(core.KeyFIB, 0.5)
	p99 := m.Percentile(core.KeyFIB, 0.99)
	if p50 > time.Microsecond {
		t.Errorf("p50 = %v", p50)
	}
	if p99 < 10*time.Microsecond {
		t.Errorf("p99 = %v", p99)
	}
	if p50 >= p99 {
		t.Errorf("p50 %v ≥ p99 %v", p50, p99)
	}
}

func TestSnapshotString(t *testing.T) {
	m := &Metrics{}
	m.RecordOp(core.KeyFIB, time.Microsecond)
	m.RecordDrop(core.DropPITMiss)
	m.CountVerdict(core.VerdictForward)
	out := m.Snapshot().String()
	for _, want := range []string{"F_FIB", "forwarded=1", "pit-miss"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	m := &Metrics{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.RecordOp(core.KeyFIB, time.Nanosecond)
				m.CountVerdict(core.VerdictForward)
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.Ops[0].Count != 8000 || s.Forwarded != 8000 {
		t.Errorf("lost updates: %+v", s)
	}
}

func TestBucketOf(t *testing.T) {
	if bucketOf(0) != 0 || bucketOf(1) != 0 {
		t.Error("small buckets")
	}
	if bucketOf(1<<40) != histBuckets-1 {
		t.Errorf("huge latency bucket = %d", bucketOf(1<<40))
	}
}
