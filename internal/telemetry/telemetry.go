// Package telemetry collects the per-operation and per-verdict statistics
// the paper lists among DIP's opportunities ("efficient network telemetry",
// §5) and that the benchmark harness uses to report Figure 2 numbers.
//
// Counters are lock-free atomics so recording from concurrent forwarding
// goroutines never serializes the data plane.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"dip/internal/core"
)

// histBuckets is the number of log2 latency buckets (1ns … ~32s).
const histBuckets = 36

type opStat struct {
	count   atomic.Int64
	totalNs atomic.Int64
	hist    [histBuckets]atomic.Int64
}

// Metrics implements core.Recorder and adds router-level verdict counters.
// The zero value is ready to use.
type Metrics struct {
	ops       [core.MaxKey + 1]opStat
	drops     [core.NumDropReasons]atomic.Int64
	forwarded atomic.Int64
	delivered atomic.Int64
	absorbed  atomic.Int64
	noAction  atomic.Int64
	received  atomic.Int64
}

// RecordOp implements core.Recorder.
func (m *Metrics) RecordOp(k core.Key, d time.Duration) {
	if k > core.MaxKey {
		return
	}
	s := &m.ops[k]
	s.count.Add(1)
	ns := d.Nanoseconds()
	s.totalNs.Add(ns)
	s.hist[bucketOf(ns)].Add(1)
}

// RecordDrop implements core.Recorder.
func (m *Metrics) RecordDrop(r core.DropReason) {
	if int(r) < core.NumDropReasons {
		m.drops[r].Add(1)
	}
}

// CountVerdict tallies a packet's final fate (drops are counted by
// RecordDrop, wired through the engine).
func (m *Metrics) CountVerdict(v core.Verdict) {
	m.received.Add(1)
	switch v {
	case core.VerdictForward:
		m.forwarded.Add(1)
	case core.VerdictDeliver:
		m.delivered.Add(1)
	case core.VerdictAbsorb:
		m.absorbed.Add(1)
	case core.VerdictContinue:
		// Every FN ran but none chose an egress: the packet completes with
		// no action (e.g. a pure authentication composition with no match
		// FN). Counted so received always reconciles.
		m.noAction.Add(1)
	}
}

func bucketOf(ns int64) int {
	b := 0
	for ns > 1 && b < histBuckets-1 {
		ns >>= 1
		b++
	}
	return b
}

// OpSnapshot is one operation's aggregate statistics.
type OpSnapshot struct {
	Key     core.Key
	Count   int64
	TotalNs int64
}

// Mean returns the mean execution time.
func (s OpSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.TotalNs / s.Count)
}

// Snapshot summarizes everything recorded so far.
type Snapshot struct {
	Ops       []OpSnapshot
	Drops     map[core.DropReason]int64
	Received  int64
	Forwarded int64
	Delivered int64
	Absorbed  int64
	NoAction  int64
}

// Snapshot captures current counters (concurrent-safe, monotone).
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{Drops: map[core.DropReason]int64{}}
	for k := core.Key(1); k <= core.MaxKey; k++ {
		if c := m.ops[k].count.Load(); c > 0 {
			s.Ops = append(s.Ops, OpSnapshot{Key: k, Count: c, TotalNs: m.ops[k].totalNs.Load()})
		}
	}
	for r := 0; r < core.NumDropReasons; r++ {
		if c := m.drops[r].Load(); c > 0 {
			s.Drops[core.DropReason(r)] = c
		}
	}
	s.Received = m.received.Load()
	s.Forwarded = m.forwarded.Load()
	s.Delivered = m.delivered.Load()
	s.Absorbed = m.absorbed.Load()
	s.NoAction = m.noAction.Load()
	return s
}

// Percentile estimates the p-quantile (0 < p ≤ 1) of an operation's
// execution time from its log2 histogram, returning the bucket's upper
// bound. Zero when the operation never ran.
func (m *Metrics) Percentile(k core.Key, p float64) time.Duration {
	if k > core.MaxKey {
		return 0
	}
	s := &m.ops[k]
	total := s.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(float64(total) * p)
	if target < 1 {
		target = 1
	}
	var cum int64
	for b := 0; b < histBuckets; b++ {
		cum += s.hist[b].Load()
		if cum >= target {
			return time.Duration(int64(1) << uint(b))
		}
	}
	return time.Duration(int64(1) << (histBuckets - 1))
}

// String renders a human-readable report.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "packets: received=%d forwarded=%d delivered=%d absorbed=%d no-action=%d\n",
		s.Received, s.Forwarded, s.Delivered, s.Absorbed, s.NoAction)
	for _, op := range s.Ops {
		fmt.Fprintf(&b, "  %-12s count=%-8d mean=%v\n", op.Key, op.Count, op.Mean())
	}
	if len(s.Drops) > 0 {
		reasons := make([]core.DropReason, 0, len(s.Drops))
		for r := range s.Drops {
			reasons = append(reasons, r)
		}
		sort.Slice(reasons, func(i, j int) bool { return reasons[i] < reasons[j] })
		for _, r := range reasons {
			fmt.Fprintf(&b, "  drop %-14s %d\n", r, s.Drops[r])
		}
	}
	return b.String()
}
