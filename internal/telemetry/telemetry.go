// Package telemetry collects the per-operation and per-verdict statistics
// the paper lists among DIP's opportunities ("efficient network telemetry",
// §5) and that the benchmark harness uses to report Figure 2 numbers.
//
// Counters are lock-free atomics so recording from concurrent forwarding
// goroutines never serializes the data plane.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"dip/internal/core"
)

// HistBuckets is the number of log2 latency buckets (1ns … ~32s). Bucket b
// holds samples whose nanosecond latency lies in [2^b, 2^(b+1)−1] (bucket 0
// additionally absorbs 0ns samples); BucketUpper gives the inclusive upper
// edge exporters should publish as a histogram boundary.
const HistBuckets = 36

// histBuckets is the internal alias predating the exported constant.
const histBuckets = HistBuckets

// BucketUpper returns the inclusive upper bound of log2 bucket b.
func BucketUpper(b int) time.Duration {
	if b < 0 {
		b = 0
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return time.Duration(int64(1)<<uint(b+1) - 1)
}

type opStat struct {
	count   atomic.Int64
	totalNs atomic.Int64
	hist    [histBuckets]atomic.Int64
}

// Event is a recovery or degradation occurrence counted alongside the
// per-packet verdicts: link-level faults (reported by impaired simulator
// links), end-to-end recovery actions (retransmissions, tunnel failovers),
// and state-maintenance work (PIT expiry sweeps). These make graceful
// degradation observable — a fabric that delivers everything but only via
// thousands of retransmits shows it here.
type Event uint8

// Event kinds.
const (
	EventLinkDrop    Event = iota // impaired link discarded a packet
	EventLinkDup                  // impaired link duplicated a packet
	EventLinkReorder              // impaired link reordered a packet
	EventLinkCorrupt              // impaired link corrupted a packet
	EventLinkDown                 // packet hit a scheduled down window
	EventRetransmit               // host retransmitted an interest
	EventDeadLetter               // host gave up on a name (retx cap)
	EventPITExpired               // PIT sweep removed an expired entry
	EventProbeMiss                // tunnel liveness probe unanswered
	EventFailover                 // tunnel switched to its backup remote
	EventBadEgress                // router asked to send on a missing port
	EventAdmitReject              // ingress admission control refused a packet
	EventShedLow                  // low-priority (bulk) queue full, packet shed
	EventShedHigh                 // high-priority (control) queue full, packet shed
	EventQuarantine               // a packet panicked a worker and was quarantined
	EventWorkerStall              // a forwarding worker exceeded the stall threshold
	EventCwndCut                  // a fetch flow multiplicatively decreased its window
	numEvents
)

// NumEvents is the count of distinct event kinds, for counter arrays.
const NumEvents = int(numEvents)

// String names the event.
func (e Event) String() string {
	switch e {
	case EventLinkDrop:
		return "link-drop"
	case EventLinkDup:
		return "link-dup"
	case EventLinkReorder:
		return "link-reorder"
	case EventLinkCorrupt:
		return "link-corrupt"
	case EventLinkDown:
		return "link-down"
	case EventRetransmit:
		return "retransmit"
	case EventDeadLetter:
		return "dead-letter"
	case EventPITExpired:
		return "pit-expired"
	case EventProbeMiss:
		return "probe-miss"
	case EventFailover:
		return "failover"
	case EventBadEgress:
		return "bad-egress"
	case EventAdmitReject:
		return "admit-reject"
	case EventShedLow:
		return "shed-low"
	case EventShedHigh:
		return "shed-high"
	case EventQuarantine:
		return "quarantine"
	case EventWorkerStall:
		return "worker-stall"
	case EventCwndCut:
		return "cwnd-cut"
	}
	return "event(?)"
}

// Metrics implements core.Recorder and adds router-level verdict counters.
// The zero value is ready to use.
type Metrics struct {
	ops       [core.MaxKey + 1]opStat
	drops     [core.NumDropReasons]atomic.Int64
	events    [NumEvents]atomic.Int64
	forwarded atomic.Int64
	delivered atomic.Int64
	absorbed  atomic.Int64
	noAction  atomic.Int64
	dropped   atomic.Int64
	received  atomic.Int64
}

// RecordEvent tallies a recovery/degradation event.
func (m *Metrics) RecordEvent(e Event) {
	if int(e) < NumEvents {
		m.events[e].Add(1)
	}
}

// Event returns the current count for one event kind.
func (m *Metrics) Event(e Event) int64 {
	if int(e) >= NumEvents {
		return 0
	}
	return m.events[e].Load()
}

// RecordOp implements core.Recorder.
func (m *Metrics) RecordOp(k core.Key, d time.Duration) {
	if k > core.MaxKey {
		return
	}
	s := &m.ops[k]
	s.count.Add(1)
	ns := d.Nanoseconds()
	s.totalNs.Add(ns)
	s.hist[bucketOf(ns)].Add(1)
}

// RecordDrop implements core.Recorder.
func (m *Metrics) RecordDrop(r core.DropReason) {
	if int(r) < core.NumDropReasons {
		m.drops[r].Add(1)
	}
}

// CountVerdict tallies a packet's final fate. Dropped packets land in the
// dropped total here (the per-reason breakdown comes from RecordDrop, wired
// through the engine), so received always reconciles against the sum of the
// verdict buckets.
func (m *Metrics) CountVerdict(v core.Verdict) {
	m.received.Add(1)
	switch v {
	case core.VerdictForward:
		m.forwarded.Add(1)
	case core.VerdictDeliver:
		m.delivered.Add(1)
	case core.VerdictAbsorb:
		m.absorbed.Add(1)
	case core.VerdictDrop:
		m.dropped.Add(1)
	case core.VerdictContinue:
		// Every FN ran but none chose an egress: the packet completes with
		// no action (e.g. a pure authentication composition with no match
		// FN). Counted so received always reconciles.
		m.noAction.Add(1)
	}
}

func bucketOf(ns int64) int {
	b := 0
	for ns > 1 && b < histBuckets-1 {
		ns >>= 1
		b++
	}
	return b
}

// OpSnapshot is one operation's aggregate statistics. Hist is the log2
// latency histogram (see BucketUpper for bucket edges).
type OpSnapshot struct {
	Key     core.Key
	Count   int64
	TotalNs int64
	Hist    [HistBuckets]int64
}

// Mean returns the mean execution time.
func (s OpSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.TotalNs / s.Count)
}

// Snapshot summarizes everything recorded so far.
type Snapshot struct {
	Ops       []OpSnapshot
	Drops     map[core.DropReason]int64
	Events    map[Event]int64
	Received  int64
	Forwarded int64
	Delivered int64
	Absorbed  int64
	NoAction  int64
	Dropped   int64
}

// Snapshot captures current counters (concurrent-safe, monotone).
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{Drops: map[core.DropReason]int64{}, Events: map[Event]int64{}}
	for k := core.Key(1); k <= core.MaxKey; k++ {
		if c := m.ops[k].count.Load(); c > 0 {
			op := OpSnapshot{Key: k, Count: c, TotalNs: m.ops[k].totalNs.Load()}
			for b := 0; b < histBuckets; b++ {
				op.Hist[b] = m.ops[k].hist[b].Load()
			}
			s.Ops = append(s.Ops, op)
		}
	}
	for r := 0; r < core.NumDropReasons; r++ {
		if c := m.drops[r].Load(); c > 0 {
			s.Drops[core.DropReason(r)] = c
		}
	}
	for e := 0; e < NumEvents; e++ {
		if c := m.events[e].Load(); c > 0 {
			s.Events[Event(e)] = c
		}
	}
	s.Received = m.received.Load()
	s.Forwarded = m.forwarded.Load()
	s.Delivered = m.delivered.Load()
	s.Absorbed = m.absorbed.Load()
	s.NoAction = m.noAction.Load()
	s.Dropped = m.dropped.Load()
	return s
}

// Delta returns the difference s − prev: what happened between two
// snapshots of the same Metrics. Dividing by the wall (or virtual) time
// separating the snapshots turns the monotone totals into rates — the form
// a fleet scraper (or a netsim time series) wants. Ops/Drops/Events present
// in s but absent from prev delta against zero; entries whose delta is zero
// are omitted, mirroring Snapshot's sparse maps.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{
		Drops:     map[core.DropReason]int64{},
		Events:    map[Event]int64{},
		Received:  s.Received - prev.Received,
		Forwarded: s.Forwarded - prev.Forwarded,
		Delivered: s.Delivered - prev.Delivered,
		Absorbed:  s.Absorbed - prev.Absorbed,
		NoAction:  s.NoAction - prev.NoAction,
		Dropped:   s.Dropped - prev.Dropped,
	}
	prevOps := map[core.Key]OpSnapshot{}
	for _, op := range prev.Ops {
		prevOps[op.Key] = op
	}
	for _, op := range s.Ops {
		p := prevOps[op.Key]
		dd := OpSnapshot{Key: op.Key, Count: op.Count - p.Count, TotalNs: op.TotalNs - p.TotalNs}
		for b := range op.Hist {
			dd.Hist[b] = op.Hist[b] - p.Hist[b]
		}
		if dd.Count != 0 {
			d.Ops = append(d.Ops, dd)
		}
	}
	for r, c := range s.Drops {
		if dc := c - prev.Drops[r]; dc != 0 {
			d.Drops[r] = dc
		}
	}
	for e, c := range s.Events {
		if dc := c - prev.Events[e]; dc != 0 {
			d.Events[e] = dc
		}
	}
	return d
}

// Percentile estimates the p-quantile of an operation's execution time
// from its log2 histogram, returning the inclusive upper bound of the
// bucket the quantile falls in: a sample of 3ns reports 3ns (bucket
// [2,3]), never the lower edge 2ns, so the estimate bounds the true
// quantile from above instead of undershooting it by up to 2×. The
// contract for p: NaN or p ≤ 0 returns 0, p > 1 clamps to 1 (the maximum
// recorded bucket's upper bound). Zero when the operation never ran.
func (m *Metrics) Percentile(k core.Key, p float64) time.Duration {
	if k > core.MaxKey {
		return 0
	}
	if math.IsNaN(p) || p <= 0 {
		return 0
	}
	if p > 1 {
		p = 1
	}
	s := &m.ops[k]
	total := s.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(float64(total) * p))
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum int64
	for b := 0; b < histBuckets; b++ {
		cum += s.hist[b].Load()
		if cum >= target {
			return BucketUpper(b)
		}
	}
	return BucketUpper(histBuckets - 1)
}

// String renders a human-readable report.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "packets: received=%d forwarded=%d delivered=%d absorbed=%d no-action=%d dropped=%d\n",
		s.Received, s.Forwarded, s.Delivered, s.Absorbed, s.NoAction, s.Dropped)
	for _, op := range s.Ops {
		fmt.Fprintf(&b, "  %-12s count=%-8d mean=%v\n", op.Key, op.Count, op.Mean())
	}
	if len(s.Drops) > 0 {
		reasons := make([]core.DropReason, 0, len(s.Drops))
		for r := range s.Drops {
			reasons = append(reasons, r)
		}
		sort.Slice(reasons, func(i, j int) bool { return reasons[i] < reasons[j] })
		for _, r := range reasons {
			fmt.Fprintf(&b, "  drop %-14s %d\n", r, s.Drops[r])
		}
	}
	if len(s.Events) > 0 {
		events := make([]Event, 0, len(s.Events))
		for e := range s.Events {
			events = append(events, e)
		}
		sort.Slice(events, func(i, j int) bool { return events[i] < events[j] })
		for _, e := range events {
			fmt.Fprintf(&b, "  event %-13s %d\n", e, s.Events[e])
		}
	}
	return b.String()
}
