package netsim

import (
	"testing"
	"time"
)

// TestTransitObserverIdentity pins the decomposition contract: for every
// delivered packet, Arrival - Offered == Queue + Wire exactly, with Queue
// nonzero only when a packet waits behind an earlier one.
func TestTransitObserverIdentity(t *testing.T) {
	s := New()
	var transits []Transit
	rx := ReceiverFunc(func([]byte, int) {})
	// 8000 bits/s: a 125-byte packet serializes in 125ms; 1ms propagation.
	e := s.Pipe(rx, 0, time.Millisecond, 8000)
	e.SetObserver(func(tr Transit) { transits = append(transits, tr) })
	pkt := make([]byte, 125)
	e.Send(pkt) // starts at 0
	e.Send(pkt) // queues 125ms behind the first
	s.Run()
	if len(transits) != 2 {
		t.Fatalf("observed %d transits, want 2", len(transits))
	}
	for i, tr := range transits {
		if tr.Dropped {
			t.Fatalf("transit %d dropped: %+v", i, tr)
		}
		if got, want := tr.Arrival-tr.Offered, tr.Queue+tr.Wire; got != want {
			t.Fatalf("transit %d identity broken: arrival-offered=%v queue+wire=%v", i, got, want)
		}
		if tr.Start != tr.Offered+tr.Queue {
			t.Fatalf("transit %d: start=%v, want offered+queue=%v", i, tr.Start, tr.Offered+tr.Queue)
		}
		if tr.Copies != 1 || tr.Corrupted {
			t.Fatalf("transit %d: copies=%d corrupted=%v", i, tr.Copies, tr.Corrupted)
		}
	}
	if transits[0].Queue != 0 {
		t.Errorf("first packet queued %v, want 0", transits[0].Queue)
	}
	if want := 125 * time.Millisecond; transits[1].Queue != want {
		t.Errorf("second packet queued %v, want %v", transits[1].Queue, want)
	}
	if want := 126 * time.Millisecond; transits[0].Wire != want {
		t.Errorf("wire time %v, want serialization+propagation %v", transits[0].Wire, want)
	}
}

// TestTransitObserverDropCauses checks each drop path reports its cause.
func TestTransitObserverDropCauses(t *testing.T) {
	rx := ReceiverFunc(func([]byte, int) {})

	t.Run("link-down", func(t *testing.T) {
		s := New()
		var tr Transit
		e := s.Pipe(rx, 0, 0, 0, WithTransitObserver(func(x Transit) { tr = x }))
		e.Dropped = true
		e.Send([]byte{1})
		s.Run()
		if !tr.Dropped || tr.Cause != "link-down" {
			t.Fatalf("got %+v, want dropped cause=link-down", tr)
		}
	})

	t.Run("tail-drop", func(t *testing.T) {
		s := New()
		var drops []Transit
		e := s.Pipe(rx, 0, 0, 8000, WithTransitObserver(func(x Transit) {
			if x.Dropped {
				drops = append(drops, x)
			}
		}))
		e.QueueLimit = 130 * time.Millisecond
		pkt := make([]byte, 125)
		for i := 0; i < 5; i++ {
			e.Send(pkt)
		}
		s.Run()
		if len(drops) != 3 {
			t.Fatalf("observed %d tail drops, want 3", len(drops))
		}
		for _, d := range drops {
			if d.Cause != "tail-drop" {
				t.Fatalf("cause = %q, want tail-drop", d.Cause)
			}
		}
	})

	t.Run("loss", func(t *testing.T) {
		s := New()
		var causes []string
		im := NewImpairment(1)
		im.DropProb = 1
		e := s.Pipe(rx, 0, 0, 0,
			WithImpairment(im),
			WithTransitObserver(func(x Transit) {
				if x.Dropped {
					causes = append(causes, x.Cause)
				}
			}))
		e.Send([]byte{1})
		s.Run()
		if len(causes) != 1 || causes[0] != "loss" {
			t.Fatalf("causes = %v, want [loss]", causes)
		}
	})
}
