package netsim

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// trace records one delivery: arrival time, port, and payload bytes.
type trace struct {
	at   time.Duration
	port int
	pkt  []byte
}

func (tr trace) String() string { return fmt.Sprintf("%v/p%d/%x", tr.at, tr.port, tr.pkt) }

// runStream pushes a deterministic packet stream through a link built by
// mkPipe and returns the full delivery trace.
func runStream(mkPipe func(s *Simulator, rx Receiver) *Endpoint) []trace {
	s := New()
	var got []trace
	rx := ReceiverFunc(func(pkt []byte, port int) {
		got = append(got, trace{at: s.Now(), port: port, pkt: append([]byte(nil), pkt...)})
	})
	e := mkPipe(s, rx)
	// The same stream the pre-impairment netsim tests exercise: bursts that
	// queue on finite bandwidth, varying sizes, staggered send times.
	for i := 0; i < 40; i++ {
		i := i
		s.Schedule(time.Duration(i)*300*time.Microsecond, func() {
			pkt := bytes.Repeat([]byte{byte(i)}, 60+8*i)
			e.Send(pkt)
		})
	}
	s.Run()
	return got
}

func tracesEqual(a, b []trace) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].at != b[i].at || a[i].port != b[i].port || !bytes.Equal(a[i].pkt, b[i].pkt) {
			return false
		}
	}
	return true
}

// Property: with seed S the full fault sequence — which packets drop,
// duplicate, reorder, corrupt, and by how much they jitter — is bit-identical
// across runs.
func TestImpairmentDeterministicAcrossRuns(t *testing.T) {
	mk := func() func(s *Simulator, rx Receiver) *Endpoint {
		return func(s *Simulator, rx Receiver) *Endpoint {
			im := NewImpairment(42)
			im.DropProb = 0.15
			im.DupProb = 0.1
			im.ReorderProb = 0.1
			im.ReorderDelay = 2 * time.Millisecond
			im.CorruptProb = 0.1
			im.Jitter = 500 * time.Microsecond
			im.DownBetween(4*time.Millisecond, 5*time.Millisecond)
			return s.Pipe(rx, 3, time.Millisecond, 1e6, WithImpairment(im))
		}
	}
	a := runStream(mk())
	b := runStream(mk())
	if len(a) == 0 {
		t.Fatal("impaired link delivered nothing")
	}
	if !tracesEqual(a, b) {
		t.Fatalf("same seed diverged:\n run1 %v\n run2 %v", a, b)
	}
	// Different seed must (with these rates, over 40 packets) diverge —
	// guards against the RNG being ignored.
	mkOther := func(s *Simulator, rx Receiver) *Endpoint {
		im := NewImpairment(1337)
		im.DropProb = 0.15
		im.DupProb = 0.1
		im.ReorderProb = 0.1
		im.ReorderDelay = 2 * time.Millisecond
		im.CorruptProb = 0.1
		im.Jitter = 500 * time.Microsecond
		im.DownBetween(4*time.Millisecond, 5*time.Millisecond)
		return s.Pipe(rx, 3, time.Millisecond, 1e6, WithImpairment(im))
	}
	if c := runStream(mkOther); tracesEqual(a, c) {
		t.Error("different seeds produced identical fault sequences")
	}
}

// Property: an attached Impairment with all rates zero is byte-for-byte
// (and virtual-time-for-virtual-time) equivalent to a plain link.
func TestZeroImpairmentEquivalentToPlainLink(t *testing.T) {
	plain := runStream(func(s *Simulator, rx Receiver) *Endpoint {
		e := s.Pipe(rx, 1, 2*time.Millisecond, 8e5)
		e.QueueLimit = 10 * time.Millisecond
		return e
	})
	impaired := runStream(func(s *Simulator, rx Receiver) *Endpoint {
		return s.Pipe(rx, 1, 2*time.Millisecond, 8e5,
			WithImpairment(NewImpairment(7)), WithQueueLimit(10*time.Millisecond))
	})
	if len(plain) == 0 {
		t.Fatal("plain link delivered nothing")
	}
	if !tracesEqual(plain, impaired) {
		t.Fatalf("zero impairment changed link behaviour:\n plain    %v\n impaired %v", plain, impaired)
	}
}

func TestImpairmentDrop(t *testing.T) {
	s := New()
	delivered := 0
	im := NewImpairment(1)
	im.DropProb = 0.5
	e := s.Pipe(ReceiverFunc(func([]byte, int) { delivered++ }), 0, 0, 0, WithImpairment(im))
	for i := 0; i < 200; i++ {
		e.Send([]byte{byte(i)})
	}
	s.Run()
	if im.Drops == 0 || delivered == 0 {
		t.Fatalf("drops=%d delivered=%d, want both nonzero", im.Drops, delivered)
	}
	if int64(delivered)+im.Drops != 200 {
		t.Errorf("conservation: delivered %d + dropped %d != 200", delivered, im.Drops)
	}
	if delivered < 60 || delivered > 140 {
		t.Errorf("50%% loss delivered %d/200", delivered)
	}
}

func TestImpairmentDuplicate(t *testing.T) {
	s := New()
	delivered := 0
	im := NewImpairment(2)
	im.DupProb = 1.0
	e := s.Pipe(ReceiverFunc(func([]byte, int) { delivered++ }), 0, 0, 0, WithImpairment(im))
	e.Send([]byte{1})
	s.Run()
	if delivered != 2 || im.Dups != 1 {
		t.Errorf("delivered=%d dups=%d, want 2/1", delivered, im.Dups)
	}
}

func TestImpairmentCorruptFlipsExactlyOneBit(t *testing.T) {
	s := New()
	var got []byte
	im := NewImpairment(3)
	im.CorruptProb = 1.0
	e := s.Pipe(ReceiverFunc(func(p []byte, _ int) { got = append([]byte(nil), p...) }), 0, 0, 0, WithImpairment(im))
	orig := bytes.Repeat([]byte{0xAA}, 32)
	sent := append([]byte(nil), orig...)
	e.Send(sent)
	s.Run()
	if !bytes.Equal(sent, orig) {
		t.Fatal("corruption mutated the sender's buffer")
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 || im.Corrupts != 1 {
		t.Errorf("corrupted %d bytes (counter %d), want exactly 1", diff, im.Corrupts)
	}
}

func TestImpairmentReorderOvertakes(t *testing.T) {
	s := New()
	var order []byte
	im := NewImpairment(4)
	im.ReorderProb = 1.0
	im.ReorderDelay = 5 * time.Millisecond
	e := s.Pipe(ReceiverFunc(func(p []byte, _ int) { order = append(order, p[0]) }), 0, time.Millisecond, 0, WithImpairment(im))
	e.Send([]byte{1}) // held back 5ms
	im.ReorderProb = 0
	s.Schedule(time.Millisecond, func() { e.Send([]byte{2}) }) // sails through
	s.Run()
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Errorf("arrival order %v, want [2 1]", order)
	}
	if im.Reorders != 1 {
		t.Errorf("reorder counter %d", im.Reorders)
	}
}

func TestImpairmentDownWindow(t *testing.T) {
	s := New()
	var arrived []byte
	im := NewImpairment(5)
	im.DownBetween(10*time.Millisecond, 20*time.Millisecond)
	e := s.Pipe(ReceiverFunc(func(p []byte, _ int) { arrived = append(arrived, p[0]) }), 0, 0, 0, WithImpairment(im))
	send := func(at time.Duration, b byte) {
		s.Schedule(at, func() { e.Send([]byte{b}) })
	}
	send(5*time.Millisecond, 1)  // before the window
	send(15*time.Millisecond, 2) // inside: dropped
	send(25*time.Millisecond, 3) // after: link restored
	s.Run()
	if len(arrived) != 2 || arrived[0] != 1 || arrived[1] != 3 {
		t.Errorf("arrivals %v, want [1 3]", arrived)
	}
	if im.DownDrops != 1 {
		t.Errorf("down drops %d", im.DownDrops)
	}
}

func TestImpairmentObserver(t *testing.T) {
	s := New()
	var events []ImpairEvent
	im := NewImpairment(6)
	im.DropProb = 1.0
	im.Observer = func(e ImpairEvent) { events = append(events, e) }
	e := s.Pipe(ReceiverFunc(func([]byte, int) {}), 0, 0, 0, WithImpairment(im))
	e.Send([]byte{1})
	s.Run()
	if len(events) != 1 || events[0] != ImpairDrop {
		t.Errorf("observer saw %v", events)
	}
	if ImpairDrop.String() != "drop" || ImpairDown.String() != "down" {
		t.Error("event names wrong")
	}
}
