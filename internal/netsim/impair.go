// Link impairments: a seeded, deterministic fault model attachable to any
// simulator Endpoint. The paper's evaluation runs on an ideal lab testbed;
// this file supplies the pathologies real deployments add on top — loss,
// duplication, reordering, bit corruption, delay jitter, and scheduled
// link-down/partition windows — so the recovery machinery layered over DIP
// (interest retransmission, PIT expiry, tunnel failover) has something to
// recover from.
//
// Everything is driven by one math/rand source seeded by the caller, and the
// simulator is single-goroutine, so a run with seed S replays bit-identically.
package netsim

import (
	"math/rand"
	"time"
)

// ImpairEvent classifies one fault decision an impaired link made.
type ImpairEvent uint8

// Impairment event kinds.
const (
	ImpairDrop    ImpairEvent = iota // packet discarded by random loss
	ImpairDup                        // packet delivered twice
	ImpairReorder                    // packet held back past its successors
	ImpairCorrupt                    // one payload byte flipped
	ImpairDown                       // packet discarded inside a down window
	numImpairEvents
)

// NumImpairEvents is the count of distinct impairment events.
const NumImpairEvents = int(numImpairEvents)

// String names the event.
func (e ImpairEvent) String() string {
	switch e {
	case ImpairDrop:
		return "drop"
	case ImpairDup:
		return "dup"
	case ImpairReorder:
		return "reorder"
	case ImpairCorrupt:
		return "corrupt"
	case ImpairDown:
		return "down"
	}
	return "impair(?)"
}

type window struct{ from, to time.Duration }

// Impairment is the fault model for one link direction. Probabilities are
// evaluated independently per packet, in a fixed order (down window, drop,
// corrupt, reorder, duplicate, jitter), so the RNG consumption — and
// therefore the whole fault sequence — is a pure function of the seed and
// the offered packet sequence.
//
// The zero probabilities/durations disable each fault, and an Endpoint with
// no Impairment attached behaves exactly as before.
type Impairment struct {
	rng *rand.Rand

	// DropProb is the probability a packet is silently discarded.
	DropProb float64
	// DupProb is the probability a packet is delivered twice (the copy
	// trails by ReorderDelay, or 1ms if unset).
	DupProb float64
	// ReorderProb is the probability a packet is held back by ReorderDelay
	// so later packets overtake it.
	ReorderProb float64
	// ReorderDelay is how long reordered (and duplicated) packets lag.
	ReorderDelay time.Duration
	// CorruptProb is the probability one byte of the packet is flipped.
	CorruptProb float64
	// Jitter adds a uniform random [0, Jitter) delay to every delivery.
	Jitter time.Duration

	downs []window

	// Observer, when set, is called synchronously for every fault decision
	// (wire it to telemetry). It must not block.
	Observer func(ImpairEvent)

	// Counters, by event kind.
	Drops, Dups, Reorders, Corrupts, DownDrops int64
}

// NewImpairment returns a fault model driven by a deterministic RNG seeded
// with seed. All probabilities start at zero (no faults).
func NewImpairment(seed int64) *Impairment {
	return &Impairment{rng: rand.New(rand.NewSource(seed))}
}

// DownBetween schedules a link-down window: packets offered at times
// t ∈ [from, to) are discarded. Windows may overlap; use one per direction
// on both Endpoints of a link to model a full partition.
func (im *Impairment) DownBetween(from, to time.Duration) *Impairment {
	im.downs = append(im.downs, window{from, to})
	return im
}

// DownAt reports whether the link is inside a down window at t.
func (im *Impairment) DownAt(t time.Duration) bool {
	for _, w := range im.downs {
		if t >= w.from && t < w.to {
			return true
		}
	}
	return false
}

// Faults returns the total number of fault decisions made so far.
func (im *Impairment) Faults() int64 {
	return im.Drops + im.Dups + im.Reorders + im.Corrupts + im.DownDrops
}

func (im *Impairment) note(e ImpairEvent) {
	switch e {
	case ImpairDrop:
		im.Drops++
	case ImpairDup:
		im.Dups++
	case ImpairReorder:
		im.Reorders++
	case ImpairCorrupt:
		im.Corrupts++
	case ImpairDown:
		im.DownDrops++
	}
	if im.Observer != nil {
		im.Observer(e)
	}
}

// verdict is what the model decided for one offered packet.
type verdict struct {
	drop       bool
	copies     int           // 1 normally, 2 when duplicated
	extraDelay time.Duration // reorder lag + jitter
	corruptAt  int           // byte index to flip, -1 for none
}

// decide consumes RNG state for one packet. The evaluation order is part of
// the determinism contract — do not reorder the branches.
func (im *Impairment) decide(now time.Duration, pktLen int) verdict {
	v := verdict{copies: 1, corruptAt: -1}
	if im.DownAt(now) {
		im.note(ImpairDown)
		v.drop = true
		return v
	}
	if im.DropProb > 0 && im.rng.Float64() < im.DropProb {
		im.note(ImpairDrop)
		v.drop = true
		return v
	}
	if im.CorruptProb > 0 && im.rng.Float64() < im.CorruptProb && pktLen > 0 {
		v.corruptAt = im.rng.Intn(pktLen)
		im.note(ImpairCorrupt)
	}
	lag := im.ReorderDelay
	if lag == 0 {
		lag = time.Millisecond
	}
	if im.ReorderProb > 0 && im.rng.Float64() < im.ReorderProb {
		v.extraDelay += lag
		im.note(ImpairReorder)
	}
	if im.DupProb > 0 && im.rng.Float64() < im.DupProb {
		v.copies = 2
		im.note(ImpairDup)
	}
	if im.Jitter > 0 {
		v.extraDelay += time.Duration(im.rng.Int63n(int64(im.Jitter)))
	}
	return v
}

// LinkOption configures an Endpoint at creation without disturbing the
// positional Pipe signature existing callers use.
type LinkOption func(*Endpoint)

// WithImpairment attaches a fault model to the link direction. Sharing one
// *Impairment between both directions is allowed (counters aggregate), but
// gives each direction's fault sequence a dependence on the interleaving of
// traffic; for strictly per-direction determinism attach separate models.
func WithImpairment(im *Impairment) LinkOption {
	return func(e *Endpoint) { e.impair = im }
}

// WithQueueLimit bounds queued transmission time at creation (equivalent to
// setting Endpoint.QueueLimit).
func WithQueueLimit(d time.Duration) LinkOption {
	return func(e *Endpoint) { e.QueueLimit = d }
}
