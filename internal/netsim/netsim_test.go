package netsim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := New()
	var got []int
	s.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	s.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	s.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	if n := s.Run(); n != 3 {
		t.Fatalf("ran %d events", n)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order %v", got)
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v", s.Now())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		s.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events reordered: %v", got)
		}
	}
}

func TestNestedSchedule(t *testing.T) {
	s := New()
	fired := false
	s.Schedule(time.Millisecond, func() {
		s.Schedule(time.Millisecond, func() { fired = true })
	})
	s.Run()
	if !fired {
		t.Error("nested event did not run")
	}
	if s.Now() != 2*time.Millisecond {
		t.Errorf("Now = %v", s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	ran := 0
	s.Schedule(time.Millisecond, func() { ran++ })
	s.Schedule(time.Hour, func() { ran++ })
	s.RunUntil(time.Second)
	if ran != 1 || s.Pending() != 1 {
		t.Errorf("ran=%d pending=%d", ran, s.Pending())
	}
	if s.Now() != time.Second {
		t.Errorf("Now = %v", s.Now())
	}
	s.Run()
	if ran != 2 {
		t.Errorf("ran=%d", ran)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New()
	ran := false
	s.Schedule(-time.Second, func() { ran = true })
	s.Run()
	if !ran || s.Now() != 0 {
		t.Errorf("ran=%v now=%v", ran, s.Now())
	}
}

func TestPipeDeliversCopy(t *testing.T) {
	s := New()
	var gotPkt []byte
	var gotPort int
	rx := ReceiverFunc(func(pkt []byte, port int) { gotPkt, gotPort = pkt, port })
	e := s.Pipe(rx, 7, 5*time.Millisecond, 0)

	buf := []byte{1, 2, 3}
	e.Send(buf)
	buf[0] = 99 // sender reuses its buffer immediately
	s.Run()
	if gotPort != 7 || len(gotPkt) != 3 || gotPkt[0] != 1 {
		t.Errorf("got %v on port %d", gotPkt, gotPort)
	}
	if s.Now() != 5*time.Millisecond {
		t.Errorf("propagation delay: %v", s.Now())
	}
	if e.Sent != 1 || e.Bytes != 3 || s.Delivered != 1 {
		t.Errorf("counters: sent=%d bytes=%d delivered=%d", e.Sent, e.Bytes, s.Delivered)
	}
}

func TestPipeSerializationDelay(t *testing.T) {
	s := New()
	var at time.Duration
	rx := ReceiverFunc(func([]byte, int) { at = s.Now() })
	// 1000 bits/s, 125-byte packet → 1s serialization + 1ms propagation.
	e := s.Pipe(rx, 0, time.Millisecond, 1000)
	e.Send(make([]byte, 125))
	s.Run()
	want := time.Second + time.Millisecond
	if at != want {
		t.Errorf("arrival at %v, want %v", at, want)
	}
}

func TestPipeDrop(t *testing.T) {
	s := New()
	delivered := false
	e := s.Pipe(ReceiverFunc(func([]byte, int) { delivered = true }), 0, 0, 0)
	e.Dropped = true
	e.Send([]byte{1})
	s.Run()
	if delivered {
		t.Error("dropped link delivered")
	}
	if e.Sent != 1 {
		t.Error("Sent not counted on drop")
	}
}

func TestPipeSerializationQueueing(t *testing.T) {
	s := New()
	var arrivals []time.Duration
	rx := ReceiverFunc(func([]byte, int) { arrivals = append(arrivals, s.Now()) })
	// 8000 bits/s: a 125-byte packet takes 125ms to serialize.
	e := s.Pipe(rx, 0, 0, 8000)
	pkt := make([]byte, 125)
	e.Send(pkt) // starts at 0, done at 125ms
	e.Send(pkt) // queues: starts at 125ms, done at 250ms
	s.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals %v", arrivals)
	}
	if arrivals[0] != 125*time.Millisecond || arrivals[1] != 250*time.Millisecond {
		t.Errorf("arrivals %v, want 125ms and 250ms", arrivals)
	}
}

func TestPipeQueueLimitSheds(t *testing.T) {
	s := New()
	delivered := 0
	e := s.Pipe(ReceiverFunc(func([]byte, int) { delivered++ }), 0, 0, 8000)
	e.QueueLimit = 130 * time.Millisecond
	pkt := make([]byte, 125) // 125ms serialization each
	for i := 0; i < 5; i++ {
		e.Send(pkt)
	}
	s.Run()
	// Packet 0 starts at 0, packet 1 queues 125ms (≤130ms), packet 2 would
	// queue 250ms: shed, as are the rest.
	if delivered != 2 || e.TailDrops != 3 {
		t.Errorf("delivered=%d taildrops=%d", delivered, e.TailDrops)
	}
}

func TestPipeInfiniteBandwidthNoQueue(t *testing.T) {
	s := New()
	var arrivals []time.Duration
	e := s.Pipe(ReceiverFunc(func([]byte, int) { arrivals = append(arrivals, s.Now()) }), 0, time.Millisecond, 0)
	e.Send(make([]byte, 1500))
	e.Send(make([]byte, 1500))
	s.Run()
	if len(arrivals) != 2 || arrivals[0] != arrivals[1] {
		t.Errorf("infinite-bandwidth sends must not queue: %v", arrivals)
	}
}
