// Package netsim is a small discrete-event network simulator: virtual
// time, an event queue, and links with propagation delay and serialization
// (bandwidth) delay. It stands in for the paper's lab testbed when
// exercising multi-hop DIP scenarios — NDN interest/data exchanges with PIT
// state at every hop, OPT tag chains across a path, tunnels across legacy
// domains — deterministically and without real sockets.
package netsim

import (
	"container/heap"
	"time"
)

// Receiver is anything that accepts packets on numbered ports (routers,
// host stacks, tunnel endpoints).
type Receiver interface {
	Receive(pkt []byte, port int)
}

// ReceiverFunc adapts a function to Receiver.
type ReceiverFunc func(pkt []byte, port int)

// Receive implements Receiver.
func (f ReceiverFunc) Receive(pkt []byte, port int) { f(pkt, port) }

type event struct {
	at  time.Duration
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Simulator owns virtual time and the event queue. Not safe for concurrent
// use: everything runs on the caller's goroutine, which is what makes runs
// reproducible.
type Simulator struct {
	now time.Duration
	pq  eventHeap
	seq int64
	// Delivered counts packets handed to receivers, for sanity checks.
	Delivered int64
}

// New returns a simulator at time zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Schedule queues fn to run after delay (≥ 0) of virtual time.
func (s *Simulator) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	heap.Push(&s.pq, event{at: s.now + delay, seq: s.seq, fn: fn})
}

// Run drains the event queue, returning how many events ran.
func (s *Simulator) Run() int { return s.RunUntil(1<<62 - 1) }

// RunUntil processes events with timestamps ≤ t, leaving later ones queued.
func (s *Simulator) RunUntil(t time.Duration) int {
	n := 0
	for len(s.pq) > 0 && s.pq[0].at <= t {
		e := heap.Pop(&s.pq).(event)
		s.now = e.at
		e.fn()
		n++
	}
	if t < 1<<62-1 && s.now < t {
		s.now = t
	}
	return n
}

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.pq) }

// Endpoint is one direction of a link: a router.Port-compatible sender that
// copies the packet and schedules its arrival at the destination after
// propagation plus serialization delay.
type Endpoint struct {
	sim     *Simulator
	dst     Receiver
	dstPort int
	delay   time.Duration
	bps     int64 // 0 = infinite bandwidth
	// busyUntil models serialization occupancy: a packet cannot start
	// transmitting before the previous one finished, so bursts queue.
	busyUntil time.Duration
	// QueueLimit bounds queued transmission time; a packet whose start
	// would lag now by more than this is tail-dropped. Zero = unbounded.
	QueueLimit time.Duration
	// Dropped, when set, makes the link black-hole packets (failure
	// injection for tests).
	Dropped bool
	// Sent counts packets offered to the link.
	Sent int64
	// Bytes counts payload bytes offered.
	Bytes int64
	// TailDrops counts packets shed by the queue limit.
	TailDrops int64
	// impair, when set, applies the seeded fault model to every packet
	// (see impair.go). Nil means a perfect link, exactly as before.
	impair *Impairment
	// obs, when set, receives every transit's fate (see observe.go).
	obs TransitObserver
	// inFlight counts packet copies scheduled but not yet delivered — the
	// link's instantaneous occupancy, which telemetry uses as a queue-depth
	// proxy on bps=0 links where serialization occupancy is always zero.
	inFlight int
}

// InFlight returns how many packet copies are currently in transit on this
// endpoint (scheduled, not yet delivered).
func (e *Endpoint) InFlight() int { return e.inFlight }

// Pipe creates an endpoint that delivers into dst's dstPort with the given
// propagation delay and bandwidth (bits per second; 0 means infinite).
// Options (fault injection, queue limits) apply in order.
func (s *Simulator) Pipe(dst Receiver, dstPort int, delay time.Duration, bps int64, opts ...LinkOption) *Endpoint {
	e := &Endpoint{sim: s, dst: dst, dstPort: dstPort, delay: delay, bps: bps}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Impair returns the link's fault model, or nil for a perfect link.
func (e *Endpoint) Impair() *Impairment { return e.impair }

// Send implements the router Port contract: the packet is copied, so the
// caller's buffer is free for reuse when Send returns. With finite
// bandwidth, back-to-back packets queue behind each other on the link
// (serialization occupancy), and QueueLimit sheds excess queue.
func (e *Endpoint) Send(pkt []byte) {
	e.Sent++
	e.Bytes += int64(len(pkt))
	now := e.sim.Now()
	if e.Dropped {
		e.observeDrop(pkt, now, now, "link-down")
		return
	}
	start := now
	if e.bps > 0 && e.busyUntil > start {
		start = e.busyUntil
	}
	if e.QueueLimit > 0 && start-now > e.QueueLimit {
		e.TailDrops++
		e.observeDrop(pkt, now, start, "tail-drop")
		return
	}
	var tx time.Duration
	if e.bps > 0 {
		tx = time.Duration(int64(len(pkt)) * 8 * int64(time.Second) / e.bps)
		e.busyUntil = start + tx
	}
	arrival := start - now + tx + e.delay
	copies := 1
	corrupted := false
	orig := pkt
	if im := e.impair; im != nil {
		v := im.decide(now, len(pkt))
		if v.drop {
			// decide does not say which fault fired, but DownAt is pure
			// (no RNG), so re-checking it attributes the drop without
			// perturbing the deterministic fault sequence.
			cause := "loss"
			if im.DownAt(now) {
				cause = "down"
			}
			e.observeDrop(pkt, now, start, cause)
			return
		}
		arrival += v.extraDelay
		copies = v.copies
		if v.corruptAt >= 0 {
			// Flip one bit in a scratch copy so the sender's buffer (which
			// the contract says we must not retain or mutate) stays intact.
			cp := make([]byte, len(pkt))
			copy(cp, pkt)
			cp[v.corruptAt] ^= 0x01
			pkt = cp
			corrupted = true
		}
	}
	if e.obs != nil {
		// Report the pre-corruption bytes so content-derived correlation
		// (journey fingerprints) matches the sender's view of the packet.
		e.obs(Transit{
			Pkt:       orig,
			Offered:   now,
			Start:     start,
			Arrival:   now + arrival,
			Queue:     start - now,
			Wire:      arrival - (start - now),
			Copies:    copies,
			Corrupted: corrupted,
		})
	}
	dst, port := e.dst, e.dstPort
	sim := e.sim
	for i := 0; i < copies; i++ {
		cp := make([]byte, len(pkt))
		copy(cp, pkt)
		at := arrival
		if i > 0 {
			// Duplicates trail the original by the reorder lag.
			lag := e.impair.ReorderDelay
			if lag == 0 {
				lag = time.Millisecond
			}
			at += lag
		}
		e.inFlight++
		sim.Schedule(at, func() {
			e.inFlight--
			sim.Delivered++
			dst.Receive(cp, port)
		})
	}
}

// observeDrop reports a transit that died on this link. Queue covers the
// time the packet would have waited before the fault killed it (nonzero
// only for tail drops, which are decided by queue depth).
func (e *Endpoint) observeDrop(pkt []byte, now, start time.Duration, cause string) {
	if e.obs == nil {
		return
	}
	e.obs(Transit{
		Pkt:     pkt,
		Offered: now,
		Start:   start,
		Queue:   start - now,
		Dropped: true,
		Cause:   cause,
	})
}
