// Link transit observation: a per-endpoint hook that reports every offered
// packet's fate — delivered (with the queueing vs wire-time split the
// simulator already computes) or dropped (with the cause) — to an observer.
// internal/journey adapts this into per-link spans; the hook is generic so
// tests and other telemetry can use it too.
package netsim

import "time"

// Transit describes one packet's passage through (or death on) one link
// direction. Times are absolute virtual timestamps except Queue and Wire,
// which decompose the transit: Queue is time spent waiting behind earlier
// packets (serialization occupancy), Wire is serialization + propagation +
// any impairment-injected delay, and for delivered packets
// Arrival - Offered == Queue + Wire exactly.
type Transit struct {
	// Pkt is the offered packet (pre-corruption, so content-derived
	// correlation survives bit flips). Valid only during the observer call;
	// do not retain.
	Pkt []byte
	// Offered is when the sender handed the packet to the link.
	Offered time.Duration
	// Start is when transmission began (Offered + Queue).
	Start time.Duration
	// Arrival is when the packet reaches the far end (zero if dropped).
	Arrival time.Duration
	// Queue and Wire decompose the transit (see type comment).
	Queue, Wire time.Duration
	// Dropped marks a packet that never arrives; Cause says why:
	// "link-down" (Endpoint.Dropped black-hole), "tail-drop" (queue limit),
	// "down" (impairment down window), "loss" (impairment random loss).
	Dropped bool
	Cause   string
	// Copies is the delivered copy count (2 when fault-duplicated).
	Copies int
	// Corrupted marks a delivery with one bit flipped in flight.
	Corrupted bool
}

// TransitObserver receives every transit on an observed link direction. It
// runs synchronously on the simulator goroutine and must not block or
// retain Transit.Pkt.
type TransitObserver func(Transit)

// WithTransitObserver attaches a transit observer at link creation.
func WithTransitObserver(obs TransitObserver) LinkOption {
	return func(e *Endpoint) { e.obs = obs }
}

// SetObserver attaches (or, with nil, removes) the transit observer on an
// existing endpoint — how topo wires journey taps onto already-built links.
func (e *Endpoint) SetObserver(obs TransitObserver) { e.obs = obs }
