package profiles

import (
	"encoding/binary"
	"fmt"

	"dip/internal/core"
)

// Next-header values for DIP control messages.
const (
	// NHData marks an ordinary payload-bearing packet.
	NHData = 0
	// NHFNUnsupported marks the ICMP-like "FN unsupported" notification a
	// router returns when a packet demands an operation it cannot run and
	// the operation's policy requires on-path participation (§2.4).
	NHFNUnsupported = 0xFE
	// NHRouteExchange marks an in-fabric route-exchange message (an
	// advertisement or withdraw, internal/bootstrap): a hop-scoped control
	// packet whose payload the receiving router's control stack consumes.
	// The ingress guard classifies it as control class, so route exchange
	// keeps converging while bulk traffic is being shed.
	NHRouteExchange = 0xFC
)

// RouteExchange builds the header a route-exchange message rides in: a
// single F_ctl FN (delivered at the next DIP hop — the neighbor), with the
// encoded advertisement or withdraw as the payload. One byte of the
// locations region backs the (unused) operand.
func RouteExchange() *core.Header {
	return &core.Header{
		HopLimit:   DefaultHopLimit,
		NextHeader: NHRouteExchange,
		FNs:        []core.FN{core.RouterFN(0, 8, core.KeyCtl)},
		Locations:  make([]byte, 1),
	}
}

// BuildFNUnsupported constructs the §2.4 notification: a DIP packet
// addressed to srcAddr (4 or 16 bytes, from the original packet's F_source
// field) whose next header is NHFNUnsupported and whose payload names the
// offending operation key.
func BuildFNUnsupported(srcAddr []byte, key core.Key) ([]byte, error) {
	var h *core.Header
	switch len(srcAddr) {
	case 4:
		var dst [4]byte
		copy(dst[:], srcAddr)
		h = IPv4([4]byte{}, dst)
	case 16:
		var dst [16]byte
		copy(dst[:], srcAddr)
		h = IPv6([16]byte{}, dst)
	default:
		return nil, fmt.Errorf("profiles: cannot address FN-unsupported reply to %d-byte source", len(srcAddr))
	}
	h.NextHeader = NHFNUnsupported
	buf, err := h.AppendTo(make([]byte, 0, h.WireSize()+2))
	if err != nil {
		return nil, err
	}
	return binary.BigEndian.AppendUint16(buf, uint16(key)), nil
}

// ParseFNUnsupported extracts the offending key from an FN-unsupported
// notification. ok is false when the packet is not such a notification.
func ParseFNUnsupported(v core.View) (core.Key, bool) {
	if v.NextHeader() != NHFNUnsupported {
		return 0, false
	}
	p := v.Payload()
	if len(p) < 2 {
		return 0, false
	}
	return core.Key(binary.BigEndian.Uint16(p)), true
}
