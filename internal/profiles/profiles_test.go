package profiles

import (
	"bytes"
	"encoding/binary"
	"testing"

	"dip/internal/core"
	"dip/internal/drkey"
	"dip/internal/extops"
	"dip/internal/ip"
	"dip/internal/ndn"
	"dip/internal/opt"
	"dip/internal/xia"
)

func session(t *testing.T, hops int) *opt.Session {
	t.Helper()
	cfgs := make([]opt.HopConfig, hops)
	for i := range cfgs {
		sv, err := drkey.NewSecretValue("r", bytes.Repeat([]byte{byte(i + 1)}, 16))
		if err != nil {
			t.Fatal(err)
		}
		cfgs[i] = opt.HopConfig{Secret: sv, HopIndex: uint8(i)}
	}
	dst, _ := drkey.NewSecretValue("dst", bytes.Repeat([]byte{0xDD}, 16))
	s, err := opt.NewSession(opt.Kind2EM, cfgs, dst)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTable2HeaderSizes is experiment E2: every row of the paper's Table 2,
// byte for byte.
func TestTable2HeaderSizes(t *testing.T) {
	sess := session(t, 1)
	optHdr, err := OPT(sess, []byte("x"), 0)
	if err != nil {
		t.Fatal(err)
	}
	ndnOptHdr, err := NDNOPTData(sess, 1, []byte("x"), 0)
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		name string
		got  int
		want int
	}{
		{"IPv6 forwarding (native)", ip.HeaderLen6, 40},
		{"IPv4 forwarding (native)", ip.HeaderLen4, 20},
		{"DIP-128 forwarding", IPv6([16]byte{}, [16]byte{}).WireSize(), 50},
		{"DIP-32 forwarding", IPv4([4]byte{}, [4]byte{}).WireSize(), 26},
		{"NDN forwarding", NDNInterest(1).WireSize(), 16},
		{"OPT forwarding", optHdr.WireSize(), 98},
		{"NDN+OPT forwarding", ndnOptHdr.WireSize(), 108},
	}
	for _, r := range rows {
		if r.got != r.want {
			t.Errorf("%s: %d bytes, want %d", r.name, r.got, r.want)
		}
	}
	// The native NDN header also measures 16 bytes.
	if ndn.HeaderSize != 16 {
		t.Errorf("native NDN header = %d", ndn.HeaderSize)
	}
	// NDN data packets carry the same single-FN shape as interests.
	if NDNData(1).WireSize() != 16 {
		t.Errorf("NDN data = %d", NDNData(1).WireSize())
	}
}

func TestIPv4ProfileLayout(t *testing.T) {
	h := IPv4([4]byte{1, 2, 3, 4}, [4]byte{5, 6, 7, 8})
	if !bytes.Equal(h.Locations[0:4], []byte{5, 6, 7, 8}) {
		t.Error("destination must occupy the lower 32 bits")
	}
	if !bytes.Equal(h.Locations[4:8], []byte{1, 2, 3, 4}) {
		t.Error("source must occupy the upper 32 bits")
	}
	// The paper's triples: (loc:0,len:32,key:1) and (loc:32,len:32,key:3).
	want0 := core.RouterFN(0, 32, core.KeyMatch32)
	want1 := core.RouterFN(32, 32, core.KeySource)
	if h.FNs[0] != want0 || h.FNs[1] != want1 {
		t.Errorf("FNs = %v", h.FNs)
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

func TestIPv6ProfileLayout(t *testing.T) {
	var src, dst [16]byte
	src[0], dst[0] = 0xAA, 0xBB
	h := IPv6(src, dst)
	if h.Locations[0] != 0xBB || h.Locations[16] != 0xAA {
		t.Error("layout: dst low, src high")
	}
	want0 := core.RouterFN(0, 128, core.KeyMatch128)
	want1 := core.RouterFN(128, 128, core.KeySource)
	if h.FNs[0] != want0 || h.FNs[1] != want1 {
		t.Errorf("FNs = %v", h.FNs)
	}
}

func TestOPTProfileTriples(t *testing.T) {
	sess := session(t, 1)
	h, err := OPT(sess, []byte("payload"), 99)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's §3 OPT triples.
	want := []core.FN{
		core.RouterFN(128, 128, core.KeyParm),
		core.RouterFN(0, 416, core.KeyMAC),
		core.RouterFN(288, 128, core.KeyMark),
		core.HostFN(0, 544, core.KeyVer),
	}
	if len(h.FNs) != 4 {
		t.Fatalf("FNs = %v", h.FNs)
	}
	for i := range want {
		if h.FNs[i] != want[i] {
			t.Errorf("FN %d = %v, want %v", i, h.FNs[i], want[i])
		}
	}
	// The region was initialized: session ID present.
	r, _ := opt.AsRegion(h.Locations)
	if !bytes.Equal(r.SessionID(), sess.ID[:]) {
		t.Error("session ID not in region")
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

func TestOPTMultiHopGrows(t *testing.T) {
	sess := session(t, 3)
	h, err := OPT(sess, []byte("p"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Locations) != opt.RegionSize(3) {
		t.Errorf("locations = %d", len(h.Locations))
	}
	if h.FNs[3].Len != uint16(opt.RegionBits(3)) {
		t.Errorf("F_ver operand = %d bits", h.FNs[3].Len)
	}
}

func TestNDNOPTLayoutShift(t *testing.T) {
	sess := session(t, 1)
	h, err := NDNOPTData(sess, 0xCAFE0001, []byte("c"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if binary.BigEndian.Uint32(h.Locations[:4]) != 0xCAFE0001 {
		t.Error("name not at bits 0..32")
	}
	// Every OPT FN shifted by +32 bits.
	if h.FNs[1] != core.RouterFN(32+128, 128, core.KeyParm) {
		t.Errorf("parm = %v", h.FNs[1])
	}
	if h.FNs[2] != core.RouterFN(32, 416, core.KeyMAC) {
		t.Errorf("mac = %v", h.FNs[2])
	}
	if h.FNs[3] != core.RouterFN(32+288, 128, core.KeyMark) {
		t.Errorf("mark = %v", h.FNs[3])
	}
	if h.FNs[4] != core.HostFN(32, 544, core.KeyVer) {
		t.Errorf("ver = %v", h.FNs[4])
	}
	if h.FNs[0] != core.RouterFN(0, 32, core.KeyPIT) {
		t.Errorf("pit = %v", h.FNs[0])
	}
	region := NDNOPTRegion(h.Locations)
	r, _ := opt.AsRegion(region)
	if !bytes.Equal(r.SessionID(), sess.ID[:]) {
		t.Error("session ID misplaced after shift")
	}
	// Interest twin carries F_FIB instead.
	hi, err := NDNOPTInterest(sess, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hi.FNs[0].Key != core.KeyFIB {
		t.Errorf("interest first FN = %v", hi.FNs[0])
	}
}

func TestOPTRequiresHops(t *testing.T) {
	dst, _ := drkey.NewSecretValue("d", bytes.Repeat([]byte{1}, 16))
	sess, err := opt.NewSession(opt.Kind2EM, nil, dst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OPT(sess, nil, 0); err == nil {
		t.Error("0-hop OPT accepted")
	}
	if _, err := NDNOPTData(sess, 1, nil, 0); err == nil {
		t.Error("0-hop NDN+OPT accepted")
	}
}

func TestXIAProfile(t *testing.T) {
	d := &xia.DAG{
		SrcEdges: []int{1, 0},
		Nodes: []xia.Node{
			{XID: xia.NewXID(xia.TypeAD, []byte("a")), Edges: []int{1}},
			{XID: xia.NewXID(xia.TypeSID, []byte("s"))},
		},
	}
	h, err := XIA(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.FNs) != 2 || h.FNs[0].Key != core.KeyDAG || h.FNs[1].Key != core.KeyIntent {
		t.Errorf("FNs = %v", h.FNs)
	}
	got, last, _, err := xia.Decode(h.Locations)
	if err != nil || last != xia.SourceIndex || !got.Equal(d) {
		t.Errorf("encoded DAG: %v %d", err, last)
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

func TestWithPass(t *testing.T) {
	var label [16]byte
	label[0] = 0xEE
	base := NDNData(7)
	h := WithPass(base, 7, label)
	if h.FNs[0].Key != core.KeyPass || h.FNs[0].Len != 160 {
		t.Errorf("guard FN = %v", h.FNs[0])
	}
	if h.FNs[1].Key != core.KeyPIT {
		t.Errorf("original FN lost: %v", h.FNs)
	}
	off := len(base.Locations)
	if binary.BigEndian.Uint32(h.Locations[off:]) != 7 || h.Locations[off+4] != 0xEE {
		t.Error("guard operand layout")
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
	// The base header must be untouched.
	if len(base.FNs) != 1 || len(base.Locations) != 4 {
		t.Error("WithPass mutated its input")
	}
}

// TestWithTelemetryRoundTripsTable2 splices F_tel onto every shipped
// profile and checks each still reproduces its Table 2 cost row exactly,
// plus the known telemetry overhead — and that the result marshals, parses,
// validates, and exposes its region to the delivering edge.
func TestWithTelemetryRoundTripsTable2(t *testing.T) {
	sess := session(t, 1)
	optHdr, err := OPT(sess, []byte("x"), 0)
	if err != nil {
		t.Fatal(err)
	}
	ndnOptHdr, err := NDNOPTData(sess, 1, []byte("x"), 0)
	if err != nil {
		t.Fatal(err)
	}
	ndnOptIntr, err := NDNOPTInterest(sess, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	xiaHdr, err := XIA(&xia.DAG{
		SrcEdges: []int{0},
		Nodes:    []xia.Node{{XID: xia.NewXID(xia.TypeSID, []byte("s"))}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		name string
		h    *core.Header
		base int // Table 2 row; 0 = no fixed row, measure
	}{
		{"DIP-32", IPv4([4]byte{1, 2, 3, 4}, [4]byte{5, 6, 7, 8}), 26},
		{"DIP-128", IPv6([16]byte{}, [16]byte{}), 50},
		{"NDN interest", NDNInterest(1), 16},
		{"NDN data", NDNData(1), 16},
		{"OPT", optHdr, 98},
		{"NDN+OPT data", ndnOptHdr, 108},
		{"NDN+OPT interest", ndnOptIntr, 0},
		{"XIA", xiaHdr, 0},
	}
	const slots = 8
	telBytes := 4 + slots*extops.TelSlotSize
	for _, r := range rows {
		base := r.base
		if base == 0 {
			base = r.h.WireSize()
		} else if r.h.WireSize() != base {
			t.Errorf("%s: base %d bytes, want Table 2's %d", r.name, r.h.WireSize(), base)
			continue
		}
		baseFNs, baseLocs := len(r.h.FNs), len(r.h.Locations)
		ht := WithTelemetry(r.h, slots)
		if got, want := ht.WireSize(), base+core.FNSize+telBytes; got != want {
			t.Errorf("%s+tel: %d bytes, want %d", r.name, got, want)
		}
		if err := ht.Validate(); err != nil {
			t.Errorf("%s+tel: %v", r.name, err)
			continue
		}
		b, err := ht.MarshalBinary()
		if err != nil {
			t.Errorf("%s+tel marshal: %v", r.name, err)
			continue
		}
		v, err := core.ParseView(b)
		if err != nil {
			t.Errorf("%s+tel parse: %v", r.name, err)
			continue
		}
		region, off, ok := TelemetryRegion(v)
		if !ok || off != baseLocs || len(region) != telBytes {
			t.Errorf("%s+tel region: ok=%v off=%d len=%d", r.name, ok, off, len(region))
		}
		want := core.RouterFN(uint16(baseLocs*8), extops.TelOperandBits(slots), extops.KeyTel)
		if ht.FNs[len(ht.FNs)-1] != want {
			t.Errorf("%s+tel FN = %v, want %v (appended last)", r.name, ht.FNs[len(ht.FNs)-1], want)
		}
		if len(r.h.FNs) != baseFNs || len(r.h.Locations) != baseLocs {
			t.Errorf("%s: WithTelemetry mutated its input", r.name)
		}
	}
}

func TestSourceOf(t *testing.T) {
	h := IPv4([4]byte{9, 9, 9, 9}, [4]byte{1, 1, 1, 1})
	b, _ := h.MarshalBinary()
	v, _ := core.ParseView(b)
	src := SourceOf(v)
	if !bytes.Equal(src, []byte{9, 9, 9, 9}) {
		t.Errorf("SourceOf = %v", src)
	}
	// No F_source FN → nil.
	b2, _ := NDNInterest(1).MarshalBinary()
	v2, _ := core.ParseView(b2)
	if SourceOf(v2) != nil {
		t.Error("SourceOf without F_source")
	}
}
