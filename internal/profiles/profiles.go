// Package profiles implements the host constructions of paper §3: the
// DIP-header compositions that realize each L3 protocol. A profile is
// nothing but a recipe for filling the FN-locations region and choosing FN
// triples — which is the paper's core claim, demonstrated here as code:
//
//	IP32/IP128   (loc:0,len:32,key:1)(loc:32,len:32,key:3) — and the 128-bit twins
//	NDN          interest (loc:0,len:32,key:4) / data (loc:0,len:32,key:5)
//	OPT          (128,128,6)(0,416,7)(288,128,8)(0,544,9·host)
//	NDN+OPT      FIB-or-PIT + the four OPT FNs shifted 32 bits
//	XIA          F_DAG + F_intent over an encoded DAG
//
// Every builder returns a core.Header whose WireSize reproduces the paper's
// Table 2 exactly (asserted by tests and by experiment E2).
package profiles

import (
	"encoding/binary"
	"fmt"

	"dip/internal/core"
	"dip/internal/extops"
	"dip/internal/opt"
	"dip/internal/xia"
)

// DefaultHopLimit matches common IP practice.
const DefaultHopLimit = 64

// IPv4 builds the DIP-32 forwarding header (Table 2: 26 bytes): destination
// in the lower 32 bits of the locations, source in the upper 32 bits
// (paper §3).
func IPv4(src, dst [4]byte) *core.Header {
	locs := make([]byte, 8)
	copy(locs[0:4], dst[:])
	copy(locs[4:8], src[:])
	return &core.Header{
		HopLimit: DefaultHopLimit,
		FNs: []core.FN{
			core.RouterFN(0, 32, core.KeyMatch32),
			core.RouterFN(32, 32, core.KeySource),
		},
		Locations: locs,
	}
}

// IPv6 builds the DIP-128 forwarding header (Table 2: 50 bytes).
func IPv6(src, dst [16]byte) *core.Header {
	locs := make([]byte, 32)
	copy(locs[0:16], dst[:])
	copy(locs[16:32], src[:])
	return &core.Header{
		HopLimit: DefaultHopLimit,
		FNs: []core.FN{
			core.RouterFN(0, 128, core.KeyMatch128),
			core.RouterFN(128, 128, core.KeySource),
		},
		Locations: locs,
	}
}

// NDNInterest builds the DIP-realized NDN interest (Table 2: 16 bytes):
// one F_FIB triple over the 32-bit content name — the triple
// (loc: 0, len: 32, key: 4) of paper §3.
func NDNInterest(name uint32) *core.Header {
	locs := make([]byte, 4)
	binary.BigEndian.PutUint32(locs, name)
	return &core.Header{
		HopLimit:  DefaultHopLimit,
		FNs:       []core.FN{core.RouterFN(0, 32, core.KeyFIB)},
		Locations: locs,
	}
}

// NDNData builds the DIP-realized NDN data packet: one F_PIT triple —
// (loc: 0, len: 32, key: 5). The content itself is the packet payload.
func NDNData(name uint32) *core.Header {
	locs := make([]byte, 4)
	binary.BigEndian.PutUint32(locs, name)
	return &core.Header{
		HopLimit:  DefaultHopLimit,
		FNs:       []core.FN{core.RouterFN(0, 32, core.KeyPIT)},
		Locations: locs,
	}
}

// OPT builds the standalone OPT header (Table 2: 98 bytes) for a packet
// carrying payload: the session's initialized 544-bit region in the
// locations and the paper's four FN triples — (128,128,6), (0,416,7),
// (288,128,8) router-tagged and (0,544,9) host-tagged. Multi-hop sessions
// grow the region and the F_ver operand by 128 bits per extra hop.
func OPT(sess *opt.Session, payload []byte, timestamp uint32) (*core.Header, error) {
	hops := sess.Hops()
	if hops < 1 {
		return nil, fmt.Errorf("profiles: OPT needs ≥ 1 hop, session has %d", hops)
	}
	locs := make([]byte, opt.RegionSize(hops))
	if err := sess.InitRegion(locs, payload, timestamp); err != nil {
		return nil, err
	}
	verBits := uint16(opt.RegionBits(hops))
	return &core.Header{
		HopLimit: DefaultHopLimit,
		FNs: []core.FN{
			core.RouterFN(opt.SessionIDOff*8, 128, core.KeyParm),
			core.RouterFN(0, opt.MACInputSize*8, core.KeyMAC),
			core.RouterFN(opt.PVFOff*8, 128, core.KeyMark),
			core.HostFN(0, verBits, core.KeyVer),
		},
		Locations: locs,
	}, nil
}

// NDNOPTData builds the derived NDN+OPT data packet (Table 2: 108 bytes):
// secure content delivery composing F_PIT with the four OPT FNs. The
// 32-bit content name occupies bits 0..32 of the locations and every OPT
// offset shifts by +32 — the composability the derived protocol rests on.
func NDNOPTData(sess *opt.Session, name uint32, payload []byte, timestamp uint32) (*core.Header, error) {
	return ndnOPT(sess, name, payload, timestamp, core.KeyPIT)
}

// NDNOPTInterest is the interest-side twin of NDNOPTData, composing F_FIB
// with the OPT FNs so interests are source-authenticated too.
func NDNOPTInterest(sess *opt.Session, name uint32, timestamp uint32) (*core.Header, error) {
	return ndnOPT(sess, name, nil, timestamp, core.KeyFIB)
}

func ndnOPT(sess *opt.Session, name uint32, payload []byte, timestamp uint32, ndnKey core.Key) (*core.Header, error) {
	hops := sess.Hops()
	if hops < 1 {
		return nil, fmt.Errorf("profiles: NDN+OPT needs ≥ 1 hop, session has %d", hops)
	}
	const shift = 4 // bytes the content name occupies before the OPT region
	locs := make([]byte, shift+opt.RegionSize(hops))
	binary.BigEndian.PutUint32(locs[:shift], name)
	if err := sess.InitRegion(locs[shift:], payload, timestamp); err != nil {
		return nil, err
	}
	verBits := uint16(opt.RegionBits(hops))
	return &core.Header{
		HopLimit: DefaultHopLimit,
		FNs: []core.FN{
			core.RouterFN(0, 32, ndnKey),
			core.RouterFN(shift*8+opt.SessionIDOff*8, 128, core.KeyParm),
			core.RouterFN(shift*8, opt.MACInputSize*8, core.KeyMAC),
			core.RouterFN(shift*8+opt.PVFOff*8, 128, core.KeyMark),
			core.HostFN(shift*8, verBits, core.KeyVer),
		},
		Locations: locs,
	}, nil
}

// NDNOPTRegion returns the OPT region view inside an NDN+OPT locations
// slice (everything after the 4-byte name).
func NDNOPTRegion(locations []byte) []byte { return locations[4:] }

// XIA builds the XIA header: F_DAG and F_intent over the encoded address
// (paper §3: "set the header of XIA in the FN locations and use these two
// operation modules").
func XIA(dag *xia.DAG) (*core.Header, error) {
	locs := make([]byte, dag.WireSize())
	if _, err := dag.Encode(locs, xia.SourceIndex); err != nil {
		return nil, err
	}
	bits := uint16(len(locs) * 8)
	return &core.Header{
		HopLimit: DefaultHopLimit,
		FNs: []core.FN{
			core.RouterFN(0, bits, core.KeyDAG),
			core.RouterFN(0, bits, core.KeyIntent),
		},
		Locations: locs,
	}, nil
}

// WithPass prepends an F_pass source-label guard to an NDN-style header:
// the label region ([name 32b][label 128b]) is appended to the locations
// and the FN list gains the guard triple. Producers stamp the label with
// ops.StampLabel before sending.
func WithPass(h *core.Header, name uint32, label [16]byte) *core.Header {
	off := uint16(len(h.Locations) * 8)
	locs := make([]byte, len(h.Locations)+20)
	copy(locs, h.Locations)
	binary.BigEndian.PutUint32(locs[len(h.Locations):], name)
	copy(locs[len(h.Locations)+4:], label[:])
	out := *h
	out.Locations = locs
	out.FNs = append(append([]core.FN(nil), core.RouterFN(off, 160, core.KeyPass)), h.FNs...)
	return &out
}

// WithTelemetry appends an F_tel in-band telemetry region to any profile
// header: a zeroed slot region (capacity `slots` hop records) joins the end
// of the locations — existing operand offsets are untouched, so the profile
// still parses and forwards identically — and the FN list gains the
// telemetry triple *after* the existing FNs, so each hop stamps its record
// once the match operation has already chosen the egress port. Routers
// without F_tel skip it per Algorithm 1 (PolicyIgnore): carrying telemetry
// through a non-INT hop is safe, the hop just leaves no record.
func WithTelemetry(h *core.Header, slots int) *core.Header {
	off := uint16(len(h.Locations) * 8)
	region := extops.NewTelRegion(slots)
	locs := make([]byte, 0, len(h.Locations)+len(region))
	locs = append(append(locs, h.Locations...), region...)
	out := *h
	out.Locations = locs
	out.FNs = append(append([]core.FN(nil), h.FNs...),
		core.RouterFN(off, extops.TelOperandBits(slots), extops.KeyTel))
	return &out
}

// TelemetryRegion locates the F_tel operand in a parsed view, returning the
// in-place region bytes, its byte offset in the locations, and whether the
// packet carries telemetry at all — the delivering edge's strip hook.
func TelemetryRegion(v core.View) (region []byte, off int, ok bool) {
	for i := 0; i < v.FNNum(); i++ {
		fn := v.FN(i)
		if fn.Key != extops.KeyTel || fn.Loc%8 != 0 || fn.Len%8 != 0 {
			continue
		}
		locs := v.Locations()
		o, n := int(fn.Loc)/8, int(fn.Len)/8
		if o+n <= len(locs) {
			return locs[o : o+n], o, true
		}
	}
	return nil, 0, false
}

// SourceOf extracts the source address recorded by an F_source FN, for
// reverse-path messaging. It returns nil when the header carries none.
func SourceOf(v core.View) []byte {
	for i := 0; i < v.FNNum(); i++ {
		fn := v.FN(i)
		if fn.Key == core.KeySource && fn.Loc%8 == 0 && fn.Len%8 == 0 {
			locs := v.Locations()
			off, n := int(fn.Loc)/8, int(fn.Len)/8
			if off+n <= len(locs) {
				return locs[off : off+n]
			}
		}
	}
	return nil
}

// XIAOPT builds a second derived protocol this implementation contributes
// beyond the paper's NDN+OPT: XIA addressing with OPT source/path
// authentication. The encoded DAG occupies the front of the locations
// (padded to a byte boundary) and the OPT region follows; F_DAG/F_intent
// traverse while F_parm/F_MAC/F_mark/F_ver authenticate — composability
// across the two most structurally different protocol families in §3.
func XIAOPT(dag *xia.DAG, sess *opt.Session, payload []byte, timestamp uint32) (*core.Header, error) {
	hops := sess.Hops()
	if hops < 1 {
		return nil, fmt.Errorf("profiles: XIA+OPT needs ≥ 1 hop, session has %d", hops)
	}
	dagSize := dag.WireSize()
	locs := make([]byte, dagSize+opt.RegionSize(hops))
	if _, err := dag.Encode(locs[:dagSize], xia.SourceIndex); err != nil {
		return nil, err
	}
	if err := sess.InitRegion(locs[dagSize:], payload, timestamp); err != nil {
		return nil, err
	}
	dagBits := uint16(dagSize * 8)
	shift := dagBits
	verBits := uint16(opt.RegionBits(hops))
	return &core.Header{
		HopLimit: DefaultHopLimit,
		FNs: []core.FN{
			core.RouterFN(0, dagBits, core.KeyDAG),
			core.RouterFN(0, dagBits, core.KeyIntent),
			core.RouterFN(shift+opt.SessionIDOff*8, 128, core.KeyParm),
			core.RouterFN(shift, opt.MACInputSize*8, core.KeyMAC),
			core.RouterFN(shift+opt.PVFOff*8, 128, core.KeyMark),
			core.HostFN(shift, verBits, core.KeyVer),
		},
		Locations: locs,
	}, nil
}

// XIAOPTRegion returns the OPT region view inside an XIA+OPT locations
// slice, given the DAG's wire size.
func XIAOPTRegion(locations []byte, dagWireSize int) []byte {
	return locations[dagWireSize:]
}
