package profiles

import (
	"bytes"
	"testing"

	"dip/internal/core"
	"dip/internal/drkey"
	"dip/internal/opt"
	"dip/internal/xia"
)

func xiaoptDAG() *xia.DAG {
	return &xia.DAG{
		SrcEdges: []int{1, 0},
		Nodes: []xia.Node{
			{XID: xia.NewXID(xia.TypeAD, []byte("ad")), Edges: []int{1}},
			{XID: xia.NewXID(xia.TypeSID, []byte("svc"))},
		},
	}
}

func TestXIAOPTLayout(t *testing.T) {
	sess := session(t, 2)
	dag := xiaoptDAG()
	payload := []byte("secured service request")
	h, err := XIAOPT(dag, sess, payload, 77)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	dagSize := dag.WireSize()
	if len(h.Locations) != dagSize+opt.RegionSize(2) {
		t.Fatalf("locations %d bytes", len(h.Locations))
	}
	// The DAG decodes from the front.
	got, last, n, err := xia.Decode(h.Locations[:dagSize])
	if err != nil || last != xia.SourceIndex || n != dagSize || !got.Equal(dag) {
		t.Fatalf("embedded DAG: %v last=%d n=%d", err, last, n)
	}
	// The OPT region sits behind it, initialized for this session.
	region := XIAOPTRegion(h.Locations, dagSize)
	r, err := opt.AsRegion(region)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.SessionID(), sess.ID[:]) {
		t.Error("session ID misplaced")
	}
	// FN triples: DAG ops over the DAG bits, OPT ops shifted past them.
	dagBits := uint16(dagSize * 8)
	want := []core.FN{
		core.RouterFN(0, dagBits, core.KeyDAG),
		core.RouterFN(0, dagBits, core.KeyIntent),
		core.RouterFN(dagBits+opt.SessionIDOff*8, 128, core.KeyParm),
		core.RouterFN(dagBits, opt.MACInputSize*8, core.KeyMAC),
		core.RouterFN(dagBits+opt.PVFOff*8, 128, core.KeyMark),
		core.HostFN(dagBits, uint16(opt.RegionBits(2)), core.KeyVer),
	}
	if len(h.FNs) != len(want) {
		t.Fatalf("FNs %v", h.FNs)
	}
	for i := range want {
		if h.FNs[i] != want[i] {
			t.Errorf("FN %d = %v, want %v", i, h.FNs[i], want[i])
		}
	}
}

func TestXIAOPTRequiresHops(t *testing.T) {
	dst, _ := drkey.NewSecretValue("d", bytes.Repeat([]byte{1}, 16))
	sess, err := opt.NewSession(opt.Kind2EM, nil, dst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := XIAOPT(xiaoptDAG(), sess, nil, 0); err == nil {
		t.Error("0-hop XIA+OPT accepted")
	}
}

func TestXIAOPTRejectsBadDAG(t *testing.T) {
	sess := session(t, 1)
	bad := &xia.DAG{SrcEdges: []int{0}, Nodes: []xia.Node{{Edges: []int{0}}}}
	if _, err := XIAOPT(bad, sess, nil, 0); err == nil {
		t.Error("invalid DAG accepted")
	}
}
