package cs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// newSyncTiered builds a synchronous (Readers 0) tiered store for
// deterministic tests: spills and reads happen inline.
func newSyncTiered(t *testing.T, hotCap, slots int, cfg ColdConfig) *Tiered[uint32] {
	t.Helper()
	cfg.Slots = slots
	ts, err := NewTiered(New[uint32](hotCap), cfg)
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	t.Cleanup(func() { ts.Close() })
	return ts
}

func TestArenaRoundTrip(t *testing.T) {
	a, err := NewArena("", 4, 64)
	if err != nil {
		t.Fatalf("NewArena: %v", err)
	}
	defer a.Close()
	slot, ok := a.Alloc()
	if !ok {
		t.Fatal("Alloc failed on empty arena")
	}
	payload := []byte("the cold payload")
	if err := a.WriteSlot(slot, 0xDEAD, payload); err != nil {
		t.Fatalf("WriteSlot: %v", err)
	}
	got, err := a.ReadSlot(nil, slot, 0xDEAD)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("ReadSlot = %q, %v", got, err)
	}
	// Wrong key hash must be rejected: a stale index entry pointing at a
	// recycled slot cannot return the wrong object.
	if _, err := a.ReadSlot(nil, slot, 0xBEEF); err == nil {
		t.Fatal("ReadSlot accepted a key-hash mismatch")
	}
	// A never-written slot fails the magic check.
	s2, _ := a.Alloc()
	if _, err := a.ReadSlot(nil, s2, 0); err == nil {
		t.Fatal("ReadSlot accepted an unwritten slot")
	}
}

func TestArenaAllocExhaustion(t *testing.T) {
	a, err := NewArena("", 3, 16)
	if err != nil {
		t.Fatalf("NewArena: %v", err)
	}
	defer a.Close()
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		s, ok := a.Alloc()
		if !ok || seen[s] {
			t.Fatalf("Alloc %d = (%d, %v), seen=%v", i, s, ok, seen)
		}
		seen[s] = true
	}
	if _, ok := a.Alloc(); ok {
		t.Fatal("Alloc succeeded on a full arena")
	}
	a.Free(1)
	if a.Used() != 2 {
		t.Fatalf("Used = %d after free", a.Used())
	}
	if s, ok := a.Alloc(); !ok || s != 1 {
		t.Fatalf("re-Alloc = (%d, %v), want (1, true)", s, ok)
	}
}

// TestSpillAdmission pins insert-on-second-hit: an entry evicted without
// ever being read stays out of the cold tier; a touched entry spills.
func TestSpillAdmission(t *testing.T) {
	ts := newSyncTiered(t, 2, 8, ColdConfig{})
	ts.Put(1, []byte("touched"))
	ts.GetHot(1) // second hit: admits on eviction
	ts.Put(2, []byte("one-hit wonder"))
	// Fill past capacity so both 1 and 2 are pushed out.
	ts.Put(3, []byte("x"))
	ts.Put(4, []byte("y"))
	st := ts.Stats()
	if st.Spilled != 1 || st.AdmitFiltered != 1 {
		t.Fatalf("Spilled=%d AdmitFiltered=%d, want 1 and 1", st.Spilled, st.AdmitFiltered)
	}
	if !ts.ColdContains(1) {
		t.Fatal("touched entry missing from cold tier")
	}
	if ts.ColdContains(2) {
		t.Fatal("one-hit entry admitted to cold tier")
	}
}

// TestColdReadReinjects pins the full cold-hit cycle in synchronous mode:
// request → pread → callback with the original bytes and clock readings.
func TestColdReadReinjects(t *testing.T) {
	clock := int64(0)
	ts := newSyncTiered(t, 1, 8, ColdConfig{
		Now: func() int64 { clock += 50; return clock },
	})
	var gotKey uint32
	var gotData []byte
	var gotStart, gotEnd int64
	ts.SetReinject(func(k uint32, data []byte, start, end int64) {
		gotKey, gotData, gotStart, gotEnd = k, data, start, end
	})
	ts.Put(7, []byte("cold content"))
	ts.GetHot(7)
	ts.Put(8, []byte("evictor")) // pushes 7 to the cold tier
	if _, ok := ts.GetHot(7); ok {
		t.Fatal("7 still hot after eviction")
	}
	if !ts.ColdContains(7) {
		t.Fatal("7 not in cold tier")
	}
	if !ts.RequestCold(7) {
		t.Fatal("RequestCold refused")
	}
	if gotKey != 7 || !bytes.Equal(gotData, []byte("cold content")) {
		t.Fatalf("reinject got key=%d data=%q", gotKey, gotData)
	}
	if gotEnd <= gotStart {
		t.Fatalf("reinject timestamps start=%d end=%d", gotStart, gotEnd)
	}
	st := ts.Stats()
	if st.Reinjected != 1 || st.ColdReadCount != 1 {
		t.Fatalf("Reinjected=%d ColdReadCount=%d", st.Reinjected, st.ColdReadCount)
	}
	var histTotal uint64
	for _, c := range st.ColdReadHist {
		histTotal += c
	}
	if histTotal != 1 {
		t.Fatalf("histogram holds %d samples, want 1", histTotal)
	}
}

// TestColdPromotion: with no reinject callback, a completed cold read
// promotes the payload straight back into the hot tier.
func TestColdPromotion(t *testing.T) {
	ts := newSyncTiered(t, 1, 8, ColdConfig{})
	ts.Put(1, []byte("content"))
	ts.GetHot(1)
	ts.Put(2, []byte("evictor"))
	if !ts.RequestCold(1) {
		t.Fatal("RequestCold refused")
	}
	got, ok := ts.GetHot(1)
	if !ok || !bytes.Equal(got, []byte("content")) {
		t.Fatalf("promotion failed: %q, %v", got, ok)
	}
	// The cold copy is byte-identical, so promotion (which evicted key 2
	// and may re-spill) must not have freed or rewritten key 1's slot.
	if !ts.ColdContains(1) {
		t.Fatal("cold copy dropped by promotion")
	}
}

// TestPutInvalidatesStaleCold: re-inserting a key with different bytes
// frees the outdated cold slot; re-inserting identical bytes keeps it.
func TestPutInvalidatesStaleCold(t *testing.T) {
	ts := newSyncTiered(t, 1, 8, ColdConfig{})
	ts.Put(1, []byte("version A"))
	ts.GetHot(1)
	ts.Put(2, []byte("evictor")) // spills version A
	if !ts.ColdContains(1) {
		t.Fatal("setup: 1 not cold")
	}
	used := ts.Stats().ColdSlotsUsed
	ts.Put(1, []byte("version A")) // identical: slot kept
	if ts.Stats().ColdSlotsUsed != used {
		t.Fatal("identical re-insert churned the arena")
	}
	ts.Put(1, []byte("version B")) // changed: stale slot freed
	ts.misses.Store(0)
	if ts.ColdContains(1) {
		t.Fatal("stale cold copy survived a content change")
	}
	if ts.Stats().ColdSlotsUsed >= used {
		t.Fatalf("stale slot not freed: used=%d", ts.Stats().ColdSlotsUsed)
	}
}

func TestRemoveBothTiers(t *testing.T) {
	ts := newSyncTiered(t, 1, 8, ColdConfig{})
	ts.Put(1, []byte("a"))
	ts.GetHot(1)
	ts.Put(2, []byte("b")) // 1 spills cold, 2 is hot
	if !ts.Remove(1) {
		t.Fatal("Remove(1) found nothing")
	}
	if !ts.Remove(2) {
		t.Fatal("Remove(2) found nothing")
	}
	if ts.ColdLen() != 0 || ts.Len() != 0 || ts.Stats().ColdSlotsUsed != 0 {
		t.Fatalf("state after removes: hot=%d cold=%d slots=%d", ts.Len(), ts.ColdLen(), ts.Stats().ColdSlotsUsed)
	}
}

// TestPendingDedupe: a second RequestCold while a read is gated in flight
// must not start a second read — the in-flight one satisfies both.
func TestPendingDedupe(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	hot := New[uint32](1)
	ts, err := NewTiered(hot, ColdConfig{
		Slots:   8,
		Readers: 1,
		ReadGate: func() {
			started <- struct{}{}
			<-release
		},
	})
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	defer ts.Close()
	done := make(chan uint32, 8)
	ts.SetReinject(func(k uint32, _ []byte, _, _ int64) { done <- k })
	ts.Put(1, []byte("cold"))
	ts.GetHot(1)
	ts.Put(2, []byte("evictor"))
	// The spill rides the async queue; wait for the worker to index it.
	for i := 0; ts.Stats().Spilled == 0; i++ {
		if i > 2000 {
			t.Fatal("spill never completed")
		}
		time.Sleep(time.Millisecond)
	}
	if !ts.RequestCold(1) {
		t.Fatal("first RequestCold refused")
	}
	<-started // reader is parked inside the gate
	for i := 0; i < 3; i++ {
		if !ts.RequestCold(1) {
			t.Fatal("duplicate RequestCold refused — should dedupe to true")
		}
	}
	if got := ts.Stats().PendingReads; got != 1 {
		t.Fatalf("PendingReads = %d while deduped, want 1", got)
	}
	close(release)
	if k := <-done; k != 1 {
		t.Fatalf("reinject delivered %d", k)
	}
	select {
	case k := <-done:
		t.Fatalf("duplicate read completed for %d", k)
	default:
	}
	if got := ts.Stats().Reinjected; got != 1 {
		t.Fatalf("Reinjected = %d, want 1", got)
	}
}

// TestCorruptSlotDropped: a slot whose bytes rot fails verification; the
// read errors out and the poisoned entry is evicted from the cold index.
func TestCorruptSlotDropped(t *testing.T) {
	ts := newSyncTiered(t, 1, 8, ColdConfig{})
	ts.Put(1, []byte("will rot"))
	ts.GetHot(1)
	ts.Put(2, []byte("evictor"))
	ts.mu.Lock()
	slot := ts.index[1].slot
	ts.mu.Unlock()
	// Flip payload bytes behind the checksum's back.
	if _, err := ts.arena.f.WriteAt([]byte{0xFF, 0xFF}, int64(slot)*ts.arena.stride+SlotHeaderSize); err != nil {
		t.Fatalf("corrupt write: %v", err)
	}
	called := false
	ts.SetReinject(func(uint32, []byte, int64, int64) { called = true })
	if !ts.RequestCold(1) {
		t.Fatal("RequestCold refused")
	}
	if called {
		t.Fatal("corrupted payload was delivered")
	}
	st := ts.Stats()
	if st.ReadErrors != 1 {
		t.Fatalf("ReadErrors = %d", st.ReadErrors)
	}
	ts.misses.Store(0)
	if ts.ColdContains(1) {
		t.Fatal("poisoned slot still indexed")
	}
	if st2 := ts.Stats(); st2.PendingReads != 0 {
		t.Fatalf("pending not cleared: %d", st2.PendingReads)
	}
}

// TestTieredStressRace drives concurrent Put/GetHot/ColdContains/
// RequestCold/Remove across both tiers; run under -race this is the
// lock-discipline check for the whole hierarchy.
func TestTieredStressRace(t *testing.T) {
	hot := NewSharded[uint32](64, 4)
	ts, err := NewTiered(hot, ColdConfig{Slots: 256, Readers: 2, SlotSize: 64})
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	ts.SetReinject(func(k uint32, data []byte, _, _ int64) { ts.Put(k, data) })
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("payload-%d", w))
			for i := 0; i < 2000; i++ {
				k := uint32((w*311 + i) % 400)
				switch i % 5 {
				case 0, 1:
					ts.Put(k, payload)
				case 2:
					if _, ok := ts.GetHot(k); !ok && ts.ColdContains(k) {
						ts.RequestCold(k)
					}
				case 3:
					ts.GetHot(k)
				case 4:
					if i%97 == 0 {
						ts.Remove(k)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := ts.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if hot.Len() > 64 {
		t.Fatalf("hot tier over capacity: %d", hot.Len())
	}
}

// TestHotHitZeroAllocs pins the acceptance criterion that a hot-tier hit
// allocates nothing — the forwarding fast path must not pressure the GC.
func TestHotHitZeroAllocs(t *testing.T) {
	ts := newSyncTiered(t, 64, 8, ColdConfig{})
	for i := uint32(0); i < 64; i++ {
		ts.Put(i, []byte("hot payload"))
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := ts.GetHot(17); !ok {
			t.Fatal("hot miss")
		}
	})
	if allocs != 0 {
		t.Fatalf("hot-tier hit allocates %v times, want 0", allocs)
	}
}

// BenchmarkTieredHotHit and BenchmarkTieredColdCycle give the two tiers'
// raw costs side by side.
func BenchmarkTieredHotHit(b *testing.B) {
	hot := New[uint32](1024)
	ts, err := NewTiered(hot, ColdConfig{Slots: 1024})
	if err != nil {
		b.Fatalf("NewTiered: %v", err)
	}
	defer ts.Close()
	for i := uint32(0); i < 1024; i++ {
		ts.Put(i, make([]byte, 256))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts.GetHot(uint32(i) & 1023)
	}
}

func BenchmarkTieredColdCycle(b *testing.B) {
	hot := New[uint32](1)
	ts, err := NewTiered(hot, ColdConfig{Slots: 4096, SlotSize: 256})
	if err != nil {
		b.Fatalf("NewTiered: %v", err)
	}
	defer ts.Close()
	payload := make([]byte, 256)
	for i := uint32(0); i < 2048; i++ {
		ts.Put(i, payload)
		ts.GetHot(i) // touch so eviction admits it cold
	}
	sink := 0
	ts.SetReinject(func(_ uint32, data []byte, _, _ int64) { sink += len(data) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint32(i) & 2047
		if ts.ColdContains(k) {
			ts.RequestCold(k)
		}
	}
	_ = sink
}
