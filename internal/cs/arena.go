// Slot arena: the cold tier's on-disk backing. A fixed number of
// fixed-size slots in one plain file, addressed by pread/pwrite at
// slot-stride offsets — the layout ndn-dpdk's disk content store uses,
// minus SPDK: no mmap growth surprises, no per-object file, and a crashed
// process leaves nothing to fsck because the in-RAM index is authoritative
// and the file is rebuilt cold on restart.
//
// Every slot carries a small header (magic, key hash, payload length,
// CRC-32C checksum) written in the same pwrite as the payload. Reads
// re-verify all four fields, so a torn write, a recycled slot, or plain
// bit rot surfaces as a verification error — never as poisoned content
// handed to a consumer.
package cs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/bits"
	"os"
	"sync"
)

// SlotHeaderSize is the on-disk size of a slot header in bytes.
const SlotHeaderSize = 20

// slotMagic marks a written slot; a freed or never-written slot fails the
// magic check before any other field is trusted.
const slotMagic = 0x44435331 // "DCS1"

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrSlotCorrupt reports a slot whose header or payload failed
// verification (bad magic, wrong key hash, impossible length, or checksum
// mismatch).
var ErrSlotCorrupt = errors.New("cs: cold slot failed verification")

// SlotHeader is the per-slot metadata stored ahead of the payload.
type SlotHeader struct {
	// KeyHash is the 64-bit hash of the content key the slot holds; reads
	// check it so an index pointing at a recycled slot cannot return the
	// wrong object.
	KeyHash uint64
	// Length is the payload byte count (≤ the arena's slot size).
	Length uint32
	// Checksum is the CRC-32C of the payload.
	Checksum uint32
}

// EncodeSlotHeader serializes h into dst[:SlotHeaderSize].
func EncodeSlotHeader(dst []byte, h SlotHeader) {
	binary.BigEndian.PutUint32(dst[0:], slotMagic)
	binary.BigEndian.PutUint64(dst[4:], h.KeyHash)
	binary.BigEndian.PutUint32(dst[12:], h.Length)
	binary.BigEndian.PutUint32(dst[16:], h.Checksum)
}

// DecodeSlotHeader parses b[:SlotHeaderSize], rejecting anything that does
// not carry the slot magic.
func DecodeSlotHeader(b []byte) (SlotHeader, error) {
	if len(b) < SlotHeaderSize {
		return SlotHeader{}, fmt.Errorf("%w: header truncated at %d bytes", ErrSlotCorrupt, len(b))
	}
	if binary.BigEndian.Uint32(b[0:]) != slotMagic {
		return SlotHeader{}, fmt.Errorf("%w: bad magic", ErrSlotCorrupt)
	}
	return SlotHeader{
		KeyHash:  binary.BigEndian.Uint64(b[4:]),
		Length:   binary.BigEndian.Uint32(b[12:]),
		Checksum: binary.BigEndian.Uint32(b[16:]),
	}, nil
}

// Arena is the file-backed slot store. Allocation state lives in a free
// bitmap guarded by one mutex; slot I/O itself runs lock-free (pread and
// pwrite carry their own offsets), so concurrent readers never serialize
// on the allocator.
type Arena struct {
	f        *os.File
	slotSize int // payload capacity per slot
	stride   int64
	nslots   int

	mu     sync.Mutex
	bitmap []uint64 // 1 = used
	used   int
}

// NewArena opens (truncating) a slot arena of slots payload slots of
// slotSize bytes each at path. An empty path creates an anonymous temp
// file — unlinked immediately after opening, so the space is reclaimed the
// moment the process exits, however it exits.
func NewArena(path string, slots, slotSize int) (*Arena, error) {
	if slots < 1 || slotSize < 1 {
		return nil, fmt.Errorf("cs: arena wants positive slots and slot size, got %d×%d", slots, slotSize)
	}
	var f *os.File
	var err error
	if path == "" {
		f, err = os.CreateTemp("", "dip-cs-arena-*")
		if err == nil {
			// Anonymous backing: the name disappears now, the file lives
			// until the descriptor closes.
			os.Remove(f.Name())
		}
	} else {
		f, err = os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	}
	if err != nil {
		return nil, fmt.Errorf("cs: arena backing file: %w", err)
	}
	return &Arena{
		f:        f,
		slotSize: slotSize,
		stride:   int64(SlotHeaderSize + slotSize),
		nslots:   slots,
		bitmap:   make([]uint64, (slots+63)/64),
	}, nil
}

// SlotSize returns the payload capacity of one slot.
func (a *Arena) SlotSize() int { return a.slotSize }

// Slots returns the arena's slot count.
func (a *Arena) Slots() int { return a.nslots }

// Used returns the number of allocated slots.
func (a *Arena) Used() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// Alloc reserves a free slot, reporting ok=false when the arena is full.
func (a *Arena) Alloc() (slot int, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for w, word := range a.bitmap {
		if word == ^uint64(0) {
			continue
		}
		b := bits.TrailingZeros64(^word)
		slot = w*64 + b
		if slot >= a.nslots {
			return 0, false // only tail-padding bits remain
		}
		a.bitmap[w] = word | 1<<uint(b)
		a.used++
		return slot, true
	}
	return 0, false
}

// Free releases a slot back to the allocator.
func (a *Arena) Free(slot int) {
	if slot < 0 || slot >= a.nslots {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.bitmap[slot/64]&(1<<uint(slot%64)) != 0 {
		a.bitmap[slot/64] &^= 1 << uint(slot%64)
		a.used--
	}
}

// WriteSlot stores payload (≤ SlotSize bytes) into slot under keyHash,
// header and payload in one pwrite.
func (a *Arena) WriteSlot(slot int, keyHash uint64, payload []byte) error {
	if len(payload) > a.slotSize {
		return fmt.Errorf("cs: payload %d bytes exceeds slot size %d", len(payload), a.slotSize)
	}
	buf := make([]byte, SlotHeaderSize+len(payload))
	EncodeSlotHeader(buf, SlotHeader{
		KeyHash:  keyHash,
		Length:   uint32(len(payload)),
		Checksum: crc32.Checksum(payload, castagnoli),
	})
	copy(buf[SlotHeaderSize:], payload)
	_, err := a.f.WriteAt(buf, int64(slot)*a.stride)
	return err
}

// ReadSlot loads and fully verifies slot, which must have been written
// under keyHash. The payload is appended to dst (pass nil to allocate).
// Any mismatch — magic, key hash, length, checksum — returns
// ErrSlotCorrupt; ReadSlot never panics on hostile bytes.
func (a *Arena) ReadSlot(dst []byte, slot int, keyHash uint64) ([]byte, error) {
	if slot < 0 || slot >= a.nslots {
		return dst, fmt.Errorf("%w: slot %d out of range", ErrSlotCorrupt, slot)
	}
	buf := make([]byte, a.stride)
	n, err := a.f.ReadAt(buf, int64(slot)*a.stride)
	if err != nil && n < SlotHeaderSize {
		return dst, fmt.Errorf("cs: cold read: %w", err)
	}
	h, err := DecodeSlotHeader(buf[:n])
	if err != nil {
		return dst, err
	}
	if h.KeyHash != keyHash {
		return dst, fmt.Errorf("%w: key hash mismatch", ErrSlotCorrupt)
	}
	if int(h.Length) > a.slotSize || SlotHeaderSize+int(h.Length) > n {
		return dst, fmt.Errorf("%w: impossible length %d", ErrSlotCorrupt, h.Length)
	}
	payload := buf[SlotHeaderSize : SlotHeaderSize+int(h.Length)]
	if crc32.Checksum(payload, castagnoli) != h.Checksum {
		return dst, fmt.Errorf("%w: checksum mismatch", ErrSlotCorrupt)
	}
	return append(dst, payload...), nil
}

// Close releases the backing file.
func (a *Arena) Close() error { return a.f.Close() }
