package cs

import (
	"bytes"
	"sync"
	"testing"
)

func TestPutGet(t *testing.T) {
	s := New[string](4)
	s.Put("a", []byte("alpha"))
	got, ok := s.Get("a")
	if !ok || !bytes.Equal(got, []byte("alpha")) {
		t.Errorf("Get = %q %v", got, ok)
	}
	if _, ok := s.Get("b"); ok {
		t.Error("hit on absent key")
	}
	if s.Len() != 1 || s.Bytes() != 5 {
		t.Errorf("Len=%d Bytes=%d", s.Len(), s.Bytes())
	}
}

func TestPutCopies(t *testing.T) {
	s := New[string](4)
	buf := []byte("data")
	s.Put("k", buf)
	buf[0] = 'X'
	got, _ := s.Get("k")
	if !bytes.Equal(got, []byte("data")) {
		t.Error("store aliased caller buffer")
	}
}

func TestLRUEviction(t *testing.T) {
	s := New[int](2)
	s.Put(1, []byte("one"))
	s.Put(2, []byte("two"))
	s.Get(1) // make 1 most recent
	s.Put(3, []byte("three"))
	if _, ok := s.Get(2); ok {
		t.Error("LRU entry 2 not evicted")
	}
	if _, ok := s.Get(1); !ok {
		t.Error("recently used entry 1 evicted")
	}
	if _, ok := s.Get(3); !ok {
		t.Error("new entry 3 missing")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestUpdateRefreshes(t *testing.T) {
	s := New[int](2)
	s.Put(1, []byte("one"))
	s.Put(2, []byte("two"))
	s.Put(1, []byte("ONE!")) // refresh + resize
	s.Put(3, []byte("three"))
	if _, ok := s.Get(2); ok {
		t.Error("entry 2 should have been evicted")
	}
	got, ok := s.Get(1)
	if !ok || !bytes.Equal(got, []byte("ONE!")) {
		t.Errorf("Get(1) = %q %v", got, ok)
	}
	if s.Bytes() != 4+5 {
		t.Errorf("Bytes = %d", s.Bytes())
	}
}

func TestRemove(t *testing.T) {
	s := New[int](4)
	s.Put(1, []byte("one"))
	if !s.Remove(1) {
		t.Error("Remove failed")
	}
	if s.Remove(1) {
		t.Error("double Remove")
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Errorf("Len=%d Bytes=%d", s.Len(), s.Bytes())
	}
}

func TestDisabledCache(t *testing.T) {
	s := New[int](0)
	s.Put(1, []byte("x"))
	if _, ok := s.Get(1); ok {
		t.Error("disabled cache stored data")
	}
}

func TestConcurrent(t *testing.T) {
	s := New[int](128)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Put(i%200, []byte{byte(w)})
				s.Get(i % 200)
				if i%50 == 0 {
					s.Remove(i % 200)
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() > 128 {
		t.Errorf("capacity exceeded: %d", s.Len())
	}
}

func BenchmarkPutGet(b *testing.B) {
	s := New[uint32](4096)
	payload := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := uint32(i) % 8192
		s.Put(k, payload)
		s.Get(k)
	}
}
