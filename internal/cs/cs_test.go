package cs

import (
	"bytes"
	"sync"
	"testing"
)

func TestPutGet(t *testing.T) {
	s := New[string](4)
	s.Put("a", []byte("alpha"))
	got, ok := s.Get("a")
	if !ok || !bytes.Equal(got, []byte("alpha")) {
		t.Errorf("Get = %q %v", got, ok)
	}
	if _, ok := s.Get("b"); ok {
		t.Error("hit on absent key")
	}
	if s.Len() != 1 || s.Bytes() != 5 {
		t.Errorf("Len=%d Bytes=%d", s.Len(), s.Bytes())
	}
}

func TestPutCopies(t *testing.T) {
	s := New[string](4)
	buf := []byte("data")
	s.Put("k", buf)
	buf[0] = 'X'
	got, _ := s.Get("k")
	if !bytes.Equal(got, []byte("data")) {
		t.Error("store aliased caller buffer")
	}
}

func TestLRUEviction(t *testing.T) {
	s := New[int](2)
	s.Put(1, []byte("one"))
	s.Put(2, []byte("two"))
	s.Get(1) // make 1 most recent
	s.Put(3, []byte("three"))
	if _, ok := s.Get(2); ok {
		t.Error("LRU entry 2 not evicted")
	}
	if _, ok := s.Get(1); !ok {
		t.Error("recently used entry 1 evicted")
	}
	if _, ok := s.Get(3); !ok {
		t.Error("new entry 3 missing")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestUpdateRefreshes(t *testing.T) {
	s := New[int](2)
	s.Put(1, []byte("one"))
	s.Put(2, []byte("two"))
	s.Put(1, []byte("ONE!")) // refresh + resize
	s.Put(3, []byte("three"))
	if _, ok := s.Get(2); ok {
		t.Error("entry 2 should have been evicted")
	}
	got, ok := s.Get(1)
	if !ok || !bytes.Equal(got, []byte("ONE!")) {
		t.Errorf("Get(1) = %q %v", got, ok)
	}
	if s.Bytes() != 4+5 {
		t.Errorf("Bytes = %d", s.Bytes())
	}
}

func TestRemove(t *testing.T) {
	s := New[int](4)
	s.Put(1, []byte("one"))
	if !s.Remove(1) {
		t.Error("Remove failed")
	}
	if s.Remove(1) {
		t.Error("double Remove")
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Errorf("Len=%d Bytes=%d", s.Len(), s.Bytes())
	}
}

func TestDisabledCache(t *testing.T) {
	s := New[int](0)
	s.Put(1, []byte("x"))
	if _, ok := s.Get(1); ok {
		t.Error("disabled cache stored data")
	}
}

func TestConcurrent(t *testing.T) {
	s := New[int](128)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Put(i%200, []byte{byte(w)})
				s.Get(i % 200)
				if i%50 == 0 {
					s.Remove(i % 200)
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() > 128 {
		t.Errorf("capacity exceeded: %d", s.Len())
	}
}

// TestShardedCapacityExact pins the remainder-distribution contract: the
// per-shard bounds sum to exactly the requested capacity, whatever the
// shard count — never the truncated capacity/n*n, never more.
func TestShardedCapacityExact(t *testing.T) {
	cases := []struct {
		capacity, shards int
		wantShards       int
	}{
		{10, 4, 4},  // the motivating bug: 10/4*4 = 8 entries held, 2 lost
		{7, 4, 4},   // remainder 3 spread over the leading shards
		{8, 4, 4},   // exact division: every shard equal
		{1, 4, 1},   // shard count clamps so no shard holds zero
		{3, 8, 2},   // clamp to capacity/n >= 1
		{129, 8, 8}, // big remainder-1 case
		{64, 1, 1},  // single shard unchanged
		{0, 4, 4},   // disabled cache keeps requested shards, zero cap
	}
	for _, tc := range cases {
		s := NewSharded[int](tc.capacity, tc.shards)
		if got := s.NumShards(); got != tc.wantShards {
			t.Errorf("NewSharded(%d,%d): shards = %d, want %d", tc.capacity, tc.shards, got, tc.wantShards)
		}
		total := 0
		for i := range s.shards {
			total += s.shards[i].cap
		}
		want := tc.capacity
		if want < 0 {
			want = 0
		}
		if total != want {
			t.Errorf("NewSharded(%d,%d): shard caps sum to %d, want %d", tc.capacity, tc.shards, total, want)
		}
		// Overfill and confirm the live bound matches the contract too.
		if tc.capacity > 0 {
			for i := 0; i < tc.capacity*3; i++ {
				s.Put(i, []byte("x"))
			}
			if s.Len() > tc.capacity {
				t.Errorf("NewSharded(%d,%d): holds %d entries, exceeds requested capacity", tc.capacity, tc.shards, s.Len())
			}
		}
	}
}

func BenchmarkPutGet(b *testing.B) {
	s := New[uint32](4096)
	payload := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := uint32(i) % 8192
		s.Put(k, payload)
		s.Get(k)
	}
}

// BenchmarkGetHitSingleShard measures the default-store hit path, which
// skips the key hash entirely (mask==0 routes every key to shard 0).
// Compare against BenchmarkGetHitSharded to see the hash cost the fast
// path removes.
func BenchmarkGetHitSingleShard(b *testing.B) {
	s := New[uint32](1024)
	for i := uint32(0); i < 1024; i++ {
		s.Put(i, []byte("payload"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(uint32(i) & 1023)
	}
}

// BenchmarkGetHitSharded is the same hit pattern through a sharded store,
// where every lookup must hash the key to pick its shard.
func BenchmarkGetHitSharded(b *testing.B) {
	s := NewSharded[uint32](1024, 8)
	for i := uint32(0); i < 1024; i++ {
		s.Put(i, []byte("payload"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(uint32(i) & 1023)
	}
}
