package cs

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzSlotCodec throws arbitrary bytes at the slot-header decoder and the
// full slot read path. Two properties must hold: a well-formed header
// round-trips exactly, and hostile bytes — truncated headers, flipped
// magic, impossible lengths, rotted payloads — are rejected with an error,
// never a panic or a silently wrong payload.
func FuzzSlotCodec(f *testing.F) {
	good := make([]byte, SlotHeaderSize)
	EncodeSlotHeader(good, SlotHeader{KeyHash: 0xABCDEF0123456789, Length: 42, Checksum: 0xCAFEBABE})
	f.Add(good, uint64(0xABCDEF0123456789))
	f.Add([]byte{}, uint64(0))
	f.Add([]byte{0x44, 0x43, 0x53}, uint64(1)) // truncated magic
	f.Add(bytes.Repeat([]byte{0xFF}, SlotHeaderSize+8), uint64(0xFFFFFFFFFFFFFFFF))

	f.Fuzz(func(t *testing.T, raw []byte, keyHash uint64) {
		// Decoder: must never panic, and an accepted header must re-encode
		// to the same bytes (the codec is a bijection on valid headers).
		h, err := DecodeSlotHeader(raw)
		if err == nil {
			re := make([]byte, SlotHeaderSize)
			EncodeSlotHeader(re, h)
			if !bytes.Equal(re, raw[:SlotHeaderSize]) {
				t.Fatalf("decode/encode mismatch: %x -> %+v -> %x", raw[:SlotHeaderSize], h, re)
			}
		}

		// Full slot path: write raw bytes straight into a slot file (as a
		// torn write or bit rot would) and read them back. Verification
		// must either return the exact payload a legitimate writer stored
		// under keyHash, or reject — no third outcome.
		a, aerr := NewArena("", 1, 64)
		if aerr != nil {
			t.Skip("no temp file available")
		}
		defer a.Close()
		if len(raw) > SlotHeaderSize+64 {
			raw = raw[:SlotHeaderSize+64]
		}
		if _, werr := a.f.WriteAt(raw, 0); werr != nil {
			t.Skip("short write")
		}
		payload, rerr := a.ReadSlot(nil, 0, keyHash)
		if rerr != nil {
			return // rejected: fine
		}
		// Accepted: the bytes must be internally consistent — header fields
		// match keyHash, length, and checksum of the returned payload.
		if binary.BigEndian.Uint64(raw[4:]) != keyHash {
			t.Fatalf("accepted payload under wrong key hash")
		}
		if int(binary.BigEndian.Uint32(raw[12:])) != len(payload) {
			t.Fatalf("accepted payload with wrong length")
		}
		if !bytes.Equal(payload, raw[SlotHeaderSize:SlotHeaderSize+len(payload)]) {
			t.Fatalf("accepted payload differs from slot bytes")
		}
	})
}
