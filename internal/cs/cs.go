// Package cs implements an LRU content store, the caching extension the
// paper sketches in footnote 2: "for the forwarding devices that support
// caching, the FIB matching module can be slightly modified to first match
// the local content store and then match the FIB".
//
// The store can be split into power-of-two shards keyed by name hash, each
// with its own lock, LRU list, and capacity slice, so concurrent forwarding
// workers only contend when their names hash together. Recency is then
// tracked per shard: eviction is LRU within a shard and approximately LRU
// globally, the standard trade sharded caches make. New keeps a single
// shard (exact LRU, the right default for the small caches tests and topo
// scenarios build); NewSharded spreads the capacity for contended routers.
package cs

import (
	"container/list"
	"sync"

	"dip/internal/nhash"
)

// Store is a bounded LRU cache from content keys to payloads. It is safe
// for concurrent use.
type Store[K comparable] struct {
	shards []csShard[K]
	mask   uint64
	// onEvict, when set (by the tiered store in this package), receives
	// entries pushed out by the capacity bound. Ownership of data transfers
	// to the handler — the store holds no reference after the call — and
	// touched reports whether the entry was ever hit after insertion (the
	// insert-on-second-hit admission signal). Called with the shard lock
	// held; handlers must not call back into the store.
	onEvict func(k K, data []byte, touched bool)
}

type csShard[K comparable] struct {
	mu    sync.Mutex
	cap   int
	bytes int
	size  int
	ll    *list.List
	index map[K]*list.Element
}

type item[K comparable] struct {
	key  K
	data []byte
	// hits counts touches after insertion (Get hits and Put refreshes):
	// 0 means the entry was cached once and never asked for again.
	hits uint32
}

// New returns a store holding at most capacity entries in one shard (exact
// global LRU). capacity ≤ 0 is treated as a disabled cache that stores
// nothing.
func New[K comparable](capacity int) *Store[K] {
	return NewSharded[K](capacity, 1)
}

// NewSharded returns a store of at most capacity entries split over shards
// lock domains (rounded down to a power of two; also capped so every shard
// keeps at least one entry). The capacity divides across shards with the
// remainder spread one entry at a time over the leading shards, so the
// per-shard bounds sum to exactly the requested capacity — never more,
// never less. Eviction is LRU per shard.
func NewSharded[K comparable](capacity, shards int) *Store[K] {
	n := nhash.Pow2(shards)
	if capacity > 0 {
		for n > 1 && capacity/n < 1 {
			n /= 2
		}
	}
	s := &Store[K]{shards: make([]csShard[K], n), mask: uint64(n - 1)}
	base, rem := 0, 0
	if capacity > 0 {
		base, rem = capacity/n, capacity%n
	}
	for i := range s.shards {
		c := base
		if i < rem {
			c++
		}
		s.shards[i] = csShard[K]{
			cap:   c,
			ll:    list.New(),
			index: make(map[K]*list.Element),
		}
	}
	return s
}

// NumShards returns the shard count (a power of two).
func (s *Store[K]) NumShards() int { return len(s.shards) }

func (s *Store[K]) shardOf(k K) *csShard[K] {
	// The default store has one shard (mask 0): every key lands on shard 0,
	// so hashing the key would be pure overhead on the hot hit path.
	if s.mask == 0 {
		return &s.shards[0]
	}
	return &s.shards[nhash.Of(k)&s.mask]
}

// Put caches data under k, copying it so the caller's buffer stays free for
// reuse. Existing entries are refreshed and moved to the front.
func (s *Store[K]) Put(k K, data []byte) {
	sh := s.shardOf(k)
	if sh.cap <= 0 {
		return
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.index[k]; ok {
		it := el.Value.(*item[K])
		sh.bytes += len(data) - len(it.data)
		it.data = append(it.data[:0], data...)
		it.hits++
		sh.ll.MoveToFront(el)
		return
	}
	cp := append([]byte(nil), data...)
	el := sh.ll.PushFront(&item[K]{key: k, data: cp})
	sh.index[k] = el
	sh.size++
	sh.bytes += len(cp)
	for sh.size > sh.cap {
		s.evictOldest(sh)
	}
}

// Get returns the cached payload for k and refreshes its recency. The
// returned slice is owned by the store; callers must copy before modifying.
func (s *Store[K]) Get(k K) ([]byte, bool) {
	sh := s.shardOf(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.index[k]
	if !ok {
		return nil, false
	}
	sh.ll.MoveToFront(el)
	it := el.Value.(*item[K])
	it.hits++
	return it.data, true
}

// Remove drops the entry for k, reporting whether it existed. Used by the
// content-poisoning response path: once F_pass flags a source, its cached
// objects are purged.
func (s *Store[K]) Remove(k K) bool {
	sh := s.shardOf(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.index[k]
	if !ok {
		return false
	}
	sh.remove(el)
	return true
}

// Len returns the number of cached entries.
func (s *Store[K]) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.size
		sh.mu.Unlock()
	}
	return n
}

// Bytes returns the total cached payload bytes.
func (s *Store[K]) Bytes() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.bytes
		sh.mu.Unlock()
	}
	return n
}

// evictOldest drops the shard's LRU entry, handing it to the eviction hook
// (tiered spill) when one is installed. Called with the shard lock held.
func (s *Store[K]) evictOldest(sh *csShard[K]) {
	el := sh.ll.Back()
	if el == nil {
		return
	}
	it := el.Value.(*item[K])
	data, hits := it.data, it.hits
	sh.remove(el) // accounts it.data before ownership moves to the hook
	if s.onEvict != nil {
		s.onEvict(it.key, data, hits > 0)
	}
}

func (sh *csShard[K]) remove(el *list.Element) {
	it := el.Value.(*item[K])
	sh.ll.Remove(el)
	delete(sh.index, it.key)
	sh.size--
	sh.bytes -= len(it.data)
}
