// Package cs implements an LRU content store, the caching extension the
// paper sketches in footnote 2: "for the forwarding devices that support
// caching, the FIB matching module can be slightly modified to first match
// the local content store and then match the FIB".
package cs

import (
	"container/list"
	"sync"
)

// Store is a bounded LRU cache from content keys to payloads. It is safe
// for concurrent use.
type Store[K comparable] struct {
	mu    sync.Mutex
	cap   int
	bytes int
	size  int
	ll    *list.List
	index map[K]*list.Element
}

type item[K comparable] struct {
	key  K
	data []byte
}

// New returns a store holding at most capacity entries. capacity ≤ 0 is
// treated as a disabled cache that stores nothing.
func New[K comparable](capacity int) *Store[K] {
	return &Store[K]{
		cap:   capacity,
		ll:    list.New(),
		index: make(map[K]*list.Element),
	}
}

// Put caches data under k, copying it so the caller's buffer stays free for
// reuse. Existing entries are refreshed and moved to the front.
func (s *Store[K]) Put(k K, data []byte) {
	if s.cap <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.index[k]; ok {
		it := el.Value.(*item[K])
		s.bytes += len(data) - len(it.data)
		it.data = append(it.data[:0], data...)
		s.ll.MoveToFront(el)
		return
	}
	cp := append([]byte(nil), data...)
	el := s.ll.PushFront(&item[K]{key: k, data: cp})
	s.index[k] = el
	s.size++
	s.bytes += len(cp)
	for s.size > s.cap {
		s.evictOldest()
	}
}

// Get returns the cached payload for k and refreshes its recency. The
// returned slice is owned by the store; callers must copy before modifying.
func (s *Store[K]) Get(k K) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.index[k]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*item[K]).data, true
}

// Remove drops the entry for k, reporting whether it existed. Used by the
// content-poisoning response path: once F_pass flags a source, its cached
// objects are purged.
func (s *Store[K]) Remove(k K) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.index[k]
	if !ok {
		return false
	}
	s.remove(el)
	return true
}

// Len returns the number of cached entries.
func (s *Store[K]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Bytes returns the total cached payload bytes.
func (s *Store[K]) Bytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

func (s *Store[K]) evictOldest() {
	if el := s.ll.Back(); el != nil {
		s.remove(el)
	}
}

func (s *Store[K]) remove(el *list.Element) {
	it := el.Value.(*item[K])
	s.ll.Remove(el)
	delete(s.index, it.key)
	s.size--
	s.bytes -= len(it.data)
}
