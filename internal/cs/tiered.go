// Tiered content store: the sharded RAM LRU (Store) as hot tier over a
// file-backed slot arena (Arena) as cold tier, in the shape of ndn-dpdk's
// memory+disk content-store hierarchy.
//
// The contract that shapes everything here is that a forwarder must never
// block on disk. The hot path sees exactly three cheap operations:
// GetHot (a shard-locked map hit, zero allocations), ColdContains (one
// mutex + map probe on the in-RAM cold index), and RequestCold (mark the
// key pending and hand it to the reader pool). The actual pread happens on
// a reader goroutine, which re-injects the recovered payload through the
// router's normal ingress — the parked interest is satisfied by the same
// F_PIT consume/replicate machinery that handles any other data packet,
// and the payload is promoted back into the hot tier by the same cache
// insert.
//
// Population is eviction-driven with insert-on-second-hit admission: the
// hot LRU's eviction hook hands the evicted entry over with a "was it ever
// touched after insert" bit, and only touched entries are written to the
// arena. One-hit-wonder churn — the bulk of any Zipf tail — therefore
// never costs a disk write.
package cs

import (
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"dip/internal/nhash"
)

// HistBuckets is the cold-read latency histogram width: log2 nanosecond
// buckets, mirroring internal/telemetry's layout so the export layer can
// reuse telemetry.BucketUpper for the bucket edges.
const HistBuckets = 36

// coldBucketOf maps a nanosecond duration to its log2 bucket, exactly as
// telemetry does for FN latencies.
func coldBucketOf(ns int64) int {
	b := 0
	for ns > 1 && b < HistBuckets-1 {
		ns >>= 1
		b++
	}
	return b
}

// ColdConfig sizes and wires the cold tier.
type ColdConfig struct {
	// Path is the arena backing file; empty means an unlinked temp file
	// that vanishes with the process.
	Path string
	// Slots is the arena slot count (required, > 0).
	Slots int
	// SlotSize is the payload capacity per slot in bytes (default 2048).
	SlotSize int
	// Readers sets the async reader pool size. 0 selects synchronous mode:
	// RequestCold performs the read and re-injection inline on the caller's
	// goroutine — the deterministic choice for virtual-time simulations,
	// where a background goroutine would race the sim clock.
	Readers int
	// PendingCap bounds the number of in-flight cold reads; beyond it
	// RequestCold refuses and the interest falls through as a miss
	// (default 1024).
	PendingCap int
	// SpillQueue bounds the eviction→disk handoff queue in async mode;
	// when full, evicted entries are dropped rather than stalling the
	// hot-tier shard lock (default 256).
	SpillQueue int
	// Now supplies timestamps for the cold-read latency histogram
	// (default wall clock). Simulations pass their virtual clock.
	Now func() int64
	// ReadGate, when set, is invoked immediately before every slot pread.
	// It exists for tests: blocking in the gate holds cold reads in flight
	// while the test proves the hot path stays unblocked.
	ReadGate func()
}

// coldEntry is the in-RAM index record for one arena slot. Length and
// checksum double as the identity of the stored bytes, letting Put detect
// whether a re-inserted object already matches its cold copy (promotion)
// or has genuinely changed (stale slot to free).
type coldEntry struct {
	slot     int
	length   uint32
	checksum uint32
}

type spillReq[K comparable] struct {
	key  K
	data []byte
}

// reinjectFn receives a completed cold read: the key, the payload (owned
// by the callee), and the read's start/end timestamps for span emission.
type reinjectFn[K comparable] func(k K, data []byte, readStartNs, readEndNs int64)

// TierStats is a point-in-time snapshot of both tiers.
type TierStats struct {
	HotHits         uint64 // GetHot successes
	ColdHits        uint64 // ColdContains successes (cold index had the key)
	Misses          uint64 // ColdContains failures: neither tier holds the key
	Spilled         uint64 // evictions written to the arena
	SpillDropped    uint64 // evictions lost: queue full, arena full, too large, or write error
	AdmitFiltered   uint64 // evictions rejected by insert-on-second-hit admission
	ReadErrors      uint64 // cold reads that failed verification or raced a removal
	Reinjected      uint64 // cold reads completed and delivered
	PendingRejected uint64 // RequestCold refusals (pending table at capacity)
	PendingReads    int    // cold reads currently in flight
	ColdSlotsUsed   int
	ColdSlots       int
	ColdReadCount   uint64
	ColdReadTotalNs uint64
	ColdReadHist    [HistBuckets]uint64 // log2-ns buckets, telemetry layout
	HotLen          int
	HotBytes        int
}

// Tiered composes a hot Store with a cold Arena. It is safe for concurrent
// use. Lock order is always hot-shard lock → Tiered.mu, never the reverse;
// the re-inject callback is invoked with no Tiered locks held so it may
// freely re-enter the store (and will, via the router's cache insert).
type Tiered[K comparable] struct {
	store *Store[K]
	arena *Arena

	mu      sync.Mutex
	index   map[K]coldEntry
	pending map[K]struct{}
	closed  bool

	pendingCap int
	spills     chan spillReq[K] // nil in synchronous mode
	readq      chan K           // nil in synchronous mode
	wg         sync.WaitGroup

	reinject atomic.Pointer[reinjectFn[K]]
	now      func() int64
	readGate func()

	hotHits         atomic.Uint64
	coldHits        atomic.Uint64
	misses          atomic.Uint64
	spilled         atomic.Uint64
	spillDropped    atomic.Uint64
	admitFiltered   atomic.Uint64
	readErrors      atomic.Uint64
	reinjected      atomic.Uint64
	pendingRejected atomic.Uint64
	readCount       atomic.Uint64
	readTotalNs     atomic.Uint64
	readHist        [HistBuckets]atomic.Uint64
}

// NewTiered layers a cold arena under hot, installing the eviction hook
// that feeds admission. The hot store must not already belong to another
// tiered store. Callers own Close.
func NewTiered[K comparable](hot *Store[K], cfg ColdConfig) (*Tiered[K], error) {
	if cfg.SlotSize <= 0 {
		cfg.SlotSize = 2048
	}
	arena, err := NewArena(cfg.Path, cfg.Slots, cfg.SlotSize)
	if err != nil {
		return nil, err
	}
	if cfg.PendingCap <= 0 {
		cfg.PendingCap = 1024
	}
	if cfg.SpillQueue <= 0 {
		cfg.SpillQueue = 256
	}
	t := &Tiered[K]{
		store:      hot,
		arena:      arena,
		index:      make(map[K]coldEntry),
		pending:    make(map[K]struct{}),
		pendingCap: cfg.PendingCap,
		now:        cfg.Now,
		readGate:   cfg.ReadGate,
	}
	if t.now == nil {
		t.now = func() int64 { return time.Now().UnixNano() }
	}
	if cfg.Readers > 0 {
		t.spills = make(chan spillReq[K], cfg.SpillQueue)
		t.readq = make(chan K, cfg.PendingCap)
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			for req := range t.spills {
				t.writeCold(req.key, req.data)
			}
		}()
		for i := 0; i < cfg.Readers; i++ {
			t.wg.Add(1)
			go func() {
				defer t.wg.Done()
				for k := range t.readq {
					t.completeRead(k)
				}
			}()
		}
	}
	hot.onEvict = t.handleEvict
	return t, nil
}

// SetReinject installs the completion callback for cold reads. In async
// mode it runs on a reader goroutine; in synchronous mode it runs inline
// inside RequestCold. Ownership of the payload passes to the callback.
func (t *Tiered[K]) SetReinject(fn func(k K, data []byte, readStartNs, readEndNs int64)) {
	f := reinjectFn[K](fn)
	t.reinject.Store(&f)
}

// Hot returns the RAM tier.
func (t *Tiered[K]) Hot() *Store[K] { return t.store }

// GetHot probes the RAM tier only: the zero-allocation fast path a
// forwarder runs under its packet budget.
func (t *Tiered[K]) GetHot(k K) ([]byte, bool) {
	data, ok := t.store.Get(k)
	if ok {
		t.hotHits.Add(1)
	}
	return data, ok
}

// ColdContains reports whether the cold index holds k, counting the
// outcome as a cold hit or a full miss. It touches only the in-RAM index —
// no disk.
func (t *Tiered[K]) ColdContains(k K) bool {
	t.mu.Lock()
	_, ok := t.index[k]
	t.mu.Unlock()
	if ok {
		t.coldHits.Add(1)
	} else {
		t.misses.Add(1)
	}
	return ok
}

// RequestCold schedules retrieval of k from the arena, reporting whether a
// read is (now or already) in flight. The caller parks the interest in its
// PIT before calling, exactly as for an upstream fetch; when the read
// completes, the re-inject callback carries the payload back through the
// normal data path. In synchronous mode (Readers 0) the read and callback
// run before RequestCold returns. A false return means the pending table
// is full or the entry vanished — treat it as a miss.
func (t *Tiered[K]) RequestCold(k K) bool {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return false
	}
	if _, ok := t.index[k]; !ok {
		t.mu.Unlock()
		return false
	}
	if _, inflight := t.pending[k]; inflight {
		t.mu.Unlock()
		return true // the in-flight read will satisfy this interest too
	}
	if len(t.pending) >= t.pendingCap {
		t.mu.Unlock()
		t.pendingRejected.Add(1)
		return false
	}
	t.pending[k] = struct{}{}
	if t.readq != nil {
		// Sends happen only under mu and Close flips closed under mu
		// before closing the channel, so this cannot race a close.
		select {
		case t.readq <- k:
			t.mu.Unlock()
			return true
		default:
			delete(t.pending, k)
			t.mu.Unlock()
			t.pendingRejected.Add(1)
			return false
		}
	}
	t.mu.Unlock()
	t.completeRead(k)
	return true
}

// Put inserts into the hot tier (possibly spilling an eviction to cold).
// If a cold copy of k exists with different bytes, its slot is freed — but
// a byte-identical cold copy is kept, so promoting a cold object back to
// hot does not churn the disk.
func (t *Tiered[K]) Put(k K, data []byte) {
	t.store.Put(k, data)
	t.mu.Lock()
	if ce, ok := t.index[k]; ok {
		if ce.length != uint32(len(data)) || ce.checksum != crc32.Checksum(data, castagnoli) {
			delete(t.index, k)
			t.arena.Free(ce.slot)
		}
	}
	t.mu.Unlock()
}

// Remove purges k from both tiers, reporting whether either held it.
func (t *Tiered[K]) Remove(k K) bool {
	hot := t.store.Remove(k)
	t.mu.Lock()
	ce, cold := t.index[k]
	if cold {
		delete(t.index, k)
		t.arena.Free(ce.slot)
	}
	t.mu.Unlock()
	return hot || cold
}

// Len returns the hot-tier entry count (the CSStats view exported on
// /metrics as the store size; cold occupancy is reported separately).
func (t *Tiered[K]) Len() int { return t.store.Len() }

// Bytes returns the hot-tier payload bytes.
func (t *Tiered[K]) Bytes() int { return t.store.Bytes() }

// ColdLen returns the cold-index entry count.
func (t *Tiered[K]) ColdLen() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.index)
}

// Stats snapshots both tiers.
func (t *Tiered[K]) Stats() TierStats {
	st := TierStats{
		HotHits:         t.hotHits.Load(),
		ColdHits:        t.coldHits.Load(),
		Misses:          t.misses.Load(),
		Spilled:         t.spilled.Load(),
		SpillDropped:    t.spillDropped.Load(),
		AdmitFiltered:   t.admitFiltered.Load(),
		ReadErrors:      t.readErrors.Load(),
		Reinjected:      t.reinjected.Load(),
		PendingRejected: t.pendingRejected.Load(),
		ColdSlots:       t.arena.Slots(),
		ColdSlotsUsed:   t.arena.Used(),
		ColdReadCount:   t.readCount.Load(),
		ColdReadTotalNs: t.readTotalNs.Load(),
	}
	for i := range t.readHist {
		st.ColdReadHist[i] = t.readHist[i].Load()
	}
	t.mu.Lock()
	st.PendingReads = len(t.pending)
	t.mu.Unlock()
	st.HotLen = t.store.Len()
	st.HotBytes = t.store.Bytes()
	return st
}

// Close stops the worker pool and releases the arena. No Put/RequestCold
// may run after Close returns.
func (t *Tiered[K]) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	if t.spills != nil {
		close(t.spills)
	}
	if t.readq != nil {
		close(t.readq)
	}
	t.wg.Wait()
	return t.arena.Close()
}

// handleEvict is the hot store's eviction hook. Runs with the evicting
// shard's lock held, so it must stay O(1) and never call back into the
// hot store: async mode does a non-blocking queue send, synchronous mode
// writes the slot inline (acceptable under a virtual clock).
func (t *Tiered[K]) handleEvict(k K, data []byte, touched bool) {
	if !touched {
		// Insert-on-second-hit: cached once, never asked for again —
		// churn that must not cost a disk write.
		t.admitFiltered.Add(1)
		return
	}
	if t.spills != nil {
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return
		}
		select {
		case t.spills <- spillReq[K]{key: k, data: data}:
			t.mu.Unlock()
		default:
			t.mu.Unlock()
			t.spillDropped.Add(1)
		}
		return
	}
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if !closed {
		t.writeCold(k, data)
	}
}

// writeCold stores one evicted entry in the arena and indexes it. A
// byte-identical cold copy already on disk is left untouched.
func (t *Tiered[K]) writeCold(k K, data []byte) {
	if len(data) > t.arena.SlotSize() {
		t.spillDropped.Add(1)
		return
	}
	sum := crc32.Checksum(data, castagnoli)
	t.mu.Lock()
	ce, have := t.index[k]
	t.mu.Unlock()
	if have && ce.length == uint32(len(data)) && ce.checksum == sum {
		t.spilled.Add(1) // logically spilled; physically already there
		return
	}
	slot := ce.slot
	if !have {
		s, ok := t.arena.Alloc()
		if !ok {
			t.spillDropped.Add(1)
			return
		}
		slot = s
	}
	if err := t.arena.WriteSlot(slot, nhash.Of(k), data); err != nil {
		if !have {
			t.arena.Free(slot)
		}
		t.spillDropped.Add(1)
		return
	}
	t.mu.Lock()
	t.index[k] = coldEntry{slot: slot, length: uint32(len(data)), checksum: sum}
	t.mu.Unlock()
	t.spilled.Add(1)
}

// completeRead performs the pread for one pending key, then hands the
// payload to the re-inject callback (or, with no callback installed,
// promotes it straight into the hot tier). Verification failures drop the
// slot; the parked interest recovers through PIT expiry and consumer
// retransmission, the same machinery that covers a lost upstream fetch.
func (t *Tiered[K]) completeRead(k K) {
	start := t.now()
	t.mu.Lock()
	ce, ok := t.index[k]
	t.mu.Unlock()
	var data []byte
	var err error
	if ok {
		if t.readGate != nil {
			t.readGate()
		}
		data, err = t.arena.ReadSlot(nil, ce.slot, nhash.Of(k))
	}
	end := t.now()
	t.mu.Lock()
	delete(t.pending, k)
	t.mu.Unlock()
	if !ok || err != nil {
		t.readErrors.Add(1)
		if ok {
			// Poisoned or torn slot: drop it so the next interest takes
			// the normal upstream path instead of spinning on bad bytes.
			t.mu.Lock()
			if cur, still := t.index[k]; still && cur.slot == ce.slot {
				delete(t.index, k)
				t.arena.Free(ce.slot)
			}
			t.mu.Unlock()
		}
		return
	}
	d := end - start
	if d < 0 {
		d = 0
	}
	t.readCount.Add(1)
	t.readTotalNs.Add(uint64(d))
	t.readHist[coldBucketOf(d)].Add(1)
	t.reinjected.Add(1)
	if fn := t.reinject.Load(); fn != nil {
		(*fn)(k, data, start, end)
		return
	}
	t.store.Put(k, data)
}
