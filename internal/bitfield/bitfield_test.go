package bitfield

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUint64Basic(t *testing.T) {
	b := []byte{0xAB, 0xCD, 0xEF, 0x01}
	cases := []struct {
		off, n uint
		want   uint64
	}{
		{0, 8, 0xAB},
		{8, 8, 0xCD},
		{0, 16, 0xABCD},
		{0, 32, 0xABCDEF01},
		{4, 8, 0xBC},
		{0, 4, 0xA},
		{4, 4, 0xB},
		{12, 12, 0xDEF},
		{0, 0, 0},
		{31, 1, 1},
		{0, 1, 1},
		{1, 1, 0},
	}
	for _, c := range cases {
		got, err := Uint64(b, c.off, c.n)
		if err != nil {
			t.Fatalf("Uint64(off=%d,n=%d): %v", c.off, c.n, err)
		}
		if got != c.want {
			t.Errorf("Uint64(off=%d,n=%d) = %#x, want %#x", c.off, c.n, got, c.want)
		}
	}
}

func TestUint64Errors(t *testing.T) {
	b := make([]byte, 4)
	if _, err := Uint64(b, 0, 65); err == nil {
		t.Error("want ErrTooWide for n=65")
	}
	if _, err := Uint64(b, 25, 8); err == nil {
		t.Error("want ErrOutOfRange for off=25,n=8 in 32 bits")
	}
	if _, err := Uint64(b, 33, 0); err == nil {
		t.Error("want ErrOutOfRange for off past end")
	}
	if _, err := Uint64(b, 32, 0); err != nil {
		t.Errorf("off==total with n=0 should be in range: %v", err)
	}
}

func TestPutUint64Basic(t *testing.T) {
	b := make([]byte, 4)
	if err := PutUint64(b, 4, 8, 0xFF); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0x0F || b[1] != 0xF0 {
		t.Errorf("got % x, want 0f f0 00 00", b)
	}
	// Writing must not disturb neighbours.
	b = []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if err := PutUint64(b, 10, 12, 0); err != nil {
		t.Fatal(err)
	}
	got, _ := Uint64(b, 10, 12)
	if got != 0 {
		t.Errorf("cleared field reads %#x", got)
	}
	if pre, _ := Uint64(b, 0, 10); pre != 0x3FF {
		t.Errorf("prefix disturbed: %#x", pre)
	}
	if post, _ := Uint64(b, 22, 10); post != 0x3FF {
		t.Errorf("suffix disturbed: %#x", post)
	}
}

func TestPutUint64Truncates(t *testing.T) {
	b := make([]byte, 2)
	if err := PutUint64(b, 0, 4, 0xAB); err != nil {
		t.Fatal(err)
	}
	got, _ := Uint64(b, 0, 4)
	if got != 0xB {
		t.Errorf("got %#x, want 0xb (high bits discarded)", got)
	}
}

// Property: PutUint64 then Uint64 round-trips for any in-range field.
func TestRoundTripQuick(t *testing.T) {
	f := func(raw []byte, off16 uint16, n8 uint8, v uint64) bool {
		b := make([]byte, len(raw)%64+9)
		copy(b, raw)
		n := uint(n8 % 65)
		total := uint(len(b)) * 8
		off := uint(off16) % (total - n + 1)
		if err := PutUint64(b, off, n, v); err != nil {
			return false
		}
		got, err := Uint64(b, off, n)
		if err != nil {
			return false
		}
		want := v
		if n < 64 {
			want &= 1<<n - 1
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: writes never disturb bits outside the target range.
func TestWriteIsolationQuick(t *testing.T) {
	f := func(seed int64, off16 uint16, n8 uint8, v uint64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := make([]byte, 24)
		rng.Read(b)
		orig := append([]byte(nil), b...)
		n := uint(n8 % 65)
		total := uint(len(b)) * 8
		off := uint(off16) % (total - n + 1)
		if err := PutUint64(b, off, n, v); err != nil {
			return false
		}
		for i := uint(0); i < total; i++ {
			if i >= off && i < off+n {
				continue
			}
			gb, _ := Uint64(b, i, 1)
			ob, _ := Uint64(orig, i, 1)
			if gb != ob {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBytesAligned(t *testing.T) {
	b := []byte{1, 2, 3, 4, 5}
	dst := make([]byte, 3)
	n, err := Bytes(dst, b, 8, 24)
	if err != nil || n != 3 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if !bytes.Equal(dst, []byte{2, 3, 4}) {
		t.Errorf("got % x", dst)
	}
}

func TestBytesUnaligned(t *testing.T) {
	b := []byte{0xAB, 0xCD, 0xEF}
	dst := make([]byte, 2)
	n, err := Bytes(dst, b, 4, 12)
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	// bits: BCD -> 0xBC, 0xD0 (tail padded with zeros)
	if !bytes.Equal(dst, []byte{0xBC, 0xD0}) {
		t.Errorf("got % x, want bc d0", dst)
	}
}

func TestBytesDstTooSmall(t *testing.T) {
	if _, err := Bytes(make([]byte, 1), make([]byte, 4), 0, 16); err == nil {
		t.Error("want error for short dst")
	}
}

func TestPutBytesRoundTripQuick(t *testing.T) {
	f := func(seed int64, off16 uint16, n16 uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		b := make([]byte, 40)
		rng.Read(b)
		total := uint(len(b)) * 8
		n := uint(n16) % 129
		off := uint(off16) % (total - n + 1)
		src := make([]byte, (n+7)/8)
		rng.Read(src)
		clearTail(src, n, len(src))
		if err := PutBytes(b, src, off, n); err != nil {
			return false
		}
		dst := make([]byte, (n+7)/8)
		if _, err := Bytes(dst, b, off, n); err != nil {
			return false
		}
		return bytes.Equal(dst, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestView(t *testing.T) {
	b := []byte{1, 2, 3, 4}
	v, ok := View(b, 8, 16)
	if !ok || !bytes.Equal(v, []byte{2, 3}) {
		t.Fatalf("View aligned: ok=%v v=% x", ok, v)
	}
	v[0] = 99
	if b[1] != 99 {
		t.Error("View must alias the backing slice")
	}
	if _, ok := View(b, 4, 16); ok {
		t.Error("unaligned offset must not yield a view")
	}
	if _, ok := View(b, 8, 12); ok {
		t.Error("unaligned length must not yield a view")
	}
	if _, ok := View(b, 24, 16); ok {
		t.Error("out-of-range view must fail")
	}
}

func TestXOR(t *testing.T) {
	b := []byte{0xFF, 0x00, 0x0F, 0xF0}
	if err := XOR(b, 0, 16, 16); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0xF0 || b[1] != 0xF0 {
		t.Errorf("got % x", b[:2])
	}
	if b[2] != 0x0F || b[3] != 0xF0 {
		t.Error("source range must be unchanged")
	}
	if err := XOR(b, 0, 40, 8); err == nil {
		t.Error("want range error")
	}
}

func TestCheckZeroLength(t *testing.T) {
	if err := Check(0, 0, 0); err != nil {
		t.Errorf("empty range in empty buffer: %v", err)
	}
	if err := Check(0, 1, 0); err == nil {
		t.Error("offset past empty buffer must fail")
	}
}

func BenchmarkUint64Aligned(b *testing.B) {
	buf := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = Uint64(buf, 128, 32)
	}
}

func BenchmarkUint64Unaligned(b *testing.B) {
	buf := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = Uint64(buf, 131, 32)
	}
}

func BenchmarkPutBytesAligned(b *testing.B) {
	buf := make([]byte, 64)
	src := make([]byte, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = PutBytes(buf, src, 128, 128)
	}
}
