// Package bitfield provides bit-granular reads and writes over byte slices.
//
// DIP field operations address their operands as (location, length) pairs
// measured in bits within the packet's FN-locations region (paper §2.2), so
// every operation module ultimately funnels through this package. Offsets use
// network bit order: bit 0 is the most significant bit of byte 0.
//
// The package is allocation-free for operands up to 64 bits and for
// slice-view extraction of byte-aligned operands, which keeps the forwarding
// hot path off the garbage collector.
package bitfield

import (
	"errors"
	"fmt"
)

// Errors returned by range checks.
var (
	// ErrOutOfRange reports an operand that extends past the backing slice.
	ErrOutOfRange = errors.New("bitfield: operand out of range")
	// ErrTooWide reports a word operation on an operand wider than 64 bits.
	ErrTooWide = errors.New("bitfield: operand wider than 64 bits")
)

// Check reports whether the bit range [off, off+n) lies within a buffer of
// size bytes. n may be zero, which is always in range when off is.
func Check(sizeBytes int, off, n uint) error {
	total := uint(sizeBytes) * 8
	if off > total || n > total-off {
		return fmt.Errorf("%w: [%d,+%d) in %d bits", ErrOutOfRange, off, n, total)
	}
	return nil
}

// Uint64 reads the n-bit big-endian unsigned integer at bit offset off.
// n must be ≤ 64 and the range must lie within b.
func Uint64(b []byte, off, n uint) (uint64, error) {
	if n > 64 {
		return 0, ErrTooWide
	}
	if err := Check(len(b), off, n); err != nil {
		return 0, err
	}
	var v uint64
	// Consume leading partial byte, then whole bytes, then trailing bits.
	for n > 0 {
		byteIdx := off >> 3
		bitInByte := off & 7
		take := 8 - bitInByte
		if take > n {
			take = n
		}
		cur := b[byteIdx]
		// Bits of interest start at bitInByte (from MSB) and run `take` long.
		cur <<= bitInByte
		cur >>= 8 - take
		v = v<<take | uint64(cur)
		off += take
		n -= take
	}
	return v, nil
}

// PutUint64 writes v as an n-bit big-endian unsigned integer at bit offset
// off. Bits of v above n are discarded. n must be ≤ 64 and the range must lie
// within b.
func PutUint64(b []byte, off, n uint, v uint64) error {
	if n > 64 {
		return ErrTooWide
	}
	if err := Check(len(b), off, n); err != nil {
		return err
	}
	// Write from the least-significant end backwards.
	end := off + n
	for n > 0 {
		byteIdx := (end - 1) >> 3
		bitInByte := (end-1)&7 + 1 // number of bits of this byte used, from MSB
		take := bitInByte
		if uint(take) > n {
			take = uint(n)
		}
		shift := uint(8) - bitInByte
		mask := byte((1<<take)-1) << shift
		b[byteIdx] = b[byteIdx]&^mask | byte(v<<shift)&mask
		v >>= take
		end -= take
		n -= take
	}
	return nil
}

// Bytes extracts the n-bit range at off into dst, MSB-aligned: the first bit
// of the range becomes the MSB of dst[0]. dst must hold at least (n+7)/8
// bytes; trailing pad bits in the final byte are zeroed. It returns the
// number of bytes written.
//
// For byte-aligned ranges this is a straight copy.
func Bytes(dst, b []byte, off, n uint) (int, error) {
	if err := Check(len(b), off, n); err != nil {
		return 0, err
	}
	outLen := int((n + 7) / 8)
	if len(dst) < outLen {
		return 0, fmt.Errorf("%w: dst %d bytes, need %d", ErrOutOfRange, len(dst), outLen)
	}
	if off&7 == 0 {
		copy(dst[:outLen], b[off>>3:])
		clearTail(dst, n, outLen)
		return outLen, nil
	}
	shift := off & 7
	src := b[off>>3:]
	for i := 0; i < outLen; i++ {
		v := src[i] << shift
		if i+1 < len(src) {
			v |= src[i+1] >> (8 - shift)
		}
		dst[i] = v
	}
	clearTail(dst, n, outLen)
	return outLen, nil
}

// PutBytes writes the n-bit MSB-aligned value in src into b at bit offset
// off. src must hold at least (n+7)/8 bytes; pad bits in its final byte are
// ignored.
func PutBytes(b, src []byte, off, n uint) error {
	if err := Check(len(b), off, n); err != nil {
		return err
	}
	need := int((n + 7) / 8)
	if len(src) < need {
		return fmt.Errorf("%w: src %d bytes, need %d", ErrOutOfRange, len(src), need)
	}
	// Whole-byte fast path.
	if off&7 == 0 && n&7 == 0 {
		copy(b[off>>3:(off>>3)+n>>3], src)
		return nil
	}
	for i := uint(0); i < n; i += 8 {
		take := n - i
		if take > 8 {
			take = 8
		}
		v := uint64(src[i>>3] >> (8 - take))
		if err := PutUint64(b, off+i, take, v); err != nil {
			return err
		}
	}
	return nil
}

// View returns the byte-aligned sub-slice covering [off, off+n) when both
// endpoints are byte-aligned, letting callers operate in place with zero
// copies. ok is false for unaligned ranges.
func View(b []byte, off, n uint) (view []byte, ok bool) {
	if off&7 != 0 || n&7 != 0 {
		return nil, false
	}
	if Check(len(b), off, n) != nil {
		return nil, false
	}
	return b[off>>3 : (off+n)>>3], true
}

// XOR xors the n-bit ranges at dstOff and srcOff (which may overlap exactly
// but must not partially overlap) writing the result over the dst range.
func XOR(b []byte, dstOff, srcOff, n uint) error {
	if err := Check(len(b), dstOff, n); err != nil {
		return err
	}
	if err := Check(len(b), srcOff, n); err != nil {
		return err
	}
	for i := uint(0); i < n; i += 64 {
		take := n - i
		if take > 64 {
			take = 64
		}
		d, _ := Uint64(b, dstOff+i, take)
		s, _ := Uint64(b, srcOff+i, take)
		if err := PutUint64(b, dstOff+i, take, d^s); err != nil {
			return err
		}
	}
	return nil
}

func clearTail(dst []byte, n uint, outLen int) {
	if rem := n & 7; rem != 0 && outLen > 0 {
		dst[outLen-1] &= ^byte(0) << (8 - rem)
	}
}
