// Package fib implements forwarding information bases for DIP routers: an
// address table (longest-prefix match over 32- or 128-bit keys, backing
// F_32_match, F_128_match and F_FIB on 32-bit content-name IDs) and a name
// table (component-wise LPM, backing the native NDN forwarder).
//
// Tables follow the RCU snapshot discipline: the live trie hangs off an
// atomic.Pointer and is immutable once published. Lookups load the pointer
// and walk the snapshot — no locks, no fences beyond the load-acquire, no
// allocation, and no contended cache line shared between readers. Mutations
// serialize on a writer mutex, clone only the nodes along the affected path
// (copy-on-write in internal/lpm), and publish the new root atomically;
// readers that loaded the old snapshot finish on a consistent view. Batched
// route churn goes through Txn/Commit, which publishes once for any number
// of updates. See DESIGN.md §8 for the full concurrency model.
package fib

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dip/internal/lpm"
	"dip/internal/names"
)

// NextHop describes where a matched packet leaves the router.
type NextHop struct {
	// Port is the egress port index. PortLocal (negative) means the
	// destination is this node and the packet should be delivered locally.
	Port int
}

// PortLocal marks local delivery in a NextHop.
const PortLocal = -2

// Local is the next hop meaning "deliver to this node".
var Local = NextHop{Port: PortLocal}

// Table is an LPM forwarding table over bit-string keys. Lookups are
// lock-free (they read the current immutable snapshot); mutators serialize
// on an internal mutex and publish copy-on-write snapshots.
type Table struct {
	mu    sync.Mutex // serializes mutators; lookups never take it
	trie  atomic.Pointer[lpm.BitTrie[NextHop]]
	epoch atomic.Uint32
}

// New returns an empty table.
func New() *Table {
	t := &Table{}
	t.trie.Store(lpm.NewBitTrie[NextHop]())
	return t
}

// Add installs (or replaces) a route for the first plen bits of prefix.
func (t *Table) Add(prefix []byte, plen int, nh NextHop) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	nt, _, err := t.trie.Load().InsertCOW(prefix, plen, nh)
	if err != nil {
		return err
	}
	t.trie.Store(nt)
	t.epoch.Add(1)
	return nil
}

// AddUint32 installs a route keyed by the first plen bits of a 32-bit value,
// the form F_FIB uses for content-name IDs.
func (t *Table) AddUint32(key uint32, plen int, nh NextHop) error {
	if plen < 0 || plen > 32 {
		return fmt.Errorf("fib: prefix length %d out of [0,32]", plen)
	}
	var k [4]byte
	k[0], k[1], k[2], k[3] = byte(key>>24), byte(key>>16), byte(key>>8), byte(key)
	return t.Add(k[:], plen, nh)
}

// Remove withdraws the exact route (prefix, plen).
func (t *Table) Remove(prefix []byte, plen int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	nt, removed := t.trie.Load().DeleteCOW(prefix, plen)
	if removed {
		t.trie.Store(nt)
		t.epoch.Add(1)
	}
	return removed
}

// Epoch returns the table's snapshot epoch: a counter bumped every time a
// new snapshot is published (and only then — no-op commits leave it
// untouched). F_tel stamps it into hop records so a postcard pins exactly
// which forwarding state forwarded the packet; a mid-flight change in the
// carried epoch is route churn caught in the act.
func (t *Table) Epoch() uint32 { return t.epoch.Load() }

// Lookup returns the longest-prefix match for the first bits of key.
// It never allocates and never blocks: any number of lookups proceed
// concurrently with each other and with route churn.
func (t *Table) Lookup(key []byte, bits int) (NextHop, bool) {
	nh, _, ok := t.trie.Load().Lookup(key, bits)
	return nh, ok
}

// LookupUint32 is Lookup for 32-bit keys without forcing the caller to
// build a slice (a stack array suffices and does not escape).
func (t *Table) LookupUint32(key uint32) (NextHop, bool) {
	var k [4]byte
	k[0], k[1], k[2], k[3] = byte(key>>24), byte(key>>16), byte(key>>8), byte(key)
	return t.Lookup(k[:], 32)
}

// Len returns the number of installed routes.
func (t *Table) Len() int {
	return t.trie.Load().Len()
}

// Walk visits every route in the current snapshot. fn sees a consistent
// point-in-time view; routes added or removed during the walk may or may
// not appear.
func (t *Table) Walk(fn func(prefix []byte, plen int, nh NextHop) bool) {
	t.trie.Load().Walk(fn)
}

// Txn is a batched update to a Table: any number of Adds and Removes built
// on a private copy-on-write trie, published to readers atomically by a
// single Commit. The transaction holds the table's writer lock from Txn()
// until Commit or Abort, so exactly one is mandatory; lookups are never
// blocked either way. This is the route-churn API: one BGP-style batch of
// updates costs one pointer publish instead of one per route.
//
// No-op transactions publish nothing: Add skips routes that are already
// installed with the same next hop, Remove of an absent route stages
// nothing, and Commit only stores when the staged trie differs (pointer
// inequality) from the snapshot the transaction opened on. A periodic
// refresh cycle that re-installs the same routes therefore never
// invalidates reader caches.
type Txn struct {
	t    *Table
	orig *lpm.BitTrie[NextHop]
	trie *lpm.BitTrie[NextHop]
	done bool
}

// Txn opens a batched update. The caller must finish it with Commit or
// Abort (other writers block until then; readers do not).
func (t *Table) Txn() *Txn {
	t.mu.Lock()
	cur := t.trie.Load()
	return &Txn{t: t, orig: cur, trie: cur}
}

// Add stages a route. Staged updates are invisible to lookups until Commit.
// Re-adding an identical route (same prefix, length and next hop) stages
// nothing, so refresh-style batches stay no-ops.
func (x *Txn) Add(prefix []byte, plen int, nh NextHop) error {
	if cur, ok := x.trie.Get(prefix, plen); ok && cur == nh {
		return nil
	}
	nt, _, err := x.trie.InsertCOW(prefix, plen, nh)
	if err != nil {
		return err
	}
	x.trie = nt
	return nil
}

// AddUint32 stages a route keyed by the first plen bits of a 32-bit value.
func (x *Txn) AddUint32(key uint32, plen int, nh NextHop) error {
	if plen < 0 || plen > 32 {
		return fmt.Errorf("fib: prefix length %d out of [0,32]", plen)
	}
	var k [4]byte
	k[0], k[1], k[2], k[3] = byte(key>>24), byte(key>>16), byte(key>>8), byte(key)
	return x.Add(k[:], plen, nh)
}

// Remove stages a route withdrawal. Removing an absent route stages
// nothing (DeleteCOW returns the receiver unchanged).
func (x *Txn) Remove(prefix []byte, plen int) bool {
	nt, removed := x.trie.DeleteCOW(prefix, plen)
	if removed {
		x.trie = nt
	}
	return removed
}

// Len returns the route count as staged (committed routes plus this
// transaction's own updates).
func (x *Txn) Len() int { return x.trie.Len() }

// Changed reports whether the transaction has staged any effective update
// so far (a Commit now would publish a new snapshot).
func (x *Txn) Changed() bool { return x.trie != x.orig }

// Commit publishes every staged update at once and releases the writer
// lock. Lookups switch from the old snapshot to the new one at a single
// atomic pointer store. A transaction that staged nothing effective
// publishes nothing: the snapshot pointer — and every reader cache keyed
// on it — stays untouched.
func (x *Txn) Commit() {
	if x.done {
		return
	}
	x.done = true
	if x.trie != x.orig {
		x.t.trie.Store(x.trie)
		x.t.epoch.Add(1)
	}
	x.t.mu.Unlock()
}

// Abort discards every staged update and releases the writer lock.
func (x *Txn) Abort() {
	if x.done {
		return
	}
	x.done = true
	x.t.mu.Unlock()
}

// NameTable is an LPM forwarding table over hierarchical content names,
// following the same RCU snapshot discipline as Table.
type NameTable struct {
	mu    sync.Mutex // serializes mutators; lookups never take it
	trie  atomic.Pointer[lpm.NameTrie[NextHop]]
	epoch atomic.Uint32
}

// NewNameTable returns an empty name table.
func NewNameTable() *NameTable {
	t := &NameTable{}
	t.trie.Store(lpm.NewNameTrie[NextHop]())
	return t
}

// Add installs (or replaces) a route for the name prefix. Re-adding an
// identical route publishes nothing.
func (t *NameTable) Add(prefix names.Name, nh NextHop) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.trie.Load()
	if have, ok := cur.Get(prefix.Components()); ok && have == nh {
		return
	}
	nt, _ := cur.InsertCOW(prefix.Components(), nh)
	t.trie.Store(nt)
	t.epoch.Add(1)
}

// Remove withdraws the exact name prefix.
func (t *NameTable) Remove(prefix names.Name) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	nt, removed := t.trie.Load().DeleteCOW(prefix.Components())
	if removed {
		t.trie.Store(nt)
		t.epoch.Add(1)
	}
	return removed
}

// Epoch returns the name table's snapshot epoch (see Table.Epoch).
func (t *NameTable) Epoch() uint32 { return t.epoch.Load() }

// Lookup returns the longest-prefix match for name. It is lock-free.
func (t *NameTable) Lookup(name names.Name) (NextHop, bool) {
	nh, _, ok := t.trie.Load().Lookup(name.Components())
	return nh, ok
}

// Len returns the number of installed name prefixes.
func (t *NameTable) Len() int {
	return t.trie.Load().Len()
}

// Walk visits every name route in the current snapshot. fn sees a
// consistent point-in-time view; routes added or removed during the walk
// may or may not appear.
func (t *NameTable) Walk(fn func(prefix names.Name, nh NextHop) bool) {
	t.trie.Load().Walk(func(components []string, nh NextHop) bool {
		n, err := names.FromComponents(components...)
		if err != nil {
			return true // cannot happen: stored names were validated at Add
		}
		return fn(n, nh)
	})
}

// NameTxn is the NameTable's batched-update transaction, the churn API
// Table.Txn provides for address routes: any number of Adds and Removes,
// one snapshot publish at Commit, and the same no-op discipline (an
// ineffective transaction publishes nothing). The transaction holds the
// table's writer lock from Txn() until Commit or Abort; lookups are never
// blocked. Without it, a storm of n name-route updates costs n pointer
// publishes — with it, one.
type NameTxn struct {
	t    *NameTable
	orig *lpm.NameTrie[NextHop]
	trie *lpm.NameTrie[NextHop]
	done bool
}

// Txn opens a batched update. The caller must finish it with Commit or
// Abort (other writers block until then; readers do not).
func (t *NameTable) Txn() *NameTxn {
	t.mu.Lock()
	cur := t.trie.Load()
	return &NameTxn{t: t, orig: cur, trie: cur}
}

// Add stages a name route. Re-adding an identical route stages nothing.
func (x *NameTxn) Add(prefix names.Name, nh NextHop) {
	if cur, ok := x.trie.Get(prefix.Components()); ok && cur == nh {
		return
	}
	nt, _ := x.trie.InsertCOW(prefix.Components(), nh)
	x.trie = nt
}

// Remove stages a name-route withdrawal; removing an absent route stages
// nothing.
func (x *NameTxn) Remove(prefix names.Name) bool {
	nt, removed := x.trie.DeleteCOW(prefix.Components())
	if removed {
		x.trie = nt
	}
	return removed
}

// Len returns the route count as staged.
func (x *NameTxn) Len() int { return x.trie.Len() }

// Changed reports whether the transaction has staged any effective update.
func (x *NameTxn) Changed() bool { return x.trie != x.orig }

// Commit publishes every staged update at once and releases the writer
// lock; an ineffective transaction leaves the snapshot pointer untouched.
func (x *NameTxn) Commit() {
	if x.done {
		return
	}
	x.done = true
	if x.trie != x.orig {
		x.t.trie.Store(x.trie)
		x.t.epoch.Add(1)
	}
	x.t.mu.Unlock()
}

// Abort discards every staged update and releases the writer lock.
func (x *NameTxn) Abort() {
	if x.done {
		return
	}
	x.done = true
	x.t.mu.Unlock()
}
