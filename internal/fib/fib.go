// Package fib implements forwarding information bases for DIP routers: an
// address table (longest-prefix match over 32- or 128-bit keys, backing
// F_32_match, F_128_match and F_FIB on 32-bit content-name IDs) and a name
// table (component-wise LPM, backing the native NDN forwarder).
//
// Tables follow the read-mostly discipline: lookups take a reader lock and
// never allocate; route churn takes the writer lock. This keeps the
// forwarding hot path GC-free while still allowing live updates.
package fib

import (
	"fmt"
	"sync"

	"dip/internal/lpm"
	"dip/internal/names"
)

// NextHop describes where a matched packet leaves the router.
type NextHop struct {
	// Port is the egress port index. PortLocal (negative) means the
	// destination is this node and the packet should be delivered locally.
	Port int
}

// PortLocal marks local delivery in a NextHop.
const PortLocal = -2

// Local is the next hop meaning "deliver to this node".
var Local = NextHop{Port: PortLocal}

// Table is an LPM forwarding table over bit-string keys.
type Table struct {
	mu   sync.RWMutex
	trie *lpm.BitTrie[NextHop]
}

// New returns an empty table.
func New() *Table {
	return &Table{trie: lpm.NewBitTrie[NextHop]()}
}

// Add installs (or replaces) a route for the first plen bits of prefix.
func (t *Table) Add(prefix []byte, plen int, nh NextHop) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, err := t.trie.Insert(prefix, plen, nh)
	return err
}

// AddUint32 installs a route keyed by the first plen bits of a 32-bit value,
// the form F_FIB uses for content-name IDs.
func (t *Table) AddUint32(key uint32, plen int, nh NextHop) error {
	if plen < 0 || plen > 32 {
		return fmt.Errorf("fib: prefix length %d out of [0,32]", plen)
	}
	var k [4]byte
	k[0], k[1], k[2], k[3] = byte(key>>24), byte(key>>16), byte(key>>8), byte(key)
	return t.Add(k[:], plen, nh)
}

// Remove withdraws the exact route (prefix, plen).
func (t *Table) Remove(prefix []byte, plen int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.trie.Delete(prefix, plen)
}

// Lookup returns the longest-prefix match for the first bits of key.
// It never allocates.
func (t *Table) Lookup(key []byte, bits int) (NextHop, bool) {
	t.mu.RLock()
	nh, _, ok := t.trie.Lookup(key, bits)
	t.mu.RUnlock()
	return nh, ok
}

// LookupUint32 is Lookup for 32-bit keys without forcing the caller to
// build a slice (a stack array suffices and does not escape).
func (t *Table) LookupUint32(key uint32) (NextHop, bool) {
	var k [4]byte
	k[0], k[1], k[2], k[3] = byte(key>>24), byte(key>>16), byte(key>>8), byte(key)
	return t.Lookup(k[:], 32)
}

// Len returns the number of installed routes.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.trie.Len()
}

// Walk visits every route (under the reader lock; fn must not mutate).
func (t *Table) Walk(fn func(prefix []byte, plen int, nh NextHop) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.trie.Walk(fn)
}

// NameTable is an LPM forwarding table over hierarchical content names.
type NameTable struct {
	mu   sync.RWMutex
	trie *lpm.NameTrie[NextHop]
}

// NewNameTable returns an empty name table.
func NewNameTable() *NameTable {
	return &NameTable{trie: lpm.NewNameTrie[NextHop]()}
}

// Add installs (or replaces) a route for the name prefix.
func (t *NameTable) Add(prefix names.Name, nh NextHop) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.trie.Insert(prefix.Components(), nh)
}

// Remove withdraws the exact name prefix.
func (t *NameTable) Remove(prefix names.Name) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.trie.Delete(prefix.Components())
}

// Lookup returns the longest-prefix match for name.
func (t *NameTable) Lookup(name names.Name) (NextHop, bool) {
	t.mu.RLock()
	nh, _, ok := t.trie.Lookup(name.Components())
	t.mu.RUnlock()
	return nh, ok
}

// Len returns the number of installed name prefixes.
func (t *NameTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.trie.Len()
}
