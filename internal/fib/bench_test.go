package fib

import (
	"math/rand"
	"sync"
	"testing"

	"dip/internal/lpm"
)

// rwmuTable is the pre-RCU design: one RWMutex in front of a shared trie.
// It exists only as the benchmark baseline for the snapshot discipline.
type rwmuTable struct {
	mu   sync.RWMutex
	trie *lpm.BitTrie[NextHop]
}

func newRWMuTable() *rwmuTable {
	return &rwmuTable{trie: lpm.NewBitTrie[NextHop]()}
}

func (t *rwmuTable) AddUint32(key uint32, plen int, nh NextHop) {
	var k [4]byte
	k[0], k[1], k[2], k[3] = byte(key>>24), byte(key>>16), byte(key>>8), byte(key)
	t.mu.Lock()
	t.trie.Insert(k[:], plen, nh)
	t.mu.Unlock()
}

func (t *rwmuTable) LookupUint32(key uint32) (NextHop, bool) {
	var k [4]byte
	k[0], k[1], k[2], k[3] = byte(key>>24), byte(key>>16), byte(key>>8), byte(key)
	t.mu.RLock()
	nh, _, ok := t.trie.Lookup(k[:], 32)
	t.mu.RUnlock()
	return nh, ok
}

const benchRoutes = 10000

func benchKeys() []uint32 {
	rng := rand.New(rand.NewSource(7))
	keys := make([]uint32, benchRoutes)
	for i := range keys {
		keys[i] = rng.Uint32()
	}
	return keys
}

// BenchmarkFIBLookupParallel compares concurrent lookup throughput of the
// RCU snapshot table against the classic RWMutex design it replaced. With
// GOMAXPROCS ≥ 4 the RCU variant must scale near-linearly while the RWMutex
// baseline serializes on the reader count's cache line.
func BenchmarkFIBLookupParallel(b *testing.B) {
	keys := benchKeys()

	b.Run("rcu", func(b *testing.B) {
		t := New()
		for i, k := range keys {
			t.AddUint32(k, 32, NextHop{Port: i & 7})
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				t.LookupUint32(keys[i%benchRoutes])
				i++
			}
		})
	})

	b.Run("rwmutex", func(b *testing.B) {
		t := newRWMuTable()
		for i, k := range keys {
			t.AddUint32(k, 32, NextHop{Port: i & 7})
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				t.LookupUint32(keys[i%benchRoutes])
				i++
			}
		})
	})
}

// BenchmarkFIBLookupSequential pins the single-threaded cost of a snapshot
// lookup (one atomic load plus the trie walk).
func BenchmarkFIBLookupSequential(b *testing.B) {
	keys := benchKeys()
	t := New()
	for i, k := range keys {
		t.AddUint32(k, 32, NextHop{Port: i & 7})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.LookupUint32(keys[i%benchRoutes])
	}
}

// BenchmarkFIBTxnCommit measures batched route churn: one publish per batch
// of 100 updates, concurrent lookups never blocked.
func BenchmarkFIBTxnCommit(b *testing.B) {
	keys := benchKeys()
	t := New()
	for i, k := range keys {
		t.AddUint32(k, 32, NextHop{Port: i & 7})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := t.Txn()
		for j := 0; j < 100; j++ {
			x.AddUint32(keys[(i*100+j)%benchRoutes], 32, NextHop{Port: j & 7})
		}
		x.Commit()
	}
}
