package fib

import (
	"sync"
	"testing"

	"dip/internal/names"
)

func TestTableAddLookup(t *testing.T) {
	tb := New()
	if err := tb.Add([]byte{10, 0, 0, 0}, 8, NextHop{Port: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Add([]byte{10, 1, 0, 0}, 16, NextHop{Port: 2}); err != nil {
		t.Fatal(err)
	}
	nh, ok := tb.Lookup([]byte{10, 1, 2, 3}, 32)
	if !ok || nh.Port != 2 {
		t.Errorf("got %+v %v", nh, ok)
	}
	nh, ok = tb.Lookup([]byte{10, 200, 0, 1}, 32)
	if !ok || nh.Port != 1 {
		t.Errorf("got %+v %v", nh, ok)
	}
	if _, ok := tb.Lookup([]byte{11, 0, 0, 1}, 32); ok {
		t.Error("spurious match")
	}
	if tb.Len() != 2 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestTableUint32Helpers(t *testing.T) {
	tb := New()
	if err := tb.AddUint32(0xCAFE0000, 16, NextHop{Port: 3}); err != nil {
		t.Fatal(err)
	}
	nh, ok := tb.LookupUint32(0xCAFE1234)
	if !ok || nh.Port != 3 {
		t.Errorf("got %+v %v", nh, ok)
	}
	if _, ok := tb.LookupUint32(0xBEEF0000); ok {
		t.Error("spurious match")
	}
	if err := tb.AddUint32(0, 40, Local); err == nil {
		t.Error("plen > 32 accepted")
	}
}

func TestTableRemoveWalk(t *testing.T) {
	tb := New()
	tb.Add([]byte{10, 0, 0, 0}, 8, NextHop{Port: 1})
	tb.Add([]byte{20, 0, 0, 0}, 8, Local)
	if !tb.Remove([]byte{10, 0, 0, 0}, 8) {
		t.Error("remove failed")
	}
	if tb.Remove([]byte{10, 0, 0, 0}, 8) {
		t.Error("double remove")
	}
	count := 0
	tb.Walk(func(prefix []byte, plen int, nh NextHop) bool {
		count++
		if nh.Port != PortLocal {
			t.Errorf("unexpected route %+v", nh)
		}
		return true
	})
	if count != 1 {
		t.Errorf("walked %d routes", count)
	}
}

func TestTableLookupNoAlloc(t *testing.T) {
	tb := New()
	tb.AddUint32(0xAA000000, 8, NextHop{Port: 1})
	allocs := testing.AllocsPerRun(1000, func() {
		tb.LookupUint32(0xAA123456)
	})
	if allocs != 0 {
		t.Errorf("LookupUint32 allocates %.1f", allocs)
	}
}

func TestTableConcurrent(t *testing.T) {
	tb := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tb.AddUint32(uint32(w)<<24|uint32(i), 32, NextHop{Port: w})
				tb.LookupUint32(uint32(w) << 24)
			}
		}(w)
	}
	wg.Wait()
	if tb.Len() != 800 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestNameTable(t *testing.T) {
	nt := NewNameTable()
	nt.Add(names.MustParse("/org/hotnets"), NextHop{Port: 1})
	nt.Add(names.MustParse("/org"), NextHop{Port: 2})
	nh, ok := nt.Lookup(names.MustParse("/org/hotnets/papers"))
	if !ok || nh.Port != 1 {
		t.Errorf("got %+v %v", nh, ok)
	}
	nh, ok = nt.Lookup(names.MustParse("/org/other"))
	if !ok || nh.Port != 2 {
		t.Errorf("got %+v %v", nh, ok)
	}
	if _, ok := nt.Lookup(names.MustParse("/com")); ok {
		t.Error("spurious match")
	}
	if !nt.Remove(names.MustParse("/org")) {
		t.Error("remove failed")
	}
	if _, ok := nt.Lookup(names.MustParse("/org/other")); ok {
		t.Error("match after remove")
	}
	if nt.Len() != 1 {
		t.Errorf("Len = %d", nt.Len())
	}
}
