package fib

import (
	"fmt"
	"math/rand"
	"testing"

	"dip/internal/names"
)

// TestTxnNoOpPublishesNothing pins the no-op-transaction contract: a batch
// of ineffective updates (removes of absent routes, re-adds of identical
// routes) must leave the published snapshot pointer untouched, so idle
// refresh cycles never invalidate reader caches. Before the fix, Remove
// republished x.trie even when nothing was removed and Commit stored
// unconditionally, so this test fails on the old code.
func TestTxnNoOpPublishesNothing(t *testing.T) {
	tb := New()
	tb.AddUint32(0x0A000000, 8, NextHop{Port: 1})
	tb.AddUint32(0x14000000, 8, Local)
	snap := tb.trie.Load()

	x := tb.Txn()
	if x.Remove([]byte{99, 0, 0, 0}, 8) {
		t.Error("removed an absent route")
	}
	if err := x.AddUint32(0x0A000000, 8, NextHop{Port: 1}); err != nil {
		t.Fatal(err)
	}
	if err := x.AddUint32(0x14000000, 8, Local); err != nil {
		t.Fatal(err)
	}
	if x.Changed() {
		t.Error("no-op transaction reports Changed")
	}
	x.Commit()

	if got := tb.trie.Load(); got != snap {
		t.Error("no-op Commit published a new snapshot")
	}
	// An effective transaction must still publish.
	x = tb.Txn()
	if err := x.AddUint32(0x1E000000, 8, NextHop{Port: 2}); err != nil {
		t.Fatal(err)
	}
	if !x.Changed() {
		t.Error("effective transaction reports unchanged")
	}
	x.Commit()
	if got := tb.trie.Load(); got == snap {
		t.Error("effective Commit did not publish")
	}
}

// TestTableNoOpSinglePublishes pins the same discipline for the
// non-transactional mutators.
func TestTableNoOpSinglePublishes(t *testing.T) {
	tb := New()
	tb.AddUint32(0x0A000000, 8, NextHop{Port: 1})
	snap := tb.trie.Load()
	if tb.Remove([]byte{99, 0, 0, 0}, 8) {
		t.Error("removed an absent route")
	}
	if got := tb.trie.Load(); got != snap {
		t.Error("no-op Remove published a new snapshot")
	}
}

// TestNameTxnNoOpPublishesNothing is the NameTable twin of the no-op pin.
func TestNameTxnNoOpPublishesNothing(t *testing.T) {
	nt := NewNameTable()
	nt.Add(names.MustParse("/org/hotnets"), NextHop{Port: 1})
	snap := nt.trie.Load()

	x := nt.Txn()
	if x.Remove(names.MustParse("/com/absent")) {
		t.Error("removed an absent route")
	}
	x.Add(names.MustParse("/org/hotnets"), NextHop{Port: 1}) // identical re-add
	if x.Changed() {
		t.Error("no-op transaction reports Changed")
	}
	x.Commit()
	if got := nt.trie.Load(); got != snap {
		t.Error("no-op Commit published a new snapshot")
	}

	// Identical single Add publishes nothing either.
	nt.Add(names.MustParse("/org/hotnets"), NextHop{Port: 1})
	if got := nt.trie.Load(); got != snap {
		t.Error("identical Add published a new snapshot")
	}

	x = nt.Txn()
	x.Add(names.MustParse("/org/sigcomm"), NextHop{Port: 2})
	if !x.Changed() {
		t.Error("effective transaction reports unchanged")
	}
	x.Commit()
	if got := nt.trie.Load(); got == snap {
		t.Error("effective Commit did not publish")
	}
}

// TestNameTxnAbort pins that Abort discards staged updates.
func TestNameTxnAbort(t *testing.T) {
	nt := NewNameTable()
	nt.Add(names.MustParse("/org"), NextHop{Port: 1})
	x := nt.Txn()
	x.Add(names.MustParse("/com"), NextHop{Port: 2})
	x.Remove(names.MustParse("/org"))
	x.Abort()
	if nt.Len() != 1 {
		t.Errorf("Len after abort = %d, want 1", nt.Len())
	}
	if _, ok := nt.Lookup(names.MustParse("/com")); ok {
		t.Error("aborted add visible")
	}
}

// TestNameTableTxnChurnOracle drives seeded add/withdraw churn through
// batched NameTxns and checks, batch by batch, that (a) the table agrees
// exactly with a sequentially-updated map oracle (both directions, via
// Walk and per-name Lookup), and (b) each batch costs at most one snapshot
// publish — the whole point of the transaction API. This is the
// churn-vs-sequential-oracle pin for the NameTable Txn/Walk parity.
func TestNameTableTxnChurnOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	nt := NewNameTable()
	oracle := map[string]NextHop{}
	mkName := func(i int) names.Name {
		return names.MustParse(fmt.Sprintf("/churn/a%d/b%d", i%37, i))
	}

	const batches, opsPerBatch, space = 40, 64, 300
	for b := 0; b < batches; b++ {
		before := nt.trie.Load()
		x := nt.Txn()
		for o := 0; o < opsPerBatch; o++ {
			i := rng.Intn(space)
			n := mkName(i)
			if rng.Intn(3) == 0 {
				removed := x.Remove(n)
				_, had := oracle[n.String()]
				if removed != had {
					t.Fatalf("batch %d: Remove(%v) = %v, oracle had %v", b, n, removed, had)
				}
				delete(oracle, n.String())
			} else {
				nh := NextHop{Port: rng.Intn(8)}
				x.Add(n, nh)
				oracle[n.String()] = nh
			}
		}
		if staged := x.Len(); staged != len(oracle) {
			t.Fatalf("batch %d: staged Len = %d, oracle %d", b, staged, len(oracle))
		}
		x.Commit()
		after := nt.trie.Load()
		if before != after && nt.Len() == 0 {
			t.Fatalf("batch %d: published an empty churn result unexpectedly", b)
		}

		// Table ⊆ oracle, with matching next hops.
		walked := 0
		nt.Walk(func(prefix names.Name, nh NextHop) bool {
			walked++
			want, ok := oracle[prefix.String()]
			if !ok {
				t.Fatalf("batch %d: table has %v, oracle does not", b, prefix)
			}
			if want != nh {
				t.Fatalf("batch %d: %v nexthop %+v, oracle %+v", b, prefix, nh, want)
			}
			return true
		})
		// Oracle ⊆ table.
		if walked != len(oracle) || nt.Len() != len(oracle) {
			t.Fatalf("batch %d: walked %d, Len %d, oracle %d", b, walked, nt.Len(), len(oracle))
		}
	}
}

// TestNameTableChurnOnePublishPerBatch pins the publication-cost claim
// directly: n updates through one NameTxn cost exactly one pointer publish
// (or zero when the batch nets out to nothing), never one per Add the way
// sequential NameTable.Add does.
func TestNameTableChurnOnePublishPerBatch(t *testing.T) {
	nt := NewNameTable()
	before := nt.trie.Load()
	x := nt.Txn()
	for i := 0; i < 1000; i++ {
		x.Add(names.MustParse(fmt.Sprintf("/bulk/n%d", i)), NextHop{Port: i & 3})
	}
	x.Commit()
	after := nt.trie.Load()
	if before == after {
		t.Fatal("batch of 1000 adds published nothing")
	}
	if nt.Len() != 1000 {
		t.Fatalf("Len = %d", nt.Len())
	}
	// The intermediate snapshots were never observable: a reader holding
	// the pre-batch snapshot sees none of the adds.
	if _, _, ok := before.Lookup([]string{"bulk", "n0"}); ok {
		t.Error("pre-batch snapshot sees staged route")
	}
}
