package ndn

import (
	"bytes"
	"encoding/binary"
	"testing"

	"dip/internal/fib"
)

func TestHeaderSizeIsTable2Row(t *testing.T) {
	if got := len(BuildInterest(1, 2, 3)); got != 16 {
		t.Errorf("interest header = %d bytes, want 16 (Table 2 NDN row)", got)
	}
}

func TestParseAndAccessors(t *testing.T) {
	b := BuildInterest(0xCAFEBABE, 0x1234, 9)
	p, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if p.Type() != TypeInterest || p.HopLimit() != 9 || p.Nonce() != 0x1234 || p.NameID() != 0xCAFEBABE {
		t.Errorf("accessors: %d %d %x %x", p.Type(), p.HopLimit(), p.Nonce(), p.NameID())
	}
	d := BuildData(7, 3, []byte("payload"))
	pd, err := Parse(d)
	if err != nil {
		t.Fatal(err)
	}
	if pd.Type() != TypeData || !bytes.Equal(pd.Payload(), []byte("payload")) {
		t.Errorf("data: %d %q", pd.Type(), pd.Payload())
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(make([]byte, 8)); err == nil {
		t.Error("short accepted")
	}
	bad := BuildInterest(1, 1, 1)
	bad[0] = 9
	if _, err := Parse(bad); err == nil {
		t.Error("bad type accepted")
	}
}

func TestInterestDataExchange(t *testing.T) {
	f := NewForwarder(0)
	f.FIB.AddUint32(0xAA000000, 8, fib.NextHop{Port: 2})

	interest := BuildInterest(0xAA000001, 1, 64)
	res := f.Process(interest, 5, nil)
	if res.Action != ActForward || len(res.Ports) != 1 || res.Ports[0] != 2 {
		t.Fatalf("interest: %+v", res)
	}

	data := BuildData(0xAA000001, 64, []byte("content"))
	res = f.Process(data, 2, nil)
	if res.Action != ActForward || len(res.Ports) != 1 || res.Ports[0] != 5 {
		t.Fatalf("data: %+v", res)
	}

	// The PIT entry is consumed: a duplicate data packet is discarded.
	res = f.Process(BuildData(0xAA000001, 64, []byte("content")), 2, nil)
	if res.Action != ActDropPITMiss {
		t.Errorf("duplicate data: %v", res.Action)
	}
}

func TestInterestAggregation(t *testing.T) {
	f := NewForwarder(0)
	f.FIB.AddUint32(0xAA000000, 8, fib.NextHop{Port: 2})
	f.Process(BuildInterest(0xAA000001, 1, 64), 5, nil)
	res := f.Process(BuildInterest(0xAA000001, 2, 64), 6, nil)
	if res.Action != ActAggregated {
		t.Fatalf("second interest: %v", res.Action)
	}
	// Data fans out to both requesters.
	res = f.Process(BuildData(0xAA000001, 64, nil), 2, nil)
	if res.Action != ActForward || len(res.Ports) != 2 {
		t.Fatalf("fan-out: %+v", res)
	}
}

func TestInterestNoRoute(t *testing.T) {
	f := NewForwarder(0)
	res := f.Process(BuildInterest(1, 1, 64), 0, nil)
	if res.Action != ActDropNoRoute {
		t.Errorf("got %v", res.Action)
	}
}

func TestInterestLocalDelivery(t *testing.T) {
	f := NewForwarder(0)
	f.FIB.AddUint32(0xBB000000, 8, fib.Local)
	res := f.Process(BuildInterest(0xBB000001, 1, 64), 3, nil)
	if res.Action != ActDeliver {
		t.Errorf("got %v", res.Action)
	}
}

func TestHopLimitExhaustion(t *testing.T) {
	f := NewForwarder(0)
	f.FIB.AddUint32(0, 0, fib.NextHop{Port: 1})
	res := f.Process(BuildInterest(5, 1, 0), 0, nil)
	if res.Action != ActDropHopLimit {
		t.Errorf("got %v", res.Action)
	}
}

func TestContentStoreServesRepeat(t *testing.T) {
	f := NewForwarder(16)
	f.FIB.AddUint32(0xAA000000, 8, fib.NextHop{Port: 2})

	f.Process(BuildInterest(0xAA000001, 1, 64), 5, nil)
	f.Process(BuildData(0xAA000001, 64, []byte("cached!")), 2, nil)

	// A later interest for the same name hits the cache.
	res := f.Process(BuildInterest(0xAA000001, 9, 64), 7, nil)
	if res.Action != ActCacheHit {
		t.Fatalf("got %v", res.Action)
	}
	if !bytes.Equal(res.Cached, []byte("cached!")) {
		t.Errorf("cached payload %q", res.Cached)
	}
	if len(res.Ports) != 1 || res.Ports[0] != 7 {
		t.Errorf("cache hit must answer on the ingress port: %v", res.Ports)
	}
}

func TestMalformed(t *testing.T) {
	f := NewForwarder(0)
	if res := f.Process([]byte{1, 2}, 0, nil); res.Action != ActDropMalformed {
		t.Errorf("got %v", res.Action)
	}
}

func TestForwardZeroAllocWithoutCache(t *testing.T) {
	f := NewForwarder(0)
	f.FIB.AddUint32(0xAA000000, 8, fib.NextHop{Port: 2})
	ports := make([]int, 0, 8)
	interest := BuildInterest(0xAA000001, 1, 255)
	data := BuildData(0xAA000001, 255, nil)
	nonce := uint32(1)
	allocs := testing.AllocsPerRun(200, func() {
		interest[1] = 255 // restore hop limit
		nonce++           // fresh nonce so the dead-nonce list admits it
		binary.BigEndian.PutUint32(interest[4:], nonce)
		res := f.Process(interest, 5, ports[:0])
		if res.Action != ActForward {
			t.Fatalf("interest: %v", res.Action)
		}
		data[1] = 255
		if res := f.Process(data, 2, ports[:0]); res.Action != ActForward {
			t.Fatalf("data: %v", res.Action)
		}
	})
	// One allocation per run is tolerated for the PIT entry itself (real
	// router state, not garbage); the forwarding path must add nothing.
	if allocs > 1 {
		t.Errorf("interest+data cycle allocates %.1f, want ≤ 1", allocs)
	}
}

func TestActionString(t *testing.T) {
	if ActForward.String() != "forward" || ActDropPITMiss.String() != "drop-pit-miss" {
		t.Error("Action strings")
	}
	if Action(99).String() != "action(?)" {
		t.Error("unknown action")
	}
}

func TestDeadNonceListSuppressesLoops(t *testing.T) {
	f := NewForwarder(0)
	f.FIB.AddUint32(0xAA000000, 8, fib.NextHop{Port: 2})

	// The same interest looping back (same name AND nonce) is dropped...
	res := f.Process(BuildInterest(0xAA000001, 777, 64), 0, nil)
	if res.Action != ActForward {
		t.Fatalf("first: %v", res.Action)
	}
	res = f.Process(BuildInterest(0xAA000001, 777, 64), 3, nil)
	if res.Action != ActDropDuplicate {
		t.Fatalf("loop: %v", res.Action)
	}
	// ...but a retransmission with a fresh nonce aggregates normally.
	res = f.Process(BuildInterest(0xAA000001, 778, 64), 3, nil)
	if res.Action != ActAggregated {
		t.Fatalf("retx: %v", res.Action)
	}
	if ActDropDuplicate.String() != "drop-duplicate" {
		t.Error("action string")
	}
}

func TestNonceFilterBounded(t *testing.T) {
	nf := newNonceFilter(4)
	for i := uint32(1); i <= 4; i++ {
		if nf.seen(i, i) {
			t.Fatalf("fresh pair %d reported seen", i)
		}
	}
	if !nf.seen(1, 1) {
		t.Fatal("recent pair forgotten")
	}
	// Overflow evicts the oldest entries.
	for i := uint32(5); i <= 9; i++ {
		nf.seen(i, i)
	}
	if nf.seen(2, 2) {
		t.Error("evicted pair still remembered (ring not bounding)")
	}
}
