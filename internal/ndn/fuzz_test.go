package ndn

import "testing"

// FuzzForwarder: arbitrary bytes through the native forwarder must never
// panic, and parseable packets always yield a classified action.
func FuzzForwarder(f *testing.F) {
	f.Add(BuildInterest(0xAA000001, 1, 64))
	f.Add(BuildData(0xAA000001, 64, []byte("x")))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fw := NewForwarder(4)
		fw.FIB.AddUint32(0xAA000000, 8, struct{ Port int }{Port: 1})
		var buf [8]int
		res := fw.Process(data, 0, buf[:0])
		if res.Action > ActDropDuplicate {
			t.Fatalf("unclassified action %d", res.Action)
		}
	})
}
