// Package ndn implements a native Named Data Networking forwarder — the
// non-DIP realization of the protocol the paper decomposes into F_FIB and
// F_PIT. It exists for three reasons: it is the Table 2 "NDN forwarding"
// row (a 16-byte fixed header), it cross-checks that DIP-decomposed NDN
// behaves identically to a purpose-built forwarder, and it carries the
// content-store extension from the paper's footnote 2.
//
// Per the prototype (§4.1), names on the wire are 32-bit content-name IDs
// (see internal/names for the human-name mapping).
package ndn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"dip/internal/cs"
	"dip/internal/fib"
	"dip/internal/pit"
)

// HeaderSize is the fixed native NDN header: Table 2's 16-byte NDN row.
const HeaderSize = 16

// Packet types.
const (
	TypeInterest = 1
	TypeData     = 2
)

// Header layout:
//
//	[0]     packet type (interest/data)
//	[1]     hop limit
//	[2:4]   flags (reserved)
//	[4:8]   nonce (interest loop suppression)
//	[8:12]  32-bit content name ID
//	[12:16] reserved
const (
	offType  = 0
	offHop   = 1
	offNonce = 4
	offName  = 8
)

// Errors from parsing.
var (
	ErrTruncated = errors.New("ndn: truncated packet")
	ErrBadType   = errors.New("ndn: unknown packet type")
)

// Packet is an in-place view of a native NDN packet.
type Packet struct{ b []byte }

// Parse validates b and returns a view.
func Parse(b []byte) (Packet, error) {
	if len(b) < HeaderSize {
		return Packet{}, fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	if b[offType] != TypeInterest && b[offType] != TypeData {
		return Packet{}, fmt.Errorf("%w: %d", ErrBadType, b[offType])
	}
	return Packet{b: b}, nil
}

// BuildInterest encodes an interest for nameID into a fresh slice.
func BuildInterest(nameID uint32, nonce uint32, hopLimit uint8) []byte {
	b := make([]byte, HeaderSize)
	b[offType] = TypeInterest
	b[offHop] = hopLimit
	binary.BigEndian.PutUint32(b[offNonce:], nonce)
	binary.BigEndian.PutUint32(b[offName:], nameID)
	return b
}

// BuildData encodes a data packet carrying payload for nameID.
func BuildData(nameID uint32, hopLimit uint8, payload []byte) []byte {
	b := make([]byte, HeaderSize+len(payload))
	b[offType] = TypeData
	b[offHop] = hopLimit
	binary.BigEndian.PutUint32(b[offName:], nameID)
	copy(b[HeaderSize:], payload)
	return b
}

// Type returns the packet type.
func (p Packet) Type() uint8 { return p.b[offType] }

// HopLimit returns the remaining hop budget.
func (p Packet) HopLimit() uint8 { return p.b[offHop] }

// Nonce returns the interest nonce.
func (p Packet) Nonce() uint32 { return binary.BigEndian.Uint32(p.b[offNonce:]) }

// NameID returns the 32-bit content name.
func (p Packet) NameID() uint32 { return binary.BigEndian.Uint32(p.b[offName:]) }

// Payload returns the bytes after the header (data packets).
func (p Packet) Payload() []byte { return p.b[HeaderSize:] }

// DecHopLimit decrements the hop limit in place, reporting whether the
// packet may still travel.
func (p Packet) DecHopLimit() bool {
	if p.b[offHop] == 0 {
		return false
	}
	p.b[offHop]--
	return true
}

// Action classifies a forwarding outcome.
type Action uint8

// Forwarding outcomes.
const (
	// ActForward: send the packet out Result.Ports (one port for
	// interests, possibly several for data fan-out).
	ActForward Action = iota
	// ActAggregated: interest joined an existing PIT entry; do not forward.
	ActAggregated
	// ActCacheHit: interest satisfied from the content store;
	// Result.Cached holds the payload to return on the ingress port.
	ActCacheHit
	// ActDeliver: this node is the producer for the name.
	ActDeliver
	// ActDropNoRoute, ActDropPITMiss, ActDropHopLimit, ActDropMalformed,
	// ActDropPITFull: discard, with the reason.
	ActDropNoRoute
	ActDropPITMiss
	ActDropHopLimit
	ActDropMalformed
	ActDropPITFull
	// ActDropDuplicate: the interest's (name, nonce) pair was seen before —
	// a forwarding loop or a replay, suppressed by the dead-nonce list.
	ActDropDuplicate
)

// String names the action.
func (a Action) String() string {
	names := [...]string{"forward", "aggregated", "cache-hit", "deliver",
		"drop-no-route", "drop-pit-miss", "drop-hop-limit", "drop-malformed",
		"drop-pit-full", "drop-duplicate"}
	if int(a) < len(names) {
		return names[a]
	}
	return "action(?)"
}

// Result is the outcome of processing one packet.
type Result struct {
	Action Action
	// Ports are egress ports (appended into the caller's buffer).
	Ports []int
	// Cached is the content-store payload on ActCacheHit; it is owned by
	// the store and must be copied before the next store mutation.
	Cached []byte
}

// Forwarder is a native NDN forwarder: FIB + PIT + optional content store,
// with a dead-nonce list suppressing interest loops.
type Forwarder struct {
	FIB *fib.Table
	PIT *pit.Table[uint32]
	CS  *cs.Store[uint32] // nil disables caching
	dnl *nonceFilter
}

// DeadNonceCapacity is the dead-nonce list size.
const DeadNonceCapacity = 8192

// NewForwarder builds a forwarder with a fresh FIB and PIT and a content
// store of csCapacity entries (0 disables caching).
func NewForwarder(csCapacity int) *Forwarder {
	f := &Forwarder{FIB: fib.New(), PIT: pit.New[uint32](), dnl: newNonceFilter(DeadNonceCapacity)}
	if csCapacity > 0 {
		f.CS = cs.New[uint32](csCapacity)
	}
	return f
}

// Process runs one packet through the forwarder. portsBuf is the caller's
// scratch for egress ports, keeping the hot path allocation-free.
func (f *Forwarder) Process(b []byte, inPort int, portsBuf []int) Result {
	p, err := Parse(b)
	if err != nil {
		return Result{Action: ActDropMalformed}
	}
	switch p.Type() {
	case TypeInterest:
		return f.processInterest(p, inPort, portsBuf)
	default:
		return f.processData(p, portsBuf)
	}
}

func (f *Forwarder) processInterest(p Packet, inPort int, portsBuf []int) Result {
	name := p.NameID()
	if f.dnl != nil && f.dnl.seen(name, p.Nonce()) {
		return Result{Action: ActDropDuplicate}
	}
	// Footnote 2: match the local content store before the FIB.
	if f.CS != nil {
		if data, ok := f.CS.Get(name); ok {
			return Result{Action: ActCacheHit, Cached: data, Ports: append(portsBuf, inPort)}
		}
	}
	nh, ok := f.FIB.LookupUint32(name)
	if !ok {
		return Result{Action: ActDropNoRoute}
	}
	if nh.Port == fib.PortLocal {
		return Result{Action: ActDeliver, Ports: append(portsBuf, inPort)}
	}
	created, err := f.PIT.AddInterest(name, inPort)
	if err != nil {
		return Result{Action: ActDropPITFull}
	}
	if !created {
		return Result{Action: ActAggregated}
	}
	if !p.DecHopLimit() {
		return Result{Action: ActDropHopLimit}
	}
	return Result{Action: ActForward, Ports: append(portsBuf, nh.Port)}
}

func (f *Forwarder) processData(p Packet, portsBuf []int) Result {
	name := p.NameID()
	ports, ok := f.PIT.Consume(portsBuf, name)
	if !ok {
		return Result{Action: ActDropPITMiss}
	}
	if f.CS != nil {
		f.CS.Put(name, p.Payload())
	}
	if !p.DecHopLimit() {
		return Result{Action: ActDropHopLimit}
	}
	return Result{Action: ActForward, Ports: ports}
}

// nonceFilter is the dead-nonce list: a bounded set of recently seen
// (name, nonce) pairs used to suppress interest loops, as NDN forwarders
// do. It is a fixed-size ring so memory stays bounded under attack.
type nonceFilter struct {
	mu   sync.Mutex
	set  map[uint64]struct{}
	ring []uint64
	next int
}

func newNonceFilter(capacity int) *nonceFilter {
	return &nonceFilter{
		set:  make(map[uint64]struct{}, capacity),
		ring: make([]uint64, capacity),
	}
}

// seen records (name, nonce) and reports whether it was already present.
func (f *nonceFilter) seen(name, nonce uint32) bool {
	key := uint64(name)<<32 | uint64(nonce)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.set[key]; dup {
		return true
	}
	if old := f.ring[f.next]; old != 0 {
		delete(f.set, old)
	}
	f.ring[f.next] = key
	f.next = (f.next + 1) % len(f.ring)
	f.set[key] = struct{}{}
	return false
}
