// Package nhash hashes forwarding-state keys (content-name IDs, NDN name
// strings) to pick shards in the sharded PIT and content store. It exists
// because the tables are generic over comparable keys but the Go version
// this module targets has no generic stdlib hasher; a type switch covers
// every key type the dataplane instantiates, and anything else degrades to
// shard 0 (correct, just unsharded).
package nhash

// Of returns a well-mixed 64-bit hash of k. Integer keys go through a
// splitmix64 finalizer (content-name IDs are near-sequential, so identity
// hashing would pile them onto one shard); strings use FNV-1a.
func Of[K comparable](k K) uint64 {
	switch v := any(k).(type) {
	case uint32:
		return mix64(uint64(v))
	case uint64:
		return mix64(v)
	case uint:
		return mix64(uint64(v))
	case int:
		return mix64(uint64(v))
	case int32:
		return mix64(uint64(uint32(v)))
	case int64:
		return mix64(uint64(v))
	case string:
		return fnv1a(v)
	default:
		return 0
	}
}

// mix64 is the splitmix64 finalizer: full avalanche in three multiplies.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnv1a(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// Bytes returns the FNV-1a hash of b: the byte-slice flavor of Of for
// hashing wire regions (flow-dispatch keys over a packet's FN locations)
// without a string conversion or any allocation. Bytes(b) == Of(string(b)).
func Bytes(b []byte) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= fnvPrime
	}
	return h
}

// Pow2 rounds n down to the nearest power of two, minimum 1.
func Pow2(n int) int {
	if n < 1 {
		return 1
	}
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}
