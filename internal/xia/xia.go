// Package xia implements the XIA (Han et al., NSDI 2012) addressing
// machinery DIP realizes through F_DAG and F_intent: directed-acyclic-graph
// addresses over typed identifiers (XIDs), a compact wire encoding that
// rides in the FN-locations region, and the fallback traversal algorithm
// routers run per hop.
//
// An address is a DAG whose sink (by convention the last node) is the
// intent — the principal the packet is ultimately for. Out-edges are
// ordered by priority: a router first tries the direct edge toward the
// intent and falls back to later edges (e.g. an AD→HID delivery path for a
// CID nobody caches nearby). The packet carries a "last visited node"
// pointer that records traversal progress across hops.
package xia

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
)

// XIDType is the principal type of an identifier.
type XIDType uint32

// Principal types from the XIA papers.
const (
	TypeAD  XIDType = 0x10 // autonomous domain
	TypeHID XIDType = 0x11 // host
	TypeSID XIDType = 0x12 // service
	TypeCID XIDType = 0x13 // content
)

// String names the principal type.
func (t XIDType) String() string {
	switch t {
	case TypeAD:
		return "AD"
	case TypeHID:
		return "HID"
	case TypeSID:
		return "SID"
	case TypeCID:
		return "CID"
	}
	return fmt.Sprintf("XID(%#x)", uint32(t))
}

// IDSize is the identifier size in bytes (XIA uses 160-bit hashes).
const IDSize = 20

// XID is one typed identifier.
type XID struct {
	Type XIDType
	ID   [IDSize]byte
}

// String renders "TYPE:hexprefix".
func (x XID) String() string {
	return fmt.Sprintf("%s:%x", x.Type, x.ID[:4])
}

// NewXID builds an XID from a type and up to IDSize identifier bytes
// (shorter inputs are zero-padded, a convenience for tests and examples).
func NewXID(t XIDType, id []byte) XID {
	x := XID{Type: t}
	copy(x.ID[:], id)
	return x
}

// MaxNodes bounds DAG size so addresses stay within the FN-locations region.
const MaxNodes = 15

// MaxEdges bounds per-node fallback fan-out, as in XIA's 4-edge nodes.
const MaxEdges = 4

// SourceIndex is the virtual entry node in LastVisited encoding.
const SourceIndex = -1

// Node is one DAG node: an XID plus prioritized out-edges (indices into the
// address's node array; edge 0 is tried first).
type Node struct {
	XID   XID
	Edges []int
}

// DAG is an XIA address. The last node is the intent. SrcEdges are the
// entry edges from the virtual source.
type DAG struct {
	SrcEdges []int
	Nodes    []Node
}

// Errors from encoding, decoding and traversal.
var (
	ErrBadDAG    = errors.New("xia: malformed DAG")
	ErrTruncated = errors.New("xia: truncated DAG encoding")
	ErrDead      = errors.New("xia: no routable edge (dead end)")
)

// Validate checks structural sanity: node/edge bounds, edge targets in
// range, at least one node, and acyclicity in priority order (edges must
// point forward — the canonical XIA encoding property that guarantees
// traversal terminates).
func (d *DAG) Validate() error {
	if len(d.Nodes) == 0 || len(d.Nodes) > MaxNodes {
		return fmt.Errorf("%w: %d nodes", ErrBadDAG, len(d.Nodes))
	}
	if len(d.SrcEdges) == 0 || len(d.SrcEdges) > MaxEdges {
		return fmt.Errorf("%w: %d source edges", ErrBadDAG, len(d.SrcEdges))
	}
	check := func(from int, edges []int) error {
		if len(edges) > MaxEdges {
			return fmt.Errorf("%w: node %d has %d edges", ErrBadDAG, from, len(edges))
		}
		for _, e := range edges {
			if e < 0 || e >= len(d.Nodes) {
				return fmt.Errorf("%w: edge target %d out of range", ErrBadDAG, e)
			}
			if e <= from {
				return fmt.Errorf("%w: edge %d→%d not forward", ErrBadDAG, from, e)
			}
		}
		return nil
	}
	if err := check(SourceIndex, d.SrcEdges); err != nil {
		return err
	}
	for i, n := range d.Nodes {
		if err := check(i, n.Edges); err != nil {
			return err
		}
	}
	return nil
}

// IntentIndex returns the index of the intent node.
func (d *DAG) IntentIndex() int { return len(d.Nodes) - 1 }

// Intent returns the intent XID.
func (d *DAG) Intent() XID { return d.Nodes[d.IntentIndex()].XID }

// WireSize returns the encoded size: 3 fixed bytes, the source edge list,
// and 25 bytes + edge list per node.
func (d *DAG) WireSize() int {
	n := 3 + len(d.SrcEdges)
	for _, node := range d.Nodes {
		n += 4 + IDSize + 1 + len(node.Edges)
	}
	return n
}

// Encode writes the DAG with the given last-visited pointer into dst and
// returns the number of bytes written. Layout:
//
//	[lastVisited 1B (0xFF = source)] [numNodes 1B]
//	[numSrcEdges 1B] [srcEdges ...]
//	per node: [type 4B BE] [id 20B] [numEdges 1B] [edges ...]
func (d *DAG) Encode(dst []byte, lastVisited int) (int, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	if lastVisited < SourceIndex || lastVisited >= len(d.Nodes) {
		return 0, fmt.Errorf("%w: lastVisited %d", ErrBadDAG, lastVisited)
	}
	need := d.WireSize()
	if len(dst) < need {
		return 0, fmt.Errorf("%w: need %d bytes, have %d", ErrTruncated, need, len(dst))
	}
	pos := 0
	if lastVisited == SourceIndex {
		dst[pos] = 0xFF
	} else {
		dst[pos] = byte(lastVisited)
	}
	pos++
	dst[pos] = byte(len(d.Nodes))
	pos++
	dst[pos] = byte(len(d.SrcEdges))
	pos++
	for _, e := range d.SrcEdges {
		dst[pos] = byte(e)
		pos++
	}
	for _, n := range d.Nodes {
		t := uint32(n.XID.Type)
		dst[pos], dst[pos+1], dst[pos+2], dst[pos+3] = byte(t>>24), byte(t>>16), byte(t>>8), byte(t)
		pos += 4
		copy(dst[pos:], n.XID.ID[:])
		pos += IDSize
		dst[pos] = byte(len(n.Edges))
		pos++
		for _, e := range n.Edges {
			dst[pos] = byte(e)
			pos++
		}
	}
	return pos, nil
}

// Decode parses an encoded DAG, returning the address, the last-visited
// pointer, and the encoded length consumed.
func Decode(b []byte) (*DAG, int, int, error) {
	if len(b) < 3 {
		return nil, 0, 0, fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	lastVisited := SourceIndex
	if b[0] != 0xFF {
		lastVisited = int(b[0])
	}
	numNodes := int(b[1])
	numSrc := int(b[2])
	pos := 3
	if pos+numSrc > len(b) {
		return nil, 0, 0, ErrTruncated
	}
	d := &DAG{}
	for i := 0; i < numSrc; i++ {
		d.SrcEdges = append(d.SrcEdges, int(b[pos]))
		pos++
	}
	for i := 0; i < numNodes; i++ {
		if pos+4+IDSize+1 > len(b) {
			return nil, 0, 0, ErrTruncated
		}
		t := XIDType(uint32(b[pos])<<24 | uint32(b[pos+1])<<16 | uint32(b[pos+2])<<8 | uint32(b[pos+3]))
		pos += 4
		var n Node
		n.XID.Type = t
		copy(n.XID.ID[:], b[pos:pos+IDSize])
		pos += IDSize
		ne := int(b[pos])
		pos++
		if pos+ne > len(b) {
			return nil, 0, 0, ErrTruncated
		}
		for j := 0; j < ne; j++ {
			n.Edges = append(n.Edges, int(b[pos]))
			pos++
		}
		d.Nodes = append(d.Nodes, n)
	}
	if err := d.Validate(); err != nil {
		return nil, 0, 0, err
	}
	if lastVisited >= len(d.Nodes) {
		return nil, 0, 0, fmt.Errorf("%w: lastVisited %d of %d nodes", ErrBadDAG, lastVisited, len(d.Nodes))
	}
	return d, lastVisited, pos, nil
}

// SetLastVisited patches the last-visited pointer of an encoded DAG in
// place — the only mutation routers make, so forwarding avoids re-encoding.
func SetLastVisited(encoded []byte, lastVisited int) error {
	if len(encoded) < 1 {
		return ErrTruncated
	}
	if lastVisited == SourceIndex {
		encoded[0] = 0xFF
		return nil
	}
	if lastVisited < 0 || lastVisited > 0xFE {
		return fmt.Errorf("%w: lastVisited %d", ErrBadDAG, lastVisited)
	}
	encoded[0] = byte(lastVisited)
	return nil
}

// Resolver is a router's view of XID reachability.
type Resolver interface {
	// Lookup returns the egress port toward x.
	Lookup(x XID) (port int, ok bool)
	// IsLocal reports whether x names this node (its own AD or HID, a
	// service it hosts, content it caches).
	IsLocal(x XID) bool
}

// DecisionKind classifies a traversal outcome.
type DecisionKind uint8

// Traversal outcomes.
const (
	// DecisionForward: forward on Port; NewLast records progress.
	DecisionForward DecisionKind = iota
	// DecisionIntent: the intent node is local — hand to F_intent.
	DecisionIntent
	// DecisionDead: no edge was routable; drop.
	DecisionDead
)

// Decision is the result of one hop's DAG traversal.
type Decision struct {
	Kind    DecisionKind
	Port    int
	NewLast int
}

// Traverse runs XIA's per-hop fallback algorithm: starting from the node
// after lastVisited, try that node's out-edges in priority order. A local
// node advances traversal within this hop; a routable node forwards; the
// intent being local terminates with DecisionIntent.
func Traverse(d *DAG, lastVisited int, r Resolver) Decision {
	cur := lastVisited
	for iter := 0; iter <= len(d.Nodes); iter++ {
		var edges []int
		if cur == SourceIndex {
			edges = d.SrcEdges
		} else {
			edges = d.Nodes[cur].Edges
		}
		advanced := false
		for _, e := range edges {
			x := d.Nodes[e].XID
			if r.IsLocal(x) {
				if e == d.IntentIndex() {
					return Decision{Kind: DecisionIntent, NewLast: e}
				}
				cur = e
				advanced = true
				break
			}
			if port, ok := r.Lookup(x); ok {
				return Decision{Kind: DecisionForward, Port: port, NewLast: e}
			}
		}
		if !advanced {
			return Decision{Kind: DecisionDead, NewLast: cur}
		}
	}
	return Decision{Kind: DecisionDead, NewLast: cur}
}

// RouteTable is a thread-safe Resolver backed by per-type exact-match
// tables, the way XIA routers keep separate AD/HID/SID/CID tables.
type RouteTable struct {
	mu     sync.RWMutex
	routes map[XID]int
	local  map[XID]bool
}

// NewRouteTable returns an empty table.
func NewRouteTable() *RouteTable {
	return &RouteTable{routes: make(map[XID]int), local: make(map[XID]bool)}
}

// AddRoute installs port as the next hop toward x.
func (t *RouteTable) AddRoute(x XID, port int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.routes[x] = port
}

// RemoveRoute withdraws the route toward x.
func (t *RouteTable) RemoveRoute(x XID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.routes, x)
}

// AddLocal declares x local to this node.
func (t *RouteTable) AddLocal(x XID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.local[x] = true
}

// Lookup implements Resolver.
func (t *RouteTable) Lookup(x XID) (int, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	p, ok := t.routes[x]
	return p, ok
}

// IsLocal implements Resolver.
func (t *RouteTable) IsLocal(x XID) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.local[x]
}

// Equal reports structural equality of two DAGs (for tests).
func (d *DAG) Equal(o *DAG) bool {
	if len(d.Nodes) != len(o.Nodes) || len(d.SrcEdges) != len(o.SrcEdges) {
		return false
	}
	for i := range d.SrcEdges {
		if d.SrcEdges[i] != o.SrcEdges[i] {
			return false
		}
	}
	for i := range d.Nodes {
		a, b := d.Nodes[i], o.Nodes[i]
		if a.XID.Type != b.XID.Type || !bytes.Equal(a.XID.ID[:], b.XID.ID[:]) || len(a.Edges) != len(b.Edges) {
			return false
		}
		for j := range a.Edges {
			if a.Edges[j] != b.Edges[j] {
				return false
			}
		}
	}
	return true
}
