package xia

import (
	"errors"
	"testing"
)

func encoded(t *testing.T, d *DAG, last int) []byte {
	t.Helper()
	buf := make([]byte, d.WireSize())
	if _, err := d.Encode(buf, last); err != nil {
		t.Fatal(err)
	}
	return buf
}

// TraverseEncoded must agree with Traverse over the decoded form for every
// scenario the decoded tests cover.
func TestTraverseEncodedAgreesWithDecoded(t *testing.T) {
	d := fallbackDAG()
	scenarios := []func(*RouteTable){
		func(rt *RouteTable) { rt.AddRoute(d.Nodes[2].XID, 7) },
		func(rt *RouteTable) { rt.AddRoute(d.Nodes[0].XID, 3) },
		func(rt *RouteTable) { rt.AddLocal(d.Nodes[0].XID); rt.AddRoute(d.Nodes[1].XID, 4) },
		func(rt *RouteTable) { rt.AddLocal(d.Nodes[2].XID) },
		func(rt *RouteTable) {}, // dead end
		func(rt *RouteTable) {
			for _, n := range d.Nodes {
				rt.AddLocal(n.XID)
			}
		},
	}
	for si, setup := range scenarios {
		for last := SourceIndex; last < len(d.Nodes); last++ {
			rt := NewRouteTable()
			setup(rt)
			want := Traverse(d, last, rt)
			got, err := TraverseEncoded(encoded(t, d, last), rt)
			if err != nil {
				t.Fatalf("scenario %d last %d: %v", si, last, err)
			}
			if got != want {
				t.Errorf("scenario %d last %d: encoded %+v, decoded %+v", si, last, got, want)
			}
		}
	}
}

func TestTraverseEncodedErrors(t *testing.T) {
	rt := NewRouteTable()
	if _, err := TraverseEncoded([]byte{1}, rt); !errors.Is(err, ErrTruncated) {
		t.Errorf("tiny: %v", err)
	}
	d := fallbackDAG()
	buf := encoded(t, d, SourceIndex)
	if _, err := TraverseEncoded(buf[:12], rt); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: %v", err)
	}
	bad := append([]byte(nil), buf...)
	bad[0] = 9 // lastVisited out of range
	if _, err := TraverseEncoded(bad, rt); !errors.Is(err, ErrBadDAG) {
		t.Errorf("lastVisited: %v", err)
	}
	bad = append([]byte(nil), buf...)
	bad[1] = 0 // zero nodes
	if _, err := TraverseEncoded(bad, rt); !errors.Is(err, ErrBadDAG) {
		t.Errorf("zero nodes: %v", err)
	}
}

func TestTraverseEncodedZeroAlloc(t *testing.T) {
	d := fallbackDAG()
	rt := NewRouteTable()
	rt.AddRoute(d.Nodes[0].XID, 3)
	buf := encoded(t, d, SourceIndex)
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := TraverseEncoded(buf, rt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("TraverseEncoded allocates %.1f", allocs)
	}
}

func TestIntentEncoded(t *testing.T) {
	d := fallbackDAG()
	x, at, err := IntentEncoded(encoded(t, d, 2))
	if err != nil || !at || x.Type != TypeCID {
		t.Errorf("at intent: %v %v %v", x, at, err)
	}
	_, at, err = IntentEncoded(encoded(t, d, 0))
	if err != nil || at {
		t.Errorf("not at intent: %v %v", at, err)
	}
	if _, _, err := IntentEncoded([]byte{1}); err == nil {
		t.Error("bad encoding accepted")
	}
}
