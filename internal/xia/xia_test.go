package xia

import (
	"errors"
	"testing"
)

// fallbackDAG builds the canonical XIA example: intent CID with a fallback
// path source→AD→HID→CID.
//
//	source ──→ CID (intent, node 2)
//	   └─fallback→ AD (0) ──→ HID (1) ──→ CID (2)
func fallbackDAG() *DAG {
	ad := NewXID(TypeAD, []byte("ad1"))
	hid := NewXID(TypeHID, []byte("host1"))
	cid := NewXID(TypeCID, []byte("content1"))
	return &DAG{
		SrcEdges: []int{2, 0}, // try intent directly, fall back to AD
		Nodes: []Node{
			{XID: ad, Edges: []int{2, 1}}, // AD: try intent, fall back to HID
			{XID: hid, Edges: []int{2}},
			{XID: cid},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := fallbackDAG().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &DAG{SrcEdges: []int{0}, Nodes: []Node{{Edges: []int{0}}}}
	if err := bad.Validate(); !errors.Is(err, ErrBadDAG) {
		t.Errorf("self-edge: %v", err)
	}
	back := &DAG{SrcEdges: []int{1}, Nodes: []Node{
		{}, {Edges: []int{0}},
	}}
	if err := back.Validate(); !errors.Is(err, ErrBadDAG) {
		t.Errorf("backward edge: %v", err)
	}
	empty := &DAG{SrcEdges: []int{0}}
	if err := empty.Validate(); !errors.Is(err, ErrBadDAG) {
		t.Errorf("no nodes: %v", err)
	}
	noSrc := &DAG{Nodes: []Node{{}}}
	if err := noSrc.Validate(); !errors.Is(err, ErrBadDAG) {
		t.Errorf("no source edges: %v", err)
	}
	out := &DAG{SrcEdges: []int{5}, Nodes: []Node{{}}}
	if err := out.Validate(); !errors.Is(err, ErrBadDAG) {
		t.Errorf("edge out of range: %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := fallbackDAG()
	buf := make([]byte, d.WireSize())
	n, err := d.Encode(buf, SourceIndex)
	if err != nil {
		t.Fatal(err)
	}
	if n != d.WireSize() {
		t.Errorf("encoded %d bytes, WireSize %d", n, d.WireSize())
	}
	got, last, consumed, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if last != SourceIndex || consumed != n {
		t.Errorf("last=%d consumed=%d", last, consumed)
	}
	if !got.Equal(d) {
		t.Error("round trip mismatch")
	}

	// Non-source lastVisited survives the trip.
	d.Encode(buf, 1)
	_, last, _, err = Decode(buf)
	if err != nil || last != 1 {
		t.Errorf("last=%d err=%v", last, err)
	}
}

func TestEncodeErrors(t *testing.T) {
	d := fallbackDAG()
	if _, err := d.Encode(make([]byte, 5), SourceIndex); !errors.Is(err, ErrTruncated) {
		t.Errorf("short dst: %v", err)
	}
	if _, err := d.Encode(make([]byte, d.WireSize()), 9); !errors.Is(err, ErrBadDAG) {
		t.Errorf("bad lastVisited: %v", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, _, err := Decode([]byte{0xFF}); !errors.Is(err, ErrTruncated) {
		t.Errorf("tiny: %v", err)
	}
	d := fallbackDAG()
	buf := make([]byte, d.WireSize())
	d.Encode(buf, SourceIndex)
	if _, _, _, err := Decode(buf[:10]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated nodes: %v", err)
	}
	// lastVisited beyond node count.
	buf[0] = 9
	if _, _, _, err := Decode(buf); !errors.Is(err, ErrBadDAG) {
		t.Errorf("lastVisited range: %v", err)
	}
}

func TestSetLastVisited(t *testing.T) {
	d := fallbackDAG()
	buf := make([]byte, d.WireSize())
	d.Encode(buf, SourceIndex)
	if err := SetLastVisited(buf, 2); err != nil {
		t.Fatal(err)
	}
	_, last, _, _ := Decode(buf)
	if last != 2 {
		t.Errorf("last = %d", last)
	}
	if err := SetLastVisited(buf, SourceIndex); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xFF {
		t.Error("source encoding")
	}
	if err := SetLastVisited(nil, 0); !errors.Is(err, ErrTruncated) {
		t.Errorf("nil: %v", err)
	}
	if err := SetLastVisited(buf, 400); !errors.Is(err, ErrBadDAG) {
		t.Errorf("overflow: %v", err)
	}
}

func TestTraverseDirectIntentRoute(t *testing.T) {
	d := fallbackDAG()
	rt := NewRouteTable()
	rt.AddRoute(d.Nodes[2].XID, 7) // CID directly routable
	dec := Traverse(d, SourceIndex, rt)
	if dec.Kind != DecisionForward || dec.Port != 7 || dec.NewLast != 2 {
		t.Errorf("got %+v", dec)
	}
}

func TestTraverseFallbackToAD(t *testing.T) {
	d := fallbackDAG()
	rt := NewRouteTable()
	rt.AddRoute(d.Nodes[0].XID, 3) // only the AD is routable
	dec := Traverse(d, SourceIndex, rt)
	if dec.Kind != DecisionForward || dec.Port != 3 || dec.NewLast != 0 {
		t.Errorf("got %+v", dec)
	}
}

func TestTraverseLocalAdvances(t *testing.T) {
	// At the AD's border router: AD is local, HID routable — traversal must
	// advance through the local AD node and forward toward the HID.
	d := fallbackDAG()
	rt := NewRouteTable()
	rt.AddLocal(d.Nodes[0].XID)
	rt.AddRoute(d.Nodes[1].XID, 4)
	dec := Traverse(d, SourceIndex, rt)
	if dec.Kind != DecisionForward || dec.Port != 4 || dec.NewLast != 1 {
		t.Errorf("got %+v", dec)
	}
}

func TestTraverseIntentLocal(t *testing.T) {
	d := fallbackDAG()
	rt := NewRouteTable()
	rt.AddLocal(d.Nodes[2].XID)
	dec := Traverse(d, SourceIndex, rt)
	if dec.Kind != DecisionIntent || dec.NewLast != 2 {
		t.Errorf("got %+v", dec)
	}
}

func TestTraverseResumesFromLastVisited(t *testing.T) {
	// Packet already progressed to the HID node (index 1); this router
	// only knows the intent.
	d := fallbackDAG()
	rt := NewRouteTable()
	rt.AddRoute(d.Nodes[2].XID, 9)
	dec := Traverse(d, 1, rt)
	if dec.Kind != DecisionForward || dec.Port != 9 || dec.NewLast != 2 {
		t.Errorf("got %+v", dec)
	}
}

func TestTraverseDeadEnd(t *testing.T) {
	d := fallbackDAG()
	dec := Traverse(d, SourceIndex, NewRouteTable())
	if dec.Kind != DecisionDead {
		t.Errorf("got %+v", dec)
	}
}

func TestTraverseChainOfLocals(t *testing.T) {
	// Every node local: traversal walks the whole chain to the intent.
	d := fallbackDAG()
	rt := NewRouteTable()
	for _, n := range d.Nodes {
		rt.AddLocal(n.XID)
	}
	dec := Traverse(d, SourceIndex, rt)
	if dec.Kind != DecisionIntent || dec.NewLast != 2 {
		t.Errorf("got %+v", dec)
	}
}

func TestRouteTableRemove(t *testing.T) {
	rt := NewRouteTable()
	x := NewXID(TypeHID, []byte("h"))
	rt.AddRoute(x, 1)
	if _, ok := rt.Lookup(x); !ok {
		t.Fatal("route missing")
	}
	rt.RemoveRoute(x)
	if _, ok := rt.Lookup(x); ok {
		t.Error("route survived removal")
	}
}

func TestXIDString(t *testing.T) {
	x := NewXID(TypeCID, []byte{0xAB, 0xCD})
	if got := x.String(); got != "CID:abcd0000" {
		t.Errorf("got %q", got)
	}
	if XIDType(0x99).String() != "XID(0x99)" {
		t.Error("unknown type string")
	}
}

func TestIntentAccessors(t *testing.T) {
	d := fallbackDAG()
	if d.IntentIndex() != 2 || d.Intent().Type != TypeCID {
		t.Errorf("intent %d %v", d.IntentIndex(), d.Intent())
	}
}
