package xia

import "fmt"

// TraverseEncoded runs the per-hop fallback traversal directly over an
// encoded DAG, without decoding it into a DAG value. This is the form
// F_DAG uses on the forwarding path: it allocates nothing, and the only
// mutation a router needs afterwards is SetLastVisited on the same bytes.
func TraverseEncoded(b []byte, r Resolver) (Decision, error) {
	if len(b) < 3 {
		return Decision{}, fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	lastVisited := SourceIndex
	if b[0] != 0xFF {
		lastVisited = int(b[0])
	}
	numNodes := int(b[1])
	numSrc := int(b[2])
	if numNodes == 0 || numNodes > MaxNodes || numSrc == 0 || numSrc > MaxEdges {
		return Decision{}, fmt.Errorf("%w: %d nodes, %d source edges", ErrBadDAG, numNodes, numSrc)
	}
	if lastVisited >= numNodes {
		return Decision{}, fmt.Errorf("%w: lastVisited %d of %d nodes", ErrBadDAG, lastVisited, numNodes)
	}
	srcEdgesOff := 3
	if srcEdgesOff+numSrc > len(b) {
		return Decision{}, ErrTruncated
	}
	// Index node offsets in one pass.
	var nodeOff [MaxNodes]int
	pos := srcEdgesOff + numSrc
	for i := 0; i < numNodes; i++ {
		if pos+4+IDSize+1 > len(b) {
			return Decision{}, ErrTruncated
		}
		nodeOff[i] = pos
		ne := int(b[pos+4+IDSize])
		if ne > MaxEdges {
			return Decision{}, fmt.Errorf("%w: node %d has %d edges", ErrBadDAG, i, ne)
		}
		pos += 4 + IDSize + 1 + ne
		if pos > len(b) {
			return Decision{}, ErrTruncated
		}
	}
	xidAt := func(i int) XID {
		off := nodeOff[i]
		var x XID
		x.Type = XIDType(uint32(b[off])<<24 | uint32(b[off+1])<<16 | uint32(b[off+2])<<8 | uint32(b[off+3]))
		copy(x.ID[:], b[off+4:off+4+IDSize])
		return x
	}
	edgesAt := func(i int) []byte {
		if i == SourceIndex {
			return b[srcEdgesOff : srcEdgesOff+numSrc]
		}
		off := nodeOff[i] + 4 + IDSize
		ne := int(b[off])
		return b[off+1 : off+1+ne]
	}
	intent := numNodes - 1
	cur := lastVisited
	for iter := 0; iter <= numNodes; iter++ {
		advanced := false
		for _, eb := range edgesAt(cur) {
			e := int(eb)
			if e >= numNodes || (cur != SourceIndex && e <= cur) {
				return Decision{}, fmt.Errorf("%w: edge %d→%d", ErrBadDAG, cur, e)
			}
			x := xidAt(e)
			if r.IsLocal(x) {
				if e == intent {
					return Decision{Kind: DecisionIntent, NewLast: e}, nil
				}
				cur = e
				advanced = true
				break
			}
			if port, ok := r.Lookup(x); ok {
				return Decision{Kind: DecisionForward, Port: port, NewLast: e}, nil
			}
		}
		if !advanced {
			return Decision{Kind: DecisionDead, NewLast: cur}, nil
		}
	}
	return Decision{Kind: DecisionDead, NewLast: cur}, nil
}

// IntentEncoded reports whether the encoded DAG's last-visited pointer sits
// on the intent node, and returns the intent XID. This is F_intent's check;
// like TraverseEncoded it walks the wire form and allocates nothing.
func IntentEncoded(b []byte) (XID, bool, error) {
	if len(b) < 3 {
		return XID{}, false, fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	lastVisited := SourceIndex
	if b[0] != 0xFF {
		lastVisited = int(b[0])
	}
	numNodes := int(b[1])
	numSrc := int(b[2])
	if numNodes == 0 || numNodes > MaxNodes {
		return XID{}, false, fmt.Errorf("%w: %d nodes", ErrBadDAG, numNodes)
	}
	if lastVisited >= numNodes {
		return XID{}, false, fmt.Errorf("%w: lastVisited %d of %d nodes", ErrBadDAG, lastVisited, numNodes)
	}
	pos := 3 + numSrc
	for i := 0; i < numNodes; i++ {
		if pos+4+IDSize+1 > len(b) {
			return XID{}, false, ErrTruncated
		}
		if i == numNodes-1 {
			var x XID
			x.Type = XIDType(uint32(b[pos])<<24 | uint32(b[pos+1])<<16 | uint32(b[pos+2])<<8 | uint32(b[pos+3]))
			copy(x.ID[:], b[pos+4:pos+4+IDSize])
			return x, lastVisited == numNodes-1, nil
		}
		pos += 4 + IDSize + 1 + int(b[pos+4+IDSize])
	}
	return XID{}, false, ErrTruncated
}
