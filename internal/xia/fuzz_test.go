package xia

import "testing"

// FuzzDecode: arbitrary bytes must never panic the DAG decoder, and
// anything it accepts must re-encode to an equal DAG.
func FuzzDecode(f *testing.F) {
	d := fallbackDAG()
	buf := make([]byte, d.WireSize())
	d.Encode(buf, SourceIndex)
	f.Add(buf)
	f.Add([]byte{0xFF, 1, 1, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dag, last, n, err := Decode(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		out := make([]byte, dag.WireSize())
		m, err := dag.Encode(out, last)
		if err != nil {
			t.Fatalf("accepted DAG fails to re-encode: %v", err)
		}
		re, last2, _, err := Decode(out[:m])
		if err != nil || last2 != last || !re.Equal(dag) {
			t.Fatalf("re-decode mismatch: %v", err)
		}
	})
}

// FuzzTraverseEncoded: wire traversal must never panic or read out of
// bounds on arbitrary input, and must agree with decoded traversal whenever
// both accept.
func FuzzTraverseEncoded(f *testing.F) {
	d := fallbackDAG()
	buf := make([]byte, d.WireSize())
	d.Encode(buf, SourceIndex)
	f.Add(buf)
	f.Fuzz(func(t *testing.T, data []byte) {
		rt := NewRouteTable()
		rt.AddRoute(NewXID(TypeAD, []byte("ad1")), 3)
		rt.AddLocal(NewXID(TypeCID, []byte("content1")))
		encDec, encErr := TraverseEncoded(data, rt)
		dag, last, _, decErr := Decode(data)
		if encErr != nil || decErr != nil {
			return // either rejection is fine; no panic is the invariant
		}
		want := Traverse(dag, last, rt)
		if encDec != want {
			t.Fatalf("wire traversal %+v, decoded traversal %+v", encDec, want)
		}
	})
}
