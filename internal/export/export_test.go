package export

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"dip/internal/bootstrap"
	"dip/internal/cc"
	"dip/internal/core"
	"dip/internal/extops"
	"dip/internal/fib"
	"dip/internal/host"
	"dip/internal/inband"
	"dip/internal/netsim"
	"dip/internal/profiles"
	"dip/internal/telemetry"
	"dip/internal/trace"
)

func scrapeSource(t *testing.T) (Source, *telemetry.Metrics, *trace.Recorder) {
	t.Helper()
	m := &telemetry.Metrics{}
	tr := trace.NewRecorder(m, 1, 8)
	m.RecordOp(core.KeyFIB, 300*time.Nanosecond)
	m.RecordOp(core.KeyFIB, 5*time.Microsecond)
	m.RecordOp(core.KeyPIT, time.Microsecond)
	m.RecordDrop(core.DropNoRoute)
	m.RecordEvent(telemetry.EventRetransmit)
	m.CountVerdict(core.VerdictForward)
	m.CountVerdict(core.VerdictDeliver)
	m.CountVerdict(core.VerdictDrop)
	return Source{Node: "r1", Metrics: m, Trace: tr}, m, tr
}

// parsePromText validates the exposition line grammar and returns the
// samples as metric{labels} → value.
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	for i, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d has no value separator: %q", i+1, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d value %q: %v", i+1, valStr, err)
		}
		name := key
		if br := strings.IndexByte(key, '{'); br >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d has unbalanced label braces: %q", i+1, line)
			}
			name = key[:br]
		}
		for _, r := range name {
			if !(r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
				t.Fatalf("line %d metric name %q has invalid rune %q", i+1, name, r)
			}
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("duplicate sample %q", key)
		}
		samples[key] = val
	}
	return samples
}

func TestWriteMetricsRendersAllFamilies(t *testing.T) {
	src, _, _ := scrapeSource(t)
	var b strings.Builder
	src.WriteMetrics(&b)
	samples := parsePromText(t, b.String())

	for key, want := range map[string]float64{
		`dip_packets_received_total{node="r1"}`:                    3,
		`dip_packets_total{node="r1",verdict="forward"}`:           1,
		`dip_packets_total{node="r1",verdict="deliver"}`:           1,
		`dip_packets_total{node="r1",verdict="drop"}`:              1,
		`dip_drops_total{node="r1",reason="no-route"}`:             1,
		`dip_events_total{node="r1",event="retransmit"}`:           1,
		`dip_op_executions_total{node="r1",op="F_FIB"}`:            2,
		`dip_op_latency_ns_count{node="r1",op="F_FIB"}`:            2,
		`dip_op_latency_ns_bucket{node="r1",op="F_FIB",le="+Inf"}`: 2,
		`dip_trace_sample_every{node="r1"}`:                        1,
		`dip_trace_ring_records{node="r1"}`:                        8,
	} {
		if got, ok := samples[key]; !ok {
			t.Errorf("missing sample %s", key)
		} else if got != want {
			t.Errorf("%s = %g, want %g", key, got, want)
		}
	}

	// Histogram buckets are cumulative and le edges are the inclusive log2
	// upper bounds: 300ns lands in le="511", 5µs in a later bucket.
	b511 := `dip_op_latency_ns_bucket{node="r1",op="F_FIB",le="511"}`
	if got := samples[b511]; got != 1 {
		t.Errorf("%s = %g, want 1 (300ns sample)", b511, got)
	}
	var prev float64
	for bkt := 0; bkt < telemetry.HistBuckets; bkt++ {
		key := `dip_op_latency_ns_bucket{node="r1",op="F_FIB",le="` +
			strconv.FormatInt(int64(telemetry.BucketUpper(bkt)), 10) + `"}`
		if got, ok := samples[key]; ok {
			if got < prev {
				t.Fatalf("histogram not cumulative at %s: %g < %g", key, got, prev)
			}
			prev = got
		}
	}
}

func TestWriteMetricsOmitsAbsentSubsystems(t *testing.T) {
	var b strings.Builder
	Source{Node: "bare"}.WriteMetrics(&b)
	if out := b.String(); out != "" {
		t.Fatalf("empty source rendered %d bytes:\n%s", len(out), out)
	}
}

func TestLabelEscaping(t *testing.T) {
	m := &telemetry.Metrics{}
	m.CountVerdict(core.VerdictForward)
	var b strings.Builder
	Source{Node: `wei"rd\node` + "\n", Metrics: m}.WriteMetrics(&b)
	want := `node="wei\"rd\\node\n"`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("output lacks escaped label %s:\n%s", want, b.String())
	}
}

func TestHandlerMetricsEndpoint(t *testing.T) {
	src, _, _ := scrapeSource(t)
	srv := httptest.NewServer(src.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, string(body))
	if len(samples) == 0 {
		t.Fatal("scrape returned no samples")
	}
}

func TestHandlerTraceEndpoint(t *testing.T) {
	src, _, _ := scrapeSource(t)
	srv := httptest.NewServer(src.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /trace: %s", resp.Status)
	}
	// Ring is empty (no packets processed) so the dump is empty but served.
	if len(body) != 0 {
		t.Fatalf("empty ring dumped %q", body)
	}

	// Tracing disabled → explanatory comment, still dipdump-safe ('#').
	srv2 := httptest.NewServer(Source{}.Handler())
	defer srv2.Close()
	resp2, err := http.Get(srv2.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.HasPrefix(string(body2), "#") {
		t.Fatalf("disabled-trace body is not a comment: %q", body2)
	}
}

func TestHandlerPprofEndpoint(t *testing.T) {
	src, _, _ := scrapeSource(t)
	srv := httptest.NewServer(src.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/: %s", resp.Status)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "goroutine") {
		t.Fatal("pprof index does not list profiles")
	}
}

func TestServeBindsAndCloses(t *testing.T) {
	src, _, _ := scrapeSource(t)
	addr, closeFn, err := Serve("127.0.0.1:0", src)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr.String() + "/metrics"); err == nil {
		t.Fatal("listener still serving after close")
	}
}

// The dip_fetch_* family renders fetcher counters and the congestion
// controller's live state from a real SegFetcher.
func TestWriteMetricsFetchFamily(t *testing.T) {
	sim := netsim.New()
	var f *host.SegFetcher
	f = host.NewSegFetcher(sim, func(pkt []byte) {
		v, _ := core.ParseView(pkt)
		name, _ := host.InterestName(v)
		reply, err := host.BuildPacket(profiles.NDNData(name), []byte("pay"))
		if err != nil {
			t.Fatal(err)
		}
		sim.Schedule(2*time.Millisecond, func() { f.HandleData(reply) })
	}, host.SegConfig{})
	if err := f.FetchObject(0xAA001000, 5); err != nil {
		t.Fatal(err)
	}
	sim.Run()

	src := Source{
		Node:    "c1",
		Fetch:   func() host.FetchStats { return f.Stats().FetchStats() },
		FetchCC: func() cc.Snapshot { return f.CC() },
	}
	var b strings.Builder
	src.WriteMetrics(&b)
	samples := parsePromText(t, b.String())

	if got := samples[`dip_fetch_completed_total{node="c1"}`]; got != 5 {
		t.Errorf("completed = %g, want 5", got)
	}
	if got := samples[`dip_fetch_pending{node="c1"}`]; got != 0 {
		t.Errorf("pending = %g, want 0", got)
	}
	if got := samples[`dip_fetch_retransmits_total{node="c1"}`]; got != 0 {
		t.Errorf("retransmits = %g", got)
	}
	if got := samples[`dip_fetch_deadletter_total{node="c1"}`]; got != 0 {
		t.Errorf("deadletters = %g", got)
	}
	if got := samples[`dip_fetch_cwnd{node="c1",algo="aimd"}`]; got < 2 {
		t.Errorf("cwnd = %g, want ≥ initial window", got)
	}
	if got := samples[`dip_fetch_srtt_ns{node="c1"}`]; got <= 0 {
		t.Errorf("srtt = %g, want > 0 after clean samples", got)
	}
	if got := samples[`dip_fetch_rto_ns{node="c1"}`]; got <= 0 {
		t.Errorf("rto = %g", got)
	}
	if _, ok := samples[`dip_fetch_cwnd_cuts_total{node="c1"}`]; !ok {
		t.Error("cwnd cuts sample missing")
	}
}

func TestWriteMetricsRouteFamily(t *testing.T) {
	// Two speakers joined by a synchronous in-memory link: A originates a
	// route, B learns it, and B's scrape must show the exchange.
	fibB := fib.New()
	var a, b *bootstrap.Speaker
	now := func() time.Duration { return 0 }
	a = bootstrap.NewSpeaker(bootstrap.SpeakerConfig{Name: "A", Now: now})
	b = bootstrap.NewSpeaker(bootstrap.SpeakerConfig{Name: "B", FIB32: fibB, Now: now})
	a.AddNeighbor(0, func(msg []byte) { b.Handle(msg, 0) })
	b.AddNeighbor(0, func(msg []byte) { a.Handle(msg, 0) })
	a.Originate(bootstrap.Entry32(0x0A000000, 8, 0), fib.NextHop{Port: 1})
	a.Refresh()
	if err := b.Handle([]byte{0xFF, 0xFF}, 0); err == nil {
		t.Fatal("junk message accepted")
	}

	src := Source{Node: "r2", Routes: b.Stats}
	var sb strings.Builder
	src.WriteMetrics(&sb)
	samples := parsePromText(t, sb.String())

	if got := samples[`dip_route_rib_entries{node="r2"}`]; got != 1 {
		t.Errorf("rib entries = %g, want 1", got)
	}
	if got := samples[`dip_route_messages_total{node="r2",type="advertise",dir="recv"}`]; got < 1 {
		t.Errorf("advertises recv = %g, want >= 1", got)
	}
	if got := samples[`dip_route_changes_total{node="r2",cause="installed"}`]; got != 1 {
		t.Errorf("installed = %g, want 1", got)
	}
	if got := samples[`dip_route_commits_total{node="r2"}`]; got != 1 {
		t.Errorf("commits = %g, want 1", got)
	}
	if got := samples[`dip_route_malformed_total{node="r2"}`]; got != 1 {
		t.Errorf("malformed = %g, want 1", got)
	}
	if got := samples[`dip_route_local_entries{node="r2"}`]; got != 0 {
		t.Errorf("local entries = %g, want 0", got)
	}
}

func TestWriteMetricsINTFamily(t *testing.T) {
	// Feed a collector a reroute: two postcards over A→B, then one over
	// A→C with a congested, microbursting hop.
	c := inband.NewCollector(inband.Config{
		MicroburstDepth: 10,
		HopName: func(id uint32) string {
			return map[uint32]string{1: "A", 2: "B", 3: "C"}[id]
		},
	})
	ab := []extops.HopRecord{
		{HopID: 1, TimestampUs: 1000},
		{HopID: 2, TimestampUs: 2000, QueueDepth: 3},
	}
	c.Add(inband.Postcard{Flow: 7, At: 1, Hops: ab})
	c.Add(inband.Postcard{Flow: 7, At: 2, Hops: ab})
	c.Add(inband.Postcard{Flow: 7, At: 3, Hops: []extops.HopRecord{
		{HopID: 1, TimestampUs: 5000},
		{HopID: 3, TimestampUs: 9000, QueueDepth: 12, Flags: extops.TelFlagCongested},
	}})

	src := Source{Node: "e1", INT: c.Stats}
	var sb strings.Builder
	src.WriteMetrics(&sb)
	samples := parsePromText(t, sb.String())

	if got := samples[`dip_int_postcards_total{node="e1"}`]; got != 3 {
		t.Errorf("postcards = %g, want 3", got)
	}
	if got := samples[`dip_int_path_changes_total{node="e1"}`]; got != 1 {
		t.Errorf("path changes = %g, want 1", got)
	}
	if got := samples[`dip_int_flows{node="e1"}`]; got != 1 {
		t.Errorf("flows = %g, want 1", got)
	}
	if got := samples[`dip_int_microbursts_total{node="e1"}`]; got != 1 {
		t.Errorf("microbursts = %g, want 1", got)
	}
	// A→B saw two 1ms transits, A→C one 4ms transit.
	if got := samples[`dip_int_link_latency_ns_sum{node="e1",from="A",to="B"}`]; got != 2_000_000 {
		t.Errorf("A->B latency sum = %g, want 2ms", got)
	}
	if got := samples[`dip_int_link_latency_ns_count{node="e1",from="A",to="C"}`]; got != 1 {
		t.Errorf("A->C transit count = %g, want 1", got)
	}
	if got := samples[`dip_int_link_latency_ns_bucket{node="e1",from="A",to="C",le="+Inf"}`]; got != 1 {
		t.Errorf("A->C +Inf bucket = %g, want 1", got)
	}
	if got := samples[`dip_int_hop_records_total{node="e1",hop="A"}`]; got != 3 {
		t.Errorf("hop A records = %g, want 3", got)
	}
	if got := samples[`dip_int_hop_congested_total{node="e1",hop="C"}`]; got != 1 {
		t.Errorf("hop C congested = %g, want 1", got)
	}
	if got := samples[`dip_int_hop_queue_depth_max{node="e1",hop="C"}`]; got != 12 {
		t.Errorf("hop C queue max = %g, want 12", got)
	}

	// Absent INT source renders no dip_int_* series at all.
	var none strings.Builder
	Source{Node: "e1"}.WriteMetrics(&none)
	if strings.Contains(none.String(), "dip_int_") {
		t.Error("dip_int_* rendered without an INT source")
	}
}
