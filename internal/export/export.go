// Package export renders a node's observability surface over HTTP: the
// telemetry counters as Prometheus text format on /metrics, the sampled
// per-packet trace ring as dipdump-ready text on /trace, and the standard
// net/http/pprof profiling endpoints under /debug/pprof — one listener a
// fleet scraper (or an operator with curl) points at per diprouter/diphost
// process. Rendering walks snapshots, never live state, so a scrape can
// never serialize the data plane.
//
// Metric names follow Prometheus conventions: dip_<subsystem>_<unit>_total
// for counters, bare gauges for occupancy, and classic cumulative
// histograms (dip_op_latency_ns_bucket{le=...}) derived from telemetry's
// log2 buckets, whose inclusive upper edges become the le boundaries.
package export

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"

	"dip/internal/bootstrap"
	"dip/internal/cc"
	"dip/internal/core"
	"dip/internal/cs"
	"dip/internal/host"
	"dip/internal/inband"
	"dip/internal/journey"
	"dip/internal/router"
	"dip/internal/telemetry"
	"dip/internal/trace"
)

// PITStats is the slice of pit.Table a scraper needs (satisfied by
// *pit.Table[K]).
type PITStats interface {
	Len() int
	PortCapRejections() int64
	ExpiredTotal() int64
}

// CSStats is the slice of cs.Store a scraper needs (satisfied by
// *cs.Store[K]).
type CSStats interface {
	Len() int
	Bytes() int
}

// Source bundles everything one node exposes. Any field may be nil/zero;
// the corresponding series are simply absent.
type Source struct {
	// Node labels every series (node="..."); empty omits the label.
	Node string
	// Metrics supplies verdict/drop/event counters and op histograms.
	Metrics *telemetry.Metrics
	// Health supplies the ingress guard snapshot; ok=false (not serving)
	// omits the guard series.
	Health func() (router.Health, bool)
	// PIT and CS supply table occupancy.
	PIT PITStats
	CS  CSStats
	// CSTier, when set, supplies the two-tier content-store snapshot for
	// the dip_cs_tier_* / dip_cs_cold_* series (cs.Tiered.Stats).
	CSTier func() cs.TierStats
	// Trace supplies ring sample/drop counters and the /trace dump.
	Trace *trace.Recorder
	// Journeys supplies the journey span ring for the /journeys dump (a
	// live process exports spans; a central collector stitches them).
	Journeys *journey.Emitter
	// JourneyStats, when set, supplies stitched-journey aggregates for the
	// dip_journey_* series (set on the process hosting the Collector).
	JourneyStats func() journey.Stats
	// Fetch supplies host fetcher counters for the dip_fetch_* series
	// (both the plain Fetcher's Stats and SegStats.FetchStats fit).
	Fetch func() host.FetchStats
	// FetchCC supplies the fetcher's congestion-controller snapshot for
	// the dip_fetch_cwnd / srtt / rto gauges (SegFetcher.CC).
	FetchCC func() cc.Snapshot
	// Routes supplies the route-exchange speaker snapshot for the
	// dip_route_* series (bootstrap.Speaker.Stats).
	Routes func() bootstrap.SpeakerStats
	// INT supplies the in-band telemetry collector snapshot for the
	// dip_int_* series (inband.Collector.Stats) — set on the process
	// terminating telemetry at its delivering edge.
	INT func() inband.Stats
}

// WriteMetrics renders the full Prometheus text exposition to w.
func (s Source) WriteMetrics(w io.Writer) {
	label := s.labels()
	if s.Metrics != nil {
		snap := s.Metrics.Snapshot()
		writeHeader(w, "dip_packets_received_total", "counter", "Packets counted by verdict accounting.")
		writeSample(w, "dip_packets_received_total", label, float64(snap.Received))
		writeHeader(w, "dip_packets_total", "counter", "Packets by final verdict.")
		for _, v := range []struct {
			verdict string
			n       int64
		}{
			{"forward", snap.Forwarded},
			{"deliver", snap.Delivered},
			{"absorb", snap.Absorbed},
			{"no-action", snap.NoAction},
			{"drop", snap.Dropped},
		} {
			writeSample(w, "dip_packets_total", join(label, `verdict=`+quote(v.verdict)), float64(v.n))
		}
		writeHeader(w, "dip_drops_total", "counter", "Dropped packets by reason.")
		for _, r := range sortedDropReasons(snap.Drops) {
			writeSample(w, "dip_drops_total", join(label, `reason=`+quote(r.String())), float64(snap.Drops[r]))
		}
		writeHeader(w, "dip_events_total", "counter", "Recovery and degradation events.")
		for _, e := range sortedEvents(snap.Events) {
			writeSample(w, "dip_events_total", join(label, `event=`+quote(e.String())), float64(snap.Events[e]))
		}
		if len(snap.Ops) > 0 {
			writeHeader(w, "dip_op_executions_total", "counter", "FN operation executions.")
			for _, op := range snap.Ops {
				writeSample(w, "dip_op_executions_total", join(label, `op=`+quote(op.Key.String())), float64(op.Count))
			}
			writeHeader(w, "dip_op_latency_ns_total", "counter", "Cumulative FN execution time in nanoseconds.")
			for _, op := range snap.Ops {
				writeSample(w, "dip_op_latency_ns_total", join(label, `op=`+quote(op.Key.String())), float64(op.TotalNs))
			}
			writeHeader(w, "dip_op_latency_ns", "histogram", "FN execution latency histogram (log2 buckets, nanoseconds).")
			for _, op := range snap.Ops {
				opLabel := join(label, `op=`+quote(op.Key.String()))
				var cum int64
				for b := 0; b < telemetry.HistBuckets; b++ {
					if op.Hist[b] == 0 {
						continue
					}
					cum += op.Hist[b]
					le := fmt.Sprintf("%d", int64(telemetry.BucketUpper(b)))
					writeSample(w, "dip_op_latency_ns_bucket", join(opLabel, `le=`+quote(le)), float64(cum))
				}
				writeSample(w, "dip_op_latency_ns_bucket", join(opLabel, `le="+Inf"`), float64(op.Count))
				writeSample(w, "dip_op_latency_ns_sum", opLabel, float64(op.TotalNs))
				writeSample(w, "dip_op_latency_ns_count", opLabel, float64(op.Count))
			}
		}
	}
	if s.Health != nil {
		if h, ok := s.Health(); ok {
			writeHeader(w, "dip_guard_workers", "gauge", "Forwarding worker pool size (0 = pump mode).")
			writeSample(w, "dip_guard_workers", label, float64(h.Workers))
			writeHeader(w, "dip_guard_workers_stalled", "gauge", "Workers busy on one packet beyond the stall threshold.")
			writeSample(w, "dip_guard_workers_stalled", label, float64(h.Stalled))
			writeHeader(w, "dip_guard_queue_depth", "gauge", "Ingress queue occupancy per class.")
			writeSample(w, "dip_guard_queue_depth", join(label, `class="control"`), float64(h.HighDepth))
			writeSample(w, "dip_guard_queue_depth", join(label, `class="bulk"`), float64(h.LowDepth))
			writeHeader(w, "dip_guard_queue_capacity", "gauge", "Ingress queue bound per class.")
			writeSample(w, "dip_guard_queue_capacity", join(label, `class="control"`), float64(h.HighCap))
			writeSample(w, "dip_guard_queue_capacity", join(label, `class="bulk"`), float64(h.LowCap))
			writeHeader(w, "dip_guard_shed_total", "counter", "Queue-full drops per class.")
			writeSample(w, "dip_guard_shed_total", join(label, `class="control"`), float64(h.ShedHigh))
			writeSample(w, "dip_guard_shed_total", join(label, `class="bulk"`), float64(h.ShedLow))
			writeHeader(w, "dip_guard_admit_rejected_total", "counter", "Admission-control refusals.")
			writeSample(w, "dip_guard_admit_rejected_total", label, float64(h.AdmitRejected))
			writeHeader(w, "dip_guard_quarantined_total", "counter", "Packets captured after panicking a worker.")
			writeSample(w, "dip_guard_quarantined_total", label, float64(h.Quarantined))
			writeHeader(w, "dip_guard_processed_total", "counter", "Packets handed to the pipeline by the guard layer.")
			writeSample(w, "dip_guard_processed_total", label, float64(h.Processed))
		}
	}
	if s.PIT != nil {
		writeHeader(w, "dip_pit_entries", "gauge", "Pending interest table occupancy.")
		writeSample(w, "dip_pit_entries", label, float64(s.PIT.Len()))
		writeHeader(w, "dip_pit_portcap_rejected_total", "counter", "Interests refused by the per-port flood cap.")
		writeSample(w, "dip_pit_portcap_rejected_total", label, float64(s.PIT.PortCapRejections()))
		writeHeader(w, "dip_pit_expired_total", "counter", "PIT entries removed by TTL expiry.")
		writeSample(w, "dip_pit_expired_total", label, float64(s.PIT.ExpiredTotal()))
	}
	if s.CS != nil {
		writeHeader(w, "dip_cs_entries", "gauge", "Content store occupancy.")
		writeSample(w, "dip_cs_entries", label, float64(s.CS.Len()))
		writeHeader(w, "dip_cs_bytes", "gauge", "Content store cached payload bytes.")
		writeSample(w, "dip_cs_bytes", label, float64(s.CS.Bytes()))
	}
	if s.CSTier != nil {
		ts := s.CSTier()
		writeHeader(w, "dip_cs_tier_hits_total", "counter", "Content-store hits by tier.")
		writeSample(w, "dip_cs_tier_hits_total", join(label, `tier="hot"`), float64(ts.HotHits))
		writeSample(w, "dip_cs_tier_hits_total", join(label, `tier="cold"`), float64(ts.ColdHits))
		writeHeader(w, "dip_cs_tier_misses_total", "counter", "Content-store lookups that missed both tiers.")
		writeSample(w, "dip_cs_tier_misses_total", label, float64(ts.Misses))
		writeHeader(w, "dip_cs_spilled_total", "counter", "Hot-tier evictions written to the cold arena.")
		writeSample(w, "dip_cs_spilled_total", label, float64(ts.Spilled))
		writeHeader(w, "dip_cs_spill_dropped_total", "counter", "Hot-tier evictions lost (queue or arena full, oversize, write error).")
		writeSample(w, "dip_cs_spill_dropped_total", label, float64(ts.SpillDropped))
		writeHeader(w, "dip_cs_admission_filtered_total", "counter", "Evictions rejected by insert-on-second-hit admission.")
		writeSample(w, "dip_cs_admission_filtered_total", label, float64(ts.AdmitFiltered))
		writeHeader(w, "dip_cs_cold_read_errors_total", "counter", "Cold reads that failed slot verification.")
		writeSample(w, "dip_cs_cold_read_errors_total", label, float64(ts.ReadErrors))
		writeHeader(w, "dip_cs_reinjected_total", "counter", "Cold reads completed and re-injected on the data path.")
		writeSample(w, "dip_cs_reinjected_total", label, float64(ts.Reinjected))
		writeHeader(w, "dip_cs_pending_rejected_total", "counter", "Cold-read requests refused by the pending-table cap.")
		writeSample(w, "dip_cs_pending_rejected_total", label, float64(ts.PendingRejected))
		writeHeader(w, "dip_cs_pending_cold_reads", "gauge", "Cold reads currently in flight.")
		writeSample(w, "dip_cs_pending_cold_reads", label, float64(ts.PendingReads))
		writeHeader(w, "dip_cs_cold_slots", "gauge", "Cold arena slot occupancy.")
		writeSample(w, "dip_cs_cold_slots", join(label, `state="used"`), float64(ts.ColdSlotsUsed))
		writeSample(w, "dip_cs_cold_slots", join(label, `state="free"`), float64(ts.ColdSlots-ts.ColdSlotsUsed))
		writeHeader(w, "dip_cs_cold_read_ns", "histogram", "Cold-tier read latency histogram (log2 buckets, nanoseconds).")
		var cum uint64
		for b := 0; b < cs.HistBuckets && b < telemetry.HistBuckets; b++ {
			if ts.ColdReadHist[b] == 0 {
				continue
			}
			cum += ts.ColdReadHist[b]
			le := fmt.Sprintf("%d", int64(telemetry.BucketUpper(b)))
			writeSample(w, "dip_cs_cold_read_ns_bucket", join(label, `le=`+quote(le)), float64(cum))
		}
		writeSample(w, "dip_cs_cold_read_ns_bucket", join(label, `le="+Inf"`), float64(ts.ColdReadCount))
		writeSample(w, "dip_cs_cold_read_ns_sum", label, float64(ts.ColdReadTotalNs))
		writeSample(w, "dip_cs_cold_read_ns_count", label, float64(ts.ColdReadCount))
	}
	if s.Trace != nil {
		writeHeader(w, "dip_trace_seen_total", "counter", "Packets that passed the trace sampling decision.")
		writeSample(w, "dip_trace_seen_total", label, float64(s.Trace.Seen()))
		writeHeader(w, "dip_trace_sampled_total", "counter", "Packets traced into the ring.")
		writeSample(w, "dip_trace_sampled_total", label, float64(s.Trace.Sampled()))
		writeHeader(w, "dip_trace_overwritten_total", "counter", "Trace records lost to ring wrap-around.")
		writeSample(w, "dip_trace_overwritten_total", label, float64(s.Trace.Overwritten()))
		writeHeader(w, "dip_trace_ring_records", "gauge", "Trace ring capacity in records.")
		writeSample(w, "dip_trace_ring_records", label, float64(s.Trace.RingSize()))
		writeHeader(w, "dip_trace_sample_every", "gauge", "Trace sampling divisor N (1-in-N).")
		writeSample(w, "dip_trace_sample_every", label, float64(s.Trace.SampleEvery()))
	}
	if s.Fetch != nil {
		fs := s.Fetch()
		writeHeader(w, "dip_fetch_pending", "gauge", "Fetcher segments awaiting data (in flight or windowed).")
		writeSample(w, "dip_fetch_pending", label, float64(fs.Pending))
		writeHeader(w, "dip_fetch_completed_total", "counter", "Fetcher segments satisfied by data.")
		writeSample(w, "dip_fetch_completed_total", label, float64(fs.Completed))
		writeHeader(w, "dip_fetch_retransmits_total", "counter", "Fetcher interest retransmissions.")
		writeSample(w, "dip_fetch_retransmits_total", label, float64(fs.Retransmits))
		writeHeader(w, "dip_fetch_deadletter_total", "counter", "Fetcher segments abandoned at the retransmission cap.")
		writeSample(w, "dip_fetch_deadletter_total", label, float64(fs.DeadLettered))
	}
	if s.FetchCC != nil {
		snap := s.FetchCC()
		al := join(label, `algo=`+quote(snap.Algo.String()))
		writeHeader(w, "dip_fetch_cwnd", "gauge", "Fetcher congestion window in segments.")
		writeSample(w, "dip_fetch_cwnd", al, snap.CwndF)
		writeHeader(w, "dip_fetch_srtt_ns", "gauge", "Fetcher smoothed RTT estimate in nanoseconds.")
		writeSample(w, "dip_fetch_srtt_ns", label, float64(snap.SRTT))
		writeHeader(w, "dip_fetch_rto_ns", "gauge", "Fetcher retransmission timeout in nanoseconds.")
		writeSample(w, "dip_fetch_rto_ns", label, float64(snap.RTO))
		writeHeader(w, "dip_fetch_cwnd_cuts_total", "counter", "Fetcher multiplicative window decreases.")
		writeSample(w, "dip_fetch_cwnd_cuts_total", label, float64(snap.Cuts))
	}
	if s.Routes != nil {
		rs := s.Routes()
		writeHeader(w, "dip_route_rib_entries", "gauge", "Routes learned from neighbors and resident in the FIBs.")
		writeSample(w, "dip_route_rib_entries", label, float64(rs.RIB))
		writeHeader(w, "dip_route_local_entries", "gauge", "Locally originated routes the speaker advertises.")
		writeSample(w, "dip_route_local_entries", label, float64(rs.Local))
		writeHeader(w, "dip_route_messages_total", "counter", "Route-exchange messages by type and direction.")
		for _, m := range []struct {
			typ, dir string
			n        int64
		}{
			{"advertise", "sent", rs.AdvertisesSent},
			{"advertise", "recv", rs.AdvertisesRecv},
			{"withdraw", "sent", rs.WithdrawsSent},
			{"withdraw", "recv", rs.WithdrawsRecv},
		} {
			writeSample(w, "dip_route_messages_total",
				join(label, `type=`+quote(m.typ), `dir=`+quote(m.dir)), float64(m.n))
		}
		writeHeader(w, "dip_route_changes_total", "counter", "FIB route changes applied by the speaker, by cause.")
		for _, c := range []struct {
			cause string
			n     int64
		}{
			{"installed", rs.RoutesInstalled},
			{"withdrawn", rs.RoutesWithdrawn},
			{"expired", rs.RoutesExpired},
		} {
			writeSample(w, "dip_route_changes_total", join(label, `cause=`+quote(c.cause)), float64(c.n))
		}
		writeHeader(w, "dip_route_malformed_total", "counter", "Route-exchange messages rejected by the codec.")
		writeSample(w, "dip_route_malformed_total", label, float64(rs.Malformed))
		writeHeader(w, "dip_route_stale_total", "counter", "Route-exchange messages discarded as out of sequence.")
		writeSample(w, "dip_route_stale_total", label, float64(rs.Stale))
		writeHeader(w, "dip_route_commits_total", "counter", "Batched FIB transactions the speaker published.")
		writeSample(w, "dip_route_commits_total", label, float64(rs.Commits))
		writeHeader(w, "dip_route_noop_batches_total", "counter", "Speaker transaction batches discarded as no-ops (nothing changed).")
		writeSample(w, "dip_route_noop_batches_total", label, float64(rs.NoopBatches))
	}
	if s.INT != nil {
		st := s.INT()
		writeHeader(w, "dip_int_postcards_total", "counter", "Telemetry postcards stripped at this delivering edge.")
		writeSample(w, "dip_int_postcards_total", label, float64(st.Postcards))
		writeHeader(w, "dip_int_overflows_total", "counter", "Postcards whose path outgrew the slot capacity.")
		writeSample(w, "dip_int_overflows_total", label, float64(st.Overflows))
		writeHeader(w, "dip_int_flows", "gauge", "Flows with tracked path digests.")
		writeSample(w, "dip_int_flows", label, float64(st.Flows))
		writeHeader(w, "dip_int_path_changes_total", "counter", "Per-flow path digest flips (reroutes observed in band).")
		writeSample(w, "dip_int_path_changes_total", label, float64(st.PathChanges))
		writeHeader(w, "dip_int_loops_total", "counter", "Postcards with a repeated hop ID (forwarding loop).")
		writeSample(w, "dip_int_loops_total", label, float64(st.Loops))
		writeHeader(w, "dip_int_microbursts_total", "counter", "Hop records at or above the microburst queue depth.")
		writeSample(w, "dip_int_microbursts_total", label, float64(st.Microbursts))
		writeHeader(w, "dip_int_expected_mismatch_total", "counter", "Recorded paths disagreeing with the FIB-derived prediction.")
		writeSample(w, "dip_int_expected_mismatch_total", label, float64(st.ExpectedMismatch))
		writeHeader(w, "dip_int_decode_errors_total", "counter", "Telemetry regions that failed to decode at the edge.")
		writeSample(w, "dip_int_decode_errors_total", label, float64(st.DecodeErrors))
		if len(st.Links) > 0 {
			writeHeader(w, "dip_int_link_latency_ns", "histogram", "Per-link transit latency from hop timestamp deltas (log2 buckets).")
			for _, l := range st.Links {
				ll := join(label, `from=`+quote(linkName(l.FromName, l.From)), `to=`+quote(linkName(l.ToName, l.To)))
				var cum int64
				for b := 0; b < telemetry.HistBuckets; b++ {
					if l.Hist[b] == 0 {
						continue
					}
					cum += l.Hist[b]
					le := fmt.Sprintf("%d", int64(telemetry.BucketUpper(b)))
					writeSample(w, "dip_int_link_latency_ns_bucket", join(ll, `le=`+quote(le)), float64(cum))
				}
				writeSample(w, "dip_int_link_latency_ns_bucket", join(ll, `le="+Inf"`), float64(l.Count))
				writeSample(w, "dip_int_link_latency_ns_sum", ll, float64(l.SumNs))
				writeSample(w, "dip_int_link_latency_ns_count", ll, float64(l.Count))
			}
		}
		if len(st.Hops) > 0 {
			writeHeader(w, "dip_int_hop_records_total", "counter", "Hop records folded per stamping hop.")
			for _, h := range st.Hops {
				hl := join(label, `hop=`+quote(linkName(h.Name, h.HopID)))
				writeSample(w, "dip_int_hop_records_total", hl, float64(h.Count))
			}
			writeHeader(w, "dip_int_hop_congested_total", "counter", "Hop records carrying the congestion flag.")
			for _, h := range st.Hops {
				hl := join(label, `hop=`+quote(linkName(h.Name, h.HopID)))
				writeSample(w, "dip_int_hop_congested_total", hl, float64(h.Congested))
			}
			writeHeader(w, "dip_int_hop_queue_depth_max", "gauge", "Deepest admission queue each hop stamped.")
			for _, h := range st.Hops {
				hl := join(label, `hop=`+quote(linkName(h.Name, h.HopID)))
				writeSample(w, "dip_int_hop_queue_depth_max", hl, float64(h.QueueMax))
			}
		}
	}
	if s.Journeys != nil {
		writeHeader(w, "dip_journey_spans_total", "counter", "Journey spans emitted by this process.")
		writeSample(w, "dip_journey_spans_total", label, float64(s.Journeys.Added()))
		writeHeader(w, "dip_journey_spans_dropped_total", "counter", "Journey spans lost to emitter ring wrap-around.")
		writeSample(w, "dip_journey_spans_dropped_total", label, float64(s.Journeys.Dropped()))
	}
	if s.JourneyStats != nil {
		st := s.JourneyStats()
		writeHeader(w, "dip_journey_stitched_spans_total", "counter", "Spans ingested by the journey collector.")
		writeSample(w, "dip_journey_stitched_spans_total", label, float64(st.Spans))
		writeHeader(w, "dip_journey_journeys_total", "counter", "Stitched journeys by completion state.")
		writeSample(w, "dip_journey_journeys_total", join(label, `state="complete"`), float64(st.Complete))
		writeSample(w, "dip_journey_journeys_total", join(label, `state="incomplete"`), float64(st.Incomplete))
		writeHeader(w, "dip_journey_frozen_total", "counter", "Journeys frozen into the anomaly flight recorder.")
		writeSample(w, "dip_journey_frozen_total", label, float64(st.Frozen))
		writeHeader(w, "dip_journey_duplicates_total", "counter", "Duplicate packet instances detected while stitching.")
		writeSample(w, "dip_journey_duplicates_total", label, float64(st.Duplicates))
		if len(st.Paths) > 0 {
			writeHeader(w, "dip_journey_path_latency_ns", "histogram", "End-to-end journey latency per path and protocol (log2 buckets).")
			for _, ps := range st.Paths {
				pl := join(label, `path=`+quote(ps.Path), `proto=`+quote(ps.Proto))
				var cum, sum int64
				for b := 0; b < telemetry.HistBuckets; b++ {
					if ps.TotalHist[b] == 0 {
						continue
					}
					cum += ps.TotalHist[b]
					sum += ps.TotalHist[b] * int64(telemetry.BucketUpper(b))
					le := fmt.Sprintf("%d", int64(telemetry.BucketUpper(b)))
					writeSample(w, "dip_journey_path_latency_ns_bucket", join(pl, `le=`+quote(le)), float64(cum))
				}
				writeSample(w, "dip_journey_path_latency_ns_bucket", join(pl, `le="+Inf"`), float64(ps.Count))
				writeSample(w, "dip_journey_path_latency_ns_sum", pl, float64(sum))
				writeSample(w, "dip_journey_path_latency_ns_count", pl, float64(ps.Count))
			}
			writeHeader(w, "dip_journey_component_ns_total", "counter", "Cumulative journey time per path by component (fn/queue/wire/pitwait/cpu).")
			for _, ps := range st.Paths {
				pl := join(label, `path=`+quote(ps.Path), `proto=`+quote(ps.Proto))
				for _, comp := range []struct {
					name string
					ns   int64
				}{
					{"fn", ps.FNNs}, {"queue", ps.QueueNs}, {"wire", ps.WireNs},
					{"pitwait", ps.PITWaitNs}, {"cpu", ps.CPUNs},
				} {
					writeSample(w, "dip_journey_component_ns_total", join(pl, `component=`+quote(comp.name)), float64(comp.ns))
				}
			}
		}
	}
}

// Handler returns the node's observability mux: /metrics, /trace, and the
// pprof family under /debug/pprof/.
func (s Source) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.WriteMetrics(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.Trace == nil {
			fmt.Fprintln(w, "# tracing disabled (run with -trace-every N)")
			return
		}
		s.Trace.Dump(w)
	})
	mux.HandleFunc("/journeys", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.Journeys == nil {
			fmt.Fprintln(w, "# journey tracing disabled (run with -journey-every N)")
			return
		}
		s.Journeys.Dump(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr (":0" picks a free port) and serves the observability
// mux on a background goroutine. It returns the bound address and a close
// function. Serving errors after close are swallowed; the caller owns the
// process lifetime.
func Serve(addr string, s Source) (bound net.Addr, closeFn func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: s.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), srv.Close, nil
}

// linkName prefers a hop's display name, falling back to its numeric ID.
func linkName(name string, id uint32) string {
	if name != "" {
		return name
	}
	return fmt.Sprintf("%d", id)
}

// labels renders the constant label set (node=...) or "".
func (s Source) labels() string {
	if s.Node == "" {
		return ""
	}
	return "node=" + quote(s.Node)
}

// quote escapes a label value per the Prometheus text format.
func quote(v string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

func join(labels ...string) string {
	parts := labels[:0:0]
	for _, l := range labels {
		if l != "" {
			parts = append(parts, l)
		}
	}
	return strings.Join(parts, ",")
}

func writeHeader(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func writeSample(w io.Writer, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %g\n", name, v)
		return
	}
	fmt.Fprintf(w, "%s{%s} %g\n", name, labels, v)
}

func sortedDropReasons(m map[core.DropReason]int64) []core.DropReason {
	out := make([]core.DropReason, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedEvents(m map[telemetry.Event]int64) []telemetry.Event {
	out := make([]telemetry.Event, 0, len(m))
	for e := range m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
