package bootstrap

import (
	"testing"
	"time"

	"dip/internal/fib"
)

func TestExchangeCodecRoundTrip(t *testing.T) {
	routes := []RouteEntry{
		Entry32(0x0a000000, 8, 0),
		Entry128([]byte{0x20, 0x01, 0x0d, 0xb8}, 32, 3),
		EntryName(0xdeadbeef, 32, 7),
	}
	cat := Catalog{{Key: 1}, {Key: 7, Policy: 1}}
	adv := EncodeAdvertise("r1", 42, routes, cat)
	ex, err := DecodeExchange(adv)
	if err != nil {
		t.Fatalf("decode advertise: %v", err)
	}
	if ex.Type != TypeAdvertise || ex.Origin != "r1" || ex.Seq != 42 {
		t.Fatalf("envelope = %+v", ex)
	}
	if len(ex.Routes) != len(routes) {
		t.Fatalf("routes = %d, want %d", len(ex.Routes), len(routes))
	}
	for i := range routes {
		if ex.Routes[i] != routes[i] {
			t.Errorf("route %d: %+v != %+v", i, ex.Routes[i], routes[i])
		}
	}
	if len(ex.Catalog) != 2 || ex.Catalog[0] != cat[0] || ex.Catalog[1] != cat[1] {
		t.Errorf("catalog = %+v, want %+v", ex.Catalog, cat)
	}

	wd := EncodeWithdraw("r2", 7, routes[:1])
	ex, err = DecodeExchange(wd)
	if err != nil {
		t.Fatalf("decode withdraw: %v", err)
	}
	if ex.Type != TypeWithdraw || ex.Origin != "r2" || len(ex.Routes) != 1 || ex.Catalog != nil {
		t.Fatalf("withdraw = %+v", ex)
	}
}

func TestDecodeExchangeRejectsHostileInput(t *testing.T) {
	valid := EncodeAdvertise("r", 1, []RouteEntry{Entry32(0x0a000000, 8, 0)}, nil)
	cases := []struct {
		name string
		msg  []byte
	}{
		{"empty", nil},
		{"unknown type", []byte{9, 0, 0, 0, 1, 0, 0, 0}},
		{"truncated envelope", valid[:5]},
		{"truncated route", valid[:len(valid)-4]},
		{"origin past end", []byte{TypeAdvertise, 0, 0, 0, 1, 200, 'x'}},
		{"bad kind", mutate(valid, 8, 0x77)},
		{"plen 33 on kind32", mutate(valid, 9, 33)},
		{"count overstates routes", mutate2(valid, 6, 7, 0xFF, 0xFF)},
		{"withdraw trailing bytes", append(EncodeWithdraw("r", 1, nil), 0xAA)},
		{"advertise missing catalog", EncodeWithdraw("r", 1, nil)[:0:0]},
	}
	for _, c := range cases {
		if c.name == "advertise missing catalog" {
			// An advertise envelope with routes but no catalog section.
			c.msg = encodeEnvelope(TypeAdvertise, "r", 1, nil)
		}
		if _, err := DecodeExchange(c.msg); err == nil {
			t.Errorf("%s: decoded without error", c.name)
		}
	}
	// plen 128 on Kind128 is legal, 129 is not.
	ok := EncodeAdvertise("r", 1, []RouteEntry{Entry128(make([]byte, 16), 128, 0)}, nil)
	if _, err := DecodeExchange(ok); err != nil {
		t.Errorf("plen 128 rejected: %v", err)
	}
	if _, err := DecodeExchange(mutate(ok, 9, 129)); err == nil {
		t.Error("plen 129 on kind128 decoded without error")
	}
}

func mutate(b []byte, off int, v byte) []byte {
	out := append([]byte(nil), b...)
	out[off] = v
	return out
}

func mutate2(b []byte, off1, off2 int, v1, v2 byte) []byte {
	out := append([]byte(nil), b...)
	out[off1], out[off2] = v1, v2
	return out
}

// wireUp builds a full mesh-or-line of speakers joined by synchronous
// in-process links: port i on a speaker delivers straight into the peer's
// Handle. Returns the per-speaker FIB32 tables for assertions.
type testNet struct {
	speakers []*Speaker
	fibs     []*fib.Table
	now      time.Duration
	cut      map[[2]int]bool
}

func (n *testNet) clock() time.Duration { return n.now }

// link joins speakers a and b; the port numbers are chosen by the caller.
// A link silenced via silence() eats messages in both directions — the
// "router died without carrier loss" failure soft-state expiry exists for.
func (n *testNet) link(a, portA, b, portB int) {
	sa, sb := n.speakers[a], n.speakers[b]
	key := [2]int{a, b}
	sa.AddNeighbor(portA, func(msg []byte) {
		if !n.cut[key] {
			sb.Handle(msg, portB)
		}
	})
	sb.AddNeighbor(portB, func(msg []byte) {
		if !n.cut[key] {
			sa.Handle(msg, portA)
		}
	})
}

func (n *testNet) silence(a, b int) { n.cut[[2]int{a, b}] = true }

func newTestNet(t *testing.T, nodes int, hold time.Duration) *testNet {
	t.Helper()
	n := &testNet{cut: map[[2]int]bool{}}
	for i := 0; i < nodes; i++ {
		tb := fib.New()
		n.fibs = append(n.fibs, tb)
		n.speakers = append(n.speakers, NewSpeaker(SpeakerConfig{
			Name:    string(rune('A' + i)),
			FIB32:   tb,
			Now:     n.clock,
			HoldFor: hold,
		}))
	}
	return n
}

func lookup32(tb *fib.Table, key uint32) (fib.NextHop, bool) {
	return tb.LookupUint32(key)
}

func TestSpeakerConvergesOnLine(t *testing.T) {
	// A —0/0— B —1/0— C: A originates 10.0.0.0/8; after refresh everyone
	// reaches it with metrics increasing along the line.
	n := newTestNet(t, 3, 0)
	n.link(0, 0, 1, 0)
	n.link(1, 1, 2, 0)
	n.speakers[0].Originate(Entry32(0x0a000000, 8, 0), fib.Local)
	n.speakers[0].Refresh()

	if nh, ok := lookup32(n.fibs[1], 0x0a000001); !ok || nh.Port != 0 {
		t.Fatalf("B route = %+v %v, want port 0", nh, ok)
	}
	if nh, ok := lookup32(n.fibs[2], 0x0a000001); !ok || nh.Port != 0 {
		t.Fatalf("C route = %+v %v, want port 0 (toward B)", nh, ok)
	}
	// A never learns its own route back (split horizon + local suppression).
	if _, ok := lookup32(n.fibs[0], 0x0a000001); ok {
		t.Fatal("A installed its own originated route as learned")
	}
	st := n.speakers[2].Stats()
	if st.RIB != 1 || st.RoutesInstalled != 1 {
		t.Errorf("C stats = %+v, want 1 learned route", st)
	}
}

func TestSpeakerIdleRefreshPublishesNothing(t *testing.T) {
	// After convergence, further refresh cycles must not publish new FIB
	// snapshots (the no-op Txn contract): pure soft-state confirmation.
	n := newTestNet(t, 2, 0)
	n.link(0, 0, 1, 0)
	n.speakers[0].Originate(Entry32(0x0a000000, 8, 0), fib.Local)
	n.speakers[0].Refresh()
	before := n.speakers[1].Stats()
	for i := 0; i < 5; i++ {
		n.now += time.Second
		n.speakers[0].Refresh()
	}
	after := n.speakers[1].Stats()
	if after.AdvertisesRecv != before.AdvertisesRecv+5 {
		t.Fatalf("B saw %d refreshes, want 5", after.AdvertisesRecv-before.AdvertisesRecv)
	}
	if after.Commits != before.Commits {
		t.Errorf("idle refreshes published %d snapshots", after.Commits-before.Commits)
	}
}

func TestSpeakerCatalogGossip(t *testing.T) {
	n := newTestNet(t, 2, 0)
	n.speakers[0].cfg.Catalog = Catalog{{Key: 1}, {Key: 4, Policy: 1}}
	n.link(0, 0, 1, 0)
	n.speakers[0].Originate(Entry32(0x0a000000, 8, 0), fib.Local)
	n.speakers[0].Refresh()
	cat, ok := n.speakers[1].NeighborCatalog(0)
	if !ok || len(cat) != 2 || !cat.Supports(1, 4) {
		t.Fatalf("neighbor catalog = %+v %v", cat, ok)
	}
}

func TestSpeakerStaleAndMalformed(t *testing.T) {
	n := newTestNet(t, 2, 0)
	n.link(0, 0, 1, 0)
	b := n.speakers[1]
	if err := b.Handle([]byte{0xFF}, 0); err == nil {
		t.Fatal("malformed message accepted")
	}
	adv := EncodeAdvertise("x", 5, []RouteEntry{Entry32(0x0a000000, 8, 0)}, nil)
	if err := b.Handle(adv, 0); err != nil {
		t.Fatalf("first advertise: %v", err)
	}
	// Replay of the same seq is dropped, as is an older one.
	b.Handle(adv, 0)
	b.Handle(EncodeAdvertise("x", 4, []RouteEntry{Entry32(0x14000000, 8, 0)}, nil), 0)
	// Messages on a port with no adjacency never install routes.
	b.Handle(EncodeAdvertise("x", 9, []RouteEntry{Entry32(0x1e000000, 8, 0)}, nil), 7)
	st := b.Stats()
	if st.Malformed != 1 || st.Stale != 3 || st.RIB != 1 {
		t.Errorf("stats = %+v, want 1 malformed, 3 stale, 1 route", st)
	}
}

func TestSpeakerMetricCeiling(t *testing.T) {
	n := newTestNet(t, 2, 0)
	n.link(0, 0, 1, 0)
	b := n.speakers[1]
	// Metric 16 advertisement → metric 17 here → beyond the horizon.
	b.Handle(EncodeAdvertise("x", 1, []RouteEntry{Entry32(0x0a000000, 8, 16)}, nil), 0)
	if st := b.Stats(); st.RIB != 0 {
		t.Errorf("unreachable route installed: %+v", st)
	}
}

// TestWithdrawOnLinkDown is the table-driven fault matrix for the
// reconvergence machinery: each case kills something and states where
// traffic to the victim prefix must flow afterwards.
func TestWithdrawOnLinkDown(t *testing.T) {
	// Diamond: A(0)—B, A(1)—C, B(1)—D(0), C(1)—D(1); D originates P.
	// A prefers whichever path it learned first; killing it must swing A
	// to the survivor, and killing both must leave A with no route.
	const p = uint32(0x0a000000)
	build := func(t *testing.T) *testNet {
		n := newTestNet(t, 4, 0)
		n.link(0, 0, 1, 0) // A:0 ↔ B:0
		n.link(0, 1, 2, 0) // A:1 ↔ C:0
		n.link(1, 1, 3, 0) // B:1 ↔ D:0
		n.link(2, 1, 3, 1) // C:1 ↔ D:1
		n.speakers[3].Originate(Entry32(p, 8, 0), fib.Local)
		n.speakers[3].Refresh()
		return n
	}
	cases := []struct {
		name string
		kill func(n *testNet)
		// wantPort is A's expected egress after reconvergence; -1 = no route.
		wantPort int
	}{
		{
			name: "kill B-D: A swings to C",
			kill: func(n *testNet) {
				n.speakers[1].PortDown(1)
				n.speakers[3].PortDown(0)
			},
			wantPort: 1,
		},
		{
			name: "kill C-D: A swings to B",
			kill: func(n *testNet) {
				n.speakers[2].PortDown(1)
				n.speakers[3].PortDown(1)
			},
			wantPort: 0,
		},
		{
			name: "kill both: A loses the route entirely",
			kill: func(n *testNet) {
				n.speakers[1].PortDown(1)
				n.speakers[3].PortDown(0)
				n.speakers[2].PortDown(1)
				n.speakers[3].PortDown(1)
			},
			wantPort: -1,
		},
		{
			name: "kill A-B access link: A swings to C",
			kill: func(n *testNet) {
				n.speakers[0].PortDown(0)
				n.speakers[1].PortDown(0)
			},
			wantPort: 1,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			n := build(t)
			if _, ok := lookup32(n.fibs[0], p+1); !ok {
				t.Fatal("A never converged before the fault")
			}
			c.kill(n)
			nh, ok := lookup32(n.fibs[0], p+1)
			if c.wantPort < 0 {
				if ok {
					t.Fatalf("A still routes to %+v after total partition", nh)
				}
				return
			}
			if !ok || nh.Port != c.wantPort {
				t.Fatalf("A route after fault = %+v %v, want port %d", nh, ok, c.wantPort)
			}
		})
	}
}

func TestSpeakerPortUpRestoresRoutes(t *testing.T) {
	n := newTestNet(t, 2, 0)
	n.link(0, 0, 1, 0)
	n.speakers[0].Originate(Entry32(0x0a000000, 8, 0), fib.NextHop{Port: 5})
	n.speakers[0].Refresh()
	if _, ok := lookup32(n.fibs[1], 0x0a000001); !ok {
		t.Fatal("route never propagated")
	}
	// The origin's egress port dies: it must withdraw its own route.
	n.speakers[0].PortDown(5)
	if _, ok := lookup32(n.fibs[1], 0x0a000001); ok {
		t.Fatal("route survived the origin's egress dying")
	}
	// Recovery re-originates and floods.
	n.speakers[0].PortUp(5)
	if _, ok := lookup32(n.fibs[1], 0x0a000001); !ok {
		t.Fatal("route not restored after egress recovery")
	}
}

func TestSpeakerSoftStateExpiry(t *testing.T) {
	// B learns a route, then A goes silent (no explicit withdraw — the
	// failure mode triggered updates cannot cover). The hold timer must
	// reap it, and the reaping must flood withdraws downstream to C.
	n := newTestNet(t, 3, 2*time.Second)
	n.link(0, 0, 1, 0)
	n.link(1, 1, 2, 0)
	n.speakers[0].Originate(Entry32(0x0a000000, 8, 0), fib.Local)
	n.speakers[0].Refresh()
	if _, ok := lookup32(n.fibs[2], 0x0a000001); !ok {
		t.Fatal("C never converged")
	}
	// A dies silently: no carrier loss, no withdraw, the link just eats
	// everything (including B's own withdraw probe). The hold timer is the
	// only thing left that can reap the route.
	n.silence(0, 1)
	n.now += 3 * time.Second
	n.speakers[1].Refresh()
	if _, ok := lookup32(n.fibs[1], 0x0a000001); ok {
		t.Fatal("B kept the stale route past its hold time")
	}
	if _, ok := lookup32(n.fibs[2], 0x0a000001); ok {
		t.Fatal("expiry withdraw never reached C")
	}
	if st := n.speakers[1].Stats(); st.RoutesExpired != 1 {
		t.Errorf("B stats = %+v, want 1 expired", st)
	}
}

func TestSpeakerOriginateFromFIBs(t *testing.T) {
	t32, t128, tname := fib.New(), fib.New(), fib.New()
	t32.AddUint32(0x0a000000, 8, fib.NextHop{Port: 1})
	t128.Add(make([]byte, 16), 32, fib.NextHop{Port: 2})
	tname.AddUint32(0xdeadbeef, 32, fib.Local)
	s := NewSpeaker(SpeakerConfig{
		Name: "r", FIB32: t32, FIB128: t128, NameFIB: tname,
		Now: func() time.Duration { return 0 },
	})
	if n := s.OriginateFromFIBs(); n != 3 {
		t.Fatalf("originated %d, want 3", n)
	}
	if st := s.Stats(); st.Local != 3 {
		t.Fatalf("local = %d, want 3", st.Local)
	}
}

func TestSpeakerChunksLargeAdvertisements(t *testing.T) {
	n := newTestNet(t, 2, 0)
	n.speakers[0].cfg.MaxRoutesPerMsg = 10
	n.link(0, 0, 1, 0)
	for i := 0; i < 35; i++ {
		n.speakers[0].Originate(Entry32(uint32(i)<<16, 16, 0), fib.Local)
	}
	n.speakers[0].Refresh()
	if st := n.speakers[1].Stats(); st.RIB != 35 {
		t.Fatalf("B learned %d routes, want 35", st.RIB)
	}
	if st := n.speakers[0].Stats(); st.AdvertisesSent != 4 {
		t.Errorf("sent %d advertisements, want 4 chunks of ≤10", st.AdvertisesSent)
	}
}
