// Package bootstrap implements how hosts and ASes learn which field
// operations are available (paper §2.3): a DHCP-like discovery exchange
// between a host and its access router, and a BGP-community-like gossip
// that propagates each AS's supported FN set so sources can tell whether a
// path supports the operations a packet needs.
package bootstrap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"dip/internal/core"
)

// Message types of the discovery protocol.
const (
	// TypeDiscover is the host's "which FNs do you support" probe.
	TypeDiscover = 1
	// TypeOffer is the router's catalog reply.
	TypeOffer = 2
)

// ErrBadMessage reports a malformed bootstrap message.
var ErrBadMessage = errors.New("bootstrap: malformed message")

// CatalogEntry describes one supported operation.
type CatalogEntry struct {
	Key core.Key
	// Policy is what the router does when it receives the key unsupported
	// elsewhere — advertised so hosts can predict path behaviour.
	Policy core.UnknownPolicy
}

// Catalog is an FN availability set.
type Catalog []CatalogEntry

// CatalogOf reads a registry's advertisement.
func CatalogOf(reg *core.Registry) Catalog {
	keys := reg.Keys()
	out := make(Catalog, len(keys))
	for i, k := range keys {
		out[i] = CatalogEntry{Key: k, Policy: reg.Policy(k)}
	}
	return out
}

// Supports reports whether every key in need is present.
func (c Catalog) Supports(need ...core.Key) bool {
	for _, k := range need {
		found := false
		for _, e := range c {
			if e.Key == k {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Keys returns the catalog's keys in ascending order.
func (c Catalog) Keys() []core.Key {
	out := make([]core.Key, len(c))
	for i, e := range c {
		out[i] = e.Key
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EncodeDiscover builds a discovery probe.
func EncodeDiscover() []byte { return []byte{TypeDiscover} }

// EncodeOffer builds a catalog reply: [type][count u16][key u16, policy u8]*.
func EncodeOffer(c Catalog) []byte {
	out := make([]byte, 0, 3+3*len(c))
	out = append(out, TypeOffer)
	out = binary.BigEndian.AppendUint16(out, uint16(len(c)))
	for _, e := range c {
		out = binary.BigEndian.AppendUint16(out, uint16(e.Key))
		out = append(out, byte(e.Policy))
	}
	return out
}

// Decode parses a bootstrap message, returning its type and, for offers,
// the catalog.
func Decode(b []byte) (msgType byte, c Catalog, err error) {
	if len(b) < 1 {
		return 0, nil, ErrBadMessage
	}
	switch b[0] {
	case TypeDiscover:
		return TypeDiscover, nil, nil
	case TypeOffer:
		if len(b) < 3 {
			return 0, nil, ErrBadMessage
		}
		n := int(binary.BigEndian.Uint16(b[1:3]))
		if len(b) < 3+3*n {
			return 0, nil, fmt.Errorf("%w: %d entries, %d bytes", ErrBadMessage, n, len(b))
		}
		c = make(Catalog, n)
		for i := 0; i < n; i++ {
			off := 3 + 3*i
			c[i] = CatalogEntry{
				Key:    core.Key(binary.BigEndian.Uint16(b[off:])),
				Policy: core.UnknownPolicy(b[off+2]),
			}
		}
		return TypeOffer, c, nil
	default:
		return 0, nil, fmt.Errorf("%w: type %d", ErrBadMessage, b[0])
	}
}

// Responder answers discovery probes from a registry: the access router's
// side of the DHCP-like exchange.
type Responder struct {
	reg *core.Registry
}

// NewResponder builds a responder over the router's registry.
func NewResponder(reg *core.Registry) *Responder { return &Responder{reg: reg} }

// Handle answers a probe; nil for anything that is not a discover.
func (r *Responder) Handle(msg []byte) []byte {
	t, _, err := Decode(msg)
	if err != nil || t != TypeDiscover {
		return nil
	}
	return EncodeOffer(CatalogOf(r.reg))
}

// ASGraph is the AS-level FN propagation map (the BGP-community mechanism
// the paper defers to future work): which ASes peer and what each supports.
type ASGraph struct {
	catalogs map[string]Catalog
	peers    map[string][]string
}

// NewASGraph returns an empty graph.
func NewASGraph() *ASGraph {
	return &ASGraph{catalogs: map[string]Catalog{}, peers: map[string][]string{}}
}

// AddAS registers an AS with its supported catalog.
func (g *ASGraph) AddAS(as string, c Catalog) {
	g.catalogs[as] = c
}

// Peer links two ASes bidirectionally.
func (g *ASGraph) Peer(a, b string) {
	g.peers[a] = append(g.peers[a], b)
	g.peers[b] = append(g.peers[b], a)
}

// Catalog returns an AS's advertised FN set.
func (g *ASGraph) Catalog(as string) (Catalog, bool) {
	c, ok := g.catalogs[as]
	return c, ok
}

// Path returns some shortest AS path from a to b (BFS), or nil.
func (g *ASGraph) Path(a, b string) []string {
	if _, ok := g.catalogs[a]; !ok {
		return nil
	}
	if a == b {
		return []string{a}
	}
	prev := map[string]string{a: a}
	queue := []string{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.peers[cur] {
			if _, seen := prev[nb]; seen {
				continue
			}
			prev[nb] = cur
			if nb == b {
				var path []string
				for n := b; n != a; n = prev[n] {
					path = append([]string{n}, path...)
				}
				return append([]string{a}, path...)
			}
			queue = append(queue, nb)
		}
	}
	return nil
}

// PathSupports reports whether every AS on some shortest path from a to b
// supports all of the needed keys, returning the path it checked. This is
// what a source consults before composing FNs that require on-path
// participation (e.g. OPT's authentication chain).
func (g *ASGraph) PathSupports(a, b string, need ...core.Key) (path []string, ok bool) {
	path = g.Path(a, b)
	if path == nil {
		return nil, false
	}
	for _, as := range path {
		if !g.catalogs[as].Supports(need...) {
			return path, false
		}
	}
	return path, true
}
