package bootstrap

import (
	"bytes"
	"testing"
	"time"

	"dip/internal/fib"
)

// FuzzDecode: arbitrary bootstrap messages must never panic, and accepted
// offers must re-encode to an equivalent catalog.
func FuzzDecode(f *testing.F) {
	f.Add(EncodeDiscover())
	f.Add(EncodeOffer(Catalog{{Key: 4}, {Key: 7, Policy: 1}}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, c, err := Decode(data)
		if err != nil {
			return
		}
		if typ != TypeOffer {
			return
		}
		re := EncodeOffer(c)
		typ2, c2, err := Decode(re)
		if err != nil || typ2 != TypeOffer || len(c2) != len(c) {
			t.Fatalf("round trip: %v", err)
		}
		for i := range c {
			if c[i] != c2[i] {
				t.Fatalf("entry %d differs", i)
			}
		}
	})
}

// FuzzRouteExchange: arbitrary route-exchange bytes must never panic the
// codec or the speaker, accepted messages must survive an exact re-encode
// round trip, and every decoded entry must satisfy the documented bounds —
// truncated withdraws, hostile counts/lengths, and duplicate prefixes
// included.
func FuzzRouteExchange(f *testing.F) {
	f.Add(EncodeAdvertise("r1", 1, []RouteEntry{
		Entry32(0x0a000000, 8, 0),
		Entry128(bytes.Repeat([]byte{0x20}, 16), 128, 3),
		EntryName(0xdeadbeef, 32, 7),
	}, Catalog{{Key: 1}, {Key: 4, Policy: 1}}))
	f.Add(EncodeWithdraw("r2", 9, []RouteEntry{
		Entry32(0x0a000000, 8, 16),
		Entry32(0x0a000000, 8, 16), // duplicate prefix
	}))
	f.Add(EncodeWithdraw("", 0, nil))
	f.Add([]byte{TypeAdvertise, 0, 0, 0, 1, 0, 0xFF, 0xFF}) // hostile count
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ex, err := DecodeExchange(data)
		if err != nil {
			if ex != nil {
				t.Fatal("error with non-nil message")
			}
			return
		}
		for i, r := range ex.Routes {
			if r.Kind != Kind32 && r.Kind != Kind128 && r.Kind != KindName {
				t.Fatalf("route %d: invalid kind %d accepted", i, r.Kind)
			}
			if r.Plen > r.Kind.maxPlen() {
				t.Fatalf("route %d: plen %d beyond %v bound", i, r.Plen, r.Kind)
			}
			for _, b := range r.Prefix[r.Kind.prefixBytes():] {
				if b != 0 {
					t.Fatalf("route %d: prefix bytes beyond the wire length set", i)
				}
			}
		}
		var re []byte
		if ex.Type == TypeAdvertise {
			re = EncodeAdvertise(ex.Origin, ex.Seq, ex.Routes, ex.Catalog)
		} else {
			re = EncodeWithdraw(ex.Origin, ex.Seq, ex.Routes)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode differs:\n  in  %x\n  out %x", data, re)
		}
		// The speaker must also digest whatever decoded, without panicking:
		// via an adjacency and via an unknown port.
		tb := fib.New()
		s := NewSpeaker(SpeakerConfig{Name: "f", FIB32: tb, Now: func() time.Duration { return 0 }})
		s.AddNeighbor(0, func([]byte) {})
		s.Handle(data, 0)
		s.Handle(data, 3)
	})
}
