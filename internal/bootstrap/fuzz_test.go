package bootstrap

import "testing"

// FuzzDecode: arbitrary bootstrap messages must never panic, and accepted
// offers must re-encode to an equivalent catalog.
func FuzzDecode(f *testing.F) {
	f.Add(EncodeDiscover())
	f.Add(EncodeOffer(Catalog{{Key: 4}, {Key: 7, Policy: 1}}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, c, err := Decode(data)
		if err != nil {
			return
		}
		if typ != TypeOffer {
			return
		}
		re := EncodeOffer(c)
		typ2, c2, err := Decode(re)
		if err != nil || typ2 != TypeOffer || len(c2) != len(c) {
			t.Fatalf("round trip: %v", err)
		}
		for i := range c {
			if c[i] != c2[i] {
				t.Fatalf("entry %d differs", i)
			}
		}
	})
}
