// In-fabric route exchange: the distributed control plane that makes DIP
// topologies self-managing instead of statically configured. Routers run a
// Speaker each; speakers advertise reachability (prefix sets for all three
// FIBs, plus the FN catalog of §2.3) to their neighbors over the DIP fabric
// itself — advertisements ride ordinary DIP packets carrying an F_ctl FN,
// which the ingress guard classifies as control class so convergence
// survives bulk overload.
//
// The protocol is a small distance vector with the classic stabilizers:
// split horizon (a route is never advertised back out the port it was
// learned on), a metric ceiling, triggered updates (changes flood
// immediately instead of waiting for the next refresh), explicit withdraws
// flooded on link-down (fault-driven reconvergence), withdraw responses (a
// neighbor that still reaches a withdrawn prefix answers with its
// alternative immediately, which is what bounds blackhole duration), and
// periodic refresh with soft-state expiry as the fallback when faults eat
// the withdraw itself.
//
// Every message applies to the FIBs through one batched Txn per table —
// one snapshot publish per message, not per route — and a refresh cycle
// that changes nothing publishes nothing (the fib no-op-commit contract),
// so idle control traffic never invalidates dataplane reader caches.
package bootstrap

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"dip/internal/core"
	"dip/internal/fib"
)

// Route-exchange message types, continuing the discovery protocol's space.
const (
	// TypeAdvertise carries reachable prefixes and the sender's FN catalog.
	TypeAdvertise = 3
	// TypeWithdraw revokes previously advertised prefixes.
	TypeWithdraw = 4
)

// RouteKind says which FIB a route entry belongs to.
type RouteKind uint8

// Route kinds.
const (
	// Kind32 is a 32-bit address prefix (FIB32 / F_32_match).
	Kind32 RouteKind = 1
	// Kind128 is a 128-bit address prefix (FIB128 / F_128_match).
	Kind128 RouteKind = 2
	// KindName is a 32-bit content-name prefix (NameFIB / F_FIB).
	KindName RouteKind = 3
)

// String names the kind.
func (k RouteKind) String() string {
	switch k {
	case Kind32:
		return "route32"
	case Kind128:
		return "route128"
	case KindName:
		return "name"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

func (k RouteKind) prefixBytes() int {
	if k == Kind128 {
		return 16
	}
	return 4
}

func (k RouteKind) maxPlen() uint8 {
	if k == Kind128 {
		return 128
	}
	return 32
}

// RouteEntry is one advertised (or withdrawn) prefix. Prefix holds the
// first prefixBytes() of the address left-aligned; Metric is the
// advertiser's distance to the prefix (hops; 0 = originated).
type RouteEntry struct {
	Kind   RouteKind
	Plen   uint8
	Metric uint8
	Prefix [16]byte
}

// Entry32 builds a Kind32 entry from a 32-bit prefix value.
func Entry32(key uint32, plen, metric int) RouteEntry {
	e := RouteEntry{Kind: Kind32, Plen: uint8(plen), Metric: uint8(metric)}
	binary.BigEndian.PutUint32(e.Prefix[:4], key)
	return e
}

// EntryName builds a KindName entry from a 32-bit content-name prefix.
func EntryName(key uint32, plen, metric int) RouteEntry {
	e := Entry32(key, plen, metric)
	e.Kind = KindName
	return e
}

// Entry128 builds a Kind128 entry from up to 16 prefix bytes.
func Entry128(prefix []byte, plen, metric int) RouteEntry {
	e := RouteEntry{Kind: Kind128, Plen: uint8(plen), Metric: uint8(metric)}
	copy(e.Prefix[:], prefix)
	return e
}

// key is a RouteEntry identity (metric excluded): what the RIB indexes on.
type routeKey struct {
	kind   RouteKind
	plen   uint8
	prefix [16]byte
}

func keyOf(e RouteEntry) routeKey {
	return routeKey{kind: e.Kind, plen: e.Plen, prefix: e.Prefix}
}

func (k routeKey) entry(metric int) RouteEntry {
	return RouteEntry{Kind: k.kind, Plen: k.plen, Metric: uint8(metric), Prefix: k.prefix}
}

// Exchange is a decoded route-exchange message.
type Exchange struct {
	Type    byte // TypeAdvertise or TypeWithdraw
	Origin  string
	Seq     uint32
	Routes  []RouteEntry
	Catalog Catalog // advertisements only
}

// EncodeAdvertise builds an advertisement:
//
//	[type][seq u32][olen u8][origin][nroutes u16]
//	  [kind u8, plen u8, metric u8, prefix (4|16)]*
//	[ncat u16][key u16, policy u8]*
func EncodeAdvertise(origin string, seq uint32, routes []RouteEntry, cat Catalog) []byte {
	out := encodeEnvelope(TypeAdvertise, origin, seq, routes)
	out = binary.BigEndian.AppendUint16(out, uint16(len(cat)))
	for _, e := range cat {
		out = binary.BigEndian.AppendUint16(out, uint16(e.Key))
		out = append(out, byte(e.Policy))
	}
	return out
}

// EncodeWithdraw builds a withdraw (same envelope, no catalog).
func EncodeWithdraw(origin string, seq uint32, routes []RouteEntry) []byte {
	return encodeEnvelope(TypeWithdraw, origin, seq, routes)
}

func encodeEnvelope(typ byte, origin string, seq uint32, routes []RouteEntry) []byte {
	if len(origin) > 255 {
		origin = origin[:255]
	}
	out := make([]byte, 0, 8+len(origin)+len(routes)*19)
	out = append(out, typ)
	out = binary.BigEndian.AppendUint32(out, seq)
	out = append(out, byte(len(origin)))
	out = append(out, origin...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(routes)))
	for _, r := range routes {
		out = append(out, byte(r.Kind), r.Plen, r.Metric)
		out = append(out, r.Prefix[:r.Kind.prefixBytes()]...)
	}
	return out
}

// DecodeExchange parses an advertisement or withdraw. Unlike Decode (the
// discovery side), it validates every entry: kinds must be known, prefix
// lengths within the kind's bounds, and the byte counts exact — a hostile
// or truncated message errors instead of installing garbage routes.
func DecodeExchange(b []byte) (*Exchange, error) {
	if len(b) < 8 {
		return nil, ErrBadMessage
	}
	ex := &Exchange{Type: b[0]}
	if ex.Type != TypeAdvertise && ex.Type != TypeWithdraw {
		return nil, fmt.Errorf("%w: type %d", ErrBadMessage, b[0])
	}
	ex.Seq = binary.BigEndian.Uint32(b[1:5])
	olen := int(b[5])
	b = b[6:]
	if len(b) < olen+2 {
		return nil, fmt.Errorf("%w: truncated origin", ErrBadMessage)
	}
	ex.Origin = string(b[:olen])
	n := int(binary.BigEndian.Uint16(b[olen : olen+2]))
	b = b[olen+2:]
	// Cap the allocation by what the remaining bytes could possibly hold
	// (7 bytes minimum per entry) so a hostile count cannot balloon memory.
	capHint := n
	if m := len(b) / 7; capHint > m {
		capHint = m
	}
	ex.Routes = make([]RouteEntry, 0, capHint)
	for i := 0; i < n; i++ {
		if len(b) < 3 {
			return nil, fmt.Errorf("%w: truncated route %d/%d", ErrBadMessage, i, n)
		}
		e := RouteEntry{Kind: RouteKind(b[0]), Plen: b[1], Metric: b[2]}
		if e.Kind != Kind32 && e.Kind != Kind128 && e.Kind != KindName {
			return nil, fmt.Errorf("%w: route kind %d", ErrBadMessage, b[0])
		}
		if e.Plen > e.Kind.maxPlen() {
			return nil, fmt.Errorf("%w: %v plen %d", ErrBadMessage, e.Kind, e.Plen)
		}
		pb := e.Kind.prefixBytes()
		if len(b) < 3+pb {
			return nil, fmt.Errorf("%w: truncated prefix", ErrBadMessage)
		}
		copy(e.Prefix[:pb], b[3:3+pb])
		b = b[3+pb:]
		ex.Routes = append(ex.Routes, e)
	}
	if ex.Type == TypeWithdraw {
		if len(b) != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(b))
		}
		return ex, nil
	}
	if len(b) < 2 {
		return nil, fmt.Errorf("%w: missing catalog", ErrBadMessage)
	}
	nc := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) != 3*nc {
		return nil, fmt.Errorf("%w: catalog %d entries, %d bytes", ErrBadMessage, nc, len(b))
	}
	ex.Catalog = make(Catalog, nc)
	for i := 0; i < nc; i++ {
		ex.Catalog[i] = CatalogEntry{
			Key:    core.Key(binary.BigEndian.Uint16(b[3*i:])),
			Policy: core.UnknownPolicy(b[3*i+2]),
		}
	}
	return ex, nil
}

// SpeakerConfig wires a Speaker to its router's state.
type SpeakerConfig struct {
	// Name labels the speaker in messages and diagnostics.
	Name string
	// FIB32/FIB128/NameFIB are the tables learned routes install into.
	// Nil tables reject routes of that kind.
	FIB32, FIB128, NameFIB *fib.Table
	// Catalog is the FN set advertised alongside routes (§2.3 gossip).
	Catalog Catalog
	// Now is the clock (virtual under netsim, wall elsewhere). Required.
	Now func() time.Duration
	// HoldFor expires learned routes not refreshed within this window
	// (checked at each Refresh). Zero disables soft-state expiry.
	HoldFor time.Duration
	// MaxMetric is the reachability horizon; advertisements that would
	// exceed it are ignored. Zero means the default of 16.
	MaxMetric int
	// MaxRoutesPerMsg chunks large advertisements. Zero means 1024.
	MaxRoutesPerMsg int
	// Log receives one line per notable protocol event; nil discards.
	Log func(format string, args ...any)
}

// SpeakerStats counts protocol activity; all fields are cumulative.
type SpeakerStats struct {
	AdvertisesSent, WithdrawsSent   int64
	AdvertisesRecv, WithdrawsRecv   int64
	Malformed, Stale                int64
	RoutesInstalled, RoutesWithdrawn, RoutesExpired int64
	// Commits counts FIB transactions that published a snapshot;
	// NoopBatches counts messages whose transactions changed nothing
	// (pure refresh — the fib no-op contract kept them publish-free).
	Commits, NoopBatches int64
	// RIB and Local are current sizes (learned and originated).
	RIB, Local int
}

type ribEntry struct {
	metric   int
	port     int
	lastSeen time.Duration
}

type localRoute struct {
	nh         fib.NextHop
	suppressed bool // egress port is down; originate again on PortUp
}

type speakerNeighbor struct {
	port    int
	send    func(msg []byte)
	up      bool
	lastSeq uint32
	seen    bool // any message received yet (guards the first-seq compare)
	catalog Catalog
}

// outMsg is a message staged under the lock and sent after release, so
// synchronous transports (tests, in-process wiring) cannot deadlock two
// speakers against each other's mutexes.
type outMsg struct {
	nb  *speakerNeighbor
	msg []byte
	adv bool
}

// Speaker is one router's route-exchange agent.
type Speaker struct {
	mu        sync.Mutex
	cfg       SpeakerConfig
	seq       uint32
	local     map[routeKey]*localRoute
	rib       map[routeKey]ribEntry
	neighbors map[int]*speakerNeighbor
	stats     SpeakerStats
}

// NewSpeaker builds a speaker. Originate/OriginateFromFIBs seed what it
// advertises; AddNeighbor wires its adjacencies.
func NewSpeaker(cfg SpeakerConfig) *Speaker {
	if cfg.MaxMetric <= 0 {
		cfg.MaxMetric = 16
	}
	if cfg.MaxRoutesPerMsg <= 0 {
		cfg.MaxRoutesPerMsg = 1024
	}
	if cfg.Now == nil {
		panic("bootstrap: SpeakerConfig.Now is required")
	}
	return &Speaker{
		cfg:       cfg,
		local:     map[routeKey]*localRoute{},
		rib:       map[routeKey]ribEntry{},
		neighbors: map[int]*speakerNeighbor{},
	}
}

// AddNeighbor registers the adjacency reachable through port. send
// transmits one encoded message to that neighbor (the caller wraps it in
// the F_ctl control packet and puts it on the wire).
func (s *Speaker) AddNeighbor(port int, send func(msg []byte)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.neighbors[port] = &speakerNeighbor{port: port, send: send, up: true}
}

// Originate adds an entry to the speaker's own advertisement set. nh is
// the local egress (used to suppress the advertisement while that port is
// down); the route itself is assumed already installed in the FIB.
func (s *Speaker) Originate(e RouteEntry, nh fib.NextHop) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.local[keyOf(e)] = &localRoute{nh: nh}
}

// OriginateFromFIBs walks the configured FIB tables and originates every
// route currently installed — the static configuration becomes the
// speaker's advertisement seed.
func (s *Speaker) OriginateFromFIBs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	add := func(kind RouteKind) func(prefix []byte, plen int, nh fib.NextHop) bool {
		return func(prefix []byte, plen int, nh fib.NextHop) bool {
			e := RouteEntry{Kind: kind, Plen: uint8(plen)}
			copy(e.Prefix[:], prefix)
			s.local[keyOf(e)] = &localRoute{nh: nh}
			n++
			return true
		}
	}
	if s.cfg.FIB32 != nil {
		s.cfg.FIB32.Walk(add(Kind32))
	}
	if s.cfg.FIB128 != nil {
		s.cfg.FIB128.Walk(add(Kind128))
	}
	if s.cfg.NameFIB != nil {
		s.cfg.NameFIB.Walk(add(KindName))
	}
	return n
}

// Stats snapshots the counters.
func (s *Speaker) Stats() SpeakerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.RIB = len(s.rib)
	st.Local = len(s.local)
	return st
}

// NeighborCatalog returns the FN catalog the neighbor on port last
// advertised (§2.3 gossip), if any.
func (s *Speaker) NeighborCatalog(port int) (Catalog, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	nb := s.neighbors[port]
	if nb == nil || nb.catalog == nil {
		return nil, false
	}
	return nb.catalog, true
}

// Refresh runs one periodic cycle: expire learned routes past HoldFor
// (flooding withdraws for them), then advertise the full route set to
// every up neighbor. Call it on a timer; faster refresh means faster
// convergence when triggered updates are lost.
func (s *Speaker) Refresh() {
	s.mu.Lock()
	now := s.cfg.Now()
	var expired []RouteEntry
	if s.cfg.HoldFor > 0 {
		tx := s.txns()
		for k, e := range s.rib {
			if now-e.lastSeen > s.cfg.HoldFor {
				delete(s.rib, k)
				tx.remove(k)
				expired = append(expired, k.entry(s.cfg.MaxMetric))
				s.stats.RoutesExpired++
			}
		}
		tx.commit(s)
	}
	var out []outMsg
	if len(expired) > 0 {
		s.logf("%s: expired %d stale routes", s.cfg.Name, len(expired))
		out = append(out, s.withdrawMsgs(expired, -1)...)
	}
	for _, nb := range s.neighbors {
		if !nb.up {
			continue
		}
		out = append(out, s.advertiseMsgs(s.exportTo(nb.port), nb)...)
	}
	s.mu.Unlock()
	s.dispatch(out)
}

// PortDown signals loss of the link on port (carrier loss, fault hook):
// the adjacency is marked down, every route learned through it is removed
// from the FIBs in one batch, withdraws flood to the remaining neighbors,
// and originated routes egressing the dead port stop being advertised.
func (s *Speaker) PortDown(port int) {
	s.mu.Lock()
	if nb := s.neighbors[port]; nb != nil {
		nb.up = false
	}
	tx := s.txns()
	var lost []RouteEntry
	for k, e := range s.rib {
		if e.port != port {
			continue
		}
		delete(s.rib, k)
		tx.remove(k)
		lost = append(lost, k.entry(s.cfg.MaxMetric))
		s.stats.RoutesWithdrawn++
	}
	for k, lr := range s.local {
		if lr.nh.Port == port && !lr.suppressed {
			lr.suppressed = true
			lost = append(lost, k.entry(s.cfg.MaxMetric))
		}
	}
	tx.commit(s)
	var out []outMsg
	if len(lost) > 0 {
		s.logf("%s: port %d down, withdrawing %d routes", s.cfg.Name, port, len(lost))
		out = s.withdrawMsgs(lost, port)
	}
	s.mu.Unlock()
	s.dispatch(out)
}

// PortUp signals link recovery: the adjacency resumes, suppressed local
// routes are re-originated, and a full advertisement goes to the revived
// neighbor immediately (plus a flood of the restored locals to everyone).
func (s *Speaker) PortUp(port int) {
	s.mu.Lock()
	var restored []RouteEntry
	for k, lr := range s.local {
		if lr.nh.Port == port && lr.suppressed {
			lr.suppressed = false
			restored = append(restored, k.entry(0))
		}
	}
	var out []outMsg
	if nb := s.neighbors[port]; nb != nil {
		nb.up = true
		out = append(out, s.advertiseMsgs(s.exportTo(port), nb)...)
	}
	if len(restored) > 0 {
		for _, nb := range s.neighbors {
			if !nb.up || nb.port == port {
				continue
			}
			out = append(out, s.advertiseMsgs(restored, nb)...)
		}
	}
	s.mu.Unlock()
	s.dispatch(out)
}

// Handle consumes one route-exchange message received on inPort, applying
// it to the FIBs through batched transactions and flooding triggered
// updates. It returns an error only for malformed messages (counted in
// Stats either way).
func (s *Speaker) Handle(msg []byte, inPort int) error {
	ex, err := DecodeExchange(msg)
	if err != nil {
		s.mu.Lock()
		s.stats.Malformed++
		s.mu.Unlock()
		return err
	}
	s.mu.Lock()
	nb := s.neighbors[inPort]
	if nb == nil || !nb.up {
		// Not an adjacency (or one we believe is down — a late packet in
		// flight); never install routes from it.
		s.stats.Stale++
		s.mu.Unlock()
		return nil
	}
	if nb.seen && int32(ex.Seq-nb.lastSeq) <= 0 {
		// Reordered or replayed: protocol state must only move forward.
		s.stats.Stale++
		s.mu.Unlock()
		return nil
	}
	nb.seen, nb.lastSeq = true, ex.Seq
	var out []outMsg
	if ex.Type == TypeAdvertise {
		s.stats.AdvertisesRecv++
		if ex.Catalog != nil {
			nb.catalog = ex.Catalog
		}
		out = s.applyAdvertise(ex, inPort)
	} else {
		s.stats.WithdrawsRecv++
		out = s.applyWithdraw(ex, inPort)
	}
	s.mu.Unlock()
	s.dispatch(out)
	return nil
}

// applyAdvertise installs new/better routes (one batched commit) and
// returns the triggered flood. Caller holds s.mu.
func (s *Speaker) applyAdvertise(ex *Exchange, inPort int) []outMsg {
	now := s.cfg.Now()
	tx := s.txns()
	var changed []RouteEntry
	for _, e := range ex.Routes {
		k := keyOf(e)
		if _, isLocal := s.local[k]; isLocal {
			continue // we originate it; nothing to learn
		}
		m := int(e.Metric) + 1
		if m > s.cfg.MaxMetric {
			// Unreachable (poisoned); treat as a withdraw if we were
			// routing through this neighbor.
			if cur, ok := s.rib[k]; ok && cur.port == inPort {
				delete(s.rib, k)
				tx.remove(k)
				changed = append(changed, k.entry(s.cfg.MaxMetric))
				s.stats.RoutesWithdrawn++
			}
			continue
		}
		cur, ok := s.rib[k]
		switch {
		case ok && cur.port == inPort:
			cur.lastSeen = now
			if cur.metric != m {
				cur.metric = m
				changed = append(changed, k.entry(m))
			}
			s.rib[k] = cur
		case !ok || m < cur.metric:
			s.rib[k] = ribEntry{metric: m, port: inPort, lastSeen: now}
			tx.add(k, fib.NextHop{Port: inPort})
			changed = append(changed, k.entry(m))
			s.stats.RoutesInstalled++
		}
	}
	tx.commit(s)
	if len(changed) == 0 {
		return nil
	}
	s.logf("%s: learned %d routes from port %d", s.cfg.Name, len(changed), inPort)
	var out []outMsg
	for _, nb := range s.neighbors {
		if !nb.up || nb.port == inPort {
			continue // split horizon: all changes point at inPort
		}
		out = append(out, s.advertiseMsgs(changed, nb)...)
	}
	return out
}

// applyWithdraw removes routes learned via inPort (one batched commit),
// floods the loss onward, and answers with any alternatives this speaker
// still has — the withdraw response that bounds blackhole duration.
// Caller holds s.mu.
func (s *Speaker) applyWithdraw(ex *Exchange, inPort int) []outMsg {
	tx := s.txns()
	var lost, survive []RouteEntry
	for _, e := range ex.Routes {
		k := keyOf(e)
		if lr, isLocal := s.local[k]; isLocal {
			if !lr.suppressed {
				survive = append(survive, k.entry(0))
			}
			continue
		}
		cur, ok := s.rib[k]
		if !ok {
			continue
		}
		if cur.port == inPort {
			delete(s.rib, k)
			tx.remove(k)
			lost = append(lost, k.entry(s.cfg.MaxMetric))
			s.stats.RoutesWithdrawn++
		} else {
			// We route around the withdrawing neighbor already: offer the
			// alternative straight back.
			survive = append(survive, k.entry(cur.metric))
		}
	}
	tx.commit(s)
	var out []outMsg
	if len(lost) > 0 {
		s.logf("%s: withdrew %d routes via port %d", s.cfg.Name, len(lost), inPort)
		out = append(out, s.withdrawMsgs(lost, inPort)...)
	}
	if nb := s.neighbors[inPort]; nb != nil && nb.up && len(survive) > 0 {
		out = append(out, s.advertiseMsgs(survive, nb)...)
	}
	return out
}

// exportTo builds the advertisement set for the neighbor on port: every
// unsuppressed local route at metric 0 plus every learned route at its
// metric — except, split horizon, those learned through that very port.
// Caller holds s.mu.
func (s *Speaker) exportTo(port int) []RouteEntry {
	out := make([]RouteEntry, 0, len(s.local)+len(s.rib))
	for k, lr := range s.local {
		if !lr.suppressed {
			out = append(out, k.entry(0))
		}
	}
	for k, e := range s.rib {
		if e.port != port {
			out = append(out, k.entry(e.metric))
		}
	}
	return out
}

// advertiseMsgs chunks routes into advertisement messages for nb.
// Caller holds s.mu.
func (s *Speaker) advertiseMsgs(routes []RouteEntry, nb *speakerNeighbor) []outMsg {
	if len(routes) == 0 {
		return nil
	}
	var out []outMsg
	for off := 0; off < len(routes); off += s.cfg.MaxRoutesPerMsg {
		end := off + s.cfg.MaxRoutesPerMsg
		if end > len(routes) {
			end = len(routes)
		}
		s.seq++
		out = append(out, outMsg{
			nb:  nb,
			msg: EncodeAdvertise(s.cfg.Name, s.seq, routes[off:end], s.cfg.Catalog),
			adv: true,
		})
	}
	return out
}

// withdrawMsgs chunks routes into withdraw messages for every up neighbor
// except exceptPort (-1 floods everywhere). Caller holds s.mu.
func (s *Speaker) withdrawMsgs(routes []RouteEntry, exceptPort int) []outMsg {
	var out []outMsg
	for _, nb := range s.neighbors {
		if !nb.up || nb.port == exceptPort {
			continue
		}
		for off := 0; off < len(routes); off += s.cfg.MaxRoutesPerMsg {
			end := off + s.cfg.MaxRoutesPerMsg
			if end > len(routes) {
				end = len(routes)
			}
			s.seq++
			out = append(out, outMsg{
				nb:  nb,
				msg: EncodeWithdraw(s.cfg.Name, s.seq, routes[off:end]),
			})
		}
	}
	return out
}

// dispatch sends staged messages outside the lock.
func (s *Speaker) dispatch(msgs []outMsg) {
	for _, m := range msgs {
		s.mu.Lock()
		if m.adv {
			s.stats.AdvertisesSent++
		} else {
			s.stats.WithdrawsSent++
		}
		s.mu.Unlock()
		m.nb.send(m.msg)
	}
}

func (s *Speaker) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log(format, args...)
	}
}

// txnSet lazily opens one batched transaction per FIB table so a whole
// message commits with at most one snapshot publish per table.
type txnSet struct {
	s                *Speaker
	t32, t128, tname *fib.Txn
}

func (s *Speaker) txns() *txnSet { return &txnSet{s: s} }

func (tx *txnSet) for_(kind RouteKind) *fib.Txn {
	switch kind {
	case Kind32:
		if tx.t32 == nil && tx.s.cfg.FIB32 != nil {
			tx.t32 = tx.s.cfg.FIB32.Txn()
		}
		return tx.t32
	case Kind128:
		if tx.t128 == nil && tx.s.cfg.FIB128 != nil {
			tx.t128 = tx.s.cfg.FIB128.Txn()
		}
		return tx.t128
	case KindName:
		if tx.tname == nil && tx.s.cfg.NameFIB != nil {
			tx.tname = tx.s.cfg.NameFIB.Txn()
		}
		return tx.tname
	}
	return nil
}

func (tx *txnSet) add(k routeKey, nh fib.NextHop) {
	if t := tx.for_(k.kind); t != nil {
		t.Add(k.prefix[:k.kind.prefixBytes()], int(k.plen), nh)
	}
}

func (tx *txnSet) remove(k routeKey) {
	if t := tx.for_(k.kind); t != nil {
		t.Remove(k.prefix[:k.kind.prefixBytes()], int(k.plen))
	}
}

// commit publishes each opened transaction (at most one snapshot publish
// per table; publish-free when nothing changed) and updates the stats.
func (tx *txnSet) commit(s *Speaker) {
	for _, t := range []*fib.Txn{tx.t32, tx.t128, tx.tname} {
		if t == nil {
			continue
		}
		if t.Changed() {
			s.stats.Commits++
		} else {
			s.stats.NoopBatches++
		}
		t.Commit()
	}
}
