package bootstrap

import (
	"errors"
	"testing"

	"dip/internal/core"
	"dip/internal/fib"
	"dip/internal/ops"
)

func testCatalog(t *testing.T) (Catalog, *core.Registry) {
	t.Helper()
	reg := ops.NewRouterRegistry(ops.Config{FIB32: fib.New(), FIB128: fib.New()})
	return CatalogOf(reg), reg
}

func TestCatalogOf(t *testing.T) {
	c, reg := testCatalog(t)
	if len(c) != reg.Len() {
		t.Errorf("catalog %d entries, registry %d", len(c), reg.Len())
	}
	if !c.Supports(core.KeyMatch32, core.KeyMatch128, core.KeySource, core.KeyPass) {
		t.Errorf("missing expected keys: %v", c.Keys())
	}
	if c.Supports(core.KeyMAC) {
		t.Error("claims unsupported key")
	}
}

func TestOfferRoundTrip(t *testing.T) {
	c, _ := testCatalog(t)
	msg := EncodeOffer(c)
	typ, got, err := Decode(msg)
	if err != nil || typ != TypeOffer {
		t.Fatalf("type %d err %v", typ, err)
	}
	if len(got) != len(c) {
		t.Fatalf("got %d entries", len(got))
	}
	for i := range c {
		if got[i] != c[i] {
			t.Errorf("entry %d: %v vs %v", i, got[i], c[i])
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); !errors.Is(err, ErrBadMessage) {
		t.Errorf("empty: %v", err)
	}
	if _, _, err := Decode([]byte{9}); !errors.Is(err, ErrBadMessage) {
		t.Errorf("unknown type: %v", err)
	}
	if _, _, err := Decode([]byte{TypeOffer, 0}); !errors.Is(err, ErrBadMessage) {
		t.Errorf("short offer: %v", err)
	}
	if _, _, err := Decode([]byte{TypeOffer, 0, 5, 1}); !errors.Is(err, ErrBadMessage) {
		t.Errorf("truncated entries: %v", err)
	}
}

func TestResponder(t *testing.T) {
	c, reg := testCatalog(t)
	r := NewResponder(reg)
	reply := r.Handle(EncodeDiscover())
	if reply == nil {
		t.Fatal("no reply to discover")
	}
	typ, got, err := Decode(reply)
	if err != nil || typ != TypeOffer || len(got) != len(c) {
		t.Errorf("reply: type %d, %d entries, err %v", typ, len(got), err)
	}
	if r.Handle([]byte{99}) != nil {
		t.Error("replied to junk")
	}
	if r.Handle(reply) != nil {
		t.Error("replied to an offer")
	}
}

func asGraph() *ASGraph {
	g := NewASGraph()
	full := Catalog{{Key: core.KeyFIB}, {Key: core.KeyPIT}, {Key: core.KeyParm}, {Key: core.KeyMAC}, {Key: core.KeyMark}}
	legacy := Catalog{{Key: core.KeyFIB}, {Key: core.KeyPIT}}
	g.AddAS("A", full)
	g.AddAS("B", legacy)
	g.AddAS("C", full)
	g.AddAS("D", full)
	g.Peer("A", "B")
	g.Peer("B", "C")
	g.Peer("A", "D")
	g.Peer("D", "C")
	return g
}

func TestASGraphPath(t *testing.T) {
	g := asGraph()
	p := g.Path("A", "C")
	if len(p) != 3 || p[0] != "A" || p[2] != "C" {
		t.Errorf("path %v", p)
	}
	if g.Path("A", "Z") != nil {
		t.Error("path to unknown AS")
	}
	if p := g.Path("A", "A"); len(p) != 1 {
		t.Errorf("self path %v", p)
	}
	if g.Path("Z", "A") != nil {
		t.Error("path from unknown AS")
	}
}

func TestPathSupports(t *testing.T) {
	g := asGraph()
	// NDN keys are everywhere: any path works.
	if _, ok := g.PathSupports("A", "C", core.KeyFIB, core.KeyPIT); !ok {
		t.Error("NDN path should be supported")
	}
	// OPT keys: depends on whether BFS routes via B (legacy) or D (full).
	path, ok := g.PathSupports("A", "C", core.KeyParm, core.KeyMAC, core.KeyMark)
	via := path[1]
	if via == "B" && ok {
		t.Error("path via legacy B cannot support OPT")
	}
	if via == "D" && !ok {
		t.Error("path via D supports OPT")
	}
	// Direct check of the legacy AS.
	c, _ := g.Catalog("B")
	if c.Supports(core.KeyMAC) {
		t.Error("legacy B claims MAC")
	}
	if _, ok := g.PathSupports("A", "Z"); ok {
		t.Error("unreachable destination supported")
	}
}
