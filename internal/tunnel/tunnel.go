// Package tunnel carries DIP packets across DIP-agnostic domains by
// encapsulating them in IPv4 (paper §2.4: "one could use tunneling
// technology to build end-to-end path across DIP-agnostic domains").
// A tunnel endpoint is a router.Port: packets sent into it come out of the
// peer endpoint's router as if the legacy domain were one link.
package tunnel

import (
	"errors"
	"fmt"

	"dip/internal/ip"
	"dip/internal/telemetry"
)

// ErrNotTunnel reports a packet that is not DIP-in-IPv4.
var ErrNotTunnel = errors.New("tunnel: not a DIP-in-IPv4 packet")

// Encap wraps a DIP packet in an IPv4 header addressed from src to dst,
// with the DIP protocol number, appending to dst buffer semantics of
// building a fresh slice.
func Encap(dipPkt []byte, src, dst [4]byte, ttl uint8) ([]byte, error) {
	out := make([]byte, ip.HeaderLen4+len(dipPkt))
	if err := ip.Build4(out, src, dst, ip.ProtoDIP, ttl, len(dipPkt)); err != nil {
		return nil, err
	}
	copy(out[ip.HeaderLen4:], dipPkt)
	return out, nil
}

// Decap validates the outer IPv4 header and returns the inner DIP packet
// (aliasing the input).
func Decap(outer []byte) ([]byte, error) {
	h, err := ip.Parse4(outer)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotTunnel, err)
	}
	if h.Proto() != ip.ProtoDIP {
		return nil, fmt.Errorf("%w: protocol %d", ErrNotTunnel, h.Proto())
	}
	return h.Payload(), nil
}

// Carrier moves encapsulated packets across the legacy domain. The netsim
// Endpoint and a UDP socket both satisfy it.
type Carrier interface {
	Send(pkt []byte)
}

// CarrierFunc adapts a function to Carrier.
type CarrierFunc func(pkt []byte)

// Send implements Carrier.
func (f CarrierFunc) Send(pkt []byte) { f(pkt) }

// Event classifies one observable action of a tunnel endpoint.
type Event uint8

// Tunnel endpoint events.
const (
	// EventEncap: a DIP packet was wrapped and handed to the carrier.
	EventEncap Event = iota
	// EventDecap: an inbound carrier packet was unwrapped and delivered.
	EventDecap
	// EventProbeMiss: a liveness probe went unanswered.
	EventProbeMiss
	// EventFailover: the endpoint swapped Remote and Backup.
	EventFailover
)

// Observer receives tunnel events as they happen. dipPkt is the inner DIP
// packet for encap/decap and nil for probe-miss/failover (those concern the
// tunnel, not one packet); it is valid only during the call. Observers run
// synchronously and must not block.
type Observer func(ev Event, dipPkt []byte)

// Endpoint is one end of a tunnel: a router.Port that encapsulates
// outbound DIP packets onto the carrier, plus a receive hook that
// decapsulates inbound carrier packets into the local router. With a
// Backup remote and StartProbing armed (probe.go), the endpoint detects a
// dead peer and fails over.
type Endpoint struct {
	// Local and Remote are the tunnel's outer IPv4 addresses.
	Local, Remote [4]byte
	// Backup, when non-zero, is the failover remote StartProbing switches
	// to after consecutive probe misses.
	Backup [4]byte
	// TTL is the outer header's hop budget across the legacy domain.
	TTL uint8
	// Carrier transports outer packets (the legacy domain).
	Carrier Carrier
	// Deliver receives decapsulated DIP packets (wire into the router's
	// HandlePacket with the tunnel's port index). Probe traffic never
	// reaches it.
	Deliver func(dipPkt []byte)
	// Metrics, when set, receives EventProbeMiss / EventFailover.
	Metrics *telemetry.Metrics
	// Observer, when set, receives every tunnel event (journey tracing).
	Observer Observer
	// Sent and Received count tunneled data packets.
	Sent, Received int64
	// ProbesSent, ProbesAcked, ProbeMisses and Failovers count the
	// liveness machinery's activity.
	ProbesSent, ProbesAcked, ProbeMisses, Failovers int64

	probeSeq      uint32
	awaitingReply bool
	misses        int
}

// Send implements router.Port: encapsulate and hand to the carrier.
func (e *Endpoint) Send(dipPkt []byte) {
	outer, err := Encap(dipPkt, e.Local, e.Remote, e.ttl())
	if err != nil {
		return
	}
	e.Sent++
	if e.Observer != nil {
		e.Observer(EventEncap, dipPkt)
	}
	e.Carrier.Send(outer)
}

// Receive accepts an outer packet from the legacy domain: probe control
// packets feed the liveness machinery, tunneled DIP packets are
// decapsulated and delivered, anything else is reported.
func (e *Endpoint) Receive(outer []byte) error {
	h, err := ip.Parse4(outer)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNotTunnel, err)
	}
	switch h.Proto() {
	case ip.ProtoDIPProbe:
		return e.handleProbe(h)
	case ip.ProtoDIP:
		e.Received++
		if e.Observer != nil {
			e.Observer(EventDecap, h.Payload())
		}
		if e.Deliver != nil {
			e.Deliver(h.Payload())
		}
		return nil
	default:
		return fmt.Errorf("%w: protocol %d", ErrNotTunnel, h.Proto())
	}
}
