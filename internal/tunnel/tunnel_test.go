package tunnel

import (
	"bytes"
	"errors"
	"testing"

	"dip/internal/host"
	"dip/internal/ip"
	"dip/internal/profiles"
)

func dipPacket(t *testing.T) []byte {
	t.Helper()
	b, err := host.BuildPacket(profiles.IPv4([4]byte{1, 1, 1, 1}, [4]byte{2, 2, 2, 2}), []byte("inner"))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestEncapDecapRoundTrip(t *testing.T) {
	inner := dipPacket(t)
	outer, err := Encap(inner, [4]byte{192, 0, 2, 1}, [4]byte{192, 0, 2, 2}, 64)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ip.Parse4(outer)
	if err != nil {
		t.Fatal(err)
	}
	if h.Proto() != ip.ProtoDIP {
		t.Errorf("proto %d", h.Proto())
	}
	got, err := Decap(outer)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, inner) {
		t.Error("inner packet corrupted")
	}
}

func TestDecapRejects(t *testing.T) {
	if _, err := Decap([]byte{1, 2, 3}); !errors.Is(err, ErrNotTunnel) {
		t.Errorf("short: %v", err)
	}
	// Valid IPv4 but wrong protocol.
	pkt := make([]byte, ip.HeaderLen4)
	ip.Build4(pkt, [4]byte{1, 1, 1, 1}, [4]byte{2, 2, 2, 2}, ip.ProtoUDP, 64, 0)
	if _, err := Decap(pkt); !errors.Is(err, ErrNotTunnel) {
		t.Errorf("wrong proto: %v", err)
	}
}

type captureCarrier struct{ pkts [][]byte }

func (c *captureCarrier) Send(p []byte) { c.pkts = append(c.pkts, append([]byte(nil), p...)) }

func TestEndpointSendReceive(t *testing.T) {
	carrier := &captureCarrier{}
	var delivered []byte
	ep := &Endpoint{
		Local:   [4]byte{10, 0, 0, 1},
		Remote:  [4]byte{10, 0, 0, 2},
		Carrier: carrier,
		Deliver: func(p []byte) { delivered = append([]byte(nil), p...) },
	}
	inner := dipPacket(t)
	ep.Send(inner)
	if ep.Sent != 1 || len(carrier.pkts) != 1 {
		t.Fatalf("sent=%d carried=%d", ep.Sent, len(carrier.pkts))
	}
	h, err := ip.Parse4(carrier.pkts[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(h.Dst(), []byte{10, 0, 0, 2}) || h.TTL() != 64 {
		t.Errorf("outer dst %v ttl %d", h.Dst(), h.TTL())
	}

	// The peer receives what this side carried.
	if err := ep.Receive(carrier.pkts[0]); err != nil {
		t.Fatal(err)
	}
	if ep.Received != 1 || !bytes.Equal(delivered, inner) {
		t.Errorf("received=%d payload ok=%v", ep.Received, bytes.Equal(delivered, inner))
	}
	// Junk from the legacy domain is rejected, not delivered.
	delivered = nil
	if err := ep.Receive([]byte{9, 9}); err == nil {
		t.Error("junk accepted")
	}
	if delivered != nil {
		t.Error("junk delivered")
	}
}
