// Tunnel endpoint liveness: the legacy domain between two tunnel endpoints
// is a black box that can silently die (§2.4's tunnels span networks DIP
// has no visibility into). Each endpoint therefore probes its peer with
// echo request/reply control packets carried under a distinct outer
// protocol number, and after a configurable number of consecutive misses
// fails over to a backup remote — the recovery a multi-homed legacy
// attachment offers.
package tunnel

import (
	"encoding/binary"
	"fmt"
	"time"

	"dip/internal/ip"
	"dip/internal/telemetry"
)

// Clock schedules probe timers; netsim.Simulator satisfies it.
type Clock interface {
	Now() time.Duration
	Schedule(delay time.Duration, fn func())
}

// Probe wire format (inner payload under ip.ProtoDIPProbe):
// 6-byte magic, 1-byte kind, 4-byte big-endian sequence number.
const probeLen = 11

var probeMagic = [6]byte{'D', 'I', 'P', 'P', 'R', 'B'}

// Probe kinds.
const (
	probeRequest = 0
	probeReply   = 1
)

func buildProbe(kind byte, seq uint32, src, dst [4]byte, ttl uint8) ([]byte, error) {
	out := make([]byte, ip.HeaderLen4+probeLen)
	if err := ip.Build4(out, src, dst, ip.ProtoDIPProbe, ttl, probeLen); err != nil {
		return nil, err
	}
	inner := out[ip.HeaderLen4:]
	copy(inner, probeMagic[:])
	inner[6] = kind
	binary.BigEndian.PutUint32(inner[7:], seq)
	return out, nil
}

func parseProbe(inner []byte) (kind byte, seq uint32, err error) {
	if len(inner) < probeLen {
		return 0, 0, fmt.Errorf("tunnel: probe %d bytes, want %d", len(inner), probeLen)
	}
	if [6]byte(inner[:6]) != probeMagic {
		return 0, 0, fmt.Errorf("tunnel: bad probe magic %x", inner[:6])
	}
	if inner[6] != probeRequest && inner[6] != probeReply {
		return 0, 0, fmt.Errorf("tunnel: bad probe kind %d", inner[6])
	}
	return inner[6], binary.BigEndian.Uint32(inner[7:]), nil
}

// StartProbing arms periodic liveness probing: every interval the endpoint
// sends an echo request to its current remote, and when missThreshold
// consecutive requests go unanswered it fails over — Remote and Backup swap,
// so flapping paths alternate rather than strand the tunnel. Probing
// continues after failover (watching the new remote). The returned cancel
// function stops the timer chain.
//
// The peer must also be receiving (its Receive answers requests); Deliver
// never sees probe traffic.
func (e *Endpoint) StartProbing(clock Clock, interval time.Duration, missThreshold int) (cancel func()) {
	if missThreshold <= 0 {
		missThreshold = 3
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		if e.awaitingReply {
			e.ProbeMisses++
			e.misses++
			if e.Metrics != nil {
				e.Metrics.RecordEvent(telemetry.EventProbeMiss)
			}
			if e.Observer != nil {
				e.Observer(EventProbeMiss, nil)
			}
			if e.misses >= missThreshold && e.Backup != ([4]byte{}) {
				e.Remote, e.Backup = e.Backup, e.Remote
				e.Failovers++
				e.misses = 0
				if e.Metrics != nil {
					e.Metrics.RecordEvent(telemetry.EventFailover)
				}
				if e.Observer != nil {
					e.Observer(EventFailover, nil)
				}
			}
		}
		e.sendProbe()
		clock.Schedule(interval, tick)
	}
	tick()
	return func() { stopped = true }
}

// Alive reports whether the last probe round-trip succeeded (true before
// any probe has been sent).
func (e *Endpoint) Alive() bool { return !e.awaitingReply }

func (e *Endpoint) sendProbe() {
	e.probeSeq++
	pkt, err := buildProbe(probeRequest, e.probeSeq, e.Local, e.Remote, e.ttl())
	if err != nil {
		return
	}
	e.awaitingReply = true
	e.ProbesSent++
	e.Carrier.Send(pkt)
}

// handleProbe consumes one ProtoDIPProbe packet. Requests are echoed back
// to the outer source; replies matching the outstanding sequence mark the
// peer alive.
func (e *Endpoint) handleProbe(h ip.Header4) error {
	kind, seq, err := parseProbe(h.Payload())
	if err != nil {
		return err
	}
	switch kind {
	case probeRequest:
		var peer [4]byte
		copy(peer[:], h.Src())
		reply, err := buildProbe(probeReply, seq, e.Local, peer, e.ttl())
		if err != nil {
			return err
		}
		e.Carrier.Send(reply)
	case probeReply:
		if seq == e.probeSeq && e.awaitingReply {
			e.awaitingReply = false
			e.misses = 0
			e.ProbesAcked++
		}
	}
	return nil
}

func (e *Endpoint) ttl() uint8 {
	if e.TTL == 0 {
		return 64
	}
	return e.TTL
}
