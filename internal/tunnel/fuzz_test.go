package tunnel

import (
	"testing"

	"dip/internal/ip"
)

// fuzzSeeds builds the in-code seed corpus: a valid tunnel packet plus
// systematically corrupted outer IPv4 headers (the on-disk corpus under
// testdata/fuzz/FuzzDecap mirrors these).
func fuzzSeeds(tb testing.TB) [][]byte {
	valid, err := Encap([]byte("inner dip packet"), [4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, 64)
	if err != nil {
		tb.Fatal(err)
	}
	mutate := func(i int, v byte) []byte {
		cp := append([]byte(nil), valid...)
		cp[i] ^= v
		return cp
	}
	probe, err := buildProbe(probeRequest, 1, [4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, 64)
	if err != nil {
		tb.Fatal(err)
	}
	return [][]byte{
		valid,
		{},
		valid[:ip.HeaderLen4-1],  // truncated header
		mutate(0, 0x30),          // version 7
		mutate(0, 0x01),          // IHL 4 (20→16 bytes: unsupported)
		mutate(2, 0xFF),          // total length beyond the buffer
		mutate(9, 0xFF),          // protocol no longer DIP
		mutate(10, 0x5A),         // checksum broken
		mutate(ip.HeaderLen4, 1), // payload corruption (header still valid)
		probe,
	}
}

// FuzzDecap: arbitrary (and systematically corrupted) outer packets must
// produce an error or a bounded inner packet — never a panic — and the
// endpoint receive path (which additionally parses probe control packets)
// must uphold the same invariant.
func FuzzDecap(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, outer []byte) {
		inner, err := Decap(outer)
		if err == nil {
			if len(inner) > len(outer) {
				t.Fatalf("inner %d bytes from outer %d", len(inner), len(outer))
			}
			h, perr := ip.Parse4(outer)
			if perr != nil || h.Proto() != ip.ProtoDIP {
				t.Fatalf("Decap accepted what Parse4 rejects: %v", perr)
			}
		}
		ep := &Endpoint{
			Local:   [4]byte{10, 0, 0, 1},
			Remote:  [4]byte{10, 0, 0, 2},
			Carrier: CarrierFunc(func([]byte) {}),
			Deliver: func(p []byte) { _ = len(p) },
		}
		_ = ep.Receive(outer) // must not panic regardless of outcome
	})
}
