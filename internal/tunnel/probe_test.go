package tunnel

import (
	"bytes"
	"testing"
	"time"

	"dip/internal/ip"
	"dip/internal/netsim"
	"dip/internal/telemetry"
)

// legacyDomain is a carrier that routes outer packets by destination IP,
// standing in for the DIP-agnostic network between tunnel endpoints. Downed
// addresses black-hole their traffic.
type legacyDomain struct {
	sim   *netsim.Simulator
	peers map[[4]byte]*Endpoint
	down  map[[4]byte]bool
	src   *Endpoint // whose packets this carrier view sends
}

func (d *legacyDomain) Send(pkt []byte) {
	h, err := ip.Parse4(pkt)
	if err != nil {
		return
	}
	var dst [4]byte
	copy(dst[:], h.Dst())
	if d.down[dst] {
		return
	}
	peer, ok := d.peers[dst]
	if !ok {
		return
	}
	cp := append([]byte(nil), pkt...)
	d.sim.Schedule(time.Millisecond, func() { peer.Receive(cp) })
}

func TestProbeKeepsAliveAndFailsOver(t *testing.T) {
	sim := netsim.New()
	domain := &legacyDomain{sim: sim, peers: map[[4]byte]*Endpoint{}, down: map[[4]byte]bool{}}
	primary := [4]byte{10, 0, 0, 2}
	backup := [4]byte{10, 0, 0, 3}

	metrics := &telemetry.Metrics{}
	var delivered [][]byte
	local := &Endpoint{
		Local: [4]byte{10, 0, 0, 1}, Remote: primary, Backup: backup,
		Metrics: metrics,
	}
	primaryEP := &Endpoint{Local: primary, Remote: [4]byte{10, 0, 0, 1}}
	backupEP := &Endpoint{
		Local: backup, Remote: [4]byte{10, 0, 0, 1},
		Deliver: func(p []byte) { delivered = append(delivered, append([]byte(nil), p...)) },
	}
	for _, e := range []*Endpoint{local, primaryEP, backupEP} {
		e.Carrier = &legacyDomain{sim: sim, peers: domain.peers, down: domain.down, src: e}
	}
	domain.peers[local.Local] = local
	domain.peers[primary] = primaryEP
	domain.peers[backup] = backupEP

	cancel := local.StartProbing(sim, 10*time.Millisecond, 3)
	defer cancel()

	// Phase 1: the primary answers; no misses accumulate. (55ms, not a
	// probe-interval multiple, so the last probe's reply has landed.)
	sim.RunUntil(55 * time.Millisecond)
	if local.ProbesAcked == 0 || local.ProbeMisses != 0 || local.Failovers != 0 {
		t.Fatalf("healthy phase: acked=%d misses=%d failovers=%d",
			local.ProbesAcked, local.ProbeMisses, local.Failovers)
	}
	if !local.Alive() {
		t.Fatal("endpoint not alive with a responsive peer")
	}

	// Phase 2: the primary dies. Three consecutive misses trigger failover.
	domain.down[primary] = true
	sim.RunUntil(150 * time.Millisecond)
	if local.Failovers != 1 {
		t.Fatalf("failovers=%d after primary death (misses=%d)", local.Failovers, local.ProbeMisses)
	}
	if local.Remote != backup || local.Backup != primary {
		t.Fatalf("remote=%v backup=%v, want swapped", local.Remote, local.Backup)
	}
	if metrics.Event(telemetry.EventFailover) != 1 || metrics.Event(telemetry.EventProbeMiss) == 0 {
		t.Errorf("telemetry: failover=%d miss=%d",
			metrics.Event(telemetry.EventFailover), metrics.Event(telemetry.EventProbeMiss))
	}

	// Phase 3: probing recovers against the backup, and data flows there.
	sim.RunUntil(175 * time.Millisecond)
	if !local.Alive() {
		t.Error("probing did not recover on the backup")
	}
	inner := dipPacket(t)
	local.Send(inner)
	cancel() // stop the (otherwise unbounded) probe timer chain
	sim.Run()
	if len(delivered) != 1 || !bytes.Equal(delivered[0], inner) {
		t.Fatalf("backup delivered %d packets", len(delivered))
	}
}

func TestProbeRepliesNeverReachDeliver(t *testing.T) {
	sim := netsim.New()
	var delivered int
	a := &Endpoint{Local: [4]byte{1, 1, 1, 1}, Remote: [4]byte{2, 2, 2, 2},
		Deliver: func([]byte) { delivered++ }}
	b := &Endpoint{Local: [4]byte{2, 2, 2, 2}, Remote: [4]byte{1, 1, 1, 1},
		Deliver: func([]byte) { delivered++ }}
	// Wire a and b back-to-back.
	a.Carrier = CarrierFunc(func(p []byte) {
		cp := append([]byte(nil), p...)
		sim.Schedule(0, func() { b.Receive(cp) })
	})
	b.Carrier = CarrierFunc(func(p []byte) {
		cp := append([]byte(nil), p...)
		sim.Schedule(0, func() { a.Receive(cp) })
	})
	cancel := a.StartProbing(sim, 5*time.Millisecond, 3)
	sim.RunUntil(40 * time.Millisecond)
	cancel()
	if delivered != 0 {
		t.Errorf("probe traffic leaked into Deliver %d times", delivered)
	}
	if a.ProbesAcked == 0 {
		t.Error("no probe acked over a healthy loop")
	}
	if a.Received != 0 || b.Received != 0 {
		t.Error("probes counted as data packets")
	}
}

func TestProbeParseRejectsCorruption(t *testing.T) {
	pkt, err := buildProbe(probeRequest, 42, [4]byte{1, 1, 1, 1}, [4]byte{2, 2, 2, 2}, 64)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ip.Parse4(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if kind, seq, err := parseProbe(h.Payload()); err != nil || kind != probeRequest || seq != 42 {
		t.Fatalf("round trip: kind=%d seq=%d err=%v", kind, seq, err)
	}
	if _, _, err := parseProbe([]byte("short")); err == nil {
		t.Error("short probe accepted")
	}
	bad := append([]byte(nil), h.Payload()...)
	bad[0] ^= 0xFF
	if _, _, err := parseProbe(bad); err == nil {
		t.Error("bad magic accepted")
	}
	badKind := append([]byte(nil), h.Payload()...)
	badKind[6] = 9
	if _, _, err := parseProbe(badKind); err == nil {
		t.Error("bad kind accepted")
	}
}
