package cc

import "time"

// Config tunes one flow's controller. Zero values select the defaults
// noted on each field.
type Config struct {
	// Algo selects the window discipline (default AlgoAIMD).
	Algo Algo
	// InitCwnd is the initial congestion window in segments (default 2).
	InitCwnd int
	// MaxCwnd caps the window (default 256).
	MaxCwnd int
	// FastConvergence enables CUBIC's shrinking-wMax heuristic for flows
	// competing on a shrinking bottleneck (default off; AlgoCUBIC only).
	FastConvergence bool
	// RTT bounds the adaptive timeout estimator. For AlgoBlind the
	// estimator still runs (so telemetry shows sRTT) but the timeout is
	// always RTT.InitRTO with per-flow exponential backoff — the blind
	// fixed-timeout baseline.
	RTT RTTConfig
	// CutInterval suppresses repeated multiplicative decreases within one
	// loss event: after a cut, further timeouts within CutInterval (or,
	// when zero, within the current sRTT — falling back to RTO before any
	// sample) back off the timer but do not cut again. One congestion
	// event, one decrease, exactly as TCP treats a loss burst within one
	// window.
	CutInterval time.Duration
}

func (c *Config) fill() {
	if c.InitCwnd == 0 {
		c.InitCwnd = 2
	}
	if c.MaxCwnd == 0 {
		c.MaxCwnd = 256
	}
	if c.MaxCwnd < c.InitCwnd {
		c.MaxCwnd = c.InitCwnd
	}
	c.RTT.fill()
}

// Snapshot is one flow's controller state, for telemetry export and the
// journey/flight-recorder surfaces.
type Snapshot struct {
	Algo     Algo
	Cwnd     int
	CwndF    float64
	SSThresh float64
	SRTT     time.Duration
	RTTVar   time.Duration
	RTO      time.Duration
	Cuts     int64
	Samples  int64
}

// Flow is one consumer→producer path's congestion state: an RTT estimator
// plus a congestion window. It is not internally locked — the fetcher that
// owns it already serializes (netsim runs single-goroutine; SegFetcher
// locks around it) — and none of its methods allocate.
type Flow struct {
	cfg Config
	rtt RTTEstimator
	win window
	// lastCut gates decrease-once-per-event (see Config.CutInterval).
	lastCut time.Duration
	everCut bool
}

// NewFlow builds a flow controller.
func NewFlow(cfg Config) *Flow {
	f := &Flow{}
	f.Init(cfg)
	return f
}

// Init (re)initializes f in place — fleets embed Flows by value to keep
// tens of thousands of consumers allocation-flat.
func (f *Flow) Init(cfg Config) {
	cfg.fill()
	*f = Flow{cfg: cfg}
	f.rtt = *NewRTTEstimator(cfg.RTT)
	f.win.init(cfg.Algo, float64(cfg.InitCwnd), float64(cfg.MaxCwnd), cfg.FastConvergence)
}

// Cwnd returns the integer window: how many segments may be in flight.
func (f *Flow) Cwnd() int {
	c := int(f.win.cwnd)
	if c < 1 {
		c = 1
	}
	return c
}

// RTO returns the current retransmission timeout: adaptive for
// AIMD/CUBIC, the fixed InitRTO (with Karn backoff) for AlgoBlind.
func (f *Flow) RTO() time.Duration {
	if f.cfg.Algo == AlgoBlind {
		// The estimator still tracks sRTT for observability, but the
		// timeout ignores it: clamp-then-shift exactly as the adaptive
		// path does, so blind backoff cannot overflow either.
		e := RTTEstimator{cfg: f.rtt.cfg, backoff: f.rtt.backoff}
		return e.RTO()
	}
	return f.rtt.RTO()
}

// OnSatisfy folds in one satisfied segment at virtual time now. rtt is
// the measured round trip, or ≤ 0 when the sample must be discarded under
// Karn's rule (the segment was ever retransmitted). The window grows on
// every satisfy; the estimator only on valid samples.
func (f *Flow) OnSatisfy(now time.Duration, rtt time.Duration) {
	if rtt > 0 {
		f.rtt.Sample(rtt)
	}
	f.win.increase(now, f.rtt.SRTT())
}

// OnTimeout reacts to one segment's retransmission timer firing at
// virtual time now: the RTO backs off (Karn), and — at most once per
// congestion event — the window is cut. It reports whether this timeout
// cut the window, so callers can count multiplicative-decrease events.
func (f *Flow) OnTimeout(now time.Duration) (cut bool) {
	f.rtt.Backoff()
	if f.cfg.Algo == AlgoBlind {
		return false
	}
	guard := f.cfg.CutInterval
	if guard == 0 {
		guard = f.rtt.SRTT()
		if guard == 0 {
			guard = f.rtt.RTO()
		}
	}
	if f.everCut && now-f.lastCut < guard {
		return false
	}
	if f.win.decrease(now) {
		f.lastCut = now
		f.everCut = true
		return true
	}
	return false
}

// Snapshot captures the controller state.
func (f *Flow) Snapshot() Snapshot {
	return Snapshot{
		Algo:     f.cfg.Algo,
		Cwnd:     f.Cwnd(),
		CwndF:    f.win.cwnd,
		SSThresh: f.win.ssthresh,
		SRTT:     f.rtt.SRTT(),
		RTTVar:   f.rtt.RTTVar(),
		RTO:      f.RTO(),
		Cuts:     f.win.cuts,
		Samples:  f.rtt.Samples(),
	}
}
