package cc

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// floatOracle is the straightforward float64 realization of RFC 6298 the
// fixed-point estimator must track.
type floatOracle struct {
	cfg     RTTConfig
	srtt    float64
	rttvar  float64
	sampled bool
	backoff uint
}

func (o *floatOracle) sample(rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	r := float64(rtt)
	if !o.sampled {
		o.srtt = r
		o.rttvar = r / 2
		o.sampled = true
	} else {
		o.rttvar = 0.75*o.rttvar + 0.25*math.Abs(o.srtt-r)
		o.srtt = 0.875*o.srtt + 0.125*r
	}
	o.backoff = 0
}

func (o *floatOracle) rto() time.Duration {
	var rto float64
	if !o.sampled {
		rto = float64(o.cfg.InitRTO)
	} else {
		v := 4 * o.rttvar
		if v < float64(o.cfg.Granularity) {
			v = float64(o.cfg.Granularity)
		}
		rto = o.srtt + v
	}
	rto = math.Min(math.Max(rto, float64(o.cfg.MinRTO)), float64(o.cfg.MaxRTO))
	rto = math.Min(rto*math.Pow(2, float64(o.backoff)), float64(o.cfg.MaxRTO))
	return time.Duration(rto)
}

// TestRTOPropertyVsFloatOracle drives the integer estimator and the float
// oracle with the same random sample stream — including Karn-excluded
// retransmit samples, which neither side may fold in — and requires the
// estimates to stay within the fixed-point rounding envelope.
func TestRTOPropertyVsFloatOracle(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 2024, 99999} {
		rng := rand.New(rand.NewSource(seed))
		cfg := RTTConfig{InitRTO: time.Second, MinRTO: time.Millisecond,
			MaxRTO: 10 * time.Second, Granularity: time.Millisecond}
		est := NewRTTEstimator(cfg)
		oracle := &floatOracle{cfg: est.cfg}

		for i := 0; i < 5000; i++ {
			switch rng.Intn(10) {
			case 0:
				// Genuine timeout: both back off.
				est.Backoff()
				oracle.backoff++
			case 1:
				// A sample from a retransmitted segment: Karn's rule says
				// discard. The caller realizes that by not calling Sample
				// at all — the estimator state must be unaffected.
				_ = time.Duration(rng.Int63n(int64(200 * time.Millisecond)))
			default:
				rtt := time.Duration(1+rng.Int63n(int64(300*time.Millisecond))) *
					time.Nanosecond
				est.Sample(rtt)
				oracle.sample(rtt)
			}

			// Fixed-point truncation loses at most a few ns per update and
			// the error does not accumulate (the filters are contractive);
			// 0.1% + 1µs covers it with a wide margin.
			tol := func(a, b time.Duration) bool {
				d := float64(a - b)
				return math.Abs(d) <= math.Max(1e3, 0.001*math.Abs(float64(b)))
			}
			if !tol(est.SRTT(), time.Duration(oracle.srtt)) {
				t.Fatalf("seed %d step %d: sRTT %v vs oracle %v", seed, i, est.SRTT(), time.Duration(oracle.srtt))
			}
			if !tol(est.RTTVar(), time.Duration(oracle.rttvar)) {
				t.Fatalf("seed %d step %d: RTTVAR %v vs oracle %v", seed, i, est.RTTVar(), time.Duration(oracle.rttvar))
			}
			if !tol(est.RTO(), oracle.rto()) {
				t.Fatalf("seed %d step %d: RTO %v vs oracle %v", seed, i, est.RTO(), oracle.rto())
			}
		}
	}
}

// TestRFC6298Behavior pins the spec-mandated behaviors table-driven:
// initial RTO, the first-sample rule, backoff doubling, clamps, and the
// backoff reset on a fresh sample.
func TestRFC6298Behavior(t *testing.T) {
	cfg := RTTConfig{InitRTO: time.Second, MinRTO: 100 * time.Millisecond,
		MaxRTO: 4 * time.Second, Granularity: time.Millisecond}

	t.Run("initial RTO before any sample", func(t *testing.T) {
		e := NewRTTEstimator(cfg)
		if got := e.RTO(); got != time.Second {
			t.Fatalf("RTO = %v, want 1s", got)
		}
	})

	t.Run("first sample sets sRTT=R RTTVAR=R/2", func(t *testing.T) {
		e := NewRTTEstimator(cfg)
		e.Sample(200 * time.Millisecond)
		if got := e.SRTT(); got != 200*time.Millisecond {
			t.Fatalf("sRTT = %v, want 200ms", got)
		}
		if got := e.RTTVar(); got != 100*time.Millisecond {
			t.Fatalf("RTTVAR = %v, want 100ms", got)
		}
		// RTO = 200ms + 4·100ms = 600ms.
		if got := e.RTO(); got != 600*time.Millisecond {
			t.Fatalf("RTO = %v, want 600ms", got)
		}
	})

	t.Run("steady samples converge and MinRTO floors", func(t *testing.T) {
		e := NewRTTEstimator(cfg)
		for i := 0; i < 200; i++ {
			e.Sample(10 * time.Millisecond)
		}
		// Variance decays toward zero; sRTT + max(G, 4·var) ≈ 11ms, below
		// the 100ms floor.
		if got := e.RTO(); got != cfg.MinRTO {
			t.Fatalf("RTO = %v, want floor %v", got, cfg.MinRTO)
		}
	})

	t.Run("backoff doubles then clamps at MaxRTO", func(t *testing.T) {
		e := NewRTTEstimator(cfg)
		e.Sample(200 * time.Millisecond) // RTO 600ms
		steps := []time.Duration{
			1200 * time.Millisecond,
			2400 * time.Millisecond,
			4 * time.Second, // 4800ms clamps to MaxRTO
			4 * time.Second, // and stays clamped
		}
		for i, want := range steps {
			e.Backoff()
			if got := e.RTO(); got != want {
				t.Fatalf("backoff %d: RTO = %v, want %v", i+1, got, want)
			}
		}
	})

	t.Run("huge backoff cannot overflow", func(t *testing.T) {
		e := NewRTTEstimator(cfg)
		e.Sample(time.Second)
		for i := 0; i < 500; i++ {
			e.Backoff()
		}
		if got := e.RTO(); got != cfg.MaxRTO {
			t.Fatalf("RTO after 500 backoffs = %v, want MaxRTO %v", got, cfg.MaxRTO)
		}
	})

	t.Run("valid sample resets backoff", func(t *testing.T) {
		e := NewRTTEstimator(cfg)
		e.Sample(200 * time.Millisecond)
		e.Backoff()
		e.Backoff()
		if got := e.RTO(); got != 2400*time.Millisecond {
			t.Fatalf("backed-off RTO = %v, want 2.4s", got)
		}
		e.Sample(200 * time.Millisecond)
		if got, max := e.RTO(), 700*time.Millisecond; got > max {
			t.Fatalf("RTO after fresh sample = %v, want un-backed-off (≤ %v)", got, max)
		}
	})

	t.Run("non-positive samples ignored", func(t *testing.T) {
		e := NewRTTEstimator(cfg)
		e.Sample(0)
		e.Sample(-time.Second)
		if e.Samples() != 0 || e.RTO() != cfg.InitRTO {
			t.Fatalf("bogus samples changed state: n=%d RTO=%v", e.Samples(), e.RTO())
		}
	})
}
