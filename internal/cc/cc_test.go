package cc

import (
	"testing"
	"time"
)

func TestAIMDSlowStartThenAdditive(t *testing.T) {
	f := NewFlow(Config{Algo: AlgoAIMD, InitCwnd: 2, MaxCwnd: 64})
	now := time.Duration(0)
	rtt := 10 * time.Millisecond

	// Slow start: exponential per-RTT growth realized as +1 per satisfy.
	for i := 0; i < 10; i++ {
		f.OnSatisfy(now, rtt)
		now += time.Millisecond
	}
	if got := f.Cwnd(); got != 12 {
		t.Fatalf("slow-start cwnd = %d, want 12", got)
	}

	// A timeout cuts multiplicatively and exits slow start.
	if !f.OnTimeout(now) {
		t.Fatal("first timeout did not cut the window")
	}
	if got := f.Cwnd(); got != 6 {
		t.Fatalf("post-cut cwnd = %d, want 6", got)
	}

	// Congestion avoidance: ~1/cwnd per satisfy — one full window of
	// satisfies grows the window by about one segment.
	before := f.Snapshot().CwndF
	for i := 0; i < f.Cwnd(); i++ {
		f.OnSatisfy(now, rtt)
		now += time.Millisecond
	}
	after := f.Snapshot().CwndF
	if grow := after - before; grow < 0.8 || grow > 1.3 {
		t.Fatalf("one window of satisfies grew cwnd by %.2f, want ≈1", grow)
	}
}

func TestCutOncePerCongestionEvent(t *testing.T) {
	f := NewFlow(Config{Algo: AlgoAIMD, InitCwnd: 32, MaxCwnd: 64,
		CutInterval: 50 * time.Millisecond})
	now := 100 * time.Millisecond
	f.OnSatisfy(now, 10*time.Millisecond)

	if !f.OnTimeout(now) {
		t.Fatal("first timeout should cut")
	}
	// A burst of timeouts within the guard interval is one loss event.
	for i := 0; i < 5; i++ {
		if f.OnTimeout(now + time.Duration(i)*time.Millisecond) {
			t.Fatal("timeout inside CutInterval cut again")
		}
	}
	if got := f.Snapshot().Cuts; got != 1 {
		t.Fatalf("cuts = %d, want 1", got)
	}
	// Past the guard: a new event cuts again.
	if !f.OnTimeout(now + 60*time.Millisecond) {
		t.Fatal("timeout after CutInterval should cut")
	}
}

func TestCubicGrowsTowardAndPastWMax(t *testing.T) {
	f := NewFlow(Config{Algo: AlgoCUBIC, InitCwnd: 2, MaxCwnd: 1 << 16})
	rtt := 20 * time.Millisecond
	now := time.Duration(0)

	// Grow to a plateau, then cut: wMax anchors at the pre-cut window.
	for f.Cwnd() < 100 {
		f.OnSatisfy(now, rtt)
		now += time.Millisecond
	}
	f.OnTimeout(now)
	cutAt := f.Snapshot()
	if cutAt.Cwnd >= 100 {
		t.Fatalf("cwnd did not decrease: %d", cutAt.Cwnd)
	}

	// Drive satisfies over simulated time: the window must recover to the
	// old maximum and then keep probing beyond it.
	deadline := now + 30*time.Second
	for f.Cwnd() <= 110 && now < deadline {
		f.OnSatisfy(now, rtt)
		now += 5 * time.Millisecond
	}
	if f.Cwnd() <= 110 {
		t.Fatalf("CUBIC never probed past wMax: cwnd=%d after %v", f.Cwnd(), now)
	}
}

func TestCubicFastConvergenceShrinksAnchor(t *testing.T) {
	mk := func(fast bool) float64 {
		f := NewFlow(Config{Algo: AlgoCUBIC, InitCwnd: 64, MaxCwnd: 1 << 16,
			FastConvergence: fast, CutInterval: time.Millisecond})
		// First cut anchors wMax at 64; second cut arrives before the
		// window regains it.
		f.OnTimeout(100 * time.Millisecond)
		f.OnTimeout(200 * time.Millisecond)
		return f.win.wMax
	}
	if plain, fast := mk(false), mk(true); fast >= plain {
		t.Fatalf("fast convergence anchor %.1f not below plain %.1f", fast, plain)
	}
}

func TestBlindNeverAdaptsButBacksOff(t *testing.T) {
	f := NewFlow(Config{Algo: AlgoBlind, InitCwnd: 16, MaxCwnd: 16,
		RTT: RTTConfig{InitRTO: 50 * time.Millisecond, MinRTO: time.Millisecond,
			MaxRTO: time.Second}})
	now := time.Duration(0)
	for i := 0; i < 100; i++ {
		f.OnSatisfy(now, 5*time.Millisecond)
		now += time.Millisecond
	}
	if got := f.Cwnd(); got != 16 {
		t.Fatalf("blind window moved: %d", got)
	}
	// RTO stays at the fixed initial value despite 5ms measured RTTs...
	if got := f.RTO(); got != 50*time.Millisecond {
		t.Fatalf("blind RTO = %v, want fixed 50ms", got)
	}
	// ...timeouts back it off exponentially without cutting the window...
	if f.OnTimeout(now) {
		t.Fatal("blind mode cut the window")
	}
	if got := f.RTO(); got != 100*time.Millisecond {
		t.Fatalf("blind backed-off RTO = %v, want 100ms", got)
	}
	// ...and the estimator still tracked sRTT for observability.
	if got := f.Snapshot().SRTT; got != 5*time.Millisecond {
		t.Fatalf("blind sRTT = %v, want 5ms", got)
	}
	if got := f.Cwnd(); got != 16 {
		t.Fatalf("blind window moved after timeout: %d", got)
	}
}

// TestZeroAllocSatisfyPath pins the acceptance criterion: the per-satisfy
// controller update (and the timeout path) must be ≤ 1 alloc amortized —
// in fact zero.
func TestZeroAllocSatisfyPath(t *testing.T) {
	for _, algo := range []Algo{AlgoAIMD, AlgoCUBIC, AlgoBlind} {
		f := NewFlow(Config{Algo: algo, InitCwnd: 2, MaxCwnd: 1 << 20})
		now := time.Duration(0)
		if n := testing.AllocsPerRun(1000, func() {
			now += time.Millisecond
			f.OnSatisfy(now, 10*time.Millisecond)
		}); n != 0 {
			t.Errorf("%v OnSatisfy allocates %.2f/op, want 0", algo, n)
		}
		if n := testing.AllocsPerRun(1000, func() {
			now += 100 * time.Millisecond
			f.OnTimeout(now)
			_ = f.RTO()
			_ = f.Cwnd()
		}); n != 0 {
			t.Errorf("%v OnTimeout+RTO allocates %.2f/op, want 0", algo, n)
		}
	}
}
