package cc

import (
	"math"
	"time"
)

// Algo selects the congestion-window discipline.
type Algo uint8

// Window disciplines.
const (
	// AlgoAIMD: slow start to ssthresh, then additive increase of one
	// segment per window (cwnd += 1/cwnd per satisfy); multiplicative
	// decrease by Beta on loss. The TCP-Reno shape.
	AlgoAIMD Algo = iota
	// AlgoCUBIC: slow start to ssthresh, then CUBIC growth — the window
	// follows a cubic curve anchored at the last decrease point, probing
	// conservatively near the old maximum and aggressively beyond it
	// (after ndn-dpdk's fetch logic / RFC 8312), with fast convergence.
	AlgoCUBIC
	// AlgoBlind: no congestion response at all — a fixed window and a
	// fixed timeout. This is the pre-cc Fetcher behavior kept as the
	// experimental baseline; under overload it retransmits into the very
	// queues that are dropping it.
	AlgoBlind
)

// String names the discipline.
func (a Algo) String() string {
	switch a {
	case AlgoAIMD:
		return "aimd"
	case AlgoCUBIC:
		return "cubic"
	case AlgoBlind:
		return "blind"
	}
	return "algo(?)"
}

// CUBIC constants per RFC 8312: C scales the cubic term (windows per
// second cubed), Beta is the multiplicative-decrease factor.
const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

// aimdBeta is the Reno multiplicative-decrease factor.
const aimdBeta = 0.5

// window is the shared window state. cwnd is float64 so additive increase
// accumulates fractional growth exactly (cwnd += 1/cwnd); the fetcher
// reads the integer floor.
type window struct {
	algo     Algo
	cwnd     float64
	ssthresh float64
	maxCwnd  float64
	minCwnd  float64

	// CUBIC anchors.
	wMax         float64       // window just before the last decrease
	lastDecrease time.Duration // virtual time of the last decrease
	fastConverge bool

	cuts int64
}

func (w *window) init(algo Algo, initial, max float64, fastConverge bool) {
	w.algo = algo
	w.cwnd = initial
	w.minCwnd = 1
	w.maxCwnd = max
	w.ssthresh = max // slow start until the first loss event
	w.wMax = initial
	w.fastConverge = fastConverge
}

// increase grows the window for one satisfied segment. rtt is the flow's
// current smoothed RTT (CUBIC's growth is time-based); now is virtual
// time.
func (w *window) increase(now time.Duration, rtt time.Duration) {
	switch w.algo {
	case AlgoBlind:
		return
	case AlgoAIMD:
		if w.cwnd < w.ssthresh {
			w.cwnd++ // slow start: one segment per satisfy
		} else {
			w.cwnd += 1 / w.cwnd // congestion avoidance
		}
	case AlgoCUBIC:
		if w.cwnd < w.ssthresh {
			w.cwnd++
			break
		}
		// W(t) = C·(t − K)³ + wMax with K = ∛(wMax·(1−β)/C): concave
		// toward the old maximum, convex past it. Chase the curve one
		// RTT ahead, spreading the step across the current window.
		t := (now - w.lastDecrease).Seconds() + rtt.Seconds()
		k := math.Cbrt(w.wMax * (1 - cubicBeta) / cubicC)
		target := cubicC*(t-k)*(t-k)*(t-k) + w.wMax
		if target > w.cwnd {
			w.cwnd += (target - w.cwnd) / w.cwnd
		} else {
			// Below the curve (e.g. right after a decrease): stay at
			// least Reno-friendly.
			w.cwnd += 1 / (100 * w.cwnd)
		}
	}
	if w.cwnd > w.maxCwnd {
		w.cwnd = w.maxCwnd
	}
}

// decrease shrinks the window multiplicatively for one loss event,
// reporting whether anything changed (AlgoBlind never decreases).
func (w *window) decrease(now time.Duration) bool {
	switch w.algo {
	case AlgoBlind:
		return false
	case AlgoAIMD:
		w.cwnd *= aimdBeta
	case AlgoCUBIC:
		if w.fastConverge && w.cwnd < w.wMax {
			// Loss before regaining the old maximum: the available
			// bandwidth shrank, so remember an even smaller anchor to
			// release the share faster (RFC 8312 §4.6).
			w.wMax = w.cwnd * (2 - cubicBeta) / 2
		} else {
			w.wMax = w.cwnd
		}
		w.lastDecrease = now
		w.cwnd *= cubicBeta
	}
	if w.cwnd < w.minCwnd {
		w.cwnd = w.minCwnd
	}
	w.ssthresh = w.cwnd
	if w.ssthresh < 2 {
		w.ssthresh = 2
	}
	w.cuts++
	return true
}
