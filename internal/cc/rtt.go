// Package cc is the per-flow congestion controller behind the host's
// segmented fetcher: Jacobson/Karn round-trip estimation with an adaptive
// retransmission timeout (RFC 6298), and a congestion window that grows
// additively on satisfaction and shrinks multiplicatively on loss (classic
// AIMD, with a CUBIC growth option modeled on ndn-dpdk's fetch logic).
//
// The package is deliberately clock-agnostic: every method that depends on
// time takes `now` explicitly, so the same controller runs under netsim
// virtual time (deterministic chaos tests, the consumer fleet) and under
// wall time (diphost against a live router). Nothing in here allocates on
// the per-packet paths — the fleet runs tens of thousands of flows and the
// zero-alloc pins in cc_test.go keep the update cost flat.
package cc

import "time"

// RTT estimator constants per RFC 6298: gains are 1/8 (sRTT) and 1/4
// (RTTVAR), RTO = sRTT + max(G, 4·RTTVAR). Arithmetic is integer
// nanoseconds with the same right-shift realization every TCP stack uses;
// rtt_test.go pins it against a float64 oracle.
const (
	srttShift   = 3 // alpha = 1/8
	rttvarShift = 2 // beta  = 1/4
	rtoK        = 4 // RTO = sRTT + K·RTTVAR
)

// RTTConfig bounds the estimator. Zero values select the defaults noted.
type RTTConfig struct {
	// InitRTO is the timeout before any sample exists (default 1s,
	// RFC 6298 §2.1; simulations usually set something path-scaled).
	InitRTO time.Duration
	// MinRTO floors the computed timeout (default 10ms).
	MinRTO time.Duration
	// MaxRTO caps the computed and backed-off timeout (default 8s).
	MaxRTO time.Duration
	// Granularity is the clock granularity G in RTO = sRTT + max(G,
	// 4·RTTVAR) (default 1ms).
	Granularity time.Duration
}

func (c *RTTConfig) fill() {
	if c.InitRTO == 0 {
		c.InitRTO = time.Second
	}
	if c.MinRTO == 0 {
		c.MinRTO = 10 * time.Millisecond
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 8 * time.Second
	}
	if c.Granularity == 0 {
		c.Granularity = time.Millisecond
	}
	if c.MaxRTO < c.MinRTO {
		c.MaxRTO = c.MinRTO
	}
}

// RTTEstimator tracks smoothed RTT and variance and derives the adaptive
// retransmission timeout. Karn's rule lives at the caller: samples from
// retransmitted packets must simply not be fed in (SegFetcher tags every
// in-flight segment with its attempt count and skips ambiguous ones).
type RTTEstimator struct {
	cfg RTTConfig
	// srtt and rttvar are scaled by 2^srttShift and 2^rttvarShift
	// respectively (the classic fixed-point trick: keeps the fractional
	// gain exact across integer updates).
	srtt    int64
	rttvar  int64
	sampled bool
	// backoff is the exponential-backoff shift applied on genuine timeout
	// (Karn). It resets as soon as a fresh, valid sample arrives.
	backoff uint
	nSample int64
}

// NewRTTEstimator returns an estimator in the pre-sample state: RTO is
// cfg.InitRTO until the first sample.
func NewRTTEstimator(cfg RTTConfig) *RTTEstimator {
	cfg.fill()
	return &RTTEstimator{cfg: cfg}
}

// Sample feeds one round-trip measurement. The caller enforces Karn's
// rule (never sample a retransmitted packet); Sample itself ignores
// non-positive measurements. A valid sample resets the timeout backoff.
func (e *RTTEstimator) Sample(rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	r := int64(rtt)
	if !e.sampled {
		// First measurement (RFC 6298 §2.2): sRTT = R, RTTVAR = R/2.
		e.srtt = r << srttShift
		e.rttvar = (r / 2) << rttvarShift
		e.sampled = true
	} else {
		// RTTVAR = (1-β)·RTTVAR + β·|sRTT − R|
		diff := (e.srtt >> srttShift) - r
		if diff < 0 {
			diff = -diff
		}
		e.rttvar += diff - (e.rttvar >> rttvarShift)
		// sRTT = (1-α)·sRTT + α·R
		e.srtt += r - (e.srtt >> srttShift)
	}
	e.backoff = 0
	e.nSample++
}

// Backoff doubles the effective RTO after a genuine timeout (Karn's
// algorithm: the backed-off value sticks until a valid sample arrives).
// The shift saturates so pathological loss runs cannot overflow.
func (e *RTTEstimator) Backoff() {
	if e.backoff < 62 {
		e.backoff++
	}
}

// SRTT returns the smoothed round-trip estimate (0 before any sample).
func (e *RTTEstimator) SRTT() time.Duration {
	return time.Duration(e.srtt >> srttShift)
}

// RTTVar returns the smoothed deviation estimate (0 before any sample).
func (e *RTTEstimator) RTTVar() time.Duration {
	return time.Duration(e.rttvar >> rttvarShift)
}

// Samples returns how many valid measurements have been folded in.
func (e *RTTEstimator) Samples() int64 { return e.nSample }

// RTO returns the current retransmission timeout: InitRTO before the first
// sample, otherwise sRTT + max(G, 4·RTTVAR), clamped to [MinRTO, MaxRTO],
// then shifted by the Karn backoff (also clamped to MaxRTO). Clamping
// happens before the shift is applied, so an absurd backoff can never
// overflow time.Duration.
func (e *RTTEstimator) RTO() time.Duration {
	var rto time.Duration
	if !e.sampled {
		rto = e.cfg.InitRTO
	} else {
		v := time.Duration(e.rttvar>>rttvarShift) * rtoK
		if v < e.cfg.Granularity {
			v = e.cfg.Granularity
		}
		rto = time.Duration(e.srtt>>srttShift) + v
	}
	if rto < e.cfg.MinRTO {
		rto = e.cfg.MinRTO
	}
	if rto > e.cfg.MaxRTO {
		rto = e.cfg.MaxRTO
	}
	// Apply the backoff without overflowing: once the shifted value would
	// exceed MaxRTO there is no point computing it.
	for s := e.backoff; s > 0; s-- {
		if rto >= e.cfg.MaxRTO/2 {
			return e.cfg.MaxRTO
		}
		rto *= 2
	}
	if rto > e.cfg.MaxRTO {
		rto = e.cfg.MaxRTO
	}
	return rto
}
