package guard

import (
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
)

// Capture is one quarantined packet: the bytes that crashed a worker, where
// they came from, and the panic they caused. The packet is a copy — the
// original buffer may have been half-mutated by the pipeline before it
// died.
type Capture struct {
	// Seq is the capture's position in the quarantine's lifetime count
	// (monotone; gaps mean the ring wrapped).
	Seq int64
	// InPort is the ingress port the packet arrived on.
	InPort int
	// Packet is a copy of the offending bytes.
	Packet []byte
	// Panic is the recovered panic value, stringified.
	Panic string
	// Stack is the crashing worker's stack trace.
	Stack string
}

// String renders the capture in dipdump-compatible form: '#'-prefixed
// annotation lines (metadata and stack) around one hex-encoded packet line,
// so a dumped quarantine pipes straight into `dipdump` for dissection.
func (c Capture) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# quarantine seq=%d inport=%d bytes=%d panic=%q\n",
		c.Seq, c.InPort, len(c.Packet), c.Panic)
	fmt.Fprintf(&b, "%s\n", hex.EncodeToString(c.Packet))
	for _, line := range strings.Split(strings.TrimRight(c.Stack, "\n"), "\n") {
		fmt.Fprintf(&b, "# %s\n", line)
	}
	return b.String()
}

// Quarantine is a bounded ring of poison-packet captures. One malformed
// packet costs one packet: the worker recovers, the evidence lands here,
// and the ring's bound means even a stream of poison cannot grow memory.
// Safe for concurrent use.
type Quarantine struct {
	mu    sync.Mutex
	ring  []Capture
	next  int
	total int64
}

// DefaultQuarantineSlots is the ring capacity used when none is given.
const DefaultQuarantineSlots = 16

// NewQuarantine returns a ring holding the last n captures (n < 1 uses
// DefaultQuarantineSlots).
func NewQuarantine(n int) *Quarantine {
	if n < 1 {
		n = DefaultQuarantineSlots
	}
	return &Quarantine{ring: make([]Capture, 0, n)}
}

// Add records a capture, overwriting the oldest once the ring is full. The
// capture's Seq is assigned here.
func (q *Quarantine) Add(c Capture) {
	q.mu.Lock()
	defer q.mu.Unlock()
	c.Seq = q.total
	q.total++
	if len(q.ring) < cap(q.ring) {
		q.ring = append(q.ring, c)
		return
	}
	q.ring[q.next] = c
	q.next = (q.next + 1) % cap(q.ring)
}

// Snapshot returns the retained captures, oldest first.
func (q *Quarantine) Snapshot() []Capture {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Capture, 0, len(q.ring))
	out = append(out, q.ring[q.next:]...)
	out = append(out, q.ring[:q.next]...)
	return out
}

// Total returns how many packets have ever been quarantined (retained or
// overwritten).
func (q *Quarantine) Total() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.total
}

// Dump writes every retained capture in dipdump-compatible form.
func (q *Quarantine) Dump() string {
	var b strings.Builder
	for _, c := range q.Snapshot() {
		b.WriteString(c.String())
	}
	return b.String()
}
