// Package guard implements the router's ingress protection layer: traffic
// classification, token-bucket admission control, and the poison-packet
// quarantine. It sits between raw packet arrival (Ingress.Submit) and the
// forwarding pipeline (HandlePacket), so overload and hostile input are
// policed before they can consume worker time or shared table state —
// policing and isolation as first-class dataplane stages, the way NFV
// forwarders treat them, rather than afterthoughts.
//
// Everything is driven by an injected clock returning elapsed time, so the
// same limiters run deterministically under the netsim virtual clock and on
// wall time in a live deployment.
package guard

import (
	"sync"
	"sync/atomic"
	"time"
)

// Class is an admission priority class. Two classes keep the policy
// legible: control traffic that keeps the network converging is protected,
// bulk data sheds first under pressure.
type Class uint8

const (
	// ClassBulk is ordinary data-plane traffic. It fills the low-priority
	// queue and is the first thing shed under overload.
	ClassBulk Class = iota
	// ClassControl is control/probe/signalling traffic (FN-unsupported
	// notifications, tunnel liveness probes). It fills the high-priority
	// queue and is served before any bulk packet.
	ClassControl
	numClasses
)

// NumClasses is the count of distinct classes, for counter arrays.
const NumClasses = int(numClasses)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassBulk:
		return "bulk"
	case ClassControl:
		return "control"
	}
	return "class(?)"
}

// Control next-header / protocol numbers recognized by the default
// classifier. These mirror profiles.NHFNUnsupported and ip.ProtoDIP*,
// restated here as raw bytes so classification needs no parsing and no
// package dependencies.
const (
	nhFNUnsupported = 0xFE
	protoDIP        = 0xFD
	nhRouteExchange = 0xFC
	dipVersion      = 1
	ipv4Version     = 4
)

// Classify reports the admission class of a raw packet without a full
// parse: DIP packets whose next header carries FN-unsupported signalling or
// tunnel control, and IPv4 packets carrying DIP probes/tunnels, are
// control; everything else — including garbage — is bulk. Malformed bytes
// must never be promoted: the cheap path for an attacker would otherwise be
// a forged control byte, so the check is deliberately narrow.
func Classify(pkt []byte) Class {
	if len(pkt) < 2 {
		return ClassBulk
	}
	switch pkt[0] {
	case dipVersion:
		if pkt[1] == nhFNUnsupported || pkt[1] == protoDIP || pkt[1] == nhRouteExchange {
			return ClassControl
		}
	default:
		// Outer IPv4 (tunnel overlay): protocol byte at offset 9.
		if pkt[0]>>4 == ipv4Version && len(pkt) >= 20 {
			if p := pkt[9]; p == nhFNUnsupported || p == protoDIP {
				return ClassControl
			}
		}
	}
	return ClassBulk
}

// Rate is a token-bucket configuration: a sustained rate in packets per
// second and a burst allowance. The zero Rate means "unlimited".
type Rate struct {
	PerSec float64
	Burst  float64
}

// unlimited reports whether the rate imposes no limit.
func (r Rate) unlimited() bool { return r.PerSec <= 0 }

// TokenBucket is a deterministic token-bucket limiter. Time is supplied by
// the caller on every Allow, so the bucket itself holds no clock and runs
// identically under virtual and wall time.
type TokenBucket struct {
	rate   Rate
	mu     sync.Mutex
	tokens float64
	last   time.Duration
}

// NewTokenBucket returns a full bucket.
func NewTokenBucket(rate Rate) *TokenBucket {
	return &TokenBucket{rate: rate, tokens: rate.Burst}
}

// Allow takes one token at time now, reporting false when the bucket is
// empty. now must be monotone non-decreasing across calls (a regression is
// treated as "no time passed").
func (b *TokenBucket) Allow(now time.Duration) bool {
	if b.rate.unlimited() {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if now > b.last {
		b.tokens += (now - b.last).Seconds() * b.rate.PerSec
		if b.tokens > b.rate.Burst {
			b.tokens = b.rate.Burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// AllowN refills the bucket once at time now and takes up to n tokens,
// returning how many were granted (all n for an unlimited bucket). One
// lock round and one refill amortize a whole burst's admission; granting
// follows the same whole-token rule as Allow, so AllowN(now, n) admits
// exactly as many packets as n consecutive Allow(now) calls would.
func (b *TokenBucket) AllowN(now time.Duration, n int) int {
	if n <= 0 {
		return 0
	}
	if b.rate.unlimited() {
		return n
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if now > b.last {
		b.tokens += (now - b.last).Seconds() * b.rate.PerSec
		if b.tokens > b.rate.Burst {
			b.tokens = b.rate.Burst
		}
		b.last = now
	}
	grant := int(b.tokens)
	if grant > n {
		grant = n
	}
	if grant > 0 {
		b.tokens -= float64(grant)
	}
	return grant
}

// Policy configures admission control. Zero-valued rates are unlimited, so
// the zero Policy admits everything.
type Policy struct {
	// PerPort limits each ingress port independently — the per-source
	// policing that keeps one flooding neighbor from starving the rest.
	PerPort Rate
	// PerClass limits each traffic class across all ports.
	PerClass [NumClasses]Rate
}

// Admission is the bucket state for one router's ingress. Safe for
// concurrent use.
type Admission struct {
	policy Policy
	clock  func() time.Duration

	mu    sync.Mutex
	ports map[int]*TokenBucket

	class [NumClasses]*TokenBucket

	rejected      atomic.Int64
	portRejected  sync.Map // int → *atomic.Int64
	classRejected [NumClasses]atomic.Int64
}

// NewAdmission builds the admission state. clock returns elapsed time (the
// netsim Simulator's Now, or a wall-clock shim); nil means wall time from
// first use.
func NewAdmission(policy Policy, clock func() time.Duration) *Admission {
	if clock == nil {
		start := time.Now()
		clock = func() time.Duration { return time.Since(start) }
	}
	a := &Admission{policy: policy, clock: clock, ports: map[int]*TokenBucket{}}
	for c := 0; c < NumClasses; c++ {
		a.class[c] = NewTokenBucket(policy.PerClass[c])
	}
	return a
}

// Admit decides whether a packet arriving on inPort with class c may enter
// the queue, charging one token from the port bucket and the class bucket.
// A rejection is counted against both the port and the class.
func (a *Admission) Admit(inPort int, c Class) bool {
	now := a.clock()
	if !a.portBucket(inPort).Allow(now) || !a.class[c].Allow(now) {
		a.rejected.Add(1)
		a.classRejected[c].Add(1)
		ctr, _ := a.portRejected.LoadOrStore(inPort, new(atomic.Int64))
		ctr.(*atomic.Int64).Add(1)
		return false
	}
	return true
}

// AdmitBurst admits up to n same-class packets arriving on inPort with a
// single clock read and one refill per bucket, returning how many were
// admitted. It is the burst-path equivalent of n consecutive Admit calls:
// the port bucket is charged first and the class bucket only sees what
// the port granted, mirroring Admit's short-circuit order (a packet the
// port denies never touches the class bucket, while one the port grants
// and the class denies has spent its port token, exactly as in Admit).
// Every rejection is counted against both the port and the class.
func (a *Admission) AdmitBurst(inPort int, c Class, n int) int {
	if n <= 0 {
		return 0
	}
	now := a.clock()
	grant := a.portBucket(inPort).AllowN(now, n)
	grant = a.class[c].AllowN(now, grant)
	if rej := n - grant; rej > 0 {
		a.rejected.Add(int64(rej))
		a.classRejected[c].Add(int64(rej))
		ctr, _ := a.portRejected.LoadOrStore(inPort, new(atomic.Int64))
		ctr.(*atomic.Int64).Add(int64(rej))
	}
	return grant
}

func (a *Admission) portBucket(inPort int) *TokenBucket {
	a.mu.Lock()
	defer a.mu.Unlock()
	b, ok := a.ports[inPort]
	if !ok {
		b = NewTokenBucket(a.policy.PerPort)
		a.ports[inPort] = b
	}
	return b
}

// Rejected returns the total number of packets admission turned away.
func (a *Admission) Rejected() int64 { return a.rejected.Load() }

// RejectedOnPort returns the rejection count charged to one ingress port.
func (a *Admission) RejectedOnPort(inPort int) int64 {
	if ctr, ok := a.portRejected.Load(inPort); ok {
		return ctr.(*atomic.Int64).Load()
	}
	return 0
}

// RejectedInClass returns the rejection count charged to one class.
func (a *Admission) RejectedInClass(c Class) int64 {
	if int(c) >= NumClasses {
		return 0
	}
	return a.classRejected[c].Load()
}
