package guard

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTokenBucketDeterministicRefill(t *testing.T) {
	b := NewTokenBucket(Rate{PerSec: 10, Burst: 2})
	now := time.Duration(0)
	// Burst drains first.
	if !b.Allow(now) || !b.Allow(now) {
		t.Fatal("burst tokens refused")
	}
	if b.Allow(now) {
		t.Fatal("empty bucket admitted")
	}
	// 10/s → one token every 100ms.
	now += 99 * time.Millisecond
	if b.Allow(now) {
		t.Fatal("token appeared 1ms early")
	}
	now += time.Millisecond
	if !b.Allow(now) {
		t.Fatal("refilled token refused")
	}
	// Refill never exceeds the burst.
	now += time.Hour
	if !b.Allow(now) || !b.Allow(now) {
		t.Fatal("burst after idle refused")
	}
	if b.Allow(now) {
		t.Fatal("idle refill exceeded burst")
	}
	// Clock regressions are tolerated (treated as no elapsed time).
	if b.Allow(now - time.Hour) {
		t.Fatal("clock regression minted tokens")
	}
}

func TestTokenBucketRefillsByDelta(t *testing.T) {
	// Regression: refill must use time elapsed SINCE THE LAST REFILL, not
	// the absolute clock reading. With a wall clock (large now values) the
	// absolute-time bug refilled the bucket to full burst on every call,
	// disabling admission control entirely in live deployments.
	b := NewTokenBucket(Rate{PerSec: 10, Burst: 5})
	now := time.Second // clock well past zero, as wall time always is
	for i := 0; i < 5; i++ {
		if !b.Allow(now) {
			t.Fatalf("burst token %d refused", i)
		}
	}
	// 100ms later exactly one token has accrued — not burst-many.
	now += 100 * time.Millisecond
	if !b.Allow(now) {
		t.Fatal("accrued token refused")
	}
	if b.Allow(now) {
		t.Fatal("refill credited more than the elapsed interval")
	}
}

func TestTokenBucketUnlimited(t *testing.T) {
	b := NewTokenBucket(Rate{})
	for i := 0; i < 1000; i++ {
		if !b.Allow(0) {
			t.Fatal("unlimited bucket refused")
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		pkt  []byte
		want Class
	}{
		{"empty", nil, ClassBulk},
		{"one byte", []byte{1}, ClassBulk},
		{"dip data", []byte{1, 0x00, 0, 64}, ClassBulk},
		{"dip fn-unsupported", []byte{1, 0xFE, 0, 64}, ClassControl},
		{"dip tunnel control", []byte{1, 0xFD, 0, 64}, ClassControl},
		{"dip route exchange", []byte{1, 0xFC, 0, 64}, ClassControl},
		{"ipv4 probe", append([]byte{0x45, 0, 0, 20, 0, 0, 0, 0, 64, 0xFE}, make([]byte, 10)...), ClassControl},
		{"ipv4 udp", append([]byte{0x45, 0, 0, 20, 0, 0, 0, 0, 64, 17}, make([]byte, 10)...), ClassBulk},
		{"short ipv4 probe", []byte{0x45, 0xFE}, ClassBulk},
		{"garbage", []byte{0xFF, 0xFE, 0xFD}, ClassBulk},
	}
	for _, c := range cases {
		if got := Classify(c.pkt); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestAdmissionIsolatesPorts(t *testing.T) {
	now := time.Duration(0)
	a := NewAdmission(Policy{PerPort: Rate{PerSec: 1, Burst: 5}}, func() time.Duration { return now })
	// Port 0 floods and exhausts its own bucket.
	admitted := 0
	for i := 0; i < 100; i++ {
		if a.Admit(0, ClassBulk) {
			admitted++
		}
	}
	if admitted != 5 {
		t.Errorf("flooding port admitted %d, want its burst of 5", admitted)
	}
	// Port 1 is untouched by port 0's exhaustion.
	for i := 0; i < 5; i++ {
		if !a.Admit(1, ClassBulk) {
			t.Fatalf("well-behaved port refused at packet %d", i)
		}
	}
	if a.Rejected() != 95 {
		t.Errorf("Rejected = %d, want 95", a.Rejected())
	}
	if a.RejectedOnPort(0) != 95 || a.RejectedOnPort(1) != 0 {
		t.Errorf("per-port rejections: port0=%d port1=%d", a.RejectedOnPort(0), a.RejectedOnPort(1))
	}
}

func TestAdmissionClassBuckets(t *testing.T) {
	var policy Policy
	policy.PerClass[ClassBulk] = Rate{PerSec: 1, Burst: 2}
	now := time.Duration(0)
	a := NewAdmission(policy, func() time.Duration { return now })
	if !a.Admit(0, ClassBulk) || !a.Admit(1, ClassBulk) {
		t.Fatal("bulk burst refused")
	}
	if a.Admit(2, ClassBulk) {
		t.Fatal("bulk admitted past the class limit")
	}
	// Control is not limited by the bulk bucket.
	for i := 0; i < 50; i++ {
		if !a.Admit(0, ClassControl) {
			t.Fatal("control refused by bulk class limit")
		}
	}
	if got := a.RejectedInClass(ClassBulk); got != 1 {
		t.Errorf("RejectedInClass(bulk) = %d, want 1", got)
	}
}

func TestAdmissionConcurrent(t *testing.T) {
	a := NewAdmission(Policy{PerPort: Rate{PerSec: 1000, Burst: 10}}, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a.Admit(g%4, Class(i%NumClasses))
			}
		}()
	}
	wg.Wait()
	if a.Rejected() == 0 {
		t.Error("concurrent flood never rejected")
	}
}

func TestQuarantineRingBoundsAndOrder(t *testing.T) {
	q := NewQuarantine(3)
	for i := 0; i < 5; i++ {
		q.Add(Capture{InPort: i, Packet: []byte{byte(i)}, Panic: fmt.Sprintf("p%d", i)})
	}
	if q.Total() != 5 {
		t.Errorf("Total = %d, want 5", q.Total())
	}
	snap := q.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("Snapshot holds %d, want ring cap 3", len(snap))
	}
	for i, c := range snap {
		wantSeq := int64(i + 2) // oldest retained is seq 2
		if c.Seq != wantSeq || c.InPort != int(wantSeq) {
			t.Errorf("snapshot[%d] = seq %d inport %d, want seq %d", i, c.Seq, c.InPort, wantSeq)
		}
	}
}

func TestCaptureDumpIsDipdumpCompatible(t *testing.T) {
	q := NewQuarantine(2)
	q.Add(Capture{InPort: 3, Packet: []byte{0x01, 0x02}, Panic: "boom", Stack: "goroutine 1\nmain.go:1"})
	dump := q.Dump()
	var hexLines, commentLines int
	for _, line := range strings.Split(strings.TrimRight(dump, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			commentLines++
			continue
		}
		hexLines++
		if line != "0102" {
			t.Errorf("hex line %q, want 0102", line)
		}
	}
	if hexLines != 1 || commentLines != 3 {
		t.Errorf("dump shape: %d hex lines, %d comments\n%s", hexLines, commentLines, dump)
	}
	if !strings.Contains(dump, `panic="boom"`) || !strings.Contains(dump, "inport=3") {
		t.Errorf("metadata missing from dump:\n%s", dump)
	}
}
