// Package lpm implements the longest-prefix-match structures that back DIP's
// forwarding operations: a path-compressed binary (patricia) trie over
// fixed-width bit strings for address lookup (F_32_match, F_128_match, and
// the FIB behind F_FIB when it holds numeric name IDs), and a component trie
// over hierarchical names for NDN-style content routing.
//
// Both tries are deliberately not goroutine-safe; forwarding tables in this
// codebase follow the read-mostly pattern where the control plane swaps whole
// tables and the data plane reads without locks (see internal/fib).
package lpm

import "fmt"

// MaxKeyBits is the widest supported key (IPv6 / 128-bit name IDs).
const MaxKeyBits = 128

// BitTrie is a path-compressed binary trie mapping bit-string prefixes to
// values of type V. The zero value is not usable; call NewBitTrie.
type BitTrie[V any] struct {
	root *bnode[V]
	size int
}

type bnode[V any] struct {
	// frag holds this node's path fragment, MSB-aligned.
	frag  [MaxKeyBits / 8]byte
	flen  uint16 // fragment length in bits
	has   bool
	val   V
	child [2]*bnode[V]
}

// NewBitTrie returns an empty trie.
func NewBitTrie[V any]() *BitTrie[V] {
	return &BitTrie[V]{root: &bnode[V]{}}
}

// Len returns the number of stored prefixes.
func (t *BitTrie[V]) Len() int { return t.size }

func bitAt(key []byte, i int) int {
	return int(key[i>>3]>>(7-uint(i&7))) & 1
}

func fragBitAt(n *[MaxKeyBits / 8]byte, i int) int {
	return int(n[i>>3]>>(7-uint(i&7))) & 1
}

func setFragBit(n *[MaxKeyBits / 8]byte, i, v int) {
	mask := byte(1) << (7 - uint(i&7))
	if v != 0 {
		n[i>>3] |= mask
	} else {
		n[i>>3] &^= mask
	}
}

// Insert stores v under the prefix formed by the first plen bits of key.
// It replaces any existing value for that exact prefix and reports whether
// the prefix was newly created.
func (t *BitTrie[V]) Insert(key []byte, plen int, v V) (created bool, err error) {
	if err := checkKey(key, plen); err != nil {
		return false, err
	}
	n := t.root
	depth := 0
	for {
		// Match this node's fragment against key[depth:plen].
		common := 0
		for common < int(n.flen) && depth+common < plen &&
			fragBitAt(&n.frag, common) == bitAt(key, depth+common) {
			common++
		}
		if common < int(n.flen) {
			// Split the node at `common`.
			t.splitNode(n, common)
			// After split, n holds the common fragment and one child.
			if depth+common == plen {
				n.has = true
				n.val = v
				t.size++
				return true, nil
			}
			leaf := newLeaf[V](key, depth+common, plen, v)
			n.child[bitAt(key, depth+common)] = leaf
			t.size++
			return true, nil
		}
		depth += int(n.flen)
		if depth == plen {
			if !n.has {
				t.size++
				created = true
			}
			n.has = true
			n.val = v
			return created, nil
		}
		b := bitAt(key, depth)
		if n.child[b] == nil {
			n.child[b] = newLeaf[V](key, depth, plen, v)
			t.size++
			return true, nil
		}
		n = n.child[b]
	}
}

// splitNode turns n (fragment F, length L) into a node with fragment F[:at]
// whose single child carries F[at:] along with n's previous value/children.
func (t *BitTrie[V]) splitNode(n *bnode[V], at int) {
	rest := &bnode[V]{flen: n.flen - uint16(at), has: n.has, val: n.val, child: n.child}
	for i := 0; i < int(rest.flen); i++ {
		setFragBit(&rest.frag, i, fragBitAt(&n.frag, at+i))
	}
	firstBit := fragBitAt(&n.frag, at)
	var zero V
	n.flen = uint16(at)
	for i := at; i < MaxKeyBits; i++ {
		setFragBit(&n.frag, i, 0)
	}
	n.has = false
	n.val = zero
	n.child = [2]*bnode[V]{}
	n.child[firstBit] = rest
}

func newLeaf[V any](key []byte, from, plen int, v V) *bnode[V] {
	leaf := &bnode[V]{flen: uint16(plen - from), has: true, val: v}
	for i := 0; i < plen-from; i++ {
		setFragBit(&leaf.frag, i, bitAt(key, from+i))
	}
	return leaf
}

// Lookup returns the value of the longest stored prefix matching the first
// keylen bits of key, along with that prefix's length.
func (t *BitTrie[V]) Lookup(key []byte, keylen int) (v V, plen int, ok bool) {
	if checkKey(key, keylen) != nil {
		return v, 0, false
	}
	n := t.root
	depth := 0
	for {
		for i := 0; i < int(n.flen); i++ {
			if depth+i >= keylen || fragBitAt(&n.frag, i) != bitAt(key, depth+i) {
				return v, plen, ok
			}
		}
		depth += int(n.flen)
		if n.has {
			v, plen, ok = n.val, depth, true
		}
		if depth >= keylen {
			return v, plen, ok
		}
		next := n.child[bitAt(key, depth)]
		if next == nil {
			return v, plen, ok
		}
		n = next
	}
}

// Get returns the value stored at exactly (key, plen).
func (t *BitTrie[V]) Get(key []byte, plen int) (v V, ok bool) {
	got, gotLen, ok := t.Lookup(key, plen)
	if !ok || gotLen != plen {
		var zero V
		return zero, false
	}
	return got, true
}

// Delete removes the exact prefix (key, plen) and reports whether it existed.
func (t *BitTrie[V]) Delete(key []byte, plen int) bool {
	if checkKey(key, plen) != nil {
		return false
	}
	var parent *bnode[V]
	parentBit := 0
	n := t.root
	depth := 0
	for {
		for i := 0; i < int(n.flen); i++ {
			if depth+i >= plen || fragBitAt(&n.frag, i) != bitAt(key, depth+i) {
				return false
			}
		}
		depth += int(n.flen)
		if depth == plen {
			if !n.has {
				return false
			}
			var zero V
			n.has = false
			n.val = zero
			t.size--
			t.compact(parent, parentBit, n)
			return true
		}
		b := bitAt(key, depth)
		if n.child[b] == nil {
			return false
		}
		parent, parentBit = n, b
		n = n.child[b]
	}
}

// compact merges n into its single child (or removes it) after deletion.
func (t *BitTrie[V]) compact(parent *bnode[V], parentBit int, n *bnode[V]) {
	if n.has || parent == nil {
		return
	}
	c0, c1 := n.child[0], n.child[1]
	switch {
	case c0 == nil && c1 == nil:
		parent.child[parentBit] = nil
		// The parent may itself now be a pass-through; one level of cleanup
		// is enough to keep the trie correct (not minimal), and repeated
		// deletes keep it bounded.
	case c0 != nil && c1 == nil:
		mergeInto(n, c0)
		parent.child[parentBit] = n
	case c0 == nil && c1 != nil:
		mergeInto(n, c1)
		parent.child[parentBit] = n
	}
}

// mergeInto appends child's fragment (and state) onto n.
func mergeInto[V any](n, child *bnode[V]) {
	for i := 0; i < int(child.flen); i++ {
		setFragBit(&n.frag, int(n.flen)+i, fragBitAt(&child.frag, i))
	}
	n.flen += child.flen
	n.has = child.has
	n.val = child.val
	n.child = child.child
}

// Walk calls fn for every stored prefix in unspecified order. Returning
// false from fn stops the walk.
func (t *BitTrie[V]) Walk(fn func(key []byte, plen int, v V) bool) {
	var key [MaxKeyBits / 8]byte
	t.walk(t.root, key, 0, fn)
}

func (t *BitTrie[V]) walk(n *bnode[V], key [MaxKeyBits / 8]byte, depth int, fn func([]byte, int, V) bool) bool {
	if n == nil {
		return true
	}
	for i := 0; i < int(n.flen); i++ {
		setKeyBit(&key, depth+i, fragBitAt(&n.frag, i))
	}
	depth += int(n.flen)
	if n.has {
		kb := make([]byte, (depth+7)/8)
		copy(kb, key[:])
		if !fn(kb, depth, n.val) {
			return false
		}
	}
	return t.walk(n.child[0], key, depth, fn) && t.walk(n.child[1], key, depth, fn)
}

func setKeyBit(k *[MaxKeyBits / 8]byte, i, v int) {
	mask := byte(1) << (7 - uint(i&7))
	if v != 0 {
		k[i>>3] |= mask
	} else {
		k[i>>3] &^= mask
	}
}

func checkKey(key []byte, plen int) error {
	if plen < 0 || plen > MaxKeyBits {
		return fmt.Errorf("lpm: prefix length %d out of [0,%d]", plen, MaxKeyBits)
	}
	if len(key)*8 < plen {
		return fmt.Errorf("lpm: key %d bytes too short for /%d", len(key), plen)
	}
	return nil
}
