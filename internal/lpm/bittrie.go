// Package lpm implements the longest-prefix-match structures that back DIP's
// forwarding operations: a path-compressed binary (patricia) trie over
// fixed-width bit strings for address lookup (F_32_match, F_128_match, and
// the FIB behind F_FIB when it holds numeric name IDs), and a component trie
// over hierarchical names for NDN-style content routing.
//
// Both tries offer two mutation disciplines. The plain Insert/Delete methods
// mutate in place and are not goroutine-safe; they suit single-owner tables
// and bulk loads. The InsertCOW/DeleteCOW variants never touch the receiver:
// they copy only the nodes along the affected path and return a new trie
// sharing every untouched subtree, so a published trie is immutable and the
// data plane reads it without locks or fences while the control plane swaps
// whole tables (internal/fib implements exactly that RCU discipline).
//
// Fragment comparison runs a byte at a time — whole-byte XOR with
// bits.LeadingZeros8 locating the divergence — so a lookup at 10⁶ routes
// costs ~flen/8 compares per level instead of flen.
package lpm

import (
	"fmt"
	"math/bits"
)

// MaxKeyBits is the widest supported key (IPv6 / 128-bit name IDs).
const MaxKeyBits = 128

// BitTrie is a path-compressed binary trie mapping bit-string prefixes to
// values of type V. The zero value is not usable; call NewBitTrie.
type BitTrie[V any] struct {
	root *bnode[V]
	size int
}

type bnode[V any] struct {
	// frag holds this node's path fragment, MSB-aligned. Bits at and beyond
	// flen are always zero (splitNode and mergeInto maintain this), which is
	// what lets the comparator work in whole bytes.
	frag  [MaxKeyBits / 8]byte
	flen  uint16 // fragment length in bits
	has   bool
	val   V
	child [2]*bnode[V]
}

// clone returns a shallow copy of n: same fragment and value, sharing the
// child pointers. The copy-on-write paths clone every node they mutate.
func (n *bnode[V]) clone() *bnode[V] {
	c := *n
	return &c
}

// NewBitTrie returns an empty trie.
func NewBitTrie[V any]() *BitTrie[V] {
	return &BitTrie[V]{root: &bnode[V]{}}
}

// Len returns the number of stored prefixes.
func (t *BitTrie[V]) Len() int { return t.size }

func bitAt(key []byte, i int) int {
	return int(key[i>>3]>>(7-uint(i&7))) & 1
}

func fragBitAt(n *[MaxKeyBits / 8]byte, i int) int {
	return int(n[i>>3]>>(7-uint(i&7))) & 1
}

func setFragBit(n *[MaxKeyBits / 8]byte, i, v int) {
	mask := byte(1) << (7 - uint(i&7))
	if v != 0 {
		n[i>>3] |= mask
	} else {
		n[i>>3] &^= mask
	}
}

// keyBitsAt returns up to 8 key bits starting at bit position bp,
// MSB-aligned. Bits past nbits are unspecified; callers mask or bound them.
// The caller guarantees bp+nbits ≤ len(key)*8, which (checked against both
// operands' widths) keeps the second byte read in bounds.
func keyBitsAt(key []byte, bp, nbits int) byte {
	sh := uint(bp) & 7
	b := key[bp>>3] << sh
	if sh != 0 && int(sh)+nbits > 8 {
		b |= key[bp>>3+1] >> (8 - sh)
	}
	return b
}

// commonBits returns how many leading bits (at most limit) of the node
// fragment agree with key starting at bit offset depth. Whole bytes compare
// with a single XOR and bits.LeadingZeros8 locates the divergence; only a
// ragged tail narrower than a byte needs the masked form.
func commonBits(frag *[MaxKeyBits / 8]byte, key []byte, depth, limit int) int {
	n := 0
	for n+8 <= limit {
		if x := frag[n>>3] ^ keyBitsAt(key, depth+n, 8); x != 0 {
			return n + bits.LeadingZeros8(x)
		}
		n += 8
	}
	if r := limit - n; r > 0 {
		x := frag[n>>3] ^ keyBitsAt(key, depth+n, r)
		if lz := bits.LeadingZeros8(x); lz < r {
			return n + lz
		}
	}
	return limit
}

// Insert stores v under the prefix formed by the first plen bits of key.
// It replaces any existing value for that exact prefix and reports whether
// the prefix was newly created. Insert mutates the trie in place; use
// InsertCOW for the copy-on-write discipline.
func (t *BitTrie[V]) Insert(key []byte, plen int, v V) (created bool, err error) {
	if err := checkKey(key, plen); err != nil {
		return false, err
	}
	n := t.root
	depth := 0
	for {
		// Match this node's fragment against key[depth:plen].
		limit := plen - depth
		if limit > int(n.flen) {
			limit = int(n.flen)
		}
		common := commonBits(&n.frag, key, depth, limit)
		if common < int(n.flen) {
			// Split the node at `common`.
			t.splitNode(n, common)
			// After split, n holds the common fragment and one child.
			if depth+common == plen {
				n.has = true
				n.val = v
				t.size++
				return true, nil
			}
			leaf := newLeaf[V](key, depth+common, plen, v)
			n.child[bitAt(key, depth+common)] = leaf
			t.size++
			return true, nil
		}
		depth += int(n.flen)
		if depth == plen {
			if !n.has {
				t.size++
				created = true
			}
			n.has = true
			n.val = v
			return created, nil
		}
		b := bitAt(key, depth)
		if n.child[b] == nil {
			n.child[b] = newLeaf[V](key, depth, plen, v)
			t.size++
			return true, nil
		}
		n = n.child[b]
	}
}

// InsertCOW is Insert under the copy-on-write discipline: the receiver is
// never modified; the returned trie shares every untouched subtree with it.
// Readers holding the old trie keep a consistent view indefinitely.
func (t *BitTrie[V]) InsertCOW(key []byte, plen int, v V) (nt *BitTrie[V], created bool, err error) {
	if err := checkKey(key, plen); err != nil {
		return t, false, err
	}
	nt = &BitTrie[V]{root: t.root.clone(), size: t.size}
	n := nt.root
	depth := 0
	for {
		limit := plen - depth
		if limit > int(n.flen) {
			limit = int(n.flen)
		}
		common := commonBits(&n.frag, key, depth, limit)
		if common < int(n.flen) {
			nt.splitNode(n, common) // n is a private clone; rest shares children
			if depth+common == plen {
				n.has = true
				n.val = v
				nt.size++
				return nt, true, nil
			}
			n.child[bitAt(key, depth+common)] = newLeaf[V](key, depth+common, plen, v)
			nt.size++
			return nt, true, nil
		}
		depth += int(n.flen)
		if depth == plen {
			if !n.has {
				nt.size++
				created = true
			}
			n.has = true
			n.val = v
			return nt, created, nil
		}
		b := bitAt(key, depth)
		if n.child[b] == nil {
			n.child[b] = newLeaf[V](key, depth, plen, v)
			nt.size++
			return nt, true, nil
		}
		n.child[b] = n.child[b].clone()
		n = n.child[b]
	}
}

// splitNode turns n (fragment F, length L) into a node with fragment F[:at]
// whose single child carries F[at:] along with n's previous value/children.
func (t *BitTrie[V]) splitNode(n *bnode[V], at int) {
	rest := &bnode[V]{flen: n.flen - uint16(at), has: n.has, val: n.val, child: n.child}
	for i := 0; i < int(rest.flen); i++ {
		setFragBit(&rest.frag, i, fragBitAt(&n.frag, at+i))
	}
	firstBit := fragBitAt(&n.frag, at)
	var zero V
	n.flen = uint16(at)
	for i := at; i < MaxKeyBits; i++ {
		setFragBit(&n.frag, i, 0)
	}
	n.has = false
	n.val = zero
	n.child = [2]*bnode[V]{}
	n.child[firstBit] = rest
}

func newLeaf[V any](key []byte, from, plen int, v V) *bnode[V] {
	leaf := &bnode[V]{flen: uint16(plen - from), has: true, val: v}
	for i := 0; i < plen-from; i++ {
		setFragBit(&leaf.frag, i, bitAt(key, from+i))
	}
	return leaf
}

// Lookup returns the value of the longest stored prefix matching the first
// keylen bits of key, along with that prefix's length. It touches no locks
// and never allocates, so any number of readers may run it concurrently
// against a published (immutable) trie.
func (t *BitTrie[V]) Lookup(key []byte, keylen int) (v V, plen int, ok bool) {
	if checkKey(key, keylen) != nil {
		return v, 0, false
	}
	n := t.root
	depth := 0
	for {
		if flen := int(n.flen); flen > 0 {
			// A fragment longer than the remaining key can never complete;
			// a divergence inside it ends the walk the same way — in both
			// cases the best match so far stands. The comparison is written
			// out here (rather than calling commonBits) because Lookup only
			// needs a yes/no and this loop is the forwarding hot path: the
			// first min(8,flen) bits — the whole fragment, for the short
			// fragments dense tries are made of — cost one XOR and shift;
			// only longer fragments enter the byte loop.
			if keylen-depth < flen {
				return v, plen, ok
			}
			m := flen
			if m > 8 {
				m = 8
			}
			if (n.frag[0]^keyBitsAt(key, depth, m))>>(8-uint(m)) != 0 {
				return v, plen, ok
			}
			for nb := 8; nb < flen; nb += 8 {
				if r := flen - nb; r < 8 {
					if (n.frag[nb>>3]^keyBitsAt(key, depth+nb, r))>>(8-uint(r)) != 0 {
						return v, plen, ok
					}
				} else if n.frag[nb>>3] != keyBitsAt(key, depth+nb, 8) {
					return v, plen, ok
				}
			}
		}
		depth += int(n.flen)
		if n.has {
			v, plen, ok = n.val, depth, true
		}
		if depth >= keylen {
			return v, plen, ok
		}
		next := n.child[bitAt(key, depth)]
		if next == nil {
			return v, plen, ok
		}
		n = next
	}
}

// Get returns the value stored at exactly (key, plen).
func (t *BitTrie[V]) Get(key []byte, plen int) (v V, ok bool) {
	got, gotLen, ok := t.Lookup(key, plen)
	if !ok || gotLen != plen {
		var zero V
		return zero, false
	}
	return got, true
}

// Delete removes the exact prefix (key, plen) and reports whether it
// existed. Delete mutates the trie in place; use DeleteCOW for the
// copy-on-write discipline.
func (t *BitTrie[V]) Delete(key []byte, plen int) bool {
	if checkKey(key, plen) != nil {
		return false
	}
	var parent *bnode[V]
	parentBit := 0
	n := t.root
	depth := 0
	for {
		if flen := int(n.flen); flen > 0 {
			limit := plen - depth
			if limit > flen {
				limit = flen
			}
			if commonBits(&n.frag, key, depth, limit) < flen {
				return false
			}
		}
		depth += int(n.flen)
		if depth == plen {
			if !n.has {
				return false
			}
			var zero V
			n.has = false
			n.val = zero
			t.size--
			t.compact(parent, parentBit, n)
			return true
		}
		b := bitAt(key, depth)
		if n.child[b] == nil {
			return false
		}
		parent, parentBit = n, b
		n = n.child[b]
	}
}

// DeleteCOW is Delete under the copy-on-write discipline: the receiver is
// never modified. When the prefix is absent it returns the receiver itself
// (no allocation); otherwise the returned trie shares every untouched
// subtree with the old one.
func (t *BitTrie[V]) DeleteCOW(key []byte, plen int) (*BitTrie[V], bool) {
	// Probe first so a miss costs no clones. Get is read-only.
	if _, ok := t.Get(key, plen); !ok {
		return t, false
	}
	nt := &BitTrie[V]{root: t.root.clone(), size: t.size}
	var parent *bnode[V]
	parentBit := 0
	n := nt.root
	depth := 0
	for {
		// The probe above proved the path exists and matches exactly.
		depth += int(n.flen)
		if depth == plen {
			var zero V
			n.has = false
			n.val = zero
			nt.size--
			nt.compact(parent, parentBit, n)
			return nt, true
		}
		b := bitAt(key, depth)
		parent, parentBit = n, b
		n.child[b] = n.child[b].clone()
		n = n.child[b]
	}
}

// compact merges n into its single child (or removes it) after deletion.
// n and parent are owned by the caller (freshly cloned on the COW path);
// the absorbed child is only read, never written, so it may be shared.
func (t *BitTrie[V]) compact(parent *bnode[V], parentBit int, n *bnode[V]) {
	if n.has || parent == nil {
		return
	}
	c0, c1 := n.child[0], n.child[1]
	switch {
	case c0 == nil && c1 == nil:
		parent.child[parentBit] = nil
		// The parent may itself now be a pass-through; one level of cleanup
		// is enough to keep the trie correct (not minimal), and repeated
		// deletes keep it bounded.
	case c0 != nil && c1 == nil:
		mergeInto(n, c0)
		parent.child[parentBit] = n
	case c0 == nil && c1 != nil:
		mergeInto(n, c1)
		parent.child[parentBit] = n
	}
}

// mergeInto appends child's fragment (and state) onto n. child is read-only
// here: COW deletions pass shared children.
func mergeInto[V any](n, child *bnode[V]) {
	for i := 0; i < int(child.flen); i++ {
		setFragBit(&n.frag, int(n.flen)+i, fragBitAt(&child.frag, i))
	}
	n.flen += child.flen
	n.has = child.has
	n.val = child.val
	n.child = child.child
}

// Walk calls fn for every stored prefix in unspecified order. Returning
// false from fn stops the walk.
func (t *BitTrie[V]) Walk(fn func(key []byte, plen int, v V) bool) {
	var key [MaxKeyBits / 8]byte
	t.walk(t.root, key, 0, fn)
}

func (t *BitTrie[V]) walk(n *bnode[V], key [MaxKeyBits / 8]byte, depth int, fn func([]byte, int, V) bool) bool {
	if n == nil {
		return true
	}
	for i := 0; i < int(n.flen); i++ {
		setKeyBit(&key, depth+i, fragBitAt(&n.frag, i))
	}
	depth += int(n.flen)
	if n.has {
		kb := make([]byte, (depth+7)/8)
		copy(kb, key[:])
		if !fn(kb, depth, n.val) {
			return false
		}
	}
	return t.walk(n.child[0], key, depth, fn) && t.walk(n.child[1], key, depth, fn)
}

func setKeyBit(k *[MaxKeyBits / 8]byte, i, v int) {
	mask := byte(1) << (7 - uint(i&7))
	if v != 0 {
		k[i>>3] |= mask
	} else {
		k[i>>3] &^= mask
	}
}

func checkKey(key []byte, plen int) error {
	if plen < 0 || plen > MaxKeyBits {
		return fmt.Errorf("lpm: prefix length %d out of [0,%d]", plen, MaxKeyBits)
	}
	if len(key)*8 < plen {
		return fmt.Errorf("lpm: key %d bytes too short for /%d", len(key), plen)
	}
	return nil
}
