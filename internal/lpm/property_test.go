package lpm

import (
	"fmt"
	"math/rand"
	"testing"
)

// oracleKey identifies one (prefix, plen) route in the reference model.
type oracleKey struct {
	prefix [MaxKeyBits / 8]byte
	plen   int
}

// oracle is the obviously-correct LPM reference: a flat map of routes,
// looked up by scanning every prefix length from longest to shortest.
type oracle struct {
	routes map[oracleKey]int
}

func newOracle() *oracle { return &oracle{routes: map[oracleKey]int{}} }

func propMaskKey(key []byte, plen int) (k oracleKey) {
	k.plen = plen
	copy(k.prefix[:], key)
	// Zero bits beyond plen so equal prefixes compare equal.
	for i := plen; i < MaxKeyBits; i++ {
		k.prefix[i>>3] &^= 0x80 >> (uint(i) & 7)
	}
	return k
}

func (o *oracle) insert(key []byte, plen, v int) bool {
	k := propMaskKey(key, plen)
	_, existed := o.routes[k]
	o.routes[k] = v
	return !existed
}

func (o *oracle) delete(key []byte, plen int) bool {
	k := propMaskKey(key, plen)
	_, existed := o.routes[k]
	delete(o.routes, k)
	return existed
}

func (o *oracle) lookup(key []byte, keylen int) (v, plen int, ok bool) {
	for l := keylen; l >= 0; l-- {
		if got, hit := o.routes[propMaskKey(key, l)]; hit {
			return got, l, true
		}
	}
	return 0, 0, false
}

// randKey draws a key biased toward shared prefixes so the trie actually
// exercises splitNode, compact, and mergeInto rather than degenerating into
// disjoint leaves.
func randKey(rng *rand.Rand, buf []byte) ([]byte, int) {
	nbytes := 4
	if rng.Intn(2) == 1 {
		nbytes = 16
	}
	key := buf[:nbytes]
	if rng.Intn(3) > 0 {
		// Cluster: few distinct leading bytes, random tail.
		key[0] = byte(rng.Intn(4))
		for i := 1; i < nbytes; i++ {
			key[i] = byte(rng.Intn(8))
		}
	} else {
		for i := range key {
			key[i] = byte(rng.Uint32())
		}
	}
	plen := rng.Intn(nbytes*8 + 1)
	return key, plen
}

// TestBitTriePropertyVsOracle drives randomized interleaved Insert, Delete
// and Lookup through both the trie and the flat-map oracle and demands they
// agree at every step — including the created/removed results and Len.
func TestBitTriePropertyVsOracle(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			trie := NewBitTrie[int]()
			ref := newOracle()
			var buf [16]byte
			for step := 0; step < 5000; step++ {
				key, plen := randKey(rng, buf[:])
				switch rng.Intn(5) {
				case 0, 1: // insert
					v := rng.Intn(1 << 16)
					created, err := trie.Insert(key, plen, v)
					if err != nil {
						t.Fatalf("step %d: insert: %v", step, err)
					}
					if want := ref.insert(key, plen, v); created != want {
						t.Fatalf("step %d: insert(%x/%d) created=%v want %v", step, key, plen, created, want)
					}
				case 2: // delete
					removed := trie.Delete(key, plen)
					if want := ref.delete(key, plen); removed != want {
						t.Fatalf("step %d: delete(%x/%d) removed=%v want %v", step, key, plen, removed, want)
					}
				default: // lookup on a full-width key
					v, gotLen, ok := trie.Lookup(key, len(key)*8)
					wantV, wantLen, wantOK := ref.lookup(key, len(key)*8)
					if ok != wantOK || (ok && (v != wantV || gotLen != wantLen)) {
						t.Fatalf("step %d: lookup(%x) = (%d,/%d,%v) want (%d,/%d,%v)",
							step, key, v, gotLen, ok, wantV, wantLen, wantOK)
					}
				}
				if trie.Len() != len(ref.routes) {
					t.Fatalf("step %d: Len=%d oracle=%d", step, trie.Len(), len(ref.routes))
				}
			}
		})
	}
}

// TestBitTrieCOWPropertyVsOracle runs the same random workload through the
// copy-on-write mutators, checking both that the successor trie agrees with
// the oracle and that the predecessor snapshot is bit-for-bit unchanged —
// the invariant RCU readers depend on.
func TestBitTrieCOWPropertyVsOracle(t *testing.T) {
	for seed := int64(100); seed < 104; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			trie := NewBitTrie[int]()
			ref := newOracle()
			var buf [16]byte
			// probes re-checked against old snapshots after every mutation.
			type probe struct {
				key  []byte
				v    int
				plen int
				ok   bool
			}
			var snapshot *BitTrie[int]
			var probes []probe
			for step := 0; step < 2500; step++ {
				key, plen := randKey(rng, buf[:])
				switch rng.Intn(5) {
				case 0, 1:
					v := rng.Intn(1 << 16)
					nt, created, err := trie.InsertCOW(key, plen, v)
					if err != nil {
						t.Fatalf("step %d: insertCOW: %v", step, err)
					}
					if want := ref.insert(key, plen, v); created != want {
						t.Fatalf("step %d: insertCOW(%x/%d) created=%v want %v", step, key, plen, created, want)
					}
					trie = nt
				case 2:
					nt, removed := trie.DeleteCOW(key, plen)
					if want := ref.delete(key, plen); removed != want {
						t.Fatalf("step %d: deleteCOW(%x/%d) removed=%v want %v", step, key, plen, removed, want)
					}
					trie = nt
				default:
					v, gotLen, ok := trie.Lookup(key, len(key)*8)
					wantV, wantLen, wantOK := ref.lookup(key, len(key)*8)
					if ok != wantOK || (ok && (v != wantV || gotLen != wantLen)) {
						t.Fatalf("step %d: lookup(%x) = (%d,/%d,%v) want (%d,/%d,%v)",
							step, key, v, gotLen, ok, wantV, wantLen, wantOK)
					}
				}
				if trie.Len() != len(ref.routes) {
					t.Fatalf("step %d: Len=%d oracle=%d", step, trie.Len(), len(ref.routes))
				}
				// Old snapshots must never change under later COW mutations.
				if snapshot != nil {
					for _, p := range probes {
						v, gotLen, ok := snapshot.Lookup(p.key, len(p.key)*8)
						if ok != p.ok || (ok && (v != p.v || gotLen != p.plen)) {
							t.Fatalf("step %d: snapshot drifted for %x: (%d,/%d,%v) want (%d,/%d,%v)",
								step, p.key, v, gotLen, ok, p.v, p.plen, p.ok)
						}
					}
				}
				// Re-snapshot periodically with fresh probe keys.
				if step%500 == 0 {
					snapshot = trie
					probes = probes[:0]
					pr := rand.New(rand.NewSource(seed ^ int64(step)))
					var pbuf [16]byte
					for i := 0; i < 32; i++ {
						k, _ := randKey(pr, pbuf[:])
						kc := append([]byte(nil), k...)
						v, gotLen, ok := snapshot.Lookup(kc, len(kc)*8)
						probes = append(probes, probe{key: kc, v: v, plen: gotLen, ok: ok})
					}
				}
			}
		})
	}
}
