package lpm

// NameTrie is a longest-prefix-match trie over hierarchical names
// ("/com/example/video/1" → components ["com","example","video","1"]),
// the structure NDN FIBs use. Values attach to whole component prefixes;
// Lookup returns the value of the longest stored component prefix.
type NameTrie[V any] struct {
	root *nameNode[V]
	size int
}

type nameNode[V any] struct {
	children map[string]*nameNode[V]
	has      bool
	val      V
}

// NewNameTrie returns an empty name trie.
func NewNameTrie[V any]() *NameTrie[V] {
	return &NameTrie[V]{root: &nameNode[V]{}}
}

// clone returns a shallow copy of n with a private children map (the child
// nodes themselves stay shared until cloned in turn).
func (n *nameNode[V]) clone() *nameNode[V] {
	c := &nameNode[V]{has: n.has, val: n.val}
	if n.children != nil {
		c.children = make(map[string]*nameNode[V], len(n.children))
		for k, v := range n.children {
			c.children[k] = v
		}
	}
	return c
}

// Len returns the number of stored name prefixes.
func (t *NameTrie[V]) Len() int { return t.size }

// Insert stores v under the component prefix and reports whether the prefix
// was newly created. The empty prefix (root) is allowed and acts as a
// default route.
func (t *NameTrie[V]) Insert(components []string, v V) (created bool) {
	n := t.root
	for _, c := range components {
		if n.children == nil {
			n.children = make(map[string]*nameNode[V])
		}
		next, ok := n.children[c]
		if !ok {
			next = &nameNode[V]{}
			n.children[c] = next
		}
		n = next
	}
	if !n.has {
		t.size++
		created = true
	}
	n.has = true
	n.val = v
	return created
}

// Lookup returns the value of the longest stored prefix of components and
// the number of components it matched.
func (t *NameTrie[V]) Lookup(components []string) (v V, matched int, ok bool) {
	n := t.root
	if n.has {
		v, matched, ok = n.val, 0, true
	}
	for i, c := range components {
		next, found := n.children[c]
		if !found {
			return v, matched, ok
		}
		n = next
		if n.has {
			v, matched, ok = n.val, i+1, true
		}
	}
	return v, matched, ok
}

// Get returns the value stored at exactly the given component prefix.
func (t *NameTrie[V]) Get(components []string) (v V, ok bool) {
	n := t.root
	for _, c := range components {
		next, found := n.children[c]
		if !found {
			var zero V
			return zero, false
		}
		n = next
	}
	if !n.has {
		var zero V
		return zero, false
	}
	return n.val, true
}

// Delete removes the exact component prefix and reports whether it existed.
// Empty interior nodes are pruned.
func (t *NameTrie[V]) Delete(components []string) bool {
	return t.delete(t.root, components)
}

// InsertCOW is Insert under the copy-on-write discipline: the receiver is
// never modified; the returned trie shares every untouched subtree with it.
func (t *NameTrie[V]) InsertCOW(components []string, v V) (nt *NameTrie[V], created bool) {
	nt = &NameTrie[V]{root: t.root.clone(), size: t.size}
	n := nt.root
	for _, c := range components {
		if n.children == nil {
			n.children = make(map[string]*nameNode[V])
		}
		next, ok := n.children[c]
		if ok {
			next = next.clone()
		} else {
			next = &nameNode[V]{}
		}
		n.children[c] = next
		n = next
	}
	if !n.has {
		nt.size++
		created = true
	}
	n.has = true
	n.val = v
	return nt, created
}

// DeleteCOW is Delete under the copy-on-write discipline. When the prefix is
// absent it returns the receiver itself (no allocation).
func (t *NameTrie[V]) DeleteCOW(components []string) (*NameTrie[V], bool) {
	if _, ok := t.Get(components); !ok {
		return t, false
	}
	nt := &NameTrie[V]{root: t.root.clone(), size: t.size - 1}
	n := nt.root
	for _, c := range components {
		next := n.children[c].clone()
		n.children[c] = next
		n = next
	}
	var zero V
	n.has = false
	n.val = zero
	// Prune now-empty tail nodes so COW deletes stay as tidy as in-place
	// ones. Walk the cloned path again from the root.
	nt.prune(nt.root, components)
	return nt, true
}

// prune removes empty (valueless, childless) nodes along the cloned path.
func (t *NameTrie[V]) prune(n *nameNode[V], rest []string) bool {
	if len(rest) == 0 {
		return !n.has && len(n.children) == 0
	}
	child := n.children[rest[0]]
	if child != nil && t.prune(child, rest[1:]) {
		delete(n.children, rest[0])
	}
	return !n.has && len(n.children) == 0
}

func (t *NameTrie[V]) delete(n *nameNode[V], rest []string) bool {
	if len(rest) == 0 {
		if !n.has {
			return false
		}
		var zero V
		n.has = false
		n.val = zero
		t.size--
		return true
	}
	child, ok := n.children[rest[0]]
	if !ok {
		return false
	}
	deleted := t.delete(child, rest[1:])
	if deleted && !child.has && len(child.children) == 0 {
		delete(n.children, rest[0])
	}
	return deleted
}

// Walk visits every stored prefix in unspecified order; returning false
// stops the walk.
func (t *NameTrie[V]) Walk(fn func(components []string, v V) bool) {
	t.walk(t.root, nil, fn)
}

func (t *NameTrie[V]) walk(n *nameNode[V], prefix []string, fn func([]string, V) bool) bool {
	if n.has {
		cp := make([]string, len(prefix))
		copy(cp, prefix)
		if !fn(cp, n.val) {
			return false
		}
	}
	for c, child := range n.children {
		if !t.walk(child, append(prefix, c), fn) {
			return false
		}
	}
	return true
}
