package lpm

import (
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func ip4(a, b, c, d byte) []byte { return []byte{a, b, c, d} }

func TestBitTrieBasicIPv4(t *testing.T) {
	tr := NewBitTrie[string]()
	mustInsert(t, tr, ip4(10, 0, 0, 0), 8, "ten")
	mustInsert(t, tr, ip4(10, 1, 0, 0), 16, "ten-one")
	mustInsert(t, tr, ip4(10, 1, 2, 0), 24, "ten-one-two")
	mustInsert(t, tr, ip4(0, 0, 0, 0), 0, "default")

	cases := []struct {
		key  []byte
		want string
		plen int
	}{
		{ip4(10, 1, 2, 3), "ten-one-two", 24},
		{ip4(10, 1, 9, 9), "ten-one", 16},
		{ip4(10, 9, 9, 9), "ten", 8},
		{ip4(192, 168, 0, 1), "default", 0},
	}
	for _, c := range cases {
		v, plen, ok := tr.Lookup(c.key, 32)
		if !ok || v != c.want || plen != c.plen {
			t.Errorf("Lookup(%v) = (%q,%d,%v), want (%q,%d)", c.key, v, plen, ok, c.want, c.plen)
		}
	}
	if tr.Len() != 4 {
		t.Errorf("Len = %d, want 4", tr.Len())
	}
}

func TestBitTrieNoMatch(t *testing.T) {
	tr := NewBitTrie[int]()
	mustInsert(t, tr, ip4(10, 0, 0, 0), 8, 1)
	if _, _, ok := tr.Lookup(ip4(11, 0, 0, 1), 32); ok {
		t.Error("unexpected match")
	}
	// Empty trie.
	empty := NewBitTrie[int]()
	if _, _, ok := empty.Lookup(ip4(1, 2, 3, 4), 32); ok {
		t.Error("match in empty trie")
	}
}

func TestBitTrieReplace(t *testing.T) {
	tr := NewBitTrie[int]()
	created, err := tr.Insert(ip4(10, 0, 0, 0), 8, 1)
	if err != nil || !created {
		t.Fatalf("first insert: created=%v err=%v", created, err)
	}
	created, err = tr.Insert(ip4(10, 0, 0, 0), 8, 2)
	if err != nil || created {
		t.Fatalf("replace: created=%v err=%v", created, err)
	}
	v, _, _ := tr.Lookup(ip4(10, 1, 1, 1), 32)
	if v != 2 {
		t.Errorf("got %d after replace", v)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestBitTrieSplitPaths(t *testing.T) {
	// Force fragment splits: two prefixes diverging mid-fragment.
	tr := NewBitTrie[int]()
	mustInsert(t, tr, []byte{0b10101010, 0xFF}, 16, 1)
	mustInsert(t, tr, []byte{0b10101011, 0x00}, 16, 2) // diverges at bit 7
	mustInsert(t, tr, []byte{0b10101010}, 8, 3)        // prefix of the first
	v, plen, ok := tr.Lookup([]byte{0b10101010, 0xFF}, 16)
	if !ok || v != 1 || plen != 16 {
		t.Errorf("got (%d,%d,%v)", v, plen, ok)
	}
	v, plen, ok = tr.Lookup([]byte{0b10101010, 0x0F}, 16)
	if !ok || v != 3 || plen != 8 {
		t.Errorf("fallback got (%d,%d,%v), want (3,8)", v, plen, ok)
	}
	v, _, ok = tr.Lookup([]byte{0b10101011, 0x00}, 16)
	if !ok || v != 2 {
		t.Errorf("sibling got (%d,%v)", v, ok)
	}
}

func TestBitTrieExactGetDelete(t *testing.T) {
	tr := NewBitTrie[int]()
	mustInsert(t, tr, ip4(10, 0, 0, 0), 8, 1)
	mustInsert(t, tr, ip4(10, 1, 0, 0), 16, 2)
	if v, ok := tr.Get(ip4(10, 0, 0, 0), 8); !ok || v != 1 {
		t.Errorf("Get /8 = (%d,%v)", v, ok)
	}
	if _, ok := tr.Get(ip4(10, 0, 0, 0), 9); ok {
		t.Error("Get /9 should miss")
	}
	if !tr.Delete(ip4(10, 1, 0, 0), 16) {
		t.Fatal("delete existing failed")
	}
	if tr.Delete(ip4(10, 1, 0, 0), 16) {
		t.Error("double delete succeeded")
	}
	v, plen, ok := tr.Lookup(ip4(10, 1, 2, 3), 32)
	if !ok || v != 1 || plen != 8 {
		t.Errorf("after delete, got (%d,%d,%v)", v, plen, ok)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestBitTrieKeyValidation(t *testing.T) {
	tr := NewBitTrie[int]()
	if _, err := tr.Insert([]byte{1}, 16, 0); err == nil {
		t.Error("short key accepted")
	}
	if _, err := tr.Insert(make([]byte, 17), 136, 0); err == nil {
		t.Error(">128-bit prefix accepted")
	}
	if _, err := tr.Insert(nil, -1, 0); err == nil {
		t.Error("negative plen accepted")
	}
}

func TestBitTrie128Bit(t *testing.T) {
	tr := NewBitTrie[int]()
	k := make([]byte, 16)
	k[0] = 0x20
	k[1] = 0x01
	mustInsert(t, tr, k, 32, 6)
	mustInsert(t, tr, k, 128, 7)
	v, plen, ok := tr.Lookup(k, 128)
	if !ok || v != 7 || plen != 128 {
		t.Errorf("got (%d,%d,%v)", v, plen, ok)
	}
	k2 := append([]byte(nil), k...)
	k2[15] = 1
	v, plen, ok = tr.Lookup(k2, 128)
	if !ok || v != 6 || plen != 32 {
		t.Errorf("got (%d,%d,%v), want (6,32)", v, plen, ok)
	}
}

// Reference model: brute-force map of prefixes. Property: trie lookup agrees
// with the model for random inserts, deletes, and queries.
func TestBitTrieAgainstModelQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewBitTrie[uint32]()
		type pfx struct {
			key  [4]byte
			plen int
		}
		model := map[pfx]uint32{}
		for op := 0; op < 200; op++ {
			var k [4]byte
			binary.BigEndian.PutUint32(k[:], rng.Uint32()&0xFFFF0000|uint32(rng.Intn(4))) // cluster keys to force overlaps
			plen := rng.Intn(33)
			maskKey(k[:], plen)
			p := pfx{k, plen}
			switch rng.Intn(3) {
			case 0, 1:
				v := rng.Uint32()
				model[p] = v
				if _, err := tr.Insert(k[:], plen, v); err != nil {
					return false
				}
			case 2:
				_, existed := model[p]
				delete(model, p)
				if tr.Delete(k[:], plen) != existed {
					return false
				}
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		// Query random addresses and compare against brute force.
		for q := 0; q < 100; q++ {
			var k [4]byte
			binary.BigEndian.PutUint32(k[:], rng.Uint32())
			wantV, wantL, wantOK := uint32(0), -1, false
			for p, v := range model {
				if p.plen > wantL && prefixMatches(k[:], p.key[:], p.plen) {
					wantV, wantL, wantOK = v, p.plen, true
				}
			}
			gotV, gotL, gotOK := tr.Lookup(k[:], 32)
			if gotOK != wantOK {
				return false
			}
			if wantOK && (gotV != wantV || gotL != wantL) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func maskKey(k []byte, plen int) {
	for i := plen; i < len(k)*8; i++ {
		k[i>>3] &^= 1 << (7 - uint(i&7))
	}
}

func prefixMatches(key, prefix []byte, plen int) bool {
	for i := 0; i < plen; i++ {
		if bitAt(key, i) != bitAt(prefix, i) {
			return false
		}
	}
	return true
}

func TestBitTrieWalk(t *testing.T) {
	tr := NewBitTrie[int]()
	mustInsert(t, tr, ip4(10, 0, 0, 0), 8, 1)
	mustInsert(t, tr, ip4(10, 1, 0, 0), 16, 2)
	mustInsert(t, tr, ip4(192, 168, 0, 0), 16, 3)
	var got []int
	tr.Walk(func(key []byte, plen int, v int) bool {
		got = append(got, v)
		return true
	})
	sort.Ints(got)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("walk got %v", got)
	}
	// Early stop.
	count := 0
	tr.Walk(func([]byte, int, int) bool { count++; return false })
	if count != 1 {
		t.Errorf("early stop visited %d", count)
	}
}

func mustInsert[V any](t *testing.T, tr *BitTrie[V], key []byte, plen int, v V) {
	t.Helper()
	if _, err := tr.Insert(key, plen, v); err != nil {
		t.Fatalf("Insert(%v,/%d): %v", key, plen, err)
	}
}

func TestNameTrieBasic(t *testing.T) {
	tr := NewNameTrie[int]()
	tr.Insert([]string{"org", "hotnets"}, 1)
	tr.Insert([]string{"org", "hotnets", "papers"}, 2)
	tr.Insert([]string{"com"}, 3)

	v, n, ok := tr.Lookup([]string{"org", "hotnets", "papers", "dip"})
	if !ok || v != 2 || n != 3 {
		t.Errorf("got (%d,%d,%v)", v, n, ok)
	}
	v, n, ok = tr.Lookup([]string{"org", "hotnets", "cfp"})
	if !ok || v != 1 || n != 2 {
		t.Errorf("got (%d,%d,%v)", v, n, ok)
	}
	if _, _, ok = tr.Lookup([]string{"net", "x"}); ok {
		t.Error("unexpected match")
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestNameTrieRootDefault(t *testing.T) {
	tr := NewNameTrie[string]()
	tr.Insert(nil, "default")
	v, n, ok := tr.Lookup([]string{"anything"})
	if !ok || v != "default" || n != 0 {
		t.Errorf("got (%q,%d,%v)", v, n, ok)
	}
}

func TestNameTrieGetDelete(t *testing.T) {
	tr := NewNameTrie[int]()
	tr.Insert([]string{"a", "b"}, 1)
	tr.Insert([]string{"a", "b", "c"}, 2)
	if v, ok := tr.Get([]string{"a", "b"}); !ok || v != 1 {
		t.Errorf("Get = (%d,%v)", v, ok)
	}
	if _, ok := tr.Get([]string{"a"}); ok {
		t.Error("interior node should not Get")
	}
	if !tr.Delete([]string{"a", "b", "c"}) {
		t.Fatal("delete failed")
	}
	if tr.Delete([]string{"a", "b", "c"}) {
		t.Error("double delete")
	}
	if tr.Delete([]string{"z"}) {
		t.Error("deleting absent prefix succeeded")
	}
	v, n, ok := tr.Lookup([]string{"a", "b", "c", "d"})
	if !ok || v != 1 || n != 2 {
		t.Errorf("after delete got (%d,%d,%v)", v, n, ok)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestNameTrieReplace(t *testing.T) {
	tr := NewNameTrie[int]()
	if created := tr.Insert([]string{"a"}, 1); !created {
		t.Error("first insert not created")
	}
	if created := tr.Insert([]string{"a"}, 2); created {
		t.Error("replace reported created")
	}
	if v, _ := tr.Get([]string{"a"}); v != 2 {
		t.Errorf("got %d", v)
	}
}

func TestNameTrieWalk(t *testing.T) {
	tr := NewNameTrie[int]()
	tr.Insert([]string{"a"}, 1)
	tr.Insert([]string{"a", "b"}, 2)
	seen := map[int]int{}
	tr.Walk(func(c []string, v int) bool {
		seen[v] = len(c)
		return true
	})
	if len(seen) != 2 || seen[1] != 1 || seen[2] != 2 {
		t.Errorf("walk saw %v", seen)
	}
}

func BenchmarkBitTrieLookup1k(b *testing.B)   { benchLookup(b, 1_000) }
func BenchmarkBitTrieLookup100k(b *testing.B) { benchLookup(b, 100_000) }

func benchLookup(b *testing.B, routes int) {
	rng := rand.New(rand.NewSource(42))
	tr := NewBitTrie[uint32]()
	for i := 0; i < routes; i++ {
		var k [4]byte
		binary.BigEndian.PutUint32(k[:], rng.Uint32())
		plen := 8 + rng.Intn(25)
		maskKey(k[:], plen)
		tr.Insert(k[:], plen, uint32(i))
	}
	keys := make([][4]byte, 1024)
	for i := range keys {
		binary.BigEndian.PutUint32(keys[i][:], rng.Uint32())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&1023]
		tr.Lookup(k[:], 32)
	}
}
