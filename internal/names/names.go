// Package names handles hierarchical content names and their compact 32-bit
// wire identifiers.
//
// The DIP prototype forwards NDN packets on a 32-bit content name (paper
// §4.1: "we take the 32-bit content name for the packet forwarding with
// F_FIB and F_PIT"). Human-readable hierarchical names such as
// "/org/hotnets/papers/dip" are therefore mapped to 32-bit IDs for the wire;
// a Registry records the mapping so hosts and routers agree, and prefix IDs
// let the 32-bit FIB still perform meaningful longest-prefix matching: the
// ID of a name embeds the IDs of its prefixes bitwise, so LPM over IDs
// approximates LPM over names.
package names

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
)

// MaxComponents bounds the number of name components encoded into an ID.
const MaxComponents = 8

// ErrBadName reports a syntactically invalid name.
var ErrBadName = errors.New("names: invalid name")

// Name is a parsed hierarchical content name.
type Name struct {
	components []string
}

// Parse converts "/a/b/c" (or "a/b/c") into a Name. Empty components are
// rejected; the root name "/" has zero components.
func Parse(s string) (Name, error) {
	s = strings.TrimPrefix(s, "/")
	if s == "" {
		return Name{}, nil
	}
	parts := strings.Split(s, "/")
	for _, p := range parts {
		if p == "" {
			return Name{}, fmt.Errorf("%w: empty component in %q", ErrBadName, s)
		}
	}
	return Name{components: parts}, nil
}

// MustParse is Parse that panics on error, for tests and literals.
func MustParse(s string) Name {
	n, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return n
}

// FromComponents builds a Name from explicit components.
func FromComponents(components ...string) (Name, error) {
	for _, p := range components {
		if p == "" || strings.Contains(p, "/") {
			return Name{}, fmt.Errorf("%w: component %q", ErrBadName, p)
		}
	}
	return Name{components: append([]string(nil), components...)}, nil
}

// Components returns the name's components. The slice must not be modified.
func (n Name) Components() []string { return n.components }

// Len returns the number of components.
func (n Name) Len() int { return len(n.components) }

// String renders the canonical "/a/b/c" form; the root name renders as "/".
func (n Name) String() string {
	if len(n.components) == 0 {
		return "/"
	}
	return "/" + strings.Join(n.components, "/")
}

// Prefix returns the name truncated to k components.
func (n Name) Prefix(k int) Name {
	if k > len(n.components) {
		k = len(n.components)
	}
	if k < 0 {
		k = 0
	}
	return Name{components: n.components[:k]}
}

// IsPrefixOf reports whether n is a component-wise prefix of m.
func (n Name) IsPrefixOf(m Name) bool {
	if len(n.components) > len(m.components) {
		return false
	}
	for i, c := range n.components {
		if m.components[i] != c {
			return false
		}
	}
	return true
}

// Equal reports component-wise equality.
func (n Name) Equal(m Name) bool {
	if len(n.components) != len(m.components) {
		return false
	}
	for i, c := range n.components {
		if m.components[i] != c {
			return false
		}
	}
	return true
}

// ID computes the 32-bit wire identifier of a name. The ID is prefix-
// preserving: each component hashes to a fixed-width nibble group, so the
// first 4·k bits of ID(name) equal ID(prefix of k components) for k ≤ 8.
// This lets a 32-bit-keyed FIB emulate component LPM (with the hash-collision
// caveat documented in DESIGN.md).
func (n Name) ID() uint32 {
	var id uint32
	k := len(n.components)
	if k > MaxComponents {
		k = MaxComponents
	}
	for i := 0; i < k; i++ {
		h := fnv.New32a()
		// Include position so "/a/a" ≠ "/a" zero-extended by accident only.
		fmt.Fprintf(h, "%d/", i)
		h.Write([]byte(n.components[i]))
		nib := h.Sum32() & 0xF
		if nib == 0 {
			nib = 0xF // reserve 0 to mean "no component"
		}
		id |= nib << uint(28-4*i)
	}
	return id
}

// PrefixBits returns how many leading bits of the ID are determined by the
// name's components: 4 bits per component, capped at 32.
func (n Name) PrefixBits() int {
	k := len(n.components)
	if k > MaxComponents {
		k = MaxComponents
	}
	return 4 * k
}

// Registry maps 32-bit IDs back to full names so receivers can recover the
// human-readable name. It is safe for concurrent use.
type Registry struct {
	mu sync.RWMutex
	m  map[uint32]Name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[uint32]Name)}
}

// Register records name under its ID and returns the ID. Registering two
// different names with colliding IDs returns an error identifying the clash.
func (r *Registry) Register(n Name) (uint32, error) {
	id := n.ID()
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.m[id]; ok && !prev.Equal(n) {
		return 0, fmt.Errorf("names: ID %#08x collision between %s and %s", id, prev, n)
	}
	r.m[id] = n
	return id, nil
}

// Resolve returns the name registered under id.
func (r *Registry) Resolve(id uint32) (Name, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n, ok := r.m[id]
	return n, ok
}

// Names returns all registered names sorted by string form (for stable
// diagnostics output).
func (r *Registry) Names() []Name {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Name, 0, len(r.m))
	for _, n := range r.m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
