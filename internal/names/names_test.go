package names

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in      string
		want    string
		wantLen int
		err     bool
	}{
		{"/org/hotnets", "/org/hotnets", 2, false},
		{"org/hotnets", "/org/hotnets", 2, false},
		{"/", "/", 0, false},
		{"", "/", 0, false},
		{"/a//b", "", 0, true},
		{"//", "", 0, true},
	}
	for _, c := range cases {
		n, err := Parse(c.in)
		if (err != nil) != c.err {
			t.Errorf("Parse(%q) err=%v, want err=%v", c.in, err, c.err)
			continue
		}
		if err != nil {
			continue
		}
		if n.String() != c.want || n.Len() != c.wantLen {
			t.Errorf("Parse(%q) = %q len %d", c.in, n.String(), n.Len())
		}
	}
}

func TestFromComponents(t *testing.T) {
	n, err := FromComponents("a", "b")
	if err != nil || n.String() != "/a/b" {
		t.Errorf("got %v, %v", n, err)
	}
	if _, err := FromComponents("a", ""); err == nil {
		t.Error("empty component accepted")
	}
	if _, err := FromComponents("a/b"); err == nil {
		t.Error("slash in component accepted")
	}
}

func TestPrefixRelations(t *testing.T) {
	n := MustParse("/a/b/c")
	if !n.Prefix(2).Equal(MustParse("/a/b")) {
		t.Error("Prefix(2) wrong")
	}
	if !n.Prefix(99).Equal(n) {
		t.Error("Prefix over length should clamp")
	}
	if n.Prefix(-1).Len() != 0 {
		t.Error("Prefix(-1) should clamp to root")
	}
	if !MustParse("/a/b").IsPrefixOf(n) {
		t.Error("prefix not detected")
	}
	if MustParse("/a/x").IsPrefixOf(n) {
		t.Error("false prefix")
	}
	if MustParse("/a/b/c/d").IsPrefixOf(n) {
		t.Error("longer name cannot be prefix")
	}
	if !MustParse("/").IsPrefixOf(n) {
		t.Error("root is prefix of everything")
	}
}

// The central invariant: IDs are prefix-preserving so that a 32-bit FIB can
// longest-prefix match on them.
func TestIDPrefixPreserving(t *testing.T) {
	n := MustParse("/org/hotnets/papers/dip")
	id := n.ID()
	for k := 0; k <= n.Len(); k++ {
		p := n.Prefix(k)
		bits := p.PrefixBits()
		if bits != 4*k {
			t.Fatalf("PrefixBits(%d) = %d", k, bits)
		}
		if bits == 0 {
			continue
		}
		mask := ^uint32(0) << uint(32-bits)
		if p.ID()&mask != id&mask {
			t.Errorf("prefix %s ID %#08x disagrees with full ID %#08x in first %d bits", p, p.ID(), id, bits)
		}
	}
}

func TestIDNibblesNonZero(t *testing.T) {
	f := func(a, b string) bool {
		a = sanitize(a)
		b = sanitize(b)
		if a == "" || b == "" {
			return true
		}
		n, err := FromComponents(a, b)
		if err != nil {
			return true
		}
		id := n.ID()
		return id>>28 != 0 && (id>>24)&0xF != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sanitize(s string) string {
	s = strings.ReplaceAll(s, "/", "")
	if len(s) > 20 {
		s = s[:20]
	}
	return s
}

func TestIDBeyondMaxComponents(t *testing.T) {
	long := MustParse("/a/b/c/d/e/f/g/h/i/j")
	capped := long.Prefix(MaxComponents)
	if long.ID() != capped.ID() {
		t.Error("components beyond MaxComponents must not change the ID")
	}
	if long.PrefixBits() != 32 {
		t.Errorf("PrefixBits = %d", long.PrefixBits())
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	n := MustParse("/org/hotnets")
	id, err := r.Register(n)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := r.Resolve(id)
	if !ok || !got.Equal(n) {
		t.Errorf("Resolve = %v, %v", got, ok)
	}
	// Re-registering the same name is fine.
	if _, err := r.Register(n); err != nil {
		t.Errorf("idempotent register failed: %v", err)
	}
	if _, ok := r.Resolve(0xDEADBEEF); ok {
		t.Error("resolved unregistered ID")
	}
	r.Register(MustParse("/com/example"))
	all := r.Names()
	if len(all) != 2 || all[0].String() != "/com/example" {
		t.Errorf("Names() = %v", all)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			r.Register(MustParse("/a/b"))
		}
	}()
	for i := 0; i < 100; i++ {
		r.Resolve(MustParse("/a/b").ID())
	}
	<-done
}

func BenchmarkNameID(b *testing.B) {
	n := MustParse("/org/hotnets/papers/dip/sections/4")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.ID()
	}
}
