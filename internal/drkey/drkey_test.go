package drkey

import (
	"bytes"
	"testing"
)

func TestSessionKeyDeterministic(t *testing.T) {
	sv, err := NewSecretValue("r1", bytes.Repeat([]byte{1}, KeySize))
	if err != nil {
		t.Fatal(err)
	}
	sid := bytes.Repeat([]byte{9}, SessionIDSize)
	var k1, k2 [KeySize]byte
	if err := sv.SessionKey(k1[:], sid); err != nil {
		t.Fatal(err)
	}
	if err := sv.SessionKey(k2[:], sid); err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("derivation not deterministic")
	}
}

func TestSessionKeyVariesWithSessionAndSecret(t *testing.T) {
	svA, _ := NewSecretValue("a", bytes.Repeat([]byte{1}, KeySize))
	svB, _ := NewSecretValue("b", bytes.Repeat([]byte{2}, KeySize))
	sid1 := bytes.Repeat([]byte{1}, SessionIDSize)
	sid2 := bytes.Repeat([]byte{2}, SessionIDSize)
	var kA1, kA2, kB1 [KeySize]byte
	svA.SessionKey(kA1[:], sid1)
	svA.SessionKey(kA2[:], sid2)
	svB.SessionKey(kB1[:], sid1)
	if kA1 == kA2 {
		t.Error("same key for different sessions")
	}
	if kA1 == kB1 {
		t.Error("same key for different routers")
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewSecretValue("r", make([]byte, 8)); err == nil {
		t.Error("short secret accepted")
	}
	sv, _ := NewSecretValue("r", make([]byte, KeySize))
	if err := sv.SessionKey(make([]byte, 8), make([]byte, SessionIDSize)); err == nil {
		t.Error("short out accepted")
	}
	if err := sv.SessionKey(make([]byte, KeySize), make([]byte, 4)); err == nil {
		t.Error("short session ID accepted")
	}
}

func TestRandomSecretValue(t *testing.T) {
	a, err := RandomSecretValue("r1")
	if err != nil {
		t.Fatal(err)
	}
	if a.RouterID() != "r1" {
		t.Errorf("RouterID = %q", a.RouterID())
	}
	b, _ := RandomSecretValue("r1")
	sid := make([]byte, SessionIDSize)
	var ka, kb [KeySize]byte
	a.SessionKey(ka[:], sid)
	b.SessionKey(kb[:], sid)
	if ka == kb {
		t.Error("two random secrets derived the same key")
	}
}

func BenchmarkSessionKey(b *testing.B) {
	sv, _ := NewSecretValue("r", make([]byte, KeySize))
	sid := make([]byte, SessionIDSize)
	var out [KeySize]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sv.SessionKey(out[:], sid)
	}
}
