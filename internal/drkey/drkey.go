// Package drkey derives the per-session router keys OPT's data plane needs.
//
// In OPT (Kim et al., SIGCOMM 2014) each on-path router i derives a dynamic
// key K_i from the packet's session ID and its own local secret value —
// "the router will derive a dynamic key from session ID in the packet header
// with its local key" (paper §3) — and the source host learns every K_i
// during session setup. This package provides both halves of that contract:
//
//   - Router side: a SecretValue held by each router, from which
//     SessionKey(sessionID) derives K_i on the fly (no per-session state).
//   - Host side: the same derivation run by whoever legitimately knows the
//     secret (our stand-in for OPT's key-distribution handshake; see
//     internal/opt for the simulated session setup that hands the derived
//     keys to the source).
//
// The PRF is the 2EM-CBC-MAC keyed by the secret value — the same
// Tofino-friendly primitive the prototype uses for its F_MAC operation
// (paper §4.1), which also keeps per-packet key derivation allocation-free
// in the forwarding path.
package drkey

import (
	"crypto/rand"
	"fmt"

	"dip/internal/crypto2em"
)

// KeySize is the size of secret values and derived keys in bytes.
const KeySize = 16

// SessionIDSize is the size of an OPT session ID in bytes (128 bits).
const SessionIDSize = 16

// SecretValue is a router's local secret from which all of its per-session
// keys derive. It is safe for concurrent use.
type SecretValue struct {
	prf crypto2em.Cipher
	id  string
}

// NewSecretValue wraps a 16-byte secret for the named router.
func NewSecretValue(routerID string, secret []byte) (*SecretValue, error) {
	if len(secret) != KeySize {
		return nil, fmt.Errorf("drkey: secret must be %d bytes, got %d", KeySize, len(secret))
	}
	var master [KeySize]byte
	copy(master[:], secret)
	return &SecretValue{prf: crypto2em.FromMaster(&master), id: routerID}, nil
}

// RandomSecretValue generates a fresh secret for the named router.
func RandomSecretValue(routerID string) (*SecretValue, error) {
	secret := make([]byte, KeySize)
	if _, err := rand.Read(secret); err != nil {
		return nil, err
	}
	return NewSecretValue(routerID, secret)
}

// RouterID returns the identifier the secret was created for.
func (sv *SecretValue) RouterID() string { return sv.id }

// SessionKey writes the 16-byte key for sessionID into out (which must be
// exactly KeySize long). The derivation is deterministic, so routers need no
// per-session state — exactly the property OPT relies on. It never
// allocates.
func (sv *SecretValue) SessionKey(out, sessionID []byte) error {
	if len(out) != KeySize {
		return fmt.Errorf("drkey: out must be %d bytes, got %d", KeySize, len(out))
	}
	if len(sessionID) != SessionIDSize {
		return fmt.Errorf("drkey: session ID must be %d bytes, got %d", SessionIDSize, len(sessionID))
	}
	sv.prf.SumInto(out, sessionID)
	return nil
}
