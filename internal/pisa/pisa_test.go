package pisa

import (
	"testing"
)

const (
	tfA FieldID = iota
	tfB
)

func TestPHVBasics(t *testing.T) {
	var phv PHV
	if phv.Valid(tfA) {
		t.Error("zero PHV claims validity")
	}
	if err := phv.Set(tfA, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if !phv.Valid(tfA) || phv.Uint32(tfA) != 0x010203 {
		t.Errorf("got %x", phv.Uint32(tfA))
	}
	phv.SetUint32(tfB, 0xCAFEBABE)
	if phv.Uint32(tfB) != 0xCAFEBABE {
		t.Error("SetUint32")
	}
	phv.Reset()
	if phv.Valid(tfA) || phv.Valid(tfB) {
		t.Error("Reset did not invalidate")
	}
	if err := phv.Set(tfA, make([]byte, MaxFieldBytes+1)); err == nil {
		t.Error("oversize field accepted")
	}
}

func TestMetadata(t *testing.T) {
	var md Metadata
	md.AddEgress(3)
	md.AddEgress(3)
	md.AddEgress(5)
	if md.NEgress != 2 {
		t.Errorf("NEgress = %d", md.NEgress)
	}
	md.DropWith("first")
	md.DropWith("second")
	if !md.Drop || md.Reason != "first" {
		t.Error("first drop reason must stick")
	}
}

func TestParserFSM(t *testing.T) {
	p := &Parser{States: map[StateID]*State{
		0: {
			Extracts: []Extract{{Field: tfA, Offset: 0, Length: 1}},
			Advance:  1,
			Next: func(phv *PHV) StateID {
				if phv.Bytes(tfA)[0] == 0xFF {
					return ParserReject
				}
				if phv.Bytes(tfA)[0] == 2 {
					return 1
				}
				return ParserDone
			},
		},
		1: {
			Extracts: []Extract{{Field: tfB, Offset: 0, Length: 2}},
			Advance:  2,
		},
	}}
	var phv PHV
	n, err := p.Parse([]byte{1, 9, 9}, &phv)
	if err != nil || n != 1 {
		t.Errorf("simple: n=%d err=%v", n, err)
	}
	phv.Reset()
	n, err = p.Parse([]byte{2, 0xAB, 0xCD}, &phv)
	if err != nil || n != 3 || phv.Uint32(tfB) != 0xABCD {
		t.Errorf("two states: n=%d err=%v b=%x", n, err, phv.Uint32(tfB))
	}
	phv.Reset()
	if _, err := p.Parse([]byte{0xFF}, &phv); err == nil {
		t.Error("reject state did not reject")
	}
	phv.Reset()
	if _, err := p.Parse([]byte{2}, &phv); err == nil {
		t.Error("extract past end accepted")
	}
}

func TestParserLoopBudget(t *testing.T) {
	p := &Parser{States: map[StateID]*State{
		0: {Advance: 0, Next: func(*PHV) StateID { return 0 }},
	}}
	var phv PHV
	if _, err := p.Parse([]byte{1}, &phv); err == nil {
		t.Error("infinite parser loop not bounded")
	}
}

func TestTableExact(t *testing.T) {
	hits := 0
	tb := &Table{
		Kind:    MatchExact,
		Key:     func(phv *PHV, _ *Metadata) []byte { return phv.Bytes(tfA) },
		Default: func(_ *PHV, md *Metadata) { md.DropWith("miss") },
	}
	tb.AddEntry(Entry{Key: []byte{7}, Action: func(*PHV, *Metadata) { hits++ }})
	var phv PHV
	var md Metadata
	phv.Set(tfA, []byte{7})
	tb.Apply(&phv, &md)
	if hits != 1 || md.Drop {
		t.Error("exact hit failed")
	}
	phv.Set(tfA, []byte{8})
	tb.Apply(&phv, &md)
	if !md.Drop {
		t.Error("miss did not run default")
	}
}

func TestTableLPM(t *testing.T) {
	var got string
	tb := &Table{
		Kind: MatchLPM,
		Key:  func(phv *PHV, _ *Metadata) []byte { return phv.Bytes(tfA) },
	}
	tb.AddEntry(Entry{Key: []byte{10, 0, 0, 0}, PrefixLen: 8, Action: func(*PHV, *Metadata) { got = "/8" }})
	tb.AddEntry(Entry{Key: []byte{10, 1, 0, 0}, PrefixLen: 16, Action: func(*PHV, *Metadata) { got = "/16" }})
	var phv PHV
	var md Metadata
	phv.Set(tfA, []byte{10, 1, 2, 3})
	tb.Apply(&phv, &md)
	if got != "/16" {
		t.Errorf("got %s", got)
	}
	phv.Set(tfA, []byte{10, 9, 2, 3})
	tb.Apply(&phv, &md)
	if got != "/8" {
		t.Errorf("got %s", got)
	}
}

func TestTableTernary(t *testing.T) {
	var got string
	tb := &Table{
		Kind: MatchTernary,
		Key:  func(phv *PHV, _ *Metadata) []byte { return phv.Bytes(tfA) },
	}
	tb.AddEntry(Entry{Key: []byte{0x10}, Mask: []byte{0xF0}, Priority: 1, Action: func(*PHV, *Metadata) { got = "low" }})
	tb.AddEntry(Entry{Key: []byte{0x12}, Mask: []byte{0xFF}, Priority: 9, Action: func(*PHV, *Metadata) { got = "high" }})
	var phv PHV
	var md Metadata
	phv.Set(tfA, []byte{0x12})
	tb.Apply(&phv, &md)
	if got != "high" {
		t.Errorf("priority: got %s", got)
	}
	phv.Set(tfA, []byte{0x15})
	tb.Apply(&phv, &md)
	if got != "low" {
		t.Errorf("masked: got %s", got)
	}
}

func TestTableGate(t *testing.T) {
	ran := false
	tb := &Table{
		Kind:    MatchExact,
		Key:     func(*PHV, *Metadata) []byte { return nil },
		Gate:    func(_ *PHV, md *Metadata) bool { return md.Regs[0] == 1 },
		Default: func(*PHV, *Metadata) { ran = true },
	}
	var phv PHV
	var md Metadata
	tb.Apply(&phv, &md)
	if ran {
		t.Error("gated table ran")
	}
	md.Regs[0] = 1
	tb.Apply(&phv, &md)
	if !ran {
		t.Error("open gate did not run")
	}
}

func TestPipelineValidate(t *testing.T) {
	pl := &Pipeline{}
	if err := pl.Validate(); err == nil {
		t.Error("no parser accepted")
	}
	pl.Parser = &Parser{States: map[StateID]*State{0: {}}}
	for i := 0; i <= MaxStages; i++ {
		pl.Stages = append(pl.Stages, &Stage{})
	}
	if err := pl.Validate(); err == nil {
		t.Error("too many stages accepted")
	}
	pl.Stages = pl.Stages[:2]
	if err := pl.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPipelineProcessDropShortCircuits(t *testing.T) {
	ran := false
	pl := &Pipeline{
		Parser: &Parser{States: map[StateID]*State{0: {Advance: 0}}},
		Stages: []*Stage{
			{Tables: []*Table{{
				Kind:    MatchExact,
				Key:     func(*PHV, *Metadata) []byte { return nil },
				Default: func(_ *PHV, md *Metadata) { md.DropWith("x") },
			}}},
			{Tables: []*Table{{
				Kind:    MatchExact,
				Key:     func(*PHV, *Metadata) []byte { return nil },
				Default: func(*PHV, *Metadata) { ran = true },
			}}},
		},
	}
	var phv PHV
	var md Metadata
	out, err := pl.Process([]byte{1}, 0, &phv, &md)
	if err != nil || !md.Drop || out != nil {
		t.Errorf("out=%v md=%+v err=%v", out, md, err)
	}
	if ran {
		t.Error("stage after drop executed")
	}
}
