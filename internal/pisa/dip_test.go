package pisa

import (
	"bytes"
	"encoding/binary"
	"testing"

	"dip/internal/core"
	"dip/internal/drkey"
	"dip/internal/fib"
	"dip/internal/ops"
	"dip/internal/opt"
	"dip/internal/pit"
	"dip/internal/profiles"
)

func compiled(t *testing.T, cfg ops.Config) *Pipeline {
	t.Helper()
	pl, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func dipCfg(t *testing.T) ops.Config {
	t.Helper()
	sv, err := drkey.NewSecretValue("sw", bytes.Repeat([]byte{5}, 16))
	if err != nil {
		t.Fatal(err)
	}
	cfg := ops.Config{
		FIB32:   fib.New(),
		FIB128:  fib.New(),
		NameFIB: fib.New(),
		PIT:     pit.New[uint32](),
		Secret:  sv,
		MACKind: opt.Kind2EM,
	}
	cfg.FIB32.AddUint32(0x0A000000, 8, fib.NextHop{Port: 2})
	cfg.FIB32.AddUint32(0x0A000001, 32, fib.Local)
	pfx := make([]byte, 16)
	pfx[0] = 0x20
	cfg.FIB128.Add(pfx, 8, fib.NextHop{Port: 5})
	cfg.NameFIB.AddUint32(0xAA000000, 8, fib.NextHop{Port: 3})
	return cfg
}

func wire(t *testing.T, h *core.Header, payload []byte) []byte {
	t.Helper()
	b, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return append(b, payload...)
}

func TestDIP32Forwarding(t *testing.T) {
	pl := compiled(t, dipCfg(t))
	var phv PHV
	var md Metadata
	pkt := wire(t, profiles.IPv4([4]byte{1, 1, 1, 1}, [4]byte{10, 1, 2, 3}), []byte("pp"))
	out, err := pl.Process(pkt, 0, &phv, &md)
	if err != nil || md.Drop {
		t.Fatalf("md=%+v err=%v", md, err)
	}
	if md.NEgress != 1 || md.Egress[0] != 2 {
		t.Errorf("egress %v", md.Egress[:md.NEgress])
	}
	v, _ := core.ParseView(out)
	if v.HopLimit() != profiles.DefaultHopLimit-1 {
		t.Errorf("hop limit %d", v.HopLimit())
	}

	// Local delivery.
	pkt = wire(t, profiles.IPv4([4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 1}), nil)
	_, _ = pl.Process(pkt, 0, &phv, &md)
	if !md.ToHost {
		t.Error("local not delivered")
	}

	// No route.
	pkt = wire(t, profiles.IPv4([4]byte{1, 1, 1, 1}, [4]byte{99, 0, 0, 1}), nil)
	_, _ = pl.Process(pkt, 0, &phv, &md)
	if !md.Drop || md.Reason != "no-route" {
		t.Errorf("md %+v", md)
	}
}

func TestDIP128Forwarding(t *testing.T) {
	pl := compiled(t, dipCfg(t))
	var phv PHV
	var md Metadata
	var src, dst [16]byte
	dst[0] = 0x20
	pkt := wire(t, profiles.IPv6(src, dst), nil)
	_, err := pl.Process(pkt, 0, &phv, &md)
	if err != nil || md.Drop || md.NEgress != 1 || md.Egress[0] != 5 {
		t.Errorf("md=%+v err=%v", md, err)
	}
}

func TestHopLimitDrop(t *testing.T) {
	pl := compiled(t, dipCfg(t))
	var phv PHV
	var md Metadata
	h := profiles.IPv4([4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 9})
	h.HopLimit = 0
	_, _ = pl.Process(wire(t, h, nil), 0, &phv, &md)
	if !md.Drop || md.Reason != "hop-limit" {
		t.Errorf("md %+v", md)
	}
}

func TestNDNCycleOnPISA(t *testing.T) {
	pl := compiled(t, dipCfg(t))
	var phv PHV
	var md Metadata

	// Interest forwards upstream and installs PIT state.
	_, err := pl.Process(wire(t, profiles.NDNInterest(0xAA000001), nil), 7, &phv, &md)
	if err != nil || md.Drop || md.NEgress != 1 || md.Egress[0] != 3 {
		t.Fatalf("interest md=%+v err=%v", md, err)
	}
	// Second interest aggregates.
	_, _ = pl.Process(wire(t, profiles.NDNInterest(0xAA000001), nil), 8, &phv, &md)
	if !md.Absorbed || md.NEgress != 0 {
		t.Fatalf("aggregation md=%+v", md)
	}
	// Data fans out to both requesters.
	_, _ = pl.Process(wire(t, profiles.NDNData(0xAA000001), []byte("c")), 3, &phv, &md)
	if md.Drop || md.NEgress != 2 {
		t.Fatalf("data md=%+v", md)
	}
	// Duplicate data: PIT miss.
	_, _ = pl.Process(wire(t, profiles.NDNData(0xAA000001), []byte("c")), 3, &phv, &md)
	if !md.Drop || md.Reason != "pit-miss" {
		t.Errorf("dup md=%+v", md)
	}
}

// The PISA-compiled OPT hop must produce the same bytes as the software
// engine's ops and as native OPT — three realizations, one semantics.
func TestOPTOnPISAMatchesNative(t *testing.T) {
	cfg := dipCfg(t)
	cfg.PrevLabel[1] = 0x77
	pl := compiled(t, cfg)

	dst, _ := drkey.NewSecretValue("dst", bytes.Repeat([]byte{0xD}, 16))
	sess, err := opt.NewSession(opt.Kind2EM,
		[]opt.HopConfig{{Secret: cfg.Secret, PrevLabel: cfg.PrevLabel}}, dst)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("pisa-checked content")
	h, err := profiles.OPT(sess, payload, 5)
	if err != nil {
		t.Fatal(err)
	}
	nativeRegion := append([]byte(nil), h.Locations...)
	pkt := wire(t, h, payload)

	var phv PHV
	var md Metadata
	out, err := pl.Process(pkt, 0, &phv, &md)
	if err != nil || md.Drop {
		t.Fatalf("md=%+v err=%v", md, err)
	}
	opt.ProcessHop(opt.HopConfig{Secret: cfg.Secret, PrevLabel: cfg.PrevLabel}, opt.Kind2EM, nativeRegion)

	v, _ := core.ParseView(out)
	if !bytes.Equal(v.Locations(), nativeRegion) {
		t.Error("PISA OPT hop diverges from native OPT")
	}
	if err := sess.Verify(v.Locations(), payload); err != nil {
		t.Errorf("destination rejects PISA-processed packet: %v", err)
	}
}

func TestNDNOPTOnPISA(t *testing.T) {
	cfg := dipCfg(t)
	pl := compiled(t, cfg)
	dst, _ := drkey.NewSecretValue("dst", bytes.Repeat([]byte{0xD}, 16))
	sess, _ := opt.NewSession(opt.Kind2EM, []opt.HopConfig{{Secret: cfg.Secret}}, dst)

	// Install PIT state with an interest first.
	var phv PHV
	var md Metadata
	pl.Process(wire(t, profiles.NDNInterest(0xAA000009), nil), 4, &phv, &md)

	payload := []byte("secure named content")
	h, err := profiles.NDNOPTData(sess, 0xAA000009, payload, 9)
	if err != nil {
		t.Fatal(err)
	}
	out, err := pl.Process(wire(t, h, payload), 3, &phv, &md)
	if err != nil || md.Drop || md.NEgress != 1 || md.Egress[0] != 4 {
		t.Fatalf("md=%+v err=%v", md, err)
	}
	v, _ := core.ParseView(out)
	if err := sess.Verify(profiles.NDNOPTRegion(v.Locations()), payload); err != nil {
		t.Errorf("verification: %v", err)
	}
}

func TestUnknownKeyIgnored(t *testing.T) {
	pl := compiled(t, dipCfg(t))
	var phv PHV
	var md Metadata
	h := &core.Header{
		HopLimit: 3,
		FNs: []core.FN{
			core.RouterFN(0, 8, 99), // unknown key: ignored
			core.RouterFN(0, 32, core.KeyMatch32),
		},
		Locations: []byte{10, 0, 0, 9},
	}
	_, err := pl.Process(wire(t, h, nil), 0, &phv, &md)
	if err != nil || md.Drop || md.NEgress != 1 {
		t.Errorf("md=%+v err=%v", md, err)
	}
}

func TestHostTagSkipped(t *testing.T) {
	pl := compiled(t, dipCfg(t))
	var phv PHV
	var md Metadata
	h := &core.Header{
		HopLimit: 3,
		FNs: []core.FN{
			core.HostFN(0, 544, core.KeyVer), // host op: ignored by switch
			core.RouterFN(0, 32, core.KeyMatch32),
		},
		Locations: make([]byte, 68),
	}
	binary.BigEndian.PutUint32(h.Locations, 0x0A000009)
	_, err := pl.Process(wire(t, h, nil), 0, &phv, &md)
	if err != nil || md.Drop || md.NEgress != 1 {
		t.Errorf("md=%+v err=%v", md, err)
	}
}

func TestUnsupportedSliceDropped(t *testing.T) {
	pl := compiled(t, dipCfg(t))
	var phv PHV
	var md Metadata
	// A 32-bit match at a non-preset offset: the hardware constraint bites.
	h := &core.Header{
		HopLimit:  3,
		FNs:       []core.FN{core.RouterFN(8, 32, core.KeyMatch32)},
		Locations: make([]byte, 8),
	}
	_, _ = pl.Process(wire(t, h, nil), 0, &phv, &md)
	if !md.Drop || md.Reason != "unsupported-slice" {
		t.Errorf("md %+v", md)
	}
}

func TestParserRejectsOddRegion(t *testing.T) {
	pl := compiled(t, dipCfg(t))
	var phv PHV
	var md Metadata
	h := &core.Header{
		HopLimit:  3,
		FNs:       []core.FN{core.RouterFN(0, 8, core.KeyMatch32)},
		Locations: make([]byte, 5), // not 4-byte aligned
	}
	if _, err := pl.Process(wire(t, h, nil), 0, &phv, &md); err == nil {
		t.Error("odd region accepted")
	}
	h.Locations = make([]byte, MaxRegionBytes+4)
	if _, err := pl.Process(wire(t, h, nil), 0, &phv, &md); err == nil {
		t.Error("oversize region accepted")
	}
}

func TestExtraFNsBeyondBudgetSkipped(t *testing.T) {
	pl := compiled(t, dipCfg(t))
	var phv PHV
	var md Metadata
	fns := []core.FN{core.RouterFN(0, 32, core.KeyMatch32)}
	for i := 0; i < 6; i++ {
		fns = append(fns, core.HostFN(0, 8, core.KeyVer))
	}
	h := &core.Header{HopLimit: 3, FNs: fns, Locations: []byte{10, 0, 0, 9}}
	_, err := pl.Process(wire(t, h, nil), 0, &phv, &md)
	if err != nil || md.Drop || md.NEgress != 1 {
		t.Errorf("md=%+v err=%v", md, err)
	}
}

func TestPISAZeroAllocForwarding(t *testing.T) {
	pl := compiled(t, dipCfg(t))
	var phv PHV
	var md Metadata
	pkt := wire(t, profiles.IPv4([4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 9}), nil)
	allocs := testing.AllocsPerRun(500, func() {
		pkt[3] = 64 // restore hop limit
		if _, err := pl.Process(pkt, 0, &phv, &md); err != nil || md.Drop {
			t.Fatal("processing failed")
		}
	})
	if allocs != 0 {
		t.Errorf("PISA DIP-32 forwarding allocates %.1f", allocs)
	}
}
