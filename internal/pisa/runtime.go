package pisa

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// This file adds the runtime-programmability surface the paper's vision
// rests on ("DIP can also embrace the advances" in runtime programmable
// devices, §5; rP4/FlexCore/IPSA in its related work): stateful register
// externs, per-table hit counters, controller-style table mutation while
// traffic flows, and resource accounting against architectural budgets.

// Architectural resource budgets (Tofino-flavoured, enforced by Validate).
const (
	// MaxTablesPerStage bounds tables applied in one stage.
	MaxTablesPerStage = 16
	// MaxEntriesPerTable bounds one table's entry count (SRAM/TCAM model).
	MaxEntriesPerTable = 1 << 16
	// MaxRegisterBytes bounds total stateful register memory.
	MaxRegisterBytes = 1 << 22
)

// RegisterArray is the stateful-ALU extern: an array of 32-bit cells with
// atomic read-modify-write, the way PISA switches express per-flow state.
type RegisterArray struct {
	name string
	mu   sync.Mutex
	data []uint32
}

// NewRegisterArray allocates a named array of n cells.
func NewRegisterArray(name string, n int) *RegisterArray {
	return &RegisterArray{name: name, data: make([]uint32, n)}
}

// Name returns the array's name.
func (r *RegisterArray) Name() string { return r.name }

// Len returns the cell count.
func (r *RegisterArray) Len() int { return len(r.data) }

// Bytes returns the array's memory footprint.
func (r *RegisterArray) Bytes() int { return 4 * len(r.data) }

// RMW atomically applies fn to cell idx and returns the new value — one
// stateful-ALU operation. Out-of-range indices return 0 and do nothing
// (hardware would wrap; dropping is the safer software model).
func (r *RegisterArray) RMW(idx int, fn func(uint32) uint32) uint32 {
	if idx < 0 || idx >= len(r.data) {
		return 0
	}
	r.mu.Lock()
	v := fn(r.data[idx])
	r.data[idx] = v
	r.mu.Unlock()
	return v
}

// Read returns cell idx (0 when out of range).
func (r *RegisterArray) Read(idx int) uint32 {
	if idx < 0 || idx >= len(r.data) {
		return 0
	}
	r.mu.Lock()
	v := r.data[idx]
	r.mu.Unlock()
	return v
}

// Stats are a table's hit/miss counters.
type Stats struct {
	Hits   int64
	Misses int64
}

// tableCounters back Table.Stats without touching the hot-path layout.
type tableCounters struct {
	hits   atomic.Int64
	misses atomic.Int64
}

// Stats returns the table's counters since creation.
func (t *Table) Stats() Stats {
	return Stats{Hits: t.counters.hits.Load(), Misses: t.counters.misses.Load()}
}

// InsertEntry adds an entry at runtime (a controller table write). Safe
// against concurrent Apply.
func (t *Table) InsertEntry(e Entry) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.Entries) >= MaxEntriesPerTable {
		return fmt.Errorf("%w: table %s at entry budget %d", ErrPipeline, t.Name, MaxEntriesPerTable)
	}
	t.Entries = append(t.Entries, e)
	return nil
}

// DeleteEntries removes every entry match reports true for, returning the
// count removed. Safe against concurrent Apply.
func (t *Table) DeleteEntries(match func(Entry) bool) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.Entries[:0]
	removed := 0
	for _, e := range t.Entries {
		if match(e) {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	t.Entries = kept
	return removed
}

// EntryCount returns the live entry count.
func (t *Table) EntryCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.Entries)
}

// Usage summarizes a pipeline's resource consumption.
type Usage struct {
	ParserStates  int
	Stages        int
	Tables        int
	MaxStageWidth int // most tables in any one stage
	Entries       int
	RegisterBytes int
}

// Usage computes the pipeline's resource consumption; registers passed in
// are the stateful externs the program owns.
func (pl *Pipeline) Usage(registers ...*RegisterArray) Usage {
	u := Usage{ParserStates: len(pl.Parser.States), Stages: len(pl.Stages)}
	for _, st := range pl.Stages {
		if len(st.Tables) > u.MaxStageWidth {
			u.MaxStageWidth = len(st.Tables)
		}
		u.Tables += len(st.Tables)
		for _, t := range st.Tables {
			u.Entries += t.EntryCount()
		}
	}
	for _, r := range registers {
		u.RegisterBytes += r.Bytes()
	}
	return u
}

// CheckBudget validates usage against the architectural budgets.
func (u Usage) CheckBudget() error {
	switch {
	case u.ParserStates > MaxParserStates:
		return fmt.Errorf("%w: %d parser states exceed %d", ErrPipeline, u.ParserStates, MaxParserStates)
	case u.Stages > MaxStages:
		return fmt.Errorf("%w: %d stages exceed %d", ErrPipeline, u.Stages, MaxStages)
	case u.MaxStageWidth > MaxTablesPerStage:
		return fmt.Errorf("%w: %d tables in one stage exceed %d", ErrPipeline, u.MaxStageWidth, MaxTablesPerStage)
	case u.RegisterBytes > MaxRegisterBytes:
		return fmt.Errorf("%w: %d register bytes exceed %d", ErrPipeline, u.RegisterBytes, MaxRegisterBytes)
	}
	return nil
}
