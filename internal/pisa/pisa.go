// Package pisa models a Protocol-Independent Switch Architecture pipeline —
// the hardware substrate the DIP prototype runs on (a Barefoot Tofino
// switch, paper §4.1) — in software, honouring the structural constraints
// the authors describe working around:
//
//   - a programmable parser expressed as a finite state machine with
//     bounded extraction (no loops, no variable slicing);
//   - a fixed number of match-action stages executed once, in order —
//     "it was challenging to implement a loop to invoke the operation
//     modules. We use the simple if-else statement with FN_Num";
//   - tables matched by exact/LPM/ternary keys with bounded actions —
//     "we pre-write the required operation modules on the data plane and
//     use the operation key to match these operation modules";
//   - preset field slices instead of variable offsets — "the field slices
//     in Barefoot Tofino are restricted to not using variables, therefore
//     we preset some fixed field slices";
//   - stateful externs (register arrays / table updates from the data
//     plane) for PIT-style state.
//
// The model is generic: a Pipeline is a parser, stages of tables, and a
// deparser, assembled by the user. Package dipc (see dip.go in this
// package) compiles DIP onto it the way the paper's P4 program does.
package pisa

import (
	"errors"
	"fmt"
	"sync"
)

// Architectural bounds, Tofino-flavoured.
const (
	// MaxStages is the match-action stage budget.
	MaxStages = 12
	// MaxFields is the PHV container budget.
	MaxFields = 64
	// MaxFieldBytes is the widest PHV container (large enough for the
	// preset locations slices DIP needs).
	MaxFieldBytes = 128
	// MaxParserStates bounds the parser FSM (Tofino parsers allow 256
	// states; variable-length regions cost one state per supported size).
	MaxParserStates = 64
)

// Errors from pipeline assembly and execution.
var (
	ErrPipeline  = errors.New("pisa: invalid pipeline")
	ErrParse     = errors.New("pisa: parser rejected packet")
	ErrTooDeep   = errors.New("pisa: parser state budget exhausted")
	ErrFieldSize = errors.New("pisa: field exceeds container size")
)

// FieldID names a PHV container.
type FieldID int

// PHV is the parsed header vector: the per-packet scratch the parser fills
// and the stages read and write.
type PHV struct {
	data  [MaxFields][MaxFieldBytes]byte
	size  [MaxFields]uint16
	valid [MaxFields]bool
}

// Reset invalidates every container.
func (p *PHV) Reset() {
	for i := range p.valid {
		p.valid[i] = false
		p.size[i] = 0
	}
}

// Set copies b into container id.
func (p *PHV) Set(id FieldID, b []byte) error {
	if len(b) > MaxFieldBytes {
		return fmt.Errorf("%w: %d bytes", ErrFieldSize, len(b))
	}
	copy(p.data[id][:], b)
	p.size[id] = uint16(len(b))
	p.valid[id] = true
	return nil
}

// SetUint32 stores v big-endian in container id.
func (p *PHV) SetUint32(id FieldID, v uint32) {
	p.data[id][0], p.data[id][1], p.data[id][2], p.data[id][3] =
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
	p.size[id] = 4
	p.valid[id] = true
}

// Valid reports whether container id holds data.
func (p *PHV) Valid(id FieldID) bool { return p.valid[id] }

// Bytes returns container id's contents (aliasing the PHV; stages may
// mutate in place, which is how header rewrites work).
func (p *PHV) Bytes(id FieldID) []byte { return p.data[id][:p.size[id]] }

// Uint32 reads up to the first 4 bytes of container id big-endian.
func (p *PHV) Uint32(id FieldID) uint32 {
	var v uint32
	n := int(p.size[id])
	if n > 4 {
		n = 4
	}
	for i := 0; i < n; i++ {
		v = v<<8 | uint32(p.data[id][i])
	}
	return v
}

// Metadata is the per-packet intrinsic metadata: ingress/egress, drop
// state, and a handful of action registers.
type Metadata struct {
	InPort  int
	Egress  [8]int
	NEgress int
	Drop    bool
	Reason  string
	// ToHost marks local delivery (the CPU port).
	ToHost bool
	// Absorbed marks "consumed by switch state, no egress" (PIT
	// aggregation).
	Absorbed bool
	// Regs are general-purpose action registers.
	Regs [8]uint32
}

// AddEgress records an output port (deduplicated).
func (m *Metadata) AddEgress(port int) {
	for i := 0; i < m.NEgress; i++ {
		if m.Egress[i] == port {
			return
		}
	}
	if m.NEgress < len(m.Egress) {
		m.Egress[m.NEgress] = port
		m.NEgress++
	}
}

// DropWith drops the packet with a diagnostic reason.
func (m *Metadata) DropWith(reason string) {
	if !m.Drop {
		m.Drop = true
		m.Reason = reason
	}
}

// Extract is one parser extraction: copy length bytes at the current
// cursor + offset into a PHV container.
type Extract struct {
	Field  FieldID
	Offset int
	Length int
}

// StateID names a parser state; the zero value is the start state.
type StateID int

// ParserDone is the accept pseudo-state; ParserReject rejects the packet.
const (
	ParserDone   StateID = -1
	ParserReject StateID = -2
)

// State is one parser FSM state: a bounded list of extractions, a cursor
// advance, and a select function choosing the next state from the PHV.
type State struct {
	Extracts []Extract
	// Advance moves the cursor after extraction. Negative is invalid.
	Advance int
	// AdvanceFrom, when non-nil, computes the advance dynamically from the
	// PHV (models advancing by a parsed length field, which PISA parsers
	// support via the shift amount).
	AdvanceFrom func(phv *PHV) int
	// Next selects the following state; nil means ParserDone.
	Next func(phv *PHV) StateID
}

// Parser is the programmable parser: a bounded FSM over the packet.
type Parser struct {
	States map[StateID]*State
}

// Parse runs the FSM, filling phv. It returns the final cursor (header
// length) so the deparser knows where the payload starts.
func (p *Parser) Parse(pkt []byte, phv *PHV) (int, error) {
	cursor := 0
	state := StateID(0)
	for steps := 0; steps < MaxParserStates; steps++ {
		st, ok := p.States[state]
		if !ok {
			return 0, fmt.Errorf("%w: no state %d", ErrPipeline, state)
		}
		for _, ex := range st.Extracts {
			lo := cursor + ex.Offset
			hi := lo + ex.Length
			if lo < 0 || hi > len(pkt) {
				return 0, fmt.Errorf("%w: extract [%d:%d) beyond %d bytes", ErrParse, lo, hi, len(pkt))
			}
			if err := phv.Set(ex.Field, pkt[lo:hi]); err != nil {
				return 0, err
			}
		}
		adv := st.Advance
		if st.AdvanceFrom != nil {
			adv = st.AdvanceFrom(phv)
		}
		if adv < 0 || cursor+adv > len(pkt) {
			return 0, fmt.Errorf("%w: advance %d at cursor %d", ErrParse, adv, cursor)
		}
		cursor += adv
		next := ParserDone
		if st.Next != nil {
			next = st.Next(phv)
		}
		switch next {
		case ParserDone:
			return cursor, nil
		case ParserReject:
			return 0, fmt.Errorf("%w: rejected in state %d", ErrParse, state)
		default:
			state = next
		}
	}
	return 0, ErrTooDeep
}

// Action is a bounded table action: it may read/write the PHV, the
// metadata, and the pipeline's stateful externs (captured at construction).
type Action func(phv *PHV, md *Metadata)

// MatchKind selects the table's matching discipline.
type MatchKind int

// Table match kinds.
const (
	MatchExact MatchKind = iota
	MatchLPM
	MatchTernary
)

// Entry is one table entry.
type Entry struct {
	// Key is the match key (exact bytes; for LPM the prefix bytes).
	Key []byte
	// PrefixLen is the LPM prefix length in bits.
	PrefixLen int
	// Mask is the ternary mask (same length as Key; 1-bits must match).
	Mask []byte
	// Priority orders ternary entries (higher wins).
	Priority int
	Action   Action
}

// Table is one match-action table. Entries may be mutated at runtime
// through InsertEntry/DeleteEntries (controller writes) while Apply runs
// on the data plane; build-time population uses AddEntry.
type Table struct {
	Name    string
	Kind    MatchKind
	Key     func(phv *PHV, md *Metadata) []byte
	Entries []Entry
	// Default runs on a miss (may be nil).
	Default Action
	// Gate, when non-nil, skips the table entirely unless it returns true
	// (models gateway conditions / if-else around table application).
	Gate func(phv *PHV, md *Metadata) bool

	mu       sync.RWMutex
	counters tableCounters
}

// AddEntry appends an entry (build-time form of InsertEntry).
func (t *Table) AddEntry(e Entry) {
	t.mu.Lock()
	t.Entries = append(t.Entries, e)
	t.mu.Unlock()
}

// Apply matches the key and runs the selected action.
func (t *Table) Apply(phv *PHV, md *Metadata) {
	if t.Gate != nil && !t.Gate(phv, md) {
		return
	}
	key := t.Key(phv, md)
	t.mu.RLock()
	defer t.mu.RUnlock()
	var chosen *Entry
	switch t.Kind {
	case MatchExact:
		for i := range t.Entries {
			if bytesEqual(t.Entries[i].Key, key) {
				chosen = &t.Entries[i]
				break
			}
		}
	case MatchLPM:
		best := -1
		for i := range t.Entries {
			e := &t.Entries[i]
			if e.PrefixLen > best && prefixMatch(key, e.Key, e.PrefixLen) {
				best = e.PrefixLen
				chosen = e
			}
		}
	case MatchTernary:
		bestPrio := -1 << 31
		for i := range t.Entries {
			e := &t.Entries[i]
			if e.Priority > bestPrio && ternaryMatch(key, e.Key, e.Mask) {
				bestPrio = e.Priority
				chosen = e
			}
		}
	}
	if chosen != nil {
		t.counters.hits.Add(1)
		if chosen.Action != nil {
			chosen.Action(phv, md)
		}
		return
	}
	t.counters.misses.Add(1)
	if t.Default != nil {
		t.Default(phv, md)
	}
}

// Stage is one pipeline stage: its tables apply in order.
type Stage struct {
	Tables []*Table
}

// Deparser reassembles the output packet from the PHV and the original
// packet (payload pass-through).
type Deparser func(phv *PHV, md *Metadata, original []byte, headerLen int) []byte

// Pipeline is the assembled switch program.
type Pipeline struct {
	Parser   *Parser
	Stages   []*Stage
	Deparser Deparser
}

// Validate checks the architectural bounds.
func (pl *Pipeline) Validate() error {
	if pl.Parser == nil {
		return fmt.Errorf("%w: no parser", ErrPipeline)
	}
	if len(pl.Stages) > MaxStages {
		return fmt.Errorf("%w: %d stages exceed %d", ErrPipeline, len(pl.Stages), MaxStages)
	}
	if len(pl.Parser.States) > MaxParserStates {
		return fmt.Errorf("%w: %d parser states exceed %d", ErrPipeline, len(pl.Parser.States), MaxParserStates)
	}
	return nil
}

// Process runs one packet through parse → stages → deparse. The returned
// packet is the rewritten output (nil when dropped or absorbed); md carries
// the forwarding decision. phv and md are caller-provided (and reused
// across packets) so the hot path does not allocate.
func (pl *Pipeline) Process(pkt []byte, inPort int, phv *PHV, md *Metadata) ([]byte, error) {
	phv.Reset()
	*md = Metadata{InPort: inPort}
	headerLen, err := pl.Parser.Parse(pkt, phv)
	if err != nil {
		md.DropWith("parse")
		return nil, err
	}
	for _, st := range pl.Stages {
		if md.Drop {
			break
		}
		for _, tb := range st.Tables {
			tb.Apply(phv, md)
			if md.Drop {
				break
			}
		}
	}
	if md.Drop || md.Absorbed {
		return nil, nil
	}
	out := pkt
	if pl.Deparser != nil {
		out = pl.Deparser(phv, md, pkt, headerLen)
	}
	return out, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func prefixMatch(key, prefix []byte, bits int) bool {
	if bits > len(key)*8 || bits > len(prefix)*8 {
		return false
	}
	full := bits / 8
	for i := 0; i < full; i++ {
		if key[i] != prefix[i] {
			return false
		}
	}
	if rem := bits % 8; rem != 0 {
		mask := byte(0xFF) << (8 - rem)
		if key[full]&mask != prefix[full]&mask {
			return false
		}
	}
	return true
}

func ternaryMatch(key, want, mask []byte) bool {
	if len(key) != len(want) || len(want) != len(mask) {
		return false
	}
	for i := range key {
		if key[i]&mask[i] != want[i]&mask[i] {
			return false
		}
	}
	return true
}
