package pisa

import (
	"encoding/binary"
	"fmt"

	"dip/internal/cmac"
	"dip/internal/core"
	"dip/internal/crypto2em"
	"dip/internal/fib"
	"dip/internal/ops"
	"dip/internal/opt"
	"dip/internal/pit"
)

// Compile builds the DIP dataplane the way the paper's P4 prototype does
// (§4.1), inheriting its compromises:
//
//   - at most MaxFNSlots FN triples are processed, dispatched by an
//     unrolled per-slot table pipeline instead of a loop;
//   - the FN-locations region must be 4-byte aligned and ≤ 128 bytes, and
//     operand offsets must land on the preset field slices of the standard
//     §3 profiles (offset 0, or shifted by the 4-byte content name);
//   - operation modules are pre-installed actions matched by operation key;
//     unknown keys fall through (the PolicyIgnore case of §2.4);
//   - PIT state lives in a stateful extern, the software stand-in for
//     Tofino register arrays.
//
// The compiled pipeline forwards the same §3 profiles as the software
// engine and is cross-checked against it in tests; experiment E7 compares
// their per-packet costs.

// MaxFNSlots is the unrolled FN budget (the paper's if-else chain depth).
const MaxFNSlots = 4

// MaxRegionBytes is the largest FN-locations region the parser accepts.
const MaxRegionBytes = MaxFieldBytes

// PHV container assignment for the DIP program.
const (
	fNextHdr FieldID = iota
	fHopLimit
	fFNNum
	fParam
	fRegion
	fHopKey
	fDst32
	fDst128
	fName
	fKey0 // fKey0+i, fLoc0+i, fLen0+i for slot i
	fLoc0 = fKey0 + MaxFNSlots
	fLen0 = fLoc0 + MaxFNSlots
)

// Metadata register assignment.
const (
	regNeed32 = iota
	regNeed128
	regNeedName
	regPITInterest
	regPITData
	regShift // byte shift of the OPT/name layout (0 or 4)
	regHaveKey
)

// dipState bundles the stateful externs the compiled actions close over.
type dipState struct {
	cfg ops.Config
}

// Compile assembles the DIP pipeline over the node state in cfg.
func Compile(cfg ops.Config) (*Pipeline, error) {
	st := &dipState{cfg: cfg}
	pl := &Pipeline{
		Parser:   buildParser(),
		Deparser: deparse,
	}
	// Stage 0: hop limit.
	hop := &Table{
		Name: "hop_limit",
		Kind: MatchExact,
		Key:  func(phv *PHV, _ *Metadata) []byte { return phv.Bytes(fHopLimit) },
		Entries: []Entry{{
			Key:    []byte{0},
			Action: func(_ *PHV, md *Metadata) { md.DropWith("hop-limit") },
		}},
		Default: func(phv *PHV, _ *Metadata) {
			phv.Bytes(fHopLimit)[0]--
		},
	}
	pl.Stages = append(pl.Stages, &Stage{Tables: []*Table{hop}})

	// Stages 1..MaxFNSlots: per-slot dispatch, the unrolled if-else chain.
	for slot := 0; slot < MaxFNSlots; slot++ {
		pl.Stages = append(pl.Stages, &Stage{Tables: []*Table{st.dispatchTable(slot)}})
	}

	// LPM stages, applied once whichever slot requested them.
	pl.Stages = append(pl.Stages,
		&Stage{Tables: []*Table{st.lpmTable("lpm32", fDst32, regNeed32, cfg.FIB32)}},
		&Stage{Tables: []*Table{st.lpmTable("lpm128", fDst128, regNeed128, cfg.FIB128)}},
		&Stage{Tables: []*Table{st.lpmTable("lpm_name", fName, regNeedName, cfg.NameFIB)}},
		&Stage{Tables: []*Table{st.pitTable()}},
	)
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	return pl, nil
}

// buildParser assembles the DIP parser FSM: basic header → unrolled FN
// triple states → one state per supported region size (the varbit-by-states
// idiom real PISA parsers use).
func buildParser() *Parser {
	p := &Parser{States: map[StateID]*State{}}
	const (
		stBasic StateID = 0
		stFN0   StateID = 10 // +slot
		stLocs  StateID = 20 // +size/4
	)
	// Basic header: fixed extraction, then fan out on FN_Num.
	p.States[stBasic] = &State{
		Extracts: []Extract{
			{Field: fNextHdr, Offset: 1, Length: 1},
			{Field: fFNNum, Offset: 2, Length: 1},
			{Field: fHopLimit, Offset: 3, Length: 1},
			{Field: fParam, Offset: 4, Length: 2},
		},
		Advance: core.BasicHeaderSize,
		Next: func(phv *PHV) StateID {
			if phv.Bytes(fFNNum)[0] == 0 {
				return locState(phv)
			}
			return stFN0
		},
	}
	// One state per FN slot (unrolled).
	for slot := 0; slot < MaxFNSlots; slot++ {
		slot := slot
		p.States[stFN0+StateID(slot)] = &State{
			Extracts: []Extract{
				{Field: fLoc0 + FieldID(slot), Offset: 0, Length: 2},
				{Field: fLen0 + FieldID(slot), Offset: 2, Length: 2},
				{Field: fKey0 + FieldID(slot), Offset: 4, Length: 2},
			},
			Advance: core.FNSize,
			Next: func(phv *PHV) StateID {
				n := int(phv.Bytes(fFNNum)[0])
				if slot+1 < n && slot+1 < MaxFNSlots {
					return stFN0 + StateID(slot+1)
				}
				if n > MaxFNSlots {
					// Skip the triples beyond the unrolled budget in one
					// computed advance, then parse the region.
					return stSkipExtra
				}
				return locState(phv)
			},
		}
	}
	p.States[stSkipExtra] = &State{
		AdvanceFrom: func(phv *PHV) int {
			n := int(phv.Bytes(fFNNum)[0])
			return (n - MaxFNSlots) * core.FNSize
		},
		Next: locState,
	}
	// One state per supported region size (4-byte granularity): the
	// varbit-by-states idiom.
	for size := 0; size <= MaxRegionBytes; size += 4 {
		size := size
		s := &State{Advance: size}
		if size > 0 {
			s.Extracts = []Extract{{Field: fRegion, Offset: 0, Length: size}}
		}
		p.States[stLocs+StateID(size/4)] = s
	}
	return p
}

const stSkipExtra StateID = 9

func locState(phv *PHV) StateID {
	const stLocs StateID = 20
	param := phv.Uint32(fParam)
	locLen := int(param >> 5 & 0x3FF)
	if locLen%4 != 0 || locLen > MaxRegionBytes {
		return ParserReject
	}
	return stLocs + StateID(locLen/4)
}

// dispatchTable is slot i's operation-key match: the paper's "use the
// operation key to match these operation modules".
func (st *dipState) dispatchTable(slot int) *Table {
	keyF := fKey0 + FieldID(slot)
	locF := fLoc0 + FieldID(slot)
	lenF := fLen0 + FieldID(slot)
	t := &Table{
		Name: fmt.Sprintf("dispatch_%d", slot),
		Kind: MatchExact,
		Key: func(phv *PHV, _ *Metadata) []byte {
			return phv.Bytes(keyF)
		},
		Gate: func(phv *PHV, _ *Metadata) bool {
			if !phv.Valid(keyF) {
				return false
			}
			return int(phv.Bytes(fFNNum)[0]) > slot
		},
		// Unknown (or host-tagged) keys match nothing: ignored, §2.4.
	}
	add := func(key core.Key, a Action) {
		t.AddEntry(Entry{Key: []byte{byte(key >> 8), byte(key)}, Action: a})
	}
	loc := func(phv *PHV) int { return int(binary.BigEndian.Uint16(phv.Bytes(locF))) }
	length := func(phv *PHV) int { return int(binary.BigEndian.Uint16(phv.Bytes(lenF))) }

	if st.cfg.FIB32 != nil {
		add(core.KeyMatch32, func(phv *PHV, md *Metadata) {
			if loc(phv) != 0 || length(phv) != 32 || len(phv.Bytes(fRegion)) < 4 {
				md.DropWith("unsupported-slice")
				return
			}
			phv.Set(fDst32, phv.Bytes(fRegion)[0:4])
			md.Regs[regNeed32] = 1
		})
		add(core.KeySource, func(_ *PHV, _ *Metadata) {})
	}
	if st.cfg.FIB128 != nil {
		add(core.KeyMatch128, func(phv *PHV, md *Metadata) {
			if loc(phv) != 0 || length(phv) != 128 || len(phv.Bytes(fRegion)) < 16 {
				md.DropWith("unsupported-slice")
				return
			}
			phv.Set(fDst128, phv.Bytes(fRegion)[0:16])
			md.Regs[regNeed128] = 1
		})
	}
	if st.cfg.NameFIB != nil && st.cfg.PIT != nil {
		nameAction := func(reg int) Action {
			return func(phv *PHV, md *Metadata) {
				if loc(phv) != 0 || length(phv) != 32 || len(phv.Bytes(fRegion)) < 4 {
					md.DropWith("unsupported-slice")
					return
				}
				phv.Set(fName, phv.Bytes(fRegion)[0:4])
				md.Regs[reg] = 1
			}
		}
		add(core.KeyFIB, func(phv *PHV, md *Metadata) {
			nameAction(regNeedName)(phv, md)
			md.Regs[regPITInterest] = 1
		})
		add(core.KeyPIT, nameAction(regPITData))
	}
	if st.cfg.Secret != nil {
		add(core.KeyParm, func(phv *PHV, md *Metadata) {
			// Preset slices: session ID at byte 16 (standalone OPT) or 20
			// (NDN+OPT's 4-byte shift).
			l := loc(phv)
			if length(phv) != 128 || (l != opt.SessionIDOff*8 && l != (opt.SessionIDOff+4)*8) {
				md.DropWith("unsupported-slice")
				return
			}
			shift := 0
			if l == (opt.SessionIDOff+4)*8 {
				shift = 4
			}
			region := phv.Bytes(fRegion)
			if len(region) < shift+opt.BaseSize {
				md.DropWith("unsupported-slice")
				return
			}
			var key [16]byte
			if err := st.cfg.Secret.SessionKey(key[:], region[shift+opt.SessionIDOff:shift+opt.SessionIDOff+16]); err != nil {
				md.DropWith("parm")
				return
			}
			phv.Set(fHopKey, key[:])
			md.Regs[regShift] = uint32(shift)
			md.Regs[regHaveKey] = 1
		})
		add(core.KeyMAC, func(phv *PHV, md *Metadata) {
			if md.Regs[regHaveKey] == 0 {
				md.DropWith("mac-no-key")
				return
			}
			shift := int(md.Regs[regShift])
			if loc(phv) != shift*8 || length(phv) != opt.MACInputSize*8 {
				md.DropWith("unsupported-slice")
				return
			}
			region := phv.Bytes(fRegion)
			slotOff := shift + opt.OPVOff + int(st.cfg.HopIndex)*opt.OPVSize
			if len(region) < slotOff+opt.OPVSize {
				md.DropWith("unsupported-slice")
				return
			}
			var msg [opt.MACInputSize + 16]byte
			copy(msg[:], region[shift:shift+opt.MACInputSize])
			copy(msg[opt.MACInputSize:], st.cfg.PrevLabel[:])
			st.mac(phv, region[slotOff:slotOff+opt.OPVSize], msg[:], md)
		})
		add(core.KeyMark, func(phv *PHV, md *Metadata) {
			if md.Regs[regHaveKey] == 0 {
				md.DropWith("mark-no-key")
				return
			}
			shift := int(md.Regs[regShift])
			if loc(phv) != (shift+opt.PVFOff)*8 || length(phv) != 128 {
				md.DropWith("unsupported-slice")
				return
			}
			region := phv.Bytes(fRegion)
			pvf := region[shift+opt.PVFOff : shift+opt.PVFOff+opt.PVFSize]
			var tmp [16]byte
			st.mac(phv, tmp[:], pvf, md)
			copy(pvf, tmp[:])
		})
	}
	return t
}

// mac runs the configured MAC extern under the PHV's loaded hop key.
func (st *dipState) mac(phv *PHV, out, msg []byte, md *Metadata) {
	var key [16]byte
	copy(key[:], phv.Bytes(fHopKey))
	switch st.cfg.MACKind {
	case opt.Kind2EM:
		c := crypto2em.FromMaster(&key)
		c.SumInto(out, msg)
	case opt.KindAESCMAC:
		m, err := cmac.New(key[:])
		if err != nil {
			md.DropWith("mac")
			return
		}
		m.SumInto(out, msg)
	default:
		md.DropWith("mac-kind")
	}
}

// lpmTable builds a gated LPM stage table mirroring a FIB. Entries are
// loaded from the FIB at compile time (controller table writes).
func (st *dipState) lpmTable(name string, field FieldID, gateReg int, table *fib.Table) *Table {
	t := &Table{
		Name: name,
		Kind: MatchLPM,
		Key:  func(phv *PHV, _ *Metadata) []byte { return phv.Bytes(field) },
		Gate: func(_ *PHV, md *Metadata) bool { return md.Regs[gateReg] == 1 },
		Default: func(_ *PHV, md *Metadata) {
			md.DropWith("no-route")
		},
	}
	if table != nil {
		table.Walk(func(prefix []byte, plen int, nh fib.NextHop) bool {
			port := nh.Port
			t.AddEntry(Entry{
				Key:       append([]byte(nil), prefix...),
				PrefixLen: plen,
				Action: func(_ *PHV, md *Metadata) {
					if port == fib.PortLocal {
						md.ToHost = true
						return
					}
					md.AddEgress(port)
				},
			})
			return true
		})
	}
	return t
}

// pitTable is the stateful PIT extern stage.
func (st *dipState) pitTable() *Table {
	return &Table{
		Name: "pit",
		Kind: MatchExact,
		Key:  func(_ *PHV, _ *Metadata) []byte { return nil },
		Gate: func(_ *PHV, md *Metadata) bool {
			return md.Regs[regPITInterest] == 1 || md.Regs[regPITData] == 1
		},
		Default: func(phv *PHV, md *Metadata) {
			if st.cfg.PIT == nil {
				md.DropWith("no-pit")
				return
			}
			name := phv.Uint32(fName)
			if md.Regs[regPITInterest] == 1 {
				if md.ToHost || md.Drop {
					return // local producer or already no-route
				}
				created, err := st.cfg.PIT.AddInterest(name, md.InPort)
				if err != nil {
					md.DropWith("pit-full")
					return
				}
				if !created {
					md.NEgress = 0
					md.Absorbed = true
				}
				return
			}
			var buf [pit.MaxPortsPerEntry]int
			ports, ok := st.cfg.PIT.Consume(buf[:0], name)
			if !ok {
				md.DropWith("pit-miss")
				return
			}
			for _, p := range ports {
				md.AddEgress(p)
			}
		},
	}
}

// deparse writes the PHV's mutated fields (hop limit, locations region)
// back into the packet buffer in place.
func deparse(phv *PHV, _ *Metadata, original []byte, headerLen int) []byte {
	original[3] = phv.Bytes(fHopLimit)[0]
	region := phv.Bytes(fRegion)
	copy(original[headerLen-len(region):headerLen], region)
	return original
}

// Program is a compiled DIP dataplane with its runtime-programmability
// surface exposed: the pipeline itself plus handles to the per-slot
// dispatch tables so new operation modules can be installed while traffic
// flows — the in-situ programmability ([rP4, FlexCore, IPSA] in the
// paper's related work) that §5 positions DIP to exploit.
type Program struct {
	Pipeline *Pipeline
	dispatch []*Table // one per FN slot, in slot order
}

// CompileProgram is Compile returning the runtime handle.
func CompileProgram(cfg ops.Config) (*Program, error) {
	pl, err := Compile(cfg)
	if err != nil {
		return nil, err
	}
	p := &Program{Pipeline: pl}
	// Stages 1..MaxFNSlots hold the dispatch tables (stage 0 is hop limit).
	for slot := 0; slot < MaxFNSlots; slot++ {
		p.dispatch = append(p.dispatch, pl.Stages[1+slot].Tables[0])
	}
	return p, nil
}

// Operand is the slot-relative view an installed operation receives.
type Operand struct {
	// LocBits/LenBits are the FN triple's coordinates.
	LocBits, LenBits int
	// Region is the packet's FN-locations region (mutable in place).
	Region []byte
}

// Bytes returns the operand's byte range when it is byte-aligned and in
// range, else nil.
func (o Operand) Bytes() []byte {
	if o.LocBits%8 != 0 || o.LenBits%8 != 0 {
		return nil
	}
	lo, hi := o.LocBits/8, (o.LocBits+o.LenBits)/8
	if hi > len(o.Region) {
		return nil
	}
	return o.Region[lo:hi]
}

// SlotAction is an installable operation module body.
type SlotAction func(op Operand, phv *PHV, md *Metadata)

// InstallOperation deploys a new operation module under key at runtime:
// one table write per dispatch slot, no pipeline rebuild, packets keep
// flowing. This is the "network providers can support new services by only
// upgrading FNs" (§5) mechanism on the switch model.
func (p *Program) InstallOperation(key core.Key, action SlotAction) error {
	if key == core.KeyInvalid || key > 0x7FFF {
		return fmt.Errorf("%w: cannot install key %d", ErrPipeline, key)
	}
	for slot, tbl := range p.dispatch {
		locF := fLoc0 + FieldID(slot)
		lenF := fLen0 + FieldID(slot)
		entry := Entry{
			Key: []byte{byte(key >> 8), byte(key)},
			Action: func(phv *PHV, md *Metadata) {
				action(Operand{
					LocBits: int(binary.BigEndian.Uint16(phv.Bytes(locF))),
					LenBits: int(binary.BigEndian.Uint16(phv.Bytes(lenF))),
					Region:  phv.Bytes(fRegion),
				}, phv, md)
			},
		}
		if err := tbl.InsertEntry(entry); err != nil {
			return err
		}
	}
	return nil
}

// RemoveOperation withdraws every dispatch entry for key, returning how
// many slots were cleared.
func (p *Program) RemoveOperation(key core.Key) int {
	removed := 0
	want := []byte{byte(key >> 8), byte(key)}
	for _, tbl := range p.dispatch {
		removed += tbl.DeleteEntries(func(e Entry) bool {
			return len(e.Key) == 2 && e.Key[0] == want[0] && e.Key[1] == want[1]
		})
	}
	return removed
}
