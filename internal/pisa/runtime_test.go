package pisa

import (
	"encoding/binary"
	"sync"
	"testing"

	"dip/internal/core"
	"dip/internal/extops"
	"dip/internal/fib"
	"dip/internal/ops"
	"dip/internal/profiles"
)

func TestRegisterArray(t *testing.T) {
	r := NewRegisterArray("flows", 8)
	if r.Name() != "flows" || r.Len() != 8 || r.Bytes() != 32 {
		t.Errorf("metadata: %s %d %d", r.Name(), r.Len(), r.Bytes())
	}
	if got := r.RMW(3, func(v uint32) uint32 { return v + 5 }); got != 5 {
		t.Errorf("RMW = %d", got)
	}
	if r.Read(3) != 5 {
		t.Errorf("Read = %d", r.Read(3))
	}
	if r.RMW(99, func(v uint32) uint32 { return 1 }) != 0 || r.Read(-1) != 0 {
		t.Error("out-of-range cells must be inert")
	}
	// Atomicity under contention.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.RMW(0, func(v uint32) uint32 { return v + 1 })
			}
		}()
	}
	wg.Wait()
	if r.Read(0) != 8000 {
		t.Errorf("lost updates: %d", r.Read(0))
	}
}

func TestTableRuntimeMutationAndStats(t *testing.T) {
	tb := &Table{
		Kind: MatchExact,
		Key:  func(phv *PHV, _ *Metadata) []byte { return phv.Bytes(tfA) },
	}
	hit := 0
	if err := tb.InsertEntry(Entry{Key: []byte{7}, Action: func(*PHV, *Metadata) { hit++ }}); err != nil {
		t.Fatal(err)
	}
	var phv PHV
	var md Metadata
	phv.Set(tfA, []byte{7})
	tb.Apply(&phv, &md)
	phv.Set(tfA, []byte{8})
	tb.Apply(&phv, &md)
	if hit != 1 {
		t.Errorf("hits ran %d", hit)
	}
	if s := tb.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats %+v", s)
	}
	if n := tb.DeleteEntries(func(e Entry) bool { return e.Key[0] == 7 }); n != 1 {
		t.Errorf("deleted %d", n)
	}
	if tb.EntryCount() != 0 {
		t.Errorf("count %d", tb.EntryCount())
	}
	phv.Set(tfA, []byte{7})
	tb.Apply(&phv, &md)
	if hit != 1 {
		t.Error("deleted entry still firing")
	}
}

func TestUsageAndBudget(t *testing.T) {
	cfg := ops.Config{FIB32: fib.New()}
	for i := uint32(0); i < 100; i++ {
		cfg.FIB32.AddUint32(i<<16, 16, fib.NextHop{Port: 1})
	}
	pl, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	regs := NewRegisterArray("r", 1024)
	u := pl.Usage(regs)
	if u.Stages != len(pl.Stages) || u.Entries < 100 || u.RegisterBytes != 4096 {
		t.Errorf("usage %+v", u)
	}
	if err := u.CheckBudget(); err != nil {
		t.Errorf("in-budget pipeline rejected: %v", err)
	}
	over := u
	over.MaxStageWidth = MaxTablesPerStage + 1
	if over.CheckBudget() == nil {
		t.Error("stage-width violation accepted")
	}
	over = u
	over.RegisterBytes = MaxRegisterBytes + 1
	if over.CheckBudget() == nil {
		t.Error("register violation accepted")
	}
	over = u
	over.Stages = MaxStages + 1
	if over.CheckBudget() == nil {
		t.Error("stage violation accepted")
	}
	over = u
	over.ParserStates = MaxParserStates + 1
	if over.CheckBudget() == nil {
		t.Error("parser violation accepted")
	}
}

// The flagship runtime-programmability scenario: F_tel is installed into a
// live PISA switch via table writes; packets carrying key 14 collect
// telemetry only after installation, and stop after removal.
func TestInstallOperationAtRuntime(t *testing.T) {
	cfg := ops.Config{FIB32: fib.New()}
	cfg.FIB32.AddUint32(0x0A000000, 8, fib.NextHop{Port: 1})
	prog, err := CompileProgram(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Composed packet: DIP-32 forwarding + an F_tel operand.
	h := profiles.IPv4([4]byte{1, 1, 1, 1}, [4]byte{10, 0, 0, 9})
	telOff := uint16(len(h.Locations) * 8)
	h.Locations = append(h.Locations, extops.NewTelRegion(2)...)
	h.FNs = append(h.FNs, core.FN{Loc: telOff, Len: extops.TelOperandBits(2), Key: extops.KeyTel})
	pkt, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	run := func() []extops.HopRecord {
		t.Helper()
		cp := append([]byte(nil), pkt...)
		var phv PHV
		var md Metadata
		out, err := prog.Pipeline.Process(cp, 0, &phv, &md)
		if err != nil || md.Drop {
			t.Fatalf("md=%+v err=%v", md, err)
		}
		if md.NEgress != 1 {
			t.Fatalf("forwarding broken: %+v", md)
		}
		v, _ := core.ParseView(out)
		records, _, err := extops.DecodeTel(v.Locations()[telOff/8:])
		if err != nil {
			t.Fatal(err)
		}
		return records
	}

	// Before installation key 14 is unknown: ignored, no telemetry.
	if records := run(); len(records) != 0 {
		t.Fatalf("telemetry before installation: %v", records)
	}

	// Install F_tel with a register-backed hop counter at runtime.
	seq := NewRegisterArray("tel_seq", 1)
	err = prog.InstallOperation(extops.KeyTel, func(op Operand, _ *PHV, md *Metadata) {
		region := op.Bytes()
		if region == nil {
			md.DropWith("unsupported-slice")
			return
		}
		count := int(region[0])
		if 4+(count+1)*extops.TelSlotSize > len(region) {
			region[0] |= 0x80
			return
		}
		slot := region[4+count*extops.TelSlotSize:]
		binary.BigEndian.PutUint32(slot, 0x51)
		binary.BigEndian.PutUint32(slot[4:], seq.RMW(0, func(v uint32) uint32 { return v + 1 }))
		region[0] = byte(count + 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	records := run()
	if len(records) != 1 || records[0].HopID != 0x51 || records[0].TimestampUs != 1 {
		t.Fatalf("telemetry after installation: %v", records)
	}
	if records := run(); len(records) != 1 || records[0].TimestampUs != 2 {
		t.Fatalf("register state not advancing: %v", records)
	}

	// Withdraw the module: key 14 is ignored again.
	if n := prog.RemoveOperation(extops.KeyTel); n != MaxFNSlots {
		t.Fatalf("removed %d entries", n)
	}
	if records := run(); len(records) != 0 {
		t.Fatalf("telemetry after removal: %v", records)
	}
}

func TestInstallOperationValidation(t *testing.T) {
	prog, err := CompileProgram(ops.Config{FIB32: fib.New()})
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.InstallOperation(core.KeyInvalid, nil); err == nil {
		t.Error("key 0 installed")
	}
	if err := prog.InstallOperation(0x8001, nil); err == nil {
		t.Error("key above 15 bits installed")
	}
}

func TestOperandBytes(t *testing.T) {
	region := []byte{1, 2, 3, 4}
	if b := (Operand{LocBits: 8, LenBits: 16, Region: region}).Bytes(); len(b) != 2 || b[0] != 2 {
		t.Errorf("aligned: %v", b)
	}
	if (Operand{LocBits: 4, LenBits: 16, Region: region}).Bytes() != nil {
		t.Error("unaligned loc accepted")
	}
	if (Operand{LocBits: 0, LenBits: 12, Region: region}).Bytes() != nil {
		t.Error("unaligned len accepted")
	}
	if (Operand{LocBits: 24, LenBits: 16, Region: region}).Bytes() != nil {
		t.Error("out of range accepted")
	}
}
