// Package pit implements the pending interest table behind F_PIT and the
// native NDN forwarder.
//
// A PIT records, per requested content name, the ports on which interests
// arrived; a returning data packet consumes the entry and is replicated to
// those ports, while a data packet with no entry is discarded (paper §3:
// "forwards it to the recorded request port (match hit) or discards the
// packet (match miss)"). Interests for a name already pending aggregate
// instead of being forwarded again — the caller learns this from
// AddInterest's created result.
//
// Entries expire after a TTL so abandoned interests cannot pin router state
// forever; a capacity bound enforces the paper's §2.4 state-exhaustion
// defense at the table level (the per-packet budget lives in core.Limits).
package pit

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrFull reports an insert into a PIT at capacity.
var ErrFull = errors.New("pit: table full")

// ErrPortCap reports an insert refused because the ingress port already has
// its full allowance of pending entries — the interest-flood defense that
// keeps one aggressive consumer from exhausting the shared table.
var ErrPortCap = errors.New("pit: per-port pending cap reached")

// MaxPortsPerEntry bounds interest aggregation per name.
const MaxPortsPerEntry = 8

// EntryCost is the accounting size of one PIT entry in bytes, charged
// against per-packet state budgets.
const EntryCost = 64

// Table is a pending interest table keyed by K (a 32-bit name ID on the
// DIP wire, a name string in the native NDN forwarder). It is safe for
// concurrent use.
type Table[K comparable] struct {
	mu      sync.Mutex
	entries map[K]*entry
	ttl     time.Duration
	cap     int
	now     func() time.Time
	expired int64
	// portCap bounds how many pending (entry, port) charges any single
	// ingress port may hold; 0 disables the check. perPort tracks the live
	// charges, portCapHits the refusals.
	portCap     int
	perPort     map[int]int
	portCapHits int64
}

type entry struct {
	ports   [MaxPortsPerEntry]int
	nports  int
	expires time.Time
}

// Option configures a Table.
type Option[K comparable] func(*Table[K])

// WithTTL sets the interest lifetime (default 4s, NDN's customary value).
func WithTTL[K comparable](ttl time.Duration) Option[K] {
	return func(t *Table[K]) { t.ttl = ttl }
}

// WithCapacity bounds the number of simultaneous entries (default 65536).
func WithCapacity[K comparable](n int) Option[K] {
	return func(t *Table[K]) { t.cap = n }
}

// WithClock injects a time source for tests.
func WithClock[K comparable](now func() time.Time) Option[K] {
	return func(t *Table[K]) { t.now = now }
}

// WithPerPortCap bounds the pending entries any single ingress port may
// hold (default 0 = unbounded). A port at its cap has further interests
// refused with ErrPortCap while well-behaved ports keep inserting — the
// per-source isolation the shared capacity bound alone cannot give.
func WithPerPortCap[K comparable](n int) Option[K] {
	return func(t *Table[K]) { t.portCap = n }
}

// New returns an empty PIT.
func New[K comparable](opts ...Option[K]) *Table[K] {
	t := &Table[K]{
		entries: make(map[K]*entry),
		ttl:     4 * time.Second,
		cap:     65536,
		now:     time.Now,
		perPort: make(map[int]int),
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

// AddInterest records that an interest for k arrived on port. created is
// true when no live entry existed (the caller should forward the interest
// upstream) and false when the interest aggregated onto an existing entry
// (the caller should not forward). ErrFull means the table is at capacity.
func (t *Table[K]) AddInterest(k K, port int) (created bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	e, ok := t.entries[k]
	if ok && now.After(e.expires) {
		t.remove(k, e)
		ok = false
	}
	if !ok {
		if len(t.entries) >= t.cap {
			return false, ErrFull
		}
		if !t.chargePort(port) {
			return false, ErrPortCap
		}
		e = &entry{expires: now.Add(t.ttl)}
		e.ports[0] = port
		e.nports = 1
		t.entries[k] = e
		return true, nil
	}
	e.expires = now.Add(t.ttl)
	for i := 0; i < e.nports; i++ {
		if e.ports[i] == port {
			return false, nil
		}
	}
	if e.nports < MaxPortsPerEntry {
		if !t.chargePort(port) {
			return false, ErrPortCap
		}
		e.ports[e.nports] = port
		e.nports++
	}
	return false, nil
}

// chargePort accounts one pending entry against port, refusing at the cap.
func (t *Table[K]) chargePort(port int) bool {
	if t.portCap > 0 && t.perPort[port] >= t.portCap {
		t.portCapHits++
		return false
	}
	t.perPort[port]++
	return true
}

// remove deletes an entry and releases its per-port charges.
func (t *Table[K]) remove(k K, e *entry) {
	delete(t.entries, k)
	for i := 0; i < e.nports; i++ {
		p := e.ports[i]
		if t.perPort[p] <= 1 {
			delete(t.perPort, p)
		} else {
			t.perPort[p]--
		}
	}
}

// Consume pops the entry for k, appending its request ports to dst and
// returning the extended slice. ok is false (and dst unchanged) when no live
// entry exists — the data packet should then be discarded. Passing a
// caller-owned dst keeps the hot path allocation-free.
func (t *Table[K]) Consume(dst []int, k K) (ports []int, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, found := t.entries[k]
	if !found {
		return dst, false
	}
	t.remove(k, e)
	if t.now().After(e.expires) {
		return dst, false
	}
	return append(dst, e.ports[:e.nports]...), true
}

// Pending reports whether a live entry exists for k without consuming it.
func (t *Table[K]) Pending(k K) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[k]
	return ok && !t.now().After(e.expires)
}

// Len returns the number of entries, counting ones not yet swept.
func (t *Table[K]) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// Expire sweeps dead entries and returns how many were removed. Routers
// call this periodically; correctness does not depend on it because every
// read path re-checks expiry.
func (t *Table[K]) Expire() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	n := 0
	for k, e := range t.entries {
		if now.After(e.expires) {
			t.remove(k, e)
			n++
		}
	}
	t.expired += int64(n)
	return n
}

// PortPending returns the live pending-entry charges held by one ingress
// port.
func (t *Table[K]) PortPending(port int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.perPort[port]
}

// PortCapRejections returns how many interests the per-port cap has refused
// over the table's lifetime.
func (t *Table[K]) PortCapRejections() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.portCapHits
}

// ExpiredTotal returns how many entries sweeps have removed over the
// table's lifetime (lazy expiry on the read paths is not counted: those
// entries were superseded, not abandoned).
func (t *Table[K]) ExpiredTotal() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.expired
}

// Scheduler arms the periodic sweep; the netsim Simulator satisfies it, so
// sweeps run in virtual time during simulations and on any caller-supplied
// timer in a live deployment.
type Scheduler interface {
	Schedule(delay time.Duration, fn func())
}

// SweepEvery runs Expire every interval on sched until the returned cancel
// function is called. onExpired, when non-nil, is invoked after each sweep
// that removed at least one entry (wire it to telemetry).
func (t *Table[K]) SweepEvery(sched Scheduler, interval time.Duration, onExpired func(removed int)) (cancel func()) {
	var stopped atomic.Bool
	var tick func()
	tick = func() {
		if stopped.Load() {
			return
		}
		if n := t.Expire(); n > 0 && onExpired != nil {
			onExpired(n)
		}
		sched.Schedule(interval, tick)
	}
	sched.Schedule(interval, tick)
	return func() { stopped.Store(true) }
}
