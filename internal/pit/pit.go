// Package pit implements the pending interest table behind F_PIT and the
// native NDN forwarder.
//
// A PIT records, per requested content name, the ports on which interests
// arrived; a returning data packet consumes the entry and is replicated to
// those ports, while a data packet with no entry is discarded (paper §3:
// "forwards it to the recorded request port (match hit) or discards the
// packet (match miss)"). Interests for a name already pending aggregate
// instead of being forwarded again — the caller learns this from
// AddInterest's created result.
//
// Entries expire after a TTL so abandoned interests cannot pin router state
// forever; a capacity bound enforces the paper's §2.4 state-exhaustion
// defense at the table level (the per-packet budget lives in core.Limits).
//
// The table is split into power-of-two shards keyed by name hash so
// concurrent forwarding workers contend only when they touch the same shard.
// The capacity bound and the per-port flood caps stay global — they are
// atomic counters shared by every shard — so sharding changes scalability,
// never semantics: ErrFull still fires at exactly cap entries and ErrPortCap
// at exactly the configured per-port allowance, wherever the keys hash.
package pit

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"dip/internal/nhash"
)

// ErrFull reports an insert into a PIT at capacity.
var ErrFull = errors.New("pit: table full")

// ErrPortCap reports an insert refused because the ingress port already has
// its full allowance of pending entries — the interest-flood defense that
// keeps one aggressive consumer from exhausting the shared table.
var ErrPortCap = errors.New("pit: per-port pending cap reached")

// MaxPortsPerEntry bounds interest aggregation per name.
const MaxPortsPerEntry = 8

// EntryCost is the accounting size of one PIT entry in bytes, charged
// against per-packet state budgets.
const EntryCost = 64

// DefaultShards is the shard count New uses unless WithShards overrides it.
// Eight shards cost ~3KB of fixed overhead and keep 8 workers from
// serializing; single-threaded callers lose nothing measurable.
const DefaultShards = 8

// Table is a pending interest table keyed by K (a 32-bit name ID on the
// DIP wire, a name string in the native NDN forwarder). It is safe for
// concurrent use; see the package comment for the sharding discipline.
type Table[K comparable] struct {
	shards []shard[K]
	mask   uint64

	ttl time.Duration
	cap int64
	now func() time.Time
	// size is the live entry count across all shards. Creations reserve a
	// slot with a CAS loop against cap, so the bound is exact.
	size    atomic.Int64
	expired atomic.Int64

	// portCap bounds how many pending (entry, port) charges any single
	// ingress port may hold; 0 disables the check. ports tracks the live
	// charges globally (a port's interests spread across shards),
	// portCapHits the refusals.
	portCap     int64
	ports       portTab
	portCapHits atomic.Int64
}

// shard is one lock domain: a private map, and a free list of entries so
// the create/consume steady state allocates nothing.
type shard[K comparable] struct {
	mu      sync.Mutex
	entries map[K]*entry
	free    []*entry
	_       [24]byte // keep neighboring shard locks off one cache line
}

type entry struct {
	ports   [MaxPortsPerEntry]int
	nports  int
	expires time.Time
}

// portTab tracks per-port pending charges as shared atomic counters. The
// read/charge path is lock-free once a port's counter exists; the RWMutex
// only guards counter creation (once per distinct port, ever).
type portTab struct {
	mu sync.RWMutex
	m  map[int]*atomic.Int64
}

func (p *portTab) counter(port int) *atomic.Int64 {
	p.mu.RLock()
	c := p.m[port]
	p.mu.RUnlock()
	if c != nil {
		return c
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if c = p.m[port]; c == nil {
		if p.m == nil {
			p.m = make(map[int]*atomic.Int64)
		}
		c = new(atomic.Int64)
		p.m[port] = c
	}
	return c
}

// pending returns the port's live charge count without creating a counter.
func (p *portTab) pending(port int) int {
	p.mu.RLock()
	c := p.m[port]
	p.mu.RUnlock()
	if c == nil {
		return 0
	}
	return int(c.Load())
}

// Option configures a Table.
type Option[K comparable] func(*Table[K])

// WithTTL sets the interest lifetime (default 4s, NDN's customary value).
func WithTTL[K comparable](ttl time.Duration) Option[K] {
	return func(t *Table[K]) { t.ttl = ttl }
}

// WithCapacity bounds the number of simultaneous entries (default 65536).
// The bound is global and exact regardless of the shard count.
func WithCapacity[K comparable](n int) Option[K] {
	return func(t *Table[K]) { t.cap = int64(n) }
}

// WithClock injects a time source for tests.
func WithClock[K comparable](now func() time.Time) Option[K] {
	return func(t *Table[K]) { t.now = now }
}

// WithPerPortCap bounds the pending entries any single ingress port may
// hold (default 0 = unbounded). A port at its cap has further interests
// refused with ErrPortCap while well-behaved ports keep inserting — the
// per-source isolation the shared capacity bound alone cannot give.
func WithPerPortCap[K comparable](n int) Option[K] {
	return func(t *Table[K]) { t.portCap = int64(n) }
}

// WithShards sets the lock-shard count (rounded down to a power of two,
// minimum 1; default DefaultShards). More shards help when more forwarding
// workers hammer the table; semantics never change.
func WithShards[K comparable](n int) Option[K] {
	return func(t *Table[K]) { t.shards = make([]shard[K], nhash.Pow2(n)) }
}

// New returns an empty PIT.
func New[K comparable](opts ...Option[K]) *Table[K] {
	t := &Table[K]{
		ttl: 4 * time.Second,
		cap: 65536,
		now: time.Now,
	}
	for _, o := range opts {
		o(t)
	}
	if t.shards == nil {
		t.shards = make([]shard[K], DefaultShards)
	}
	t.mask = uint64(len(t.shards) - 1)
	for i := range t.shards {
		t.shards[i].entries = make(map[K]*entry)
	}
	return t
}

// NumShards returns the shard count (a power of two).
func (t *Table[K]) NumShards() int { return len(t.shards) }

func (t *Table[K]) shardOf(k K) *shard[K] {
	return &t.shards[nhash.Of(k)&t.mask]
}

// getEntry takes an entry from the shard's free list, or allocates one.
// Called with the shard lock held.
func (s *shard[K]) getEntry() *entry {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return e
	}
	return new(entry)
}

// AddInterest records that an interest for k arrived on port. created is
// true when no live entry existed (the caller should forward the interest
// upstream) and false when the interest aggregated onto an existing entry
// (the caller should not forward). ErrFull means the table is at capacity.
func (t *Table[K]) AddInterest(k K, port int) (created bool, err error) {
	sh := t.shardOf(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	now := t.now()
	e, ok := sh.entries[k]
	if ok && now.After(e.expires) {
		t.removeLocked(sh, k, e)
		ok = false
	}
	if !ok {
		// Reserve a capacity slot first; the CAS loop keeps the global
		// bound exact even with every shard inserting at once.
		for {
			cur := t.size.Load()
			if cur >= t.cap {
				return false, ErrFull
			}
			if t.size.CompareAndSwap(cur, cur+1) {
				break
			}
		}
		if !t.chargePort(port) {
			t.size.Add(-1) // release the reservation
			return false, ErrPortCap
		}
		e = sh.getEntry()
		e.expires = now.Add(t.ttl)
		e.ports[0] = port
		e.nports = 1
		sh.entries[k] = e
		return true, nil
	}
	e.expires = now.Add(t.ttl)
	for i := 0; i < e.nports; i++ {
		if e.ports[i] == port {
			return false, nil
		}
	}
	if e.nports < MaxPortsPerEntry {
		if !t.chargePort(port) {
			return false, ErrPortCap
		}
		e.ports[e.nports] = port
		e.nports++
	}
	return false, nil
}

// chargePort accounts one pending entry against port, refusing at the cap.
func (t *Table[K]) chargePort(port int) bool {
	c := t.ports.counter(port)
	if t.portCap <= 0 {
		c.Add(1)
		return true
	}
	for {
		cur := c.Load()
		if cur >= t.portCap {
			t.portCapHits.Add(1)
			return false
		}
		if c.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// removeLocked deletes an entry (shard lock held), releases its per-port
// charges and capacity slot, and recycles the entry.
func (t *Table[K]) removeLocked(sh *shard[K], k K, e *entry) {
	delete(sh.entries, k)
	for i := 0; i < e.nports; i++ {
		t.ports.counter(e.ports[i]).Add(-1)
	}
	t.size.Add(-1)
	*e = entry{}
	sh.free = append(sh.free, e)
}

// Consume pops the entry for k, appending its request ports to dst and
// returning the extended slice. ok is false (and dst unchanged) when no live
// entry exists — the data packet should then be discarded. Passing a
// caller-owned dst keeps the hot path allocation-free.
func (t *Table[K]) Consume(dst []int, k K) (ports []int, ok bool) {
	sh := t.shardOf(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, found := sh.entries[k]
	if !found {
		return dst, false
	}
	expired := t.now().After(e.expires)
	if !expired {
		dst = append(dst, e.ports[:e.nports]...)
	}
	t.removeLocked(sh, k, e)
	return dst, !expired
}

// Pending reports whether a live entry exists for k without consuming it.
func (t *Table[K]) Pending(k K) bool {
	sh := t.shardOf(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[k]
	return ok && !t.now().After(e.expires)
}

// Len returns the number of entries, counting ones not yet swept.
func (t *Table[K]) Len() int {
	return int(t.size.Load())
}

// Expire sweeps dead entries and returns how many were removed. Routers
// call this periodically; correctness does not depend on it because every
// read path re-checks expiry. Shards are swept one at a time, so the sweep
// never stalls the whole table.
func (t *Table[K]) Expire() int {
	now := t.now()
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for k, e := range sh.entries {
			if now.After(e.expires) {
				t.removeLocked(sh, k, e)
				n++
			}
		}
		sh.mu.Unlock()
	}
	t.expired.Add(int64(n))
	return n
}

// PortPending returns the live pending-entry charges held by one ingress
// port.
func (t *Table[K]) PortPending(port int) int {
	return t.ports.pending(port)
}

// PortCapRejections returns how many interests the per-port cap has refused
// over the table's lifetime.
func (t *Table[K]) PortCapRejections() int64 {
	return t.portCapHits.Load()
}

// ExpiredTotal returns how many entries sweeps have removed over the
// table's lifetime (lazy expiry on the read paths is not counted: those
// entries were superseded, not abandoned).
func (t *Table[K]) ExpiredTotal() int64 {
	return t.expired.Load()
}

// Scheduler arms the periodic sweep; the netsim Simulator satisfies it, so
// sweeps run in virtual time during simulations and on any caller-supplied
// timer in a live deployment.
type Scheduler interface {
	Schedule(delay time.Duration, fn func())
}

// SweepEvery runs Expire every interval on sched until the returned cancel
// function is called. onExpired, when non-nil, is invoked after each sweep
// that removed at least one entry (wire it to telemetry).
func (t *Table[K]) SweepEvery(sched Scheduler, interval time.Duration, onExpired func(removed int)) (cancel func()) {
	var stopped atomic.Bool
	var tick func()
	tick = func() {
		if stopped.Load() {
			return
		}
		if n := t.Expire(); n > 0 && onExpired != nil {
			onExpired(n)
		}
		sched.Schedule(interval, tick)
	}
	sched.Schedule(interval, tick)
	return func() { stopped.Store(true) }
}
