package pit

import (
	"testing"
	"time"

	"dip/internal/netsim"
)

// Table-driven PIT semantics under the packet pathologies fault-injected
// links produce: duplicate data (no double-satisfy), reordered data
// (arriving before any interest, or after expiry), and expiry sweeping
// (no stale-entry leak).
func TestPITUnderDuplicateAndReorderedData(t *testing.T) {
	type step struct {
		op       string // "interest", "data", "advance", "sweep"
		name     uint32
		port     int
		d        time.Duration // advance
		wantNew  bool          // interest: expect created
		wantOK   bool          // data: expect a live entry consumed
		wantPort []int         // data: expected request ports
		wantLen  int           // sweep/advance: expected live Len afterwards
	}
	cases := []struct {
		label string
		ttl   time.Duration
		steps []step
	}{
		{
			label: "duplicate data satisfies once",
			ttl:   time.Second,
			steps: []step{
				{op: "interest", name: 1, port: 2, wantNew: true},
				{op: "data", name: 1, wantOK: true, wantPort: []int{2}},
				{op: "data", name: 1, wantOK: false}, // the duplicate
			},
		},
		{
			label: "reordered data with no pending interest is a miss",
			ttl:   time.Second,
			steps: []step{
				{op: "data", name: 9, wantOK: false},
				{op: "interest", name: 9, port: 1, wantNew: true},
				{op: "data", name: 9, wantOK: true, wantPort: []int{1}},
			},
		},
		{
			label: "aggregated interests all satisfied by one data, duplicates by none",
			ttl:   time.Second,
			steps: []step{
				{op: "interest", name: 5, port: 0, wantNew: true},
				{op: "interest", name: 5, port: 3, wantNew: false},
				{op: "interest", name: 5, port: 3, wantNew: false}, // duplicate interest, same port
				{op: "data", name: 5, wantOK: true, wantPort: []int{0, 3}},
				{op: "data", name: 5, wantOK: false},
			},
		},
		{
			label: "data after TTL is a miss and re-expressed interest recreates",
			ttl:   10 * time.Millisecond,
			steps: []step{
				{op: "interest", name: 7, port: 4, wantNew: true},
				{op: "advance", d: 20 * time.Millisecond},
				{op: "data", name: 7, wantOK: false}, // too late: entry dead
				{op: "interest", name: 7, port: 4, wantNew: true},
				{op: "data", name: 7, wantOK: true, wantPort: []int{4}},
			},
		},
		{
			label: "sweep removes expired entries only",
			ttl:   10 * time.Millisecond,
			steps: []step{
				{op: "interest", name: 1, port: 0, wantNew: true},
				{op: "interest", name: 2, port: 1, wantNew: true},
				{op: "advance", d: 20 * time.Millisecond},
				{op: "interest", name: 3, port: 2, wantNew: true},
				{op: "sweep", wantLen: 1}, // 1 and 2 dead, 3 live
				{op: "data", name: 3, wantOK: true, wantPort: []int{2}},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			now := time.Unix(0, 0)
			tab := New[uint32](WithTTL[uint32](tc.ttl), WithClock[uint32](func() time.Time { return now }))
			for i, s := range tc.steps {
				switch s.op {
				case "interest":
					created, err := tab.AddInterest(s.name, s.port)
					if err != nil {
						t.Fatalf("step %d: %v", i, err)
					}
					if created != s.wantNew {
						t.Fatalf("step %d: created=%v, want %v", i, created, s.wantNew)
					}
				case "data":
					ports, ok := tab.Consume(nil, s.name)
					if ok != s.wantOK {
						t.Fatalf("step %d: consume ok=%v, want %v", i, ok, s.wantOK)
					}
					if len(ports) != len(s.wantPort) {
						t.Fatalf("step %d: ports %v, want %v", i, ports, s.wantPort)
					}
					for j := range ports {
						if ports[j] != s.wantPort[j] {
							t.Fatalf("step %d: ports %v, want %v", i, ports, s.wantPort)
						}
					}
				case "advance":
					now = now.Add(s.d)
				case "sweep":
					tab.Expire()
					if tab.Len() != s.wantLen {
						t.Fatalf("step %d: len=%d after sweep, want %d", i, tab.Len(), s.wantLen)
					}
				}
			}
			// No stale-entry leak: after expiring everything, a final sweep
			// leaves the table empty.
			now = now.Add(time.Hour)
			tab.Expire()
			if tab.Len() != 0 {
				t.Errorf("stale entries leaked: len=%d", tab.Len())
			}
		})
	}
}

func TestSweepEveryOnSimulator(t *testing.T) {
	sim := netsim.New()
	// Drive the PIT clock from virtual time so expiry is deterministic.
	base := time.Unix(0, 0)
	tab := New[uint32](
		WithTTL[uint32](30*time.Millisecond),
		WithClock[uint32](func() time.Time { return base.Add(sim.Now()) }),
	)
	var sweeps []int
	cancel := tab.SweepEvery(sim, 25*time.Millisecond, func(n int) { sweeps = append(sweeps, n) })

	tab.AddInterest(1, 0)
	tab.AddInterest(2, 1)
	sim.Schedule(40*time.Millisecond, func() { tab.AddInterest(3, 2) })

	sim.RunUntil(60 * time.Millisecond)
	// Sweep at 25ms: nothing expired. Sweep at 50ms: entries 1 and 2 (TTL
	// 30ms) are dead; entry 3 (added at 40ms) survives.
	if len(sweeps) != 1 || sweeps[0] != 2 {
		t.Errorf("sweep removals %v, want [2]", sweeps)
	}
	if tab.Len() != 1 || !tab.Pending(3) {
		t.Errorf("len=%d pending(3)=%v", tab.Len(), tab.Pending(3))
	}
	if tab.ExpiredTotal() != 2 {
		t.Errorf("ExpiredTotal=%d", tab.ExpiredTotal())
	}

	// Cancel stops the chain: the queue drains instead of ticking forever.
	cancel()
	sim.RunUntil(time.Second)
	if sim.Pending() != 0 {
		t.Errorf("%d events still queued after cancel", sim.Pending())
	}
	if len(sweeps) != 1 {
		t.Errorf("sweeps after cancel: %v", sweeps)
	}
}
