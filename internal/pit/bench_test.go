package pit

import (
	"sync/atomic"
	"testing"
)

// BenchmarkShardedPITParallel measures the create/consume cycle under
// concurrent workers at different shard counts. One shard is the pre-shard
// design (every worker on one mutex); DefaultShards should scale with
// GOMAXPROCS because workers with different keys land on different locks.
func BenchmarkShardedPITParallel(b *testing.B) {
	for _, shards := range []int{1, DefaultShards} {
		b.Run(map[int]string{1: "shards-1", DefaultShards: "shards-8"}[shards], func(b *testing.B) {
			t := New[uint32](WithShards[uint32](shards), WithCapacity[uint32](1<<20))
			var seq atomic.Uint32
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Each worker cycles a private key range so entries always
				// create (miss) then consume (hit), the forwarding pattern.
				base := seq.Add(1) << 20
				buf := make([]int, 0, MaxPortsPerEntry)
				i := uint32(0)
				for pb.Next() {
					k := base + i%4096
					if _, err := t.AddInterest(k, int(i&7)); err == nil {
						buf, _ = t.Consume(buf[:0], k)
					}
					i++
				}
			})
		})
	}
}

// BenchmarkPITSequential pins the single-threaded create/consume cost; the
// shard free lists keep it allocation-free.
func BenchmarkPITSequential(b *testing.B) {
	t := New[uint32]()
	buf := make([]int, 0, MaxPortsPerEntry)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint32(i % 4096)
		t.AddInterest(k, i&7)
		buf, _ = t.Consume(buf[:0], k)
	}
}
