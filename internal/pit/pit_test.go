package pit

import (
	"errors"
	"testing"
	"time"
)

type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestPIT(opts ...Option[uint32]) (*Table[uint32], *fakeClock) {
	c := &fakeClock{t: time.Unix(1000, 0)}
	opts = append(opts, WithClock[uint32](c.now))
	return New[uint32](opts...), c
}

func TestInterestThenData(t *testing.T) {
	p, _ := newTestPIT()
	created, err := p.AddInterest(7, 3)
	if err != nil || !created {
		t.Fatalf("created=%v err=%v", created, err)
	}
	ports, ok := p.Consume(nil, 7)
	if !ok || len(ports) != 1 || ports[0] != 3 {
		t.Errorf("Consume = %v %v", ports, ok)
	}
	// Entry is gone after consumption.
	if _, ok := p.Consume(nil, 7); ok {
		t.Error("second Consume succeeded")
	}
	if p.Len() != 0 {
		t.Errorf("Len = %d", p.Len())
	}
}

func TestDataWithoutInterestDiscarded(t *testing.T) {
	p, _ := newTestPIT()
	if _, ok := p.Consume(nil, 42); ok {
		t.Error("data without pending interest matched")
	}
}

func TestInterestAggregation(t *testing.T) {
	p, _ := newTestPIT()
	p.AddInterest(7, 1)
	created, err := p.AddInterest(7, 2)
	if err != nil || created {
		t.Errorf("aggregated interest reported created=%v err=%v", created, err)
	}
	// Same port again must not duplicate.
	p.AddInterest(7, 2)
	ports, ok := p.Consume(nil, 7)
	if !ok || len(ports) != 2 {
		t.Fatalf("ports = %v", ports)
	}
	seen := map[int]bool{ports[0]: true, ports[1]: true}
	if !seen[1] || !seen[2] {
		t.Errorf("ports = %v", ports)
	}
}

func TestAggregationCap(t *testing.T) {
	p, _ := newTestPIT()
	for port := 0; port < MaxPortsPerEntry+4; port++ {
		p.AddInterest(1, port)
	}
	ports, _ := p.Consume(nil, 1)
	if len(ports) != MaxPortsPerEntry {
		t.Errorf("got %d ports, want %d", len(ports), MaxPortsPerEntry)
	}
}

func TestExpiry(t *testing.T) {
	p, clock := newTestPIT(WithTTL[uint32](time.Second))
	p.AddInterest(7, 1)
	clock.advance(2 * time.Second)
	if p.Pending(7) {
		t.Error("expired entry still pending")
	}
	if _, ok := p.Consume(nil, 7); ok {
		t.Error("expired entry consumed")
	}
	// A fresh interest after expiry is a new entry.
	created, _ := p.AddInterest(7, 2)
	if !created {
		t.Error("interest after expiry did not create")
	}
}

func TestExpirySweep(t *testing.T) {
	p, clock := newTestPIT(WithTTL[uint32](time.Second))
	p.AddInterest(1, 1)
	p.AddInterest(2, 1)
	clock.advance(500 * time.Millisecond)
	p.AddInterest(3, 1)
	clock.advance(700 * time.Millisecond) // 1 and 2 dead, 3 alive
	if n := p.Expire(); n != 2 {
		t.Errorf("Expire removed %d, want 2", n)
	}
	if p.Len() != 1 || !p.Pending(3) {
		t.Errorf("Len=%d pending3=%v", p.Len(), p.Pending(3))
	}
}

func TestCapacity(t *testing.T) {
	p, _ := newTestPIT(WithCapacity[uint32](2))
	p.AddInterest(1, 1)
	p.AddInterest(2, 1)
	if _, err := p.AddInterest(3, 1); !errors.Is(err, ErrFull) {
		t.Errorf("err = %v, want ErrFull", err)
	}
	// Aggregation onto existing entries still works at capacity.
	if _, err := p.AddInterest(1, 2); err != nil {
		t.Errorf("aggregation at capacity failed: %v", err)
	}
}

func TestInterestRefreshesTTL(t *testing.T) {
	p, clock := newTestPIT(WithTTL[uint32](time.Second))
	p.AddInterest(7, 1)
	clock.advance(800 * time.Millisecond)
	p.AddInterest(7, 2) // refresh
	clock.advance(800 * time.Millisecond)
	if !p.Pending(7) {
		t.Error("refreshed entry expired early")
	}
}

func TestConsumeAppendsToDst(t *testing.T) {
	p, _ := newTestPIT()
	p.AddInterest(7, 4)
	buf := make([]int, 0, 8)
	ports, ok := p.Consume(buf, 7)
	if !ok || len(ports) != 1 || ports[0] != 4 {
		t.Fatalf("ports = %v", ports)
	}
	if &ports[0] != &buf[:1][0] {
		t.Error("Consume did not reuse caller buffer")
	}
}

func TestConsumeZeroAlloc(t *testing.T) {
	p, _ := newTestPIT()
	buf := make([]int, 0, 8)
	allocs := testing.AllocsPerRun(500, func() {
		buf, _ = p.Consume(buf[:0], 99)
	})
	if allocs != 0 {
		t.Errorf("miss path allocates %.1f", allocs)
	}
}

func BenchmarkAddConsume(b *testing.B) {
	p := New[uint32](WithCapacity[uint32](1 << 20))
	var buf [MaxPortsPerEntry]int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		name := uint32(i)
		p.AddInterest(name, 3)
		p.Consume(buf[:0], name)
	}
}
