package pit

import (
	"errors"
	"testing"
	"time"
)

func TestPerPortCapRejects(t *testing.T) {
	p, _ := newTestPIT(WithPerPortCap[uint32](2))
	if _, err := p.AddInterest(1, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddInterest(2, 9); err != nil {
		t.Fatal(err)
	}
	_, err := p.AddInterest(3, 9)
	if !errors.Is(err, ErrPortCap) {
		t.Fatalf("third interest on port 9: err = %v, want ErrPortCap", err)
	}
	// Another port is unaffected by port 9 hitting its cap.
	if _, err := p.AddInterest(3, 5); err != nil {
		t.Fatalf("clean port rejected: %v", err)
	}
	if got := p.PortPending(9); got != 2 {
		t.Errorf("PortPending(9) = %d, want 2", got)
	}
	if got := p.PortCapRejections(); got != 1 {
		t.Errorf("PortCapRejections = %d, want 1", got)
	}
}

func TestPerPortCapChargesAggregation(t *testing.T) {
	// Aggregating a new port onto an existing entry charges that port too.
	p, _ := newTestPIT(WithPerPortCap[uint32](1))
	p.AddInterest(1, 4)
	if _, err := p.AddInterest(2, 4); !errors.Is(err, ErrPortCap) {
		t.Fatalf("aggregation past cap: err = %v, want ErrPortCap", err)
	}
	// Re-expressing on an already-recorded port is free (no double charge).
	if _, err := p.AddInterest(1, 4); err != nil {
		t.Fatalf("refresh on recorded port: %v", err)
	}
}

func TestPerPortCapReleasedOnConsume(t *testing.T) {
	p, _ := newTestPIT(WithPerPortCap[uint32](1))
	p.AddInterest(1, 9)
	if _, err := p.AddInterest(2, 9); !errors.Is(err, ErrPortCap) {
		t.Fatal("cap not enforced before consume")
	}
	if _, ok := p.Consume(nil, 1); !ok {
		t.Fatal("consume failed")
	}
	if got := p.PortPending(9); got != 0 {
		t.Fatalf("PortPending(9) = %d after consume, want 0", got)
	}
	if _, err := p.AddInterest(2, 9); err != nil {
		t.Fatalf("port still capped after consume: %v", err)
	}
}

func TestPerPortCapReleasedOnExpiry(t *testing.T) {
	p, clk := newTestPIT(WithPerPortCap[uint32](1), WithTTL[uint32](time.Second))
	p.AddInterest(1, 9)
	clk.advance(2 * time.Second)
	if n := p.Expire(); n != 1 {
		t.Fatalf("Expire removed %d, want 1", n)
	}
	if _, err := p.AddInterest(2, 9); err != nil {
		t.Fatalf("port still capped after sweep: %v", err)
	}
}

func TestPerPortCapReleasedOnLazyExpiry(t *testing.T) {
	// An expired entry encountered by AddInterest itself must free its
	// ports before the new entry is charged.
	p, clk := newTestPIT(WithPerPortCap[uint32](1), WithTTL[uint32](time.Second))
	p.AddInterest(1, 9)
	clk.advance(2 * time.Second)
	if _, err := p.AddInterest(1, 9); err != nil {
		t.Fatalf("lazy expiry did not release the port: %v", err)
	}
	if got := p.PortPending(9); got != 1 {
		t.Errorf("PortPending(9) = %d, want 1", got)
	}
}

func TestPerPortCapDisabledByDefault(t *testing.T) {
	p, _ := newTestPIT()
	for i := uint32(0); i < 1000; i++ {
		if _, err := p.AddInterest(i, 9); err != nil {
			t.Fatalf("uncapped table rejected interest %d: %v", i, err)
		}
	}
	if got := p.PortPending(9); got != 1000 {
		t.Errorf("PortPending(9) = %d, want 1000", got)
	}
}
