package ops

import (
	"crypto/subtle"
	"fmt"

	"dip/internal/bitfield"
	"dip/internal/core"
	"dip/internal/crypto2em"
)

// Pass is F_pass (key 12), the source-label verification of paper §2.4: a
// defense against adversaries who combine F_FIB and F_PIT in one packet to
// poison content caches. The operand is a 32-bit content name followed by a
// 128-bit source label; legitimate producers hold the domain's guard key
// and stamp labels as MAC_guard(name), so the router can verify content
// provenance before any caching operation runs.
//
// Enabling F_pass permanently is expensive, so DESIGN.md's router config
// lets operators register or deregister it at runtime — "F_pass can be
// enabled on the fly upon detecting content poisoning attacks".
type Pass struct {
	guard [16]byte
}

// OperandBits is the F_pass operand width: 32-bit name + 128-bit label.
const PassOperandBits = 160

// NewPass builds the module over the domain guard key.
func NewPass(guardKey *[16]byte) *Pass {
	return &Pass{guard: *guardKey}
}

// Key implements core.Operation.
func (o *Pass) Key() core.Key { return core.KeyPass }

// Name implements core.Operation.
func (o *Pass) Name() string { return core.KeyPass.String() }

// Stage implements core.Stager: guards run before state-creating modules.
func (o *Pass) Stage() int { return 0 }

// Execute implements core.Operation.
func (o *Pass) Execute(ctx *core.ExecContext, loc, bits uint) error {
	if bits != PassOperandBits {
		return fmt.Errorf("ops: F_pass operand is %d bits, want %d", bits, PassOperandBits)
	}
	operand, ok := bitfield.View(ctx.View.Locations(), loc, bits)
	if !ok {
		return fmt.Errorf("ops: F_pass operand [%d,+%d) not byte-aligned", loc, bits)
	}
	name, label := operand[:4], operand[4:20]
	var want [16]byte
	c := crypto2em.FromMaster(&o.guard)
	c.SumInto(want[:], name)
	if subtle.ConstantTimeCompare(want[:], label) != 1 {
		ctx.Drop(core.DropGuard)
		return nil
	}
	ctx.Passed = true
	return nil
}

// StampLabel computes the source label a legitimate producer attaches for
// name under the guard key: MAC_guard(name). out must be 16 bytes.
func StampLabel(guardKey *[16]byte, out []byte, name []byte) {
	c := crypto2em.FromMaster(guardKey)
	c.SumInto(out, name)
}
