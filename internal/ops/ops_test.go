package ops

import (
	"bytes"
	"encoding/binary"
	"testing"

	"dip/internal/core"
	"dip/internal/cs"
	"dip/internal/drkey"
	"dip/internal/fib"
	"dip/internal/opt"
	"dip/internal/pit"
	"dip/internal/xia"
)

// run builds the packet, parses it, and processes it through an engine over
// the registry, returning the context for inspection.
func run(t *testing.T, reg *core.Registry, h *core.Header, inPort int) *core.ExecContext {
	t.Helper()
	return runPayload(t, reg, h, inPort, nil)
}

func runPayload(t *testing.T, reg *core.Registry, h *core.Header, inPort int, payload []byte) *core.ExecContext {
	t.Helper()
	b, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b = append(b, payload...)
	v, err := core.ParseView(b)
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewEngine(reg, core.Limits{})
	ctx := &core.ExecContext{}
	ctx.Reset(v, inPort)
	e.Process(ctx)
	return ctx
}

func routerCfg(t *testing.T) Config {
	t.Helper()
	sv, err := drkey.NewSecretValue("r1", bytes.Repeat([]byte{7}, 16))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		FIB32:   fib.New(),
		FIB128:  fib.New(),
		NameFIB: fib.New(),
		PIT:     pit.New[uint32](),
		Secret:  sv,
		MACKind: opt.Kind2EM,
	}
	cfg.GuardKey[0] = 0x55
	return cfg
}

func TestMatch32ForwardDeliverDrop(t *testing.T) {
	cfg := routerCfg(t)
	cfg.FIB32.AddUint32(0x0A000000, 8, fib.NextHop{Port: 3})
	cfg.FIB32.AddUint32(0x0A000001, 32, fib.Local)
	reg := NewRouterRegistry(cfg)

	locs := make([]byte, 8)
	binary.BigEndian.PutUint32(locs, 0x0A010203)
	h := &core.Header{
		FNs: []core.FN{
			core.RouterFN(0, 32, core.KeyMatch32),
			core.RouterFN(32, 32, core.KeySource),
		},
		Locations: locs,
	}
	ctx := run(t, reg, h, 0)
	if ctx.Verdict != core.VerdictForward || ctx.EgressPorts()[0] != 3 {
		t.Errorf("forward: %v %v", ctx.Verdict, ctx.EgressPorts())
	}
	if !ctx.HasSource || ctx.SourceLoc != 32 || ctx.SourceLen != 32 {
		t.Errorf("source not recorded: %+v", ctx)
	}

	binary.BigEndian.PutUint32(locs, 0x0A000001)
	ctx = run(t, reg, h, 0)
	if ctx.Verdict != core.VerdictDeliver {
		t.Errorf("deliver: %v", ctx.Verdict)
	}

	binary.BigEndian.PutUint32(locs, 0xC0A80001)
	ctx = run(t, reg, h, 0)
	if ctx.Verdict != core.VerdictDrop || ctx.Reason != core.DropNoRoute {
		t.Errorf("no route: %v/%v", ctx.Verdict, ctx.Reason)
	}
}

func TestMatch32RejectsWrongWidth(t *testing.T) {
	cfg := routerCfg(t)
	reg := NewRouterRegistry(cfg)
	h := &core.Header{
		FNs:       []core.FN{core.RouterFN(0, 16, core.KeyMatch32)},
		Locations: make([]byte, 4),
	}
	ctx := run(t, reg, h, 0)
	if ctx.Verdict != core.VerdictDrop || ctx.Reason != core.DropOpError {
		t.Errorf("got %v/%v", ctx.Verdict, ctx.Reason)
	}
}

func TestMatch128(t *testing.T) {
	cfg := routerCfg(t)
	pfx := make([]byte, 16)
	pfx[0] = 0x20
	cfg.FIB128.Add(pfx, 8, fib.NextHop{Port: 9})
	reg := NewRouterRegistry(cfg)

	locs := make([]byte, 32)
	locs[0] = 0x20
	locs[5] = 0xAB
	h := &core.Header{
		FNs: []core.FN{
			core.RouterFN(0, 128, core.KeyMatch128),
			core.RouterFN(128, 128, core.KeySource),
		},
		Locations: locs,
	}
	ctx := run(t, reg, h, 0)
	if ctx.Verdict != core.VerdictForward || ctx.EgressPorts()[0] != 9 {
		t.Errorf("got %v %v", ctx.Verdict, ctx.EgressPorts())
	}
	locs[0] = 0x30
	ctx = run(t, reg, h, 0)
	if ctx.Reason != core.DropNoRoute {
		t.Errorf("got %v", ctx.Reason)
	}
}

func ndnInterestHeader(name uint32) *core.Header {
	locs := make([]byte, 4)
	binary.BigEndian.PutUint32(locs, name)
	return &core.Header{
		FNs:       []core.FN{core.RouterFN(0, 32, core.KeyFIB)},
		Locations: locs,
	}
}

func ndnDataHeader(name uint32) *core.Header {
	locs := make([]byte, 4)
	binary.BigEndian.PutUint32(locs, name)
	return &core.Header{
		FNs:       []core.FN{core.RouterFN(0, 32, core.KeyPIT)},
		Locations: locs,
	}
}

func TestNDNInterestDataCycle(t *testing.T) {
	cfg := routerCfg(t)
	cfg.NameFIB.AddUint32(0xAA000000, 8, fib.NextHop{Port: 2})
	reg := NewRouterRegistry(cfg)

	// Interest from port 5 forwards upstream on port 2 and records state.
	ctx := run(t, reg, ndnInterestHeader(0xAA000001), 5)
	if ctx.Verdict != core.VerdictForward || ctx.EgressPorts()[0] != 2 {
		t.Fatalf("interest: %v %v", ctx.Verdict, ctx.EgressPorts())
	}

	// A second interest from port 6 aggregates (absorbed, not forwarded).
	ctx = run(t, reg, ndnInterestHeader(0xAA000001), 6)
	if ctx.Verdict != core.VerdictAbsorb {
		t.Fatalf("aggregation: %v", ctx.Verdict)
	}

	// Data consumes the PIT entry and fans out to both request ports.
	ctx = run(t, reg, ndnDataHeader(0xAA000001), 2)
	if ctx.Verdict != core.VerdictForward || len(ctx.EgressPorts()) != 2 {
		t.Fatalf("data: %v %v", ctx.Verdict, ctx.EgressPorts())
	}

	// A duplicate data packet has no pending interest: discarded.
	ctx = run(t, reg, ndnDataHeader(0xAA000001), 2)
	if ctx.Reason != core.DropPITMiss {
		t.Errorf("dup data: %v", ctx.Reason)
	}
}

func TestNDNInterestNoRoute(t *testing.T) {
	reg := NewRouterRegistry(routerCfg(t))
	ctx := run(t, reg, ndnInterestHeader(0xBB000001), 1)
	if ctx.Reason != core.DropNoRoute {
		t.Errorf("got %v", ctx.Reason)
	}
}

func TestNDNLocalProducer(t *testing.T) {
	cfg := routerCfg(t)
	cfg.NameFIB.AddUint32(0xAA000000, 8, fib.Local)
	reg := NewRouterRegistry(cfg)
	ctx := run(t, reg, ndnInterestHeader(0xAA000001), 1)
	if ctx.Verdict != core.VerdictDeliver {
		t.Errorf("got %v", ctx.Verdict)
	}
}

func TestNDNContentStoreHit(t *testing.T) {
	cfg := routerCfg(t)
	cfg.NameFIB.AddUint32(0xAA000000, 8, fib.NextHop{Port: 2})
	cfg.ContentStore = cs.New[uint32](16)
	reg := NewRouterRegistry(cfg)

	// Interest, then data (cached on the way back).
	run(t, reg, ndnInterestHeader(0xAA000001), 5)
	ctx := runPayload(t, reg, ndnDataHeader(0xAA000001), 2, []byte("cached content"))
	if ctx.Verdict != core.VerdictForward {
		t.Fatalf("data: %v", ctx.Verdict)
	}

	// A repeat interest is served from the store: absorbed with the payload.
	ctx = run(t, reg, ndnInterestHeader(0xAA000001), 7)
	if ctx.Verdict != core.VerdictAbsorb {
		t.Fatalf("cache hit: %v", ctx.Verdict)
	}
	if !bytes.Equal(ctx.Cached, []byte("cached content")) {
		t.Errorf("cached payload %q", ctx.Cached)
	}
}

// The DIP-decomposed OPT hop must produce byte-identical results to the
// native opt.ProcessHop — decomposition changes structure, not semantics.
func TestOPTHopMatchesNative(t *testing.T) {
	for _, kind := range []opt.Kind{opt.Kind2EM, opt.KindAESCMAC} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := routerCfg(t)
			cfg.MACKind = kind
			cfg.PrevLabel[3] = 0xAB
			reg := NewRouterRegistry(cfg)

			sess, err := opt.NewSession(kind,
				[]opt.HopConfig{{Secret: cfg.Secret, PrevLabel: cfg.PrevLabel}},
				mustSecret(t, "dst"))
			if err != nil {
				t.Fatal(err)
			}
			payload := []byte("content under protection")
			region := make([]byte, opt.RegionSize(1))
			if err := sess.InitRegion(region, payload, 42); err != nil {
				t.Fatal(err)
			}
			nativeRegion := append([]byte(nil), region...)

			// DIP path: the paper's standalone-OPT FN triples.
			h := &core.Header{
				FNs: []core.FN{
					core.RouterFN(128, 128, core.KeyParm),
					core.RouterFN(0, 416, core.KeyMAC),
					core.RouterFN(288, 128, core.KeyMark),
					core.HostFN(0, 544, core.KeyVer),
				},
				Locations: region,
			}
			b, err := h.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			b = append(b, payload...)
			v, err := core.ParseView(b)
			if err != nil {
				t.Fatal(err)
			}
			e := core.NewEngine(reg, core.Limits{})
			ctx := &core.ExecContext{}
			ctx.Reset(v, 0)
			e.Process(ctx)
			if ctx.Verdict != core.VerdictContinue {
				t.Fatalf("verdict %v/%v", ctx.Verdict, ctx.Reason)
			}

			// Native path on a copy.
			if err := opt.ProcessHop(opt.HopConfig{Secret: cfg.Secret, PrevLabel: cfg.PrevLabel},
				kind, nativeRegion); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(v.Locations(), nativeRegion) {
				t.Error("DIP-decomposed OPT hop diverges from native OPT")
			}
			// And the destination accepts the DIP-processed packet.
			if err := sess.Verify(v.Locations(), payload); err != nil {
				t.Errorf("destination rejects DIP-processed packet: %v", err)
			}
		})
	}
}

func TestMACWithoutParmFails(t *testing.T) {
	reg := NewRouterRegistry(routerCfg(t))
	h := &core.Header{
		FNs:       []core.FN{core.RouterFN(0, 416, core.KeyMAC)},
		Locations: make([]byte, 68),
	}
	ctx := run(t, reg, h, 0)
	if ctx.Reason != core.DropOpError {
		t.Errorf("got %v", ctx.Reason)
	}
	h.FNs[0].Key = core.KeyMark
	h.FNs[0].Len = 128
	ctx = run(t, reg, h, 0)
	if ctx.Reason != core.DropOpError {
		t.Errorf("mark: got %v", ctx.Reason)
	}
}

func TestMACSlotBeyondLocationsFails(t *testing.T) {
	cfg := routerCfg(t)
	reg := NewRouterRegistry(cfg)
	// Operand fills the whole region: no room for the tag slot.
	h := &core.Header{
		FNs: []core.FN{
			core.RouterFN(128, 128, core.KeyParm),
			core.RouterFN(0, 544, core.KeyMAC),
		},
		Locations: make([]byte, 68),
	}
	ctx := run(t, reg, h, 0)
	if ctx.Reason != core.DropOpError {
		t.Errorf("got %v", ctx.Reason)
	}
}

type sessions map[[16]byte]*opt.Session

func (s sessions) LookupSession(id []byte) (*opt.Session, bool) {
	var k [16]byte
	copy(k[:], id)
	sess, ok := s[k]
	return sess, ok
}

func TestVerHostOp(t *testing.T) {
	rcfg := routerCfg(t)
	sess, err := opt.NewSession(opt.Kind2EM,
		[]opt.HopConfig{{Secret: rcfg.Secret}}, mustSecret(t, "dst"))
	if err != nil {
		t.Fatal(err)
	}
	store := sessions{sess.ID: sess}
	hostReg := NewHostRegistry(Config{Sessions: store})

	payload := []byte("verified content")
	region := make([]byte, opt.RegionSize(1))
	sess.InitRegion(region, payload, 7)
	opt.ProcessHop(opt.HopConfig{Secret: rcfg.Secret}, opt.Kind2EM, region)

	// The host executes host-tagged FNs, so F_ver carries Host=false here
	// from the host engine's perspective: we re-tag it router-style for the
	// host registry (internal/host flips tags; this test drives ops directly).
	h := &core.Header{
		FNs:       []core.FN{core.RouterFN(0, 544, core.KeyVer)},
		Locations: region,
	}
	ctx := runPayload(t, hostReg, h, 0, payload)
	if ctx.Verdict != core.VerdictDeliver {
		t.Fatalf("valid packet: %v/%v", ctx.Verdict, ctx.Reason)
	}

	// Tampered payload fails.
	ctx = runPayload(t, hostReg, h, 0, []byte("tampered content"))
	if ctx.Reason != core.DropVerifyFailed {
		t.Errorf("tamper: %v", ctx.Reason)
	}

	// Unknown session fails.
	region[opt.SessionIDOff] ^= 0xFF
	ctx = runPayload(t, hostReg, h, 0, payload)
	if ctx.Reason != core.DropVerifyFailed {
		t.Errorf("unknown session: %v", ctx.Reason)
	}
}

func xiaHeader(t *testing.T, d *xia.DAG, last int) *core.Header {
	t.Helper()
	locs := make([]byte, d.WireSize())
	if _, err := d.Encode(locs, last); err != nil {
		t.Fatal(err)
	}
	bits := uint16(len(locs) * 8)
	return &core.Header{
		FNs: []core.FN{
			core.RouterFN(0, bits, core.KeyDAG),
			core.RouterFN(0, bits, core.KeyIntent),
		},
		Locations: locs,
	}
}

func testDAG() *xia.DAG {
	return &xia.DAG{
		SrcEdges: []int{2, 0},
		Nodes: []xia.Node{
			{XID: xia.NewXID(xia.TypeAD, []byte("ad1")), Edges: []int{2, 1}},
			{XID: xia.NewXID(xia.TypeHID, []byte("h1")), Edges: []int{2}},
			{XID: xia.NewXID(xia.TypeCID, []byte("c1"))},
		},
	}
}

func TestXIAForwardAndProgress(t *testing.T) {
	d := testDAG()
	rt := xia.NewRouteTable()
	rt.AddRoute(d.Nodes[0].XID, 4) // only the AD fallback is routable
	cfg := routerCfg(t)
	cfg.XIARoutes = rt
	reg := NewRouterRegistry(cfg)

	h := xiaHeader(t, d, xia.SourceIndex)
	ctx := run(t, reg, h, 0)
	if ctx.Verdict != core.VerdictForward || ctx.EgressPorts()[0] != 4 {
		t.Fatalf("got %v %v", ctx.Verdict, ctx.EgressPorts())
	}
	// Traversal progress is written back into the packet.
	_, last, _, err := xia.Decode(ctx.View.Locations())
	if err != nil || last != 0 {
		t.Errorf("lastVisited = %d, err %v", last, err)
	}
}

func TestXIAIntentDelivery(t *testing.T) {
	d := testDAG()
	rt := xia.NewRouteTable()
	rt.AddLocal(d.Nodes[2].XID) // the CID intent is local
	cfg := routerCfg(t)
	cfg.XIARoutes = rt
	reg := NewRouterRegistry(cfg)

	ctx := run(t, reg, xiaHeader(t, d, xia.SourceIndex), 0)
	if ctx.Verdict != core.VerdictDeliver {
		t.Fatalf("got %v/%v", ctx.Verdict, ctx.Reason)
	}
}

type recordingHandler struct {
	got  xia.XID
	hits int
}

func (r *recordingHandler) HandleIntent(ctx *core.ExecContext, intent xia.XID) bool {
	r.got = intent
	r.hits++
	ctx.Absorb()
	return true
}

func TestXIAIntentHandler(t *testing.T) {
	d := testDAG()
	rt := xia.NewRouteTable()
	rt.AddLocal(d.Nodes[2].XID)
	handler := &recordingHandler{}
	cfg := routerCfg(t)
	cfg.XIARoutes = rt
	cfg.Intent = handler
	reg := NewRouterRegistry(cfg)

	ctx := run(t, reg, xiaHeader(t, d, xia.SourceIndex), 0)
	if handler.hits != 1 || handler.got.Type != xia.TypeCID {
		t.Errorf("handler: %+v", handler)
	}
	// Deliver still wins over Absorb because F_DAG already marked delivery;
	// what matters is the handler ran and saw the intent.
	if ctx.Verdict != core.VerdictDeliver {
		t.Errorf("verdict %v", ctx.Verdict)
	}
}

func TestXIADeadEnd(t *testing.T) {
	cfg := routerCfg(t)
	cfg.XIARoutes = xia.NewRouteTable()
	reg := NewRouterRegistry(cfg)
	ctx := run(t, reg, xiaHeader(t, testDAG(), xia.SourceIndex), 0)
	if ctx.Reason != core.DropNoRoute {
		t.Errorf("got %v", ctx.Reason)
	}
}

func TestPassGuard(t *testing.T) {
	cfg := routerCfg(t)
	reg := NewRouterRegistry(cfg)

	locs := make([]byte, 20)
	binary.BigEndian.PutUint32(locs[:4], 0xAA000001)
	StampLabel(&cfg.GuardKey, locs[4:20], locs[:4])
	h := &core.Header{
		FNs:       []core.FN{core.RouterFN(0, PassOperandBits, core.KeyPass)},
		Locations: locs,
	}
	ctx := run(t, reg, h, 0)
	if ctx.Verdict != core.VerdictContinue {
		t.Fatalf("valid label: %v/%v", ctx.Verdict, ctx.Reason)
	}

	locs[4] ^= 0x01 // forge the label
	ctx = run(t, reg, h, 0)
	if ctx.Reason != core.DropGuard {
		t.Errorf("forged label: %v", ctx.Reason)
	}

	h.FNs[0].Len = 128 // wrong operand width
	h.Locations = locs[:16]
	ctx = run(t, reg, h, 0)
	if ctx.Reason != core.DropOpError {
		t.Errorf("bad width: %v", ctx.Reason)
	}
}

func TestHeterogeneousRegistrySkipsUnconfigured(t *testing.T) {
	// A router with no OPT secret does not register the auth modules...
	cfg := Config{FIB32: fib.New()}
	reg := NewRouterRegistry(cfg)
	if reg.Get(core.KeyParm) != nil || reg.Get(core.KeyMAC) != nil {
		t.Error("auth modules registered without a secret")
	}
	// ...and its policy for them is the default ignore (it never advertised
	// them), so OPT packets pass through un-authenticated rather than
	// dropped — the "router can simply ignore this FN" case of §2.4. The
	// signalling case is covered by router tests with SetPolicy.
	if reg.Policy(core.KeyParm) != core.PolicyIgnore {
		t.Error("unexpected policy")
	}
}

func mustSecret(t *testing.T, id string) *drkey.SecretValue {
	t.Helper()
	sv, err := drkey.NewSecretValue(id, bytes.Repeat([]byte{9}, 16))
	if err != nil {
		t.Fatal(err)
	}
	return sv
}
