package ops

import (
	"fmt"

	"dip/internal/bitfield"
	"dip/internal/core"
	"dip/internal/fib"
)

// Match32 is F_32_match (key 1): longest-prefix match of a 32-bit address
// operand against the router's address FIB, realizing IPv4-style
// forwarding (paper §3, triple (loc: 0, len: 32, key: 1)).
type Match32 struct {
	fib *fib.Table
}

// NewMatch32 builds the module over the given table.
func NewMatch32(t *fib.Table) *Match32 { return &Match32{fib: t} }

// Key implements core.Operation.
func (o *Match32) Key() core.Key { return core.KeyMatch32 }

// Name implements core.Operation.
func (o *Match32) Name() string { return core.KeyMatch32.String() }

// Execute implements core.Operation.
func (o *Match32) Execute(ctx *core.ExecContext, loc, bits uint) error {
	if bits != 32 {
		return fmt.Errorf("ops: F_32_match operand is %d bits, want 32", bits)
	}
	v, err := bitfield.Uint64(ctx.View.Locations(), loc, bits)
	if err != nil {
		return err
	}
	nh, ok := o.fib.LookupUint32(uint32(v))
	if !ok {
		ctx.Drop(core.DropNoRoute)
		return nil
	}
	if nh.Port == fib.PortLocal {
		ctx.Deliver()
		return nil
	}
	ctx.AddEgress(nh.Port)
	return nil
}

// Match128 is F_128_match (key 2): longest-prefix match of a 128-bit
// address operand, realizing IPv6-style forwarding.
type Match128 struct {
	fib *fib.Table
}

// NewMatch128 builds the module over the given table.
func NewMatch128(t *fib.Table) *Match128 { return &Match128{fib: t} }

// Key implements core.Operation.
func (o *Match128) Key() core.Key { return core.KeyMatch128 }

// Name implements core.Operation.
func (o *Match128) Name() string { return core.KeyMatch128.String() }

// Execute implements core.Operation.
func (o *Match128) Execute(ctx *core.ExecContext, loc, bits uint) error {
	if bits != 128 {
		return fmt.Errorf("ops: F_128_match operand is %d bits, want 128", bits)
	}
	locs := ctx.View.Locations()
	key, ok := bitfield.View(locs, loc, bits)
	if !ok {
		var buf [16]byte
		if _, err := bitfield.Bytes(buf[:], locs, loc, bits); err != nil {
			return err
		}
		key = buf[:]
	}
	nh, found := o.fib.Lookup(key, 128)
	if !found {
		ctx.Drop(core.DropNoRoute)
		return nil
	}
	if nh.Port == fib.PortLocal {
		ctx.Deliver()
		return nil
	}
	ctx.AddEgress(nh.Port)
	return nil
}

// Source is F_source (key 3): it declares that the operand holds the
// packet's source address. Routers record the coordinates so reverse-path
// messages (FN-unsupported signalling, §2.4) know where to aim.
type Source struct{}

// NewSource builds the module.
func NewSource() *Source { return &Source{} }

// Key implements core.Operation.
func (o *Source) Key() core.Key { return core.KeySource }

// Name implements core.Operation.
func (o *Source) Name() string { return core.KeySource.String() }

// Execute implements core.Operation.
func (o *Source) Execute(ctx *core.ExecContext, loc, bits uint) error {
	ctx.SourceLoc = uint16(loc)
	ctx.SourceLen = uint16(bits)
	ctx.HasSource = true
	return nil
}
