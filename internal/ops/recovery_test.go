package ops

import (
	"encoding/binary"
	"testing"

	"dip/internal/core"
	"dip/internal/cs"
	"dip/internal/fib"
	"dip/internal/pit"
)

// Table-driven check of the NDN data path (F_FIB + F_PIT + content store)
// under the duplicate and reordered Data packets impaired links produce:
// a data packet satisfies the PIT exactly once, duplicates are pit-miss
// drops that do not disturb the cache, and early (reordered) data never
// enters the cache.
func TestNDNDataPathUnderDuplicationAndReordering(t *testing.T) {
	const name = 0xAA000001
	interest := func() *core.Header {
		locs := make([]byte, 4)
		binary.BigEndian.PutUint32(locs, name)
		return &core.Header{
			FNs:       []core.FN{core.RouterFN(0, 32, core.KeyFIB)},
			Locations: locs,
		}
	}
	data := func() *core.Header {
		locs := make([]byte, 4)
		binary.BigEndian.PutUint32(locs, name)
		return &core.Header{
			FNs:       []core.FN{core.RouterFN(0, 32, core.KeyPIT)},
			Locations: locs,
		}
	}

	type step struct {
		label       string
		h           *core.Header
		payload     []byte
		inPort      int
		wantVerdict core.Verdict
		wantReason  core.DropReason
		wantEgress  []int
		wantCSLen   int
	}
	cases := []struct {
		label string
		steps []step
	}{
		{
			label: "duplicate data: one satisfy, cache undisturbed",
			steps: []step{
				{label: "interest", h: interest(), inPort: 2,
					wantVerdict: core.VerdictForward, wantEgress: []int{7}, wantCSLen: 0},
				{label: "data", h: data(), payload: []byte("content"), inPort: 7,
					wantVerdict: core.VerdictForward, wantEgress: []int{2}, wantCSLen: 1},
				{label: "duplicate data", h: data(), payload: []byte("content"), inPort: 7,
					wantVerdict: core.VerdictDrop, wantReason: core.DropPITMiss, wantCSLen: 1},
				{label: "re-interest served from cache", h: interest(), inPort: 3,
					wantVerdict: core.VerdictAbsorb, wantCSLen: 1},
			},
		},
		{
			label: "reordered data before any interest: miss, never cached",
			steps: []step{
				{label: "early data", h: data(), payload: []byte("early"), inPort: 7,
					wantVerdict: core.VerdictDrop, wantReason: core.DropPITMiss, wantCSLen: 0},
				{label: "interest still forwards upstream", h: interest(), inPort: 2,
					wantVerdict: core.VerdictForward, wantEgress: []int{7}, wantCSLen: 0},
				{label: "data then satisfies", h: data(), payload: []byte("late"), inPort: 7,
					wantVerdict: core.VerdictForward, wantEgress: []int{2}, wantCSLen: 1},
			},
		},
		{
			label: "duplicate interest aggregates, data fans out once",
			steps: []step{
				{label: "interest A", h: interest(), inPort: 1,
					wantVerdict: core.VerdictForward, wantEgress: []int{7}, wantCSLen: 0},
				{label: "interest B aggregates", h: interest(), inPort: 4,
					wantVerdict: core.VerdictAbsorb, wantCSLen: 0},
				{label: "data fans out to both", h: data(), payload: []byte("x"), inPort: 7,
					wantVerdict: core.VerdictForward, wantEgress: []int{1, 4}, wantCSLen: 1},
				{label: "replayed data misses", h: data(), payload: []byte("x"), inPort: 7,
					wantVerdict: core.VerdictDrop, wantReason: core.DropPITMiss, wantCSLen: 1},
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			store := cs.New[uint32](16)
			cfg := Config{
				FIB32:        fib.New(),
				FIB128:       fib.New(),
				NameFIB:      fib.New(),
				PIT:          pit.New[uint32](),
				ContentStore: store,
			}
			cfg.NameFIB.AddUint32(0xAA000000, 8, fib.NextHop{Port: 7})
			reg := NewRouterRegistry(cfg)
			for _, s := range tc.steps {
				ctx := runPayload(t, reg, s.h, s.inPort, s.payload)
				if ctx.Verdict != s.wantVerdict {
					t.Fatalf("%s: verdict %v, want %v", s.label, ctx.Verdict, s.wantVerdict)
				}
				if s.wantVerdict == core.VerdictDrop && ctx.Reason != s.wantReason {
					t.Fatalf("%s: reason %v, want %v", s.label, ctx.Reason, s.wantReason)
				}
				if len(s.wantEgress) > 0 {
					got := ctx.EgressPorts()
					if len(got) != len(s.wantEgress) {
						t.Fatalf("%s: egress %v, want %v", s.label, got, s.wantEgress)
					}
					for i := range got {
						if got[i] != s.wantEgress[i] {
							t.Fatalf("%s: egress %v, want %v", s.label, got, s.wantEgress)
						}
					}
				}
				if store.Len() != s.wantCSLen {
					t.Fatalf("%s: cache has %d entries, want %d", s.label, store.Len(), s.wantCSLen)
				}
			}
		})
	}
}
