package ops

import (
	"fmt"

	"dip/internal/bitfield"
	"dip/internal/cmac"
	"dip/internal/core"
	"dip/internal/crypto2em"
	"dip/internal/drkey"
	"dip/internal/opt"
)

// maxMACInput bounds the operand F_MAC will hash (the standard OPT region
// is 52 bytes; generous headroom allows composed layouts).
const maxMACInput = 240

// Parm is F_parm (key 6): "instruct the router to generate the key and load
// other parameters (e.g., previous validator node label)" (paper §3). Its
// operand is the 128-bit session ID; the derived key and the router's
// parameters flow to F_MAC/F_mark through the execution context. It runs in
// parallel stage 0 because the other authentication modules consume its
// output.
type Parm struct {
	secret    *drkey.SecretValue
	kind      opt.Kind
	prevLabel [16]byte
	hopIndex  uint8
}

// NewParm builds the module from the router's DRKey secret and OPT config.
func NewParm(secret *drkey.SecretValue, kind opt.Kind, prevLabel [16]byte, hopIndex uint8) *Parm {
	return &Parm{secret: secret, kind: kind, prevLabel: prevLabel, hopIndex: hopIndex}
}

// Key implements core.Operation.
func (o *Parm) Key() core.Key { return core.KeyParm }

// Name implements core.Operation.
func (o *Parm) Name() string { return core.KeyParm.String() }

// Stage implements core.Stager: parameters load before everything else.
func (o *Parm) Stage() int { return 0 }

// Execute implements core.Operation.
func (o *Parm) Execute(ctx *core.ExecContext, loc, bits uint) error {
	if bits != 128 {
		return fmt.Errorf("ops: F_parm operand is %d bits, want 128 (session ID)", bits)
	}
	locs := ctx.View.Locations()
	sid, ok := bitfield.View(locs, loc, bits)
	if !ok {
		var buf [16]byte
		if _, err := bitfield.Bytes(buf[:], locs, loc, bits); err != nil {
			return err
		}
		sid = buf[:]
	}
	if err := o.secret.SessionKey(ctx.Crypto.Key[:], sid); err != nil {
		return err
	}
	ctx.Crypto.HaveKey = true
	ctx.Crypto.PrevNode = o.prevLabel
	ctx.Crypto.HopIndex = o.hopIndex
	return nil
}

// macInto computes the configured MAC of msg under the context's hop key.
// The 2EM path is allocation-free (no key schedule); the AES-CMAC path pays
// a per-packet key schedule — the exact asymmetry the paper's §4.1 hardware
// discussion is about, measured by experiment E3.
func macInto(kind opt.Kind, ctx *core.ExecContext, out, msg []byte) error {
	switch kind {
	case opt.Kind2EM:
		c := crypto2em.FromMaster(&ctx.Crypto.Key)
		c.SumInto(out, msg)
		return nil
	case opt.KindAESCMAC:
		m, err := cmac.New(ctx.Crypto.Key[:])
		if err != nil {
			return err
		}
		m.SumInto(out, msg)
		return nil
	default:
		return fmt.Errorf("ops: %w: %d", opt.ErrUnknownKind, kind)
	}
}

// MAC is F_MAC (key 7): compute this hop's validation tag (OPT's OPV) over
// the operand region — standalone-OPT triple (loc: 0, len: 416, key: 7) —
// plus the previous-validator label loaded by F_parm, writing the 128-bit
// tag into the OPV slot that directly follows the operand (slot selection
// by the router's hop index). It must run before F_mark so the tag covers
// the pre-update PVF.
type MAC struct {
	kind opt.Kind
}

// NewMAC builds the module.
func NewMAC(kind opt.Kind) *MAC { return &MAC{kind: kind} }

// Key implements core.Operation.
func (o *MAC) Key() core.Key { return core.KeyMAC }

// Name implements core.Operation.
func (o *MAC) Name() string { return core.KeyMAC.String() }

// Stage implements core.Stager.
func (o *MAC) Stage() int { return 1 }

// Execute implements core.Operation.
func (o *MAC) Execute(ctx *core.ExecContext, loc, bits uint) error {
	if !ctx.Crypto.HaveKey {
		return fmt.Errorf("ops: F_MAC without a loaded key (missing F_parm?)")
	}
	if bits == 0 || bits > maxMACInput*8 {
		return fmt.Errorf("ops: F_MAC operand is %d bits, max %d", bits, maxMACInput*8)
	}
	locs := ctx.View.Locations()
	input, ok := bitfield.View(locs, loc, bits)
	if !ok {
		return fmt.Errorf("ops: F_MAC operand [%d,+%d) not byte-aligned", loc, bits)
	}
	slot := loc + bits + 128*uint(ctx.Crypto.HopIndex)
	out, ok := bitfield.View(locs, slot, 128)
	if !ok {
		return fmt.Errorf("ops: F_MAC tag slot [%d,+128) unavailable (hop index %d)",
			slot, ctx.Crypto.HopIndex)
	}
	var msg [maxMACInput + 16]byte
	n := copy(msg[:], input)
	n += copy(msg[n:], ctx.Crypto.PrevNode[:])
	return macInto(o.kind, ctx, out, msg[:n])
}

// Mark is F_mark (key 8): fold this hop's key into the path-verification
// field in place — PVF ← MAC_{K_i}(PVF) — standalone-OPT triple
// (loc: 288, len: 128, key: 8). Runs in stage 2, after F_MAC captured the
// pre-update value.
type Mark struct {
	kind opt.Kind
}

// NewMark builds the module.
func NewMark(kind opt.Kind) *Mark { return &Mark{kind: kind} }

// Key implements core.Operation.
func (o *Mark) Key() core.Key { return core.KeyMark }

// Name implements core.Operation.
func (o *Mark) Name() string { return core.KeyMark.String() }

// Stage implements core.Stager: marks apply after tags are computed.
func (o *Mark) Stage() int { return 2 }

// Execute implements core.Operation.
func (o *Mark) Execute(ctx *core.ExecContext, loc, bits uint) error {
	if !ctx.Crypto.HaveKey {
		return fmt.Errorf("ops: F_mark without a loaded key (missing F_parm?)")
	}
	if bits != 128 {
		return fmt.Errorf("ops: F_mark operand is %d bits, want 128 (PVF)", bits)
	}
	pvf, ok := bitfield.View(ctx.View.Locations(), loc, bits)
	if !ok {
		return fmt.Errorf("ops: F_mark operand [%d,+128) not byte-aligned", loc)
	}
	var tmp [16]byte
	if err := macInto(o.kind, ctx, tmp[:], pvf); err != nil {
		return err
	}
	copy(pvf, tmp[:])
	return nil
}

// Ver is F_ver (key 9), the host operation (tag bit set): the destination
// re-derives the whole tag chain from its session state and the payload,
// delivering the packet on success and dropping it on any mismatch.
type Ver struct {
	sessions SessionStore
}

// NewVer builds the module over the host's session store.
func NewVer(s SessionStore) *Ver { return &Ver{sessions: s} }

// Key implements core.Operation.
func (o *Ver) Key() core.Key { return core.KeyVer }

// Name implements core.Operation.
func (o *Ver) Name() string { return core.KeyVer.String() }

// Execute implements core.Operation.
func (o *Ver) Execute(ctx *core.ExecContext, loc, bits uint) error {
	if bits%8 != 0 {
		return fmt.Errorf("ops: F_ver operand is %d bits, want whole bytes", bits)
	}
	region, ok := bitfield.View(ctx.View.Locations(), loc, bits)
	if !ok {
		return fmt.Errorf("ops: F_ver operand [%d,+%d) not byte-aligned", loc, bits)
	}
	if len(region) < opt.BaseSize {
		return fmt.Errorf("ops: F_ver region %d bytes, want ≥ %d", len(region), opt.BaseSize)
	}
	r, err := opt.AsRegion(region)
	if err != nil {
		return err
	}
	sess, found := o.sessions.LookupSession(r.SessionID())
	if !found {
		ctx.Drop(core.DropVerifyFailed)
		return nil
	}
	if err := sess.Verify(region, ctx.View.Payload()); err != nil {
		ctx.Drop(core.DropVerifyFailed)
		return nil
	}
	ctx.Deliver()
	return nil
}
