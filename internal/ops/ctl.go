package ops

import "dip/internal/core"

// Ctl is F_ctl (key 14): control-plane delivery. A packet carrying it is a
// hop-scoped control message — a route-exchange advertisement or withdraw
// (internal/bootstrap) addressed to whichever router receives it — so the
// verdict is always Deliver: the router hands the payload to its local
// control stack instead of forwarding. The operand is unused; the FN exists
// so control messages ride the same engine, the same admission guard
// (which classifies their next header as control class), and the same
// telemetry as every data packet — the in-fabric control plane of §2.3.
type Ctl struct{}

// NewCtl builds the module.
func NewCtl() *Ctl { return &Ctl{} }

// Key implements core.Operation.
func (o *Ctl) Key() core.Key { return core.KeyCtl }

// Name implements core.Operation.
func (o *Ctl) Name() string { return core.KeyCtl.String() }

// Execute implements core.Operation.
func (o *Ctl) Execute(ctx *core.ExecContext, _, _ uint) error {
	ctx.Deliver()
	return nil
}
