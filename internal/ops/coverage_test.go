package ops

import (
	"testing"

	"dip/internal/core"
	"dip/internal/cs"
	"dip/internal/fib"
	"dip/internal/opt"
	"dip/internal/xia"
)

// Every module must report the key it registers under and a paper-style
// name, and stages must order parm < {MAC, DAG} < {mark, intent}.
func TestModuleMetadata(t *testing.T) {
	cfg := routerCfg(t)
	cfg.XIARoutes = xia.NewRouteTable()
	reg := NewRouterRegistry(cfg)
	wantNames := map[core.Key]string{
		core.KeyMatch32:  "F_32_match",
		core.KeyMatch128: "F_128_match",
		core.KeySource:   "F_source",
		core.KeyFIB:      "F_FIB",
		core.KeyPIT:      "F_PIT",
		core.KeyParm:     "F_parm",
		core.KeyMAC:      "F_MAC",
		core.KeyMark:     "F_mark",
		core.KeyDAG:      "F_DAG",
		core.KeyIntent:   "F_intent",
		core.KeyPass:     "F_pass",
	}
	for key, want := range wantNames {
		op := reg.Get(key)
		if op == nil {
			t.Errorf("%v not registered", key)
			continue
		}
		if op.Key() != key {
			t.Errorf("%v reports key %v", want, op.Key())
		}
		if op.Name() != want {
			t.Errorf("key %d name %q, want %q", key, op.Name(), want)
		}
	}
	stage := func(k core.Key) int {
		if s, ok := reg.Get(k).(core.Stager); ok {
			return s.Stage()
		}
		return 1
	}
	if !(stage(core.KeyParm) < stage(core.KeyMAC) && stage(core.KeyMAC) < stage(core.KeyMark)) {
		t.Error("OPT stages out of order")
	}
	if !(stage(core.KeyDAG) < stage(core.KeyIntent)) {
		t.Error("XIA stages out of order")
	}
	if stage(core.KeyPass) != 0 {
		t.Error("guard must run in stage 0")
	}
	ver := NewVer(nil)
	if ver.Name() != "F_ver" || ver.Key() != core.KeyVer {
		t.Error("F_ver metadata")
	}
}

// Operand-shape violations must drop with DropOpError, per module.
func TestOperandShapeErrors(t *testing.T) {
	cfg := routerCfg(t)
	cfg.XIARoutes = xia.NewRouteTable()
	reg := NewRouterRegistry(cfg)
	cases := []struct {
		name string
		fn   core.FN
		locs int
	}{
		{"match128 wrong width", core.RouterFN(0, 64, core.KeyMatch128), 16},
		{"fib wrong width", core.RouterFN(0, 64, core.KeyFIB), 16},
		{"fib zero width", core.RouterFN(0, 0, core.KeyFIB), 16},
		{"pit wrong width", core.RouterFN(0, 64, core.KeyPIT), 16},
		{"parm wrong width", core.RouterFN(0, 64, core.KeyParm), 16},
		{"mac oversized", core.RouterFN(0, 2048, core.KeyMAC), 256},
		{"mac unaligned", core.RouterFN(1, 416, core.KeyMAC), 70},
		{"mark wrong width", core.RouterFN(0, 64, core.KeyMark), 16},
		{"mark unaligned", core.RouterFN(3, 128, core.KeyMark), 20},
		{"dag unaligned", core.RouterFN(2, 32, core.KeyDAG), 20},
		{"intent unaligned", core.RouterFN(2, 32, core.KeyIntent), 20},
		{"pass unaligned", core.RouterFN(4, 160, core.KeyPass), 32},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := &core.Header{
				FNs: []core.FN{
					core.RouterFN(0, 128, core.KeyParm), // arm crypto for MAC/mark cases
					c.fn,
				},
				Locations: make([]byte, c.locs),
			}
			ctx := run(t, reg, h, 0)
			if ctx.Verdict != core.VerdictDrop || ctx.Reason != core.DropOpError {
				t.Errorf("got %v/%v", ctx.Verdict, ctx.Reason)
			}
		})
	}
}

// Unaligned-but-valid operands on the copy paths of Match128 and Parm.
func TestUnalignedOperandsStillWork(t *testing.T) {
	cfg := routerCfg(t)
	pfx := make([]byte, 16)
	pfx[0] = 0b10100000
	cfg.FIB128.Add(pfx, 4, struct{ Port int }{Port: 2})
	reg := NewRouterRegistry(cfg)
	// Destination placed at bit offset 4: forces the bitfield copy path.
	locs := make([]byte, 17)
	locs[0] = 0x0A // the first operand nibble lands at 0b1010....
	h := &core.Header{
		FNs:       []core.FN{core.RouterFN(4, 128, core.KeyMatch128)},
		Locations: locs,
	}
	ctx := run(t, reg, h, 0)
	if ctx.Verdict != core.VerdictForward || ctx.EgressPorts()[0] != 2 {
		t.Errorf("unaligned match128: %v %v (%v)", ctx.Verdict, ctx.EgressPorts(), ctx.Reason)
	}

	// Parm with a session ID at bit offset 4.
	h2 := &core.Header{
		FNs:       []core.FN{core.RouterFN(4, 128, core.KeyParm)},
		Locations: make([]byte, 17),
	}
	ctx = run(t, reg, h2, 0)
	if ctx.Verdict != core.VerdictContinue {
		t.Errorf("unaligned parm: %v/%v", ctx.Verdict, ctx.Reason)
	}
	if !ctx.Crypto.HaveKey {
		t.Error("key not derived from unaligned session ID")
	}
}

// The PIT-full path must surface as a state-budget drop, not a crash.
func TestFIBPITFull(t *testing.T) {
	cfg := routerCfg(t)
	cfg.NameFIB.AddUint32(0, 0, struct{ Port int }{Port: 1})
	reg := NewRouterRegistry(cfg)
	// Exhaust the PIT.
	for i := uint32(0); ; i++ {
		if _, err := cfg.PIT.AddInterest(i, 0); err != nil {
			break
		}
		if i > 1<<20 {
			t.Fatal("PIT never filled")
		}
	}
	ctx := run(t, reg, ndnInterestHeader(0xFFFFFFFF), 3)
	if ctx.Verdict != core.VerdictDrop || ctx.Reason != core.DropStateBudget {
		t.Errorf("got %v/%v", ctx.Verdict, ctx.Reason)
	}
}

// Remaining edge paths: guarded PIT registration, AES-CMAC ops, host-side
// F_ver operand validation, and XIA error propagation.
func TestGuardedRegistryCachesOnlyLabelled(t *testing.T) {
	cfg := routerCfg(t)
	cfg.NameFIB.AddUint32(0xAA000000, 8, fib.NextHop{Port: 1})
	cfg.ContentStore = cs.New[uint32](8)
	cfg.RequirePass = true
	reg := NewRouterRegistry(cfg)

	// Interest installs PIT state; unlabelled data forwards but is not cached.
	run(t, reg, ndnInterestHeader(0xAA000009), 5)
	ctx := runPayload(t, reg, ndnDataHeader(0xAA000009), 1, []byte("x"))
	if ctx.Verdict != core.VerdictForward {
		t.Fatalf("data verdict %v", ctx.Verdict)
	}
	if _, cached := cfg.ContentStore.Get(0xAA000009); cached {
		t.Fatal("unlabelled payload cached in require-pass mode")
	}
}

func TestOPTWithAESCMACKind(t *testing.T) {
	cfg := routerCfg(t)
	cfg.MACKind = opt.KindAESCMAC
	reg := NewRouterRegistry(cfg)
	h := &core.Header{
		FNs: []core.FN{
			core.RouterFN(128, 128, core.KeyParm),
			core.RouterFN(0, 416, core.KeyMAC),
			core.RouterFN(288, 128, core.KeyMark),
		},
		Locations: make([]byte, 68),
	}
	ctx := run(t, reg, h, 0)
	if ctx.Verdict != core.VerdictContinue {
		t.Fatalf("verdict %v/%v", ctx.Verdict, ctx.Reason)
	}
}

func TestVerOperandValidation(t *testing.T) {
	store := sessions{}
	reg := NewHostRegistry(Config{Sessions: store})
	e := core.NewHostEngine(reg, core.Limits{})
	runHost := func(h *core.Header) *core.ExecContext {
		t.Helper()
		b, err := h.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		v, err := core.ParseView(b)
		if err != nil {
			t.Fatal(err)
		}
		ctx := &core.ExecContext{}
		ctx.Reset(v, 0)
		e.Process(ctx)
		return ctx
	}
	// Unaligned operand.
	ctx := runHost(&core.Header{
		FNs:       []core.FN{core.HostFN(0, 545, core.KeyVer)},
		Locations: make([]byte, 69),
	})
	if ctx.Reason != core.DropOpError {
		t.Errorf("unaligned: %v", ctx.Reason)
	}
	// Region smaller than the OPT base.
	ctx = runHost(&core.Header{
		FNs:       []core.FN{core.HostFN(0, 64, core.KeyVer)},
		Locations: make([]byte, 8),
	})
	if ctx.Reason != core.DropOpError {
		t.Errorf("small region: %v", ctx.Reason)
	}
}

func TestDAGErrorsPropagate(t *testing.T) {
	cfg := routerCfg(t)
	cfg.XIARoutes = xia.NewRouteTable()
	reg := NewRouterRegistry(cfg)
	// A corrupt DAG encoding (zero nodes) must drop as an op error.
	h := &core.Header{
		FNs:       []core.FN{core.RouterFN(0, 32, core.KeyDAG)},
		Locations: []byte{0xFF, 0, 0, 0},
	}
	ctx := run(t, reg, h, 0)
	if ctx.Reason != core.DropOpError {
		t.Errorf("dag: %v", ctx.Reason)
	}
	h.FNs[0].Key = core.KeyIntent
	ctx = run(t, reg, h, 0)
	if ctx.Reason != core.DropOpError {
		t.Errorf("intent: %v", ctx.Reason)
	}
}
