package ops

import (
	"fmt"

	"dip/internal/bitfield"
	"dip/internal/core"
	"dip/internal/xia"
)

// DAG is F_DAG (key 10): "parse the directed acyclic graph" (paper §3).
// Its operand is an encoded XIA address; the module runs the fallback
// traversal against the router's XID tables, patches the last-visited
// pointer in place, and either forwards or leaves the packet for F_intent
// when the intent node is local.
type DAG struct {
	routes xia.Resolver
}

// NewDAG builds the module over the router's XID resolver.
func NewDAG(r xia.Resolver) *DAG { return &DAG{routes: r} }

// Key implements core.Operation.
func (o *DAG) Key() core.Key { return core.KeyDAG }

// Name implements core.Operation.
func (o *DAG) Name() string { return core.KeyDAG.String() }

// Stage implements core.Stager: traversal precedes intent handling.
func (o *DAG) Stage() int { return 1 }

// Execute implements core.Operation.
func (o *DAG) Execute(ctx *core.ExecContext, loc, bits uint) error {
	enc, ok := bitfield.View(ctx.View.Locations(), loc, bits)
	if !ok {
		return fmt.Errorf("ops: F_DAG operand [%d,+%d) not byte-aligned", loc, bits)
	}
	dec, err := xia.TraverseEncoded(enc, o.routes)
	if err != nil {
		return err
	}
	switch dec.Kind {
	case xia.DecisionForward:
		if err := xia.SetLastVisited(enc, dec.NewLast); err != nil {
			return err
		}
		ctx.AddEgress(dec.Port)
	case xia.DecisionIntent:
		if err := xia.SetLastVisited(enc, dec.NewLast); err != nil {
			return err
		}
		// Leave the verdict to F_intent (or plain delivery if the packet
		// carries no intent FN).
		ctx.Deliver()
	case xia.DecisionDead:
		ctx.Drop(core.DropNoRoute)
	}
	return nil
}

// Intent is F_intent (key 11): "handle the intent" (paper §3). When the
// DAG's last-visited pointer has reached the intent node and the intent is
// local to this node, the configured handler runs (serving content for a
// CID, binding a service for an SID); without a handler the packet is
// delivered to the local stack. A pointer that merely aims at the intent
// (the upstream router forwarding toward it) does not trigger handling.
type Intent struct {
	handler IntentHandler // may be nil
	routes  xia.Resolver  // may be nil (then pointer position alone decides)
}

// NewIntent builds the module; handler and resolver may be nil.
func NewIntent(h IntentHandler, r xia.Resolver) *Intent {
	return &Intent{handler: h, routes: r}
}

// Key implements core.Operation.
func (o *Intent) Key() core.Key { return core.KeyIntent }

// Name implements core.Operation.
func (o *Intent) Name() string { return core.KeyIntent.String() }

// Stage implements core.Stager: runs after F_DAG's traversal.
func (o *Intent) Stage() int { return 2 }

// Execute implements core.Operation.
func (o *Intent) Execute(ctx *core.ExecContext, loc, bits uint) error {
	enc, ok := bitfield.View(ctx.View.Locations(), loc, bits)
	if !ok {
		return fmt.Errorf("ops: F_intent operand [%d,+%d) not byte-aligned", loc, bits)
	}
	intent, at, err := xia.IntentEncoded(enc)
	if err != nil {
		return err
	}
	if !at {
		return nil // still in transit; nothing to handle at this node
	}
	if o.routes != nil && !o.routes.IsLocal(intent) {
		return nil // pointed at the intent, but it lives on a later hop
	}
	if o.handler != nil && o.handler.HandleIntent(ctx, intent) {
		return nil
	}
	ctx.Deliver()
	return nil
}
